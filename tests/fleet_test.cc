// Multi-city fleet serving contracts (DESIGN.md "Fleet serving"):
//  - the fleet manifest parses, resolves relative paths against its own
//    directory and rejects malformed files with typed errors;
//  - a FleetRouter routes by wire network_id, leaves unknown ids null, and
//    each warm shard answers bit-identically to a standalone EtaService
//    stood up from the same artifact;
//  - partial fleet failure is contained: one city's corrupt artifact leaves
//    that shard cold (counted in fleet/<name>/activation_failures) and
//    answering from the OD-oracle tier while the healthy cities serve
//    unchanged;
//  - ActivateNow() brings a cold shard warm the moment a loadable artifact
//    appears, exactly once, firing on_activate;
//  - a DeepOdServer in fleet mode serves three cities from one process:
//    model answers for the warm shards, oracle answers (tagged in the
//    estimator byte) for the model-less city, typed kUnknownNetwork for
//    unmapped ids and per-shard segment validation.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "baselines/od_oracle.h"
#include "baselines/path_tte.h"
#include "core/deepod_model.h"
#include "io/model_artifact.h"
#include "io/trip_io.h"
#include "serve/eta_service.h"
#include "serve/fleet_router.h"
#include "serve/server/frame.h"
#include "serve/server/loadgen.h"
#include "serve/server/server.h"
#include "sim/dataset.h"

namespace deepod {
namespace {

using namespace serve::net;

// One synthetic city with every serving artifact the fleet can reference.
struct City {
  sim::Dataset dataset;
  baselines::OdOracle oracle;
  baselines::LinkMeanEstimator links;
  std::string network_path;
  std::string artifact_path;  // model artifact (may be absent on disk)
  std::string oracle_path;    // standalone oracle artifact
};

class FleetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    root_ = new std::string(testing::TempDir() + "fleet_test_tree");
    std::filesystem::create_directories(*root_);
    // Distinct grids so the cities have different segment spaces — routing
    // a request to the wrong shard cannot accidentally validate.
    city_a_ = BuildCity("a", 6, 6, 23, 1, /*with_model=*/true);
    city_b_ = BuildCity("b", 5, 5, 31, 2, /*with_model=*/true);
    city_c_ = BuildCity("c", 5, 6, 47, 3, /*with_model=*/false);
  }

  static City* BuildCity(const std::string& name, size_t rows, size_t cols,
                         uint64_t seed, uint32_t network_id, bool with_model) {
    auto* city = new City;
    sim::DatasetConfig config;
    config.city = road::XianSimConfig();
    config.city.rows = rows;
    config.city.cols = cols;
    config.trips_per_day = 12;
    config.num_days = 10;
    config.seed = seed;
    city->dataset = sim::BuildDataset(config);

    city->oracle = baselines::OdOracle(city->dataset.network,
                                       baselines::OdOracle::Options{});
    for (const auto& trip : city->dataset.train) {
      city->oracle.Add(city->dataset.network, trip.od, trip.travel_time);
      city->links.Add(trip.trajectory);
    }
    city->oracle.Finalize();
    city->links.Finalize(city->dataset.network.num_segments());

    city->network_path = *root_ + "/" + name + ".network.csv";
    io::WriteNetworkCsv(city->dataset.network, city->network_path);
    city->oracle_path = *root_ + "/" + name + ".oracle.artifact";
    io::WriteOracleArtifact(city->oracle_path, network_id, &city->oracle,
                            &city->links);
    city->artifact_path = *root_ + "/" + name + ".model.artifact";
    if (with_model) {
      core::DeepOdConfig model_config = core::DeepOdConfig().Scaled(16);
      model_config.epochs = 1;
      model_config.batch_size = 8;
      core::DeepOdModel model(model_config, city->dataset);
      model.SetTraining(false);
      io::ArtifactOptions options;
      options.network_id = network_id;
      options.oracle = &city->oracle;
      options.link_mean = &city->links;
      io::WriteModelArtifact(city->artifact_path, model, nullptr, options);
    }
    return city;
  }

  static std::string WriteManifest(const std::string& filename,
                                   const std::vector<std::string>& rows) {
    const std::string path = *root_ + "/" + filename;
    std::ofstream out(path);
    out << "network_id,name,network,artifact,oracle,policy\n";
    for (const auto& row : rows) out << row << "\n";
    return path;
  }

  // An OD the city's model and oracle have both seen (training trip 0, at a
  // fixed serving-time departure).
  static traj::OdInput SampleOd(const City& city, size_t i = 0) {
    traj::OdInput od = city.dataset.train[i % city.dataset.train.size()].od;
    od.departure_time = 10.0 * 86400.0 + 8.0 * 3600.0 + 60.0 * double(i);
    return od;
  }

  // Options that keep the activation watcher out of the tests' way (poll
  // far slower than any test runs; ActivateNow() drives activation).
  static serve::FleetRouterOptions QuietOptions() {
    serve::FleetRouterOptions options;
    options.activation_poll = std::chrono::milliseconds(600000);
    return options;
  }

  static double CounterValue(const serve::FleetRouter& router,
                             const std::string& name) {
    for (const auto& record : router.registry().Export()) {
      if (record.name != name) continue;
      if (record.count.has_value()) return *record.count;
      if (record.value.has_value()) return *record.value;
    }
    return -1.0;
  }

  static std::string* root_;
  static City* city_a_;
  static City* city_b_;
  static City* city_c_;
};

std::string* FleetTest::root_ = nullptr;
City* FleetTest::city_a_ = nullptr;
City* FleetTest::city_b_ = nullptr;
City* FleetTest::city_c_ = nullptr;

// --- Manifest ---------------------------------------------------------------

TEST_F(FleetTest, ManifestParsesRowsAndResolvesRelativePaths) {
  const std::string path = WriteManifest(
      "manifest_ok.csv",
      {"1,a,a.network.csv,a.model.artifact,a.oracle.artifact,oracle",
       "2,b,b.network.csv,b.model.artifact,,model",
       "3,c," + city_c_->network_path + ",c.model.artifact," +
           city_c_->oracle_path + ",reject"});
  const std::vector<serve::FleetEntry> entries = serve::ReadFleetManifest(path);
  ASSERT_EQ(entries.size(), 3u);

  EXPECT_EQ(entries[0].network_id, 1u);
  EXPECT_EQ(entries[0].name, "a");
  EXPECT_EQ(entries[0].network_path, *root_ + "/a.network.csv");
  EXPECT_EQ(entries[0].oracle_path, *root_ + "/a.oracle.artifact");
  EXPECT_EQ(entries[0].policy, serve::FallbackPolicy::kOracle);

  EXPECT_EQ(entries[1].policy, serve::FallbackPolicy::kModel);
  EXPECT_TRUE(entries[1].oracle_path.empty());

  // Absolute paths pass through untouched.
  EXPECT_EQ(entries[2].network_path, city_c_->network_path);
  EXPECT_EQ(entries[2].policy, serve::FallbackPolicy::kReject);
}

TEST_F(FleetTest, ManifestRejectsMalformedFiles) {
  EXPECT_THROW(serve::ReadFleetManifest(*root_ + "/no_such_manifest.csv"),
               std::runtime_error);

  const std::string bad_header = *root_ + "/manifest_bad_header.csv";
  {
    std::ofstream out(bad_header);
    out << "id,name,network\n1,a,a.network.csv\n";
  }
  EXPECT_THROW(serve::ReadFleetManifest(bad_header), std::runtime_error);

  EXPECT_THROW(
      serve::ReadFleetManifest(WriteManifest(
          "manifest_dup_id.csv",
          {"1,a,a.network.csv,a.model.artifact,,",
           "1,b,b.network.csv,b.model.artifact,,"})),
      std::runtime_error);
  EXPECT_THROW(
      serve::ReadFleetManifest(WriteManifest(
          "manifest_dup_name.csv",
          {"1,a,a.network.csv,a.model.artifact,,",
           "2,a,b.network.csv,b.model.artifact,,"})),
      std::runtime_error);
  EXPECT_ANY_THROW(serve::ReadFleetManifest(WriteManifest(
      "manifest_bad_policy.csv",
      {"1,a,a.network.csv,a.model.artifact,,sometimes"})));
  EXPECT_THROW(serve::ReadFleetManifest(WriteManifest("manifest_empty.csv", {})),
               std::runtime_error);
}

TEST_F(FleetTest, FallbackPolicyNamesRoundTrip) {
  for (const auto policy :
       {serve::FallbackPolicy::kModel, serve::FallbackPolicy::kOracle,
        serve::FallbackPolicy::kReject}) {
    EXPECT_EQ(serve::ParseFallbackPolicy(serve::FallbackPolicyName(policy)),
              policy);
  }
  // Empty means "take the default".
  EXPECT_EQ(serve::ParseFallbackPolicy(""), serve::FallbackPolicy::kOracle);
  EXPECT_THROW(serve::ParseFallbackPolicy("never"), std::invalid_argument);
}

// --- Routing and warm serving -----------------------------------------------

TEST_F(FleetTest, RoutesByNetworkIdAndServesWarmShardsBitIdentically) {
  const std::string path = WriteManifest(
      "manifest_two_warm.csv",
      {"1,a,a.network.csv,a.model.artifact,a.oracle.artifact,oracle",
       "2,b,b.network.csv,b.model.artifact,b.oracle.artifact,oracle"});
  serve::FleetRouter router(serve::ReadFleetManifest(path), QuietOptions());
  EXPECT_EQ(router.WarmCount(), 2u);
  EXPECT_EQ(router.Resolve(99), nullptr);

  serve::FleetShard* a = router.Resolve(1);
  serve::FleetShard* b = router.Resolve(2);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->name(), "a");
  EXPECT_EQ(b->name(), "b");
  EXPECT_TRUE(a->warm());
  EXPECT_TRUE(b->warm());
  EXPECT_EQ(a->num_segments(), city_a_->dataset.network.num_segments());
  EXPECT_EQ(b->num_segments(), city_b_->dataset.network.num_segments());

  // Each shard's numbers are exactly a standalone service's numbers over
  // the same artifact and network — sharding adds routing, not drift.
  const auto standalone = serve::EtaService::FromArtifact(
      city_a_->artifact_path, a->network(), serve::EtaServiceOptions{});
  for (size_t i = 0; i < 8; ++i) {
    const traj::OdInput od = SampleOd(*city_a_, i);
    EXPECT_EQ(a->service()->Estimate(od), standalone->Estimate(od)) << i;
  }
  router.Stop();
}

// --- Partial fleet failure ---------------------------------------------------

TEST_F(FleetTest, CorruptArtifactLeavesOneCityOnOracleWhileOthersServe) {
  // City b's artifact is garbage; city a's is intact. The fleet must come
  // up with a warm and b cold-but-answering — the partial-failure contract
  // the oracle tier exists for.
  const std::string broken = *root_ + "/broken.model.artifact";
  {
    std::ofstream out(broken, std::ios::binary);
    out << "this is not a state dict";
  }
  const std::string path = WriteManifest(
      "manifest_partial.csv",
      {"1,a,a.network.csv,a.model.artifact,a.oracle.artifact,oracle",
       "2,b,b.network.csv,broken.model.artifact,b.oracle.artifact,oracle"});
  serve::FleetRouter router(serve::ReadFleetManifest(path), QuietOptions());
  EXPECT_EQ(router.WarmCount(), 1u);

  serve::FleetShard* b = router.Resolve(2);
  ASSERT_NE(b, nullptr);
  EXPECT_FALSE(b->warm());
  EXPECT_GE(CounterValue(router, "fleet/b/activation_failures"), 1.0);
  EXPECT_EQ(CounterValue(router, "fleet/b/cold"), 1.0);
  EXPECT_EQ(CounterValue(router, "fleet/a/cold"), 0.0);

  // The cold shard answers from its oracle artifact, tagged as such, with
  // exactly the oracle's numbers.
  const traj::OdInput od = SampleOd(*city_b_);
  const auto fallback = b->FallbackEstimate(od);
  ASSERT_TRUE(fallback.has_value());
  EXPECT_EQ(fallback->estimator, Estimator::kOracle);
  EXPECT_EQ(fallback->eta, city_b_->oracle.Predict(b->network(), od));
  EXPECT_TRUE(b->InDistribution(od));

  // The healthy city is untouched: bit-identical to a standalone service.
  serve::FleetShard* a = router.Resolve(1);
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->warm());
  const auto standalone = serve::EtaService::FromArtifact(
      city_a_->artifact_path, a->network(), serve::EtaServiceOptions{});
  for (size_t i = 0; i < 8; ++i) {
    const traj::OdInput sample = SampleOd(*city_a_, i);
    EXPECT_EQ(a->service()->Estimate(sample), standalone->Estimate(sample))
        << i;
  }
  router.Stop();
}

// --- Cold-shard activation ---------------------------------------------------

TEST_F(FleetTest, ActivateNowBringsAColdShardWarmExactlyOnce) {
  const std::string pending = *root_ + "/pending.model.artifact";
  std::filesystem::remove(pending);
  const std::string path = WriteManifest(
      "manifest_pending.csv",
      {"1,a,a.network.csv,pending.model.artifact,a.oracle.artifact,oracle"});

  serve::FleetRouterOptions options = QuietOptions();
  std::vector<std::string> activated;
  options.on_activate = [&activated](const serve::FleetShard& shard) {
    activated.push_back(shard.name());
  };
  serve::FleetRouter router(serve::ReadFleetManifest(path), options);
  serve::FleetShard* a = router.Resolve(1);
  ASSERT_NE(a, nullptr);
  EXPECT_FALSE(a->warm());
  EXPECT_EQ(router.ActivateNow(), 0u);  // nothing to load yet

  std::filesystem::copy_file(city_a_->artifact_path, pending);
  EXPECT_EQ(router.ActivateNow(), 1u);
  EXPECT_TRUE(a->warm());
  EXPECT_EQ(router.WarmCount(), 1u);
  ASSERT_EQ(activated.size(), 1u);
  EXPECT_EQ(activated[0], "a");
  EXPECT_EQ(router.ActivateNow(), 0u);  // one-way, no re-activation

  const traj::OdInput od = SampleOd(*city_a_);
  const auto standalone = serve::EtaService::FromArtifact(
      city_a_->artifact_path, a->network(), serve::EtaServiceOptions{});
  EXPECT_EQ(a->service()->Estimate(od), standalone->Estimate(od));
  router.Stop();
}

// --- Fleet server over a real socket -----------------------------------------

TEST_F(FleetTest, ServerServesThreeCitiesFromOneProcess) {
  // a and b serve their models; c has no model artifact on disk and serves
  // from its oracle artifact under the (default) oracle policy.
  const std::string path = WriteManifest(
      "manifest_three.csv",
      {"1,a,a.network.csv,a.model.artifact,a.oracle.artifact,oracle",
       "2,b,b.network.csv,b.model.artifact,b.oracle.artifact,oracle",
       "3,c,c.network.csv,c.model.artifact,c.oracle.artifact,oracle"});
  serve::FleetRouter router(serve::ReadFleetManifest(path), QuietOptions());
  EXPECT_EQ(router.WarmCount(), 2u);

  ServerOptions server_options;  // num_segments stays 0: per-shard validation
  DeepOdServer server(router, server_options);
  server.Start();
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));

  const auto round_trip = [&](uint64_t id, uint32_t network_id,
                              const traj::OdInput& od, ResponseFrame* out) {
    RequestFrame request;
    request.request_id = id;
    request.network_id = network_id;
    request.od = od;
    ASSERT_TRUE(client.Send(request));
    ASSERT_TRUE(client.ReadResponse(out));
    EXPECT_EQ(out->request_id, id);
  };

  // Warm cities answer with their own shard's model numbers.
  ResponseFrame response;
  const traj::OdInput od_a = SampleOd(*city_a_);
  round_trip(1, 1, od_a, &response);
  EXPECT_EQ(response.status, Status::kOk);
  EXPECT_EQ(response.estimator, Estimator::kModel);
  EXPECT_EQ(response.eta_seconds, router.Resolve(1)->service()->Estimate(od_a));

  const traj::OdInput od_b = SampleOd(*city_b_);
  round_trip(2, 2, od_b, &response);
  EXPECT_EQ(response.status, Status::kOk);
  EXPECT_EQ(response.estimator, Estimator::kModel);
  EXPECT_EQ(response.eta_seconds, router.Resolve(2)->service()->Estimate(od_b));

  // The model-less city answers from the oracle tier, tagged in the
  // estimator byte, with exactly the oracle's numbers.
  const traj::OdInput od_c = SampleOd(*city_c_);
  round_trip(3, 3, od_c, &response);
  EXPECT_EQ(response.status, Status::kOk);
  EXPECT_EQ(response.estimator, Estimator::kOracle);
  EXPECT_EQ(response.eta_seconds,
            city_c_->oracle.Predict(router.Resolve(3)->network(), od_c));

  // Unknown ids get the typed rejection; the connection stays usable.
  round_trip(4, 42, od_a, &response);
  EXPECT_EQ(response.status, Status::kUnknownNetwork);

  // Segment validation is per shard: a segment id valid in the 6x6 city is
  // out of range for the smaller 5x5 city.
  traj::OdInput oversized = od_a;
  oversized.origin_segment = city_b_->dataset.network.num_segments() + 1;
  ASSERT_LT(oversized.origin_segment, city_a_->dataset.network.num_segments());
  round_trip(5, 2, oversized, &response);
  EXPECT_EQ(response.status, Status::kInvalidRequest);
  round_trip(6, 1, oversized, &response);
  EXPECT_EQ(response.status, Status::kOk);
  // The mutated OD may fall in a cell pair city a never observed; then the
  // oracle policy answers it from the oracle tier instead of extrapolating.
  const bool in_dist =
      city_a_->oracle.InDistribution(router.Resolve(1)->network(), oversized);
  EXPECT_EQ(response.estimator,
            in_dist ? Estimator::kModel : Estimator::kOracle);

  client.Close();
  server.Shutdown();
  router.Stop();

  // The merged stats export carries the per-city accounting.
  EXPECT_GE(CounterValue(router, "fleet/a/model_answers"), 1.0);
  EXPECT_GE(CounterValue(router, "fleet/a/model_answers") +
                CounterValue(router, "fleet/a/oracle_answers"),
            2.0);
  EXPECT_GE(CounterValue(router, "fleet/c/oracle_answers"), 1.0);
}

}  // namespace
}  // namespace deepod
