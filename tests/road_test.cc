#include <gtest/gtest.h>

#include <cmath>
#include <queue>
#include <set>

#include "road/city_generator.h"
#include "road/edge_graph.h"
#include "road/road_network.h"
#include "road/routing.h"
#include "road/spatial_index.h"

namespace deepod::road {
namespace {

RoadNetwork TinyNetwork() {
  // 0 --e0--> 1 --e1--> 2, plus 0 --e2--> 2 (direct but slow).
  RoadNetwork net;
  net.AddVertex({0, 0});
  net.AddVertex({100, 0});
  net.AddVertex({200, 0});
  net.AddSegment(0, 1, 10.0, RoadClass::kLocal);   // 10 s
  net.AddSegment(1, 2, 10.0, RoadClass::kLocal);   // 10 s
  net.AddSegment(0, 2, 4.0, RoadClass::kLocal, 200.0);  // 50 s direct
  net.Finalize();
  return net;
}

TEST(RoadNetworkTest, BasicAccessors) {
  const RoadNetwork net = TinyNetwork();
  EXPECT_EQ(net.num_vertices(), 3u);
  EXPECT_EQ(net.num_segments(), 3u);
  EXPECT_DOUBLE_EQ(net.segment(0).length, 100.0);
  EXPECT_EQ(net.OutSegments(0).size(), 2u);
  EXPECT_EQ(net.InSegments(2).size(), 2u);
}

TEST(RoadNetworkTest, RejectsInvalidSegments) {
  RoadNetwork net;
  net.AddVertex({0, 0});
  net.AddVertex({1, 0});
  EXPECT_THROW(net.AddSegment(0, 0, 1.0, RoadClass::kLocal),
               std::invalid_argument);
  EXPECT_THROW(net.AddSegment(0, 5, 1.0, RoadClass::kLocal), std::out_of_range);
  EXPECT_THROW(net.AddSegment(0, 1, 0.0, RoadClass::kLocal),
               std::invalid_argument);
}

TEST(RoadNetworkTest, MutationAfterFinalizeThrows) {
  RoadNetwork net = TinyNetwork();
  EXPECT_THROW(net.AddVertex({5, 5}), std::logic_error);
}

TEST(RoadNetworkTest, PointAlong) {
  const RoadNetwork net = TinyNetwork();
  const Point mid = net.PointAlong(0, 0.5);
  EXPECT_DOUBLE_EQ(mid.x, 50.0);
  EXPECT_DOUBLE_EQ(mid.y, 0.0);
  EXPECT_THROW(net.PointAlong(0, 1.5), std::invalid_argument);
}

TEST(RoadNetworkTest, ReverseSegment) {
  RoadNetwork net;
  net.AddVertex({0, 0});
  net.AddVertex({10, 0});
  const size_t fwd = net.AddSegment(0, 1, 5.0, RoadClass::kLocal);
  const size_t rev = net.AddSegment(1, 0, 5.0, RoadClass::kLocal);
  net.Finalize();
  EXPECT_EQ(net.ReverseSegment(fwd), rev);
  EXPECT_EQ(net.ReverseSegment(rev), fwd);
}

TEST(RoutingTest, DijkstraPicksFasterTwoHop) {
  const RoadNetwork net = TinyNetwork();
  const Route r = ShortestRoute(net, 0, 2, FreeFlowCost);
  ASSERT_EQ(r.segment_ids.size(), 2u);
  EXPECT_EQ(r.segment_ids[0], 0u);
  EXPECT_EQ(r.segment_ids[1], 1u);
  EXPECT_NEAR(r.cost, 20.0, 1e-9);
}

TEST(RoutingTest, UnreachableReturnsEmpty) {
  RoadNetwork net;
  net.AddVertex({0, 0});
  net.AddVertex({10, 0});
  net.AddVertex({20, 0});
  net.AddSegment(0, 1, 5.0, RoadClass::kLocal);
  net.Finalize();
  EXPECT_TRUE(ShortestRoute(net, 1, 0, FreeFlowCost).segment_ids.empty());
  EXPECT_TRUE(ShortestRoute(net, 0, 2, FreeFlowCost).segment_ids.empty());
}

TEST(RoutingTest, NegativeCostThrows) {
  const RoadNetwork net = TinyNetwork();
  EXPECT_THROW(Dijkstra(net, 0, [](const Segment&) { return -1.0; }),
               std::invalid_argument);
}

TEST(RoutingTest, AlternativeRoutesAreDistinctAndSorted) {
  const RoadNetwork net = TinyNetwork();
  const auto alts = AlternativeRoutes(net, 0, 2, FreeFlowCost, 3);
  ASSERT_GE(alts.size(), 2u);
  std::set<std::vector<size_t>> unique;
  for (const auto& r : alts) {
    EXPECT_TRUE(IsConnectedPath(net, r.segment_ids));
    unique.insert(r.segment_ids);
  }
  EXPECT_EQ(unique.size(), alts.size());
  for (size_t i = 1; i < alts.size(); ++i) {
    EXPECT_LE(alts[i - 1].cost, alts[i].cost);
  }
  // Costs are restated under the unpenalised metric.
  EXPECT_NEAR(alts[0].cost, 20.0, 1e-9);
}

TEST(RoutingTest, IsConnectedPathDetectsGaps) {
  const RoadNetwork net = TinyNetwork();
  EXPECT_TRUE(IsConnectedPath(net, {0, 1}));
  EXPECT_FALSE(IsConnectedPath(net, {1, 0}));
  EXPECT_TRUE(IsConnectedPath(net, {2}));
}

class CityGeneratorTest : public ::testing::TestWithParam<CityConfig> {};

TEST_P(CityGeneratorTest, StronglyConnectedAndWellFormed) {
  const RoadNetwork net = GenerateCity(GetParam());
  ASSERT_GT(net.num_segments(), 0u);
  // Every vertex has in and out degree >= 1.
  for (size_t v = 0; v < net.num_vertices(); ++v) {
    EXPECT_FALSE(net.OutSegments(v).empty()) << "vertex " << v;
    EXPECT_FALSE(net.InSegments(v).empty()) << "vertex " << v;
  }
  // Forward BFS from vertex 0 reaches everything (strong connectivity holds
  // because every link is two-way).
  std::vector<bool> seen(net.num_vertices(), false);
  std::queue<size_t> frontier;
  frontier.push(0);
  seen[0] = true;
  size_t reached = 1;
  while (!frontier.empty()) {
    const size_t v = frontier.front();
    frontier.pop();
    for (size_t sid : net.OutSegments(v)) {
      const size_t to = net.segment(sid).to;
      if (!seen[to]) {
        seen[to] = true;
        ++reached;
        frontier.push(to);
      }
    }
  }
  EXPECT_EQ(reached, net.num_vertices());
  // Positive lengths and speeds throughout.
  for (const auto& s : net.segments()) {
    EXPECT_GT(s.length, 0.0);
    EXPECT_GT(s.free_flow_speed, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllCities, CityGeneratorTest,
                         ::testing::Values(ChengduSimConfig(), XianSimConfig(),
                                           BeijingSimConfig()),
                         [](const ::testing::TestParamInfo<CityConfig>& info) {
                           std::string name = info.param.name;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(CityGeneratorTest, DeterministicInSeed) {
  const RoadNetwork a = GenerateCity(ChengduSimConfig());
  const RoadNetwork b = GenerateCity(ChengduSimConfig());
  ASSERT_EQ(a.num_segments(), b.num_segments());
  for (size_t i = 0; i < a.num_segments(); ++i) {
    EXPECT_EQ(a.segment(i).from, b.segment(i).from);
    EXPECT_DOUBLE_EQ(a.segment(i).free_flow_speed, b.segment(i).free_flow_speed);
  }
}

TEST(CityGeneratorTest, RiverForcesDetour) {
  CityConfig config;
  config.rows = 9;
  config.cols = 9;
  config.removal_prob = 0.0;
  config.jitter_m = 0.0;
  config.river_rows = {4};
  config.bridge_period = 8;  // bridges only at column 2 (offset 2)
  config.seed = 9;
  const RoadNetwork net = GenerateCity(config);
  // A trip straight across the river far from the bridge must detour: its
  // network distance exceeds the straight-line distance substantially.
  // Find vertices near (col 7, row 3) and (col 7, row 5).
  const Point a{7 * config.spacing_m, 3 * config.spacing_m};
  const Point b{7 * config.spacing_m, 5 * config.spacing_m};
  size_t va = 0, vb = 0;
  double da = 1e18, db = 1e18;
  for (size_t v = 0; v < net.num_vertices(); ++v) {
    const double dda = Distance(net.vertex(v).pos, a);
    const double ddb = Distance(net.vertex(v).pos, b);
    if (dda < da) {
      da = dda;
      va = v;
    }
    if (ddb < db) {
      db = ddb;
      vb = v;
    }
  }
  const Route route = ShortestRoute(
      net, va, vb, [](const Segment& s) { return s.length; });
  ASSERT_FALSE(route.segment_ids.empty());
  const double straight = Distance(net.vertex(va).pos, net.vertex(vb).pos);
  EXPECT_GT(route.cost, 3.0 * straight);  // forced detour via the bridge
}

TEST(SpatialIndexTest, NearestFindsProjection) {
  const RoadNetwork net = TinyNetwork();
  const SpatialIndex index(net, 50.0);
  const Projection p = index.Nearest({50.0, 30.0});
  EXPECT_EQ(p.segment_id, 0u);
  EXPECT_NEAR(p.distance, 30.0, 1e-9);
  EXPECT_NEAR(p.ratio, 0.5, 1e-9);
}

TEST(SpatialIndexTest, NearestClampsToEndpoints) {
  const RoadNetwork net = TinyNetwork();
  const SpatialIndex index(net);
  const Projection p = index.Nearest({-40.0, 10.0});
  EXPECT_NEAR(p.ratio, 0.0, 1e-9);
  EXPECT_NEAR(p.distance, std::sqrt(40.0 * 40.0 + 10.0 * 10.0), 1e-9);
}

TEST(SpatialIndexTest, WithinSortedByDistance) {
  const RoadNetwork net = GenerateCity(XianSimConfig());
  const SpatialIndex index(net);
  const Point query{1000.0, 1000.0};
  const auto results = index.Within(query, 500.0);
  ASSERT_FALSE(results.empty());
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_LE(results[i - 1].distance, results[i].distance);
  }
  for (const auto& r : results) EXPECT_LE(r.distance, 500.0);
}

TEST(SpatialIndexTest, NearestAgreesWithBruteForce) {
  const RoadNetwork net = GenerateCity(XianSimConfig());
  const SpatialIndex index(net);
  util::Rng rng(55);
  Point lo, hi;
  net.BoundingBox(&lo, &hi);
  for (int trial = 0; trial < 50; ++trial) {
    const Point q{rng.Uniform(lo.x, hi.x), rng.Uniform(lo.y, hi.y)};
    const Projection fast = index.Nearest(q);
    Projection brute;
    brute.distance = 1e18;
    for (size_t sid = 0; sid < net.num_segments(); ++sid) {
      const Projection cand = SpatialIndex::ProjectOnto(net, sid, q);
      if (cand.distance < brute.distance) brute = cand;
    }
    EXPECT_NEAR(fast.distance, brute.distance, 1e-9);
  }
}

TEST(EdgeGraphTest, StructuralLineGraph) {
  const RoadNetwork net = TinyNetwork();
  const auto graph = BuildStructuralEdgeGraph(net);
  EXPECT_EQ(graph.num_nodes(), net.num_segments());
  EXPECT_TRUE(graph.HasArc(0, 1));   // e0 ends where e1 starts
  EXPECT_FALSE(graph.HasArc(1, 0));  // not in reverse
}

TEST(EdgeGraphTest, UTurnArcsExcluded) {
  RoadNetwork net;
  net.AddVertex({0, 0});
  net.AddVertex({10, 0});
  const size_t fwd = net.AddSegment(0, 1, 5.0, RoadClass::kLocal);
  const size_t rev = net.AddSegment(1, 0, 5.0, RoadClass::kLocal);
  net.Finalize();
  const auto graph = BuildStructuralEdgeGraph(net);
  EXPECT_FALSE(graph.HasArc(fwd, rev));
}

TEST(EdgeGraphTest, CoOccurrenceWeights) {
  const RoadNetwork net = TinyNetwork();
  // Two trajectories traverse e0 -> e1.
  const std::vector<std::vector<size_t>> trips = {{0, 1}, {0, 1}};
  const auto graph = BuildEdgeGraph(net, trips, /*base_weight=*/0.5);
  const auto& arcs = graph.OutArcs(0);
  ASSERT_EQ(arcs.size(), 1u);
  EXPECT_EQ(arcs[0].to, 1u);
  EXPECT_DOUBLE_EQ(arcs[0].weight, 2.5);  // 2 co-occurrences + base
}

TEST(EdgeGraphTest, RejectsBadSegmentIds) {
  const RoadNetwork net = TinyNetwork();
  EXPECT_THROW(BuildEdgeGraph(net, {{0, 99}}), std::out_of_range);
}

}  // namespace
}  // namespace deepod::road
