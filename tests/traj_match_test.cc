#include <gtest/gtest.h>

#include "match/map_matcher.h"
#include "road/city_generator.h"
#include "sim/traffic_model.h"
#include "sim/trip_simulator.h"
#include "sim/weather.h"
#include "traj/trajectory.h"

namespace deepod {
namespace {

road::RoadNetwork Line3() {
  road::RoadNetwork net;
  net.AddVertex({0, 0});
  net.AddVertex({100, 0});
  net.AddVertex({200, 0});
  net.AddVertex({300, 0});
  net.AddSegment(0, 1, 10.0, road::RoadClass::kLocal);
  net.AddSegment(1, 2, 10.0, road::RoadClass::kLocal);
  net.AddSegment(2, 3, 10.0, road::RoadClass::kLocal);
  net.Finalize();
  return net;
}

TEST(TrajectoryTest, SegmentIdsAndValidity) {
  const road::RoadNetwork net = Line3();
  traj::MatchedTrajectory t;
  t.path = {{0, 0.0, 10.0}, {1, 10.0, 20.0}, {2, 20.0, 28.0}};
  t.origin_ratio = 0.5;
  t.dest_ratio = 0.8;
  EXPECT_TRUE(t.IsValid(net));
  EXPECT_EQ(t.SegmentIds(), (std::vector<size_t>{0, 1, 2}));
  EXPECT_DOUBLE_EQ(t.travel_time(), 28.0);
  // Length: half of e0 + all of e1 + 0.8 of e2 = 50 + 100 + 80.
  EXPECT_DOUBLE_EQ(t.TravelledLength(net), 230.0);
}

TEST(TrajectoryTest, SingleSegmentLength) {
  const road::RoadNetwork net = Line3();
  traj::MatchedTrajectory t;
  t.path = {{1, 0.0, 5.0}};
  t.origin_ratio = 0.2;
  t.dest_ratio = 0.7;
  EXPECT_NEAR(t.TravelledLength(net), 50.0, 1e-9);
}

TEST(TrajectoryTest, InvalidCases) {
  const road::RoadNetwork net = Line3();
  traj::MatchedTrajectory empty;
  EXPECT_FALSE(empty.IsValid(net));

  traj::MatchedTrajectory disconnected;
  disconnected.path = {{0, 0.0, 10.0}, {2, 10.0, 20.0}};  // skips e1
  EXPECT_FALSE(disconnected.IsValid(net));

  traj::MatchedTrajectory backwards_time;
  backwards_time.path = {{0, 10.0, 5.0}};
  EXPECT_FALSE(backwards_time.IsValid(net));

  traj::MatchedTrajectory bad_ratio;
  bad_ratio.path = {{0, 0.0, 1.0}};
  bad_ratio.origin_ratio = 1.5;
  EXPECT_FALSE(bad_ratio.IsValid(net));
}

TEST(InterpolateTest, ProportionalToFreeFlowTime) {
  const road::RoadNetwork net = Line3();
  // Full route over three equal segments, full ratios: equal thirds.
  const auto path =
      match::InterpolateIntervals(net, {0, 1, 2}, 0.0, 1.0, 0.0, 30.0);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_DOUBLE_EQ(path[0].enter, 0.0);
  EXPECT_NEAR(path[0].exit, 10.0, 1e-9);
  EXPECT_NEAR(path[1].exit, 20.0, 1e-9);
  EXPECT_DOUBLE_EQ(path[2].exit, 30.0);
  // Contiguity.
  EXPECT_DOUBLE_EQ(path[1].enter, path[0].exit);
}

TEST(InterpolateTest, PartialEndSegments) {
  const road::RoadNetwork net = Line3();
  // Origin at 0.5 of e0 (weight 5 s), all of e1 (10 s), dest at 0.5 of e2
  // (5 s): shares 0.25 / 0.5 / 0.25 of the 40 s trip.
  const auto path =
      match::InterpolateIntervals(net, {0, 1, 2}, 0.5, 0.5, 100.0, 140.0);
  EXPECT_NEAR(path[0].exit - path[0].enter, 10.0, 1e-9);
  EXPECT_NEAR(path[1].exit - path[1].enter, 20.0, 1e-9);
  EXPECT_NEAR(path[2].exit - path[2].enter, 10.0, 1e-9);
}

TEST(InterpolateTest, Validation) {
  const road::RoadNetwork net = Line3();
  EXPECT_THROW(match::InterpolateIntervals(net, {}, 0, 1, 0, 10),
               std::invalid_argument);
  EXPECT_THROW(match::InterpolateIntervals(net, {0}, 0, 1, 10, 5),
               std::invalid_argument);
}

TEST(MapMatcherTest, SnapPoint) {
  const road::RoadNetwork net = Line3();
  const match::MapMatcher matcher(net);
  const auto proj = matcher.SnapPoint({150.0, 5.0});
  EXPECT_EQ(proj.segment_id, 1u);
  EXPECT_NEAR(proj.ratio, 0.5, 1e-9);
}

TEST(MapMatcherTest, MatchesCleanTraceOnLine) {
  const road::RoadNetwork net = Line3();
  const match::MapMatcher matcher(net);
  traj::RawTrajectory raw;
  for (int i = 0; i <= 10; ++i) {
    raw.points.push_back({{25.0 + 25.0 * i, 1.0}, 10.0 * i});
  }
  const auto matched = matcher.Match(raw);
  ASSERT_FALSE(matched.empty());
  EXPECT_TRUE(matched.IsValid(net));
  EXPECT_EQ(matched.SegmentIds(), (std::vector<size_t>{0, 1, 2}));
  EXPECT_NEAR(matched.origin_ratio, 0.25, 0.05);
  EXPECT_NEAR(matched.dest_ratio, 0.75, 0.05);
  EXPECT_DOUBLE_EQ(matched.departure_time(), 0.0);
  EXPECT_DOUBLE_EQ(matched.arrival_time(), 100.0);
}

TEST(MapMatcherTest, TooFewPointsReturnsEmpty) {
  const road::RoadNetwork net = Line3();
  const match::MapMatcher matcher(net);
  traj::RawTrajectory raw;
  raw.points.push_back({{10, 0}, 0.0});
  EXPECT_TRUE(matcher.Match(raw).empty());
}

TEST(MapMatcherTest, RecoversSimulatedRouteOnCity) {
  // End-to-end property: simulate trips, emit noisy GPS, match, and check
  // the matched route agrees with the simulated ground truth on most
  // segments (map matching cannot be perfect under noise).
  road::CityConfig config = road::XianSimConfig();
  config.rows = 6;
  config.cols = 6;
  const road::RoadNetwork net = road::GenerateCity(config);
  const sim::TrafficModel traffic(net);
  const sim::WeatherProcess weather(86400.0, 3);
  sim::TripSimulator::Options options;
  options.gps_period = 5.0;
  options.gps_noise_m = 6.0;
  const sim::TripSimulator simulator(net, traffic, weather, options);
  const match::MapMatcher matcher(net);
  util::Rng rng(77);

  int total_truth_segments = 0, recovered = 0, matched_trips = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const auto record = simulator.SimulateTrip(36000.0, rng);
    const auto raw = simulator.EmitGps(record, rng);
    ASSERT_GE(raw.points.size(), 2u);
    const auto matched = matcher.Match(raw);
    if (matched.empty()) continue;
    ++matched_trips;
    EXPECT_TRUE(matched.IsValid(net));
    std::set<size_t> matched_ids;
    for (size_t sid : matched.SegmentIds()) matched_ids.insert(sid);
    for (size_t sid : record.trajectory.SegmentIds()) {
      ++total_truth_segments;
      recovered += matched_ids.count(sid) > 0;
    }
  }
  ASSERT_GE(matched_trips, 8);
  EXPECT_GT(static_cast<double>(recovered) /
                static_cast<double>(total_truth_segments),
            0.75);
}

}  // namespace
}  // namespace deepod
