#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "road/city_generator.h"
#include "sim/dataset.h"
#include "sim/speed_matrix.h"
#include "sim/traffic_model.h"
#include "sim/trip_simulator.h"
#include "sim/weather.h"
#include "temporal/time_slot.h"

namespace deepod::sim {
namespace {

road::RoadNetwork SmallCity() {
  road::CityConfig config = road::XianSimConfig();
  config.rows = 6;
  config.cols = 6;
  return road::GenerateCity(config);
}

TEST(TrafficModelTest, CongestionBounded) {
  const road::RoadNetwork net = SmallCity();
  const TrafficModel traffic(net);
  for (size_t sid = 0; sid < net.num_segments(); sid += 7) {
    for (double hour = 0.0; hour < 24.0; hour += 0.5) {
      const double c = traffic.CongestionAt(sid, hour * 3600.0);
      EXPECT_GT(c, 0.0);
      EXPECT_LE(c, 1.0);
    }
  }
}

TEST(TrafficModelTest, RushHourSlowerThanNight) {
  const road::RoadNetwork net = SmallCity();
  const TrafficModel traffic(net);
  // Averaged over segments, 8am weekday congestion exceeds 3am congestion.
  double rush = 0.0, night = 0.0;
  for (size_t sid = 0; sid < net.num_segments(); ++sid) {
    rush += traffic.CongestionAt(sid, 8.0 * 3600.0);
    night += traffic.CongestionAt(sid, 3.0 * 3600.0);
  }
  EXPECT_LT(rush, night * 0.9);
}

TEST(TrafficModelTest, WeeklyPeriodicityUpToDailyNoise) {
  const road::RoadNetwork net = SmallCity();
  TrafficModel::Options options;
  options.daily_sigma = 0.0;  // isolate the periodic component
  options.segment_daily_sigma = 0.0;
  const TrafficModel traffic(net, options);
  // Monday 8am of week 0 equals Monday 8am of week 1 (Fig. 5a periodicity).
  const double t0 = 8.0 * 3600.0;
  const double t1 = t0 + temporal::kSecondsPerWeek;
  for (size_t sid = 0; sid < net.num_segments(); sid += 5) {
    EXPECT_NEAR(traffic.CongestionAt(sid, t0), traffic.CongestionAt(sid, t1),
                1e-9);
  }
}

TEST(TrafficModelTest, WeekendRushIsWeaker) {
  const road::RoadNetwork net = SmallCity();
  TrafficModel::Options options;
  options.daily_sigma = 0.0;
  options.segment_daily_sigma = 0.0;
  const TrafficModel traffic(net, options);
  double weekday = 0.0, weekend = 0.0;
  const double hour8 = 8.0 * 3600.0;
  for (size_t sid = 0; sid < net.num_segments(); ++sid) {
    weekday += traffic.CongestionAt(sid, hour8);                             // Monday
    weekend += traffic.CongestionAt(sid, 5 * temporal::kSecondsPerDay + hour8);  // Saturday
  }
  EXPECT_GT(weekend, weekday);  // less congestion on Saturday morning
}

TEST(TrafficModelTest, DayToDayVariability) {
  const road::RoadNetwork net = SmallCity();
  const TrafficModel traffic(net);
  // The same time-of-day on different weeks should differ (daily draws).
  const double t0 = 10.0 * 3600.0;
  double diff = 0.0;
  for (int week = 1; week <= 4; ++week) {
    diff += std::fabs(traffic.CongestionAt(0, t0) -
                      traffic.CongestionAt(0, t0 + week * temporal::kSecondsPerWeek));
  }
  EXPECT_GT(diff, 1e-4);
}

TEST(TrafficModelTest, TraversalSecondsConsistent) {
  const road::RoadNetwork net = SmallCity();
  const TrafficModel traffic(net);
  const auto& s = net.segment(3);
  const double t = 12 * 3600.0;
  EXPECT_NEAR(traffic.TraversalSeconds(3, t),
              s.length / traffic.SpeedAt(3, t), 1e-9);
  EXPECT_LE(traffic.SpeedAt(3, t), s.free_flow_speed);
}

TEST(WeatherTest, TypesInRangeAndSticky) {
  const WeatherProcess weather(7 * 86400.0, 5);
  int changes = 0;
  int prev = weather.TypeAt(0.0);
  for (int h = 1; h < 7 * 24; ++h) {
    const int cur = weather.TypeAt(h * 3600.0);
    EXPECT_GE(cur, 0);
    EXPECT_LT(cur, WeatherProcess::kNumTypes);
    changes += cur != prev;
    prev = cur;
  }
  // Sticky chain: well under half the hours change state.
  EXPECT_LT(changes, 7 * 24 / 2);
}

TEST(WeatherTest, ConstantWithinHour) {
  const WeatherProcess weather(86400.0, 5);
  EXPECT_EQ(weather.TypeAt(3600.0), weather.TypeAt(3600.0 + 1800.0));
}

TEST(WeatherTest, SpeedFactorsSane) {
  for (int t = 0; t < WeatherProcess::kNumTypes; ++t) {
    EXPECT_GT(WeatherProcess::SpeedFactor(t), 0.5);
    EXPECT_LE(WeatherProcess::SpeedFactor(t), 1.0);
    EXPECT_FALSE(WeatherProcess::TypeName(t).empty());
  }
  EXPECT_THROW(WeatherProcess::SpeedFactor(99), std::out_of_range);
  EXPECT_THROW(WeatherProcess::TypeName(-1), std::out_of_range);
}

TEST(WeatherTest, BeyondHorizonThrows) {
  const WeatherProcess weather(3600.0, 5);
  EXPECT_THROW(weather.TypeAt(1e9), std::out_of_range);
  EXPECT_THROW(weather.TypeAt(-1.0), std::invalid_argument);
}

TEST(TripSimulatorTest, TripInvariants) {
  const road::RoadNetwork net = SmallCity();
  const TrafficModel traffic(net);
  const WeatherProcess weather(86400.0 * 2, 5);
  const TripSimulator simulator(net, traffic, weather);
  util::Rng rng(3);
  for (int i = 0; i < 25; ++i) {
    const auto record = simulator.SimulateTrip(30000.0, rng);
    EXPECT_GT(record.travel_time, 0.0);
    EXPECT_TRUE(record.trajectory.IsValid(net));
    EXPECT_DOUBLE_EQ(record.trajectory.departure_time(),
                     record.od.departure_time);
    EXPECT_NEAR(record.trajectory.travel_time(), record.travel_time, 1e-9);
    // First/last path segments match the OD's matched segments.
    EXPECT_EQ(record.trajectory.path.front().segment_id,
              record.od.origin_segment);
    EXPECT_EQ(record.trajectory.path.back().segment_id,
              record.od.dest_segment);
    // OD points lie on their segments at the stated ratios.
    const auto o = net.PointAlong(record.od.origin_segment,
                                  record.od.origin_ratio);
    EXPECT_NEAR(o.x, record.od.origin.x, 1e-6);
    EXPECT_NEAR(o.y, record.od.origin.y, 1e-6);
    // Trip length respects the configured minimum.
    EXPECT_GE(road::Distance(record.od.origin, record.od.destination), 800.0);
  }
}

TEST(TripSimulatorTest, RouteDiversityForSameOd) {
  // The Fig. 1 phenomenon: repeated trips at the same departure time do not
  // always use the same route.
  const road::RoadNetwork net = SmallCity();
  const TrafficModel traffic(net);
  const WeatherProcess weather(86400.0, 5);
  TripSimulator::Options options;
  options.route_choice_temperature = 10.0;  // noisy drivers
  const TripSimulator simulator(net, traffic, weather, options);
  util::Rng rng(5);
  std::set<std::vector<size_t>> routes;
  for (int i = 0; i < 40; ++i) {
    util::Rng trip_rng(100);  // identical OD sampling
    auto record = simulator.SimulateTrip(30000.0, rng);
    routes.insert(record.trajectory.SegmentIds());
  }
  EXPECT_GT(routes.size(), 10u);  // different ODs and some route variety
}

TEST(TripSimulatorTest, DepartureTimesFollowDemandPeaks) {
  const road::RoadNetwork net = SmallCity();
  const TrafficModel traffic(net);
  const WeatherProcess weather(86400.0 * 2, 5);
  const TripSimulator simulator(net, traffic, weather);
  util::Rng rng(7);
  int rush = 0, night = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const double t = simulator.SampleDepartureTime(0.0, rng);
    EXPECT_GE(t, 0.0);
    EXPECT_LT(t, 86400.0);
    const double hour = t / 3600.0;
    if (hour >= 7.0 && hour < 9.0) ++rush;
    if (hour >= 2.0 && hour < 4.0) ++night;
  }
  EXPECT_GT(rush, 3 * night);
}

TEST(TripSimulatorTest, GpsTraceCoversTrip) {
  const road::RoadNetwork net = SmallCity();
  const TrafficModel traffic(net);
  const WeatherProcess weather(86400.0, 5);
  TripSimulator::Options options;
  options.gps_period = 3.0;
  const TripSimulator simulator(net, traffic, weather, options);
  util::Rng rng(9);
  const auto record = simulator.SimulateTrip(40000.0, rng);
  const auto raw = simulator.EmitGps(record, rng);
  ASSERT_GE(raw.points.size(), 2u);
  EXPECT_DOUBLE_EQ(raw.departure_time(), record.od.departure_time);
  EXPECT_NEAR(raw.travel_time(), record.travel_time, 1e-6);
  for (size_t i = 1; i < raw.points.size(); ++i) {
    EXPECT_GE(raw.points[i].t, raw.points[i - 1].t);
  }
}

TEST(SpeedMatrixTest, ShapeAndRange) {
  const road::RoadNetwork net = SmallCity();
  const TrafficModel traffic(net);
  const WeatherProcess weather(86400.0, 5);
  const SpeedMatrixBuilder builder(net, traffic, weather, 200.0, 300.0);
  EXPECT_GT(builder.rows(), 0u);
  EXPECT_GT(builder.cols(), 0u);
  const auto matrix = builder.MatrixAt(12 * 3600.0);
  EXPECT_EQ(matrix.size(), builder.rows() * builder.cols());
  for (double v : matrix) {
    EXPECT_GT(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(SpeedMatrixTest, SnapshotQuantisation) {
  const road::RoadNetwork net = SmallCity();
  const TrafficModel traffic(net);
  const WeatherProcess weather(86400.0, 5);
  const SpeedMatrixBuilder builder(net, traffic, weather, 200.0, 300.0);
  EXPECT_DOUBLE_EQ(builder.SnapshotTime(610.0), 600.0);
  EXPECT_DOUBLE_EQ(builder.SnapshotTime(600.0), 600.0);
  // Two times within one snapshot yield identical matrices.
  EXPECT_EQ(builder.MatrixAt(601.0), builder.MatrixAt(899.0));
}

TEST(SpeedMatrixTest, RushHourMatrixSlower) {
  const road::RoadNetwork net = SmallCity();
  const TrafficModel traffic(net);
  const WeatherProcess weather(86400.0, 5);
  const SpeedMatrixBuilder builder(net, traffic, weather, 200.0, 300.0);
  const auto rush = builder.MatrixAt(8.0 * 3600.0);
  const auto night = builder.MatrixAt(3.0 * 3600.0);
  double rush_sum = 0.0, night_sum = 0.0;
  for (size_t i = 0; i < rush.size(); ++i) {
    rush_sum += rush[i];
    night_sum += night[i];
  }
  EXPECT_LT(rush_sum, night_sum);
}

TEST(DatasetTest, SplitIsChronologicalAndComplete) {
  DatasetConfig config;
  config.city = road::XianSimConfig();
  config.city.rows = 6;
  config.city.cols = 6;
  config.trips_per_day = 10;
  config.num_days = 20;
  const Dataset ds = BuildDataset(config);
  EXPECT_EQ(ds.TotalTrips(), 200u);
  EXPECT_GT(ds.train.size(), ds.validation.size());
  EXPECT_GT(ds.test.size(), ds.validation.size());
  // Chronological: max(train) <= min(validation) <= ... within split bounds.
  double train_max = 0.0;
  for (const auto& t : ds.train) {
    train_max = std::max(train_max, t.od.departure_time);
    EXPECT_FALSE(t.trajectory.empty());  // training keeps trajectories
  }
  for (const auto& t : ds.validation) {
    EXPECT_GE(t.od.departure_time, train_max - 86400.0);  // later days
  }
  for (const auto& t : ds.test) {
    EXPECT_TRUE(t.trajectory.empty());  // §6.1: no trajectories at test time
    EXPECT_GT(t.travel_time, 0.0);      // but labels remain
  }
}

TEST(DatasetTest, DeterministicInSeed) {
  DatasetConfig config;
  config.city = road::XianSimConfig();
  config.city.rows = 5;
  config.city.cols = 5;
  config.trips_per_day = 5;
  config.num_days = 10;
  const Dataset a = BuildDataset(config);
  const Dataset b = BuildDataset(config);
  ASSERT_EQ(a.train.size(), b.train.size());
  for (size_t i = 0; i < a.train.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.train[i].travel_time, b.train[i].travel_time);
    EXPECT_EQ(a.train[i].od.origin_segment, b.train[i].od.origin_segment);
  }
}

TEST(DatasetTest, StatsReasonable) {
  DatasetConfig config;
  config.city = road::XianSimConfig();
  config.city.rows = 6;
  config.city.cols = 6;
  config.trips_per_day = 10;
  config.num_days = 15;
  const Dataset ds = BuildDataset(config);
  const DatasetStats stats = ComputeStats(ds);
  EXPECT_EQ(stats.num_orders, ds.TotalTrips());
  EXPECT_GT(stats.avg_travel_time, 30.0);
  EXPECT_LT(stats.avg_travel_time, 3600.0);
  EXPECT_GT(stats.avg_num_segments, 1.0);
  EXPECT_GT(stats.avg_length_m, 500.0);
}

TEST(DatasetTest, TrainSegmentSequencesMatchTrajectories) {
  DatasetConfig config;
  config.city = road::XianSimConfig();
  config.city.rows = 5;
  config.city.cols = 5;
  config.trips_per_day = 5;
  config.num_days = 6;
  const Dataset ds = BuildDataset(config);
  const auto sequences = ds.TrainSegmentSequences();
  ASSERT_EQ(sequences.size(), ds.train.size());
  EXPECT_EQ(sequences[0], ds.train[0].trajectory.SegmentIds());
}

}  // namespace
}  // namespace deepod::sim
