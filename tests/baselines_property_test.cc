// Property sweeps over the baselines: every estimator is a deterministic
// function of (dataset, options); predictions respond to the inputs they
// are supposed to depend on; GBM's trees partition features consistently.
#include <gtest/gtest.h>

#include <cmath>
#include <type_traits>

#include "baselines/gbm.h"
#include "baselines/linear_regression.h"
#include "baselines/murat.h"
#include "baselines/stnn.h"
#include "baselines/temp.h"
#include "sim/dataset.h"

namespace deepod::baselines {
namespace {

const sim::Dataset& Fixture() {
  static const sim::Dataset* dataset = [] {
    sim::DatasetConfig config;
    config.city = road::XianSimConfig();
    config.city.rows = 6;
    config.city.cols = 6;
    config.trips_per_day = 40;
    config.num_days = 15;
    config.seed = 321;
    return new sim::Dataset(sim::BuildDataset(config));
  }();
  return *dataset;
}

// Type-parameterised determinism test across all five estimators.
template <typename T>
class EstimatorDeterminismTest : public ::testing::Test {};

using AllEstimators =
    ::testing::Types<TempEstimator, LinearRegressionEstimator, GbmEstimator,
                     StnnEstimator, MuratEstimator>;
TYPED_TEST_SUITE(EstimatorDeterminismTest, AllEstimators);

TYPED_TEST(EstimatorDeterminismTest, TrainTwicePredictIdentically) {
  const auto& ds = Fixture();
  TypeParam a, b;
  a.Train(ds);
  b.Train(ds);
  for (size_t i = 0; i < std::min<size_t>(10, ds.test.size()); ++i) {
    EXPECT_DOUBLE_EQ(a.Predict(ds.test[i].od), b.Predict(ds.test[i].od));
  }
}

TYPED_TEST(EstimatorDeterminismTest, PredictionsDependOnDestination) {
  const auto& ds = Fixture();
  TypeParam estimator;
  estimator.Train(ds);
  // Moving the destination far away must change the estimate for learned
  // spatial models. (TEMP may coincide if neighbour sets overlap; exclude
  // exact-equality only.)
  auto od = ds.test[0].od;
  const double base = estimator.Predict(od);
  od.destination = ds.test[1].od.destination;
  od.dest_segment = ds.test[1].od.dest_segment;
  od.dest_ratio = ds.test[1].od.dest_ratio;
  const double moved = estimator.Predict(od);
  EXPECT_TRUE(std::isfinite(base));
  EXPECT_TRUE(std::isfinite(moved));
  // Tree-based models partition coordinates into leaves, so two
  // destinations can legitimately share a prediction; require a change
  // only from the continuous models.
  if constexpr (!std::is_same_v<TypeParam, GbmEstimator>) {
    if (road::Distance(ds.test[0].od.destination,
                       ds.test[1].od.destination) > 500.0) {
      EXPECT_NE(base, moved);
    }
  }
}

TEST(TempPropertyTest, LongerQueriesGetLargerEstimates) {
  // Scale correction: for a fixed neighbour pool, doubling the OD distance
  // of the query scales the estimate up (clamped at 1.8x).
  const auto& ds = Fixture();
  TempEstimator temp;
  temp.Train(ds);
  auto od = ds.test[0].od;
  const double base = temp.Predict(od);
  // Stretch the destination outward along the same direction.
  od.destination.x = od.origin.x + 2.5 * (od.destination.x - od.origin.x);
  od.destination.y = od.origin.y + 2.5 * (od.destination.y - od.origin.y);
  const double stretched = temp.Predict(od);
  EXPECT_GE(stretched, base);
}

TEST(GbmPropertyTest, PredictionsWithinLabelEnvelope) {
  // Trees predict leaf means of residuals; the composite prediction should
  // stay within a generous envelope of the observed label range.
  const auto& ds = Fixture();
  GbmEstimator gbm;
  gbm.Train(ds);
  double lo = 1e18, hi = 0.0;
  for (const auto& t : ds.train) {
    lo = std::min(lo, t.travel_time);
    hi = std::max(hi, t.travel_time);
  }
  for (size_t i = 0; i < std::min<size_t>(50, ds.test.size()); ++i) {
    const double p = gbm.Predict(ds.test[i].od);
    EXPECT_GT(p, lo - (hi - lo));
    EXPECT_LT(p, hi + (hi - lo));
  }
}

TEST(GbmPropertyTest, DepthZeroEquivalentToMean) {
  const auto& ds = Fixture();
  GbmEstimator::Options options;
  options.num_trees = 1;
  options.tree.max_depth = 0;  // a single leaf: residual mean = 0
  GbmEstimator gbm(options);
  gbm.Train(ds);
  double mean = 0.0;
  for (const auto& t : ds.train) mean += t.travel_time;
  mean /= static_cast<double>(ds.train.size());
  EXPECT_NEAR(gbm.Predict(ds.test[0].od), mean, 1e-6);
}

TEST(LrPropertyTest, PredictionIsLinearInFeatures) {
  // For LR, prediction(od) must equal w·f(od) exactly — verify against the
  // exposed weights.
  const auto& ds = Fixture();
  LinearRegressionEstimator lr;
  lr.Train(ds);
  for (size_t i = 0; i < 10; ++i) {
    const auto f = OdFeatures(ds.test[i].od, ds.network);
    double expected = 0.0;
    for (size_t j = 0; j < f.size(); ++j) expected += lr.weights()[j] * f[j];
    EXPECT_NEAR(lr.Predict(ds.test[i].od), expected, 1e-9);
  }
}

TEST(StnnPropertyTest, TimeOfDayMatters) {
  const auto& ds = Fixture();
  StnnEstimator stnn;
  stnn.Train(ds);
  auto od = ds.test[0].od;
  const double morning = stnn.Predict(od);
  od.departure_time += 6.0 * 3600.0;
  const double noon = stnn.Predict(od);
  EXPECT_NE(morning, noon);
}

TEST(MuratPropertyTest, CellGranularityAffectsModelSize) {
  const auto& ds = Fixture();
  MuratEstimator::Options coarse;
  coarse.cell_size_m = 800.0;
  MuratEstimator::Options fine;
  fine.cell_size_m = 250.0;
  MuratEstimator a(coarse), b(fine);
  a.Train(ds);
  b.Train(ds);
  EXPECT_LT(a.ModelSizeBytes(), b.ModelSizeBytes());
}

}  // namespace
}  // namespace deepod::baselines
