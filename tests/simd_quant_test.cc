// Tests for the kSimd kernel tier (nn/simd.h) and the int8/fp16 quantised
// predict-only path (nn/quant.h, serialize v3, artifact options):
//
//  - packed-GEMV layout and tail lanes: every (N, I, O) shape class,
//    including N = 1 and dimensions not divisible by 4/8;
//  - the kSimd floating-point contracts: GEMV-shaped ops within an explicit
//    tolerance of the scalar tiers, Conv2d and the inactive-AVX2 fallback
//    bit-identical to kVector, Affine == AffineRows row-for-row;
//  - packed-weights cache invalidation on parameter mutation;
//  - the f16 codec (round-to-nearest-even, denormals, overflow) and the
//    per-row absmax int8 codec;
//  - serialize v3 round trips, the v2-byte-identity guarantee and the
//    "quant dtypes only in v3" negative case;
//  - end-to-end artifact MAE budgets: int8/fp16 serving predictions vs the
//    fp64 goldens across batch sizes and thread counts, and the
//    EtaService quant/kernel_mode options.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/deepod_config.h"
#include "core/deepod_model.h"
#include "io/model_artifact.h"
#include "nn/lstm.h"
#include "nn/module.h"
#include "nn/ops.h"
#include "nn/optimizer.h"
#include "nn/quant.h"
#include "nn/serialize.h"
#include "nn/simd.h"
#include "nn/tensor.h"
#include "serve/eta_service.h"
#include "sim/dataset.h"
#include "sim/snapshot_speed_field.h"
#include "util/thread_pool.h"

namespace deepod {
namespace {

using nn::KernelMode;
using nn::KernelModeScope;
using nn::QuantMode;
using nn::Tensor;

// Tolerance of the kSimd GEMV contract: same inputs, different (fused,
// 4-row) summation order. The dimensions here are tiny, so a loose absolute
// bound is still billions of ulp away from a real bug.
constexpr double kSimdTol = 1e-9;

double MaxAbsDiff(const std::vector<double>& a, const std::vector<double>& b) {
  EXPECT_EQ(a.size(), b.size());
  double m = 0.0;
  for (size_t i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

// --- Packed GEMV layout ------------------------------------------------------

TEST(SimdPackTest, PackGemvCoversEveryRowOnce) {
  // Shapes straddling the panel boundary: rows % 4 in {0, 1, 2, 3}.
  for (const auto& [rows, cols] :
       {std::pair<size_t, size_t>{1, 3}, {2, 7}, {3, 5}, {4, 4}, {5, 129},
        {8, 1}, {13, 65}}) {
    std::vector<double> w(rows * cols);
    for (size_t i = 0; i < w.size(); ++i) w[i] = static_cast<double>(i) + 0.5;
    const nn::PackedGemv packed = nn::PackGemv(w.data(), rows, cols);
    ASSERT_EQ(packed.rows, rows);
    ASSERT_EQ(packed.cols, cols);
    ASSERT_EQ(packed.full_panels, rows / nn::kGemvPanel);
    ASSERT_EQ(packed.panels.size(), packed.full_panels * cols * nn::kGemvPanel);
    ASSERT_EQ(packed.tail.size(), (rows % nn::kGemvPanel) * cols);
    // Reconstruct W from the panel-major layout and the row-major tail.
    for (size_t r = 0; r < rows; ++r) {
      for (size_t j = 0; j < cols; ++j) {
        const size_t p = r / nn::kGemvPanel, lane = r % nn::kGemvPanel;
        const double got =
            p < packed.full_panels
                ? packed.panels[(p * cols + j) * nn::kGemvPanel + lane]
                : packed.tail[(r - packed.full_panels * nn::kGemvPanel) * cols +
                              j];
        ASSERT_EQ(got, w[r * cols + j]) << rows << "x" << cols << " at " << r
                                        << "," << j;
      }
    }
  }
}

// --- kSimd vs scalar tiers ---------------------------------------------------

// Every (batch, in, out) shape class the serving path can hit, none of the
// interesting ones divisible by the 4-wide panel or the 8-wide unroll.
const std::vector<std::array<size_t, 3>>& TailShapes() {
  static const std::vector<std::array<size_t, 3>> shapes = {
      {1, 3, 5}, {2, 7, 4}, {1, 1, 1}, {3, 129, 65}, {7, 8, 8}, {4, 16, 12}};
  return shapes;
}

TEST(SimdKernelTest, AffineRowsMatchesVectorTierWithinTolerance) {
  util::Rng rng(11);
  for (const auto& [n, in, out] : TailShapes()) {
    const Tensor x = Tensor::Randn({n, in}, rng, 1.0);
    const Tensor w = Tensor::Randn({out, in}, rng, 1.0);
    const Tensor b = Tensor::Randn({out}, rng, 1.0);
    std::vector<double> vec, simd;
    {
      const nn::InferenceGuard guard;
      const KernelModeScope mode(KernelMode::kVector);
      vec = nn::AffineRows(x, w, b).data();
    }
    {
      const nn::InferenceGuard guard;
      const KernelModeScope mode(KernelMode::kSimd);
      simd = nn::AffineRows(x, w, b).data();
    }
    EXPECT_LE(MaxAbsDiff(vec, simd), kSimdTol)
        << "shape " << n << "x" << in << "->" << out;
  }
}

TEST(SimdKernelTest, AffineBitIdenticalToAffineRowsPerRow) {
  // The Predict == PredictBatch bit-identity contract rides on Affine and
  // AffineRows running the exact same per-row kernel in every tier,
  // including kSimd's packed GEMV.
  util::Rng rng(12);
  for (const auto& [n, in, out] : TailShapes()) {
    const Tensor x = Tensor::Randn({n, in}, rng, 1.0);
    const Tensor w = Tensor::Randn({out, in}, rng, 1.0);
    const Tensor b = Tensor::Randn({out}, rng, 1.0);
    const nn::InferenceGuard guard;
    const KernelModeScope mode(KernelMode::kSimd);
    const std::vector<double> rows = nn::AffineRows(x, w, b).data();
    for (size_t r = 0; r < n; ++r) {
      const Tensor xr = Tensor::FromData(
          {in}, std::vector<double>(x.data().begin() + r * in,
                                    x.data().begin() + (r + 1) * in));
      const std::vector<double> single = nn::Affine(w, xr, b).data();
      ASSERT_EQ(std::memcmp(single.data(), rows.data() + r * out,
                            out * sizeof(double)),
                0)
          << "row " << r;
    }
  }
}

TEST(SimdKernelTest, MatMulMatchesVectorTierWithinTolerance) {
  util::Rng rng(13);
  for (const auto& [m, k, n] : TailShapes()) {
    const Tensor a = Tensor::Randn({m, k}, rng, 1.0);
    const Tensor b = Tensor::Randn({k, n}, rng, 1.0);
    std::vector<double> vec, simd;
    {
      const nn::InferenceGuard guard;
      const KernelModeScope mode(KernelMode::kVector);
      vec = nn::MatMul(a, b).data();
    }
    {
      const nn::InferenceGuard guard;
      const KernelModeScope mode(KernelMode::kSimd);
      simd = nn::MatMul(a, b).data();
    }
    EXPECT_LE(MaxAbsDiff(vec, simd), kSimdTol)
        << "shape " << m << "x" << k << "x" << n;
  }
}

TEST(SimdKernelTest, LstmForwardMatchesVectorTierWithinTolerance) {
  // Odd input/hidden dims exercise the GemvBiasPacked2 tail rows and the
  // scalar tail of the vectorised activations.
  util::Rng rng(14);
  for (const auto& [in, hd] :
       {std::pair<size_t, size_t>{24, 16}, {7, 5}, {3, 1}, {13, 9}}) {
    nn::Lstm lstm(in, hd, rng);
    std::vector<Tensor> inputs;
    for (int t = 0; t < 6; ++t) inputs.push_back(Tensor::Randn({in}, rng, 1.0));
    std::vector<double> vec, simd;
    {
      const nn::InferenceGuard guard;
      const KernelModeScope mode(KernelMode::kVector);
      vec = lstm.Forward(inputs).data();
    }
    {
      const nn::InferenceGuard guard;
      const KernelModeScope mode(KernelMode::kSimd);
      simd = lstm.Forward(inputs).data();
    }
    EXPECT_LE(MaxAbsDiff(vec, simd), kSimdTol) << in << "->" << hd;
  }
}

TEST(SimdKernelTest, Conv2dMatchesVectorTierWithinTolerance) {
  // Conv2d's kSimd kernel keeps kVector's element order but fuses each
  // multiply-add into one FMA: at most one rounding of difference per tap,
  // far inside the shared kSimd tolerance.
  util::Rng rng(15);
  const Tensor input = Tensor::Randn({3, 7, 9}, rng, 1.0);
  const Tensor kernel = Tensor::Randn({5, 3, 3, 3}, rng, 1.0);
  std::vector<double> vec, simd;
  {
    const nn::InferenceGuard guard;
    const KernelModeScope mode(KernelMode::kVector);
    vec = nn::Conv2d(input, kernel, 1, 1).data();
  }
  {
    const nn::InferenceGuard guard;
    const KernelModeScope mode(KernelMode::kSimd);
    simd = nn::Conv2d(input, kernel, 1, 1).data();
  }
  ASSERT_EQ(vec.size(), simd.size());
  EXPECT_LE(MaxAbsDiff(vec, simd), kSimdTol);
}

TEST(SimdKernelTest, InactiveSimdIsBitIdenticalToVector) {
  // When AVX2 is compiled out, unsupported by the CPU, or disabled via
  // DEEPOD_SIMD=off, kSimd must take the kVector code path exactly. On an
  // AVX2 host this case runs in the forced-scalar CI job (DEEPOD_SIMD=off).
  if (nn::Avx2Active()) {
    GTEST_SKIP() << "AVX2 active (backend " << nn::SimdBackendName()
                 << "); fallback covered by the DEEPOD_SIMD=off job";
  }
  util::Rng rng(16);
  const Tensor x = Tensor::Randn({3, 13}, rng, 1.0);
  const Tensor w = Tensor::Randn({7, 13}, rng, 1.0);
  const Tensor b = Tensor::Randn({7}, rng, 1.0);
  const nn::InferenceGuard guard;
  std::vector<double> vec, simd;
  {
    const KernelModeScope mode(KernelMode::kVector);
    vec = nn::AffineRows(x, w, b).data();
  }
  {
    const KernelModeScope mode(KernelMode::kSimd);
    simd = nn::AffineRows(x, w, b).data();
  }
  EXPECT_EQ(std::memcmp(vec.data(), simd.data(), vec.size() * sizeof(double)),
            0);
}

TEST(SimdKernelTest, VectorizedActivationsMatchLibm) {
  if (!nn::Avx2Active()) GTEST_SKIP() << "AVX2 inactive";
  util::Rng rng(17);
  std::vector<double> x(1003);  // odd length: scalar tail lanes too
  for (auto& v : x) v = rng.Normal() * 12.0;
  x[0] = 0.0;
  x[1] = 1e-12;
  x[2] = -1e-12;
  x[3] = 750.0;  // saturates
  x[4] = -750.0;
  std::vector<double> y(x.size());
  nn::SigmoidAvx2(x.data(), y.data(), x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(y[i], 1.0 / (1.0 + std::exp(-x[i])), 1e-15) << "x=" << x[i];
  }
  nn::TanhAvx2(x.data(), y.data(), x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(y[i], std::tanh(x[i]), 1e-15) << "x=" << x[i];
  }
}

TEST(SimdKernelTest, PackedCacheInvalidatedByOptimizerStep) {
  if (!nn::Avx2Active()) GTEST_SKIP() << "AVX2 inactive (no packing)";
  util::Rng rng(18);
  Tensor w = Tensor::Randn({6, 5}, rng, 1.0);
  w.set_requires_grad(true);
  const Tensor x = Tensor::Randn({5}, rng, 1.0);
  const Tensor b = Tensor::Randn({6}, rng, 1.0);

  const auto run_simd = [&] {
    const nn::InferenceGuard guard;
    const KernelModeScope mode(KernelMode::kSimd);
    return nn::Affine(w, x, b).data();
  };
  const std::vector<double> before = run_simd();
  const size_t cache_size = nn::PackedCacheSize();
  EXPECT_GE(cache_size, 1u);
  // Re-running hits the cache (no growth) and reproduces the values.
  EXPECT_EQ(run_simd(), before);
  EXPECT_EQ(nn::PackedCacheSize(), cache_size);

  // An optimizer step mutates w in place; the epoch bump must force a
  // repack, so the next kSimd run sees the new weights.
  for (double& g : w.mutable_grad()) g = 1.0;
  nn::Sgd sgd({w}, /*lr=*/0.25);
  sgd.Step();
  const std::vector<double> after = run_simd();
  EXPECT_NE(before, after);
  // And the repacked values agree with a scalar-tier recompute.
  std::vector<double> scalar;
  {
    const nn::InferenceGuard guard;
    const KernelModeScope mode(KernelMode::kVector);
    scalar = nn::Affine(w, x, b).data();
  }
  EXPECT_LE(MaxAbsDiff(after, scalar), kSimdTol);
}

// --- f16 codec ---------------------------------------------------------------

TEST(QuantCodecTest, HalfRoundTripsRepresentableValues) {
  for (const double v : {0.0, 1.0, -1.0, 0.5, -2.25, 65504.0, -65504.0,
                         6.103515625e-05 /* min normal */,
                         5.960464477539063e-08 /* min denormal */}) {
    EXPECT_EQ(nn::HalfToDouble(nn::HalfFromDouble(v)), v) << v;
  }
}

TEST(QuantCodecTest, HalfRoundsToNearestEven) {
  // 1 + 2^-11 is exactly halfway between 1 and 1 + 2^-10 (the f16 mantissa
  // step at 1.0): ties go to the even mantissa, i.e. down to 1.0.
  EXPECT_EQ(nn::HalfToDouble(nn::HalfFromDouble(1.0 + 0x1p-11)), 1.0);
  // 1 + 3*2^-11 is halfway between 1 + 2^-10 and 1 + 2^-9: up to the even.
  EXPECT_EQ(nn::HalfToDouble(nn::HalfFromDouble(1.0 + 3 * 0x1p-11)),
            1.0 + 0x1p-9);
  // Just above/below a tie rounds to nearest, not to even.
  EXPECT_EQ(nn::HalfToDouble(nn::HalfFromDouble(1.0 + 0x1p-11 + 0x1p-30)),
            1.0 + 0x1p-10);
}

TEST(QuantCodecTest, HalfHandlesOverflowDenormalsAndNan) {
  EXPECT_TRUE(std::isinf(nn::HalfToDouble(nn::HalfFromDouble(1e6))));
  EXPECT_TRUE(std::isinf(nn::HalfToDouble(nn::HalfFromDouble(65520.0))));
  EXPECT_LT(nn::HalfToDouble(nn::HalfFromDouble(-1e6)), 0.0);
  // Below half the smallest denormal: flushes to (signed) zero.
  EXPECT_EQ(nn::HalfToDouble(nn::HalfFromDouble(1e-9)), 0.0);
  // A denormal that must round, not truncate: 1.5 * 2^-24 -> 2^-23.
  EXPECT_EQ(nn::HalfToDouble(nn::HalfFromDouble(1.5 * 0x1p-24)), 0x1p-23);
  EXPECT_TRUE(std::isnan(
      nn::HalfToDouble(nn::HalfFromDouble(std::nan("")))));
}

TEST(QuantCodecTest, HalfErrorBoundedByHalfUlp) {
  util::Rng rng(19);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.Normal() * 8.0;
    const double q = nn::HalfToDouble(nn::HalfFromDouble(v));
    // Relative half-ulp bound for binary16 normals: 2^-11.
    EXPECT_LE(std::abs(q - v), std::abs(v) * 0x1p-11 + 0x1p-25) << v;
  }
}

// --- int8 codec --------------------------------------------------------------

TEST(QuantCodecTest, Int8PerRowAbsmaxScales) {
  // Row 0: absmax 6.35 -> scale 0.05, every dequantised value within
  // scale/2. Row 1: all zeros -> scale 0 and zero codes.
  const std::vector<double> data = {6.35, -3.1, 0.004, 1.0,
                                    0.0,  0.0,  0.0,   0.0};
  std::vector<double> scales(2);
  std::vector<int8_t> q(8);
  nn::QuantizeInt8(data.data(), 2, 4, scales.data(), q.data());
  EXPECT_DOUBLE_EQ(scales[0], 6.35 / 127.0);
  EXPECT_EQ(q[0], 127);  // the absmax element pins the scale
  for (size_t j = 0; j < 4; ++j) {
    EXPECT_LE(std::abs(q[j] * scales[0] - data[j]), scales[0] / 2.0 + 1e-15);
  }
  EXPECT_EQ(scales[1], 0.0);
  for (size_t j = 4; j < 8; ++j) EXPECT_EQ(q[j], 0);
}

TEST(QuantCodecTest, FakeQuantizeStateDictTouchesOnlyEligibleEntries) {
  Tensor weight = Tensor::FromData({2, 3}, {1.0001, -2.3, 0.7, 4.4, -5.5, 6.6});
  Tensor bias = Tensor::FromData({3}, {0.123456789, -1.0, 2.0});
  std::vector<double> running = {0.333333333, 0.666666666};
  nn::StateDict dict;
  dict.AddParameter("w", weight);
  dict.AddParameter("b", bias);  // 1-D: not eligible
  dict.AddBuffer("bn.mean", {2}, running.data());

  const std::vector<double> bias_before = bias.data();
  const std::vector<double> running_before = running;
  const uint64_t epoch_before = nn::ParamEpoch();
  EXPECT_EQ(nn::FakeQuantizeStateDict(dict, QuantMode::kInt8), 1u);
  EXPECT_GT(nn::ParamEpoch(), epoch_before);
  EXPECT_EQ(bias.data(), bias_before);
  EXPECT_EQ(running, running_before);
  // The weight actually snapped (1.0001 is not on the int8 grid).
  EXPECT_NE(weight.data()[0], 1.0001);
  // kNone is a free no-op.
  const uint64_t epoch_mid = nn::ParamEpoch();
  EXPECT_EQ(nn::FakeQuantizeStateDict(dict, QuantMode::kNone), 0u);
  EXPECT_EQ(nn::ParamEpoch(), epoch_mid);
}

// --- Serialize v3 ------------------------------------------------------------

struct QuantDictFixture {
  Tensor weight;
  std::vector<double> running = {0.5, -0.5};
  double scale = 42.0;

  QuantDictFixture() {
    util::Rng rng(20);
    weight = Tensor::Randn({5, 9}, rng, 1.0);  // tail rows + odd cols
  }

  nn::StateDict Dict() {
    nn::StateDict dict;
    dict.AddParameter("mlp.weight", weight);
    dict.AddBuffer("bn.running_mean", {2}, running.data());
    dict.AddScalarBuffer("time_scale", &scale);
    return dict;
  }
};

uint32_t BufferVersion(const std::vector<uint8_t>& bytes) {
  return static_cast<uint32_t>(bytes[4]) | static_cast<uint32_t>(bytes[5]) << 8 |
         static_cast<uint32_t>(bytes[6]) << 16 |
         static_cast<uint32_t>(bytes[7]) << 24;
}

TEST(SerializeQuantTest, AllF64DictStaysVersion2ByteIdentical) {
  QuantDictFixture src;
  const std::vector<uint8_t> plain = nn::SerializeStateDict(src.Dict());
  const std::vector<uint8_t> none =
      nn::SerializeStateDict(src.Dict(), QuantMode::kNone);
  EXPECT_EQ(plain, none);
  EXPECT_EQ(BufferVersion(plain), 2u);
}

TEST(SerializeQuantTest, QuantRoundTripDequantisesExactly) {
  for (const QuantMode mode : {QuantMode::kFp16, QuantMode::kInt8}) {
    QuantDictFixture src;
    const std::vector<uint8_t> bytes = nn::SerializeStateDict(src.Dict(), mode);
    EXPECT_EQ(BufferVersion(bytes), 3u);

    // The expected stored values are the fake-quantised weights; buffers
    // stay exact.
    std::vector<double> snapped = src.weight.data();
    nn::FakeQuantizeValues(snapped.data(), 5, 9, mode);

    QuantDictFixture dst;
    dst.weight.data().assign(45, 0.0);
    dst.running = {9.0, 9.0};
    dst.scale = 0.0;
    nn::StateDict dict = dst.Dict();
    ASSERT_TRUE(nn::DeserializeStateDict(bytes, dict).ok());
    EXPECT_EQ(dst.weight.data(), snapped);
    EXPECT_EQ(dst.running, src.running);
    EXPECT_EQ(dst.scale, src.scale);

    // Record metadata: the weight is tagged with the quantised dtype, and
    // an int8 record exposes its per-row scales.
    std::vector<nn::TensorRecord> records;
    ASSERT_TRUE(nn::IndexStateDict(bytes, &records).ok());
    const auto* wrec = &records[0];
    ASSERT_EQ(wrec->name, "mlp.weight");
    EXPECT_EQ(wrec->dtype,
              mode == QuantMode::kFp16 ? nn::kDtypeF16 : nn::kDtypeI8);
    EXPECT_EQ(nn::ReadRecordPayload(bytes, *wrec), snapped);
    if (mode == QuantMode::kInt8) {
      EXPECT_EQ(nn::ReadRecordScales(bytes, *wrec).size(), 5u);
      EXPECT_EQ(nn::RecordPayloadBytes(*wrec), 5 * sizeof(double) + 45);
    } else {
      EXPECT_EQ(nn::RecordPayloadBytes(*wrec), 45 * sizeof(uint16_t));
    }
  }
}

TEST(SerializeQuantTest, QuantDtypeRejectedInVersion2) {
  QuantDictFixture src;
  std::vector<uint8_t> bytes =
      nn::SerializeStateDict(src.Dict(), QuantMode::kFp16);
  ASSERT_EQ(BufferVersion(bytes), 3u);
  // Forge the version back to 2 and re-seal the checksum: a conforming v2
  // reader must reject the f16 record as a bad dtype, not misparse it.
  bytes[4] = 2;
  uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a 64, as serialize.cc seals it
  for (size_t i = 0; i + 8 < bytes.size(); ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ull;
  }
  std::memcpy(bytes.data() + bytes.size() - 8, &h, 8);
  std::vector<nn::TensorRecord> records;
  const nn::LoadStatus status = nn::IndexStateDict(bytes, &records);
  EXPECT_EQ(status.kind, nn::LoadErrorKind::kBadDtype);
}

// --- End-to-end artifact + serving budgets -----------------------------------

// Tiny dataset + untrained (but embedding-initialised) model: the quant
// budgets measure weight-rounding error propagation, which does not need a
// trained model — only realistic magnitudes, which initialisation provides.
const sim::Dataset& QuantDataset() {
  static const sim::Dataset* dataset = [] {
    sim::DatasetConfig config;
    config.city = road::XianSimConfig();
    config.city.rows = 6;
    config.city.cols = 6;
    config.trips_per_day = 12;
    config.num_days = 15;
    config.seed = 17;
    return new sim::Dataset(sim::BuildDataset(config));
  }();
  return *dataset;
}

core::DeepOdModel& QuantModel() {
  static core::DeepOdModel* model = [] {
    core::DeepOdConfig config = core::DeepOdConfig().Scaled(16);
    config.epochs = 1;
    config.batch_size = 8;
    auto* m = new core::DeepOdModel(config, QuantDataset());
    m->SetTraining(false);
    return m;
  }();
  return *model;
}

std::vector<traj::OdInput> QuantOds(size_t n) {
  const auto& dataset = QuantDataset();
  std::vector<traj::OdInput> ods;
  for (size_t i = 0; i < std::min(n, dataset.test.size()); ++i) {
    ods.push_back(dataset.test[i].od);
  }
  return ods;
}

std::string QuantArtifactPath() {
  static const std::string* path = [] {
    auto* p = new std::string(testing::TempDir() + "simd_quant_model.artifact");
    const auto& dataset = QuantDataset();
    double begin = dataset.test.front().od.departure_time, end = begin;
    for (const auto& trip : dataset.test) {
      begin = std::min(begin, trip.od.departure_time);
      end = std::max(end, trip.od.departure_time);
    }
    const sim::SnapshotSpeedField speed = sim::SnapshotSpeedField::Capture(
        *dataset.speed_matrices, begin, end);
    io::WriteModelArtifact(*p, QuantModel(), &speed);
    return p;
  }();
  return *path;
}

// Explicit MAE budgets of the quantised predict path, in seconds of ETA,
// over the tiny-city test queries (mean ETA there is a few hundred
// seconds). Measured values are ~0.024 s (fp16) and ~0.14 s (int8); the
// budgets leave ~4-7x headroom so they catch contract regressions, not
// run-to-run noise.
constexpr double kFp16MaeBudget = 0.1;
constexpr double kInt8MaeBudget = 1.0;

TEST(QuantArtifactTest, QuantisedPredictionsMeetMaeBudget) {
  const auto ods = QuantOds(24);
  ASSERT_FALSE(ods.empty());
  const io::ServingModel golden =
      io::LoadModelArtifact(QuantArtifactPath(), QuantDataset().network);
  EXPECT_EQ(golden.quant, QuantMode::kNone);
  const std::vector<double> want = golden.model->PredictBatch(ods);

  for (const auto& [mode, budget] :
       {std::pair<QuantMode, double>{QuantMode::kFp16, kFp16MaeBudget},
        {QuantMode::kInt8, kInt8MaeBudget}}) {
    io::ArtifactOptions options;
    options.quant = mode;
    const io::ServingModel quant = io::LoadModelArtifact(
        QuantArtifactPath(), QuantDataset().network, options);
    EXPECT_EQ(quant.quant, mode);
    // Across batch sizes and thread counts: the quantised model must stay
    // deterministic (same snapped weights => same answers regardless of
    // batching) and within budget vs fp64.
    std::vector<double> reference;
    util::ThreadPool pool(4);
    for (const size_t batch : {size_t{1}, size_t{7}, ods.size()}) {
      for (util::ThreadPool* p : {static_cast<util::ThreadPool*>(nullptr),
                                  &pool}) {
        std::vector<double> got;
        for (size_t pos = 0; pos < ods.size(); pos += batch) {
          const size_t m = std::min(batch, ods.size() - pos);
          const auto part =
              quant.model->PredictBatch({ods.data() + pos, m}, p);
          got.insert(got.end(), part.begin(), part.end());
        }
        if (reference.empty()) {
          reference = got;
          double mae = 0.0;
          for (size_t i = 0; i < got.size(); ++i) {
            mae += std::abs(got[i] - want[i]);
          }
          mae /= static_cast<double>(got.size());
          std::printf("%s MAE vs fp64: %.6f s (budget %.3f)\n",
                      nn::QuantModeName(mode), mae, budget);
          EXPECT_LE(mae, budget)
              << nn::QuantModeName(mode) << " MAE over budget";
          EXPECT_GT(mae, 0.0) << "quantisation changed nothing?";
        } else {
          EXPECT_EQ(got, reference)
              << nn::QuantModeName(mode) << " batch=" << batch;
        }
      }
    }
  }
}

TEST(QuantArtifactTest, StoredQuantArtifactRoundTrips) {
  // Write the artifact with int8 storage (serialize v3), load it plainly:
  // the loader reports the stored mode and the values are already snapped,
  // so a second load-time quantisation request is a no-op.
  const std::string path = testing::TempDir() + "simd_quant_stored.artifact";
  io::ArtifactOptions write_options;
  write_options.quant = QuantMode::kInt8;
  io::WriteModelArtifact(path, QuantModel(), nullptr, write_options);

  const io::ServingModel stored =
      io::LoadModelArtifact(path, QuantDataset().network);
  EXPECT_EQ(stored.quant, QuantMode::kInt8);

  io::ArtifactOptions load_options;
  load_options.quant = QuantMode::kInt8;
  const io::ServingModel again =
      io::LoadModelArtifact(path, QuantDataset().network, load_options);
  const auto ods = QuantOds(8);
  const std::vector<double> a = stored.model->PredictBatch(ods);
  const std::vector<double> b = again.model->PredictBatch(ods);
  EXPECT_EQ(a, b);

  // And the quantised file is genuinely smaller than its fp64 sibling.
  std::vector<uint8_t> quant_bytes, plain_bytes;
  ASSERT_TRUE(nn::ReadFileBytes(path, &quant_bytes).ok());
  ASSERT_TRUE(nn::ReadFileBytes(QuantArtifactPath(), &plain_bytes).ok());
  EXPECT_LT(quant_bytes.size(), plain_bytes.size());
  std::remove(path.c_str());
}

TEST(QuantArtifactTest, EtaServiceServesQuantisedOnSimdTier) {
  const auto ods = QuantOds(12);
  serve::EtaServiceOptions fp64_options;
  fp64_options.cache_capacity = 0;
  const auto fp64 = serve::EtaService::FromArtifact(
      QuantArtifactPath(), QuantDataset().network, fp64_options);

  serve::EtaServiceOptions options;
  options.cache_capacity = 0;
  options.quant = QuantMode::kInt8;
  options.kernel_mode = KernelMode::kSimd;
  const auto service = serve::EtaService::FromArtifact(
      QuantArtifactPath(), QuantDataset().network, options);
  double mae = 0.0;
  for (const auto& od : ods) {
    const double got = service->Estimate(od);
    EXPECT_TRUE(std::isfinite(got));
    mae += std::abs(got - fp64->Estimate(od));
  }
  mae /= static_cast<double>(ods.size());
  // int8 budget plus the kSimd tolerance (negligible next to it).
  EXPECT_LE(mae, kInt8MaeBudget);
}

}  // namespace
}  // namespace deepod
