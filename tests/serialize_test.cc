// Tests for the tagged state-dict format (nn/serialize.h, v2) and the
// named-state plumbing it rides on: round-trip bit-identity, strict
// validate-before-write semantics, typed errors naming the first offending
// tensor, and compatibility with the legacy positional blob (v1).

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "nn/module.h"
#include "nn/conv.h"
#include "nn/serialize.h"
#include "nn/tensor.h"
#include "util/rng.h"

namespace deepod::nn {
namespace {

// A small dict with one matrix parameter, one vector buffer and one scalar
// buffer — the three entry kinds the format must carry.
struct DictFixture {
  Tensor weight = Tensor::FromData({2, 3}, {1, 2, 3, 4, 5, 6});
  std::vector<double> running = {0.5, -0.5};
  double scale = 42.0;

  StateDict Dict() {
    StateDict dict;
    dict.AddParameter("mlp.weight", weight);
    dict.AddBuffer("bn.running_mean", {2}, running.data());
    dict.AddScalarBuffer("time_scale", &scale);
    return dict;
  }
};

TEST(StateDictTest, RoundTripIsBitExact) {
  DictFixture src;
  const std::vector<uint8_t> bytes = SerializeStateDict(src.Dict());
  EXPECT_EQ(bytes.size(), SerializedStateSize(src.Dict()));
  EXPECT_TRUE(IsStateDictBuffer(bytes));
  EXPECT_FALSE(IsLegacyParameterBuffer(bytes));

  DictFixture dst;
  dst.weight.data().assign(6, 0.0);
  dst.running = {9.0, 9.0};
  dst.scale = 0.0;
  StateDict dict = dst.Dict();
  ASSERT_TRUE(DeserializeStateDict(bytes, dict).ok());
  EXPECT_EQ(dst.weight.data(), src.weight.data());
  EXPECT_EQ(dst.running, src.running);
  EXPECT_EQ(dst.scale, src.scale);
}

TEST(StateDictTest, LoadMatchesByNameNotPosition) {
  DictFixture src;
  const std::vector<uint8_t> bytes = SerializeStateDict(src.Dict());

  // Same entries registered in a different order: by-name matching must
  // still restore each one.
  DictFixture dst;
  dst.weight.data().assign(6, 0.0);
  dst.running = {0.0, 0.0};
  dst.scale = 0.0;
  StateDict dict;
  dict.AddScalarBuffer("time_scale", &dst.scale);
  dict.AddBuffer("bn.running_mean", {2}, dst.running.data());
  dict.AddParameter("mlp.weight", dst.weight);
  ASSERT_TRUE(DeserializeStateDict(bytes, dict).ok());
  EXPECT_EQ(dst.weight.data(), src.weight.data());
  EXPECT_EQ(dst.scale, 42.0);
}

TEST(StateDictTest, FindAndNumElements) {
  DictFixture src;
  const StateDict dict = src.Dict();
  ASSERT_NE(dict.Find("bn.running_mean"), nullptr);
  EXPECT_TRUE(dict.Find("bn.running_mean")->is_buffer);
  EXPECT_FALSE(dict.Find("mlp.weight")->is_buffer);
  EXPECT_EQ(dict.Find("nope"), nullptr);
  EXPECT_EQ(dict.NumElements(), 6u + 2u + 1u);
}

TEST(StateDictTest, BatchNormBuffersAreNamedStateNotParameters) {
  BatchNorm2d bn(3);
  const StateDict dict = bn.State("cnn.bn1.");
  const auto* mean = dict.Find("cnn.bn1.running_mean");
  const auto* var = dict.Find("cnn.bn1.running_var");
  ASSERT_NE(mean, nullptr);
  ASSERT_NE(var, nullptr);
  EXPECT_TRUE(mean->is_buffer);
  EXPECT_TRUE(var->is_buffer);
  // Running statistics must not reach the optimiser.
  EXPECT_EQ(bn.Parameters().size() + 2, dict.size());
  for (const auto& e : bn.NamedParameters()) {
    EXPECT_FALSE(e.is_buffer) << e.name;
  }
  EXPECT_EQ(bn.NamedBuffers().size(), 2u);
}

TEST(StateDictTest, HierarchicalNamesThroughModuleTree) {
  util::Rng rng(7);
  Mlp2 mlp(4, 8, 2, rng);
  const StateDict dict = mlp.State("mlp1.");
  EXPECT_EQ(dict.size(), mlp.Parameters().size());
  for (const auto& e : dict.entries()) {
    EXPECT_EQ(e.name.rfind("mlp1.", 0), 0u) << e.name;
  }
  // Named parameters come back in Parameters() order (the optimiser order).
  const auto params = mlp.Parameters();
  const auto named = mlp.NamedParameters();
  ASSERT_EQ(params.size(), named.size());
  for (size_t i = 0; i < params.size(); ++i) {
    EXPECT_EQ(named[i].data, params[i].data().data());
  }
}

// --- Negative paths ---------------------------------------------------------

TEST(StateDictTest, TruncationReportedBeforeAnyWrite) {
  DictFixture src;
  std::vector<uint8_t> bytes = SerializeStateDict(src.Dict());
  bytes.resize(bytes.size() - 12);  // chop into the last payload/checksum

  DictFixture dst;
  dst.scale = -1.0;
  StateDict dict = dst.Dict();
  const LoadStatus status = DeserializeStateDict(bytes, dict);
  EXPECT_EQ(status.kind, LoadErrorKind::kTruncated);
  EXPECT_EQ(dst.scale, -1.0);  // untouched
  EXPECT_EQ(dst.weight.at(0, 0), 1.0);
}

TEST(StateDictTest, BadMagicReported) {
  DictFixture src;
  std::vector<uint8_t> bytes = SerializeStateDict(src.Dict());
  bytes[0] ^= 0xff;
  std::vector<TensorRecord> records;
  EXPECT_EQ(IndexStateDict(bytes, &records).kind, LoadErrorKind::kBadMagic);
}

TEST(StateDictTest, LegacyMagicReportedAsBadMagicWithHint) {
  DictFixture src;
  const std::vector<uint8_t> legacy = SerializeParameters({src.weight});
  EXPECT_TRUE(IsLegacyParameterBuffer(legacy));
  std::vector<TensorRecord> records;
  const LoadStatus status = IndexStateDict(legacy, &records);
  EXPECT_EQ(status.kind, LoadErrorKind::kBadMagic);
  EXPECT_NE(status.message.find("legacy"), std::string::npos);
}

TEST(StateDictTest, BadVersionReported) {
  DictFixture src;
  std::vector<uint8_t> bytes = SerializeStateDict(src.Dict());
  bytes[4] = 99;  // version field follows the u32 magic
  std::vector<TensorRecord> records;
  EXPECT_EQ(IndexStateDict(bytes, &records).kind, LoadErrorKind::kBadVersion);
}

TEST(StateDictTest, CorruptPayloadFailsChecksum) {
  DictFixture src;
  std::vector<uint8_t> bytes = SerializeStateDict(src.Dict());
  std::vector<TensorRecord> records;
  ASSERT_TRUE(IndexStateDict(bytes, &records).ok());
  bytes[records[0].payload_offset] ^= 0x01;  // flip one payload bit
  DictFixture dst;
  StateDict dict = dst.Dict();
  EXPECT_EQ(DeserializeStateDict(bytes, dict).kind,
            LoadErrorKind::kBadChecksum);
}

TEST(StateDictTest, TrailingGarbageReported) {
  DictFixture src;
  std::vector<uint8_t> bytes = SerializeStateDict(src.Dict());
  bytes.insert(bytes.end(), {0xde, 0xad, 0xbe, 0xef});
  std::vector<TensorRecord> records;
  EXPECT_EQ(IndexStateDict(bytes, &records).kind,
            LoadErrorKind::kTrailingBytes);
}

TEST(StateDictTest, ShapeMismatchNamesTheTensor) {
  DictFixture src;
  const std::vector<uint8_t> bytes = SerializeStateDict(src.Dict());

  Tensor wrong = Tensor::Zeros({3, 2});  // transposed vs the file's [2, 3]
  DictFixture dst;
  StateDict dict;
  dict.AddParameter("mlp.weight", wrong);
  dict.AddBuffer("bn.running_mean", {2}, dst.running.data());
  dict.AddScalarBuffer("time_scale", &dst.scale);
  const LoadStatus status = DeserializeStateDict(bytes, dict);
  EXPECT_EQ(status.kind, LoadErrorKind::kShapeMismatch);
  EXPECT_EQ(status.tensor, "mlp.weight");
  EXPECT_NE(status.message.find("[2, 3]"), std::string::npos) << status.message;
  // Nothing was written, not even the entries that did match.
  EXPECT_EQ(dst.scale, 42.0);
  EXPECT_EQ(dst.running[0], 0.5);
}

TEST(StateDictTest, MissingTensorNamesTheTensor) {
  DictFixture src;
  const std::vector<uint8_t> bytes = SerializeStateDict(src.Dict());
  DictFixture dst;
  StateDict dict = dst.Dict();
  double extra = 0.0;
  dict.AddScalarBuffer("optimizer.step", &extra);  // not in the file
  const LoadStatus status = DeserializeStateDict(bytes, dict);
  EXPECT_EQ(status.kind, LoadErrorKind::kMissingTensor);
  EXPECT_EQ(status.tensor, "optimizer.step");
}

TEST(StateDictTest, UnexpectedTensorNamesTheTensor) {
  DictFixture src;
  StateDict wide = src.Dict();
  double extra = 1.0;
  wide.AddScalarBuffer("stray", &extra);
  const std::vector<uint8_t> bytes = SerializeStateDict(wide);

  DictFixture dst;
  StateDict dict = dst.Dict();  // does not expect "stray"
  const LoadStatus status = DeserializeStateDict(bytes, dict);
  EXPECT_EQ(status.kind, LoadErrorKind::kUnexpectedTensor);
  EXPECT_EQ(status.tensor, "stray");
}

TEST(StateDictTest, ThrowIfErrorCarriesTypedStatus) {
  const LoadStatus bad =
      LoadStatus::Error(LoadErrorKind::kBadChecksum, "boom", "t");
  try {
    ThrowIfError(bad);
    FAIL() << "expected SerializeError";
  } catch (const SerializeError& e) {
    EXPECT_EQ(e.status().kind, LoadErrorKind::kBadChecksum);
    EXPECT_EQ(e.status().tensor, "t");
    EXPECT_NE(std::string(e.what()).find("bad_checksum"), std::string::npos);
  }
  EXPECT_STREQ(LoadErrorKindName(LoadErrorKind::kMissingTensor),
               "missing_tensor");
  EXPECT_STREQ(LoadErrorKindName(LoadErrorKind::kNone), "ok");
}

TEST(StateDictTest, FileHelpersAndIoError) {
  DictFixture src;
  const std::string path = testing::TempDir() + "serialize_test_dict.bin";
  ASSERT_TRUE(SaveStateDict(path, src.Dict()).ok());

  DictFixture dst;
  dst.scale = 0.0;
  StateDict dict = dst.Dict();
  ASSERT_TRUE(LoadStateDict(path, dict).ok());
  EXPECT_EQ(dst.scale, 42.0);
  std::remove(path.c_str());

  std::vector<uint8_t> bytes;
  EXPECT_EQ(ReadFileBytes(path + ".does-not-exist", &bytes).kind,
            LoadErrorKind::kIoError);
  StateDict dict2 = dst.Dict();
  EXPECT_EQ(LoadStateDict(path + ".does-not-exist", dict2).kind,
            LoadErrorKind::kIoError);
}

TEST(StateDictTest, LegacyPositionalRoundTripStillWorks) {
  Tensor a = Tensor::FromData({2}, {1.0, 2.0});
  Tensor b = Tensor::FromData({1, 2}, {3.0, 4.0});
  const std::vector<uint8_t> bytes = SerializeParameters({a, b});
  EXPECT_EQ(bytes.size(), SerializedSize({a, b}));

  Tensor a2 = Tensor::Zeros({2});
  Tensor b2 = Tensor::Zeros({1, 2});
  std::vector<Tensor> dst = {a2, b2};
  DeserializeParameters(bytes, dst);
  EXPECT_EQ(a2.data(), a.data());
  EXPECT_EQ(b2.data(), b.data());

  // Positional count mismatch is a typed error.
  std::vector<Tensor> wrong = {Tensor::Zeros({2})};
  try {
    DeserializeParameters(bytes, wrong);
    FAIL() << "expected SerializeError";
  } catch (const SerializeError& e) {
    EXPECT_EQ(e.status().kind, LoadErrorKind::kCountMismatch);
  }
}

}  // namespace
}  // namespace deepod::nn
