// Million-trip data plane determinism tests: parallel trip synthesis must
// be thread-count invariant, and out-of-core training over sharded trip
// stores must match the in-memory path bit-for-bit, epoch for epoch.
#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/deepod_model.h"
#include "core/trainer.h"
#include "core/trip_feed.h"
#include "io/sharded_trip_source.h"
#include "io/trip_store.h"
#include "road/edge_graph.h"
#include "sim/trip_gen.h"
#include "util/rng.h"
#include "util/weighted_digraph.h"

namespace deepod {
namespace {

sim::DatasetConfig TinyGenConfig() {
  sim::DatasetConfig config;
  config.city = road::XianSimConfig();
  config.city.rows = 6;
  config.city.cols = 6;
  config.trips_per_day = 12;
  config.num_days = 15;
  config.seed = 17;
  return config;
}

void ExpectTripsIdentical(const std::vector<traj::TripRecord>& a,
                          const std::vector<traj::TripRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::bit_cast<uint64_t>(a[i].od.departure_time),
              std::bit_cast<uint64_t>(b[i].od.departure_time))
        << i;
    EXPECT_EQ(std::bit_cast<uint64_t>(a[i].travel_time),
              std::bit_cast<uint64_t>(b[i].travel_time))
        << i;
    EXPECT_EQ(a[i].od.origin_segment, b[i].od.origin_segment) << i;
    EXPECT_EQ(a[i].od.dest_segment, b[i].od.dest_segment) << i;
    ASSERT_EQ(a[i].trajectory.path.size(), b[i].trajectory.path.size()) << i;
    for (size_t k = 0; k < a[i].trajectory.path.size(); ++k) {
      EXPECT_EQ(a[i].trajectory.path[k].segment_id,
                b[i].trajectory.path[k].segment_id)
          << i;
      EXPECT_EQ(std::bit_cast<uint64_t>(a[i].trajectory.path[k].enter),
                std::bit_cast<uint64_t>(b[i].trajectory.path[k].enter))
          << i;
    }
  }
}

TEST(TripGenTest, ThreadCountDoesNotChangeTheTripSet) {
  const sim::DatasetConfig config = TinyGenConfig();
  sim::Dataset env;
  sim::InitDatasetEnvironment(config, &env);
  const sim::TripSimulator simulator(env.network, *env.traffic, *env.weather);

  std::vector<std::vector<traj::TripRecord>> runs;
  for (size_t threads : {1, 2, 8}) {
    sim::TripGenOptions options;
    options.num_threads = threads;
    runs.push_back(sim::GenerateTrips(simulator, config, options));
  }
  ExpectTripsIdentical(runs[0], runs[1]);
  ExpectTripsIdentical(runs[0], runs[2]);
}

TEST(TripGenTest, PerTripStreamsAreIndependentOfEachOther) {
  // ForStream must give trip i the same draws no matter how many other
  // streams were consumed first — the property the chunked workers rely on.
  util::Rng a = util::Rng::ForStream(99, 7);
  util::Rng waste = util::Rng::ForStream(99, 6);
  for (int i = 0; i < 100; ++i) waste.Uniform();
  util::Rng b = util::Rng::ForStream(99, 7);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(TripFeedTest, ShardEpochOrderIsASeedDeterministicPermutation) {
  const std::vector<size_t> shard_sizes = {5, 0, 3, 7};
  util::Rng rng_a(123), rng_b(123), rng_c(124);
  const auto order_a = core::BuildShardEpochOrder(rng_a, shard_sizes);
  const auto order_b = core::BuildShardEpochOrder(rng_b, shard_sizes);
  const auto order_c = core::BuildShardEpochOrder(rng_c, shard_sizes);
  EXPECT_EQ(order_a, order_b);
  EXPECT_NE(order_a, order_c);

  std::vector<bool> seen(15, false);
  ASSERT_EQ(order_a.size(), 15u);
  for (const size_t idx : order_a) {
    ASSERT_LT(idx, 15u);
    EXPECT_FALSE(seen[idx]);
    seen[idx] = true;
  }
}

// Fixture sharing one generated dataset + sharded store across the
// out-of-core tests (generation is the expensive part).
class ShardedTrainingTest : public ::testing::Test {
 protected:
  static constexpr size_t kShards = 4;

  static void SetUpTestSuite() {
    dataset_ = new sim::Dataset(sim::BuildDatasetParallel(TinyGenConfig()));
    shard_paths_ = new std::vector<std::string>(io::WriteTripShards(
        testing::TempDir(), "datagen_test_shard", dataset_->train, kShards));
  }

  static sim::Dataset* dataset_;
  static std::vector<std::string>* shard_paths_;
};

sim::Dataset* ShardedTrainingTest::dataset_ = nullptr;
std::vector<std::string>* ShardedTrainingTest::shard_paths_ = nullptr;

TEST_F(ShardedTrainingTest, SourceMirrorsTheGroupedInMemoryOrder) {
  io::ShardedTripSource sharded(*shard_paths_);
  ASSERT_EQ(sharded.size(), dataset_->train.size());
  ASSERT_EQ(sharded.num_shards(), kShards);

  core::InMemoryTripFeed grouped(dataset_->train, sharded.shard_sizes());
  util::Rng rng_a(7), rng_b(7);
  sharded.BeginEpoch(rng_a);
  grouped.BeginEpoch(rng_b);
  EXPECT_EQ(sharded.order(), grouped.order());

  // The records behind the shared order must decode identically too.
  sharded.PrefetchWindow(0, sharded.size());
  for (size_t pos = 0; pos < sharded.size(); ++pos) {
    const auto& a = sharded.At(pos);
    const auto& b = grouped.At(pos);
    EXPECT_EQ(std::bit_cast<uint64_t>(a.od.departure_time),
              std::bit_cast<uint64_t>(b.od.departure_time))
        << pos;
    EXPECT_EQ(std::bit_cast<uint64_t>(a.travel_time),
              std::bit_cast<uint64_t>(b.travel_time))
        << pos;
  }
}

TEST_F(ShardedTrainingTest, AtOutsideThePrefetchedWindowThrows) {
  io::ShardedTripSource::Options options;
  options.window_size = 4;
  io::ShardedTripSource sharded(*shard_paths_, options);
  sharded.PrefetchWindow(0, 4);
  EXPECT_NO_THROW(sharded.At(3));
  EXPECT_THROW(sharded.At(60), std::logic_error);
}

TEST_F(ShardedTrainingTest, StreamedInitMatchesInMemoryBitForBit) {
  // deepod_train's out-of-core path never materialises the train split: the
  // co-occurrence edge graph and the time scale come from one decode pass
  // over the shards. Both must match the in-memory constructor bit for bit
  // — the co-occurrence weights are order-independent sums of 1.0, and the
  // shards concatenate in dataset.train order so the time-scale summation
  // order is identical too.
  core::DeepOdConfig config = core::DeepOdConfig().Scaled(16);
  config.num_threads = 1;
  core::DeepOdModel model_mem(config, *dataset_);

  road::EdgeGraphAccumulator edges;
  double time_sum = 0.0;
  size_t trips = 0;
  traj::TripRecord record;
  for (const std::string& path : *shard_paths_) {
    const auto reader = io::TripStoreReader::OpenOrThrow(path);
    for (size_t i = 0; i < reader.size(); ++i) {
      reader.Decode(i, &record);
      edges.AddSequence(dataset_->network, record.trajectory.SegmentIds());
      time_sum += record.travel_time;
      ++trips;
    }
  }
  ASSERT_EQ(trips, dataset_->train.size());
  const util::WeightedDigraph edge_graph = edges.Build(dataset_->network);
  const double time_scale =
      trips == 0 ? 1.0 : time_sum / static_cast<double>(trips);
  core::DeepOdModel model_streamed(config, *dataset_, &edge_graph, time_scale);

  EXPECT_EQ(std::bit_cast<uint64_t>(model_mem.time_scale()),
            std::bit_cast<uint64_t>(model_streamed.time_scale()));
  const nn::StateDict state_mem = model_mem.State();
  const nn::StateDict state_str = model_streamed.State();
  ASSERT_EQ(state_mem.entries().size(), state_str.entries().size());
  for (size_t e = 0; e < state_mem.entries().size(); ++e) {
    const auto& a = state_mem.entries()[e];
    const auto& b = state_str.entries()[e];
    ASSERT_EQ(a.size, b.size) << a.name;
    EXPECT_EQ(std::memcmp(a.data, b.data, a.size * sizeof(double)), 0)
        << a.name;
  }
}

TEST_F(ShardedTrainingTest, OutOfCoreTrainingMatchesInMemoryEpochForEpoch) {
  core::DeepOdConfig config = core::DeepOdConfig().Scaled(16);
  config.epochs = 2;
  config.num_threads = 1;

  core::DeepOdModel model_mem(config, *dataset_);
  core::DeepOdModel model_ooc(config, *dataset_);

  io::ShardedTripSource::Options options;
  options.window_size = 16;  // several windows per epoch, so prefetch cycles
  io::ShardedTripSource sharded(*shard_paths_, options);
  core::InMemoryTripFeed grouped(dataset_->train, sharded.shard_sizes());

  core::DeepOdTrainer trainer_mem(model_mem, *dataset_, &grouped);
  core::DeepOdTrainer trainer_ooc(model_ooc, *dataset_, &sharded);

  for (int epoch = 1; epoch <= config.epochs; ++epoch) {
    const double mae_mem = trainer_mem.TrainPrefix(epoch);
    const double mae_ooc = trainer_ooc.TrainPrefix(epoch);
    EXPECT_EQ(std::bit_cast<uint64_t>(mae_mem), std::bit_cast<uint64_t>(mae_ooc))
        << "epoch " << epoch;
  }

  const nn::StateDict state_mem = model_mem.State();
  const nn::StateDict state_ooc = model_ooc.State();
  std::vector<double> flat_mem, flat_ooc;
  for (const auto& e : state_mem.entries()) {
    flat_mem.insert(flat_mem.end(), e.data, e.data + e.size);
  }
  for (const auto& e : state_ooc.entries()) {
    flat_ooc.insert(flat_ooc.end(), e.data, e.data + e.size);
  }
  ASSERT_EQ(flat_mem.size(), flat_ooc.size());
  for (size_t i = 0; i < flat_mem.size(); ++i) {
    EXPECT_EQ(std::bit_cast<uint64_t>(flat_mem[i]),
              std::bit_cast<uint64_t>(flat_ooc[i]))
        << "state element " << i;
  }
}

}  // namespace
}  // namespace deepod
