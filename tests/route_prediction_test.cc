// Tests of the what-if route-ETA extension (DeepOdModel::PredictForRoute).
#include <gtest/gtest.h>

#include <cmath>

#include "core/deepod_model.h"
#include "core/trainer.h"
#include "road/routing.h"
#include "sim/dataset.h"

namespace deepod::core {
namespace {

const sim::Dataset& Dataset() {
  static const sim::Dataset* dataset = [] {
    sim::DatasetConfig config;
    config.city = road::XianSimConfig();
    config.city.rows = 6;
    config.city.cols = 6;
    config.trips_per_day = 15;
    config.num_days = 12;
    config.seed = 55;
    return new sim::Dataset(sim::BuildDataset(config));
  }();
  return *dataset;
}

// Builds the full segment route for a trip's OD pair via shortest path.
std::vector<size_t> RouteFor(const traj::OdInput& od) {
  const auto& net = Dataset().network;
  std::vector<size_t> route = {od.origin_segment};
  const auto connecting = road::ShortestRoute(
      net, net.segment(od.origin_segment).to,
      net.segment(od.dest_segment).from, road::FreeFlowCost);
  for (size_t sid : connecting.segment_ids) route.push_back(sid);
  route.push_back(od.dest_segment);
  route.erase(std::unique(route.begin(), route.end()), route.end());
  return route;
}

TEST(PredictForRouteTest, ValidatesInput) {
  DeepOdConfig config = DeepOdConfig().Scaled(16);
  config.epochs = 1;
  DeepOdModel model(config, Dataset());
  const auto& od = Dataset().test[0].od;
  EXPECT_THROW(model.PredictForRoute(od, {}), std::invalid_argument);
  // Wrong endpoints.
  EXPECT_THROW(model.PredictForRoute(od, {od.dest_segment}),
               std::invalid_argument);
  // Disconnected path with right endpoints: find two non-adjacent segments.
  const auto& net = Dataset().network;
  std::vector<size_t> bad = {od.origin_segment, od.dest_segment};
  if (net.segment(od.origin_segment).to != net.segment(od.dest_segment).from) {
    EXPECT_THROW(model.PredictForRoute(od, bad), std::invalid_argument);
  }
}

TEST(PredictForRouteTest, FiniteAndRouteSensitive) {
  DeepOdConfig config = DeepOdConfig().Scaled(16);
  config.epochs = 1;
  DeepOdModel model(config, Dataset());
  model.SetTraining(false);
  const auto& net = Dataset().network;
  size_t checked = 0;
  for (const auto& trip : Dataset().test) {
    const auto alts = road::AlternativeRoutes(
        net, net.segment(trip.od.origin_segment).to,
        net.segment(trip.od.dest_segment).from, road::FreeFlowCost, 2);
    if (alts.size() < 2) continue;
    auto expand = [&](const road::Route& r) {
      std::vector<size_t> route = {trip.od.origin_segment};
      for (size_t sid : r.segment_ids) route.push_back(sid);
      route.push_back(trip.od.dest_segment);
      route.erase(std::unique(route.begin(), route.end()), route.end());
      return route;
    };
    const double a = model.PredictForRoute(trip.od, expand(alts[0]));
    const double b = model.PredictForRoute(trip.od, expand(alts[1]));
    EXPECT_TRUE(std::isfinite(a));
    EXPECT_TRUE(std::isfinite(b));
    EXPECT_NE(a, b);  // different routes -> different representations
    if (++checked == 3) break;
  }
  EXPECT_GE(checked, 1u);
}

TEST(PredictForRouteTest, TrainedRouteEtaTracksOdEta) {
  // After training with the auxiliary binding + stcode supervision, the
  // route-conditioned ETA of the *actual* best route should correlate with
  // the OD ETA (they estimate the same quantity through different encoders).
  DeepOdConfig config = DeepOdConfig().Scaled(8);
  config.epochs = 3;
  config.loss_weight_w = 0.4;
  DeepOdModel model(config, Dataset());
  DeepOdTrainer trainer(model, Dataset());
  trainer.Train(nullptr, 1u << 30, 40);

  double num = 0.0, dx = 0.0, dy = 0.0, mx = 0.0, my = 0.0;
  std::vector<double> od_eta, route_eta;
  for (size_t i = 0; i < std::min<size_t>(25, Dataset().test.size()); ++i) {
    const auto& od = Dataset().test[i].od;
    od_eta.push_back(model.Predict(od));
    route_eta.push_back(model.PredictForRoute(od, RouteFor(od)));
  }
  for (double v : od_eta) mx += v;
  for (double v : route_eta) my += v;
  mx /= static_cast<double>(od_eta.size());
  my /= static_cast<double>(route_eta.size());
  for (size_t i = 0; i < od_eta.size(); ++i) {
    num += (od_eta[i] - mx) * (route_eta[i] - my);
    dx += (od_eta[i] - mx) * (od_eta[i] - mx);
    dy += (route_eta[i] - my) * (route_eta[i] - my);
  }
  ASSERT_GT(dx, 0.0);
  ASSERT_GT(dy, 0.0);
  EXPECT_GT(num / std::sqrt(dx * dy), 0.5);
}

}  // namespace
}  // namespace deepod::core
