// Property sweeps over the simulation substrate: dataset invariants across
// city configurations (TEST_P), demand/congestion coupling, and failure
// injection on the trip simulator's inputs.
#include <gtest/gtest.h>

#include <cmath>

#include "road/city_generator.h"
#include "road/routing.h"
#include "sim/dataset.h"
#include "sim/traffic_model.h"
#include "sim/trip_simulator.h"
#include "sim/weather.h"
#include "temporal/time_slot.h"

namespace deepod::sim {
namespace {

struct CityCase {
  const char* name;
  size_t rows, cols;
  size_t trips_per_day;
};

class DatasetPropertyTest : public ::testing::TestWithParam<CityCase> {};

TEST_P(DatasetPropertyTest, InvariantsHoldAcrossCitySizes) {
  const auto& c = GetParam();
  DatasetConfig config;
  config.city = road::XianSimConfig();
  config.city.rows = c.rows;
  config.city.cols = c.cols;
  config.trips_per_day = c.trips_per_day;
  config.num_days = 12;
  config.seed = 123;
  const Dataset ds = BuildDataset(config);

  EXPECT_EQ(ds.TotalTrips(), c.trips_per_day * 12);
  // Split proportions roughly 42:7:12 by *time* — train should dominate.
  EXPECT_GT(ds.train.size(), ds.validation.size() + ds.test.size());

  // Every training trajectory is a valid connected path whose time matches
  // the label, and every OD pair respects the simulator's contract.
  for (const auto& trip : ds.train) {
    ASSERT_TRUE(trip.trajectory.IsValid(ds.network));
    EXPECT_NEAR(trip.trajectory.travel_time(), trip.travel_time, 1e-6);
    EXPECT_LT(trip.od.origin_ratio, 1.0);
    EXPECT_GE(trip.od.origin_ratio, 0.0);
    EXPECT_GE(trip.od.weather_type, 0);
    EXPECT_LT(trip.od.weather_type, WeatherProcess::kNumTypes);
    // Travel speed sanity: between 0.5 m/s and free-flow-times-jitter.
    const double dist = trip.trajectory.TravelledLength(ds.network);
    const double speed = dist / trip.travel_time;
    EXPECT_GT(speed, 0.5);
    EXPECT_LT(speed, 30.0);
  }
  // Departures ordered chronologically within each split (dataset sorts).
  for (size_t i = 1; i < ds.train.size(); ++i) {
    EXPECT_LE(ds.train[i - 1].od.departure_time,
              ds.train[i].od.departure_time);
  }
}

INSTANTIATE_TEST_SUITE_P(Cities, DatasetPropertyTest,
                         ::testing::Values(CityCase{"tiny", 5, 5, 8},
                                           CityCase{"small", 7, 6, 12},
                                           CityCase{"wide", 5, 10, 10},
                                           CityCase{"mid", 9, 9, 15}),
                         [](const ::testing::TestParamInfo<CityCase>& info) {
                           return info.param.name;
                         });

TEST(TripTimePropertyTest, RushTripsSlowerThanNightTripsOnAverage) {
  road::CityConfig city = road::XianSimConfig();
  city.rows = 7;
  city.cols = 7;
  const road::RoadNetwork net = road::GenerateCity(city);
  TrafficModel::Options traffic_options;
  traffic_options.daily_sigma = 0.0;  // isolate time-of-day
  traffic_options.segment_daily_sigma = 0.0;
  const TrafficModel traffic(net, traffic_options);
  const WeatherProcess weather(2 * temporal::kSecondsPerDay, 5);
  const TripSimulator simulator(net, traffic, weather);
  util::Rng rng(9);
  double rush_speed = 0.0, night_speed = 0.0;
  const int n = 40;
  for (int i = 0; i < n; ++i) {
    const auto rush = simulator.SimulateTrip(8.0 * 3600.0, rng);
    rush_speed += rush.trajectory.TravelledLength(net) / rush.travel_time;
    const auto night = simulator.SimulateTrip(3.0 * 3600.0, rng);
    night_speed += night.trajectory.TravelledLength(net) / night.travel_time;
  }
  EXPECT_LT(rush_speed, night_speed * 0.9);
}

TEST(TripTimePropertyTest, SameOdSameTimeDifferentDaysVary) {
  // Day-to-day congestion draws make repeated identical queries vary — the
  // signal the external speed-matrix feature exists to expose.
  road::CityConfig city = road::XianSimConfig();
  city.rows = 6;
  city.cols = 6;
  const road::RoadNetwork net = road::GenerateCity(city);
  const TrafficModel traffic(net);
  const WeatherProcess weather(15 * temporal::kSecondsPerDay, 5);
  const TripSimulator simulator(net, traffic, weather);
  // Expected traversal of a fixed segment at the same time-of-day across
  // days must not be constant.
  double min_t = 1e18, max_t = 0.0;
  for (int day = 0; day < 10; ++day) {
    const double t = traffic.TraversalSeconds(
        3, day * temporal::kSecondsPerDay + 10.0 * 3600.0);
    min_t = std::min(min_t, t);
    max_t = std::max(max_t, t);
  }
  EXPECT_GT(max_t / min_t, 1.02);
}

TEST(FailureInjectionTest, BadDatasetConfigsRejected) {
  DatasetConfig config;
  config.city = road::XianSimConfig();
  config.num_days = 1;  // below the 3-day minimum
  EXPECT_THROW(BuildDataset(config), std::invalid_argument);

  road::CityConfig bad_city;
  bad_city.rows = 1;
  EXPECT_THROW(road::GenerateCity(bad_city), std::invalid_argument);
}

TEST(FailureInjectionTest, SpeedMatrixRejectsBadGeometry) {
  road::CityConfig city = road::XianSimConfig();
  city.rows = 5;
  city.cols = 5;
  const road::RoadNetwork net = road::GenerateCity(city);
  const TrafficModel traffic(net);
  const WeatherProcess weather(86400.0, 5);
  EXPECT_THROW(SpeedMatrixBuilder(net, traffic, weather, -1.0, 300.0),
               std::invalid_argument);
  EXPECT_THROW(SpeedMatrixBuilder(net, traffic, weather, 200.0, 0.0),
               std::invalid_argument);
}

TEST(FailureInjectionTest, WeatherHorizonEnforced) {
  EXPECT_THROW(WeatherProcess(0.0, 1), std::invalid_argument);
  EXPECT_THROW(WeatherProcess(-5.0, 1), std::invalid_argument);
}

TEST(SeedSensitivityTest, DifferentSeedsDifferentDatasets) {
  DatasetConfig a;
  a.city = road::XianSimConfig();
  a.city.rows = 5;
  a.city.cols = 5;
  a.trips_per_day = 6;
  a.num_days = 6;
  a.seed = 1;
  DatasetConfig b = a;
  b.seed = 2;
  const Dataset da = BuildDataset(a);
  const Dataset db = BuildDataset(b);
  ASSERT_EQ(da.train.size(), db.train.size());
  bool any_diff = false;
  for (size_t i = 0; i < da.train.size(); ++i) {
    if (std::fabs(da.train[i].travel_time - db.train[i].travel_time) > 1e-9) {
      any_diff = true;
      break;
    }
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace deepod::sim
