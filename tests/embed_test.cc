#include <gtest/gtest.h>

#include <cmath>

#include "embed/graph_embedding.h"
#include "embed/random_walk.h"
#include "embed/skipgram.h"
#include "util/rng.h"
#include "util/weighted_digraph.h"

namespace deepod::embed {
namespace {

// Two dense clusters of 6 nodes joined by a single bridge arc pair — nodes
// inside a cluster should embed closer together than across clusters.
util::WeightedDigraph TwoClusters() {
  util::WeightedDigraph g(12);
  auto clique = [&g](size_t base) {
    for (size_t i = 0; i < 6; ++i) {
      for (size_t j = 0; j < 6; ++j) {
        if (i != j) g.AddArc(base + i, base + j, 1.0);
      }
    }
  };
  clique(0);
  clique(6);
  g.AddArc(5, 6, 0.2);
  g.AddArc(6, 5, 0.2);
  return g;
}

TEST(RandomWalkTest, WalksFollowArcs) {
  util::WeightedDigraph g(4);
  g.AddArc(0, 1);
  g.AddArc(1, 2);
  g.AddArc(2, 3);
  g.AddArc(3, 0);
  RandomWalker::Options options;
  options.walk_length = 9;
  RandomWalker walker(g, options);
  util::Rng rng(1);
  const auto walk = walker.Walk(0, rng);
  ASSERT_EQ(walk.size(), 9u);
  for (size_t i = 0; i + 1 < walk.size(); ++i) {
    EXPECT_TRUE(g.HasArc(walk[i], walk[i + 1]));
  }
}

TEST(RandomWalkTest, SinkTerminatesEarly) {
  util::WeightedDigraph g(2);
  g.AddArc(0, 1);  // node 1 is a sink
  RandomWalker::Options options;
  options.walk_length = 10;
  RandomWalker walker(g, options);
  util::Rng rng(2);
  const auto walk = walker.Walk(0, rng);
  EXPECT_EQ(walk, (std::vector<size_t>{0, 1}));
}

TEST(RandomWalkTest, WeightsBiasTransitions) {
  util::WeightedDigraph g(3);
  g.AddArc(0, 1, 9.0);
  g.AddArc(0, 2, 1.0);
  g.AddArc(1, 0, 1.0);
  g.AddArc(2, 0, 1.0);
  RandomWalker::Options options;
  options.walk_length = 2;
  RandomWalker walker(g, options);
  util::Rng rng(3);
  int to1 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) to1 += walker.Walk(0, rng)[1] == 1;
  EXPECT_NEAR(static_cast<double>(to1) / n, 0.9, 0.01);
}

TEST(RandomWalkTest, Node2VecLowPEncouragesReturns) {
  // Triangle graph; with p << 1 the walk returns to the previous node far
  // more often than with p >> 1.
  util::WeightedDigraph g(3);
  for (size_t i = 0; i < 3; ++i) {
    g.AddArc(i, (i + 1) % 3, 1.0);
    g.AddArc(i, (i + 2) % 3, 1.0);
  }
  auto return_rate = [&](double p) {
    RandomWalker::Options options;
    options.walk_length = 3;
    options.p = p;
    options.q = 1.0;
    RandomWalker walker(g, options);
    util::Rng rng(4);
    int returns = 0;
    const int n = 5000;
    for (int i = 0; i < n; ++i) {
      const auto walk = walker.Walk(0, rng);
      returns += walk.size() == 3 && walk[2] == walk[0];
    }
    return static_cast<double>(returns) / n;
  };
  EXPECT_GT(return_rate(0.1), return_rate(10.0) + 0.2);
}

TEST(RandomWalkTest, CorpusCoversAllNodes) {
  const auto g = TwoClusters();
  RandomWalker::Options options;
  options.walks_per_node = 2;
  options.walk_length = 5;
  RandomWalker walker(g, options);
  util::Rng rng(5);
  const auto corpus = walker.Corpus(rng);
  EXPECT_EQ(corpus.size(), g.num_nodes() * 2);
  std::vector<bool> started(g.num_nodes(), false);
  for (const auto& walk : corpus) started[walk[0]] = true;
  for (bool s : started) EXPECT_TRUE(s);
}

TEST(SkipGramTest, ClusterStructureEmerges) {
  const auto g = TwoClusters();
  RandomWalker::Options wopt;
  wopt.walks_per_node = 10;
  wopt.walk_length = 10;
  RandomWalker walker(g, wopt);
  util::Rng rng(6);
  const auto corpus = walker.Corpus(rng);
  SkipGramTrainer::Options sopt;
  sopt.dim = 8;
  sopt.epochs = 5;
  SkipGramTrainer trainer(g.num_nodes(), sopt);
  const auto emb = trainer.Train(corpus, rng);
  ASSERT_EQ(emb.size(), 12u);
  // Mean within-cluster cosine similarity > cross-cluster similarity.
  double within = 0.0, across = 0.0;
  int wn = 0, an = 0;
  for (size_t i = 0; i < 12; ++i) {
    for (size_t j = i + 1; j < 12; ++j) {
      const double sim = CosineSimilarity(emb[i], emb[j]);
      if ((i < 6) == (j < 6)) {
        within += sim;
        ++wn;
      } else {
        across += sim;
        ++an;
      }
    }
  }
  EXPECT_GT(within / wn, across / an + 0.1);
}

TEST(SkipGramTest, RejectsBadInput) {
  SkipGramTrainer::Options options;
  EXPECT_THROW(SkipGramTrainer(0, options), std::invalid_argument);
  SkipGramTrainer trainer(3, options);
  util::Rng rng(7);
  EXPECT_THROW(trainer.Train({}, rng), std::invalid_argument);
  EXPECT_THROW(trainer.Train({{0, 9}}, rng), std::out_of_range);
}

class EmbedMethodTest : public ::testing::TestWithParam<EmbedMethod> {};

TEST_P(EmbedMethodTest, ProducesFiniteVectorsOfRightShape) {
  const auto g = TwoClusters();
  EmbedOptions options;
  options.dim = 6;
  util::Rng rng(8);
  const auto emb = EmbedGraph(g, GetParam(), options, rng);
  ASSERT_EQ(emb.size(), g.num_nodes());
  for (const auto& row : emb) {
    ASSERT_EQ(row.size(), 6u);
    for (double v : row) EXPECT_TRUE(std::isfinite(v));
  }
}

INSTANTIATE_TEST_SUITE_P(AllMethods, EmbedMethodTest,
                         ::testing::Values(EmbedMethod::kDeepWalk,
                                           EmbedMethod::kNode2Vec,
                                           EmbedMethod::kLine,
                                           EmbedMethod::kRandom),
                         [](const ::testing::TestParamInfo<EmbedMethod>& info) {
                           std::string name = EmbedMethodName(info.param);
                           for (char& c : name) {
                             if (!isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return name;
                         });

TEST(EmbedMethodTest, LineSeparatesClusters) {
  const auto g = TwoClusters();
  EmbedOptions options;
  options.dim = 8;
  options.line_samples_per_arc = 400;
  util::Rng rng(9);
  const auto emb = EmbedLine(g, options, rng);
  double within = 0.0, across = 0.0;
  int wn = 0, an = 0;
  for (size_t i = 0; i < 12; ++i) {
    for (size_t j = i + 1; j < 12; ++j) {
      const double sim = CosineSimilarity(emb[i], emb[j]);
      if ((i < 6) == (j < 6)) {
        within += sim;
        ++wn;
      } else {
        across += sim;
        ++an;
      }
    }
  }
  EXPECT_GT(within / wn, across / an);
}

TEST(EmbedMethodTest, EmptyGraphThrows) {
  util::WeightedDigraph g(0);
  EmbedOptions options;
  util::Rng rng(10);
  EXPECT_THROW(EmbedGraph(g, EmbedMethod::kRandom, options, rng),
               std::invalid_argument);
}

TEST(CosineSimilarityTest, BasicProperties) {
  EXPECT_NEAR(CosineSimilarity({1, 0}, {1, 0}), 1.0, 1e-12);
  EXPECT_NEAR(CosineSimilarity({1, 0}, {0, 1}), 0.0, 1e-12);
  EXPECT_NEAR(CosineSimilarity({1, 0}, {-1, 0}), -1.0, 1e-12);
  EXPECT_EQ(CosineSimilarity({0, 0}, {1, 1}), 0.0);  // degenerate -> 0
  EXPECT_THROW(CosineSimilarity({1}, {1, 2}), std::invalid_argument);
}

}  // namespace
}  // namespace deepod::embed
