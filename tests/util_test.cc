#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "util/alias_sampler.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/weighted_digraph.h"

namespace deepod::util {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.NextU64() == b.NextU64();
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanIsHalf) {
  Rng rng(7);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(3);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.UniformInt(uint64_t{10});
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values hit
}

TEST(RngTest, UniformIntRangeInclusive) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(int64_t{-5}, int64_t{5});
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformIntZeroThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.UniformInt(uint64_t{0}), std::invalid_argument);
}

TEST(RngTest, NormalMoments) {
  Rng rng(11);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, NormalShifted) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.Normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, ExponentialBadRateThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.Exponential(0.0), std::invalid_argument);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(19);
  std::vector<double> w = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) counts[rng.Categorical(w)]++;
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(RngTest, CategoricalRejectsBadWeights) {
  Rng rng(1);
  EXPECT_THROW(rng.Categorical({}), std::invalid_argument);
  EXPECT_THROW(rng.Categorical({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(rng.Categorical({1.0, -1.0}), std::invalid_argument);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto original = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ForkIndependence) {
  Rng a(5);
  Rng child = a.Fork();
  // Child stream should differ from the parent's continuation.
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.NextU64() == child.NextU64();
  EXPECT_LT(same, 2);
}

TEST(AliasSamplerTest, MatchesDistribution) {
  Rng rng(29);
  std::vector<double> w = {5.0, 1.0, 4.0};
  AliasSampler sampler(w);
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[sampler.Sample(rng)]++;
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.5, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.4, 0.01);
}

TEST(AliasSamplerTest, SingleEntry) {
  Rng rng(1);
  AliasSampler sampler(std::vector<double>{2.5});
  for (int i = 0; i < 10; ++i) EXPECT_EQ(sampler.Sample(rng), 0u);
}

TEST(AliasSamplerTest, ZeroWeightNeverSampled) {
  Rng rng(31);
  AliasSampler sampler(std::vector<double>{0.0, 1.0});
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(sampler.Sample(rng), 1u);
}

TEST(AliasSamplerTest, RejectsInvalid) {
  EXPECT_THROW(AliasSampler(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(AliasSampler(std::vector<double>{-1.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW(AliasSampler(std::vector<double>{0.0, 0.0}),
               std::invalid_argument);
}

TEST(StatsTest, MeanVariance) {
  std::vector<double> v = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Mean(v), 2.5);
  EXPECT_DOUBLE_EQ(Variance(v), 1.25);
  EXPECT_DOUBLE_EQ(Stddev(v), std::sqrt(1.25));
}

TEST(StatsTest, MinMax) {
  std::vector<double> v = {3, -1, 7};
  EXPECT_DOUBLE_EQ(Min(v), -1);
  EXPECT_DOUBLE_EQ(Max(v), 7);
}

TEST(StatsTest, QuantileInterpolates) {
  std::vector<double> v = {0, 10};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 10.0);
}

TEST(StatsTest, BoxStats) {
  std::vector<double> v = {1, 2, 3, 4, 5};
  const BoxStats b = Box(v);
  EXPECT_DOUBLE_EQ(b.min, 1);
  EXPECT_DOUBLE_EQ(b.median, 3);
  EXPECT_DOUBLE_EQ(b.max, 5);
  EXPECT_DOUBLE_EQ(b.q1, 2);
  EXPECT_DOUBLE_EQ(b.q3, 4);
}

TEST(StatsTest, HistogramDensityIntegratesToOne) {
  std::vector<double> v;
  Rng rng(37);
  for (int i = 0; i < 5000; ++i) v.push_back(rng.Uniform(0.0, 10.0));
  const auto d = HistogramDensity(v, 0.0, 10.0, 20);
  double integral = 0.0;
  for (double x : d) integral += x * 0.5;  // bin width 0.5
  EXPECT_NEAR(integral, 1.0, 1e-9);
}

TEST(StatsTest, HistogramClampsOutliers) {
  const auto d = HistogramDensity({-100.0, 100.0}, 0.0, 1.0, 2);
  EXPECT_GT(d[0], 0.0);
  EXPECT_GT(d[1], 0.0);
}

TEST(StatsTest, PearsonPerfectCorrelation) {
  std::vector<double> a = {1, 2, 3, 4};
  std::vector<double> b = {2, 4, 6, 8};
  EXPECT_NEAR(Pearson(a, b), 1.0, 1e-12);
  std::vector<double> c = {8, 6, 4, 2};
  EXPECT_NEAR(Pearson(a, c), -1.0, 1e-12);
}

TEST(StatsTest, EmptyInputThrows) {
  EXPECT_THROW(Mean({}), std::invalid_argument);
  EXPECT_THROW(Quantile({}, 0.5), std::invalid_argument);
}

TEST(TableTest, RendersAlignedRows) {
  Table t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"long-name", "2"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("long-name"), std::string::npos);
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TableTest, ArityMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.AddRow({"only-one"}), std::invalid_argument);
}

TEST(TableTest, FmtHelpers) {
  EXPECT_EQ(Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Fmt(2.0, 0), "2");
  EXPECT_EQ(FmtBytes(1500), "1.50K");
  EXPECT_EQ(FmtBytes(2500000), "2.50M");
  EXPECT_EQ(FmtBytes(12), "12B");
}

TEST(WeightedDigraphTest, ArcsAndWeights) {
  WeightedDigraph g(3);
  g.AddArc(0, 1, 2.0);
  g.AddArc(0, 2, 3.0);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_arcs(), 2u);
  EXPECT_DOUBLE_EQ(g.OutWeight(0), 5.0);
  EXPECT_TRUE(g.HasArc(0, 1));
  EXPECT_FALSE(g.HasArc(1, 0));
}

TEST(WeightedDigraphTest, AccumulateMergesParallelArcs) {
  WeightedDigraph g(2);
  g.AddOrAccumulate(0, 1, 1.0);
  g.AddOrAccumulate(0, 1, 2.5);
  EXPECT_EQ(g.OutArcs(0).size(), 1u);
  EXPECT_DOUBLE_EQ(g.OutArcs(0)[0].weight, 3.5);
}

TEST(WeightedDigraphTest, OutOfRangeThrows) {
  WeightedDigraph g(2);
  EXPECT_THROW(g.AddArc(0, 5), std::out_of_range);
  EXPECT_THROW(g.AddArc(5, 0), std::out_of_range);
}

}  // namespace
}  // namespace deepod::util
