// Contract of the observability layer (DESIGN.md "Observability"):
//  - histogram percentiles track a sorted reference within the documented
//    bucket error bound (1/kSubBuckets relative);
//  - counters and histograms are exact under concurrent writers (the TSan
//    CI job runs this suite with a multi-worker pool);
//  - spans nest, record into the registry, and round-trip through the
//    shared BENCH-json schema and the Chrome trace dump;
//  - most importantly: DEEPOD_OBS=metrics must not perturb a single bit of
//    the training math relative to the default off mode.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/deepod_config.h"
#include "core/deepod_model.h"
#include "core/trainer.h"
#include "nn/ops.h"
#include "nn/serialize.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/dataset.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace deepod {
namespace {

// RAII mode override that restores the ambient mode (tests must not leak
// metrics mode into each other).
class ModeOverride {
 public:
  explicit ModeOverride(obs::Mode m) : prev_(obs::mode()) { obs::SetMode(m); }
  ~ModeOverride() { obs::SetMode(prev_); }

 private:
  obs::Mode prev_;
};

// --- Histogram ---------------------------------------------------------------

TEST(ObsHistogramTest, PercentilesTrackSortedReference) {
  obs::Histogram hist;
  util::Rng rng(7);
  std::vector<double> values;
  for (int i = 0; i < 20000; ++i) {
    // Log-uniform over [10 us, 10 s]: covers six orders of magnitude like
    // real latency distributions do.
    const double v = 1e-5 * std::pow(10.0, rng.Uniform(0.0, 6.0));
    values.push_back(v);
    hist.Observe(v);
  }
  EXPECT_EQ(hist.Count(), values.size());
  double sum = 0.0;
  for (double v : values) sum += v;
  EXPECT_NEAR(hist.Sum(), sum, 1e-6 * sum);

  std::sort(values.begin(), values.end());
  for (const double q : {0.10, 0.50, 0.90, 0.95, 0.99}) {
    const double exact =
        values[static_cast<size_t>(q * (values.size() - 1))];
    const double estimate = hist.Percentile(q);
    // Bucket width is 1/kSubBuckets relative (12.5%); allow a little slack
    // for the rank interpolation at the bucket edges.
    EXPECT_NEAR(estimate, exact, 0.15 * exact) << "q=" << q;
  }
}

TEST(ObsHistogramTest, BucketIndexIsMonotoneAndClamped) {
  EXPECT_EQ(obs::Histogram::BucketIndex(0.0), 0u);
  EXPECT_EQ(obs::Histogram::BucketIndex(-1.0), 0u);
  EXPECT_EQ(obs::Histogram::BucketIndex(1e-12), 0u);
  EXPECT_EQ(obs::Histogram::BucketIndex(1e9),
            obs::Histogram::kNumBuckets - 1);
  size_t prev = 0;
  for (double v = 2e-6; v < 200.0; v *= 1.07) {
    const size_t index = obs::Histogram::BucketIndex(v);
    EXPECT_GE(index, prev) << "v=" << v;
    // The bucket's nominal range must contain the value.
    EXPECT_LE(obs::Histogram::BucketLowerBound(index), v * (1 + 1e-12));
    prev = index;
  }
}

// --- Concurrency -------------------------------------------------------------

TEST(ObsConcurrencyTest, CountersAndHistogramsAreExactUnderThreadPool) {
  obs::Counter counter;
  obs::Gauge gauge;
  obs::Histogram hist;
  constexpr size_t kTasks = 8;
  constexpr size_t kPerTask = 20000;
  util::ThreadPool pool(kTasks);
  pool.ParallelFor(kTasks, [&](size_t w) {
    for (size_t i = 0; i < kPerTask; ++i) {
      counter.Add();
      hist.Observe(1e-3 * static_cast<double>(w + 1));
      gauge.Add(1.0);
    }
  });
  EXPECT_EQ(counter.Value(), kTasks * kPerTask);
  EXPECT_EQ(hist.Count(), kTasks * kPerTask);
  EXPECT_DOUBLE_EQ(gauge.Value(), static_cast<double>(kTasks * kPerTask));
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(ObsConcurrencyTest, RegistryLookupIsThreadSafe) {
  obs::Registry registry;
  constexpr size_t kTasks = 8;
  util::ThreadPool pool(kTasks);
  pool.ParallelFor(kTasks, [&](size_t w) {
    for (size_t i = 0; i < 1000; ++i) {
      registry.counter("shared").Add();
      registry.counter("per/" + std::to_string(w)).Add();
    }
  });
  EXPECT_EQ(registry.counter("shared").Value(), kTasks * 1000u);
  EXPECT_EQ(registry.Export().size(), kTasks + 1);
}

// --- Spans and trace ---------------------------------------------------------

TEST(ObsSpanTest, NestedSpansRecordIntoRegistry) {
  ModeOverride metrics(obs::Mode::kMetrics);
  obs::Registry registry;
  {
    obs::SpanScope outer("obs_test/outer", &registry);
    for (int i = 0; i < 2; ++i) {
      obs::SpanScope inner("obs_test/inner", &registry);
    }
  }
  EXPECT_EQ(registry.histogram("obs_test/outer").Count(), 1u);
  EXPECT_EQ(registry.histogram("obs_test/inner").Count(), 2u);
  // The outer span encloses both inner spans.
  EXPECT_GE(registry.histogram("obs_test/outer").Sum(),
            registry.histogram("obs_test/inner").Sum());
}

TEST(ObsSpanTest, OffModeRecordsNothing) {
  ModeOverride off(obs::Mode::kOff);
  obs::Registry registry;
  {
    obs::SpanScope span("obs_test/off", &registry);
  }
  EXPECT_TRUE(registry.Export().empty());
}

TEST(ObsTraceTest, TraceModeCollectsChromeEvents) {
  ModeOverride trace(obs::Mode::kTrace);
  obs::ClearTrace();
  {
    OBS_SPAN("obs_test/trace_outer");
    OBS_SPAN("obs_test/trace_inner");
  }
  EXPECT_EQ(obs::TraceEventCount(), 2u);
  const std::string json = obs::TraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("obs_test/trace_outer"), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);

  const std::string path = ::testing::TempDir() + "/deepod_trace_test.json";
  EXPECT_TRUE(obs::WriteTraceJson(path));
  std::remove(path.c_str());
  obs::ClearTrace();
}

// --- Export round-trip -------------------------------------------------------

TEST(ObsExportTest, JsonAndPrometheusRoundTrip) {
  obs::Registry registry;
  registry.counter("rt/count").Add(42);
  registry.gauge("rt/depth").Set(3.5);
  for (int i = 0; i < 100; ++i) {
    registry.histogram("rt/latency").Observe(1e-3);
  }

  const auto records = registry.Export("rt/");
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].name, "rt/count");
  EXPECT_DOUBLE_EQ(records[0].count.value(), 42.0);
  EXPECT_EQ(records[1].name, "rt/depth");
  EXPECT_DOUBLE_EQ(records[1].value.value(), 3.5);
  EXPECT_EQ(records[2].name, "rt/latency");
  EXPECT_DOUBLE_EQ(records[2].count.value(), 100.0);
  EXPECT_NEAR(records[2].p50_ms.value(), 1.0, 0.15);
  EXPECT_NEAR(records[2].wall_seconds, 0.1, 0.001);

  const std::string json = registry.ExportJson("rt/");
  EXPECT_NE(json.find("\"hardware_concurrency\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"rt/latency\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 42"), std::string::npos);
  // Prefix filtering really filters.
  EXPECT_EQ(registry.ExportJson("nomatch/").find("rt/"), std::string::npos);

  const std::string prom = registry.ExportPrometheus();
  EXPECT_NE(prom.find("# TYPE deepod_rt_count counter\ndeepod_rt_count 42"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE deepod_rt_depth gauge"), std::string::npos);
  EXPECT_NE(prom.find("deepod_rt_latency_count 100"), std::string::npos);
  EXPECT_NE(prom.find("deepod_rt_latency{quantile=\"0.5\"}"),
            std::string::npos);
}

TEST(ObsExportTest, OptionalFieldsOmittedWhenUnset) {
  obs::Record rec;
  rec.name = "bare";
  rec.wall_seconds = 1.5;
  const std::string json = obs::RenderRecordsJson({rec});
  EXPECT_NE(json.find("\"name\": \"bare\""), std::string::npos);
  EXPECT_EQ(json.find("samples_per_sec"), std::string::npos);
  EXPECT_EQ(json.find("\"count\""), std::string::npos);
  EXPECT_EQ(json.find("\"value\""), std::string::npos);
}

// --- Kernel op counters ------------------------------------------------------

#if defined(DEEPOD_OBS_KERNEL_COUNTS)
TEST(ObsKernelCountsTest, MatMulBumpsPerModeCounter) {
  util::Rng rng(3);
  nn::Tensor a = nn::Tensor::Randn({4, 4}, rng, 1.0);
  nn::Tensor b = nn::Tensor::Randn({4, 4}, rng, 1.0);
  auto& counter = obs::Registry::Global().counter("nn/matmul/blocked");
  const uint64_t before = counter.Value();
  {
    nn::KernelModeScope mode(nn::KernelMode::kBlocked);
    nn::MatMul(a, b);
  }
  EXPECT_EQ(counter.Value(), before + 1);
}
#endif

// --- Bit identity ------------------------------------------------------------

const sim::Dataset& TinyDataset() {
  static const sim::Dataset* dataset = [] {
    sim::DatasetConfig config;
    config.city = road::XianSimConfig();
    config.city.rows = 6;
    config.city.cols = 6;
    config.trips_per_day = 12;
    config.num_days = 15;
    config.seed = 23;
    return new sim::Dataset(sim::BuildDataset(config));
  }();
  return *dataset;
}

core::DeepOdConfig TinyConfig() {
  core::DeepOdConfig config = core::DeepOdConfig().Scaled(16);
  config.epochs = 1;
  config.batch_size = 8;
  config.num_threads = 1;
  return config;
}

TEST(ObsBitIdentityTest, MetricsModeDoesNotPerturbTraining) {
  std::vector<uint8_t> params_off, params_metrics;
  double val_off = 0.0, val_metrics = 0.0;
  {
    ModeOverride off(obs::Mode::kOff);
    core::DeepOdModel model(TinyConfig(), TinyDataset());
    core::DeepOdTrainer trainer(model, TinyDataset());
    val_off = trainer.Train(nullptr, 1u << 30, 40);
    params_off = nn::SerializeParameters(model.Parameters());
  }
  {
    ModeOverride metrics(obs::Mode::kMetrics);
    core::DeepOdModel model(TinyConfig(), TinyDataset());
    core::DeepOdTrainer trainer(model, TinyDataset());
    val_metrics = trainer.Train(nullptr, 1u << 30, 40);
    params_metrics = nn::SerializeParameters(model.Parameters());
    // The wired-in trainer spans recorded into the global registry.
    EXPECT_GE(obs::Registry::Global().histogram("trainer/epoch").Count(), 1u);
    EXPECT_GE(
        obs::Registry::Global().histogram("trainer/validation").Count(), 1u);
  }
  EXPECT_EQ(val_off, val_metrics);
  EXPECT_EQ(params_off, params_metrics);
}

}  // namespace
}  // namespace deepod
