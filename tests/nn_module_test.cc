#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "nn/conv.h"
#include "nn/lstm.h"
#include "nn/module.h"
#include "nn/ops.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"
#include "util/rng.h"

namespace deepod::nn {
namespace {

TEST(LinearTest, ShapesAndParamCount) {
  util::Rng rng(1);
  Linear layer(4, 3, rng);
  EXPECT_EQ(layer.Forward(Tensor::Zeros({4})).shape(),
            (std::vector<size_t>{3}));
  EXPECT_EQ(layer.Forward(Tensor::Zeros({5, 4})).shape(),
            (std::vector<size_t>{5, 3}));
  EXPECT_EQ(layer.NumParameters(), 4u * 3u + 3u);
  EXPECT_THROW(layer.Forward(Tensor::Zeros({2, 2, 2})), std::invalid_argument);
}

TEST(LinearTest, BatchMatchesVectorPath) {
  util::Rng rng(2);
  Linear layer(3, 2, rng);
  Tensor x = Tensor::FromData({3}, {0.1, -0.5, 2.0});
  Tensor xb = Tensor::FromData({1, 3}, {0.1, -0.5, 2.0});
  const auto v = layer.Forward(x).data();
  const auto b = layer.Forward(xb).data();
  ASSERT_EQ(v.size(), b.size());
  for (size_t i = 0; i < v.size(); ++i) EXPECT_NEAR(v[i], b[i], 1e-12);
}

TEST(Mlp2Test, OutputDimAndNonlinearity) {
  util::Rng rng(3);
  Mlp2 mlp(2, 8, 1, rng);
  EXPECT_EQ(mlp.out_dim(), 1u);
  // A two-layer MLP with ReLU is not linear: f(2x) != 2 f(x) in general.
  Tensor x = Tensor::FromData({2}, {1.0, -1.0});
  Tensor x2 = Tensor::FromData({2}, {2.0, -2.0});
  const double f1 = mlp.Forward(x).item();
  const double f2 = mlp.Forward(x2).item();
  EXPECT_NE(std::fabs(f2 - 2.0 * f1) < 1e-12, true);
}

TEST(EmbeddingTest, LookupReturnsRow) {
  util::Rng rng(4);
  Embedding emb(5, 3, rng);
  std::vector<std::vector<double>> init(5, std::vector<double>(3));
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = 0; j < 3; ++j) init[i][j] = static_cast<double>(i * 10 + j);
  }
  emb.LoadPretrained(init);
  EXPECT_EQ(emb.Forward(2).data(), (std::vector<double>{20, 21, 22}));
  const Tensor batch = emb.Forward(std::vector<size_t>{4, 0});
  EXPECT_DOUBLE_EQ(batch.at(0, 0), 40);
  EXPECT_DOUBLE_EQ(batch.at(1, 2), 2);
  EXPECT_THROW(emb.Forward(size_t{9}), std::out_of_range);
}

TEST(EmbeddingTest, LoadPretrainedValidates) {
  util::Rng rng(5);
  Embedding emb(2, 3, rng);
  EXPECT_THROW(emb.LoadPretrained({{1, 2, 3}}), std::invalid_argument);
  EXPECT_THROW(emb.LoadPretrained({{1, 2}, {3, 4}}), std::invalid_argument);
}

TEST(LstmTest, ShapesAndDeterminism) {
  util::Rng rng(6);
  Lstm lstm(3, 5, rng);
  std::vector<Tensor> seq = {Tensor::FromData({3}, {1, 0, -1}),
                             Tensor::FromData({3}, {0.5, 0.5, 0.5})};
  const Tensor h1 = lstm.Forward(seq);
  EXPECT_EQ(h1.shape(), (std::vector<size_t>{5}));
  const Tensor h2 = lstm.Forward(seq);
  EXPECT_EQ(h1.data(), h2.data());
  EXPECT_THROW(lstm.Forward({}), std::invalid_argument);
  EXPECT_THROW(lstm.Forward({Tensor::Zeros({4})}), std::invalid_argument);
}

TEST(LstmTest, HiddenStatesBoundedByTanh) {
  util::Rng rng(7);
  Lstm lstm(2, 4, rng);
  std::vector<Tensor> seq;
  for (int i = 0; i < 20; ++i) {
    seq.push_back(Tensor::FromData({2}, {100.0, -100.0}));  // extreme inputs
  }
  const auto states = lstm.ForwardAll(seq);
  EXPECT_EQ(states.size(), 20u);
  for (const auto& h : states) {
    for (double v : h.data()) {
      EXPECT_LE(std::fabs(v), 1.0);  // |h| = |o * tanh(c)| <= 1
    }
  }
}

TEST(LstmTest, OrderSensitivity) {
  util::Rng rng(8);
  Lstm lstm(2, 4, rng);
  std::vector<Tensor> ab = {Tensor::FromData({2}, {1, 0}),
                            Tensor::FromData({2}, {0, 1})};
  std::vector<Tensor> ba = {ab[1], ab[0]};
  const auto h_ab = lstm.Forward(ab).data();
  const auto h_ba = lstm.Forward(ba).data();
  double diff = 0.0;
  for (size_t i = 0; i < h_ab.size(); ++i) diff += std::fabs(h_ab[i] - h_ba[i]);
  EXPECT_GT(diff, 1e-6);  // a sequence model must be order-sensitive
}

TEST(BatchNormTest, NormalisesTrainingInstance) {
  BatchNorm2d bn(1);
  Tensor in = Tensor::FromData({1, 1, 4}, {2, 4, 6, 8});
  const auto out = bn.Forward(in).data();
  double mean = 0.0;
  for (double v : out) mean += v;
  EXPECT_NEAR(mean / 4.0, 0.0, 1e-9);  // gamma=1, beta=0 at init
  double var = 0.0;
  for (double v : out) var += v * v;
  EXPECT_NEAR(var / 4.0, 1.0, 1e-3);
}

TEST(BatchNormTest, RunningStatsConverge) {
  util::Rng rng(9);
  BatchNorm2d bn(1, /*momentum=*/0.5);
  for (int i = 0; i < 50; ++i) {
    Tensor in = Tensor::Randn({1, 4, 4}, rng, 2.0);
    for (double& v : in.data()) v += 10.0;
    bn.Forward(in);
  }
  EXPECT_NEAR(bn.running_mean()[0], 10.0, 0.5);
  EXPECT_NEAR(bn.running_var()[0], 4.0, 1.0);
}

TEST(BatchNormTest, EvalUsesRunningStats) {
  BatchNorm2d bn(1);
  bn.Forward(Tensor::FromData({1, 1, 2}, {0.0, 2.0}));  // warm up
  bn.SetTraining(false);
  // In eval mode two different instances map through the same affine.
  const auto a = bn.Forward(Tensor::FromData({1, 1, 2}, {1.0, 1.0})).data();
  EXPECT_NEAR(a[0], a[1], 1e-12);
}

TEST(ResNetBlockTest, PreservesShapeAcrossDeltaD) {
  util::Rng rng(10);
  ResNetTimeBlock block(rng);
  for (size_t dd : {1u, 2u, 5u, 9u}) {
    Tensor in = Tensor::Randn({dd, 6}, rng, 1.0);
    EXPECT_EQ(block.Forward(in).shape(), (std::vector<size_t>{dd, 6}));
  }
  EXPECT_THROW(block.Forward(Tensor::Zeros({2, 2, 2})), std::invalid_argument);
}

TEST(ResNetBlockTest, ResidualPathDominatesAtInit) {
  // With small random kernels the block output stays close to its input
  // (identity mapping + small residual), the property ResNets rely on.
  util::Rng rng(11);
  ResNetTimeBlock block(rng);
  Tensor in = Tensor::Randn({4, 6}, rng, 1.0);
  const auto out = block.Forward(in).data();
  double corr_num = 0.0, in_sq = 0.0, out_sq = 0.0;
  for (size_t i = 0; i < out.size(); ++i) {
    corr_num += out[i] * in.data()[i];
    in_sq += in.data()[i] * in.data()[i];
    out_sq += out[i] * out[i];
  }
  EXPECT_GT(corr_num / std::sqrt(in_sq * out_sq), 0.5);
}

TEST(TrafficCnnTest, OutputDim) {
  util::Rng rng(12);
  TrafficCnn cnn(7, rng);
  Tensor in = Tensor::Randn({1, 9, 11}, rng, 1.0);
  EXPECT_EQ(cnn.Forward(in).shape(), (std::vector<size_t>{7}));
  EXPECT_THROW(cnn.Forward(Tensor::Zeros({2, 3, 3})), std::invalid_argument);
}

TEST(OptimizerTest, SgdConvergesOnQuadratic) {
  Tensor x = Tensor::FromData({2}, {5.0, -3.0});
  x.set_requires_grad(true);
  Sgd sgd({x}, 0.1);
  for (int i = 0; i < 200; ++i) {
    sgd.ZeroGrad();
    Tensor loss = Sum(Square(x));
    loss.Backward();
    sgd.Step();
  }
  EXPECT_NEAR(x.data()[0], 0.0, 1e-6);
  EXPECT_NEAR(x.data()[1], 0.0, 1e-6);
}

TEST(OptimizerTest, AdamConvergesOnIllConditionedQuadratic) {
  Tensor x = Tensor::FromData({2}, {5.0, -3.0});
  x.set_requires_grad(true);
  Adam adam({x}, 0.1);
  Tensor scales = Tensor::FromData({2}, {100.0, 0.01});
  for (int i = 0; i < 500; ++i) {
    adam.ZeroGrad();
    Tensor loss = Sum(Mul(scales, Square(x)));
    loss.Backward();
    adam.Step();
  }
  EXPECT_NEAR(x.data()[0], 0.0, 1e-3);
  EXPECT_NEAR(x.data()[1], 0.0, 0.2);
}

TEST(OptimizerTest, ClipGradNorm) {
  Tensor x = Tensor::FromData({2}, {0.0, 0.0});
  x.set_requires_grad(true);
  x.mutable_grad() = {3.0, 4.0};  // norm 5
  Sgd sgd({x}, 1.0);
  const double pre = sgd.ClipGradNorm(2.5);
  EXPECT_DOUBLE_EQ(pre, 5.0);
  EXPECT_NEAR(x.grad()[0], 1.5, 1e-12);
  EXPECT_NEAR(x.grad()[1], 2.0, 1e-12);
  // Below the threshold: untouched.
  EXPECT_NEAR(sgd.ClipGradNorm(10.0), 2.5, 1e-12);
  EXPECT_NEAR(x.grad()[0], 1.5, 1e-12);
}

TEST(OptimizerTest, StepDecaySchedule) {
  StepDecaySchedule schedule(0.01, 0.2, 2);
  EXPECT_DOUBLE_EQ(schedule.LearningRateForEpoch(0), 0.01);
  EXPECT_DOUBLE_EQ(schedule.LearningRateForEpoch(1), 0.01);
  EXPECT_DOUBLE_EQ(schedule.LearningRateForEpoch(2), 0.002);
  EXPECT_NEAR(schedule.LearningRateForEpoch(4), 0.0004, 1e-12);
}

TEST(SerializeTest, RoundTrip) {
  util::Rng rng(13);
  std::vector<Tensor> params = {Tensor::Randn({3, 4}, rng, 1.0),
                                Tensor::Randn({5}, rng, 1.0)};
  const auto saved = params[0].data();
  const auto buf = SerializeParameters(params);
  EXPECT_EQ(buf.size(), SerializedSize(params));
  // Perturb then restore.
  params[0].data()[0] += 100.0;
  DeserializeParameters(buf, params);
  EXPECT_EQ(params[0].data(), saved);
}

TEST(SerializeTest, DetectsCorruption) {
  util::Rng rng(14);
  std::vector<Tensor> params = {Tensor::Randn({2, 2}, rng, 1.0)};
  auto buf = SerializeParameters(params);
  buf[0] ^= 0xff;  // clobber magic
  EXPECT_THROW(DeserializeParameters(buf, params), std::runtime_error);

  auto buf2 = SerializeParameters(params);
  std::vector<Tensor> wrong_shape = {Tensor::Zeros({4, 1})};
  EXPECT_THROW(DeserializeParameters(buf2, wrong_shape), std::runtime_error);
}

TEST(SerializeTest, FileRoundTrip) {
  util::Rng rng(15);
  std::vector<Tensor> params = {Tensor::Randn({6}, rng, 1.0)};
  const auto original = params[0].data();
  const std::string path = ::testing::TempDir() + "/deepod_params.bin";
  SaveParameters(path, params);
  params[0].data().assign(6, 0.0);
  LoadParameters(path, params);
  EXPECT_EQ(params[0].data(), original);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace deepod::nn
