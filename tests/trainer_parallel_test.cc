// Determinism and correctness contract of the data-parallel trainer
// (DESIGN.md "Threading model"):
//  - num_threads == 1 must stay bit-identical to the pre-threading serial
//    trainer (which the kLegacy kernel tier preserves exactly);
//  - a fixed num_threads > 1 must be deterministic run-to-run;
//  - the blocked / vectorised kernel tiers must pass finite-difference
//    gradient checks (odd sizes so the unrolled tails are exercised).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/deepod_config.h"
#include "core/deepod_model.h"
#include "core/trainer.h"
#include "nn/gradcheck.h"
#include "nn/lstm.h"
#include "nn/ops.h"
#include "nn/serialize.h"
#include "sim/dataset.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace deepod {
namespace {

const sim::Dataset& TinyDataset() {
  static const sim::Dataset* dataset = [] {
    sim::DatasetConfig config;
    config.city = road::XianSimConfig();
    config.city.rows = 6;
    config.city.cols = 6;
    config.trips_per_day = 12;
    config.num_days = 15;
    config.seed = 23;
    return new sim::Dataset(sim::BuildDataset(config));
  }();
  return *dataset;
}

core::DeepOdConfig TinyConfig(size_t num_threads) {
  core::DeepOdConfig config = core::DeepOdConfig().Scaled(16);
  config.epochs = 1;
  config.batch_size = 8;
  config.num_threads = num_threads;
  return config;
}

struct TrainOutcome {
  double final_val = 0.0;
  std::vector<uint8_t> params;
};

TrainOutcome TrainOnce(size_t num_threads) {
  core::DeepOdModel model(TinyConfig(num_threads), TinyDataset());
  core::DeepOdTrainer trainer(model, TinyDataset());
  TrainOutcome out;
  out.final_val = trainer.Train(nullptr, 1u << 30, 40);
  out.params = nn::SerializeParameters(model.Parameters());
  return out;
}

// --- num_threads == 1 keeps the pre-threading bits --------------------------

TEST(TrainerParallelTest, SingleThreadMatchesLegacySerialBitForBit) {
  // The default (blocked) kernel tier promises the exact floating-point
  // operation order of the seed implementation; training under it and under
  // the untouched legacy tier must therefore agree bit-for-bit.
  const TrainOutcome blocked = TrainOnce(1);
  nn::KernelModeScope legacy(nn::KernelMode::kLegacy);
  const TrainOutcome serial = TrainOnce(1);
  EXPECT_EQ(serial.final_val, blocked.final_val);
  EXPECT_EQ(serial.params, blocked.params);
}

// --- fixed thread count > 1 is deterministic --------------------------------

TEST(TrainerParallelTest, FourThreadsDeterministicAcrossRuns) {
  const TrainOutcome first = TrainOnce(4);
  const TrainOutcome second = TrainOnce(4);
  EXPECT_EQ(first.final_val, second.final_val);
  EXPECT_EQ(first.params, second.params);
  // Sanity: the parallel run trained to a comparable error, i.e. the merged
  // gradients are the real mini-batch gradients, not garbage.
  const TrainOutcome serial = TrainOnce(1);
  EXPECT_NEAR(first.final_val, serial.final_val,
              0.2 * serial.final_val + 1e-9);
}

// --- gradient checks for the optimised kernel tiers -------------------------

nn::Tensor MakeParam(std::vector<size_t> shape, util::Rng& rng) {
  nn::Tensor t = nn::Tensor::Randn(std::move(shape), rng, 0.5);
  t.set_requires_grad(true);
  return t;
}

void CheckKernelGradients(nn::KernelMode mode) {
  nn::KernelModeScope scope(mode);
  util::Rng rng(911);
  {
    // Odd inner/outer sizes exercise the unrolled-dot tails and the
    // partial j-blocks of the packed matmul.
    nn::Tensor a = MakeParam({5, 7}, rng);
    nn::Tensor b = MakeParam({7, 3}, rng);
    auto loss = [&] { return nn::Sum(nn::MatMul(a, b)); };
    const auto r = nn::CheckGradients(loss, {a, b});
    EXPECT_TRUE(r.ok) << "MatMul max_abs_err=" << r.max_abs_error;
  }
  {
    nn::Tensor w = MakeParam({5, 7}, rng);
    nn::Tensor x = MakeParam({7}, rng);
    nn::Tensor b = MakeParam({5}, rng);
    auto loss = [&] { return nn::Sum(nn::Affine(w, x, b)); };
    const auto r = nn::CheckGradients(loss, {w, x, b});
    EXPECT_TRUE(r.ok) << "Affine max_abs_err=" << r.max_abs_error;
  }
  {
    nn::Tensor in = MakeParam({2, 5, 6}, rng);
    nn::Tensor k = MakeParam({3, 2, 3, 3}, rng);
    auto loss = [&] { return nn::Sum(nn::Conv2d(in, k, 1, 1)); };
    const auto r = nn::CheckGradients(loss, {in, k});
    EXPECT_TRUE(r.ok) << "Conv2d max_abs_err=" << r.max_abs_error;
  }
}

TEST(TrainerParallelTest, BlockedKernelsPassGradCheck) {
  CheckKernelGradients(nn::KernelMode::kBlocked);
}

TEST(TrainerParallelTest, VectorKernelsPassGradCheck) {
  CheckKernelGradients(nn::KernelMode::kVector);
}

TEST(TrainerParallelTest, FusedLstmCellPassesGradCheck) {
  nn::KernelModeScope scope(nn::KernelMode::kVector);
  util::Rng rng(912);
  nn::Lstm lstm(5, 4, rng);  // kVector routes through LstmCellFused
  std::vector<nn::Tensor> inputs = {nn::Tensor::Randn({5}, rng, 0.5),
                                    nn::Tensor::Randn({5}, rng, 0.5),
                                    nn::Tensor::Randn({5}, rng, 0.5)};
  auto loss = [&] { return nn::Sum(nn::Square(lstm.Forward(inputs))); };
  const auto r = nn::CheckGradients(loss, lstm.Parameters());
  EXPECT_TRUE(r.ok) << "LstmCellFused max_abs_err=" << r.max_abs_error;
}

TEST(TrainerParallelTest, FusedLstmMatchesComposedForward) {
  util::Rng rng(913);
  nn::Lstm lstm(6, 5, rng);
  std::vector<nn::Tensor> inputs;
  for (int i = 0; i < 4; ++i) {
    inputs.push_back(nn::Tensor::Randn({6}, rng, 0.8));
  }
  const nn::Tensor composed = lstm.Forward(inputs);
  nn::KernelModeScope scope(nn::KernelMode::kVector);
  const nn::Tensor fused = lstm.Forward(inputs);
  ASSERT_EQ(fused.size(), composed.size());
  for (size_t i = 0; i < fused.size(); ++i) {
    EXPECT_NEAR(fused.at(i), composed.at(i), 1e-12);
  }
}

// --- thread pool basics ------------------------------------------------------

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  util::ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(101);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForPropagatesExceptions) {
  util::ThreadPool pool(2);
  EXPECT_THROW(pool.ParallelFor(8,
                                [&](size_t i) {
                                  if (i == 5) {
                                    throw std::runtime_error("boom");
                                  }
                                }),
               std::runtime_error);
}

TEST(ThreadPoolTest, ChunkRangePartitionsExactly) {
  size_t covered = 0;
  for (size_t w = 0; w < 4; ++w) {
    const auto [begin, end] = util::ThreadPool::ChunkRange(10, 4, w);
    EXPECT_LE(begin, end);
    covered += end - begin;
  }
  EXPECT_EQ(covered, 10u);
}

}  // namespace
}  // namespace deepod
