#include <gtest/gtest.h>

#include <cmath>

#include "nn/ops.h"
#include "nn/tensor.h"

namespace deepod::nn {
namespace {

TEST(OpsTest, AddSubMulForward) {
  Tensor a = Tensor::FromData({3}, {1, 2, 3});
  Tensor b = Tensor::FromData({3}, {4, 5, 6});
  EXPECT_EQ(Add(a, b).data(), (std::vector<double>{5, 7, 9}));
  EXPECT_EQ(Sub(a, b).data(), (std::vector<double>{-3, -3, -3}));
  EXPECT_EQ(Mul(a, b).data(), (std::vector<double>{4, 10, 18}));
}

TEST(OpsTest, ShapeMismatchThrows) {
  Tensor a = Tensor::Zeros({3});
  Tensor b = Tensor::Zeros({4});
  EXPECT_THROW(Add(a, b), std::invalid_argument);
  EXPECT_THROW(Mul(a, b), std::invalid_argument);
  EXPECT_THROW(MaeLoss(a, b), std::invalid_argument);
}

TEST(OpsTest, ScaleAndAddScalar) {
  Tensor a = Tensor::FromData({2}, {1, -2});
  EXPECT_EQ(Scale(a, 3.0).data(), (std::vector<double>{3, -6}));
  EXPECT_EQ(AddScalar(a, 1.0).data(), (std::vector<double>{2, -1}));
}

TEST(OpsTest, Activations) {
  Tensor a = Tensor::FromData({3}, {-1, 0, 2});
  EXPECT_EQ(Relu(a).data(), (std::vector<double>{0, 0, 2}));
  const auto sig = Sigmoid(a).data();
  EXPECT_NEAR(sig[1], 0.5, 1e-12);
  EXPECT_NEAR(sig[2], 1.0 / (1.0 + std::exp(-2.0)), 1e-12);
  const auto th = Tanh(a).data();
  EXPECT_NEAR(th[0], std::tanh(-1.0), 1e-12);
  EXPECT_EQ(Abs(a).data(), (std::vector<double>{1, 0, 2}));
  EXPECT_EQ(Square(a).data(), (std::vector<double>{1, 0, 4}));
}

TEST(OpsTest, MatMulForward) {
  Tensor a = Tensor::FromData({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromData({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.shape(), (std::vector<size_t>{2, 2}));
  EXPECT_DOUBLE_EQ(c.at(0, 0), 58);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 64);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 139);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 154);
}

TEST(OpsTest, MatMulShapeMismatchThrows) {
  EXPECT_THROW(MatMul(Tensor::Zeros({2, 3}), Tensor::Zeros({2, 3})),
               std::invalid_argument);
}

TEST(OpsTest, AffineForward) {
  Tensor w = Tensor::FromData({2, 3}, {1, 0, 0, 0, 1, 1});
  Tensor x = Tensor::FromData({3}, {5, 6, 7});
  Tensor b = Tensor::FromData({2}, {0.5, -0.5});
  Tensor y = Affine(w, x, b);
  EXPECT_DOUBLE_EQ(y.at(0), 5.5);
  EXPECT_DOUBLE_EQ(y.at(1), 12.5);
}

TEST(OpsTest, AddRowBroadcast) {
  Tensor m = Tensor::FromData({2, 2}, {1, 2, 3, 4});
  Tensor r = Tensor::FromData({2}, {10, 20});
  Tensor y = AddRow(m, r);
  EXPECT_EQ(y.data(), (std::vector<double>{11, 22, 13, 24}));
}

TEST(OpsTest, ConcatVec) {
  Tensor a = Tensor::FromData({2}, {1, 2});
  Tensor b = Tensor::FromData({3}, {3, 4, 5});
  Tensor c = ConcatVec({a, b});
  EXPECT_EQ(c.shape(), (std::vector<size_t>{5}));
  EXPECT_EQ(c.data(), (std::vector<double>{1, 2, 3, 4, 5}));
  EXPECT_THROW(ConcatVec({}), std::invalid_argument);
  EXPECT_THROW(ConcatVec({Tensor::Zeros({2, 2})}), std::invalid_argument);
}

TEST(OpsTest, StackRows) {
  Tensor a = Tensor::FromData({2}, {1, 2});
  Tensor b = Tensor::FromData({2}, {3, 4});
  Tensor m = StackRows({a, b});
  EXPECT_EQ(m.shape(), (std::vector<size_t>{2, 2}));
  EXPECT_DOUBLE_EQ(m.at(1, 0), 3);
  EXPECT_THROW(StackRows({a, Tensor::Zeros({3})}), std::invalid_argument);
}

TEST(OpsTest, RowAndGather) {
  Tensor m = Tensor::FromData({3, 2}, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(Row(m, 1).data(), (std::vector<double>{3, 4}));
  EXPECT_THROW(Row(m, 3), std::out_of_range);
  Tensor g = GatherRows(m, {2, 0, 2});
  EXPECT_EQ(g.shape(), (std::vector<size_t>{3, 2}));
  EXPECT_EQ(g.data(), (std::vector<double>{5, 6, 1, 2, 5, 6}));
  EXPECT_THROW(GatherRows(m, {7}), std::out_of_range);
}

TEST(OpsTest, GatherRowsGradScattersWithAccumulation) {
  Tensor m = Tensor::FromData({2, 2}, {1, 1, 1, 1});
  m.set_requires_grad(true);
  // Row 0 gathered twice: its gradient doubles.
  Tensor g = GatherRows(m, {0, 0, 1});
  Tensor loss = Sum(g);
  loss.Backward();
  EXPECT_DOUBLE_EQ(m.grad()[0], 2.0);
  EXPECT_DOUBLE_EQ(m.grad()[2], 1.0);
}

TEST(OpsTest, ReshapePreservesDataAndGrad) {
  Tensor a = Tensor::FromData({2, 2}, {1, 2, 3, 4});
  a.set_requires_grad(true);
  Tensor r = Reshape(a, {4});
  EXPECT_EQ(r.data(), a.data());
  Sum(r).Backward();
  for (double g : a.grad()) EXPECT_DOUBLE_EQ(g, 1.0);
  EXPECT_THROW(Reshape(a, {5}), std::invalid_argument);
}

TEST(OpsTest, Reductions) {
  Tensor a = Tensor::FromData({2, 2}, {1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(Sum(a).item(), 10.0);
  EXPECT_DOUBLE_EQ(Mean(a).item(), 2.5);
  const auto mr = MeanRows(a).data();
  EXPECT_DOUBLE_EQ(mr[0], 2.0);
  EXPECT_DOUBLE_EQ(mr[1], 3.0);
}

TEST(OpsTest, Conv2dIdentityKernel) {
  // 1x1 kernel with weight 1 reproduces the input.
  Tensor in = Tensor::FromData({1, 2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor k = Tensor::FromData({1, 1, 1, 1}, {1.0});
  Tensor out = Conv2d(in, k, 0, 0);
  EXPECT_EQ(out.shape(), in.shape());
  EXPECT_EQ(out.data(), in.data());
}

TEST(OpsTest, Conv2dAveragingKernel) {
  // 3x1 kernel of ones with padding 1 computes vertical neighbour sums.
  Tensor in = Tensor::FromData({1, 3, 1}, {1, 2, 3});
  Tensor k = Tensor::FromData({1, 1, 3, 1}, {1, 1, 1});
  Tensor out = Conv2d(in, k, 1, 0);
  EXPECT_EQ(out.shape(), (std::vector<size_t>{1, 3, 1}));
  EXPECT_DOUBLE_EQ(out.at(0, 0, 0), 3.0);  // 0+1+2
  EXPECT_DOUBLE_EQ(out.at(0, 1, 0), 6.0);  // 1+2+3
  EXPECT_DOUBLE_EQ(out.at(0, 2, 0), 5.0);  // 2+3+0
}

TEST(OpsTest, Conv2dMultiChannel) {
  // Two input channels summed by a 1x1 kernel with weights {2, 3}.
  Tensor in = Tensor::FromData({2, 1, 2}, {1, 2, 10, 20});
  Tensor k = Tensor::FromData({1, 2, 1, 1}, {2, 3});
  Tensor out = Conv2d(in, k, 0, 0);
  EXPECT_DOUBLE_EQ(out.at(0, 0, 0), 32.0);
  EXPECT_DOUBLE_EQ(out.at(0, 0, 1), 64.0);
}

TEST(OpsTest, Conv2dShapeChecks) {
  EXPECT_THROW(Conv2d(Tensor::Zeros({2, 2}), Tensor::Zeros({1, 1, 1, 1}), 0, 0),
               std::invalid_argument);
  EXPECT_THROW(
      Conv2d(Tensor::Zeros({2, 2, 2}), Tensor::Zeros({1, 3, 1, 1}), 0, 0),
      std::invalid_argument);
  // Kernel taller than padded input.
  EXPECT_THROW(
      Conv2d(Tensor::Zeros({1, 2, 2}), Tensor::Zeros({1, 1, 5, 1}), 0, 0),
      std::invalid_argument);
}

TEST(OpsTest, AddChannelBiasAndGlobalAvgPool) {
  Tensor in = Tensor::FromData({2, 1, 2}, {1, 2, 3, 4});
  Tensor bias = Tensor::FromData({2}, {10, 20});
  Tensor out = AddChannelBias(in, bias);
  EXPECT_EQ(out.data(), (std::vector<double>{11, 12, 23, 24}));
  const auto pooled = GlobalAvgPool(in).data();
  EXPECT_DOUBLE_EQ(pooled[0], 1.5);
  EXPECT_DOUBLE_EQ(pooled[1], 3.5);
}

TEST(OpsTest, Losses) {
  Tensor pred = Tensor::FromData({2}, {1.0, 3.0});
  Tensor target = Tensor::FromData({2}, {2.0, 1.0});
  EXPECT_DOUBLE_EQ(MaeLoss(pred, target).item(), 1.5);
  EXPECT_NEAR(EuclideanDistance(pred, target).item(), std::sqrt(5.0), 1e-6);
}

TEST(OpsTest, SqrtGuardsZero) {
  Tensor zero = Tensor::Scalar(0.0);
  zero.set_requires_grad(true);
  Tensor y = Sqrt(zero);
  y.Backward();
  EXPECT_TRUE(std::isfinite(zero.grad()[0]));
}

}  // namespace
}  // namespace deepod::nn
