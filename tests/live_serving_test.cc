// Live-traffic serving tests (DESIGN.md "Live serving"):
//  - obs::RollingMean windows correctly (the drift gauge's primitive);
//  - RollingSpeedField replicates SpeedMatrixBuilder geometry, serves
//    ingested means with baseline fall-through, rejects junk observations
//    and rolls its window;
//  - the epoch-keyed cache: BumpEpoch makes cached answers unreachable,
//    SwapState answers new requests from the new model bit-identically to a
//    fresh process while in-flight work finishes on the old epoch;
//  - ModelReloader hot-swaps a rewritten artifact, rolls back (keeps
//    serving) on a corrupt one, and recovers on the next good write;
//  - swap under sustained load: concurrent Estimate/TrySubmit traffic
//    across repeated swaps, zero failures, post-swap answers bit-identical
//    to a fresh process on the final artifact;
//  - DriftMonitor: rolling MAE rises under a shock, the retrain trigger
//    edge-fires once, and ingesting fresh observations through the rolling
//    field brings the MAE back down;
//  - the ObserveTrip frame codec round-trips and the server ingests observe
//    frames into the hooked rolling field + drift monitor;
//  - serve::CollectStats merges every source's registry into one
//    name-sorted record set (the unified stats schema).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/deepod_config.h"
#include "core/deepod_model.h"
#include "core/trainer.h"
#include "io/model_artifact.h"
#include "nn/serialize.h"
#include "obs/metrics.h"
#include "serve/drift_monitor.h"
#include "serve/eta_service.h"
#include "serve/model_reloader.h"
#include "serve/server/frame.h"
#include "serve/server/loadgen.h"
#include "serve/server/server.h"
#include "serve/serving_state.h"
#include "serve/stats.h"
#include "sim/dataset.h"
#include "sim/rolling_speed_field.h"
#include "sim/snapshot_speed_field.h"

namespace deepod {
namespace {

// Same tiny dataset shape as artifact_test.cc (expensive to build, shared).
const sim::Dataset& TinyDataset() {
  static const sim::Dataset* dataset = [] {
    sim::DatasetConfig config;
    config.city = road::XianSimConfig();
    config.city.rows = 6;
    config.city.cols = 6;
    config.trips_per_day = 12;
    config.num_days = 15;
    config.seed = 31;
    return new sim::Dataset(sim::BuildDataset(config));
  }();
  return *dataset;
}

core::DeepOdConfig TinyConfig() {
  core::DeepOdConfig config = core::DeepOdConfig().Scaled(16);
  config.epochs = 1;
  config.batch_size = 8;
  return config;
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + name;
}

std::vector<traj::OdInput> TestOds(size_t n) {
  const auto& dataset = TinyDataset();
  const auto& trips = dataset.test.empty() ? dataset.train : dataset.test;
  std::vector<traj::OdInput> ods;
  for (size_t i = 0; i < n; ++i) ods.push_back(trips[i % trips.size()].od);
  return ods;
}

// The frozen speed field over the test-query window, as deepod_train ships
// it inside an artifact.
const sim::SnapshotSpeedField& FrozenField() {
  static const sim::SnapshotSpeedField* field = [] {
    const auto& dataset = TinyDataset();
    double begin = dataset.test.front().od.departure_time;
    double end = begin;
    for (const auto& trip : dataset.test) {
      begin = std::min(begin, trip.od.departure_time);
      end = std::max(end, trip.od.departure_time);
    }
    return new sim::SnapshotSpeedField(
        sim::SnapshotSpeedField::Capture(*dataset.speed_matrices, begin, end));
  }();
  return *field;
}

// Two artifact generations over the same dataset + network: v1 is the
// deterministic untrained model, v2 the same architecture after one epoch —
// exactly the "retrain produced new weights, same compatibility surface"
// shape an in-place hot swap is for.
const std::string& ArtifactV1() {
  static const std::string* path = [] {
    core::DeepOdModel model(TinyConfig(), TinyDataset());
    model.SetTraining(false);
    auto* p = new std::string(TempPath("live_serving_v1.artifact"));
    io::WriteModelArtifact(*p, model, &FrozenField());
    return p;
  }();
  return *path;
}

const std::string& ArtifactV2() {
  static const std::string* path = [] {
    core::DeepOdModel model(TinyConfig(), TinyDataset());
    core::DeepOdTrainer trainer(model, TinyDataset());
    trainer.Train();
    model.SetTraining(false);
    auto* p = new std::string(TempPath("live_serving_v2.artifact"));
    io::WriteModelArtifact(*p, model, &FrozenField());
    return p;
  }();
  return *path;
}

// Copies `src` over `dst` with an atomic rename — the publish discipline
// CONTRIBUTING.md prescribes for watched artifact paths.
void PublishArtifact(const std::string& src, const std::string& dst) {
  const std::string tmp = dst + ".tmp";
  {
    std::FILE* in = std::fopen(src.c_str(), "rb");
    std::FILE* out = std::fopen(tmp.c_str(), "wb");
    ASSERT_NE(in, nullptr);
    ASSERT_NE(out, nullptr);
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) {
      ASSERT_EQ(std::fwrite(buf, 1, n, out), n);
    }
    std::fclose(in);
    std::fclose(out);
  }
  ASSERT_EQ(std::rename(tmp.c_str(), dst.c_str()), 0);
}

// --- obs::RollingMean -------------------------------------------------------

TEST(RollingMean, WindowsAndResets) {
  obs::RollingMean mean(4);
  EXPECT_EQ(mean.Value(), 0.0);
  mean.Observe(2.0);
  EXPECT_EQ(mean.Value(), 2.0);
  mean.Observe(4.0);
  EXPECT_EQ(mean.Value(), 3.0);
  for (double v : {10.0, 10.0, 10.0, 10.0}) mean.Observe(v);
  // The 2.0 and 4.0 have aged out of the 4-slot window.
  EXPECT_EQ(mean.Value(), 10.0);
  EXPECT_EQ(mean.Count(), 6u);
  EXPECT_EQ(mean.window(), 4u);
  mean.Reset();
  EXPECT_EQ(mean.Value(), 0.0);
  EXPECT_EQ(mean.Count(), 0u);
}

// --- RollingSpeedField ------------------------------------------------------

TEST(RollingSpeedField, ReplicatesBuilderGeometry) {
  const auto& dataset = TinyDataset();
  sim::RollingSpeedField rolling(dataset.network, 200.0, 300.0);
  EXPECT_EQ(rolling.rows(), dataset.speed_matrices->rows());
  EXPECT_EQ(rolling.cols(), dataset.speed_matrices->cols());
  EXPECT_EQ(rolling.snapshot_seconds(), 300.0);
}

TEST(RollingSpeedField, FallsThroughToBaselineWhenUnpublished) {
  const auto& dataset = TinyDataset();
  const auto& baseline = FrozenField();
  sim::RollingSpeedField rolling(dataset.network, 200.0,
                                 baseline.snapshot_seconds(), &baseline);
  const double t = TestOds(1)[0].departure_time;
  EXPECT_EQ(rolling.MatrixAt(t), baseline.MatrixAt(t));
  EXPECT_EQ(rolling.SnapshotTime(t), baseline.SnapshotTime(t));

  sim::RollingSpeedField bare(dataset.network, 200.0, 300.0);
  const std::vector<double> flat = bare.MatrixAt(t);
  ASSERT_EQ(flat.size(), bare.rows() * bare.cols());
  for (double v : flat) EXPECT_EQ(v, 0.5);
}

TEST(RollingSpeedField, ServesIngestedMeansWithBaselineFill) {
  const auto& dataset = TinyDataset();
  const auto& baseline = FrozenField();
  sim::RollingSpeedField rolling(dataset.network, 200.0,
                                 baseline.snapshot_seconds(), &baseline);
  const double t = TestOds(1)[0].departure_time;
  const uint64_t segment = dataset.network.segments().front().id;
  double max_speed = 1.0;
  for (const auto& s : dataset.network.segments()) {
    max_speed = std::max(max_speed, s.free_flow_speed);
  }

  // Two observations in the same cell + snapshot: the cell serves their
  // normalised mean.
  const std::vector<sim::TripObservation> pair = {{segment, t, 4.0},
                                                  {segment, t + 1.0, 8.0}};
  EXPECT_EQ(rolling.Ingest({pair.data(), pair.size()}), 2u);
  EXPECT_EQ(rolling.Publish(), 2u);
  EXPECT_EQ(rolling.publishes(), 1u);
  const std::vector<double> matrix = rolling.MatrixAt(t);
  const std::vector<double> base = baseline.MatrixAt(t);
  ASSERT_EQ(matrix.size(), base.size());
  size_t observed_cells = 0;
  for (size_t c = 0; c < matrix.size(); ++c) {
    if (matrix[c] != base[c]) {
      ++observed_cells;
      EXPECT_DOUBLE_EQ(matrix[c], 6.0 / max_speed);
    }
  }
  // Exactly the observed cell differs; every other cell is baseline fill.
  EXPECT_EQ(observed_cells, 1u);
  EXPECT_EQ(rolling.SnapshotTime(t),
            std::floor(t / baseline.snapshot_seconds()) *
                baseline.snapshot_seconds());
}

TEST(RollingSpeedField, RejectsJunkAndRollsItsWindow) {
  const auto& dataset = TinyDataset();
  sim::RollingSpeedFieldOptions options;
  options.window_seconds = 600.0;  // two 300s snapshots
  sim::RollingSpeedField rolling(dataset.network, 200.0, 300.0, nullptr,
                                 options);
  const uint64_t segment = dataset.network.segments().front().id;
  // Unknown segment, non-positive speed, non-finite time: all rejected.
  const std::vector<sim::TripObservation> junk = {
      {1u << 30, 100.0, 5.0},
      {segment, 100.0, 0.0},
      {segment, std::nan(""), 5.0}};
  EXPECT_EQ(rolling.Ingest({junk.data(), junk.size()}), 0u);
  EXPECT_EQ(rolling.rejected(), 3u);
  EXPECT_EQ(rolling.Publish(), 0u);

  rolling.Ingest(sim::TripObservation{segment, 100.0, 5.0});
  rolling.Publish();
  EXPECT_EQ(rolling.published_snapshots(), 1u);
  // An observation 10 snapshots later pushes the first out of the window.
  rolling.Ingest(sim::TripObservation{segment, 100.0 + 3000.0, 5.0});
  rolling.Publish();
  EXPECT_EQ(rolling.published_snapshots(), 1u);
  EXPECT_EQ(rolling.accepted(), 2u);
}

// --- Epoch-keyed cache ------------------------------------------------------

TEST(EtaServiceEpoch, BumpEpochInvalidatesCachedAnswers) {
  core::DeepOdModel model(TinyConfig(), TinyDataset());
  model.SetTraining(false);
  serve::EtaService service(model, serve::EtaServiceOptions{});
  const auto ods = TestOds(1);
  EXPECT_EQ(service.state()->epoch, 0u);
  const serve::OdCacheKey before = service.MakeKey(ods[0]);

  const double first = service.Estimate(ods[0]);
  const double second = service.Estimate(ods[0]);
  EXPECT_EQ(first, second);
  EXPECT_EQ(service.StatsSnapshot().cache_hits, 1u);

  EXPECT_EQ(service.BumpEpoch(), 1u);
  const serve::OdCacheKey after = service.MakeKey(ods[0]);
  EXPECT_EQ(before.segments, after.segments);
  EXPECT_EQ(before.context, after.context);
  EXPECT_NE(before.epoch, after.epoch);

  // Same query, fresh epoch: the old entry is unreachable, so this is a
  // miss recomputed by the (unchanged) model — same number, new entry.
  const double third = service.Estimate(ods[0]);
  EXPECT_EQ(third, first);
  const auto stats = service.StatsSnapshot();
  EXPECT_EQ(stats.cache_misses, 2u);
  EXPECT_EQ(stats.epoch, 1u);
}

TEST(EtaServiceEpoch, SwapStateMatchesFreshProcessBitForBit) {
  const auto& network = TinyDataset().network;
  serve::EtaServiceOptions options;
  auto service = serve::EtaService::FromArtifact(ArtifactV1(), network,
                                                 options);
  auto fresh_v1 = serve::EtaService::FromArtifact(ArtifactV1(), network,
                                                  options);
  auto fresh_v2 = serve::EtaService::FromArtifact(ArtifactV2(), network,
                                                  options);
  const auto ods = TestOds(8);
  for (const auto& od : ods) {
    EXPECT_EQ(service->Estimate(od), fresh_v1->Estimate(od));
  }

  // A reader that acquired the v1 epoch before the swap keeps a fully
  // usable state afterwards (RCU: the old bundle lives until released).
  const std::shared_ptr<const serve::ServingState> held = service->state();
  const uint64_t epoch = service->SwapState(
      serve::LoadServingState(ArtifactV2(), network, io::ArtifactOptions{}));
  EXPECT_EQ(epoch, 1u);
  EXPECT_EQ(service->state()->epoch, 1u);
  EXPECT_EQ(service->StatsSnapshot().swaps, 1u);

  for (const auto& od : ods) {
    const double swapped = service->Estimate(od);
    const double fresh = fresh_v2->Estimate(od);
    EXPECT_EQ(std::memcmp(&swapped, &fresh, sizeof(double)), 0)
        << "post-swap answer differs from a fresh process";
  }
  EXPECT_NE(held->model, nullptr);
  EXPECT_EQ(held->epoch, 0u);
  EXPECT_EQ(held->model->Predict(ods[0]), fresh_v1->Estimate(ods[0]));
}

// --- ModelReloader ----------------------------------------------------------

TEST(ModelReloader, SwapsOnChangeRollsBackOnCorruptionRecovers) {
  const auto& network = TinyDataset().network;
  const std::string watched = TempPath("live_serving_watched.artifact");
  PublishArtifact(ArtifactV1(), watched);

  serve::EtaServiceOptions service_options;
  auto service =
      serve::EtaService::FromArtifact(watched, network, service_options);
  auto fresh_v1 = serve::EtaService::FromArtifact(ArtifactV1(), network,
                                                  service_options);
  auto fresh_v2 = serve::EtaService::FromArtifact(ArtifactV2(), network,
                                                  service_options);
  serve::ModelReloaderOptions reloader_options;
  reloader_options.poll_interval = std::chrono::hours(1);  // ReloadNow only
  serve::ModelReloader reloader(*service, watched, network, reloader_options);

  // Construction adopted the served file as baseline: nothing to do.
  EXPECT_FALSE(reloader.ReloadNow());
  EXPECT_EQ(reloader.StatusSnapshot().reloads, 0u);
  EXPECT_TRUE(reloader.StatusSnapshot().healthy);

  const auto ods = TestOds(4);
  PublishArtifact(ArtifactV2(), watched);
  EXPECT_TRUE(reloader.ReloadNow());
  EXPECT_EQ(reloader.StatusSnapshot().reloads, 1u);
  EXPECT_EQ(service->state()->source, watched);
  for (const auto& od : ods) {
    EXPECT_EQ(service->Estimate(od), fresh_v2->Estimate(od));
  }

  // Corrupt artifact: typed load failure, service keeps serving v2.
  {
    std::FILE* f = std::fopen(watched.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not an artifact", f);
    std::fclose(f);
  }
  EXPECT_FALSE(reloader.ReloadNow());
  const auto status = reloader.StatusSnapshot();
  EXPECT_EQ(status.failures, 1u);
  EXPECT_FALSE(status.healthy);
  EXPECT_FALSE(status.last_error.empty());
  for (const auto& od : ods) {
    EXPECT_EQ(service->Estimate(od), fresh_v2->Estimate(od));
  }
  // The corrupt bytes are remembered: no retry until the content changes.
  EXPECT_FALSE(reloader.ReloadNow());
  EXPECT_EQ(reloader.StatusSnapshot().failures, 1u);

  // A good write recovers.
  PublishArtifact(ArtifactV1(), watched);
  EXPECT_TRUE(reloader.ReloadNow());
  EXPECT_TRUE(reloader.StatusSnapshot().healthy);
  for (const auto& od : ods) {
    EXPECT_EQ(service->Estimate(od), fresh_v1->Estimate(od));
  }
}

TEST(ModelReloader, WatcherPicksUpRenamedArtifact) {
  const auto& network = TinyDataset().network;
  const std::string watched = TempPath("live_serving_polled.artifact");
  PublishArtifact(ArtifactV1(), watched);
  serve::EtaServiceOptions service_options;
  auto service =
      serve::EtaService::FromArtifact(watched, network, service_options);
  serve::ModelReloaderOptions reloader_options;
  reloader_options.poll_interval = std::chrono::milliseconds(20);
  reloader_options.stability_polls = 1;
  serve::ModelReloader reloader(*service, watched, network, reloader_options);

  PublishArtifact(ArtifactV2(), watched);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (reloader.StatusSnapshot().reloads == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(reloader.StatusSnapshot().reloads, 1u);
  EXPECT_EQ(service->state()->epoch, 1u);
}

// --- Swap under sustained load ----------------------------------------------

TEST(ModelReloader, SwapUnderLoadDropsNothingAndStaysBitIdentical) {
  const auto& network = TinyDataset().network;
  const std::string watched = TempPath("live_serving_underload.artifact");
  PublishArtifact(ArtifactV1(), watched);
  serve::EtaServiceOptions service_options;
  auto service =
      serve::EtaService::FromArtifact(watched, network, service_options);
  serve::ModelReloaderOptions reloader_options;
  reloader_options.poll_interval = std::chrono::hours(1);
  serve::ModelReloader reloader(*service, watched, network, reloader_options);

  const auto ods = TestOds(16);
  // Every answer a concurrent client ever sees must be bit-identical to
  // what ONE of the two artifact generations answers — an epoch is either
  // fully v1 or fully v2, never a blend, never a torn state.
  auto fresh_v1 = serve::EtaService::FromArtifact(ArtifactV1(), network,
                                                  service_options);
  auto fresh_v2 = serve::EtaService::FromArtifact(ArtifactV2(), network,
                                                  service_options);
  std::vector<double> expected_v1, expected_v2;
  for (const auto& od : ods) {
    expected_v1.push_back(fresh_v1->Estimate(od));
    expected_v2.push_back(fresh_v2->Estimate(od));
  }
  const auto valid = [&](size_t query, double eta) {
    return std::memcmp(&eta, &expected_v1[query], sizeof(double)) == 0 ||
           std::memcmp(&eta, &expected_v2[query], sizeof(double)) == 0;
  };

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> answered{0};
  std::atomic<uint64_t> failures{0};
  // Two synchronous estimators + one TrySubmit producer, hammering across
  // every flip. Every future must resolve — a dropped or half-swapped
  // request shows up here.
  std::vector<std::thread> traffic;
  for (int worker = 0; worker < 2; ++worker) {
    traffic.emplace_back([&, worker] {
      size_t i = static_cast<size_t>(worker);
      while (!stop.load(std::memory_order_relaxed)) {
        const size_t query = i % ods.size();
        if (!valid(query, service->Estimate(ods[query]))) ++failures;
        ++answered;
        ++i;
      }
    });
  }
  traffic.emplace_back([&] {
    size_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const size_t query = i % ods.size();
      auto future = service->TrySubmit(ods[query],
                                       std::chrono::milliseconds(100));
      if (!future.has_value()) {
        ++failures;  // queue is never full here: a shed is a bug
      } else {
        if (!valid(query, future->get())) ++failures;
        ++answered;
      }
      ++i;
    }
  });

  // Flip v1 -> v2 -> v1 -> ... under the traffic.
  const int kSwaps = 6;
  for (int swap = 0; swap < kSwaps; ++swap) {
    PublishArtifact(swap % 2 == 0 ? ArtifactV2() : ArtifactV1(), watched);
    ASSERT_TRUE(reloader.ReloadNow()) << "swap " << swap;
  }
  stop.store(true);
  for (auto& t : traffic) t.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_GT(answered.load(), 0u);
  EXPECT_EQ(service->StatsSnapshot().swaps, static_cast<uint64_t>(kSwaps));

  // Post-swap goldens: the long-lived, many-times-swapped service answers
  // exactly like a process freshly started on the final artifact (kSwaps
  // even: the last flip republished v1).
  for (size_t i = 0; i < ods.size(); ++i) {
    const double swapped = service->Estimate(ods[i]);
    EXPECT_EQ(std::memcmp(&swapped, &expected_v1[i], sizeof(double)), 0);
  }
}

// --- Drift monitor ----------------------------------------------------------

TEST(DriftMonitor, EdgeTriggersOnceAndReArms) {
  serve::DriftMonitorOptions options;
  options.window = 8;
  options.trigger_mae = 10.0;
  options.min_observations = 4;
  std::atomic<int> fires{0};
  serve::DriftMonitor drift(options, [&](double) { ++fires; });

  // Below min_observations: no trigger even though the MAE is over.
  drift.Observe(0.0, 100.0);
  drift.Observe(0.0, 100.0);
  drift.Observe(0.0, 100.0);
  EXPECT_EQ(fires.load(), 0);
  drift.Observe(0.0, 100.0);  // 4th: crossing fires exactly once
  EXPECT_EQ(fires.load(), 1);
  drift.Observe(0.0, 100.0);
  EXPECT_EQ(fires.load(), 1);  // still over: no re-fire
  EXPECT_EQ(drift.Triggers(), 1u);
  EXPECT_DOUBLE_EQ(drift.RollingMae(), 100.0);

  // Flood the window with perfect trips: falls under, re-arms, re-fires on
  // the next excursion.
  for (int i = 0; i < 8; ++i) drift.Observe(50.0, 50.0);
  EXPECT_DOUBLE_EQ(drift.RollingMae(), 0.0);
  for (int i = 0; i < 8; ++i) drift.Observe(0.0, 100.0);
  EXPECT_EQ(fires.load(), 2);
}

// The weather-shock scenario: a regime change makes observed actuals drift
// away from what the (stale) model predicts, the rolling MAE gauge rises
// past the retrain threshold, and ingesting the fresh observations through
// the rolling field + epoch bump brings served predictions back in line —
// the full detect-and-recover loop of the live serving design.
TEST(DriftMonitor, WeatherShockRaisesMaeAndFreshObservationsLowerIt) {
  const auto& dataset = TinyDataset();
  const auto& baseline = FrozenField();
  core::DeepOdModel model(TinyConfig(), TinyDataset());
  model.SetTraining(false);
  sim::RollingSpeedField rolling(dataset.network, 200.0,
                                 baseline.snapshot_seconds(), &baseline);
  model.SetSpeedProvider(&rolling);
  serve::EtaService service(model, serve::EtaServiceOptions{});

  serve::DriftMonitorOptions drift_options;
  drift_options.window = 16;
  drift_options.trigger_mae = 60.0;
  drift_options.min_observations = 8;
  std::atomic<int> retrains{0};
  serve::DriftMonitor drift(drift_options, [&](double) { ++retrains; });

  // Phase 1 — the shock: every observed trip comes in 50% + 120s slower
  // than the serving model predicts. The gauge climbs and the retrain
  // trigger fires.
  const auto ods = TestOds(16);
  for (const auto& od : ods) {
    const double predicted = service.Estimate(od);
    drift.Observe(predicted, predicted * 1.5 + 120.0);
  }
  const double shocked_mae = drift.RollingMae();
  EXPECT_GT(shocked_mae, drift_options.trigger_mae);
  EXPECT_EQ(retrains.load(), 1);

  // Phase 2 — recovery: the shocked speeds stream in as ObserveTrip
  // observations, the rolling field publishes them and the epoch bump drops
  // cache + ocode memo, so served predictions now reflect the new regime.
  std::vector<sim::TripObservation> observations;
  for (const auto& od : ods) {
    observations.push_back({od.origin_segment, od.departure_time, 2.0});
    observations.push_back({od.dest_segment, od.departure_time, 2.0});
  }
  ASSERT_EQ(rolling.Ingest({observations.data(), observations.size()}),
            observations.size());
  ASSERT_GT(rolling.Publish(), 0u);
  service.BumpEpoch();
  // The published matrices really changed what the model reads.
  EXPECT_NE(rolling.MatrixAt(ods[0].departure_time),
            baseline.MatrixAt(ods[0].departure_time));

  // With the model re-grounded, observed actuals match what it now serves;
  // the window refills with near-zero errors and the gauge falls back.
  for (int pass = 0; pass < 2; ++pass) {
    for (const auto& od : ods) {
      const double predicted = service.Estimate(od);
      drift.Observe(predicted, predicted);
    }
  }
  EXPECT_LT(drift.RollingMae(), shocked_mae);
  // Near-zero: the ring buffer's running sum carries ~1e-15 of float dust.
  EXPECT_NEAR(drift.RollingMae(), 0.0, 1e-9);
  EXPECT_EQ(retrains.load(), 1);  // re-armed but not re-fired
}

// --- ObserveTrip wire frame -------------------------------------------------

TEST(ObserveFrameCodec, RoundTripsBitForBit) {
  using namespace serve::net;
  ObserveFrame frame;
  frame.request_id = 0xfeedfacecafef00dull;
  frame.network_id = 9;
  frame.od.origin_segment = 7;
  frame.od.dest_segment = 31;
  frame.od.origin_ratio = 0.25;
  frame.od.dest_ratio = 0.75;
  frame.od.departure_time = 10.0 * 86400.0 + 8.0 * 3600.0;
  frame.od.weather_type = 2;
  frame.actual_seconds = 1234.5;
  frame.observations = {{3, frame.od.departure_time + 10.0, 7.5},
                        {5, frame.od.departure_time + 20.0, 3.25}};
  const std::vector<uint8_t> wire = EncodeObserveFrame(frame);
  ASSERT_EQ(wire.size(), 4 + kObservePayloadHeaderBytes +
                             frame.observations.size() * kObservationBytes);
  EXPECT_EQ(PeekMagic(wire.data() + 4, wire.size() - 4), kObserveMagic);

  ObserveFrame back;
  ASSERT_EQ(DecodeObservePayload(wire.data() + 4, wire.size() - 4, &back),
            Status::kOk);
  EXPECT_EQ(back.request_id, frame.request_id);
  EXPECT_EQ(back.network_id, frame.network_id);
  EXPECT_EQ(back.od.origin_segment, frame.od.origin_segment);
  EXPECT_EQ(back.od.dest_segment, frame.od.dest_segment);
  EXPECT_EQ(back.od.origin_ratio, frame.od.origin_ratio);
  EXPECT_EQ(back.od.dest_ratio, frame.od.dest_ratio);
  EXPECT_EQ(back.od.departure_time, frame.od.departure_time);
  EXPECT_EQ(back.od.weather_type, frame.od.weather_type);
  EXPECT_EQ(back.actual_seconds, frame.actual_seconds);
  ASSERT_EQ(back.observations.size(), frame.observations.size());
  for (size_t i = 0; i < back.observations.size(); ++i) {
    EXPECT_EQ(back.observations[i].segment_id,
              frame.observations[i].segment_id);
    EXPECT_EQ(back.observations[i].time, frame.observations[i].time);
    EXPECT_EQ(back.observations[i].speed_mps,
              frame.observations[i].speed_mps);
  }
}

TEST(ObserveFrameCodec, TruncationRecoversRequestId) {
  using namespace serve::net;
  ObserveFrame frame;
  frame.request_id = 42;
  frame.observations = {{1, 100.0, 5.0}};
  const std::vector<uint8_t> wire = EncodeObserveFrame(frame);
  ObserveFrame back;
  // Cut mid-observation: kBadFrame, but the id still correlates the error.
  ASSERT_EQ(DecodeObservePayload(wire.data() + 4, wire.size() - 4 - 8, &back),
            Status::kBadFrame);
  EXPECT_EQ(back.request_id, 42u);
}

TEST(ObserveFrameCodec, EncoderRefusesOverlongTrips) {
  using namespace serve::net;
  ObserveFrame frame;
  frame.observations.resize(kMaxObservationsPerFrame + 1);
  EXPECT_THROW(EncodeObserveFrame(frame), std::invalid_argument);
}

// --- Server ingest path -----------------------------------------------------

TEST(ServerObserve, IngestsIntoHooksAndAnswersWithThePrediction) {
  using namespace serve::net;
  const auto& dataset = TinyDataset();
  const auto& baseline = FrozenField();
  core::DeepOdModel model(TinyConfig(), TinyDataset());
  model.SetTraining(false);
  serve::EtaService service(model, serve::EtaServiceOptions{});
  sim::RollingSpeedField rolling(dataset.network, 200.0,
                                 baseline.snapshot_seconds(), &baseline);
  serve::DriftMonitor drift(serve::DriftMonitorOptions{});

  ServerOptions options;
  options.num_segments = dataset.network.num_segments();
  options.live.rolling_field = &rolling;
  options.live.drift = &drift;
  DeepOdServer server(service, options);
  server.Start();
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));

  const auto ods = TestOds(1);
  ObserveFrame frame;
  frame.request_id = 99;
  frame.od = ods[0];
  frame.actual_seconds = 600.0;
  frame.observations = {
      {ods[0].origin_segment, ods[0].departure_time, 4.0},
      {1u << 30, ods[0].departure_time, 4.0},  // unknown: rejected, not fatal
  };
  const std::vector<uint8_t> wire = EncodeObserveFrame(frame);
  ASSERT_TRUE(WriteAll(client.fd(), wire.data(), wire.size()));
  ResponseFrame response;
  ASSERT_TRUE(client.ReadResponse(&response));
  EXPECT_EQ(response.request_id, 99u);
  EXPECT_EQ(response.status, Status::kOk);
  // The answer is the drift-scoring prediction for the trip's OD.
  EXPECT_EQ(response.eta_seconds, service.Estimate(ods[0]));

  EXPECT_EQ(rolling.pending(), 1u);  // the known-segment observation
  EXPECT_EQ(rolling.rejected(), 1u);
  EXPECT_EQ(drift.Observations(), 1u);
  EXPECT_GT(drift.RollingMae(), 0.0);

  // The connection stays usable for regular requests afterwards.
  RequestFrame request;
  request.request_id = 100;
  request.od = ods[0];
  ASSERT_TRUE(client.Send(request));
  ASSERT_TRUE(client.ReadResponse(&response));
  EXPECT_EQ(response.status, Status::kOk);

  client.Close();
  server.Shutdown();
}

// --- Unified stats ----------------------------------------------------------

TEST(UnifiedStats, MergesEverySourceNameSorted) {
  core::DeepOdModel model(TinyConfig(), TinyDataset());
  model.SetTraining(false);
  serve::EtaService service(model, serve::EtaServiceOptions{});
  serve::DriftMonitor drift(serve::DriftMonitorOptions{});
  service.Estimate(TestOds(1)[0]);
  drift.Observe(10.0, 12.0);

  serve::StatsSources sources;
  sources.service = &service;
  sources.drift = &drift;
  const std::vector<obs::Record> records = serve::CollectStats(sources);
  ASSERT_FALSE(records.empty());
  bool saw_requests = false, saw_mae = false;
  for (size_t i = 0; i < records.size(); ++i) {
    if (i > 0) EXPECT_LE(records[i - 1].name, records[i].name);
    saw_requests |= records[i].name == "serve/requests";
    saw_mae |= records[i].name == "drift/rolling_mae";
  }
  EXPECT_TRUE(saw_requests);
  EXPECT_TRUE(saw_mae);

  // Both renderings come from the same collection: the JSON document names
  // every record the Prometheus exposition names.
  const std::string json = serve::ExportStatsJson(sources);
  EXPECT_NE(json.find("\"records\""), std::string::npos);
  EXPECT_NE(json.find("drift/rolling_mae"), std::string::npos);
  EXPECT_NE(json.find("serve/requests"), std::string::npos);
}

}  // namespace
}  // namespace deepod
