// End-to-end tests for the model lifecycle added with the named state-dict
// refactor: Save/Load round trips (including BatchNorm running statistics
// and legacy blobs), the self-contained serving artifact, serving from an
// artifact through EtaService, and resumable trainer checkpoints.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/deepod_config.h"
#include "core/deepod_model.h"
#include "core/trainer.h"
#include "io/model_artifact.h"
#include "nn/serialize.h"
#include "nn/tensor.h"
#include "serve/eta_service.h"
#include "sim/dataset.h"
#include "sim/snapshot_speed_field.h"
#include "util/thread_pool.h"

namespace deepod {
namespace {

// Same tiny dataset as core_test.cc (expensive to build, shared).
const sim::Dataset& TinyDataset() {
  static const sim::Dataset* dataset = [] {
    sim::DatasetConfig config;
    config.city = road::XianSimConfig();
    config.city.rows = 6;
    config.city.cols = 6;
    config.trips_per_day = 12;
    config.num_days = 15;
    config.seed = 17;
    return new sim::Dataset(sim::BuildDataset(config));
  }();
  return *dataset;
}

core::DeepOdConfig TinyConfig() {
  core::DeepOdConfig config = core::DeepOdConfig().Scaled(16);
  config.epochs = 1;
  config.batch_size = 8;
  return config;
}

// One trained model shared by the read-only round-trip tests (training is
// the expensive part; every test below only reads it or copies its state).
core::DeepOdModel& TrainedModel() {
  static core::DeepOdModel* model = [] {
    auto* m = new core::DeepOdModel(TinyConfig(), TinyDataset());
    core::DeepOdTrainer trainer(*m, TinyDataset());
    trainer.Train();
    return m;
  }();
  return *model;
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + name;
}

std::vector<traj::OdInput> TestOds(size_t n) {
  const auto& dataset = TinyDataset();
  std::vector<traj::OdInput> ods;
  for (size_t i = 0; i < std::min(n, dataset.test.size()); ++i) {
    ods.push_back(dataset.test[i].od);
  }
  return ods;
}

// Bit-exact comparison of two full state dicts (names, shapes, payloads).
void ExpectStateBitEqual(const nn::StateDict& a, const nn::StateDict& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    const auto& ea = a.entries()[i];
    const auto& eb = b.entries()[i];
    ASSERT_EQ(ea.name, eb.name);
    ASSERT_EQ(ea.shape, eb.shape);
    ASSERT_EQ(ea.size, eb.size);
    EXPECT_EQ(std::memcmp(ea.data, eb.data, ea.size * sizeof(double)), 0)
        << "payload differs for " << ea.name;
  }
}

TEST(ModelStateTest, SaveLoadRoundTripIsBitExact) {
  core::DeepOdModel& trained = TrainedModel();
  const std::string path = TempPath("artifact_test_model.bin");
  trained.Save(path);

  // A fresh model of the same config starts from different state (training
  // moved every parameter); Load must restore all of it, buffers included.
  core::DeepOdModel loaded(TinyConfig(), TinyDataset());
  loaded.SetTraining(false);
  const auto ods = TestOds(4);
  ASSERT_NE(loaded.Predict(ods[0]), trained.Predict(ods[0]));
  loaded.Load(path);

  EXPECT_EQ(loaded.time_scale(), trained.time_scale());
  {
    const nn::StateDict a = trained.State();
    const nn::StateDict b = loaded.State();
    ExpectStateBitEqual(a, b);
  }
  for (const auto& od : ods) {
    const double want = trained.Predict(od);
    const double got = loaded.Predict(od);
    EXPECT_EQ(std::memcmp(&want, &got, sizeof(double)), 0);
  }
  std::remove(path.c_str());
}

TEST(ModelStateTest, TrainingUpdatesAndCheckpointKeepsBatchNormStats) {
  // The state dict must carry BatchNorm running statistics, and training
  // must actually have moved them off their init values (mean 0 / var 1) —
  // the regression the old parameter-only format silently dropped.
  const nn::StateDict state = TrainedModel().State();
  size_t buffers = 0, moved = 0;
  for (const auto& e : state.entries()) {
    if (e.name.find("running_") == std::string::npos) continue;
    ++buffers;
    for (size_t i = 0; i < e.size; ++i) {
      const double init =
          e.name.find("running_var") != std::string::npos ? 1.0 : 0.0;
      if (e.data[i] != init) {
        ++moved;
        break;
      }
    }
  }
  EXPECT_GT(buffers, 0u);
  EXPECT_GT(moved, 0u);
}

TEST(ModelStateTest, LegacyPositionalBlobStillLoads) {
  core::DeepOdModel& trained = TrainedModel();
  // Emulate a pre-state-dict checkpoint: positional parameters plus a
  // trailing time-scale scalar.
  auto params = trained.Parameters();
  params.push_back(nn::Tensor::Scalar(trained.time_scale()));
  const std::string path = TempPath("artifact_test_legacy.bin");
  nn::SaveParameters(path, params);

  core::DeepOdModel loaded(TinyConfig(), TinyDataset());
  loaded.Load(path);
  EXPECT_EQ(loaded.time_scale(), trained.time_scale());
  const auto loaded_params = loaded.Parameters();
  const auto trained_params = trained.Parameters();
  ASSERT_EQ(loaded_params.size(), trained_params.size());
  for (size_t i = 0; i < loaded_params.size(); ++i) {
    EXPECT_EQ(loaded_params[i].data(), trained_params[i].data());
  }
  std::remove(path.c_str());
}

TEST(ModelStateTest, LoadWithWrongConfigNamesFirstMismatchingTensor) {
  const std::string path = TempPath("artifact_test_scale16.bin");
  TrainedModel().Save(path);

  core::DeepOdConfig smaller = core::DeepOdConfig().Scaled(32);
  smaller.epochs = 1;
  smaller.batch_size = 8;
  core::DeepOdModel narrow(smaller, TinyDataset());
  try {
    narrow.Load(path);
    FAIL() << "expected SerializeError";
  } catch (const nn::SerializeError& e) {
    EXPECT_EQ(e.status().kind, nn::LoadErrorKind::kShapeMismatch);
    EXPECT_FALSE(e.status().tensor.empty());
    EXPECT_NE(e.status().message.find(e.status().tensor), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(ModelStateTest, TruncatedFileRejectedWithoutTouchingModel) {
  const std::string path = TempPath("artifact_test_trunc.bin");
  TrainedModel().Save(path);
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(nn::ReadFileBytes(path, &bytes).ok());
  bytes.resize(bytes.size() / 2);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }

  core::DeepOdModel loaded(TinyConfig(), TinyDataset());
  loaded.SetTraining(false);
  const auto ods = TestOds(1);
  const double before = loaded.Predict(ods[0]);
  try {
    loaded.Load(path);
    FAIL() << "expected SerializeError";
  } catch (const nn::SerializeError& e) {
    EXPECT_EQ(e.status().kind, nn::LoadErrorKind::kTruncated);
  }
  const double after = loaded.Predict(ods[0]);
  EXPECT_EQ(std::memcmp(&before, &after, sizeof(double)), 0);
  std::remove(path.c_str());
}

TEST(ArtifactTest, RoundTripBitIdenticalAcrossKernelModesAndThreads) {
  core::DeepOdModel& trained = TrainedModel();
  const auto& dataset = TinyDataset();

  // Freeze the live speed process over the test window so the serving-side
  // external features reproduce exactly.
  double begin = dataset.test.front().od.departure_time, end = begin;
  for (const auto& trip : dataset.test) {
    begin = std::min(begin, trip.od.departure_time);
    end = std::max(end, trip.od.departure_time);
  }
  const sim::SnapshotSpeedField frozen =
      sim::SnapshotSpeedField::Capture(*dataset.speed_matrices, begin, end);

  const std::string path = TempPath("artifact_test_full.artifact");
  io::WriteModelArtifact(path, trained, &frozen);
  io::ServingModel bundle = io::LoadModelArtifact(path, dataset.network);
  ASSERT_NE(bundle.model, nullptr);
  ASSERT_NE(bundle.speed, nullptr);
  EXPECT_EQ(bundle.speed->snapshots().size(), frozen.snapshots().size());
  EXPECT_EQ(bundle.config.ds, trained.config().ds);

  // Point the training-side model at the same frozen field so both sides
  // see identical inputs, then demand bit-identity on every tier the
  // kernels ship and on both serial and pooled batch paths.
  trained.SetSpeedProvider(&frozen);
  const auto ods = TestOds(8);
  util::ThreadPool pool(4);
  for (const nn::KernelMode mode :
       {nn::KernelMode::kLegacy, nn::KernelMode::kBlocked,
        nn::KernelMode::kVector}) {
    nn::KernelModeScope scope(mode);
    for (const auto& od : ods) {
      const double want = trained.Predict(od);
      const double got = bundle.model->Predict(od);
      EXPECT_EQ(std::memcmp(&want, &got, sizeof(double)), 0)
          << "mode " << static_cast<int>(mode);
    }
    const std::vector<double> serial_want = trained.PredictBatch(ods);
    const std::vector<double> serial_got = bundle.model->PredictBatch(ods);
    const std::vector<double> pooled_want = trained.PredictBatch(ods, &pool);
    const std::vector<double> pooled_got = bundle.model->PredictBatch(ods, &pool);
    ASSERT_EQ(serial_want.size(), ods.size());
    EXPECT_EQ(std::memcmp(serial_want.data(), serial_got.data(),
                          ods.size() * sizeof(double)), 0);
    EXPECT_EQ(std::memcmp(pooled_want.data(), pooled_got.data(),
                          ods.size() * sizeof(double)), 0);
  }
  trained.SetSpeedProvider(dataset.speed_matrices.get());
  trained.ClearOcodeMemo();
  std::remove(path.c_str());
}

TEST(ArtifactTest, EtaServiceServesFromArtifactBitExactly) {
  core::DeepOdModel& trained = TrainedModel();
  const auto& dataset = TinyDataset();
  double begin = dataset.test.front().od.departure_time, end = begin;
  for (const auto& trip : dataset.test) {
    begin = std::min(begin, trip.od.departure_time);
    end = std::max(end, trip.od.departure_time);
  }
  const sim::SnapshotSpeedField frozen =
      sim::SnapshotSpeedField::Capture(*dataset.speed_matrices, begin, end);
  const std::string path = TempPath("artifact_test_serve.artifact");
  io::WriteModelArtifact(path, trained, &frozen);

  auto service = serve::EtaService::FromArtifact(path, dataset.network,
                                                 serve::EtaServiceOptions{});
  trained.SetSpeedProvider(&frozen);
  for (const auto& od : TestOds(6)) {
    const double want = trained.Predict(od);
    const double miss = service->Estimate(od);
    const double hit = service->Estimate(od);
    EXPECT_EQ(std::memcmp(&want, &miss, sizeof(double)), 0);
    EXPECT_EQ(std::memcmp(&want, &hit, sizeof(double)), 0);
  }
  trained.SetSpeedProvider(dataset.speed_matrices.get());
  trained.ClearOcodeMemo();
  std::remove(path.c_str());
}

TEST(ArtifactTest, MissingArtifactThrowsTypedError) {
  try {
    io::LoadModelArtifact(TempPath("artifact_test_nope.artifact"),
                          TinyDataset().network);
    FAIL() << "expected SerializeError";
  } catch (const nn::SerializeError& e) {
    EXPECT_EQ(e.status().kind, nn::LoadErrorKind::kIoError);
  }
}

TEST(CheckpointTest, ResumeMatchesUninterruptedRunBitExactly) {
  core::DeepOdConfig config = TinyConfig();
  config.epochs = 2;

  // Uninterrupted two-epoch run.
  core::DeepOdModel straight(config, TinyDataset());
  core::DeepOdTrainer straight_trainer(straight, TinyDataset());
  const double straight_mae = straight_trainer.Train();

  // Same run split in two processes' worth of work: one epoch, checkpoint,
  // then a *fresh* model+trainer resumes and finishes.
  const std::string path = TempPath("artifact_test_resume.ckpt");
  {
    core::DeepOdModel half(config, TinyDataset());
    core::DeepOdTrainer half_trainer(half, TinyDataset());
    half_trainer.TrainPrefix(1);
    EXPECT_EQ(half_trainer.completed_epochs(), 1);
    half_trainer.SaveCheckpoint(path);
  }
  core::DeepOdModel resumed(config, TinyDataset());
  core::DeepOdTrainer resumed_trainer(resumed, TinyDataset());
  resumed_trainer.LoadCheckpoint(path);
  EXPECT_EQ(resumed_trainer.completed_epochs(), 1);
  const double resumed_mae = resumed_trainer.Train();

  EXPECT_EQ(std::memcmp(&straight_mae, &resumed_mae, sizeof(double)), 0);
  EXPECT_EQ(resumed_trainer.steps_taken(), straight_trainer.steps_taken());
  EXPECT_EQ(resumed_trainer.completed_epochs(),
            straight_trainer.completed_epochs());
  EXPECT_EQ(resumed_trainer.best_validation_mae(),
            straight_trainer.best_validation_mae());
  {
    const nn::StateDict a = straight.State();
    const nn::StateDict b = resumed.State();
    ExpectStateBitEqual(a, b);
  }
  for (const auto& od : TestOds(4)) {
    const double want = straight.Predict(od);
    const double got = resumed.Predict(od);
    EXPECT_EQ(std::memcmp(&want, &got, sizeof(double)), 0);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace deepod
