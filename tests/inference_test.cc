// Serving-path contracts (DESIGN.md "Serving path"):
//  - inference mode (nn::InferenceGuard) changes no forward value: Predict,
//    PredictBatch and PredictForRoute are bit-identical to the training-mode
//    forward in every kernel tier, and PredictBatch equals a per-query
//    Predict loop regardless of batching or thread fan-out;
//  - inference-mode op results are graph-free leaves;
//  - AffineRows (the batched-MLP building block) matches per-row Affine
//    bit-for-bit and passes gradient checks;
//  - the sharded LRU cache evicts in LRU order, keys exactly, and keeps
//    consistent hit/miss counts under concurrency;
//  - EtaService serves Predict's numbers through cache, Estimate and the
//    micro-batched TrySubmit path.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <future>
#include <vector>

#include "core/deepod_model.h"
#include "nn/gradcheck.h"
#include "nn/ops.h"
#include "nn/tensor.h"
#include "road/routing.h"
#include "serve/eta_service.h"
#include "sim/dataset.h"
#include "util/lru_cache.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace deepod {
namespace {

const sim::Dataset& TinyDataset() {
  static const sim::Dataset* dataset = [] {
    sim::DatasetConfig config;
    config.city = road::XianSimConfig();
    config.city.rows = 6;
    config.city.cols = 6;
    config.trips_per_day = 12;
    config.num_days = 15;
    config.seed = 23;
    return new sim::Dataset(sim::BuildDataset(config));
  }();
  return *dataset;
}

core::DeepOdConfig TinyConfig() {
  core::DeepOdConfig config = core::DeepOdConfig().Scaled(16);
  config.epochs = 1;
  config.batch_size = 8;
  return config;
}

// The training-mode forward: EncodeOd + EstimateFromCode outside any
// InferenceGuard builds the full autograd graph — exactly what Predict did
// before the inference mode existed.
double TrainingModePredict(core::DeepOdModel& model, const traj::OdInput& od) {
  return model.EstimateFromCode(model.EncodeOd(od)).item() *
         model.time_scale();
}

// --- Inference mode: values are bit-identical --------------------------------

TEST(InferenceModeTest, PredictMatchesTrainingForwardBitForBit) {
  core::DeepOdModel model(TinyConfig(), TinyDataset());
  model.SetTraining(false);
  for (const nn::KernelMode mode :
       {nn::KernelMode::kLegacy, nn::KernelMode::kBlocked,
        nn::KernelMode::kVector}) {
    nn::KernelModeScope scope(mode);
    for (size_t i = 0; i < std::min<size_t>(10, TinyDataset().test.size());
         ++i) {
      const auto& od = TinyDataset().test[i].od;
      EXPECT_EQ(model.Predict(od), TrainingModePredict(model, od));
    }
  }
}

TEST(InferenceModeTest, PredictBatchEqualsPerQueryLoop) {
  core::DeepOdModel model(TinyConfig(), TinyDataset());
  model.SetTraining(false);
  std::vector<traj::OdInput> ods;
  for (size_t i = 0; i < std::min<size_t>(17, TinyDataset().test.size()); ++i) {
    ods.push_back(TinyDataset().test[i].od);
  }
  util::ThreadPool pool(4);
  for (const nn::KernelMode mode :
       {nn::KernelMode::kLegacy, nn::KernelMode::kBlocked,
        nn::KernelMode::kVector}) {
    nn::KernelModeScope scope(mode);
    std::vector<double> loop;
    for (const auto& od : ods) loop.push_back(model.Predict(od));
    // Serial batch, odd split sizes, and the thread fan-out must all
    // reproduce the per-query numbers exactly.
    EXPECT_EQ(model.PredictBatch(ods), loop);
    const auto head = model.PredictBatch({ods.data(), 5});
    EXPECT_TRUE(std::equal(head.begin(), head.end(), loop.begin()));
    EXPECT_EQ(model.PredictBatch(ods, &pool), loop);
  }
}

TEST(InferenceModeTest, PredictForRouteMatchesTrainingForward) {
  core::DeepOdModel model(TinyConfig(), TinyDataset());
  model.SetTraining(false);
  const auto& net = TinyDataset().network;
  size_t checked = 0;
  for (const auto& trip : TinyDataset().test) {
    std::vector<size_t> route = {trip.od.origin_segment};
    const auto connecting = road::ShortestRoute(
        net, net.segment(trip.od.origin_segment).to,
        net.segment(trip.od.dest_segment).from, road::FreeFlowCost);
    for (size_t sid : connecting.segment_ids) route.push_back(sid);
    route.push_back(trip.od.dest_segment);
    route.erase(std::unique(route.begin(), route.end()), route.end());
    if (!road::IsConnectedPath(net, route)) continue;
    const auto pseudo = model.BuildRoutePseudoTrajectory(trip.od, route);
    const double reference =
        model.EstimateFromCode(model.EncodeTrajectory(pseudo)).item() *
        model.time_scale();
    EXPECT_EQ(model.PredictForRoute(trip.od, route), reference);
    if (++checked == 5) break;
  }
  EXPECT_GT(checked, 0u);
}

TEST(InferenceModeTest, OpsUnderGuardProduceGraphFreeLeaves) {
  util::Rng rng(7);
  nn::Tensor w = nn::Tensor::Randn({4, 3}, rng);
  nn::Tensor x = nn::Tensor::Randn({3}, rng);
  nn::Tensor b = nn::Tensor::Randn({4}, rng);
  w.set_requires_grad(true);
  b.set_requires_grad(true);
  const nn::Tensor with_graph = nn::Affine(w, x, b);
  EXPECT_TRUE(static_cast<bool>(with_graph.impl()->backward_fn));
  EXPECT_FALSE(with_graph.impl()->parents.empty());
  {
    nn::InferenceGuard guard;
    EXPECT_FALSE(nn::GradEnabled());
    const nn::Tensor leaf = nn::Relu(nn::Affine(w, x, b));
    EXPECT_FALSE(static_cast<bool>(leaf.impl()->backward_fn));
    EXPECT_TRUE(leaf.impl()->parents.empty());
    EXPECT_FALSE(leaf.requires_grad());
    // Values are unchanged by the mode.
    const nn::Tensor again = nn::Affine(w, x, b);
    for (size_t i = 0; i < again.size(); ++i) {
      EXPECT_EQ(again.at(i), with_graph.at(i));
    }
    // Guards nest and restore.
    { nn::InferenceGuard inner; }
    EXPECT_FALSE(nn::GradEnabled());
  }
  EXPECT_TRUE(nn::GradEnabled());
}

// --- AffineRows: the batched-MLP building block ------------------------------

TEST(AffineRowsTest, MatchesPerRowAffineInEveryKernelMode) {
  util::Rng rng(31);
  const nn::Tensor x = nn::Tensor::Randn({5, 7}, rng);
  const nn::Tensor w = nn::Tensor::Randn({3, 7}, rng);
  const nn::Tensor b = nn::Tensor::Randn({3}, rng);
  for (const nn::KernelMode mode :
       {nn::KernelMode::kLegacy, nn::KernelMode::kBlocked,
        nn::KernelMode::kVector}) {
    nn::KernelModeScope scope(mode);
    const nn::Tensor batched = nn::AffineRows(x, w, b);
    for (size_t i = 0; i < 5; ++i) {
      const nn::Tensor row = nn::Affine(w, nn::Row(x, i), b);
      for (size_t j = 0; j < 3; ++j) {
        EXPECT_EQ(batched.at(i, j), row.at(j));
      }
    }
  }
}

TEST(AffineRowsTest, PassesGradCheck) {
  util::Rng rng(32);
  nn::Tensor x = nn::Tensor::Randn({4, 5}, rng, 0.5);
  nn::Tensor w = nn::Tensor::Randn({3, 5}, rng, 0.5);
  nn::Tensor b = nn::Tensor::Randn({3}, rng, 0.5);
  for (auto* t : {&x, &w, &b}) t->set_requires_grad(true);
  auto loss = [&] { return nn::Sum(nn::Square(nn::AffineRows(x, w, b))); };
  const auto r = nn::CheckGradients(loss, {x, w, b});
  EXPECT_TRUE(r.ok) << "AffineRows max_abs_err=" << r.max_abs_error;
}

// --- Sharded LRU cache -------------------------------------------------------

TEST(LruCacheTest, EvictsLeastRecentlyUsedFirst) {
  // One shard makes global order == shard order, so eviction is exact LRU.
  util::ShardedLruCache<int, int> cache(3, /*num_shards=*/1);
  cache.Put(1, 10);
  cache.Put(2, 20);
  cache.Put(3, 30);
  EXPECT_EQ(cache.Get(1).value(), 10);  // promote 1; LRU order now 2,3,1
  cache.Put(4, 40);                     // evicts 2
  EXPECT_FALSE(cache.Get(2).has_value());
  EXPECT_EQ(cache.Get(1).value(), 10);
  EXPECT_EQ(cache.Get(3).value(), 30);
  EXPECT_EQ(cache.Get(4).value(), 40);
  EXPECT_EQ(cache.size(), 3u);
}

TEST(LruCacheTest, PutRefreshesExistingKey) {
  util::ShardedLruCache<int, int> cache(2, 1);
  cache.Put(1, 10);
  cache.Put(2, 20);
  cache.Put(1, 11);  // refresh, not insert: 2 stays resident
  cache.Put(3, 30);  // evicts 2 (least recent), not 1
  EXPECT_EQ(cache.Get(1).value(), 11);
  EXPECT_FALSE(cache.Get(2).has_value());
  EXPECT_EQ(cache.Get(3).value(), 30);
}

TEST(LruCacheTest, CountsAreConsistentUnderConcurrency) {
  util::ShardedLruCache<int, int> cache(64, 8);
  util::ThreadPool pool(4);
  constexpr size_t kOpsPerTask = 2000;
  constexpr size_t kTasks = 4;
  pool.ParallelFor(kTasks, [&](size_t w) {
    util::Rng rng(100 + w);
    for (size_t i = 0; i < kOpsPerTask; ++i) {
      const int key = static_cast<int>(rng.UniformInt(uint64_t{128}));
      if (auto hit = cache.Get(key)) {
        EXPECT_EQ(*hit, key * 7);  // values never mix between keys
      } else {
        cache.Put(key, key * 7);
      }
    }
  });
  EXPECT_EQ(cache.hits() + cache.misses(), kTasks * kOpsPerTask);
  EXPECT_GT(cache.hits(), 0u);
  EXPECT_GT(cache.misses(), 0u);
  EXPECT_LE(cache.size(), 64u + 8u);  // per-shard rounding slack
}

// --- EtaService --------------------------------------------------------------

TEST(EtaServiceTest, KeyDistinguishesEveryKeyedField) {
  core::DeepOdModel model(TinyConfig(), TinyDataset());
  serve::EtaServiceOptions options;
  serve::EtaService service(model, options);
  traj::OdInput od = TinyDataset().test[0].od;
  const auto base = service.MakeKey(od);
  auto differs = [&](const traj::OdInput& other) {
    const auto k = service.MakeKey(other);
    return !(k == base);
  };
  traj::OdInput v = od;
  v.origin_segment += 1;
  EXPECT_TRUE(differs(v));
  v = od;
  v.dest_segment += 1;
  EXPECT_TRUE(differs(v));
  v = od;
  v.departure_time += 2.0 * model.config().slot_seconds;  // different slot
  EXPECT_TRUE(differs(v));
  v = od;
  v.weather_type += 1;
  EXPECT_TRUE(differs(v));
  v = od;
  v.origin_ratio = od.origin_ratio < 0.5 ? 0.9 : 0.1;  // different bucket
  EXPECT_TRUE(differs(v));
  // Same slot + same ratio bucket shares the key.
  v = od;
  v.departure_time += 1e-3;
  EXPECT_FALSE(differs(v));
}

TEST(EtaServiceTest, EstimateServesPredictValuesAndCaches) {
  core::DeepOdModel model(TinyConfig(), TinyDataset());
  model.SetTraining(false);
  serve::EtaServiceOptions options;
  serve::EtaService service(model, options);
  const auto& od = TinyDataset().test[0].od;
  const double expected = model.Predict(od);
  EXPECT_EQ(service.Estimate(od), expected);   // miss -> model
  EXPECT_EQ(service.Estimate(od), expected);   // hit -> cache
  const auto stats = service.StatsSnapshot();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.requests, 2u);
}

TEST(EtaServiceTest, TrySubmitMicroBatchesAndMatchesEstimate) {
  core::DeepOdModel model(TinyConfig(), TinyDataset());
  model.SetTraining(false);
  serve::EtaServiceOptions options;
  options.max_batch = 4;
  options.queue_capacity = 16;
  serve::EtaService service(model, options);
  std::vector<traj::OdInput> ods;
  for (size_t i = 0; i < std::min<size_t>(12, TinyDataset().test.size()); ++i) {
    ods.push_back(TinyDataset().test[i].od);
  }
  std::vector<double> expected;
  for (const auto& od : ods) expected.push_back(model.Predict(od));
  std::vector<std::future<double>> futures;
  for (const auto& od : ods) {
    // TrySubmit is the primary enqueue API; capacity 16 > 12 queries, so a
    // bounded wait always finds room here.
    auto future = service.TrySubmit(od, std::chrono::seconds(5));
    ASSERT_TRUE(future.has_value());
    futures.push_back(std::move(*future));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    EXPECT_EQ(futures[i].get(), expected[i]);
  }
  const auto stats = service.StatsSnapshot();
  EXPECT_EQ(stats.requests, ods.size());
  EXPECT_GE(stats.batches, 1u);
  EXPECT_GT(stats.avg_batch_size, 0.0);
}

TEST(EtaServiceTest, ExportsRegistryBackedStats) {
  core::DeepOdModel model(TinyConfig(), TinyDataset());
  model.SetTraining(false);
  serve::EtaServiceOptions options;
  serve::EtaService service(model, options);
  const auto& od = TinyDataset().test[0].od;
  service.Estimate(od);
  service.Estimate(od);

  const std::string json = service.ExportJson();
  EXPECT_NE(json.find("\"hardware_concurrency\""), std::string::npos);
  EXPECT_NE(json.find("\"serve/requests\""), std::string::npos);
  EXPECT_NE(json.find("\"serve/cache_hits\""), std::string::npos);
  EXPECT_NE(json.find("\"serve/latency\""), std::string::npos);
  EXPECT_NE(json.find("\"serve/queue_wait\""), std::string::npos);

  const std::string prom = service.ExportPrometheus();
  EXPECT_NE(prom.find("deepod_serve_requests 2"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE deepod_serve_latency summary"),
            std::string::npos);

  // Stats are per-instance: a fresh service starts from zero even though
  // another service already answered queries in this process.
  serve::EtaService fresh(model, options);
  EXPECT_EQ(fresh.StatsSnapshot().requests, 0u);
  const auto stats = service.StatsSnapshot();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_GT(stats.p50_ms, 0.0);
}

}  // namespace
}  // namespace deepod
