// Property-style sweeps over the nn substrate: randomly composed op DAGs
// must pass gradient checking, optimiser invariants must hold across
// shapes, and modules must be deterministic functions of their seeds.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/conv.h"
#include "nn/gradcheck.h"
#include "nn/lstm.h"
#include "nn/module.h"
#include "nn/ops.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"
#include "util/rng.h"

namespace deepod::nn {
namespace {

// --- Random-DAG gradient checks (parameterised by seed) --------------------

class RandomDagGradTest : public ::testing::TestWithParam<uint64_t> {};

// Builds a random smooth computation over a pool of parameter tensors and
// verifies autograd against finite differences. Smooth ops only (no
// relu/abs kinks) so central differences are reliable at every point.
TEST_P(RandomDagGradTest, MatchesFiniteDifference) {
  util::Rng rng(GetParam());
  std::vector<Tensor> params;
  for (int i = 0; i < 3; ++i) {
    Tensor t = Tensor::Randn({4}, rng, 0.7);
    t.set_requires_grad(true);
    params.push_back(t);
  }
  auto loss_fn = [&params, seed = GetParam()] {
    util::Rng op_rng(seed ^ 0xabcdef);
    std::vector<Tensor> pool = params;
    // Compose 8 random binary/unary smooth ops.
    for (int step = 0; step < 8; ++step) {
      const size_t a = op_rng.UniformInt(static_cast<uint64_t>(pool.size()));
      const size_t b = op_rng.UniformInt(static_cast<uint64_t>(pool.size()));
      Tensor result;
      switch (op_rng.UniformInt(uint64_t{5})) {
        case 0:
          result = Add(pool[a], pool[b]);
          break;
        case 1:
          result = Mul(pool[a], pool[b]);
          break;
        case 2:
          result = Tanh(pool[a]);
          break;
        case 3:
          result = Sigmoid(pool[a]);
          break;
        default:
          result = Scale(pool[a], 0.5);
          break;
      }
      pool.push_back(result);
    }
    Tensor total = Sum(pool.back());
    for (size_t i = 0; i + 1 < pool.size(); ++i) {
      total = Add(total, Mean(pool[i]));
    }
    return total;
  };
  const auto result = CheckGradients(loss_fn, params, 1e-5, 1e-6, 1e-4);
  EXPECT_TRUE(result.ok) << "seed " << GetParam()
                         << " max_abs_err=" << result.max_abs_error;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDagGradTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

// --- Conv2d shape sweep ------------------------------------------------------

struct ConvCase {
  size_t cin, h, w, cout, kh, kw, pad_h, pad_w;
};

class ConvShapeTest : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvShapeTest, OutputShapeAndGradient) {
  const auto& c = GetParam();
  util::Rng rng(31);
  Tensor in = Tensor::Randn({c.cin, c.h, c.w}, rng, 0.5);
  in.set_requires_grad(true);
  Tensor k = Tensor::Randn({c.cout, c.cin, c.kh, c.kw}, rng, 0.5);
  k.set_requires_grad(true);
  Tensor out = Conv2d(in, k, c.pad_h, c.pad_w);
  EXPECT_EQ(out.dim(0), c.cout);
  EXPECT_EQ(out.dim(1), c.h + 2 * c.pad_h - c.kh + 1);
  EXPECT_EQ(out.dim(2), c.w + 2 * c.pad_w - c.kw + 1);
  auto loss_fn = [&] { return Sum(Square(Conv2d(in, k, c.pad_h, c.pad_w))); };
  EXPECT_TRUE(CheckGradients(loss_fn, {in, k}).ok);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvShapeTest,
    ::testing::Values(ConvCase{1, 1, 4, 2, 1, 1, 0, 0},
                      ConvCase{1, 5, 3, 4, 3, 1, 1, 0},
                      ConvCase{2, 4, 4, 3, 3, 3, 1, 1},
                      ConvCase{3, 2, 6, 1, 1, 3, 0, 1},
                      ConvCase{4, 3, 3, 2, 3, 3, 2, 2}));

// --- LSTM properties ---------------------------------------------------------

TEST(LstmPropertyTest, SequenceLengthIndependentParamCount) {
  util::Rng rng(41);
  Lstm lstm(5, 7, rng);
  const size_t params = lstm.NumParameters();
  // 4 gates x (weights [7 x 12] + bias [7]).
  EXPECT_EQ(params, 4u * (7u * 12u + 7u));
}

TEST(LstmPropertyTest, PrefixConsistency) {
  // h_k from ForwardAll over a long sequence equals Forward over its prefix.
  util::Rng rng(42);
  Lstm lstm(3, 4, rng);
  std::vector<Tensor> seq;
  for (int i = 0; i < 6; ++i) seq.push_back(Tensor::Randn({3}, rng, 1.0));
  const auto all = lstm.ForwardAll(seq);
  for (size_t k : {size_t{1}, size_t{3}, size_t{6}}) {
    std::vector<Tensor> prefix(seq.begin(), seq.begin() + k);
    const auto h = lstm.Forward(prefix);
    for (size_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(h.at(j), all[k - 1].at(j), 1e-12);
    }
  }
}

// --- Optimiser invariants ----------------------------------------------------

TEST(OptimizerPropertyTest, AdamStepMagnitudeBounded) {
  // Adam's per-parameter step is bounded by ~lr regardless of gradient
  // scale (the property that makes the seconds-scale main loss workable).
  util::Rng rng(51);
  Tensor p = Tensor::Zeros({8});
  p.set_requires_grad(true);
  Adam adam({p}, 0.01);
  for (double scale : {1e-4, 1.0, 1e6}) {
    Tensor q = Tensor::Zeros({8});
    q.set_requires_grad(true);
    Adam opt({q}, 0.01);
    for (double& g : q.mutable_grad()) g = scale * rng.Normal();
    opt.Step();
    for (double v : q.data()) {
      EXPECT_LE(std::fabs(v), 0.011) << "scale " << scale;
    }
  }
}

TEST(OptimizerPropertyTest, ZeroGradZeroStepForSgd) {
  Tensor p = Tensor::FromData({3}, {1.0, 2.0, 3.0});
  p.set_requires_grad(true);
  Sgd sgd({p}, 0.5);
  sgd.ZeroGrad();
  sgd.Step();
  EXPECT_EQ(p.data(), (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(OptimizerPropertyTest, MomentumAcceleratesDescent) {
  auto run = [](double momentum) {
    Tensor x = Tensor::Scalar(10.0);
    x.set_requires_grad(true);
    Sgd sgd({x}, 0.01, momentum);
    for (int i = 0; i < 50; ++i) {
      sgd.ZeroGrad();
      Tensor loss = Square(x);
      loss.Backward();
      sgd.Step();
    }
    return std::fabs(x.item());
  };
  EXPECT_LT(run(0.9), run(0.0));
}

// --- Determinism -------------------------------------------------------------

TEST(DeterminismTest, ModulesIdenticalAcrossConstructionsWithSameSeed) {
  auto build = [] {
    util::Rng rng(77);
    Mlp2 mlp(4, 6, 2, rng);
    return SerializeParameters(mlp.Parameters());
  };
  EXPECT_EQ(build(), build());
}

TEST(DeterminismTest, TrainingStepReproducible) {
  auto run = [] {
    util::Rng rng(78);
    Linear layer(3, 1, rng);
    Adam adam(layer.Parameters(), 0.01);
    util::Rng data_rng(79);
    for (int i = 0; i < 20; ++i) {
      adam.ZeroGrad();
      Tensor x = Tensor::Randn({3}, data_rng, 1.0);
      Tensor loss = Square(Sum(layer.Forward(x)));
      loss.Backward();
      adam.Step();
    }
    return SerializeParameters(layer.Parameters());
  };
  EXPECT_EQ(run(), run());
}

// --- BatchNorm across channel counts ----------------------------------------

class BatchNormChannelTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BatchNormChannelTest, EachChannelNormalisedIndependently) {
  const size_t channels = GetParam();
  util::Rng rng(91);
  BatchNorm2d bn(channels);
  Tensor in = Tensor::Randn({channels, 3, 4}, rng, 2.0);
  // Offset each channel by a distinct large constant.
  for (size_t c = 0; c < channels; ++c) {
    for (size_t i = 0; i < 12; ++i) {
      in.data()[c * 12 + i] += 10.0 * static_cast<double>(c + 1);
    }
  }
  const Tensor out = bn.Forward(in);
  for (size_t c = 0; c < channels; ++c) {
    double mean = 0.0;
    for (size_t i = 0; i < 12; ++i) mean += out.data()[c * 12 + i];
    EXPECT_NEAR(mean / 12.0, 0.0, 1e-9) << "channel " << c;
  }
}

INSTANTIATE_TEST_SUITE_P(Channels, BatchNormChannelTest,
                         ::testing::Values(1u, 2u, 4u, 8u));

}  // namespace
}  // namespace deepod::nn
