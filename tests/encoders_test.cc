// Direct tests of the three encoding modules of §4.3-4.5: the Time
// Interval Encoder, the Trajectory Encoder and the External Features
// Encoder, outside the full model.
#include <gtest/gtest.h>

#include <cmath>

#include "core/deepod_config.h"
#include "core/encoders.h"
#include "nn/gradcheck.h"
#include "nn/ops.h"
#include "util/rng.h"

namespace deepod::core {
namespace {

DeepOdConfig SmallConfig() {
  DeepOdConfig config = DeepOdConfig().Scaled(16);
  return config;
}

TEST(TimeIntervalEncoderTest, OutputShapeAcrossIntervalWidths) {
  const DeepOdConfig config = SmallConfig();
  const temporal::TimeSlotter slotter(0.0, config.slot_seconds);
  util::Rng rng(1);
  nn::Embedding slots(static_cast<size_t>(slotter.slots_per_week()),
                      config.dt, rng);
  TimeIntervalEncoder encoder(config, slotter, slots, rng);
  // Δd = 1 (within one slot), 2 (crossing a boundary), many slots.
  for (auto [t1, t2] : std::vector<std::pair<double, double>>{
           {10.0, 20.0}, {290.0, 310.0}, {0.0, 1800.0}}) {
    const nn::Tensor tcode = encoder.Forward(t1, t2);
    EXPECT_EQ(tcode.shape(), (std::vector<size_t>{config.dm2}));
    for (double v : tcode.data()) EXPECT_TRUE(std::isfinite(v));
  }
  EXPECT_THROW(encoder.Forward(100.0, 50.0), std::invalid_argument);
}

TEST(TimeIntervalEncoderTest, WeeklyWrapUsesSameNodes) {
  // An interval in week 0 and the same interval one week later hit the same
  // temporal-graph nodes and remainders -> identical tcode.
  const DeepOdConfig config = SmallConfig();
  const temporal::TimeSlotter slotter(0.0, config.slot_seconds);
  util::Rng rng(2);
  nn::Embedding slots(static_cast<size_t>(slotter.slots_per_week()),
                      config.dt, rng);
  TimeIntervalEncoder encoder(config, slotter, slots, rng);
  encoder.SetTraining(false);
  const double week = temporal::kSecondsPerWeek;
  const nn::Tensor a = encoder.Forward(1000.0, 1400.0);
  const nn::Tensor b = encoder.Forward(1000.0 + week, 1400.0 + week);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a.at(i), b.at(i), 1e-12);
  }
}

TEST(TimeIntervalEncoderTest, GradientsFlowToSlotTable) {
  const DeepOdConfig config = SmallConfig();
  const temporal::TimeSlotter slotter(0.0, config.slot_seconds);
  util::Rng rng(3);
  nn::Embedding slots(static_cast<size_t>(slotter.slots_per_week()),
                      config.dt, rng);
  TimeIntervalEncoder encoder(config, slotter, slots, rng);
  nn::Tensor loss = nn::Sum(nn::Square(encoder.Forward(100.0, 700.0)));
  loss.Backward();
  double mass = 0.0;
  for (double g : slots.table().grad()) mass += std::fabs(g);
  EXPECT_GT(mass, 0.0);
}

TEST(TrajectoryEncoderTest, ShapeAndSequenceSensitivity) {
  const DeepOdConfig config = SmallConfig();
  const temporal::TimeSlotter slotter(0.0, config.slot_seconds);
  util::Rng rng(4);
  nn::Embedding roads(20, config.ds, rng);
  nn::Embedding slots(static_cast<size_t>(slotter.slots_per_week()),
                      config.dt, rng);
  TrajectoryEncoder encoder(config, slotter, roads, slots, rng);
  encoder.SetTraining(false);

  traj::MatchedTrajectory a;
  a.path = {{3, 0.0, 30.0}, {7, 30.0, 80.0}};
  a.origin_ratio = 0.2;
  a.dest_ratio = 0.9;
  const nn::Tensor stcode_a = encoder.Forward(a);
  EXPECT_EQ(stcode_a.shape(), (std::vector<size_t>{config.dm4}));

  // Different segment in the path -> different representation.
  traj::MatchedTrajectory b = a;
  b.path[1].segment_id = 9;
  const nn::Tensor stcode_b = encoder.Forward(b);
  double diff = 0.0;
  for (size_t i = 0; i < stcode_a.size(); ++i) {
    diff += std::fabs(stcode_a.at(i) - stcode_b.at(i));
  }
  EXPECT_GT(diff, 1e-9);

  // Different position ratios -> different representation.
  traj::MatchedTrajectory c = a;
  c.dest_ratio = 0.1;
  const nn::Tensor stcode_c = encoder.Forward(c);
  diff = 0.0;
  for (size_t i = 0; i < stcode_a.size(); ++i) {
    diff += std::fabs(stcode_a.at(i) - stcode_c.at(i));
  }
  EXPECT_GT(diff, 1e-9);

  EXPECT_THROW(encoder.Forward(traj::MatchedTrajectory{}),
               std::invalid_argument);
}

TEST(TrajectoryEncoderTest, LongerTrajectoriesSupported) {
  const DeepOdConfig config = SmallConfig();
  const temporal::TimeSlotter slotter(0.0, config.slot_seconds);
  util::Rng rng(5);
  nn::Embedding roads(60, config.ds, rng);
  nn::Embedding slots(static_cast<size_t>(slotter.slots_per_week()),
                      config.dt, rng);
  TrajectoryEncoder encoder(config, slotter, roads, slots, rng);
  traj::MatchedTrajectory t;
  double clock = 0.0;
  for (size_t i = 0; i < 50; ++i) {
    t.path.push_back({i, clock, clock + 20.0});
    clock += 20.0;
  }
  const nn::Tensor stcode = encoder.Forward(t);
  for (double v : stcode.data()) EXPECT_TRUE(std::isfinite(v));
}

TEST(ExternalFeaturesEncoderTest, ShapeAndWeatherSensitivity) {
  const DeepOdConfig config = SmallConfig();
  util::Rng rng(6);
  ExternalFeaturesEncoder encoder(config, rng);
  encoder.SetTraining(false);
  std::vector<double> matrix(10 * 12, 0.5);
  const nn::Tensor a = encoder.Forward(0, matrix, 10, 12);
  EXPECT_EQ(a.shape(), (std::vector<size_t>{config.dm6}));
  const nn::Tensor b = encoder.Forward(13, matrix, 10, 12);
  double diff = 0.0;
  for (size_t i = 0; i < a.size(); ++i) diff += std::fabs(a.at(i) - b.at(i));
  EXPECT_GT(diff, 1e-9);  // weather one-hot changes the encoding
}

TEST(ExternalFeaturesEncoderTest, CongestionLevelSensitivity) {
  // Scaling the whole speed matrix down (a city-wide slowdown) must change
  // the encoding: the mean/std bypass guarantees the level is visible even
  // though the instance-norm CNN would erase it.
  const DeepOdConfig config = SmallConfig();
  util::Rng rng(7);
  ExternalFeaturesEncoder encoder(config, rng);
  encoder.SetTraining(false);
  std::vector<double> fast(8 * 8), slow(8 * 8);
  util::Rng noise(8);
  for (size_t i = 0; i < fast.size(); ++i) {
    fast[i] = 0.8 + 0.1 * noise.Uniform();
    slow[i] = fast[i] * 0.5;
  }
  const nn::Tensor a = encoder.Forward(0, fast, 8, 8);
  const nn::Tensor b = encoder.Forward(0, slow, 8, 8);
  double diff = 0.0;
  for (size_t i = 0; i < a.size(); ++i) diff += std::fabs(a.at(i) - b.at(i));
  EXPECT_GT(diff, 1e-6);
}

TEST(ExternalFeaturesEncoderTest, InputValidation) {
  const DeepOdConfig config = SmallConfig();
  util::Rng rng(9);
  ExternalFeaturesEncoder encoder(config, rng);
  std::vector<double> matrix(4, 0.5);
  EXPECT_THROW(encoder.Forward(-1, matrix, 2, 2), std::out_of_range);
  EXPECT_THROW(encoder.Forward(16, matrix, 2, 2), std::out_of_range);
  EXPECT_THROW(encoder.Forward(0, matrix, 3, 2), std::invalid_argument);
}

}  // namespace
}  // namespace deepod::core
