// Columnar trip-store (io/trip_store.h) round-trip and typed-error tests,
// mirroring the serialize_test.cc framing suite: every corruption mode must
// be reported with the right LoadErrorKind before any record is handed out.
#include <bit>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "io/trip_store.h"
#include "road/road_network.h"
#include "traj/trajectory.h"

namespace deepod {
namespace {

using nn::LoadErrorKind;
using nn::LoadStatus;

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "trip_store_test_" + name;
}

void WriteBytes(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

// A small corpus exercising every representational corner: ordinary matched
// trips, an OD-only record (empty route — the test-split shape), unmatched
// kInvalidId segments, negative coordinates and denormal-ish ratios.
std::vector<traj::TripRecord> SampleTrips() {
  std::vector<traj::TripRecord> trips(4);

  trips[0].od.origin = {1.25, -3.5};
  trips[0].od.destination = {7.0, 2.125};
  trips[0].od.departure_time = 86400.0 + 0.1;
  trips[0].od.origin_segment = 3;
  trips[0].od.dest_segment = 9;
  trips[0].od.origin_ratio = 0.625;
  trips[0].od.dest_ratio = 0.1;
  trips[0].od.weather_type = 2;
  trips[0].travel_time = 612.75;
  trips[0].trajectory.origin_ratio = 0.625;
  trips[0].trajectory.dest_ratio = 0.1;
  trips[0].trajectory.path = {{3, 100.0, 160.5}, {5, 160.5, 300.0},
                              {9, 300.0, 712.75}};

  // OD-only: empty trajectory, as test records are stored.
  trips[1].od.origin = {-2.0, -2.0};
  trips[1].od.destination = {0.0, 0.5};
  trips[1].od.departure_time = 3601.5;
  trips[1].od.origin_segment = 1;
  trips[1].od.dest_segment = 2;
  trips[1].od.weather_type = 1;
  trips[1].travel_time = 89.0;

  // Unmatched OD endpoints must survive the u32 sentinel encoding.
  trips[2].od.departure_time = 7200.0;
  trips[2].od.origin_segment = road::kInvalidId;
  trips[2].od.dest_segment = road::kInvalidId;
  trips[2].travel_time = 1.0 / 3.0;
  trips[2].trajectory.path = {{road::kInvalidId, 0.0, 1.0}};

  trips[3].od.departure_time = 0.0;
  trips[3].od.origin_segment = 0;
  trips[3].od.dest_segment = 0;
  trips[3].od.origin_ratio = 1e-300;
  trips[3].od.dest_ratio = 1.0;
  trips[3].travel_time = 1e6;
  trips[3].trajectory.origin_ratio = 1e-300;
  trips[3].trajectory.dest_ratio = 1.0;
  trips[3].trajectory.path = {{0, -1.5, 2.5}};
  return trips;
}

// Bit-level double equality: round-trips must preserve the exact pattern,
// not just compare equal (0.0 vs -0.0, NaN payloads).
void ExpectBitEqual(double a, double b, const std::string& what) {
  EXPECT_EQ(std::bit_cast<uint64_t>(a), std::bit_cast<uint64_t>(b)) << what;
}

void ExpectTripsBitEqual(const traj::TripRecord& a, const traj::TripRecord& b,
                         size_t i) {
  const std::string at = "trip " + std::to_string(i);
  ExpectBitEqual(a.od.origin.x, b.od.origin.x, at);
  ExpectBitEqual(a.od.origin.y, b.od.origin.y, at);
  ExpectBitEqual(a.od.destination.x, b.od.destination.x, at);
  ExpectBitEqual(a.od.destination.y, b.od.destination.y, at);
  ExpectBitEqual(a.od.departure_time, b.od.departure_time, at);
  ExpectBitEqual(a.od.origin_ratio, b.od.origin_ratio, at);
  ExpectBitEqual(a.od.dest_ratio, b.od.dest_ratio, at);
  EXPECT_EQ(a.od.origin_segment, b.od.origin_segment) << at;
  EXPECT_EQ(a.od.dest_segment, b.od.dest_segment) << at;
  EXPECT_EQ(a.od.weather_type, b.od.weather_type) << at;
  ExpectBitEqual(a.travel_time, b.travel_time, at);
  ExpectBitEqual(a.trajectory.origin_ratio, b.trajectory.origin_ratio, at);
  ExpectBitEqual(a.trajectory.dest_ratio, b.trajectory.dest_ratio, at);
  ASSERT_EQ(a.trajectory.path.size(), b.trajectory.path.size()) << at;
  for (size_t k = 0; k < a.trajectory.path.size(); ++k) {
    EXPECT_EQ(a.trajectory.path[k].segment_id, b.trajectory.path[k].segment_id)
        << at;
    ExpectBitEqual(a.trajectory.path[k].enter, b.trajectory.path[k].enter, at);
    ExpectBitEqual(a.trajectory.path[k].exit, b.trajectory.path[k].exit, at);
  }
}

TEST(TripStoreTest, RoundTripIsBitExact) {
  const auto trips = SampleTrips();
  const std::string path = TempPath("roundtrip.trips");
  ASSERT_TRUE(io::WriteTripStore(path, trips).ok());

  const auto reader = io::TripStoreReader::OpenOrThrow(path);
  ASSERT_EQ(reader.size(), trips.size());
  EXPECT_EQ(reader.route_elements(), 5u);
  const auto loaded = reader.ReadAll();
  ASSERT_EQ(loaded.size(), trips.size());
  for (size_t i = 0; i < trips.size(); ++i) {
    ExpectTripsBitEqual(trips[i], loaded[i], i);
  }
}

TEST(TripStoreTest, SerializedSizeMatchesPrediction) {
  const auto trips = SampleTrips();
  const auto bytes = io::SerializeTripStore(trips);
  EXPECT_EQ(bytes.size(), io::TripStoreBytes(trips.size(), 5));
}

TEST(TripStoreTest, ZeroCopyColumnsMatchRecords) {
  const auto trips = SampleTrips();
  const std::string path = TempPath("columns.trips");
  ASSERT_TRUE(io::WriteTripStore(path, trips).ok());
  const auto reader = io::TripStoreReader::OpenOrThrow(path);

  const auto departs = reader.departs();
  const auto times = reader.travel_times();
  const auto begins = reader.route_begins();
  ASSERT_EQ(departs.size(), trips.size());
  ASSERT_EQ(begins.size(), trips.size() + 1);
  EXPECT_EQ(begins.front(), 0u);
  for (size_t i = 0; i < trips.size(); ++i) {
    ExpectBitEqual(departs[i], trips[i].od.departure_time, "depart");
    ExpectBitEqual(times[i], trips[i].travel_time, "travel_time");
    EXPECT_EQ(begins[i + 1] - begins[i], trips[i].trajectory.path.size());
  }
}

TEST(TripStoreTest, EmptyStoreRoundTrips) {
  const std::string path = TempPath("empty.trips");
  ASSERT_TRUE(io::WriteTripStore(path, {}).ok());
  const auto reader = io::TripStoreReader::OpenOrThrow(path);
  EXPECT_EQ(reader.size(), 0u);
  EXPECT_EQ(reader.route_elements(), 0u);
  EXPECT_TRUE(reader.ReadAll().empty());
}

TEST(TripStoreTest, ShardsConcatenateToTheOriginalCorpus) {
  const auto one = SampleTrips();
  std::vector<traj::TripRecord> trips;
  for (int rep = 0; rep < 3; ++rep) {
    trips.insert(trips.end(), one.begin(), one.end());
  }
  const auto paths =
      io::WriteTripShards(testing::TempDir(), "trip_store_test_shard", trips,
                          /*num_shards=*/4);
  ASSERT_EQ(paths.size(), 4u);

  std::vector<traj::TripRecord> loaded;
  for (const auto& shard_path : paths) {
    const auto part = io::TripStoreReader::OpenOrThrow(shard_path).ReadAll();
    loaded.insert(loaded.end(), part.begin(), part.end());
  }
  ASSERT_EQ(loaded.size(), trips.size());
  for (size_t i = 0; i < trips.size(); ++i) {
    ExpectTripsBitEqual(trips[i], loaded[i], i);
  }
}

TEST(TripStoreTest, OversizedSegmentIdThrows) {
  std::vector<traj::TripRecord> trips(1);
  trips[0].od.origin_segment = size_t{1} << 40;
  EXPECT_THROW(io::SerializeTripStore(trips), std::invalid_argument);
}

TEST(TripStoreTest, MissingFileReportsIoError) {
  io::TripStoreReader reader;
  const LoadStatus status = reader.Open(TempPath("does_not_exist.trips"));
  EXPECT_EQ(status.kind, LoadErrorKind::kIoError);
  EXPECT_FALSE(reader.is_open());
}

TEST(TripStoreTest, TruncationReported) {
  auto bytes = io::SerializeTripStore(SampleTrips());
  bytes.pop_back();
  const std::string path = TempPath("truncated.trips");
  WriteBytes(path, bytes);
  io::TripStoreReader reader;
  EXPECT_EQ(reader.Open(path).kind, LoadErrorKind::kTruncated);
}

TEST(TripStoreTest, HeaderShorterThanMagicReported) {
  const std::string path = TempPath("stub.trips");
  WriteBytes(path, {0x01, 0x73});
  io::TripStoreReader reader;
  EXPECT_EQ(reader.Open(path).kind, LoadErrorKind::kTruncated);
}

TEST(TripStoreTest, BadMagicReported) {
  auto bytes = io::SerializeTripStore(SampleTrips());
  bytes[0] ^= 0xFF;
  const std::string path = TempPath("badmagic.trips");
  WriteBytes(path, bytes);
  io::TripStoreReader reader;
  EXPECT_EQ(reader.Open(path).kind, LoadErrorKind::kBadMagic);
}

TEST(TripStoreTest, BadVersionReported) {
  auto bytes = io::SerializeTripStore(SampleTrips());
  bytes[4] = 0x7F;  // version word follows the magic
  const std::string path = TempPath("badversion.trips");
  WriteBytes(path, bytes);
  io::TripStoreReader reader;
  EXPECT_EQ(reader.Open(path).kind, LoadErrorKind::kBadVersion);
}

TEST(TripStoreTest, CorruptPayloadFailsChecksum) {
  auto bytes = io::SerializeTripStore(SampleTrips());
  bytes[bytes.size() / 2] ^= 0x20;
  const std::string path = TempPath("corrupt.trips");
  WriteBytes(path, bytes);
  io::TripStoreReader reader;
  EXPECT_EQ(reader.Open(path).kind, LoadErrorKind::kBadChecksum);
}

TEST(TripStoreTest, ChecksumVerificationCanBeSkipped) {
  // Same corrupted payload as above: with verification off the framing
  // still indexes, which is the bench/trusted-reader fast path.
  auto bytes = io::SerializeTripStore(SampleTrips());
  bytes[bytes.size() / 2] ^= 0x20;
  const std::string path = TempPath("corrupt_unverified.trips");
  WriteBytes(path, bytes);
  io::TripStoreReader reader;
  EXPECT_TRUE(reader.Open(path, /*verify_checksum=*/false).ok());
  EXPECT_EQ(reader.size(), 4u);
}

TEST(TripStoreTest, TrailingGarbageReported) {
  auto bytes = io::SerializeTripStore(SampleTrips());
  bytes.push_back(0xAB);
  bytes.insert(bytes.end(), 7, 0);  // keep 8-byte file size alignment
  const std::string path = TempPath("trailing.trips");
  WriteBytes(path, bytes);
  io::TripStoreReader reader;
  EXPECT_EQ(reader.Open(path).kind, LoadErrorKind::kTrailingBytes);
}

}  // namespace
}  // namespace deepod
