#include <gtest/gtest.h>

#include "nn/ops.h"
#include "nn/tensor.h"
#include "util/rng.h"

namespace deepod::nn {
namespace {

TEST(TensorTest, Factories) {
  Tensor z = Tensor::Zeros({2, 3});
  EXPECT_EQ(z.size(), 6u);
  EXPECT_EQ(z.ndim(), 2u);
  for (double v : z.data()) EXPECT_EQ(v, 0.0);

  Tensor f = Tensor::Full({4}, 1.5);
  for (double v : f.data()) EXPECT_EQ(v, 1.5);

  Tensor s = Tensor::Scalar(3.0);
  EXPECT_EQ(s.item(), 3.0);

  Tensor d = Tensor::FromData({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(d.at(1, 0), 3.0);
}

TEST(TensorTest, FromDataShapeMismatchThrows) {
  EXPECT_THROW(Tensor::FromData({2, 2}, {1, 2, 3}), std::invalid_argument);
}

TEST(TensorTest, RandnStatistics) {
  util::Rng rng(1);
  Tensor t = Tensor::Randn({10000}, rng, 2.0);
  double sum = 0.0, sq = 0.0;
  for (double v : t.data()) {
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.0, 0.1);
  EXPECT_NEAR(sq / 10000.0, 4.0, 0.2);
}

TEST(TensorTest, AccessorsValidateRank) {
  Tensor t = Tensor::Zeros({2, 3});
  EXPECT_THROW(t.at(0, 0, 0), std::logic_error);
  EXPECT_THROW(t.item(), std::logic_error);
  EXPECT_THROW(t.dim(5), std::out_of_range);
}

TEST(TensorTest, SetAndGet3d) {
  Tensor t = Tensor::Zeros({2, 2, 2});
  t.set(1, 0, 1, 7.0);
  EXPECT_EQ(t.at(1, 0, 1), 7.0);
}

TEST(TensorTest, NullHandleThrows) {
  Tensor t;
  EXPECT_FALSE(t.defined());
  EXPECT_THROW(t.shape(), std::logic_error);
  EXPECT_THROW(t.data(), std::logic_error);
}

TEST(TensorTest, BackwardOnScalarOnly) {
  Tensor t = Tensor::Zeros({3});
  EXPECT_THROW(t.Backward(), std::logic_error);
}

TEST(TensorTest, BackwardSimpleChain) {
  Tensor x = Tensor::Scalar(2.0);
  x.set_requires_grad(true);
  Tensor y = Mul(x, x);  // y = x^2, dy/dx = 2x = 4
  y.Backward();
  EXPECT_DOUBLE_EQ(x.grad()[0], 4.0);
}

TEST(TensorTest, GradAccumulatesAcrossBackwardCalls) {
  Tensor x = Tensor::Scalar(3.0);
  x.set_requires_grad(true);
  Tensor y1 = Scale(x, 2.0);
  y1.Backward();
  Tensor y2 = Scale(x, 5.0);
  y2.Backward();
  EXPECT_DOUBLE_EQ(x.grad()[0], 7.0);  // 2 + 5
  x.ZeroGrad();
  EXPECT_DOUBLE_EQ(x.grad()[0], 0.0);
}

TEST(TensorTest, DiamondGraphGradient) {
  // y = a*x + b*x where a=2, b=3 constants: dy/dx = 5.
  Tensor x = Tensor::Scalar(1.0);
  x.set_requires_grad(true);
  Tensor y = Add(Scale(x, 2.0), Scale(x, 3.0));
  y.Backward();
  EXPECT_DOUBLE_EQ(x.grad()[0], 5.0);
}

TEST(TensorTest, DetachCutsGraph) {
  Tensor x = Tensor::Scalar(2.0);
  x.set_requires_grad(true);
  Tensor mid = Mul(x, x).Detach();
  Tensor y = Scale(mid, 3.0);
  y.Backward();
  EXPECT_DOUBLE_EQ(x.grad()[0], 0.0);  // no gradient flows through detach
}

TEST(TensorTest, DeepChainBackwardNoStackOverflow) {
  // 10k-op chain exercises the iterative topological sort.
  Tensor x = Tensor::Scalar(1.0);
  x.set_requires_grad(true);
  Tensor y = x;
  for (int i = 0; i < 10000; ++i) y = AddScalar(y, 0.001);
  y.Backward();
  EXPECT_DOUBLE_EQ(x.grad()[0], 1.0);
}

TEST(TensorTest, ShapeString) {
  EXPECT_EQ(Tensor::Zeros({2, 3}).ShapeString(), "[2,3]");
  EXPECT_EQ(Tensor::Scalar(1.0).ShapeString(), "[1]");
}

TEST(TensorTest, NoGradTrackingWithoutRequiresGrad) {
  Tensor a = Tensor::Scalar(1.0);
  Tensor b = Tensor::Scalar(2.0);
  Tensor c = Add(a, b);
  // Parents are pruned when no input needs grad.
  c.Backward();
  EXPECT_DOUBLE_EQ(a.grad()[0], 0.0);
}

}  // namespace
}  // namespace deepod::nn
