#include <gtest/gtest.h>

#include <cmath>

#include "analysis/metrics.h"
#include "baselines/baseline.h"
#include "baselines/gbm.h"
#include "baselines/linear_regression.h"
#include "baselines/murat.h"
#include "baselines/stnn.h"
#include "baselines/temp.h"
#include "sim/dataset.h"

namespace deepod::baselines {
namespace {

// Shared small dataset fixture: built once per test binary run.
const sim::Dataset& SmallDataset() {
  static const sim::Dataset* dataset = [] {
    sim::DatasetConfig config;
    config.city = road::XianSimConfig();
    config.city.rows = 7;
    config.city.cols = 7;
    config.trips_per_day = 80;
    config.num_days = 25;
    config.seed = 99;
    auto* ds = new sim::Dataset;
    sim::BuildDataset(config, ds);
    return ds;
  }();
  return *dataset;
}

double MeanPredictorMae(const sim::Dataset& ds) {
  double mean = 0.0;
  for (const auto& t : ds.train) mean += t.travel_time;
  mean /= static_cast<double>(ds.train.size());
  std::vector<double> truth, pred;
  for (const auto& t : ds.test) {
    truth.push_back(t.travel_time);
    pred.push_back(mean);
  }
  return analysis::Mae(truth, pred);
}

std::vector<double> TestTruth(const sim::Dataset& ds) {
  std::vector<double> truth;
  for (const auto& t : ds.test) truth.push_back(t.travel_time);
  return truth;
}

TEST(OdFeaturesTest, LayoutAndRanges) {
  const auto& ds = SmallDataset();
  const auto f = OdFeatures(ds.test[0].od, ds.network);
  ASSERT_EQ(f.size(), OdFeatureCount());
  EXPECT_DOUBLE_EQ(f[0], 1.0);  // bias
  for (size_t i = 1; i <= 4; ++i) {
    EXPECT_GE(f[i], 0.0);  // normalised coordinates
    EXPECT_LE(f[i], 1.0);
  }
  // Day-of-week one-hot sums to 1.
  double onehot = 0.0;
  for (size_t i = 9; i < 16; ++i) onehot += f[i];
  EXPECT_DOUBLE_EQ(onehot, 1.0);
}

// Every baseline must beat the constant mean predictor on the test split —
// the weakest sensible bar for a trained estimator.
template <typename Estimator>
double TrainAndMae() {
  const auto& ds = SmallDataset();
  Estimator estimator;
  estimator.Train(ds);
  const auto pred = estimator.PredictAll(ds.test);
  for (double p : pred) EXPECT_TRUE(std::isfinite(p));
  return analysis::Mae(TestTruth(ds), pred);
}

TEST(TempTest, BeatsMeanPredictorAtScale) {
  // TEMP is a nearest-neighbour method and needs a dense trip corpus — the
  // paper itself attributes TEMP's weak spots to trip-record sparsity
  // (§6.4.2 observation 4). Build a denser corpus for this check; training
  // and prediction are cheap for TEMP.
  sim::DatasetConfig config;
  config.city = road::XianSimConfig();
  config.city.rows = 10;
  config.city.cols = 10;
  config.trips_per_day = 150;
  config.num_days = 40;
  config.seed = 5;
  const sim::Dataset ds = sim::BuildDataset(config);
  double mean = 0.0;
  for (const auto& t : ds.train) mean += t.travel_time;
  mean /= static_cast<double>(ds.train.size());
  std::vector<double> truth, mean_pred;
  for (const auto& t : ds.test) {
    truth.push_back(t.travel_time);
    mean_pred.push_back(mean);
  }
  TempEstimator temp;
  temp.Train(ds);
  const auto pred = temp.PredictAll(ds.test);
  EXPECT_LT(analysis::Mae(truth, pred), analysis::Mae(truth, mean_pred));
}

TEST(LrTest, BeatsMeanPredictor) {
  EXPECT_LT(TrainAndMae<LinearRegressionEstimator>(),
            MeanPredictorMae(SmallDataset()));
}

TEST(GbmTest, BeatsMeanPredictor) {
  EXPECT_LT(TrainAndMae<GbmEstimator>(), MeanPredictorMae(SmallDataset()));
}

TEST(StnnTest, BeatsMeanPredictor) {
  EXPECT_LT(TrainAndMae<StnnEstimator>(), MeanPredictorMae(SmallDataset()));
}

TEST(MuratTest, BeatsMeanPredictor) {
  EXPECT_LT(TrainAndMae<MuratEstimator>(), MeanPredictorMae(SmallDataset()));
}

TEST(TempTest, NearDuplicateTripUsesNeighbours) {
  const auto& ds = SmallDataset();
  TempEstimator temp;
  temp.Train(ds);
  // Querying an exact training trip should return something close to its
  // time (it and its neighbours dominate the average).
  const auto& trip = ds.train[5];
  const double pred = temp.Predict(trip.od);
  EXPECT_GT(pred, 0.0);
  EXPECT_LT(std::fabs(pred - trip.travel_time) / trip.travel_time, 0.8);
}

TEST(TempTest, ModelSizeScalesWithTrainingData) {
  const auto& ds = SmallDataset();
  TempEstimator temp;
  temp.Train(ds);
  EXPECT_GT(temp.ModelSizeBytes(), ds.train.size() * sizeof(double));
}

TEST(LrTest, RecoversPlantedLinearFunction) {
  // Fit on a synthetic dataset whose labels are a known linear function of
  // the features; LR must recover it nearly exactly.
  sim::Dataset ds;
  sim::DatasetConfig config;
  config.city = road::XianSimConfig();
  config.city.rows = 5;
  config.city.cols = 5;
  config.trips_per_day = 40;
  config.num_days = 10;
  sim::BuildDataset(config, &ds);
  for (auto& t : ds.train) {
    const auto f = OdFeatures(t.od, ds.network);
    t.travel_time = 100.0 + 50.0 * f[1] - 30.0 * f[4];
  }
  LinearRegressionEstimator lr;
  lr.Train(ds);
  double max_err = 0.0;
  for (const auto& t : ds.train) {
    const auto f = OdFeatures(t.od, ds.network);
    const double expected = 100.0 + 50.0 * f[1] - 30.0 * f[4];
    max_err = std::max(max_err, std::fabs(lr.Predict(t.od) - expected));
  }
  EXPECT_LT(max_err, 1.0);
}

TEST(SolveLinearSystemTest, KnownSolution) {
  // [2 1; 1 3] x = [5; 10] -> x = [1, 3].
  const auto x = SolveLinearSystem({{2, 1}, {1, 3}}, {5, 10});
  ASSERT_EQ(x.size(), 2u);
  EXPECT_NEAR(x[0], 1.0, 1e-9);
  EXPECT_NEAR(x[1], 3.0, 1e-9);
}

TEST(SolveLinearSystemTest, SingularThrows) {
  EXPECT_THROW(SolveLinearSystem({{1, 2}, {2, 4}}, {1, 2}), std::runtime_error);
}

TEST(RegressionTreeTest, FitsPiecewiseConstant) {
  // Feature 0 splits the targets perfectly at 0.5.
  std::vector<std::vector<double>> features;
  std::vector<double> targets;
  std::vector<size_t> indices;
  for (int i = 0; i < 40; ++i) {
    const double x = i < 20 ? 0.1 : 0.9;
    features.push_back({x, 0.0});
    targets.push_back(i < 20 ? -5.0 : 7.0);
    indices.push_back(static_cast<size_t>(i));
  }
  RegressionTree tree;
  RegressionTree::Options options;
  options.max_depth = 2;
  options.min_samples_leaf = 2;
  tree.Fit(features, targets, indices, options);
  EXPECT_NEAR(tree.Predict({0.1, 0.0}), -5.0, 1e-9);
  EXPECT_NEAR(tree.Predict({0.9, 0.0}), 7.0, 1e-9);
  EXPECT_GE(tree.num_nodes(), 3u);
}

TEST(RegressionTreeTest, RespectsMinSamplesLeaf) {
  std::vector<std::vector<double>> features;
  std::vector<double> targets;
  std::vector<size_t> indices;
  for (int i = 0; i < 10; ++i) {
    features.push_back({static_cast<double>(i)});
    targets.push_back(static_cast<double>(i));
    indices.push_back(static_cast<size_t>(i));
  }
  RegressionTree tree;
  RegressionTree::Options options;
  options.max_depth = 10;
  options.min_samples_leaf = 6;  // no split can satisfy 6+6
  tree.Fit(features, targets, indices, options);
  EXPECT_EQ(tree.num_nodes(), 1u);
  EXPECT_NEAR(tree.Predict({3.0}), 4.5, 1e-9);  // the mean
}

TEST(GbmTest, BoostingReducesTrainingError) {
  const auto& ds = SmallDataset();
  std::vector<double> truth;
  for (const auto& t : ds.train) truth.push_back(t.travel_time);

  GbmEstimator::Options small;
  small.num_trees = 1;
  GbmEstimator weak(small);
  weak.Train(ds);
  std::vector<double> weak_pred;
  for (const auto& t : ds.train) weak_pred.push_back(weak.Predict(t.od));

  GbmEstimator strong;  // default many trees
  strong.Train(ds);
  std::vector<double> strong_pred;
  for (const auto& t : ds.train) strong_pred.push_back(strong.Predict(t.od));

  EXPECT_LT(analysis::Mae(truth, strong_pred), analysis::Mae(truth, weak_pred));
}

TEST(GbmTest, EarlyStoppingBoundsTreeCount) {
  const auto& ds = SmallDataset();
  GbmEstimator::Options options;
  options.num_trees = 500;
  options.early_stop_rounds = 5;
  GbmEstimator gbm(options);
  gbm.Train(ds);
  EXPECT_LT(gbm.num_trees(), 500u);
  EXPECT_GT(gbm.ModelSizeBytes(), 0u);
}

TEST(StnnTest, PredictsPositiveFiniteTimes) {
  const auto& ds = SmallDataset();
  StnnEstimator stnn;
  stnn.Train(ds);
  for (size_t i = 0; i < std::min<size_t>(20, ds.test.size()); ++i) {
    const double p = stnn.Predict(ds.test[i].od);
    EXPECT_TRUE(std::isfinite(p));
  }
  EXPECT_GT(stnn.ModelSizeBytes(), 0u);
}

TEST(MuratTest, ModelSizeIncludesEmbeddings) {
  const auto& ds = SmallDataset();
  MuratEstimator murat;
  murat.Train(ds);
  // Cell + time embeddings alone exceed the trunk; size must reflect them.
  EXPECT_GT(murat.ModelSizeBytes(), 10000u);
}

TEST(UntrainedEstimatorsReturnZero, AllNeuralBaselines) {
  StnnEstimator stnn;
  MuratEstimator murat;
  traj::OdInput od;
  EXPECT_EQ(stnn.Predict(od), 0.0);
  EXPECT_EQ(murat.Predict(od), 0.0);
  EXPECT_EQ(stnn.ModelSizeBytes(), 0u);
  EXPECT_EQ(murat.ModelSizeBytes(), 0u);
}

}  // namespace
}  // namespace deepod::baselines
