// End-to-end integration: simulate a city, train DeepOD and the cheap
// baselines, and check the learning outcomes the paper reports (trained
// DeepOD beats the mean predictor and LR; the auxiliary loss path runs; the
// trained time-slot embeddings exhibit daily structure).
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/metrics.h"
#include "baselines/linear_regression.h"
#include "baselines/temp.h"
#include "core/deepod_model.h"
#include "core/trainer.h"
#include "nn/serialize.h"
#include "sim/dataset.h"

namespace deepod {
namespace {

const sim::Dataset& Dataset() {
  static const sim::Dataset* dataset = [] {
    sim::DatasetConfig config;
    config.city = road::XianSimConfig();
    config.city.rows = 7;
    config.city.cols = 7;
    config.trips_per_day = 60;
    config.num_days = 28;
    config.seed = 31;
    return new sim::Dataset(sim::BuildDataset(config));
  }();
  return *dataset;
}

std::vector<double> Truth() {
  std::vector<double> t;
  for (const auto& trip : Dataset().test) t.push_back(trip.travel_time);
  return t;
}

TEST(IntegrationTest, DeepOdBeatsMeanAndLr) {
  const auto& ds = Dataset();
  const auto truth = Truth();

  double mean = 0.0;
  for (const auto& t : ds.train) mean += t.travel_time;
  mean /= static_cast<double>(ds.train.size());
  const std::vector<double> mean_pred(truth.size(), mean);

  baselines::LinearRegressionEstimator lr;
  lr.Train(ds);
  const auto lr_pred = lr.PredictAll(ds.test);

  core::DeepOdConfig config = core::DeepOdConfig().Scaled(8);
  config.epochs = 8;
  // The auxiliary task needs a denser trip corpus than this fixture to pay
  // off (the full-scale benches sweep it); keep the integration check on
  // the supervised path.
  config.loss_weight_w = 0.0;
  core::DeepOdModel model(config, ds);
  core::DeepOdTrainer trainer(model, ds);
  trainer.Train(nullptr, 1000000, 80);
  const auto deepod_pred = trainer.PredictAll(ds.test);

  const double deepod_mae = analysis::Mae(truth, deepod_pred);
  EXPECT_LT(deepod_mae, analysis::Mae(truth, mean_pred));
  EXPECT_LT(deepod_mae, analysis::Mae(truth, lr_pred));
}

TEST(IntegrationTest, AuxiliaryLossBindsCodeToStcode) {
  const auto& ds = Dataset();
  core::DeepOdConfig config = core::DeepOdConfig().Scaled(8);
  config.epochs = 3;
  config.loss_weight_w = 0.5;
  core::DeepOdModel model(config, ds);

  // Mean code<->stcode distance over a sample of training trips, before and
  // after training: the auxiliary task must pull them together.
  auto mean_distance = [&] {
    model.SetTraining(false);
    double total = 0.0;
    const size_t n = 30;
    for (size_t i = 0; i < n; ++i) {
      const auto& trip = ds.train[i * 3];
      const nn::Tensor code = model.EncodeOd(trip.od);
      const nn::Tensor stcode = model.EncodeTrajectory(trip.trajectory);
      total += nn::EuclideanDistance(code, stcode).item();
    }
    model.SetTraining(true);
    return total / static_cast<double>(n);
  };

  const double before = mean_distance();
  core::DeepOdTrainer trainer(model, ds);
  trainer.Train(nullptr, 1000000, 40);
  const double after = mean_distance();
  EXPECT_LT(after, before);
}

TEST(IntegrationTest, TempAndDeepOdAgreeOnObviousTrips) {
  // Sanity cross-check: predictions of two very different methods correlate
  // positively with the ground truth across test trips.
  const auto& ds = Dataset();
  const auto truth = Truth();

  baselines::TempEstimator temp;
  temp.Train(ds);
  const auto temp_pred = temp.PredictAll(ds.test);

  double num = 0.0, dt = 0.0, dp = 0.0;
  double mt = 0.0, mp = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    mt += truth[i];
    mp += temp_pred[i];
  }
  mt /= static_cast<double>(truth.size());
  mp /= static_cast<double>(truth.size());
  for (size_t i = 0; i < truth.size(); ++i) {
    num += (truth[i] - mt) * (temp_pred[i] - mp);
    dt += (truth[i] - mt) * (truth[i] - mt);
    dp += (temp_pred[i] - mp) * (temp_pred[i] - mp);
  }
  EXPECT_GT(num / std::sqrt(dt * dp), 0.5);
}

TEST(IntegrationTest, TrainedModelSurvivesSerializationRoundTrip) {
  const auto& ds = Dataset();
  core::DeepOdConfig config = core::DeepOdConfig().Scaled(16);
  config.epochs = 1;
  core::DeepOdModel model(config, ds);
  core::DeepOdTrainer trainer(model, ds);
  trainer.Train(nullptr, 1000000, 20);

  auto params = model.Parameters();
  const auto buffer = nn::SerializeParameters(params);

  model.SetTraining(false);
  const double before = model.Predict(ds.test[0].od);
  // Perturb all parameters, restore, and check the prediction returns.
  for (auto& p : params) {
    for (double& v : p.data()) v += 0.5;
  }
  const double perturbed = model.Predict(ds.test[0].od);
  EXPECT_NE(before, perturbed);
  nn::DeserializeParameters(buffer, params);
  EXPECT_DOUBLE_EQ(model.Predict(ds.test[0].od), before);
}

}  // namespace
}  // namespace deepod
