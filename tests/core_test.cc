#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "core/deepod_config.h"
#include "core/deepod_model.h"
#include "core/encoders.h"
#include "core/trainer.h"
#include "sim/dataset.h"

namespace deepod::core {
namespace {

// One tiny dataset shared by all model tests (expensive to build).
const sim::Dataset& TinyDataset() {
  static const sim::Dataset* dataset = [] {
    sim::DatasetConfig config;
    config.city = road::XianSimConfig();
    config.city.rows = 6;
    config.city.cols = 6;
    config.trips_per_day = 12;
    config.num_days = 15;
    config.seed = 17;
    return new sim::Dataset(sim::BuildDataset(config));
  }();
  return *dataset;
}

DeepOdConfig TinyConfig() {
  DeepOdConfig config = DeepOdConfig().Scaled(16);
  config.epochs = 1;
  config.batch_size = 8;
  return config;
}

TEST(ConfigTest, ScaledDividesAllWidths) {
  const DeepOdConfig base;  // paper defaults
  EXPECT_EQ(base.ds, 64u);
  EXPECT_EQ(base.dm1, 128u);
  const DeepOdConfig scaled = base.Scaled(8);
  EXPECT_EQ(scaled.ds, 8u);
  EXPECT_EQ(scaled.dm1, 16u);
  EXPECT_EQ(scaled.dm4, scaled.dm8);  // §4.6 constraint preserved
  // Floors at 4.
  EXPECT_EQ(base.Scaled(1000).ds, 4u);
}

TEST(ConfigTest, Dm4Dm8MismatchRejected) {
  DeepOdConfig config = TinyConfig();
  config.dm8 = config.dm4 + 2;
  EXPECT_THROW(DeepOdModel(config, TinyDataset()), std::invalid_argument);
}

TEST(PoolMatrixTest, IdentityWhenSmall) {
  size_t r = 0, c = 0;
  const std::vector<double> m = {1, 2, 3, 4};
  const auto out = PoolMatrix(m, 2, 2, 8, &r, &c);
  EXPECT_EQ(out, m);
  EXPECT_EQ(r, 2u);
  EXPECT_EQ(c, 2u);
}

TEST(PoolMatrixTest, AveragesBlocks) {
  // 4x2 pooled to 2x2: rows {0,1} and {2,3} average.
  const std::vector<double> m = {1, 2, 3, 4, 5, 6, 7, 8};
  size_t r = 0, c = 0;
  const auto out = PoolMatrix(m, 4, 2, 2, &r, &c);
  EXPECT_EQ(r, 2u);
  EXPECT_EQ(c, 2u);
  EXPECT_DOUBLE_EQ(out[0], 2.0);  // (1+3)/2
  EXPECT_DOUBLE_EQ(out[1], 3.0);
  EXPECT_DOUBLE_EQ(out[2], 6.0);
  EXPECT_DOUBLE_EQ(out[3], 7.0);
}

TEST(PoolMatrixTest, MeanIsPreserved) {
  util::Rng rng(21);
  std::vector<double> m(15 * 17);
  double mean = 0.0;
  for (double& v : m) {
    v = rng.Uniform();
    mean += v;
  }
  mean /= static_cast<double>(m.size());
  size_t r = 0, c = 0;
  const auto out = PoolMatrix(m, 15, 17, 5, &r, &c);
  double pooled_mean = 0.0;
  // Weighted by block size; with ragged blocks the pooled mean is close but
  // not exact — allow small tolerance.
  for (double v : out) pooled_mean += v;
  pooled_mean /= static_cast<double>(out.size());
  EXPECT_NEAR(pooled_mean, mean, 0.05);
}

TEST(DeepOdModelTest, EncodingShapes) {
  DeepOdModel model(TinyConfig(), TinyDataset());
  const auto& trip = TinyDataset().train[0];
  const nn::Tensor code = model.EncodeOd(trip.od);
  EXPECT_EQ(code.shape(), (std::vector<size_t>{model.config().dm8}));
  const nn::Tensor stcode = model.EncodeTrajectory(trip.trajectory);
  EXPECT_EQ(stcode.shape(), (std::vector<size_t>{model.config().dm4}));
  const nn::Tensor y = model.EstimateFromCode(code);
  EXPECT_EQ(y.size(), 1u);
}

TEST(DeepOdModelTest, PredictIsFiniteAndDeterministic) {
  DeepOdModel model(TinyConfig(), TinyDataset());
  model.SetTraining(false);
  const auto& od = TinyDataset().test[0].od;
  const double a = model.Predict(od);
  const double b = model.Predict(od);
  EXPECT_TRUE(std::isfinite(a));
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(DeepOdModelTest, TimeScaleDefaultsToTrainMean) {
  DeepOdModel model(TinyConfig(), TinyDataset());
  double mean = 0.0;
  for (const auto& t : TinyDataset().train) mean += t.travel_time;
  mean /= static_cast<double>(TinyDataset().train.size());
  EXPECT_NEAR(model.time_scale(), mean, 1e-9);
}

TEST(DeepOdModelTest, SampleLossFiniteAndDifferentiable) {
  DeepOdModel model(TinyConfig(), TinyDataset());
  nn::Tensor loss = model.SampleLoss(TinyDataset().train[0]);
  EXPECT_TRUE(std::isfinite(loss.item()));
  EXPECT_GT(loss.item(), 0.0);
  loss.Backward();
  // Road embedding must receive gradient (both via OD and trajectory).
  double grad_mass = 0.0;
  for (double g : model.road_embedding().table().grad()) {
    grad_mass += std::fabs(g);
  }
  EXPECT_GT(grad_mass, 0.0);
}

TEST(DeepOdModelTest, AblationNoStSkipsTrajectoryGradient) {
  DeepOdConfig config = TinyConfig();
  config.ablation = Ablation::kNoSt;
  DeepOdModel model(config, TinyDataset());
  nn::Tensor loss = model.SampleLoss(TinyDataset().train[0]);
  loss.Backward();
  // Without the auxiliary task the trajectory path contributes nothing; the
  // road table still gets gradient from the OD encoder endpoints only.
  size_t nonzero_rows = 0;
  const auto& grad = model.road_embedding().table().grad();
  const size_t dim = model.config().ds;
  for (size_t r = 0; r < model.road_embedding().num_entries(); ++r) {
    for (size_t j = 0; j < dim; ++j) {
      if (grad[r * dim + j] != 0.0) {
        ++nonzero_rows;
        break;
      }
    }
  }
  EXPECT_LE(nonzero_rows, 2u);  // exactly the two endpoint segments
}

TEST(DeepOdModelTest, AblationNoSpZeroesSpatialInput) {
  DeepOdConfig config = TinyConfig();
  config.ablation = Ablation::kNoSp;
  DeepOdModel model(config, TinyDataset());
  nn::Tensor loss = model.SampleLoss(TinyDataset().train[0]);
  loss.Backward();
  for (double g : model.road_embedding().table().grad()) {
    EXPECT_EQ(g, 0.0);  // spatial encoding removed everywhere
  }
}

TEST(DeepOdModelTest, AblationNoTpZeroesTemporalInput) {
  DeepOdConfig config = TinyConfig();
  config.ablation = Ablation::kNoTp;
  DeepOdModel model(config, TinyDataset());
  nn::Tensor loss = model.SampleLoss(TinyDataset().train[0]);
  loss.Backward();
  for (double g : model.time_slot_embedding().table().grad()) {
    EXPECT_EQ(g, 0.0);
  }
}

TEST(DeepOdModelTest, TimestampVariantIgnoresSlotTable) {
  DeepOdConfig config = TinyConfig();
  config.time_init = TimeInit::kTimestamp;
  DeepOdModel model(config, TinyDataset());
  // T-stamp feeds the raw timestamp to M_O instead of a slot embedding, so
  // online estimation must be invariant to the slot table's contents.
  const auto& od = TinyDataset().test[0].od;
  model.SetTraining(false);
  const double before = model.Predict(od);
  EXPECT_TRUE(std::isfinite(before));
  nn::Tensor table = model.time_slot_embedding().table();  // shared handle
  for (double& v : table.data()) v += 3.0;
  EXPECT_DOUBLE_EQ(model.Predict(od), before);
}

TEST(DeepOdModelTest, DailyGraphVariantHasSmallerTable) {
  DeepOdConfig weekly = TinyConfig();
  DeepOdModel weekly_model(weekly, TinyDataset());
  DeepOdConfig daily = TinyConfig();
  daily.time_init = TimeInit::kDailyGraph;
  DeepOdModel daily_model(daily, TinyDataset());
  EXPECT_EQ(weekly_model.time_slot_embedding().num_entries(),
            daily_model.time_slot_embedding().num_entries() * 7);
}

TEST(DeepOdModelTest, ParameterCountMatchesSum) {
  DeepOdModel model(TinyConfig(), TinyDataset());
  size_t total = 0;
  for (auto& p : model.Parameters()) total += p.size();
  EXPECT_EQ(model.NumParameters(), total);
  EXPECT_GT(total, 1000u);
}

TEST(TrainerTest, OneEpochImprovesValidation) {
  DeepOdConfig config = DeepOdConfig().Scaled(16);
  config.epochs = 3;
  config.batch_size = 8;
  DeepOdModel model(config, TinyDataset());
  DeepOdTrainer trainer(model, TinyDataset());
  const double before = trainer.ValidationMae(50);
  const double after = trainer.Train(nullptr, 1000, 50);
  EXPECT_LT(after, before);
  EXPECT_GT(trainer.steps_taken(), 0u);
}

TEST(TrainerTest, CallbackFires) {
  DeepOdConfig config = TinyConfig();
  DeepOdModel model(config, TinyDataset());
  DeepOdTrainer trainer(model, TinyDataset());
  int calls = 0;
  trainer.Train(
      [&calls](size_t step, double mae) {
        EXPECT_GT(step, 0u);
        EXPECT_TRUE(std::isfinite(mae));
        ++calls;
      },
      /*eval_every=*/3, 20);
  EXPECT_GT(calls, 0);
}

TEST(TrainerTest, PredictAllMatchesSize) {
  DeepOdConfig config = TinyConfig();
  DeepOdModel model(config, TinyDataset());
  DeepOdTrainer trainer(model, TinyDataset());
  const auto pred = trainer.PredictAll(TinyDataset().test);
  EXPECT_EQ(pred.size(), TinyDataset().test.size());
  for (double p : pred) EXPECT_TRUE(std::isfinite(p));
}


TEST(DeepOdModelTest, SaveLoadRoundTrip) {
  DeepOdModel model(TinyConfig(), TinyDataset());
  model.SetTraining(false);
  const double before = model.Predict(TinyDataset().test[0].od);
  const std::string path = ::testing::TempDir() + "/deepod_model.bin";
  model.Save(path);

  // A freshly constructed model with a different seed predicts differently;
  // Load must restore the saved behaviour exactly (including time scale).
  DeepOdConfig other = TinyConfig();
  other.seed = 999;
  DeepOdModel restored(other, TinyDataset());
  restored.SetTraining(false);
  restored.set_time_scale(1.0);
  EXPECT_NE(restored.Predict(TinyDataset().test[0].od), before);
  restored.Load(path);
  EXPECT_DOUBLE_EQ(restored.Predict(TinyDataset().test[0].od), before);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace deepod::core
