// Finite-difference gradient verification for every op and module — the
// property tests that certify the autograd engine implements the paper's
// equations (Eq. 1-20) with exact gradients.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/conv.h"
#include "nn/gradcheck.h"
#include "nn/lstm.h"
#include "nn/module.h"
#include "nn/ops.h"
#include "util/rng.h"

namespace deepod::nn {
namespace {

Tensor MakeParam(std::vector<size_t> shape, util::Rng& rng) {
  Tensor t = Tensor::Randn(std::move(shape), rng, 0.5);
  t.set_requires_grad(true);
  return t;
}

// --- Parameterised sweep over unary elementwise ops ------------------------

struct UnaryCase {
  const char* name;
  std::function<Tensor(const Tensor&)> op;
};

class UnaryGradTest : public ::testing::TestWithParam<UnaryCase> {};

TEST_P(UnaryGradTest, MatchesFiniteDifference) {
  util::Rng rng(101);
  Tensor x = MakeParam({7}, rng);
  // Shift away from the ReLU/Abs kink at 0 to keep finite differences valid.
  for (double& v : x.data()) {
    if (std::fabs(v) < 0.05) v += 0.1;
  }
  const auto& op = GetParam().op;
  auto loss_fn = [&] { return Sum(op(x)); };
  const auto result = CheckGradients(loss_fn, {x});
  EXPECT_TRUE(result.ok) << GetParam().name
                         << " max_abs_err=" << result.max_abs_error;
}

INSTANTIATE_TEST_SUITE_P(
    AllUnaryOps, UnaryGradTest,
    ::testing::Values(
        UnaryCase{"relu", [](const Tensor& x) { return Relu(x); }},
        UnaryCase{"sigmoid", [](const Tensor& x) { return Sigmoid(x); }},
        UnaryCase{"tanh", [](const Tensor& x) { return Tanh(x); }},
        UnaryCase{"abs", [](const Tensor& x) { return Abs(x); }},
        UnaryCase{"square", [](const Tensor& x) { return Square(x); }},
        UnaryCase{"scale", [](const Tensor& x) { return Scale(x, -2.5); }},
        UnaryCase{"add_scalar", [](const Tensor& x) { return AddScalar(x, 3.0); }},
        UnaryCase{"sqrt_sq",
                  [](const Tensor& x) { return Sqrt(Square(x), 1e-9); }}),
    [](const ::testing::TestParamInfo<UnaryCase>& info) {
      return info.param.name;
    });

// --- Binary / structural ops ------------------------------------------------

TEST(GradCheckTest, AddSubMul) {
  util::Rng rng(7);
  Tensor a = MakeParam({5}, rng);
  Tensor b = MakeParam({5}, rng);
  auto loss = [&] { return Sum(Mul(Add(a, b), Sub(a, b))); };
  EXPECT_TRUE(CheckGradients(loss, {a, b}).ok);
}

TEST(GradCheckTest, MatMul) {
  util::Rng rng(8);
  Tensor a = MakeParam({3, 4}, rng);
  Tensor b = MakeParam({4, 2}, rng);
  auto loss = [&] { return Sum(MatMul(a, b)); };
  EXPECT_TRUE(CheckGradients(loss, {a, b}).ok);
}

TEST(GradCheckTest, MatMulNonUniformUpstream) {
  util::Rng rng(9);
  Tensor a = MakeParam({2, 3}, rng);
  Tensor b = MakeParam({3, 3}, rng);
  Tensor mask = Tensor::FromData({2, 3}, {1, -2, 3, -4, 5, -6});
  auto loss = [&] { return Sum(Mul(MatMul(a, b), mask)); };
  EXPECT_TRUE(CheckGradients(loss, {a, b}).ok);
}

TEST(GradCheckTest, Affine) {
  util::Rng rng(10);
  Tensor w = MakeParam({3, 4}, rng);
  Tensor x = MakeParam({4}, rng);
  Tensor b = MakeParam({3}, rng);
  auto loss = [&] { return Sum(Tanh(Affine(w, x, b))); };
  EXPECT_TRUE(CheckGradients(loss, {w, x, b}).ok);
}

TEST(GradCheckTest, AddRow) {
  util::Rng rng(11);
  Tensor m = MakeParam({3, 2}, rng);
  Tensor r = MakeParam({2}, rng);
  auto loss = [&] { return Sum(Square(AddRow(m, r))); };
  EXPECT_TRUE(CheckGradients(loss, {m, r}).ok);
}

TEST(GradCheckTest, ConcatStackRowGather) {
  util::Rng rng(12);
  Tensor a = MakeParam({3}, rng);
  Tensor b = MakeParam({2}, rng);
  Tensor m = MakeParam({4, 3}, rng);
  auto loss = [&] {
    Tensor cat = ConcatVec({a, b, Row(m, 1)});
    Tensor stacked = StackRows({a, Row(m, 2), Row(m, 2)});
    return Add(Sum(Square(cat)), Sum(Tanh(stacked)));
  };
  EXPECT_TRUE(CheckGradients(loss, {a, b, m}).ok);
}

TEST(GradCheckTest, GatherRowsRepeatedIndices) {
  util::Rng rng(13);
  Tensor m = MakeParam({5, 3}, rng);
  auto loss = [&] { return Sum(Square(GatherRows(m, {0, 2, 2, 4}))); };
  EXPECT_TRUE(CheckGradients(loss, {m}).ok);
}

TEST(GradCheckTest, MeanAndMeanRows) {
  util::Rng rng(14);
  Tensor m = MakeParam({4, 3}, rng);
  auto loss = [&] { return Add(Mean(m), Sum(Square(MeanRows(m)))); };
  EXPECT_TRUE(CheckGradients(loss, {m}).ok);
}

TEST(GradCheckTest, Conv2dWithPadding) {
  util::Rng rng(15);
  Tensor in = MakeParam({2, 4, 3}, rng);
  Tensor k = MakeParam({3, 2, 3, 1}, rng);
  auto loss = [&] { return Sum(Square(Conv2d(in, k, 1, 0))); };
  EXPECT_TRUE(CheckGradients(loss, {in, k}).ok);
}

TEST(GradCheckTest, ChannelBiasAndPool) {
  util::Rng rng(16);
  Tensor in = MakeParam({2, 3, 3}, rng);
  Tensor bias = MakeParam({2}, rng);
  auto loss = [&] {
    return Sum(Square(GlobalAvgPool(AddChannelBias(in, bias))));
  };
  EXPECT_TRUE(CheckGradients(loss, {in, bias}).ok);
}

TEST(GradCheckTest, Losses) {
  util::Rng rng(17);
  Tensor pred = MakeParam({6}, rng);
  Tensor target = Tensor::FromData({6}, {0.4, -0.2, 1.7, 0.8, -1.1, 0.3});
  auto loss = [&] {
    return Add(MaeLoss(pred, target), EuclideanDistance(pred, target));
  };
  EXPECT_TRUE(CheckGradients(loss, {pred}).ok);
}

// --- Modules ----------------------------------------------------------------

TEST(GradCheckTest, LinearVectorAndBatch) {
  util::Rng rng(18);
  Linear layer(4, 3, rng);
  Tensor x = MakeParam({4}, rng);
  auto loss_vec = [&] { return Sum(Tanh(layer.Forward(x))); };
  auto params = layer.Parameters();
  params.push_back(x);
  EXPECT_TRUE(CheckGradients(loss_vec, params).ok);

  Tensor xb = MakeParam({3, 4}, rng);
  auto loss_batch = [&] { return Sum(Tanh(layer.Forward(xb))); };
  auto params2 = layer.Parameters();
  params2.push_back(xb);
  EXPECT_TRUE(CheckGradients(loss_batch, params2).ok);
}

TEST(GradCheckTest, Mlp2) {
  util::Rng rng(19);
  Mlp2 mlp(3, 5, 2, rng);
  Tensor x = MakeParam({3}, rng);
  auto loss = [&] { return Sum(Square(mlp.Forward(x))); };
  auto params = mlp.Parameters();
  params.push_back(x);
  EXPECT_TRUE(CheckGradients(loss, params).ok);
}

TEST(GradCheckTest, EmbeddingLookup) {
  util::Rng rng(20);
  Embedding emb(6, 3, rng);
  auto loss = [&] {
    return Sum(Square(ConcatVec({emb.Forward(1), emb.Forward(4)})));
  };
  EXPECT_TRUE(CheckGradients(loss, emb.Parameters()).ok);
}

TEST(GradCheckTest, LstmSequence) {
  util::Rng rng(21);
  Lstm lstm(3, 4, rng);
  std::vector<Tensor> inputs;
  for (int i = 0; i < 3; ++i) inputs.push_back(MakeParam({3}, rng));
  auto loss = [&] { return Sum(Square(lstm.Forward(inputs))); };
  auto params = lstm.Parameters();
  for (auto& in : inputs) params.push_back(in);
  EXPECT_TRUE(CheckGradients(loss, params, 1e-5, 1e-5, 1e-3).ok);
}

TEST(GradCheckTest, BatchNormTrainingStats) {
  util::Rng rng(22);
  BatchNorm2d bn(2);
  Tensor in = MakeParam({2, 2, 3}, rng);
  auto loss = [&] { return Sum(Square(bn.Forward(in))); };
  // Note: running statistics update during each call, but they do not feed
  // the training-mode output, so finite differences remain valid.
  auto params = bn.Parameters();
  params.push_back(in);
  EXPECT_TRUE(CheckGradients(loss, params, 1e-5, 1e-5, 1e-3).ok);
}

TEST(GradCheckTest, BatchNormEvalMode) {
  util::Rng rng(23);
  BatchNorm2d bn(2);
  Tensor warm = Tensor::Randn({2, 3, 3}, rng, 1.0);
  bn.Forward(warm);  // populate running stats
  bn.SetTraining(false);
  Tensor in = MakeParam({2, 2, 2}, rng);
  auto loss = [&] { return Sum(Square(bn.Forward(in))); };
  auto params = bn.Parameters();
  params.push_back(in);
  EXPECT_TRUE(CheckGradients(loss, params).ok);
}

TEST(GradCheckTest, ResNetTimeBlock) {
  util::Rng rng(24);
  ResNetTimeBlock block(rng);
  Tensor in = MakeParam({3, 4}, rng);  // Δd = 3 slots, d_t = 4
  auto loss = [&] { return Sum(Square(block.Forward(in))); };
  auto params = block.Parameters();
  params.push_back(in);
  EXPECT_TRUE(CheckGradients(loss, params, 1e-5, 1e-5, 1e-3).ok);
}

TEST(GradCheckTest, ResNetTimeBlockSingleSlot) {
  // Δd = 1 (interval within one slot) is the most common path shape.
  util::Rng rng(25);
  ResNetTimeBlock block(rng);
  Tensor in = MakeParam({1, 4}, rng);
  auto loss = [&] { return Sum(Square(block.Forward(in))); };
  auto params = block.Parameters();
  params.push_back(in);
  EXPECT_TRUE(CheckGradients(loss, params, 1e-5, 1e-5, 1e-3).ok);
}

TEST(GradCheckTest, TrafficCnn) {
  util::Rng rng(26);
  TrafficCnn cnn(3, rng);
  Tensor in = MakeParam({1, 5, 4}, rng);
  auto loss = [&] { return Sum(Square(cnn.Forward(in))); };
  auto params = cnn.Parameters();
  params.push_back(in);
  EXPECT_TRUE(CheckGradients(loss, params, 1e-5, 1e-5, 1e-3).ok);
}

}  // namespace
}  // namespace deepod::nn
