#include <gtest/gtest.h>

#include <sstream>

#include "io/trip_io.h"
#include "road/city_generator.h"
#include "sim/dataset.h"

namespace deepod::io {
namespace {

road::RoadNetwork SmallNet() {
  road::CityConfig config = road::XianSimConfig();
  config.rows = 5;
  config.cols = 5;
  return road::GenerateCity(config);
}

TEST(NetworkCsvTest, RoundTripPreservesEverything) {
  const road::RoadNetwork net = SmallNet();
  std::stringstream buffer;
  WriteNetworkCsv(net, buffer);
  const road::RoadNetwork restored = ReadNetworkCsv(buffer);
  ASSERT_EQ(restored.num_vertices(), net.num_vertices());
  ASSERT_EQ(restored.num_segments(), net.num_segments());
  for (size_t v = 0; v < net.num_vertices(); ++v) {
    EXPECT_NEAR(restored.vertex(v).pos.x, net.vertex(v).pos.x, 1e-6);
    EXPECT_NEAR(restored.vertex(v).pos.y, net.vertex(v).pos.y, 1e-6);
  }
  for (size_t s = 0; s < net.num_segments(); ++s) {
    EXPECT_EQ(restored.segment(s).from, net.segment(s).from);
    EXPECT_EQ(restored.segment(s).to, net.segment(s).to);
    EXPECT_NEAR(restored.segment(s).length, net.segment(s).length, 1e-6);
    EXPECT_NEAR(restored.segment(s).free_flow_speed,
                net.segment(s).free_flow_speed, 1e-6);
    EXPECT_EQ(restored.segment(s).road_class, net.segment(s).road_class);
  }
  EXPECT_TRUE(restored.finalized());
}

TEST(NetworkCsvTest, RejectsMalformedInput) {
  std::stringstream bad1("not-a-section\n");
  EXPECT_THROW(ReadNetworkCsv(bad1), std::runtime_error);
  std::stringstream bad2("vertices\nid,x,y\n0,1\nsegments\nh\n");
  EXPECT_THROW(ReadNetworkCsv(bad2), std::runtime_error);
}

TEST(TripsCsvTest, RoundTripPreservesTripsAndRoutes) {
  sim::DatasetConfig config;
  config.city = road::XianSimConfig();
  config.city.rows = 5;
  config.city.cols = 5;
  config.trips_per_day = 10;
  config.num_days = 6;
  const sim::Dataset ds = sim::BuildDataset(config);

  std::stringstream buffer;
  WriteTripsCsv(ds.train, buffer);
  const auto restored = ReadTripsCsv(ds.network, buffer);
  ASSERT_EQ(restored.size(), ds.train.size());
  for (size_t i = 0; i < restored.size(); ++i) {
    const auto& a = ds.train[i];
    const auto& b = restored[i];
    EXPECT_NEAR(a.od.departure_time, b.od.departure_time, 1e-6);
    EXPECT_NEAR(a.travel_time, b.travel_time, 1e-6);
    EXPECT_EQ(a.od.weather_type, b.od.weather_type);
    ASSERT_EQ(a.trajectory.path.size(), b.trajectory.path.size());
    for (size_t e = 0; e < a.trajectory.path.size(); ++e) {
      EXPECT_EQ(a.trajectory.path[e].segment_id,
                b.trajectory.path[e].segment_id);
      EXPECT_NEAR(a.trajectory.path[e].enter, b.trajectory.path[e].enter, 1e-6);
    }
    // The re-derived matched OD representation agrees with the original up
    // to carriageway direction: a bare point projects identically onto both
    // directions of a two-way street, so Nearest may pick the reverse
    // segment with the complementary ratio.
    if (a.od.origin_segment == b.od.origin_segment) {
      EXPECT_NEAR(a.od.origin_ratio, b.od.origin_ratio, 1e-6);
    } else {
      EXPECT_EQ(ds.network.ReverseSegment(a.od.origin_segment),
                b.od.origin_segment);
      EXPECT_NEAR(a.od.origin_ratio, 1.0 - b.od.origin_ratio, 1e-3);
    }
  }
}

TEST(TripsCsvTest, OdOnlyRecordsHaveEmptyRoutes) {
  sim::DatasetConfig config;
  config.city = road::XianSimConfig();
  config.city.rows = 5;
  config.city.cols = 5;
  config.trips_per_day = 10;
  config.num_days = 6;
  const sim::Dataset ds = sim::BuildDataset(config);

  std::stringstream buffer;
  WriteTripsCsv(ds.test, buffer);  // test records carry no trajectory
  const auto restored = ReadTripsCsv(ds.network, buffer);
  ASSERT_EQ(restored.size(), ds.test.size());
  for (const auto& trip : restored) {
    EXPECT_TRUE(trip.trajectory.empty());
    EXPECT_GT(trip.travel_time, 0.0);
  }
}

TEST(TripsCsvTest, RejectsBadRows) {
  const road::RoadNetwork net = SmallNet();
  std::stringstream bad1("header\n1,2,3\n");
  EXPECT_THROW(ReadTripsCsv(net, bad1), std::runtime_error);
  std::stringstream bad2(
      "header\n0,0,0,100,100,0,60,999999:0:10\n");  // segment out of range
  EXPECT_THROW(ReadTripsCsv(net, bad2), std::runtime_error);
  std::stringstream bad3("header\n0,0,abc,100,100,0,60,\n");
  EXPECT_THROW(ReadTripsCsv(net, bad3), std::runtime_error);
}

}  // namespace
}  // namespace deepod::io
