// Network front-end contracts (DESIGN.md "Network serving"):
//  - the frame codec round-trips requests/responses bit-for-bit and turns
//    malformed payloads into typed statuses (with the request id recovered
//    whenever the truncated payload still carries it);
//  - TokenBucket and AdmissionQueue are deterministic: quotas, queue
//    capacity, strict priority order, deadline-infeasible shedding and the
//    draining handshake all behave exactly as specified;
//  - EtaService::TrySubmit bounds the producer wait (the Submit fix) and
//    EstimateBatch matches Estimate;
//  - a live DeepOdServer answers valid requests with the service's exact
//    numbers, answers every protocol error with a typed frame while
//    keeping the connection usable, sheds over the wire with retry-after
//    hints, serves its obs registry through a stats frame, and answers
//    every in-flight request across a graceful shutdown.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "core/deepod_model.h"
#include "serve/eta_service.h"
#include "serve/server/admission.h"
#include "serve/server/frame.h"
#include "serve/server/loadgen.h"
#include "serve/server/server.h"
#include "sim/dataset.h"

namespace deepod {
namespace {

using namespace serve::net;

// --- Frame codec ------------------------------------------------------------

RequestFrame SampleRequest() {
  RequestFrame frame;
  frame.request_id = 0x0123456789abcdefull;
  frame.network_id = 5;  // ignored by single-city servers, routed by fleets
  frame.tenant_id = 42;
  frame.priority = 2;
  frame.deadline_ms = 1500;
  frame.od.origin_segment = 7;
  frame.od.dest_segment = 31;
  frame.od.origin_ratio = 0.125;
  frame.od.dest_ratio = 0.875;
  frame.od.departure_time = 10.0 * 86400.0 + 8.0 * 3600.0 + 0.1;
  frame.od.weather_type = 3;
  return frame;
}

TEST(FrameCodec, RequestRoundTripsBitForBit) {
  const RequestFrame frame = SampleRequest();
  const std::vector<uint8_t> wire = EncodeRequestFrame(frame);
  ASSERT_EQ(wire.size(), 4 + kRequestPayloadBytes);
  RequestFrame back;
  ASSERT_EQ(DecodeRequestPayload(wire.data() + 4, wire.size() - 4, &back),
            Status::kOk);
  EXPECT_EQ(back.request_id, frame.request_id);
  EXPECT_EQ(back.network_id, frame.network_id);
  EXPECT_EQ(back.tenant_id, frame.tenant_id);
  EXPECT_EQ(back.priority, frame.priority);
  EXPECT_EQ(back.deadline_ms, frame.deadline_ms);
  EXPECT_EQ(back.od.origin_segment, frame.od.origin_segment);
  EXPECT_EQ(back.od.dest_segment, frame.od.dest_segment);
  EXPECT_EQ(std::memcmp(&back.od.origin_ratio, &frame.od.origin_ratio,
                        sizeof(double)),
            0);
  EXPECT_EQ(std::memcmp(&back.od.departure_time, &frame.od.departure_time,
                        sizeof(double)),
            0);
  EXPECT_EQ(back.od.weather_type, frame.od.weather_type);
}

TEST(FrameCodec, NegativeDeadlineSurvivesTheWire) {
  RequestFrame frame = SampleRequest();
  frame.deadline_ms = -7;
  const std::vector<uint8_t> wire = EncodeRequestFrame(frame);
  RequestFrame back;
  ASSERT_EQ(DecodeRequestPayload(wire.data() + 4, wire.size() - 4, &back),
            Status::kOk);
  EXPECT_EQ(back.deadline_ms, -7);
}

TEST(FrameCodec, ResponseRoundTripsBitForBit) {
  ResponseFrame frame;
  frame.request_id = 99;
  frame.status = Status::kShedQuota;
  frame.estimator = Estimator::kLinkMean;
  frame.retry_after_ms = 250;
  frame.eta_seconds = 123.456789;
  const std::vector<uint8_t> wire = EncodeResponseFrame(frame);
  ASSERT_EQ(wire.size(), 4 + kResponsePayloadBytes);
  ResponseFrame back;
  ASSERT_TRUE(DecodeResponsePayload(wire.data() + 4, wire.size() - 4, &back));
  EXPECT_EQ(back.request_id, frame.request_id);
  EXPECT_EQ(back.status, frame.status);
  EXPECT_EQ(back.estimator, frame.estimator);
  EXPECT_EQ(back.retry_after_ms, frame.retry_after_ms);
  EXPECT_EQ(
      std::memcmp(&back.eta_seconds, &frame.eta_seconds, sizeof(double)), 0);
}

TEST(FrameCodec, V1SizedRequestPayloadIsBadFrame) {
  // A v1 client's request is exactly 4 bytes (network_id) shorter; it must
  // decode as kBadFrame — with the id recovered — not as a garbled request.
  const std::vector<uint8_t> wire = EncodeRequestFrame(SampleRequest());
  RequestFrame back;
  EXPECT_EQ(
      DecodeRequestPayload(wire.data() + 4, kRequestPayloadBytes - 4, &back),
      Status::kBadFrame);
  EXPECT_EQ(back.request_id, SampleRequest().request_id);
}

TEST(FrameCodec, TruncatedPayloadRecoversRequestId) {
  const std::vector<uint8_t> wire = EncodeRequestFrame(SampleRequest());
  // Magic + request id survive; everything after is cut off.
  RequestFrame back;
  EXPECT_EQ(DecodeRequestPayload(wire.data() + 4, 12, &back),
            Status::kBadFrame);
  EXPECT_EQ(back.request_id, SampleRequest().request_id);
}

TEST(FrameCodec, TooShortForAnIdIsStillBadFrame) {
  const std::vector<uint8_t> wire = EncodeRequestFrame(SampleRequest());
  RequestFrame back;
  EXPECT_EQ(DecodeRequestPayload(wire.data() + 4, 6, &back),
            Status::kBadFrame);
  EXPECT_EQ(back.request_id, 0u);
}

TEST(FrameCodec, UnknownMagicIsBadMagic) {
  std::vector<uint8_t> wire = EncodeRequestFrame(SampleRequest());
  wire[4] ^= 0xff;  // corrupt the magic, keep the length
  RequestFrame back;
  EXPECT_EQ(DecodeRequestPayload(wire.data() + 4, wire.size() - 4, &back),
            Status::kBadMagic);
}

// --- TokenBucket ------------------------------------------------------------

TEST(TokenBucket, RateZeroIsAHardCap) {
  TokenBucket bucket(0.0, 2.0);
  EXPECT_TRUE(bucket.TryTake(0.0));
  EXPECT_TRUE(bucket.TryTake(100.0));
  EXPECT_FALSE(bucket.TryTake(1e6));  // never refills
  EXPECT_GT(bucket.SecondsUntilNextToken(1e6), 3599.0);
}

TEST(TokenBucket, RefillsAtTheConfiguredRate) {
  TokenBucket bucket(10.0, 1.0);  // one token per 100ms, burst 1
  EXPECT_TRUE(bucket.TryTake(0.0));
  EXPECT_FALSE(bucket.TryTake(0.05));
  EXPECT_NEAR(bucket.SecondsUntilNextToken(0.05), 0.05, 1e-9);
  EXPECT_TRUE(bucket.TryTake(0.11));
}

// --- AdmissionQueue ---------------------------------------------------------

AdmittedRequest MakeAdmitted(uint8_t priority, int32_t deadline_ms = 0,
                             uint32_t tenant_id = 0) {
  AdmittedRequest request;
  request.frame = SampleRequest();
  request.frame.priority = priority;
  request.frame.deadline_ms = deadline_ms;
  request.frame.tenant_id = tenant_id;
  request.arrival = std::chrono::steady_clock::now();
  request.deadline =
      deadline_ms > 0
          ? request.arrival + std::chrono::milliseconds(deadline_ms)
          : std::chrono::steady_clock::time_point::max();
  request.respond = [](const ResponseFrame&) {};
  return request;
}

TEST(AdmissionQueue, ShedsAtCapacityWithARetryHint) {
  AdmissionOptions options;
  options.queue_capacity = 2;
  AdmissionQueue queue(options);
  EXPECT_EQ(queue.Offer(MakeAdmitted(1)).status, Status::kOk);
  EXPECT_EQ(queue.Offer(MakeAdmitted(1)).status, Status::kOk);
  const AdmitDecision shed = queue.Offer(MakeAdmitted(1));
  EXPECT_EQ(shed.status, Status::kShedQueueFull);
  EXPECT_GE(shed.retry_after_ms, 1u);
  EXPECT_EQ(queue.Depth(), 2u);
}

TEST(AdmissionQueue, TenantQuotaAndUnknownTenant) {
  AdmissionOptions options;
  options.num_tenants = 1;
  options.tenant_rate = 0.0;  // hard cap at the burst
  options.tenant_burst = 2.0;
  AdmissionQueue queue(options);
  EXPECT_EQ(queue.Offer(MakeAdmitted(1)).status, Status::kOk);
  EXPECT_EQ(queue.Offer(MakeAdmitted(1)).status, Status::kOk);
  const AdmitDecision shed = queue.Offer(MakeAdmitted(1));
  EXPECT_EQ(shed.status, Status::kShedQuota);
  EXPECT_GE(shed.retry_after_ms, 1u);
  EXPECT_EQ(queue.Offer(MakeAdmitted(1, 0, /*tenant_id=*/5)).status,
            Status::kUnknownTenant);
}

TEST(AdmissionQueue, PopsInStrictPriorityOrder) {
  AdmissionQueue queue(AdmissionOptions{});
  EXPECT_EQ(queue.Offer(MakeAdmitted(2)).status, Status::kOk);
  EXPECT_EQ(queue.Offer(MakeAdmitted(0)).status, Status::kOk);
  EXPECT_EQ(queue.Offer(MakeAdmitted(1)).status, Status::kOk);
  std::vector<AdmittedRequest> batch;
  ASSERT_TRUE(queue.PopBatch(8, &batch));
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].frame.priority, 0);
  EXPECT_EQ(batch[1].frame.priority, 1);
  EXPECT_EQ(batch[2].frame.priority, 2);
}

TEST(AdmissionQueue, ShedsDeadlinesTheBacklogCannotMeet) {
  AdmissionQueue queue(AdmissionOptions{});
  // Executor feedback: one second per request. With one request already
  // queued, a 10ms deadline is infeasible; no deadline is always feasible.
  queue.RecordServiceTime(1.0);
  EXPECT_DOUBLE_EQ(queue.EwmaServiceSeconds(), 1.0);
  EXPECT_EQ(queue.Offer(MakeAdmitted(1)).status, Status::kOk);
  const AdmitDecision shed = queue.Offer(MakeAdmitted(1, /*deadline_ms=*/10));
  EXPECT_EQ(shed.status, Status::kShedDeadline);
  EXPECT_GE(shed.retry_after_ms, 1u);
  EXPECT_EQ(queue.Offer(MakeAdmitted(1, /*deadline_ms=*/0)).status,
            Status::kOk);
}

TEST(AdmissionQueue, DrainingAnswersShuttingDownAndEmptiesTheBacklog) {
  AdmissionQueue queue(AdmissionOptions{});
  EXPECT_EQ(queue.Offer(MakeAdmitted(1)).status, Status::kOk);
  EXPECT_EQ(queue.Offer(MakeAdmitted(0)).status, Status::kOk);
  queue.SetDraining();
  EXPECT_EQ(queue.Offer(MakeAdmitted(1)).status, Status::kShuttingDown);
  std::vector<AdmittedRequest> batch;
  EXPECT_TRUE(queue.PopBatch(1, &batch));  // backlog still drains
  EXPECT_TRUE(queue.PopBatch(1, &batch));
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_FALSE(queue.PopBatch(1, &batch));  // drained + empty -> done
}

TEST(AdmissionQueue, EwmaSmoothsServiceTimes) {
  AdmissionQueue queue(AdmissionOptions{});
  queue.RecordServiceTime(1.0);
  queue.RecordServiceTime(2.0);  // 0.8 * 1.0 + 0.2 * 2.0
  EXPECT_NEAR(queue.EwmaServiceSeconds(), 1.2, 1e-12);
}

// --- EtaService: TrySubmit + EstimateBatch ----------------------------------

const sim::Dataset& TinyDataset() {
  static const sim::Dataset* dataset = [] {
    sim::DatasetConfig config;
    config.city = road::XianSimConfig();
    config.city.rows = 6;
    config.city.cols = 6;
    config.trips_per_day = 12;
    config.num_days = 15;
    config.seed = 23;
    return new sim::Dataset(sim::BuildDataset(config));
  }();
  return *dataset;
}

core::DeepOdModel& TinyInferenceModel() {
  static core::DeepOdModel* model = [] {
    core::DeepOdConfig config = core::DeepOdConfig().Scaled(16);
    config.epochs = 1;
    config.batch_size = 8;
    auto* m = new core::DeepOdModel(config, TinyDataset());
    m->SetTraining(false);
    return m;
  }();
  return *model;
}

std::vector<traj::OdInput> SampleOds(size_t n) {
  const auto& trips = TinyDataset().test.empty() ? TinyDataset().train
                                                 : TinyDataset().test;
  std::vector<traj::OdInput> ods;
  for (size_t i = 0; i < n; ++i) {
    traj::OdInput od = trips[i % trips.size()].od;
    od.departure_time = 10.0 * 86400.0 + 8.0 * 3600.0 + 60.0 * double(i);
    ods.push_back(od);
  }
  return ods;
}

TEST(EtaServiceTrySubmit, TimesOutInsteadOfBlockingForever) {
  serve::EtaServiceOptions options;
  options.queue_capacity = 1;
  serve::EtaService service(TinyInferenceModel(), options);
  service.PauseDispatcherForTest(true);
  const auto ods = SampleOds(2);
  auto first = service.TrySubmit(ods[0], std::chrono::milliseconds(50));
  ASSERT_TRUE(first.has_value());  // fills the queue
  const auto t0 = std::chrono::steady_clock::now();
  auto second = service.TrySubmit(ods[1], std::chrono::milliseconds(50));
  EXPECT_FALSE(second.has_value());  // bounded wait, not a deadlock
  EXPECT_GE(std::chrono::steady_clock::now() - t0,
            std::chrono::milliseconds(40));
  service.PauseDispatcherForTest(false);
  EXPECT_EQ(first->get(), service.Estimate(ods[0]));
}

TEST(EtaServiceEstimateBatch, MatchesEstimate) {
  serve::EtaService batched(TinyInferenceModel(), serve::EtaServiceOptions{});
  serve::EtaService single(TinyInferenceModel(), serve::EtaServiceOptions{});
  const auto ods = SampleOds(16);
  const std::vector<double> answers =
      batched.EstimateBatch({ods.data(), ods.size()});
  ASSERT_EQ(answers.size(), ods.size());
  for (size_t i = 0; i < ods.size(); ++i) {
    EXPECT_EQ(answers[i], single.Estimate(ods[i])) << "query " << i;
  }
  // Second pass answers from the cache with the same numbers.
  const std::vector<double> again =
      batched.EstimateBatch({ods.data(), ods.size()});
  EXPECT_EQ(again, answers);
}

// --- Live server over a real socket -----------------------------------------

class ServerTest : public ::testing::Test {
 protected:
  // Starts a server with `mutate` applied to the default options and
  // connects a client to it.
  void StartServer(void (*mutate)(ServerOptions*) = nullptr) {
    serve::EtaServiceOptions service_options;
    service_ = std::make_unique<serve::EtaService>(TinyInferenceModel(),
                                                   service_options);
    ServerOptions options;
    options.num_segments = TinyDataset().network.num_segments();
    if (mutate != nullptr) mutate(&options);
    server_ = std::make_unique<DeepOdServer>(*service_, options);
    server_->Start();
    ASSERT_TRUE(client_.Connect("127.0.0.1", server_->port()));
  }

  // Sends a valid request and expects the service's exact answer.
  void ExpectOkRoundTrip(uint64_t request_id) {
    const auto ods = SampleOds(1);
    RequestFrame request;
    request.request_id = request_id;
    request.od = ods[0];
    ASSERT_TRUE(client_.Send(request));
    ResponseFrame response;
    ASSERT_TRUE(client_.ReadResponse(&response));
    EXPECT_EQ(response.request_id, request_id);
    EXPECT_EQ(response.status, Status::kOk);
    EXPECT_EQ(response.eta_seconds, service_->Estimate(ods[0]));
  }

  // Sends raw wire bytes (length prefix included).
  void SendRaw(const std::vector<uint8_t>& wire) {
    ASSERT_TRUE(WriteAll(client_.fd(), wire.data(), wire.size()));
  }

  std::unique_ptr<serve::EtaService> service_;
  std::unique_ptr<DeepOdServer> server_;
  Client client_;
};

TEST_F(ServerTest, AnswersWithTheServiceNumbers) {
  StartServer();
  ExpectOkRoundTrip(1);
  ExpectOkRoundTrip(2);  // cache-hit path, same contract
}

TEST_F(ServerTest, TruncatedFrameGetsTypedErrorAndConnectionSurvives) {
  StartServer();
  std::vector<uint8_t> wire = EncodeRequestFrame(SampleRequest());
  // Re-declare the length as 12 and send only magic + id.
  std::vector<uint8_t> truncated(wire.begin(), wire.begin() + 4 + 12);
  truncated[0] = 12;
  truncated[1] = truncated[2] = truncated[3] = 0;
  SendRaw(truncated);
  ResponseFrame response;
  ASSERT_TRUE(client_.ReadResponse(&response));
  EXPECT_EQ(response.status, Status::kBadFrame);
  EXPECT_EQ(response.request_id, SampleRequest().request_id);
  ExpectOkRoundTrip(3);
}

TEST_F(ServerTest, OversizedFrameGetsTypedErrorAndConnectionSurvives) {
  StartServer();
  const uint32_t declared = kMaxInboundFrameBytes + 1000;
  std::vector<uint8_t> wire(4 + declared, 0xab);
  wire[0] = static_cast<uint8_t>(declared & 0xff);
  wire[1] = static_cast<uint8_t>((declared >> 8) & 0xff);
  wire[2] = static_cast<uint8_t>((declared >> 16) & 0xff);
  wire[3] = static_cast<uint8_t>((declared >> 24) & 0xff);
  SendRaw(wire);
  ResponseFrame response;
  ASSERT_TRUE(client_.ReadResponse(&response));
  EXPECT_EQ(response.status, Status::kFrameTooLarge);
  ExpectOkRoundTrip(4);
}

TEST_F(ServerTest, BadMagicGetsTypedErrorAndConnectionSurvives) {
  StartServer();
  std::vector<uint8_t> wire = EncodeRequestFrame(SampleRequest());
  wire[4] ^= 0xff;
  SendRaw(wire);
  ResponseFrame response;
  ASSERT_TRUE(client_.ReadResponse(&response));
  EXPECT_EQ(response.status, Status::kBadMagic);
  ExpectOkRoundTrip(5);
}

TEST_F(ServerTest, ExpiredDeadlineIsAnsweredWithoutQueueing) {
  StartServer();
  RequestFrame request = SampleRequest();
  request.request_id = 6;
  request.od = SampleOds(1)[0];
  request.deadline_ms = -1;
  ASSERT_TRUE(client_.Send(request));
  ResponseFrame response;
  ASSERT_TRUE(client_.ReadResponse(&response));
  EXPECT_EQ(response.request_id, 6u);
  EXPECT_EQ(response.status, Status::kDeadlineExpired);
  ExpectOkRoundTrip(7);
}

TEST_F(ServerTest, OutOfRangeSegmentIsInvalid) {
  StartServer();
  RequestFrame request = SampleRequest();
  request.request_id = 8;
  request.od = SampleOds(1)[0];
  request.od.dest_segment = 1u << 30;  // far outside the tiny network
  ASSERT_TRUE(client_.Send(request));
  ResponseFrame response;
  ASSERT_TRUE(client_.ReadResponse(&response));
  EXPECT_EQ(response.status, Status::kInvalidRequest);
  ExpectOkRoundTrip(9);
}

TEST_F(ServerTest, UnknownTenantIsRejected) {
  StartServer(+[](ServerOptions* options) {
    options->admission.num_tenants = 2;
  });
  RequestFrame request = SampleRequest();
  request.request_id = 10;
  request.od = SampleOds(1)[0];
  request.tenant_id = 7;
  ASSERT_TRUE(client_.Send(request));
  ResponseFrame response;
  ASSERT_TRUE(client_.ReadResponse(&response));
  EXPECT_EQ(response.status, Status::kUnknownTenant);
  request.request_id = 11;
  request.tenant_id = 1;
  ASSERT_TRUE(client_.Send(request));
  ASSERT_TRUE(client_.ReadResponse(&response));
  EXPECT_EQ(response.status, Status::kOk);
}

TEST_F(ServerTest, QuotaShedsOverTheWireWithARetryHint) {
  StartServer(+[](ServerOptions* options) {
    options->admission.num_tenants = 1;
    options->admission.tenant_rate = 0.0;  // hard cap
    options->admission.tenant_burst = 2.0;
  });
  const auto ods = SampleOds(1);
  uint64_t shed_count = 0;
  for (uint64_t id = 1; id <= 3; ++id) {
    RequestFrame request;
    request.request_id = id;
    request.od = ods[0];
    ASSERT_TRUE(client_.Send(request));
    ResponseFrame response;
    ASSERT_TRUE(client_.ReadResponse(&response));
    if (response.status == Status::kShedQuota) {
      ++shed_count;
      EXPECT_GE(response.retry_after_ms, 1u);
    } else {
      EXPECT_EQ(response.status, Status::kOk);
    }
  }
  EXPECT_EQ(shed_count, 1u);
}

TEST_F(ServerTest, GracefulShutdownAnswersEveryPipelinedRequest) {
  StartServer();
  const auto ods = SampleOds(8);
  for (uint64_t id = 0; id < 8; ++id) {
    RequestFrame request;
    request.request_id = id + 1;
    request.od = ods[id];
    ASSERT_TRUE(client_.Send(request));
  }
  std::thread shutdown([this] { server_->Shutdown(); });
  size_t answered = 0;
  ResponseFrame response;
  while (answered < 8 && client_.ReadResponse(&response)) {
    // Every pipelined request is answered: either served before the drain
    // finished or refused with kShuttingDown — never silently dropped.
    EXPECT_TRUE(response.status == Status::kOk ||
                response.status == Status::kShuttingDown)
        << StatusName(response.status);
    ++answered;
  }
  shutdown.join();
  EXPECT_EQ(answered, 8u);
}

TEST_F(ServerTest, StatsFrameServesTheObsRegistry) {
  StartServer();
  ExpectOkRoundTrip(12);
  const std::string json = client_.FetchStatsJson();
  EXPECT_NE(json.find("server/requests"), std::string::npos);
  EXPECT_NE(json.find("server/admitted"), std::string::npos);
  // The wrapped service's registry rides along.
  EXPECT_NE(json.find("serve/"), std::string::npos);
}

TEST_F(ServerTest, LoadgenDrivesTheServerWithoutLosses) {
  StartServer(+[](ServerOptions* options) { options->executors = 2; });
  LoadgenOptions load;
  load.port = server_->port();
  load.qps = 100.0;
  load.duration_seconds = 0.5;
  load.connections = 2;
  load.num_segments = TinyDataset().network.num_segments();
  load.fetch_server_stats = true;
  const LoadgenReport report = RunLoadgen(load);
  EXPECT_GT(report.sent, 0u);
  EXPECT_EQ(report.lost, 0u);
  EXPECT_EQ(report.errors, 0u);
  EXPECT_EQ(report.ok + report.shed + report.deadline_expired, report.sent);
  EXPECT_NE(report.server_stats_json.find("server/completed"),
            std::string::npos);
}

}  // namespace
}  // namespace deepod
