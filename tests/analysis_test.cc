#include <gtest/gtest.h>

#include <cmath>

#include "analysis/metrics.h"
#include "analysis/tsne.h"
#include "util/rng.h"

namespace deepod::analysis {
namespace {

TEST(MetricsTest, KnownValues) {
  const std::vector<double> truth = {100, 200, 400};
  const std::vector<double> pred = {110, 180, 400};
  EXPECT_NEAR(Mae(truth, pred), 10.0, 1e-12);
  // MAPE = mean(10/100, 20/200, 0) * 100 = (0.1 + 0.1 + 0) / 3 * 100.
  EXPECT_NEAR(Mape(truth, pred), 100.0 * 0.2 / 3.0, 1e-9);
  // MARE = (10 + 20 + 0) / 700 * 100.
  EXPECT_NEAR(Mare(truth, pred), 100.0 * 30.0 / 700.0, 1e-9);
}

TEST(MetricsTest, PerfectPredictionIsZero) {
  const std::vector<double> y = {5, 6, 7};
  const auto m = AllMetrics(y, y);
  EXPECT_DOUBLE_EQ(m.mae, 0.0);
  EXPECT_DOUBLE_EQ(m.mape, 0.0);
  EXPECT_DOUBLE_EQ(m.mare, 0.0);
}

TEST(MetricsTest, MapeVsMareRelationship) {
  // The paper's observation (6) in §6.4.2: MAPE > MARE when errors
  // concentrate on short trips.
  const std::vector<double> truth = {10, 1000};
  const std::vector<double> pred = {20, 1000};  // error only on the short trip
  EXPECT_GT(Mape(truth, pred), Mare(truth, pred));
}

TEST(MetricsTest, InputValidation) {
  EXPECT_THROW(Mae({1}, {1, 2}), std::invalid_argument);
  EXPECT_THROW(Mae({}, {}), std::invalid_argument);
  EXPECT_THROW(Mape({0.0}, {1.0}), std::invalid_argument);
}

TEST(MetricsTest, PerTripApe) {
  const auto ape = PerTripApe({100, 200}, {150, 100});
  ASSERT_EQ(ape.size(), 2u);
  EXPECT_NEAR(ape[0], 50.0, 1e-12);
  EXPECT_NEAR(ape[1], 50.0, 1e-12);
}

TEST(TsneTest, AffinitiesRowNormalised) {
  util::Rng rng(1);
  std::vector<std::vector<double>> points(20, std::vector<double>(3));
  for (auto& p : points) {
    for (double& v : p) v = rng.Normal();
  }
  const auto p = PerplexityCalibratedAffinities(points, 5.0);
  for (size_t i = 0; i < p.size(); ++i) {
    double row = 0.0;
    for (size_t j = 0; j < p.size(); ++j) {
      EXPECT_GE(p[i][j], 0.0);
      row += p[i][j];
    }
    EXPECT_NEAR(row, 1.0, 1e-6);
    EXPECT_DOUBLE_EQ(p[i][i], 0.0);
  }
}

TEST(TsneTest, SeparatesTwoClusters) {
  // Two well-separated Gaussian blobs in 5-D must map to two separated
  // groups on the line.
  util::Rng rng(2);
  std::vector<std::vector<double>> points;
  for (int c = 0; c < 2; ++c) {
    for (int i = 0; i < 15; ++i) {
      std::vector<double> p(5);
      for (double& v : p) v = rng.Normal(c * 20.0, 1.0);
      points.push_back(p);
    }
  }
  TsneOptions options;
  options.iterations = 250;
  options.seed = 4;
  const auto y = Tsne1d(points, options);
  ASSERT_EQ(y.size(), 30u);
  double mean0 = 0.0, mean1 = 0.0;
  for (int i = 0; i < 15; ++i) mean0 += y[static_cast<size_t>(i)];
  for (int i = 15; i < 30; ++i) mean1 += y[static_cast<size_t>(i)];
  mean0 /= 15.0;
  mean1 /= 15.0;
  // Within-cluster spread much smaller than between-cluster separation.
  double spread = 0.0;
  for (int i = 0; i < 15; ++i) spread += std::fabs(y[static_cast<size_t>(i)] - mean0);
  for (int i = 15; i < 30; ++i) spread += std::fabs(y[static_cast<size_t>(i)] - mean1);
  spread /= 30.0;
  EXPECT_GT(std::fabs(mean0 - mean1), 3.0 * spread);
}

TEST(TsneTest, OutputCentred) {
  util::Rng rng(3);
  std::vector<std::vector<double>> points(12, std::vector<double>(2));
  for (auto& p : points) {
    for (double& v : p) v = rng.Normal();
  }
  TsneOptions options;
  options.iterations = 50;
  const auto y = Tsne1d(points, options);
  double mean = 0.0;
  for (double v : y) mean += v;
  EXPECT_NEAR(mean / static_cast<double>(y.size()), 0.0, 1e-6);
}

TEST(TsneTest, TooFewPointsThrows) {
  EXPECT_THROW(Tsne1d({{1.0}}), std::invalid_argument);
}

}  // namespace
}  // namespace deepod::analysis
