#include <gtest/gtest.h>

#include "temporal/temporal_graph.h"
#include "temporal/time_slot.h"

namespace deepod::temporal {
namespace {

TEST(TimeSlotTest, SlotAndRemainderRoundTrip) {
  const TimeSlotter slotter(0.0, 300.0);
  // t = slot * Δt + remainder must reconstruct exactly (Eq. 2-3).
  for (double t : {0.0, 1.0, 299.9, 300.0, 12345.6, 86400.0, 604800.5}) {
    const int64_t slot = slotter.Slot(t);
    const double rem = slotter.Remainder(t);
    EXPECT_GE(rem, 0.0);
    EXPECT_LT(rem, 300.0);
    EXPECT_NEAR(slotter.SlotStart(slot) + rem, t, 1e-9);
  }
}

TEST(TimeSlotTest, FiveMinuteDayHas288Slots) {
  const TimeSlotter slotter(0.0, 300.0);
  EXPECT_EQ(slotter.slots_per_day(), 288);
  EXPECT_EQ(slotter.slots_per_week(), 2016);  // the paper's 288 x 7
}

TEST(TimeSlotTest, PaperSlotSizesDivideDay) {
  for (double minutes : {1.0, 5.0, 10.0, 30.0, 60.0}) {
    const TimeSlotter slotter(0.0, minutes * 60.0);
    EXPECT_EQ(slotter.slots_per_day() * static_cast<int64_t>(minutes * 60.0),
              86400);
  }
}

TEST(TimeSlotTest, NonDividingSlotSizeThrows) {
  EXPECT_THROW(TimeSlotter(0.0, 7.0 * 60.0), std::invalid_argument);
  EXPECT_THROW(TimeSlotter(0.0, -5.0), std::invalid_argument);
}

TEST(TimeSlotTest, BeforeBaseThrows) {
  const TimeSlotter slotter(100.0, 300.0);
  EXPECT_THROW(slotter.Slot(50.0), std::invalid_argument);
}

TEST(TimeSlotTest, WeeklyNodeWrapsWeeks) {
  const TimeSlotter slotter(0.0, 300.0);
  const int64_t slot_in_week1 = slotter.Slot(8.0 * kSecondsPerDay + 100.0);
  const int64_t slot_in_week2 = slotter.Slot(15.0 * kSecondsPerDay + 100.0);
  EXPECT_EQ(slotter.WeeklyNode(slot_in_week1), slotter.WeeklyNode(slot_in_week2));
  EXPECT_LT(slotter.WeeklyNode(slot_in_week1), slotter.slots_per_week());
}

TEST(TimeSlotTest, DailyNodeWrapsDays) {
  const TimeSlotter slotter(0.0, 300.0);
  const int64_t monday_9am = slotter.Slot(9.0 * kSecondsPerHour);
  const int64_t friday_9am =
      slotter.Slot(4.0 * kSecondsPerDay + 9.0 * kSecondsPerHour);
  EXPECT_EQ(slotter.DailyNode(monday_9am), slotter.DailyNode(friday_9am));
}

TEST(TimeSlotTest, IntervalSlotCountMatchesEq4) {
  const TimeSlotter slotter(0.0, 300.0);
  EXPECT_EQ(slotter.IntervalSlotCount(0.0, 10.0), 1);     // same slot
  EXPECT_EQ(slotter.IntervalSlotCount(290.0, 310.0), 2);  // crosses boundary
  EXPECT_EQ(slotter.IntervalSlotCount(0.0, 900.0), 4);
  EXPECT_THROW(slotter.IntervalSlotCount(10.0, 5.0), std::invalid_argument);
}

TEST(TemporalGraphTest, WeeklyGraphShape) {
  const TimeSlotter slotter(0.0, 300.0);
  const auto graph = BuildWeeklyTemporalGraph(slotter);
  EXPECT_EQ(graph.num_nodes(), 2016u);
  // Each node has exactly two outgoing arcs: next slot + same slot next day.
  EXPECT_EQ(graph.num_arcs(), 2u * 2016u);
  EXPECT_TRUE(graph.HasArc(0, 1));
  EXPECT_TRUE(graph.HasArc(0, 288));
  // Weekly wrap-around: the last slot links back to slot 0.
  EXPECT_TRUE(graph.HasArc(2015, 0));
  // Sunday slot s links to Monday slot s (day wrap).
  EXPECT_TRUE(graph.HasArc(6 * 288 + 10, 10));
}

TEST(TemporalGraphTest, WeeklyGraphIsDirected) {
  const TimeSlotter slotter(0.0, 3600.0);
  const auto graph = BuildWeeklyTemporalGraph(slotter);
  EXPECT_TRUE(graph.HasArc(0, 1));
  EXPECT_FALSE(graph.HasArc(1, 0));  // §4.2: sequential, hence directed
}

TEST(TemporalGraphTest, DailyGraphShape) {
  const TimeSlotter slotter(0.0, 300.0);
  const auto graph = BuildDailyTemporalGraph(slotter);
  EXPECT_EQ(graph.num_nodes(), 288u);
  EXPECT_EQ(graph.num_arcs(), 288u);
  EXPECT_TRUE(graph.HasArc(287, 0));  // daily cycle
}

TEST(TemporalGraphTest, CoarseSlotsProduceSmallGraph) {
  const TimeSlotter slotter(0.0, 3600.0);  // 1-hour slots
  EXPECT_EQ(BuildWeeklyTemporalGraph(slotter).num_nodes(), 168u);
  EXPECT_EQ(BuildDailyTemporalGraph(slotter).num_nodes(), 24u);
}

}  // namespace
}  // namespace deepod::temporal
