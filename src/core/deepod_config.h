#ifndef DEEPOD_CORE_DEEPOD_CONFIG_H_
#define DEEPOD_CORE_DEEPOD_CONFIG_H_

#include <cstddef>
#include <cstdint>

#include "embed/graph_embedding.h"

namespace deepod::core {

// Ablation switches of §6.4.2 (Table 4) and §6.5 (Table 7).
enum class Ablation {
  kFull,     // DeepOD
  kNoSt,     // N-st: no trajectory encoding (auxiliary task disabled)
  kNoSp,     // N-sp: no spatial (road-segment) encoding
  kNoTp,     // N-tp: no temporal (time-interval/time-slot) encoding
  kNoOther,  // N-other: no external-feature encoding
};

enum class TimeInit {
  kTemporalGraph,  // weekly temporal graph + graph embedding (DeepOD)
  kOneHot,         // T-one: random init instead of graph embedding
  kDailyGraph,     // T-day: one-day temporal graph
  kTimestamp,      // T-stamp: raw timestamp scalar, no slot embedding
};

enum class RoadInit {
  kGraphEmbedding,  // trajectory-weighted edge graph + node2vec (DeepOD)
  kOneHot,          // R-one: random init instead of graph embedding
};

// Hyper-parameters of the DeepOD architecture. Defaults are the paper's
// tuned values (§6.2): d_s = d_t = 64, d_m^1 = 128, d_m^2 = 64, d_h = 128,
// d_m^3 = 128, d_m^4 = d_m^8 = 64, d_m^5 = 128, d_m^6 = 64, d_m^7 = 128,
// d_m^9 = 128, d_traf = 128. Benches scale these down uniformly via
// Scaled() so every experiment finishes on one CPU core.
struct DeepOdConfig {
  // Embedding sizes.
  size_t ds = 64;  // road segment embedding
  size_t dt = 64;  // time slot embedding
  // MLP layer widths (the paper's d_m^i notation).
  size_t dm1 = 128;  // TimeIntervalEncoder hidden
  size_t dm2 = 64;   // TimeIntervalEncoder output (tcode)
  size_t dm3 = 128;  // TrajectoryEncoder hidden
  size_t dm4 = 64;   // TrajectoryEncoder output (stcode); must equal dm8
  size_t dm5 = 128;  // ExternalFeaturesEncoder hidden
  size_t dm6 = 64;   // ExternalFeaturesEncoder output (ocode)
  size_t dm7 = 128;  // MLP1 hidden
  size_t dm8 = 64;   // MLP1 output (code); must equal dm4
  size_t dm9 = 128;  // MLP2 hidden
  size_t dh = 128;   // LSTM hidden state
  size_t dtraf = 128;  // traffic-condition CNN output

  // Temporal discretisation (Def. 4); 5 minutes by default.
  double slot_seconds = 300.0;

  // Loss combination (Algorithm 1): loss = w·auxiliary + (1-w)·main.
  double loss_weight_w = 0.3;

  // Reproduction-scale stabilisation: also pass stcode through M_E and
  // supervise it with the true travel time during training. Algorithm 1
  // grounds only `code`; at the paper's data scale that suffices, but at
  // laptop scale the unanchored stcode can collapse toward a constant and
  // drag code with it through the auxiliary distance. Grounding both sides
  // keeps the trajectory representation informative. Documented in
  // DESIGN.md; switchable off to run the paper's exact loss.
  bool supervise_stcode = true;

  // Optimisation (§6.1): Adam, initial lr 0.01, x0.2 every 2 epochs.
  double learning_rate = 0.01;
  int lr_decay_epochs = 2;
  double lr_decay_factor = 0.2;
  size_t batch_size = 16;
  int epochs = 12;
  // Gradient-norm clip. mainloss is expressed in seconds, so gradient
  // norms scale with the dataset's travel times; the default is a loose
  // safety valve against occasional LSTM spikes, not a tuning knob.
  double grad_clip = 1e4;

  // External-feature CNN input: the speed matrix is average-pooled down to
  // at most this many rows/cols before entering the CNN (keeps per-sample
  // cost bounded on large cities; the paper ran the full matrix on a GPU).
  size_t max_speed_matrix_dim = 8;

  // Ablations.
  Ablation ablation = Ablation::kFull;
  TimeInit time_init = TimeInit::kTemporalGraph;
  RoadInit road_init = RoadInit::kGraphEmbedding;
  embed::EmbedMethod embed_method = embed::EmbedMethod::kNode2Vec;

  uint64_t seed = 7;

  // Worker threads for training and batched prediction. 0 = auto: the
  // DEEPOD_THREADS environment variable if set, otherwise the machine's
  // hardware concurrency. 1 forces the legacy serial code path (whose
  // results are bit-identical to the pre-threading implementation); any
  // fixed value > 1 is deterministic across runs for that value.
  size_t num_threads = 0;

  // Uniformly divides every width by `factor` (minimum 4) — the bench
  // profiles use Scaled(4) so a full table regenerates in minutes.
  DeepOdConfig Scaled(size_t factor) const;
};

}  // namespace deepod::core

#endif  // DEEPOD_CORE_DEEPOD_CONFIG_H_
