#include "core/trainer.h"

#include <cmath>
#include <limits>

#include "nn/ops.h"
#include "nn/serialize.h"
#include "util/rng.h"

namespace deepod::core {

DeepOdTrainer::DeepOdTrainer(DeepOdModel& model, const sim::Dataset& dataset)
    : model_(model),
      dataset_(dataset),
      optimizer_(model.Parameters(), model.config().learning_rate) {}

double DeepOdTrainer::ValidationMae(size_t max_samples) {
  model_.SetTraining(false);
  const size_t n = std::min(max_samples, dataset_.validation.size());
  if (n == 0) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const auto& trip = dataset_.validation[i];
    sum += std::fabs(model_.Predict(trip.od) - trip.travel_time);
  }
  model_.SetTraining(true);
  return sum / static_cast<double>(n);
}

double DeepOdTrainer::Train(const StepCallback& callback, size_t eval_every,
                            size_t max_val_samples) {
  const auto& config = model_.config();
  util::Rng rng(config.seed ^ 0xbadc0ffeull);
  std::vector<size_t> order(dataset_.train.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  model_.SetTraining(true);
  const size_t bs = std::max<size_t>(1, config.batch_size);
  auto params = model_.Parameters();
  std::vector<uint8_t> best_checkpoint;
  double best_val = std::numeric_limits<double>::infinity();
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    // §6.1: learning rate reduced by the decay factor every 2 epochs.
    const double lr =
        config.learning_rate *
        std::pow(config.lr_decay_factor,
                 static_cast<double>(epoch / config.lr_decay_epochs));
    optimizer_.set_learning_rate(lr);
    rng.Shuffle(order);  // Algorithm 1, ModelTrain line 2
    size_t in_batch = 0;
    optimizer_.ZeroGrad();
    for (size_t idx : order) {
      // Per-sample backward accumulates gradients; scaling by 1/bs makes
      // the accumulated gradient the mini-batch mean (Algorithm 1 trains
      // on mini-batches).
      nn::Tensor loss =
          nn::Scale(model_.SampleLoss(dataset_.train[idx]),
                    1.0 / static_cast<double>(bs));
      loss.Backward();
      if (++in_batch == bs) {
        optimizer_.ClipGradNorm(config.grad_clip);
        optimizer_.Step();
        optimizer_.ZeroGrad();
        in_batch = 0;
        ++step_;
        if (callback && step_ % eval_every == 0) {
          callback(step_, ValidationMae(max_val_samples));
        }
      }
    }
    if (in_batch > 0) {
      optimizer_.ClipGradNorm(config.grad_clip);
      optimizer_.Step();
      optimizer_.ZeroGrad();
      ++step_;
    }
    // End-of-epoch validation checkpoint; best epoch is restored below.
    const double epoch_val = ValidationMae(max_val_samples);
    if (epoch_val < best_val) {
      best_val = epoch_val;
      best_checkpoint = nn::SerializeParameters(params);
    }
  }
  if (!best_checkpoint.empty()) {
    nn::DeserializeParameters(best_checkpoint, params);
  }
  model_.SetTraining(false);
  return ValidationMae(max_val_samples);
}

std::vector<double> DeepOdTrainer::PredictAll(
    const std::vector<traj::TripRecord>& trips) {
  model_.SetTraining(false);
  std::vector<double> out;
  out.reserve(trips.size());
  for (const auto& trip : trips) out.push_back(model_.Predict(trip.od));
  return out;
}

}  // namespace deepod::core
