#include "core/trainer.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "nn/ops.h"
#include "nn/serialize.h"
#include "obs/trace.h"
#include "util/rng.h"

namespace deepod::core {

DeepOdTrainer::DeepOdTrainer(DeepOdModel& model, const sim::Dataset& dataset)
    : model_(model),
      dataset_(dataset),
      optimizer_(model.Parameters(), model.config().learning_rate),
      num_threads_(
          util::ThreadPool::ResolveThreadCount(model.config().num_threads)) {
  if (num_threads_ > 1) {
    pool_ = std::make_unique<util::ThreadPool>(num_threads_);
    auto params = model_.Parameters();
    arenas_.reserve(num_threads_);
    for (size_t w = 0; w < num_threads_; ++w) {
      arenas_.emplace_back(std::make_unique<nn::GradArena>(params));
    }
    bn_logs_.resize(num_threads_);
  }
  if (obs::MetricsEnabled()) {
    // Grad-arena occupancy: detached gradient buffers held per worker (the
    // data-parallel path's extra memory footprint vs. serial training).
    size_t param_doubles = 0;
    for (const auto& p : model_.Parameters()) param_doubles += p.size();
    obs::Registry::Global()
        .gauge("trainer/grad_arena_bytes")
        .Set(static_cast<double>(arenas_.size() * param_doubles *
                                 sizeof(double)));
    obs::Registry::Global()
        .gauge("trainer/threads")
        .Set(static_cast<double>(num_threads_));
  }
}

double DeepOdTrainer::ValidationMae(size_t max_samples) {
  OBS_SPAN("trainer/validation");
  model_.SetTraining(false);
  const size_t n = std::min(max_samples, dataset_.validation.size());
  if (n == 0) {
    model_.SetTraining(true);
    return 0.0;
  }
  // Graph-free batched evaluation. The serial path is bit-identical to the
  // historical per-sample Predict loop (PredictBatch's contract); the
  // parallel path keeps the vectorised kernels the data-parallel trainer
  // always used for evaluation.
  std::vector<traj::OdInput> ods(n);
  for (size_t i = 0; i < n; ++i) ods[i] = dataset_.validation[i].od;
  std::vector<double> preds;
  if (pool_ == nullptr) {
    preds = model_.PredictBatch(ods);
  } else {
    nn::KernelModeScope mode_scope(nn::KernelMode::kVector);
    preds = model_.PredictBatch(ods, pool_.get());
  }
  double sum = 0.0;
  if (pool_ == nullptr) {
    for (size_t i = 0; i < n; ++i) {
      sum += std::fabs(preds[i] - dataset_.validation[i].travel_time);
    }
  } else {
    // Merge in chunk order, matching the historical parallel reduction so
    // the result stays stable for a fixed thread count.
    const size_t tasks = std::min(num_threads_, n);
    for (size_t w = 0; w < tasks; ++w) {
      const auto [begin, end] = util::ThreadPool::ChunkRange(n, tasks, w);
      double s = 0.0;
      for (size_t i = begin; i < end; ++i) {
        s += std::fabs(preds[i] - dataset_.validation[i].travel_time);
      }
      sum += s;
    }
  }
  model_.SetTraining(true);
  return sum / static_cast<double>(n);
}

void DeepOdTrainer::AccumulateBatchParallel(const std::vector<size_t>& order,
                                            size_t pos, size_t batch_n,
                                            size_t bs) {
  const size_t tasks = std::min(num_threads_, batch_n);
  obs::Gauge* queue_depth = nullptr;
  if (obs::MetricsEnabled()) {
    queue_depth = &obs::Registry::Global().gauge("trainer/pool/queue_depth");
    queue_depth->Set(static_cast<double>(tasks));
  }
  pool_->ParallelFor(tasks, [&](size_t w) {
    const auto [begin, end] = util::ThreadPool::ChunkRange(batch_n, tasks, w);
    // All shared-parameter gradient writes of this chunk land in arena `w`;
    // BatchNorm running-statistic updates are logged instead of applied.
    // The parallel trainer also opts into the vectorised kernels (the
    // serial num_threads == 1 path never reaches here and stays on the
    // bit-identical default kernels).
    nn::KernelModeScope mode_scope(nn::KernelMode::kVector);
    nn::GradArenaScope arena_scope(arenas_[w].get());
    nn::BnCaptureScope bn_scope(&bn_logs_[w]);
    for (size_t i = begin; i < end; ++i) {
      nn::Tensor loss = nn::Scale(model_.SampleLoss(dataset_.train[order[pos + i]]),
                                  1.0 / static_cast<double>(bs));
      loss.Backward();
    }
  });
  // Merge arenas and replay the deferred BatchNorm updates in chunk order.
  // Chunks are contiguous ascending sample ranges, so the replay applies
  // the running-statistic updates in exactly the serial sample order.
  for (size_t w = 0; w < tasks; ++w) {
    arenas_[w]->MergeIntoParamsAndReset();
    for (const auto& rec : bn_logs_[w]) rec.bn->ApplyMomentumUpdate(rec.mu, rec.var);
    bn_logs_[w].clear();
  }
  if (queue_depth != nullptr) queue_depth->Set(0.0);
}

double DeepOdTrainer::Train(const StepCallback& callback, size_t eval_every,
                            size_t max_val_samples) {
  const auto& config = model_.config();
  util::Rng rng(config.seed ^ 0xbadc0ffeull);
  std::vector<size_t> order(dataset_.train.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  model_.SetTraining(true);
  const size_t bs = std::max<size_t>(1, config.batch_size);
  auto params = model_.Parameters();
  std::vector<uint8_t> best_checkpoint;
  double best_val = std::numeric_limits<double>::infinity();
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    OBS_SPAN("trainer/epoch");
    // §6.1: learning rate reduced by the decay factor every 2 epochs.
    const double lr =
        config.learning_rate *
        std::pow(config.lr_decay_factor,
                 static_cast<double>(epoch / config.lr_decay_epochs));
    optimizer_.set_learning_rate(lr);
    rng.Shuffle(order);  // Algorithm 1, ModelTrain line 2
    optimizer_.ZeroGrad();
    if (pool_ == nullptr) {
      // Legacy serial path (num_threads == 1): kept verbatim so results
      // stay bit-identical to the pre-threading implementation.
      size_t in_batch = 0;
      for (size_t idx : order) {
        {
          OBS_SPAN("trainer/forward_backward");
          // Per-sample backward accumulates gradients; scaling by 1/bs makes
          // the accumulated gradient the mini-batch mean (Algorithm 1 trains
          // on mini-batches).
          nn::Tensor loss =
              nn::Scale(model_.SampleLoss(dataset_.train[idx]),
                        1.0 / static_cast<double>(bs));
          loss.Backward();
        }
        if (++in_batch == bs) {
          {
            OBS_SPAN("trainer/optimizer");
            optimizer_.ClipGradNorm(config.grad_clip);
            optimizer_.Step();
            optimizer_.ZeroGrad();
          }
          in_batch = 0;
          ++step_;
          if (callback && step_ % eval_every == 0) {
            callback(step_, ValidationMae(max_val_samples));
          }
        }
      }
      if (in_batch > 0) {
        OBS_SPAN("trainer/optimizer");
        optimizer_.ClipGradNorm(config.grad_clip);
        optimizer_.Step();
        optimizer_.ZeroGrad();
        ++step_;
      }
    } else {
      // Data-parallel path: each mini-batch fans out over the pool.
      size_t pos = 0;
      while (pos < order.size()) {
        const size_t batch_n = std::min(bs, order.size() - pos);
        {
          OBS_SPAN("trainer/forward_backward");
          AccumulateBatchParallel(order, pos, batch_n, bs);
        }
        {
          OBS_SPAN("trainer/optimizer");
          optimizer_.ClipGradNorm(config.grad_clip);
          optimizer_.Step();
          optimizer_.ZeroGrad();
        }
        ++step_;
        // Mirrors the serial path: the trailing partial batch steps but
        // never fires the callback.
        if (callback && batch_n == bs && step_ % eval_every == 0) {
          callback(step_, ValidationMae(max_val_samples));
        }
        pos += batch_n;
      }
    }
    // End-of-epoch validation checkpoint; best epoch is restored below.
    const double epoch_val = ValidationMae(max_val_samples);
    if (epoch_val < best_val) {
      best_val = epoch_val;
      best_checkpoint = nn::SerializeParameters(params);
    }
  }
  if (!best_checkpoint.empty()) {
    nn::DeserializeParameters(best_checkpoint, params);
  }
  model_.SetTraining(false);
  return ValidationMae(max_val_samples);
}

std::vector<double> DeepOdTrainer::PredictAll(
    const std::vector<traj::TripRecord>& trips) {
  model_.SetTraining(false);
  if (trips.empty()) return {};
  std::vector<traj::OdInput> ods(trips.size());
  for (size_t i = 0; i < trips.size(); ++i) ods[i] = trips[i].od;
  if (pool_ == nullptr) return model_.PredictBatch(ods);
  nn::KernelModeScope mode_scope(nn::KernelMode::kVector);
  return model_.PredictBatch(ods, pool_.get());
}

}  // namespace deepod::core
