#include "core/trainer.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "nn/ops.h"
#include "nn/serialize.h"
#include "obs/trace.h"
#include "util/rng.h"

namespace deepod::core {
namespace {

// Copies every state-dict entry's values into one flat vector (and back).
// Used for the in-memory best-epoch snapshot: unlike the old
// SerializeParameters round-trip this covers buffers (BatchNorm running
// statistics, the time scale) too, so restoring the best epoch no longer
// silently reverts the running statistics to their last-epoch values.
void FlattenState(const nn::StateDict& state, std::vector<double>& out) {
  out.resize(state.NumElements());
  size_t offset = 0;
  for (const auto& e : state.entries()) {
    std::copy_n(e.data, e.size, out.data() + offset);
    offset += e.size;
  }
}

void UnflattenState(const std::vector<double>& flat, const nn::StateDict& state) {
  size_t offset = 0;
  for (const auto& e : state.entries()) {
    std::copy_n(flat.data() + offset, e.size, e.data);
    offset += e.size;
  }
}

}  // namespace

DeepOdTrainer::DeepOdTrainer(DeepOdModel& model, const sim::Dataset& dataset)
    : DeepOdTrainer(model, dataset, nullptr) {}

DeepOdTrainer::DeepOdTrainer(DeepOdModel& model, const sim::Dataset& dataset,
                             TripFeed* feed)
    : model_(model),
      dataset_(dataset),
      optimizer_(model.Parameters(), model.config().learning_rate),
      rng_(model.config().seed ^ 0xbadc0ffeull),
      feed_(feed),
      num_threads_(
          util::ThreadPool::ResolveThreadCount(model.config().num_threads)) {
  if (feed_ == nullptr) {
    owned_feed_ = std::make_unique<InMemoryTripFeed>(dataset.train);
    feed_ = owned_feed_.get();
  }
  if (num_threads_ > 1) {
    pool_ = std::make_unique<util::ThreadPool>(num_threads_);
    auto params = model_.Parameters();
    arenas_.reserve(num_threads_);
    for (size_t w = 0; w < num_threads_; ++w) {
      arenas_.emplace_back(std::make_unique<nn::GradArena>(params));
    }
    bn_logs_.resize(num_threads_);
  }
  if (obs::MetricsEnabled()) {
    // Grad-arena occupancy: detached gradient buffers held per worker (the
    // data-parallel path's extra memory footprint vs. serial training).
    size_t param_doubles = 0;
    for (const auto& p : model_.Parameters()) param_doubles += p.size();
    obs::Registry::Global()
        .gauge("trainer/grad_arena_bytes")
        .Set(static_cast<double>(arenas_.size() * param_doubles *
                                 sizeof(double)));
    obs::Registry::Global()
        .gauge("trainer/threads")
        .Set(static_cast<double>(num_threads_));
  }
}

double DeepOdTrainer::ValidationMae(size_t max_samples) {
  OBS_SPAN("trainer/validation");
  model_.SetTraining(false);
  const size_t n = std::min(max_samples, dataset_.validation.size());
  if (n == 0) {
    model_.SetTraining(true);
    return 0.0;
  }
  // Graph-free batched evaluation. The serial path is bit-identical to the
  // historical per-sample Predict loop (PredictBatch's contract); the
  // parallel path keeps the vectorised kernels the data-parallel trainer
  // always used for evaluation.
  std::vector<traj::OdInput> ods(n);
  for (size_t i = 0; i < n; ++i) ods[i] = dataset_.validation[i].od;
  std::vector<double> preds;
  if (pool_ == nullptr) {
    preds = model_.PredictBatch(ods);
  } else {
    nn::KernelModeScope mode_scope(nn::KernelMode::kVector);
    preds = model_.PredictBatch(ods, pool_.get());
  }
  double sum = 0.0;
  if (pool_ == nullptr) {
    for (size_t i = 0; i < n; ++i) {
      sum += std::fabs(preds[i] - dataset_.validation[i].travel_time);
    }
  } else {
    // Merge in chunk order, matching the historical parallel reduction so
    // the result stays stable for a fixed thread count.
    const size_t tasks = std::min(num_threads_, n);
    for (size_t w = 0; w < tasks; ++w) {
      const auto [begin, end] = util::ThreadPool::ChunkRange(n, tasks, w);
      double s = 0.0;
      for (size_t i = begin; i < end; ++i) {
        s += std::fabs(preds[i] - dataset_.validation[i].travel_time);
      }
      sum += s;
    }
  }
  model_.SetTraining(true);
  return sum / static_cast<double>(n);
}

void DeepOdTrainer::AccumulateBatchParallel(size_t pos, size_t batch_n,
                                            size_t bs) {
  const size_t tasks = std::min(num_threads_, batch_n);
  obs::Gauge* queue_depth = nullptr;
  if (obs::MetricsEnabled()) {
    queue_depth = &obs::Registry::Global().gauge("trainer/pool/queue_depth");
    queue_depth->Set(static_cast<double>(tasks));
  }
  pool_->ParallelFor(tasks, [&](size_t w) {
    const auto [begin, end] = util::ThreadPool::ChunkRange(batch_n, tasks, w);
    // All shared-parameter gradient writes of this chunk land in arena `w`;
    // BatchNorm running-statistic updates are logged instead of applied.
    // The parallel trainer also opts into the vectorised kernels (the
    // serial num_threads == 1 path never reaches here and stays on the
    // bit-identical default kernels).
    nn::KernelModeScope mode_scope(nn::KernelMode::kVector);
    nn::GradArenaScope arena_scope(arenas_[w].get());
    nn::BnCaptureScope bn_scope(&bn_logs_[w]);
    for (size_t i = begin; i < end; ++i) {
      nn::Tensor loss = nn::Scale(model_.SampleLoss(feed_->At(pos + i)),
                                  1.0 / static_cast<double>(bs));
      loss.Backward();
    }
  });
  // Merge arenas and replay the deferred BatchNorm updates in chunk order.
  // Chunks are contiguous ascending sample ranges, so the replay applies
  // the running-statistic updates in exactly the serial sample order.
  for (size_t w = 0; w < tasks; ++w) {
    arenas_[w]->MergeIntoParamsAndReset();
    for (const auto& rec : bn_logs_[w]) rec.bn->ApplyMomentumUpdate(rec.mu, rec.var);
    bn_logs_[w].clear();
  }
  if (queue_depth != nullptr) queue_depth->Set(0.0);
}

double DeepOdTrainer::TrainPrefix(int end_epoch, const StepCallback& callback,
                                  size_t eval_every, size_t max_val_samples) {
  const auto& config = model_.config();
  const int last_epoch = std::min(end_epoch, config.epochs);
  const size_t n = feed_->size();

  model_.SetTraining(true);
  const size_t bs = std::max<size_t>(1, config.batch_size);
  double last_val = std::numeric_limits<double>::quiet_NaN();
  for (int epoch = epoch_; epoch < last_epoch; ++epoch) {
    OBS_SPAN("trainer/epoch");
    // §6.1: learning rate reduced by the decay factor every 2 epochs.
    const double lr =
        config.learning_rate *
        std::pow(config.lr_decay_factor,
                 static_cast<double>(epoch / config.lr_decay_epochs));
    optimizer_.set_learning_rate(lr);
    feed_->BeginEpoch(rng_);  // Algorithm 1, ModelTrain line 2
    optimizer_.ZeroGrad();
    if (pool_ == nullptr) {
      // Legacy serial path (num_threads == 1): operation sequence kept
      // verbatim so results stay bit-identical to the pre-threading
      // implementation (the in-memory feed's At is exactly the historical
      // train[order[pos]] lookup and its prefetch is a no-op).
      size_t in_batch = 0;
      for (size_t pos = 0; pos < n; ++pos) {
        if (in_batch == 0) feed_->PrefetchWindow(pos, std::min(bs, n - pos));
        {
          OBS_SPAN("trainer/forward_backward");
          // Per-sample backward accumulates gradients; scaling by 1/bs makes
          // the accumulated gradient the mini-batch mean (Algorithm 1 trains
          // on mini-batches).
          nn::Tensor loss =
              nn::Scale(model_.SampleLoss(feed_->At(pos)),
                        1.0 / static_cast<double>(bs));
          loss.Backward();
        }
        if (++in_batch == bs) {
          {
            OBS_SPAN("trainer/optimizer");
            optimizer_.ClipGradNorm(config.grad_clip);
            optimizer_.Step();
            optimizer_.ZeroGrad();
          }
          in_batch = 0;
          ++step_;
          if (callback && step_ % eval_every == 0) {
            callback(step_, ValidationMae(max_val_samples));
          }
        }
      }
      if (in_batch > 0) {
        OBS_SPAN("trainer/optimizer");
        optimizer_.ClipGradNorm(config.grad_clip);
        optimizer_.Step();
        optimizer_.ZeroGrad();
        ++step_;
      }
    } else {
      // Data-parallel path: each mini-batch fans out over the pool.
      size_t pos = 0;
      while (pos < n) {
        const size_t batch_n = std::min(bs, n - pos);
        {
          OBS_SPAN("trainer/forward_backward");
          feed_->PrefetchWindow(pos, batch_n);
          AccumulateBatchParallel(pos, batch_n, bs);
        }
        {
          OBS_SPAN("trainer/optimizer");
          optimizer_.ClipGradNorm(config.grad_clip);
          optimizer_.Step();
          optimizer_.ZeroGrad();
        }
        ++step_;
        // Mirrors the serial path: the trailing partial batch steps but
        // never fires the callback.
        if (callback && batch_n == bs && step_ % eval_every == 0) {
          callback(step_, ValidationMae(max_val_samples));
        }
        pos += batch_n;
      }
    }
    // End-of-epoch validation snapshot; the best epoch is restored by
    // Train() once the last epoch finishes. The snapshot is the full state
    // dict — parameters, BatchNorm running statistics and the time scale.
    const double epoch_val = ValidationMae(max_val_samples);
    last_val = epoch_val;
    if (epoch_val < best_val_) {
      best_val_ = epoch_val;
      FlattenState(model_.State(), best_state_);
    }
    epoch_ = epoch + 1;
  }
  if (std::isnan(last_val)) last_val = ValidationMae(max_val_samples);
  return last_val;
}

double DeepOdTrainer::Train(const StepCallback& callback, size_t eval_every,
                            size_t max_val_samples) {
  TrainPrefix(model_.config().epochs, callback, eval_every, max_val_samples);
  if (!best_state_.empty() && std::isfinite(best_val_)) {
    const nn::StateDict state = model_.State();
    UnflattenState(best_state_, state);
    model_.ClearOcodeMemo();
  }
  // Score the restored best state, then leave the model in inference mode:
  // ValidationMae toggles training back on for the next step, but after
  // Train() callers expect Predict to run BatchNorm off the frozen running
  // statistics (and not mutate them), matching what Save/WriteModelArtifact
  // just captured.
  const double final_mae = ValidationMae(max_val_samples);
  model_.SetTraining(false);
  return final_mae;
}

void DeepOdTrainer::EnsureBestState() {
  if (best_state_.empty()) {
    best_state_.assign(model_.State().NumElements(), 0.0);
  }
}

void DeepOdTrainer::SaveCheckpoint(const std::string& path) {
  nn::StateDict ckpt = model_.State("model.");
  optimizer_.AppendState("optim.", ckpt);
  // Trainer bookkeeping. Counters are exact as doubles; the RNG words are
  // bit-cast so the xoshiro stream resumes exactly.
  double step_value = static_cast<double>(step_);
  double epoch_value = static_cast<double>(epoch_);
  const std::vector<uint64_t> rng_state = rng_.SaveState();
  std::vector<double> rng_bits(rng_state.size());
  std::memcpy(rng_bits.data(), rng_state.data(),
              rng_state.size() * sizeof(uint64_t));
  const std::vector<size_t>& order = feed_->order();
  std::vector<double> order_values(order.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order_values[i] = static_cast<double>(order[i]);
  }
  EnsureBestState();
  ckpt.AddScalarBuffer("trainer.step", &step_value);
  ckpt.AddScalarBuffer("trainer.epoch", &epoch_value);
  ckpt.AddScalarBuffer("trainer.best_val", &best_val_);
  ckpt.AddBuffer("trainer.rng", {rng_bits.size()}, rng_bits.data());
  ckpt.AddBuffer("trainer.order", {order_values.size()}, order_values.data());
  ckpt.AddBuffer("trainer.best_state", {best_state_.size()},
                 best_state_.data());
  nn::ThrowIfError(nn::SaveStateDict(path, ckpt));
}

void DeepOdTrainer::LoadCheckpoint(const std::string& path) {
  nn::StateDict ckpt = model_.State("model.");
  optimizer_.AppendState("optim.", ckpt);
  double step_value = 0.0;
  double epoch_value = 0.0;
  std::vector<double> rng_bits(util::Rng().SaveState().size(), 0.0);
  std::vector<double> order_values(feed_->order().size(), 0.0);
  EnsureBestState();
  ckpt.AddScalarBuffer("trainer.step", &step_value);
  ckpt.AddScalarBuffer("trainer.epoch", &epoch_value);
  ckpt.AddScalarBuffer("trainer.best_val", &best_val_);
  ckpt.AddBuffer("trainer.rng", {rng_bits.size()}, rng_bits.data());
  ckpt.AddBuffer("trainer.order", {order_values.size()}, order_values.data());
  ckpt.AddBuffer("trainer.best_state", {best_state_.size()},
                 best_state_.data());
  nn::ThrowIfError(nn::LoadStateDict(path, ckpt));
  step_ = static_cast<size_t>(std::llround(step_value));
  epoch_ = static_cast<int>(std::llround(epoch_value));
  std::vector<size_t>& order = feed_->order();
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<size_t>(std::llround(order_values[i]));
  }
  feed_->NotifyOrderChanged();
  std::vector<uint64_t> rng_state(rng_bits.size());
  std::memcpy(rng_state.data(), rng_bits.data(),
              rng_bits.size() * sizeof(double));
  rng_.RestoreState(rng_state);
  model_.ClearOcodeMemo();
}

std::vector<double> DeepOdTrainer::PredictAll(
    const std::vector<traj::TripRecord>& trips) {
  model_.SetTraining(false);
  if (trips.empty()) return {};
  std::vector<traj::OdInput> ods(trips.size());
  for (size_t i = 0; i < trips.size(); ++i) ods[i] = trips[i].od;
  if (pool_ == nullptr) return model_.PredictBatch(ods);
  nn::KernelModeScope mode_scope(nn::KernelMode::kVector);
  return model_.PredictBatch(ods, pool_.get());
}

}  // namespace deepod::core
