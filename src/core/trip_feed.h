#ifndef DEEPOD_CORE_TRIP_FEED_H_
#define DEEPOD_CORE_TRIP_FEED_H_

#include <cstddef>
#include <vector>

#include "traj/trajectory.h"
#include "util/rng.h"

namespace deepod::core {

// Training-sample source for DeepOdTrainer: an epoch-ordered stream of trip
// records behind a stable interface, so the trainer does not care whether
// the epoch lives in one in-memory vector (the classic path) or in K
// mmap'd on-disk shards (the out-of-core path, io::ShardedTripSource).
//
// Contract per epoch:
//   1. the trainer calls BeginEpoch(rng) once — the feed reshuffles its
//      visit order, consuming a feed-defined number of draws from `rng`;
//   2. before touching a mini-batch it calls PrefetchWindow(pos, n) for the
//      batch's position range [pos, pos+n);
//   3. At(pos) then returns the record at epoch position `pos`. Within the
//      last prefetched window, At must be safe to call from multiple pool
//      workers concurrently (the data-parallel trainer does exactly that).
//
// order() exposes the position→sample permutation for checkpointing; after
// a checkpoint restore writes into it the trainer calls
// NotifyOrderChanged() so cached windows keyed on the old order are
// dropped.
class TripFeed {
 public:
  virtual ~TripFeed() = default;

  // Number of samples per epoch.
  virtual size_t size() const = 0;

  // Reshuffles the epoch visit order in place using `rng`.
  virtual void BeginEpoch(util::Rng& rng) = 0;

  // Record at epoch position `pos` (i.e. sample order()[pos]). Valid until
  // the next PrefetchWindow/BeginEpoch/NotifyOrderChanged call.
  virtual const traj::TripRecord& At(size_t pos) = 0;

  // Ensures positions [pos, pos+n) are resident before At is called for
  // them. No-op for in-memory feeds.
  virtual void PrefetchWindow(size_t pos, size_t n) { (void)pos; (void)n; }

  // The current visit order (mutable so a checkpoint restore can write it).
  virtual std::vector<size_t>& order() = 0;

  // Invalidate anything derived from order() after an external mutation.
  virtual void NotifyOrderChanged() {}
};

// The shared two-level epoch order used by sharded feeds: shuffle the shard
// visit order, then an independent permutation within each shard, and
// concatenate — every position maps to a *global* sample index (shard k's
// samples are [sum(sizes[0..k)), +sizes[k])). Out-of-core training and its
// in-memory parity twin both build their epochs through this one function,
// which is what makes their loss curves bit-identical (see
// tests/datagen_test.cc).
std::vector<size_t> BuildShardEpochOrder(util::Rng& rng,
                                         const std::vector<size_t>& shard_sizes);

// TripFeed over an in-memory vector. Two shuffle flavours:
//  * flat (default): BeginEpoch performs exactly one rng.Shuffle over the
//    persistent order — the trainer's historical behaviour, bit-identical
//    to the pre-feed implementation;
//  * grouped (shard_sizes given): BeginEpoch rebuilds the order with
//    BuildShardEpochOrder — the in-memory twin of a sharded on-disk feed.
class InMemoryTripFeed : public TripFeed {
 public:
  // Flat shuffle. `trips` must outlive the feed.
  explicit InMemoryTripFeed(const std::vector<traj::TripRecord>& trips);
  // Grouped shuffle; shard_sizes must sum to trips.size().
  InMemoryTripFeed(const std::vector<traj::TripRecord>& trips,
                   std::vector<size_t> shard_sizes);

  size_t size() const override { return trips_->size(); }
  void BeginEpoch(util::Rng& rng) override;
  const traj::TripRecord& At(size_t pos) override {
    return (*trips_)[order_[pos]];
  }
  std::vector<size_t>& order() override { return order_; }

 private:
  const std::vector<traj::TripRecord>* trips_;
  std::vector<size_t> shard_sizes_;  // empty = flat shuffle
  std::vector<size_t> order_;
};

}  // namespace deepod::core

#endif  // DEEPOD_CORE_TRIP_FEED_H_
