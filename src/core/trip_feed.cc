#include "core/trip_feed.h"

#include <numeric>
#include <stdexcept>

namespace deepod::core {

std::vector<size_t> BuildShardEpochOrder(
    util::Rng& rng, const std::vector<size_t>& shard_sizes) {
  const size_t num_shards = shard_sizes.size();
  std::vector<size_t> shard_offsets(num_shards, 0);
  size_t total = 0;
  for (size_t k = 0; k < num_shards; ++k) {
    shard_offsets[k] = total;
    total += shard_sizes[k];
  }
  std::vector<size_t> shard_order(num_shards);
  std::iota(shard_order.begin(), shard_order.end(), size_t{0});
  rng.Shuffle(shard_order);

  std::vector<size_t> order;
  order.reserve(total);
  std::vector<size_t> local;
  for (size_t k : shard_order) {
    local.resize(shard_sizes[k]);
    std::iota(local.begin(), local.end(), size_t{0});
    rng.Shuffle(local);
    for (size_t j : local) order.push_back(shard_offsets[k] + j);
  }
  return order;
}

InMemoryTripFeed::InMemoryTripFeed(const std::vector<traj::TripRecord>& trips)
    : trips_(&trips), order_(trips.size()) {
  std::iota(order_.begin(), order_.end(), size_t{0});
}

InMemoryTripFeed::InMemoryTripFeed(const std::vector<traj::TripRecord>& trips,
                                   std::vector<size_t> shard_sizes)
    : trips_(&trips),
      shard_sizes_(std::move(shard_sizes)),
      order_(trips.size()) {
  size_t total = 0;
  for (size_t s : shard_sizes_) total += s;
  if (total != trips.size()) {
    throw std::invalid_argument(
        "InMemoryTripFeed: shard sizes sum to " + std::to_string(total) +
        " but the feed holds " + std::to_string(trips.size()) + " trips");
  }
  std::iota(order_.begin(), order_.end(), size_t{0});
}

void InMemoryTripFeed::BeginEpoch(util::Rng& rng) {
  if (shard_sizes_.empty()) {
    rng.Shuffle(order_);  // the trainer's historical single shuffle
  } else {
    order_ = BuildShardEpochOrder(rng, shard_sizes_);
  }
}

}  // namespace deepod::core
