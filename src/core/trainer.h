#ifndef DEEPOD_CORE_TRAINER_H_
#define DEEPOD_CORE_TRAINER_H_

#include <functional>
#include <vector>

#include "core/deepod_model.h"
#include "nn/optimizer.h"
#include "sim/dataset.h"

namespace deepod::core {

// Offline training / online estimation driver implementing Algorithm 1's
// ModelTrain and Estimation procedures for DeepOD.
class DeepOdTrainer {
 public:
  // Invoked every `eval_every` optimisation steps with (step, validation
  // MAE in seconds). Drives the Fig. 10 convergence curves.
  using StepCallback = std::function<void(size_t step, double val_mae)>;

  DeepOdTrainer(DeepOdModel& model, const sim::Dataset& dataset);

  // Trains for model.config().epochs epochs; returns the best validation
  // MAE (seconds). `callback` may be null. Validation is evaluated on at
  // most `max_val_samples` trips for speed. Parameters are checkpointed at
  // every end-of-epoch validation and the best checkpoint is restored at
  // the end (the paper tunes on the validation split, §6.1).
  double Train(const StepCallback& callback = nullptr, size_t eval_every = 25,
               size_t max_val_samples = 200);

  // Mean validation MAE in seconds over up to `max_samples` trips.
  double ValidationMae(size_t max_samples = 200);

  // Predicted travel time (seconds) for every test trip.
  std::vector<double> PredictAll(const std::vector<traj::TripRecord>& trips);

  size_t steps_taken() const { return step_; }

 private:
  DeepOdModel& model_;
  const sim::Dataset& dataset_;
  nn::Adam optimizer_;
  size_t step_ = 0;
};

}  // namespace deepod::core

#endif  // DEEPOD_CORE_TRAINER_H_
