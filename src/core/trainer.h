#ifndef DEEPOD_CORE_TRAINER_H_
#define DEEPOD_CORE_TRAINER_H_

#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/deepod_model.h"
#include "core/trip_feed.h"
#include "nn/conv.h"
#include "nn/optimizer.h"
#include "nn/tensor.h"
#include "sim/dataset.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace deepod::core {

// Offline training / online estimation driver implementing Algorithm 1's
// ModelTrain and Estimation procedures for DeepOD.
//
// Threading: the worker count comes from config.num_threads (0 = auto via
// DEEPOD_THREADS / hardware concurrency). With 1 thread the trainer runs
// the legacy serial loops, bit-identical to the pre-threading
// implementation. With T > 1 threads each mini-batch is split into T
// contiguous chunks of samples; every chunk runs forward+backward into its
// own detached gradient arena and records its BatchNorm running-statistic
// updates, and the trainer merges arenas and replays the BN updates in
// chunk order before the optimiser step — so results are deterministic for
// a fixed thread count (see DESIGN.md, "Threading model").
class DeepOdTrainer {
 public:
  // Invoked every `eval_every` optimisation steps with (step, validation
  // MAE in seconds). Drives the Fig. 10 convergence curves.
  using StepCallback = std::function<void(size_t step, double val_mae)>;

  // Trains from dataset.train through an internally owned InMemoryTripFeed
  // (the classic fully in-memory path, bit-identical to the pre-feed
  // implementation at num_threads == 1).
  DeepOdTrainer(DeepOdModel& model, const sim::Dataset& dataset);

  // Trains from an external TripFeed (e.g. io::ShardedTripSource for
  // out-of-core epochs over on-disk shards). `feed` is not owned and must
  // outlive the trainer; `dataset` still provides the validation/test
  // splits and the model environment. Passing nullptr falls back to the
  // owned in-memory feed over dataset.train.
  DeepOdTrainer(DeepOdModel& model, const sim::Dataset& dataset,
                TripFeed* feed);

  // Trains from the last completed epoch through model.config().epochs;
  // returns the final validation MAE (seconds) after restoring the
  // best-validation state. `callback` may be null. Validation is evaluated
  // on at most `max_val_samples` trips for speed. The full model state
  // (parameters AND BatchNorm running statistics AND the time scale) is
  // snapshotted at every end-of-epoch validation and the best snapshot is
  // restored at the end (the paper tunes on the validation split, §6.1).
  double Train(const StepCallback& callback = nullptr, size_t eval_every = 25,
               size_t max_val_samples = 200);

  // Trains up to `end_epoch` (exclusive, clamped to config.epochs) WITHOUT
  // the final best-epoch restore, so training can be split across process
  // lifetimes: run a prefix, SaveCheckpoint, and a fresh trainer that
  // LoadCheckpoints and calls Train() finishes bit-identically to an
  // uninterrupted run. Returns the last end-of-epoch validation MAE (or the
  // current one when no epoch runs).
  double TrainPrefix(int end_epoch, const StepCallback& callback = nullptr,
                     size_t eval_every = 25, size_t max_val_samples = 200);

  // Resumable checkpoints (tagged state-dict files): the complete model
  // state ("model.*"), the Adam moments and step count ("optim.*"), the
  // shuffle RNG state, epoch/step counters and the best-validation
  // bookkeeping ("trainer.*"). LoadCheckpoint restores all of it into this
  // trainer and its model; the model must have been constructed with the
  // same config and dataset shape. Both throw nn::SerializeError on
  // failure, naming the first offending tensor.
  void SaveCheckpoint(const std::string& path);
  void LoadCheckpoint(const std::string& path);

  // Epochs completed so far (the next Train/TrainPrefix starts here).
  int completed_epochs() const { return epoch_; }
  // Best end-of-epoch validation MAE seen so far (+inf before the first).
  double best_validation_mae() const { return best_val_; }

  // Mean validation MAE in seconds over up to `max_samples` trips.
  double ValidationMae(size_t max_samples = 200);

  // Predicted travel time (seconds) for every test trip.
  std::vector<double> PredictAll(const std::vector<traj::TripRecord>& trips);

  size_t steps_taken() const { return step_; }
  size_t num_threads() const { return num_threads_; }

 private:
  // Runs forward+backward for the feed's epoch positions [pos, pos+batch_n)
  // across the worker chunks, leaving the merged mean-of-batch gradient
  // (scaled by 1/bs) in the parameters and the BatchNorm running statistics
  // updated in sample order. The caller must have prefetched the range.
  void AccumulateBatchParallel(size_t pos, size_t batch_n, size_t bs);

  // Sizes best_state_ to the model's state element count (zero-filled) if
  // it has not been allocated yet.
  void EnsureBestState();

  DeepOdModel& model_;
  const sim::Dataset& dataset_;
  nn::Adam optimizer_;
  size_t step_ = 0;

  // Resume state: epoch/shuffle-RNG/best bookkeeping live on the trainer so
  // a checkpoint can capture them (see SaveCheckpoint).
  util::Rng rng_;
  int epoch_ = 0;  // completed epochs
  double best_val_ = std::numeric_limits<double>::infinity();
  std::vector<double> best_state_;  // flat model-state snapshot at best epoch
  // Training-sample source. The feed owns the epoch visit order (shuffled
  // by BeginEpoch at the start of every epoch, so epoch k permutes the
  // order epoch k-1 left behind, exactly as the original in-function local
  // did); the order is checkpointed so a resumed run replays the same
  // sample sequence an uninterrupted run would.
  std::unique_ptr<TripFeed> owned_feed_;  // set when no external feed given
  TripFeed* feed_;

  size_t num_threads_;
  std::unique_ptr<util::ThreadPool> pool_;        // null when serial
  std::vector<std::unique_ptr<nn::GradArena>> arenas_;  // one per worker
  std::vector<nn::BnStatsLog> bn_logs_;                 // one per worker
};

}  // namespace deepod::core

#endif  // DEEPOD_CORE_TRAINER_H_
