#ifndef DEEPOD_CORE_TRAINER_H_
#define DEEPOD_CORE_TRAINER_H_

#include <functional>
#include <memory>
#include <vector>

#include "core/deepod_model.h"
#include "nn/conv.h"
#include "nn/optimizer.h"
#include "nn/tensor.h"
#include "sim/dataset.h"
#include "util/thread_pool.h"

namespace deepod::core {

// Offline training / online estimation driver implementing Algorithm 1's
// ModelTrain and Estimation procedures for DeepOD.
//
// Threading: the worker count comes from config.num_threads (0 = auto via
// DEEPOD_THREADS / hardware concurrency). With 1 thread the trainer runs
// the legacy serial loops, bit-identical to the pre-threading
// implementation. With T > 1 threads each mini-batch is split into T
// contiguous chunks of samples; every chunk runs forward+backward into its
// own detached gradient arena and records its BatchNorm running-statistic
// updates, and the trainer merges arenas and replays the BN updates in
// chunk order before the optimiser step — so results are deterministic for
// a fixed thread count (see DESIGN.md, "Threading model").
class DeepOdTrainer {
 public:
  // Invoked every `eval_every` optimisation steps with (step, validation
  // MAE in seconds). Drives the Fig. 10 convergence curves.
  using StepCallback = std::function<void(size_t step, double val_mae)>;

  DeepOdTrainer(DeepOdModel& model, const sim::Dataset& dataset);

  // Trains for model.config().epochs epochs; returns the best validation
  // MAE (seconds). `callback` may be null. Validation is evaluated on at
  // most `max_val_samples` trips for speed. Parameters are checkpointed at
  // every end-of-epoch validation and the best checkpoint is restored at
  // the end (the paper tunes on the validation split, §6.1).
  double Train(const StepCallback& callback = nullptr, size_t eval_every = 25,
               size_t max_val_samples = 200);

  // Mean validation MAE in seconds over up to `max_samples` trips.
  double ValidationMae(size_t max_samples = 200);

  // Predicted travel time (seconds) for every test trip.
  std::vector<double> PredictAll(const std::vector<traj::TripRecord>& trips);

  size_t steps_taken() const { return step_; }
  size_t num_threads() const { return num_threads_; }

 private:
  // Runs forward+backward for samples order[pos, pos+batch_n) across the
  // worker chunks, leaving the merged mean-of-batch gradient (scaled by
  // 1/bs) in the parameters and the BatchNorm running statistics updated
  // in sample order.
  void AccumulateBatchParallel(const std::vector<size_t>& order, size_t pos,
                               size_t batch_n, size_t bs);

  DeepOdModel& model_;
  const sim::Dataset& dataset_;
  nn::Adam optimizer_;
  size_t step_ = 0;

  size_t num_threads_;
  std::unique_ptr<util::ThreadPool> pool_;        // null when serial
  std::vector<std::unique_ptr<nn::GradArena>> arenas_;  // one per worker
  std::vector<nn::BnStatsLog> bn_logs_;                 // one per worker
};

}  // namespace deepod::core

#endif  // DEEPOD_CORE_TRAINER_H_
