#ifndef DEEPOD_CORE_DEEPOD_MODEL_H_
#define DEEPOD_CORE_DEEPOD_MODEL_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/deepod_config.h"
#include "core/encoders.h"
#include "nn/module.h"
#include "sim/dataset.h"
#include "temporal/time_slot.h"
#include "traj/trajectory.h"
#include "util/thread_pool.h"

namespace deepod::util {
class WeightedDigraph;
}

namespace deepod::core {

// The DeepOD architecture (Fig. 3): the OD encoder M_O, the trajectory
// encoder M_T and the travel-time estimator M_E over shared road-segment
// and time-slot embedding matrices. Construction initialises the embedding
// matrices from unsupervised graph embeddings (Algorithm 1 lines 1-5)
// unless the config's ablations say otherwise.
//
// Travel times are modelled in normalised units y / time_scale (the mean
// training travel time); this keeps mainloss and auxiliaryloss on the same
// O(1) scale so the paper's weighted combination behaves as described.
class DeepOdModel : public nn::Module {
 public:
  // Training construction. `dataset` provides the road network, the speed
  // field, the temporal slotter and the training trajectories used for
  // edge-graph co-occurrence weights (and the time-scale default).
  DeepOdModel(const DeepOdConfig& config, const sim::Dataset& dataset);

  // Streamed-init training construction: identical to the constructor above
  // except the two trajectory-derived inputs — the co-occurrence edge graph
  // and the mean training travel time — are supplied by the caller (e.g.
  // accumulated in one pass over trip shards with road::EdgeGraphAccumulator)
  // instead of being read from dataset.train, which may therefore be empty.
  // RNG consumption order matches the in-memory constructor exactly, so
  // equal inputs produce bit-identical parameters (pinned by datagen_test).
  // `edge_graph` may be null only when config.road_init == kOneHot (the
  // in-memory path never builds the graph there either).
  DeepOdModel(const DeepOdConfig& config, const sim::Dataset& dataset,
              const util::WeightedDigraph* edge_graph, double time_scale);

  // Predict-only construction: the model needs only the road network (for
  // table sizes and route predictions) and a speed provider (may be null —
  // ocode falls back to zeros, as for the N-other ablation). No graph
  // embedding pre-training runs and the time scale stays 1.0: every
  // parameter, buffer and the time scale are expected to come from Load /
  // the artifact loader. This is the constructor the serving path uses to
  // stand a model up without any training dataset in memory.
  DeepOdModel(const DeepOdConfig& config, const road::RoadNetwork& network,
              const sim::SpeedProvider* speed);

  // --- Forward pieces ------------------------------------------------------

  // M_O: hidden representation `code` of an OD input (Eq. 19).
  nn::Tensor EncodeOd(const traj::OdInput& od);

  // M_T: spatio-temporal representation `stcode` of a trajectory (Eq. 17).
  nn::Tensor EncodeTrajectory(const traj::MatchedTrajectory& trajectory);

  // M_E: normalised travel-time estimate from `code` (Eq. 20).
  nn::Tensor EstimateFromCode(const nn::Tensor& code);

  // External-features encoding (§4.5): ocode for the OD's departure time and
  // weather. In serving conditions (inference mode, training off) the result
  // is memoised per (weather, speed-matrix snapshot) — the CNN is
  // deterministic given those, so a memo hit returns bit-identical values
  // while skipping the dominant per-query compute.
  nn::Tensor EncodeExternal(const traj::OdInput& od);

  // Online estimation (Algorithm 1, Estimation): seconds for an OD input.
  // Runs graph-free (nn::InferenceGuard): identical values to the training
  // forward, no autograd allocations.
  double Predict(const traj::OdInput& od);

  // Batched estimation: one travel time per OD input, bit-identical to
  // calling Predict in a loop in every kernel mode (the batched MLP uses
  // AffineRows, which preserves Affine's per-row floating-point order —
  // including kSimd, where both ops run the same packed GEMV per row).
  // When `pool` is given the batch is split into contiguous chunks fanned
  // out over the pool's workers; chunking never changes results.
  std::vector<double> PredictBatch(std::span<const traj::OdInput> ods,
                                   util::ThreadPool* pool = nullptr);

  // Capacity of the ocode memo used by EncodeExternal (entries; 0 disables).
  // The memo is invalidated on SetTraining and Load since parameter or mode
  // changes would make cached codes stale.
  void SetOcodeMemoCapacity(size_t capacity);

  // Drops every memoised ocode. Callers that mutate model state behind the
  // model's back (the trainer's checkpoint restore, the artifact loader)
  // must invalidate the memo themselves.
  void ClearOcodeMemo();

  // Swaps the external-feature speed source (e.g. a frozen
  // sim::SnapshotSpeedField from an artifact; null disables ocode). The
  // provider must outlive the model. Clears the ocode memo.
  void SetSpeedProvider(const sim::SpeedProvider* speed);
  const sim::SpeedProvider* speed_provider() const { return speed_; }

  // The pseudo spatio-temporal path PredictForRoute feeds to M_T: intervals
  // from free-flow expectations via the §2 linear interpolation. Exposed so
  // the serving layer and tests can inspect or reuse it.
  traj::MatchedTrajectory BuildRoutePseudoTrajectory(
      const traj::OdInput& od, const std::vector<size_t>& route_segments) const;

  // Extension: what-if ETA for a concrete candidate route. §4.4 notes that
  // generating `code` "is analogous to generating a proper trajectory"; this
  // runs the reverse direction explicitly — it builds a pseudo
  // spatio-temporal path for `route_segments` (intervals from free-flow
  // expectations via the §2 linear interpolation), encodes it with M_T and
  // reads the time from M_E. Requires supervise_stcode (the default), which
  // grounds M_E on trajectory representations during training. The route
  // must be a connected path from od.origin_segment to od.dest_segment.
  double PredictForRoute(const traj::OdInput& od,
                         const std::vector<size_t>& route_segments);

  // --- Training support ----------------------------------------------------

  // Combined per-sample loss (Algorithm 1 lines 7-12):
  //   w · ||code - stcode||₂ + (1-w) · |ŷ - y| / time_scale.
  // For the N-st ablation the auxiliary term is dropped.
  nn::Tensor SampleLoss(const traj::TripRecord& record);

  double time_scale() const { return time_scale_; }
  void set_time_scale(double scale) { time_scale_ = scale; }

  // Checkpointing. Save writes the tagged state-dict format (v2): every
  // parameter, every BatchNorm running-statistic buffer and the time scale,
  // each under its hierarchical name. Load sniffs the file magic: v2 files
  // restore by name (strict — throws nn::SerializeError naming the first
  // mismatching tensor on truncation, corruption or a config mismatch);
  // legacy positional blobs still load for backward compatibility, with
  // BatchNorm buffers keeping their current values (the old format never
  // stored them). The model must be constructed with the same config and
  // network shape (same embedding table sizes) before Load.
  void Save(const std::string& path);
  void Load(const std::string& path);

  std::vector<nn::Tensor> Parameters() override;
  void AppendState(const std::string& prefix, nn::StateDict& out) override;
  void SetTraining(bool training) override;

  const DeepOdConfig& config() const { return config_; }
  nn::Embedding& road_embedding() { return *road_embedding_; }
  nn::Embedding& time_slot_embedding() { return *time_slot_embedding_; }

 private:
  // Writes the z9 feature vector of `od` (Eq. 19 input) into row[0..z9_dim):
  // the exact doubles EncodeOd's ConcatVec would produce. Callers must hold
  // an inference guard when the ocode memo should engage.
  void FillOdFeatureRow(const traj::OdInput& od, double* row);
  size_t z9_dim() const {
    return config_.ds * 2 + config_.dt + config_.dm6 + 3;
  }

  // Shared tail of both constructors: builds the module tree (no embedding
  // pre-training; the training constructor runs that first).
  void BuildModules(util::Rng& rng);

  DeepOdConfig config_;
  const road::RoadNetwork& network_;
  const sim::SpeedProvider* speed_;  // may be null (no external features)
  temporal::TimeSlotter slotter_;
  double time_scale_ = 1.0;

  // ocode memo (see EncodeExternal).
  size_t ocode_memo_capacity_ = 64;
  std::mutex ocode_memo_mu_;
  std::unordered_map<uint64_t, std::shared_ptr<const std::vector<double>>>
      ocode_memo_;

  std::unique_ptr<nn::Embedding> road_embedding_;       // Ws
  std::unique_ptr<nn::Embedding> time_slot_embedding_;  // Wt
  std::unique_ptr<TrajectoryEncoder> trajectory_encoder_;
  std::unique_ptr<ExternalFeaturesEncoder> external_encoder_;
  std::unique_ptr<nn::Mlp2> mlp1_;  // Eq. 19: Z9 -> code
  std::unique_ptr<nn::Mlp2> mlp2_;  // Eq. 20: code -> y
};

}  // namespace deepod::core

#endif  // DEEPOD_CORE_DEEPOD_MODEL_H_
