#include "core/encoders.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nn/ops.h"

namespace deepod::core {

TimeIntervalEncoder::TimeIntervalEncoder(const DeepOdConfig& config,
                                         const temporal::TimeSlotter& slotter,
                                         nn::Embedding& time_slot_embedding,
                                         util::Rng& rng)
    : slotter_(slotter),
      time_slot_embedding_(time_slot_embedding),
      daily_graph_(config.time_init == TimeInit::kDailyGraph),
      resnet_(rng),
      mlp_(config.dt + 2, config.dm1, config.dm2, rng) {
  if (time_slot_embedding.dim() != config.dt) {
    throw std::invalid_argument(
        "TimeIntervalEncoder: time slot embedding dim mismatch");
  }
}

nn::Tensor TimeIntervalEncoder::Forward(temporal::Timestamp t1,
                                        temporal::Timestamp t2) {
  if (t2 < t1) throw std::invalid_argument("TimeIntervalEncoder: t2 < t1");
  const int64_t slot1 = slotter_.Slot(t1);
  const int64_t slot2 = slotter_.Slot(t2);
  // One weekly (or daily, for the T-day ablation) node per covered slot.
  std::vector<size_t> nodes;
  nodes.reserve(static_cast<size_t>(slot2 - slot1 + 1));
  for (int64_t s = slot1; s <= slot2; ++s) {
    const int64_t node = daily_graph_ ? slotter_.DailyNode(s)
                                      : slotter_.WeeklyNode(s);
    nodes.push_back(static_cast<size_t>(node));
  }
  // D^t: Δd x d_t stack of slot embeddings, then the ResNet block (Eq. 5-8)
  // and average pooling over the slot axis (Eq. 10).
  const nn::Tensor dt_matrix = time_slot_embedding_.Forward(nodes);
  const nn::Tensor z4 = resnet_.Forward(dt_matrix);
  const nn::Tensor z5 = nn::MeanRows(z4);
  // Remainders normalised to [0, 1) keep the concatenated features O(1).
  const double tr1 = slotter_.Remainder(t1) / slotter_.slot_seconds();
  const double tr2 = slotter_.Remainder(t2) / slotter_.slot_seconds();
  const nn::Tensor z6 =
      nn::ConcatVec({z5, nn::Tensor::FromData({2}, {tr1, tr2})});
  return mlp_.Forward(z6);  // Eq. 11 -> tcode
}

std::vector<nn::Tensor> TimeIntervalEncoder::Parameters() {
  // The shared time-slot embedding is owned (and reported) by DeepOdModel.
  auto params = resnet_.Parameters();
  auto mlp_params = mlp_.Parameters();
  params.insert(params.end(), mlp_params.begin(), mlp_params.end());
  return params;
}

void TimeIntervalEncoder::AppendState(const std::string& prefix,
                                      nn::StateDict& out) {
  // The shared time-slot embedding is registered by DeepOdModel.
  resnet_.AppendState(nn::JoinName(prefix, "resnet."), out);
  mlp_.AppendState(nn::JoinName(prefix, "mlp."), out);
}

void TimeIntervalEncoder::SetTraining(bool training) {
  Module::SetTraining(training);
  resnet_.SetTraining(training);
}

size_t TimeIntervalEncoder::out_dim() const { return mlp_.out_dim(); }

TrajectoryEncoder::TrajectoryEncoder(const DeepOdConfig& config,
                                     const temporal::TimeSlotter& slotter,
                                     nn::Embedding& road_embedding,
                                     nn::Embedding& time_slot_embedding,
                                     util::Rng& rng)
    : config_(config),
      road_embedding_(road_embedding),
      interval_encoder_(config, slotter, time_slot_embedding, rng),
      lstm_(config.dm2 + config.ds, config.dh, rng),
      mlp_(config.dh + 2, config.dm3, config.dm4, rng) {}

nn::Tensor TrajectoryEncoder::Forward(const traj::MatchedTrajectory& trajectory) {
  if (trajectory.empty()) {
    throw std::invalid_argument("TrajectoryEncoder: empty trajectory");
  }
  const bool use_tp = config_.ablation != Ablation::kNoTp;
  const bool use_sp = config_.ablation != Ablation::kNoSp;
  std::vector<nn::Tensor> sequence;
  sequence.reserve(trajectory.path.size());
  for (const auto& elem : trajectory.path) {
    // D^st_i = concat(tcode_i, D^s_i). Ablations zero the removed half so
    // the LSTM input width is unchanged.
    nn::Tensor tcode =
        use_tp ? interval_encoder_.Forward(elem.enter, elem.exit)
               : nn::Tensor::Zeros({config_.dm2});
    nn::Tensor ds = use_sp ? road_embedding_.Forward(elem.segment_id)
                           : nn::Tensor::Zeros({config_.ds});
    sequence.push_back(nn::ConcatVec({tcode, ds}));
  }
  const nn::Tensor hn = lstm_.Forward(sequence);  // Eq. 12-16
  const nn::Tensor z7 = nn::ConcatVec(
      {hn, nn::Tensor::FromData(
               {2}, {trajectory.origin_ratio, trajectory.dest_ratio})});
  return mlp_.Forward(z7);  // Eq. 17 -> stcode
}

std::vector<nn::Tensor> TrajectoryEncoder::Parameters() {
  auto params = interval_encoder_.Parameters();
  auto lstm_params = lstm_.Parameters();
  auto mlp_params = mlp_.Parameters();
  params.insert(params.end(), lstm_params.begin(), lstm_params.end());
  params.insert(params.end(), mlp_params.begin(), mlp_params.end());
  return params;
}

void TrajectoryEncoder::AppendState(const std::string& prefix,
                                    nn::StateDict& out) {
  interval_encoder_.AppendState(nn::JoinName(prefix, "interval_encoder."), out);
  lstm_.AppendState(nn::JoinName(prefix, "lstm."), out);
  mlp_.AppendState(nn::JoinName(prefix, "mlp."), out);
}

void TrajectoryEncoder::SetTraining(bool training) {
  Module::SetTraining(training);
  interval_encoder_.SetTraining(training);
}

size_t TrajectoryEncoder::out_dim() const { return mlp_.out_dim(); }

ExternalFeaturesEncoder::ExternalFeaturesEncoder(const DeepOdConfig& config,
                                                 util::Rng& rng)
    : max_dim_(config.max_speed_matrix_dim),
      cnn_(config.dtraf, rng),
      // +2: the speed matrix's spatial mean and stddev are fed through
      // explicitly. Our BatchNorm runs at single-instance granularity
      // (see BatchNorm2d), which normalises away exactly the city-wide
      // congestion level this feature must convey; the two summary scalars
      // restore it.
      mlp_(kNumWeatherTypes + config.dtraf + 2, config.dm5, config.dm6, rng) {}

nn::Tensor ExternalFeaturesEncoder::Forward(
    int weather_type, const std::vector<double>& speed_matrix, size_t rows,
    size_t cols) {
  if (weather_type < 0 || weather_type >= static_cast<int>(kNumWeatherTypes)) {
    throw std::out_of_range("ExternalFeaturesEncoder: bad weather type");
  }
  if (speed_matrix.size() != rows * cols || rows == 0 || cols == 0) {
    throw std::invalid_argument("ExternalFeaturesEncoder: bad matrix shape");
  }
  size_t pr = 0, pc = 0;
  const std::vector<double> pooled =
      PoolMatrix(speed_matrix, rows, cols, max_dim_, &pr, &pc);
  double mean = 0.0;
  for (double v : pooled) mean += v;
  mean /= static_cast<double>(pooled.size());
  double var = 0.0;
  for (double v : pooled) var += (v - mean) * (v - mean);
  const double sd = std::sqrt(var / static_cast<double>(pooled.size()));
  const nn::Tensor matrix = nn::Tensor::FromData({1, pr, pc}, pooled);
  const nn::Tensor dtraf = cnn_.Forward(matrix);
  std::vector<double> onehot(kNumWeatherTypes, 0.0);
  onehot[static_cast<size_t>(weather_type)] = 1.0;
  const nn::Tensor z8 = nn::ConcatVec(
      {nn::Tensor::FromData({kNumWeatherTypes}, onehot), dtraf,
       nn::Tensor::FromData({2}, {mean, sd})});
  return mlp_.Forward(z8);  // Eq. 18 -> ocode
}

std::vector<nn::Tensor> ExternalFeaturesEncoder::Parameters() {
  auto params = cnn_.Parameters();
  auto mlp_params = mlp_.Parameters();
  params.insert(params.end(), mlp_params.begin(), mlp_params.end());
  return params;
}

void ExternalFeaturesEncoder::AppendState(const std::string& prefix,
                                          nn::StateDict& out) {
  cnn_.AppendState(nn::JoinName(prefix, "cnn."), out);
  mlp_.AppendState(nn::JoinName(prefix, "mlp."), out);
}

void ExternalFeaturesEncoder::SetTraining(bool training) {
  Module::SetTraining(training);
  cnn_.SetTraining(training);
}

size_t ExternalFeaturesEncoder::out_dim() const { return mlp_.out_dim(); }

std::vector<double> PoolMatrix(const std::vector<double>& matrix, size_t rows,
                               size_t cols, size_t max_dim, size_t* out_rows,
                               size_t* out_cols) {
  if (max_dim == 0) throw std::invalid_argument("PoolMatrix: max_dim 0");
  const size_t pr = std::min(rows, max_dim);
  const size_t pc = std::min(cols, max_dim);
  *out_rows = pr;
  *out_cols = pc;
  if (pr == rows && pc == cols) return matrix;
  std::vector<double> pooled(pr * pc, 0.0);
  std::vector<size_t> counts(pr * pc, 0);
  for (size_t r = 0; r < rows; ++r) {
    const size_t tr = r * pr / rows;
    for (size_t c = 0; c < cols; ++c) {
      const size_t tc = c * pc / cols;
      pooled[tr * pc + tc] += matrix[r * cols + c];
      counts[tr * pc + tc]++;
    }
  }
  for (size_t i = 0; i < pooled.size(); ++i) {
    if (counts[i] > 0) pooled[i] /= static_cast<double>(counts[i]);
  }
  return pooled;
}

}  // namespace deepod::core
