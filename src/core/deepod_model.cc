#include "core/deepod_model.h"

#include <algorithm>
#include <stdexcept>

#include "match/map_matcher.h"
#include "nn/ops.h"
#include "nn/serialize.h"
#include "road/routing.h"
#include "road/edge_graph.h"
#include "temporal/temporal_graph.h"

namespace deepod::core {
namespace {

// Initialises an embedding table from a graph embedding of `graph`, unless
// `use_random` (the one-hot-init ablations replace pre-training with the
// table's random initialisation).
void InitEmbedding(nn::Embedding& table, const util::WeightedDigraph& graph,
                   embed::EmbedMethod method, size_t dim, util::Rng& rng,
                   bool use_random) {
  if (use_random) return;  // keep the Embedding's own random init
  embed::EmbedOptions options;
  options.dim = dim;
  // A denser walk corpus than the library defaults: the pre-training cost
  // is one-off and a sharper initialisation measurably helps the small-data
  // regime the benches run in.
  options.walks_per_node = 8;
  options.walk_length = 30;
  options.window = 5;
  options.epochs = 3;
  const auto matrix = embed::EmbedGraph(graph, method, options, rng);
  table.LoadPretrained(matrix);
}

// The trajectory-derived constructor inputs, computed from the in-memory
// train split. The streamed path (deepod_train --feed sharded) computes the
// same two values in one pass over the trip shards instead.
std::unique_ptr<util::WeightedDigraph> TrainEdgeGraph(
    const DeepOdConfig& config, const sim::Dataset& dataset) {
  if (config.road_init == RoadInit::kOneHot) return nullptr;
  return std::make_unique<util::WeightedDigraph>(road::BuildEdgeGraph(
      dataset.network, dataset.TrainSegmentSequences()));
}

double TrainTimeScale(const sim::Dataset& dataset) {
  if (dataset.train.empty()) return 1.0;
  double sum = 0.0;
  for (const auto& t : dataset.train) sum += t.travel_time;
  return sum / static_cast<double>(dataset.train.size());
}

}  // namespace

DeepOdModel::DeepOdModel(const DeepOdConfig& config, const sim::Dataset& dataset)
    : DeepOdModel(config, dataset, TrainEdgeGraph(config, dataset).get(),
                  TrainTimeScale(dataset)) {}

DeepOdModel::DeepOdModel(const DeepOdConfig& config, const sim::Dataset& dataset,
                         const util::WeightedDigraph* edge_graph,
                         double time_scale)
    : config_(config),
      network_(dataset.network),
      speed_(dataset.speed_matrices.get()),
      slotter_(0.0, config.slot_seconds) {
  if (config_.dm4 != config_.dm8) {
    throw std::invalid_argument(
        "DeepOdModel: dm4 (stcode) must equal dm8 (code), §4.6");
  }
  util::Rng rng(config_.seed);

  // --- Embedding matrices (Algorithm 1 lines 1-4) --------------------------
  road_embedding_ = std::make_unique<nn::Embedding>(
      dataset.network.num_segments(), config_.ds, rng);
  const bool road_random = config_.road_init == RoadInit::kOneHot;
  if (!road_random) {
    if (edge_graph == nullptr) {
      throw std::invalid_argument(
          "DeepOdModel: road_init requires a co-occurrence edge graph");
    }
    InitEmbedding(*road_embedding_, *edge_graph, config_.embed_method,
                  config_.ds, rng, road_random);
  }

  const size_t num_slots =
      config_.time_init == TimeInit::kDailyGraph
          ? static_cast<size_t>(slotter_.slots_per_day())
          : static_cast<size_t>(slotter_.slots_per_week());
  time_slot_embedding_ =
      std::make_unique<nn::Embedding>(num_slots, config_.dt, rng);
  if (config_.time_init == TimeInit::kTemporalGraph) {
    InitEmbedding(*time_slot_embedding_,
                  temporal::BuildWeeklyTemporalGraph(slotter_),
                  config_.embed_method, config_.dt, rng, false);
  } else if (config_.time_init == TimeInit::kDailyGraph) {
    InitEmbedding(*time_slot_embedding_,
                  temporal::BuildDailyTemporalGraph(slotter_),
                  config_.embed_method, config_.dt, rng, false);
  }
  // TimeInit::kOneHot and kTimestamp keep / ignore the random table.

  BuildModules(rng);

  // Mean training travel time (1.0 when no training trips exist).
  time_scale_ = time_scale;
}

DeepOdModel::DeepOdModel(const DeepOdConfig& config,
                         const road::RoadNetwork& network,
                         const sim::SpeedProvider* speed)
    : config_(config),
      network_(network),
      speed_(speed),
      slotter_(0.0, config.slot_seconds) {
  if (config_.dm4 != config_.dm8) {
    throw std::invalid_argument(
        "DeepOdModel: dm4 (stcode) must equal dm8 (code), §4.6");
  }
  // Predict-only: random tables, no graph-embedding pre-training — every
  // value is expected to be overwritten by Load before the first Predict.
  util::Rng rng(config_.seed);
  road_embedding_ = std::make_unique<nn::Embedding>(network.num_segments(),
                                                    config_.ds, rng);
  const size_t num_slots =
      config_.time_init == TimeInit::kDailyGraph
          ? static_cast<size_t>(slotter_.slots_per_day())
          : static_cast<size_t>(slotter_.slots_per_week());
  time_slot_embedding_ =
      std::make_unique<nn::Embedding>(num_slots, config_.dt, rng);
  BuildModules(rng);
  SetTraining(false);
}

void DeepOdModel::BuildModules(util::Rng& rng) {
  trajectory_encoder_ = std::make_unique<TrajectoryEncoder>(
      config_, slotter_, *road_embedding_, *time_slot_embedding_, rng);
  external_encoder_ = std::make_unique<ExternalFeaturesEncoder>(config_, rng);
  // Z9 = concat(Ds_1, Ds_n, Dt, ocode, r[1], r[-1], tr) — §4.6.
  mlp1_ = std::make_unique<nn::Mlp2>(z9_dim(), config_.dm7, config_.dm8, rng);
  mlp2_ = std::make_unique<nn::Mlp2>(config_.dm8, config_.dm9, 1, rng);
}

nn::Tensor DeepOdModel::EncodeOd(const traj::OdInput& od) {
  const bool use_sp = config_.ablation != Ablation::kNoSp;
  const bool use_tp = config_.ablation != Ablation::kNoTp;

  nn::Tensor ds1 = use_sp ? road_embedding_->Forward(od.origin_segment)
                          : nn::Tensor::Zeros({config_.ds});
  nn::Tensor dsn = use_sp ? road_embedding_->Forward(od.dest_segment)
                          : nn::Tensor::Zeros({config_.ds});

  nn::Tensor dt_vec;
  double tr_norm = 0.0;
  if (!use_tp) {
    dt_vec = nn::Tensor::Zeros({config_.dt});
  } else if (config_.time_init == TimeInit::kTimestamp) {
    // T-stamp ablation: the raw departure timestamp as a scalar feature
    // (in days; §6.5 notes large raw values dominate other features, which
    // is exactly the failure mode this variant demonstrates).
    dt_vec = nn::Tensor::Zeros({config_.dt});
    dt_vec.set(0, od.departure_time / temporal::kSecondsPerDay);
    tr_norm = 0.0;
  } else {
    const int64_t slot = slotter_.Slot(od.departure_time);
    const int64_t node = config_.time_init == TimeInit::kDailyGraph
                             ? slotter_.DailyNode(slot)
                             : slotter_.WeeklyNode(slot);
    dt_vec = time_slot_embedding_->Forward(static_cast<size_t>(node));
    tr_norm = slotter_.Remainder(od.departure_time) / slotter_.slot_seconds();
  }

  const nn::Tensor ocode = EncodeExternal(od);

  const nn::Tensor extras = nn::Tensor::FromData(
      {3}, {od.origin_ratio, od.dest_ratio, tr_norm});
  const nn::Tensor z9 = nn::ConcatVec({ds1, dsn, dt_vec, ocode, extras});
  return mlp1_->Forward(z9);  // Eq. 19 -> code
}

nn::Tensor DeepOdModel::EncodeTrajectory(
    const traj::MatchedTrajectory& trajectory) {
  return trajectory_encoder_->Forward(trajectory);
}

nn::Tensor DeepOdModel::EstimateFromCode(const nn::Tensor& code) {
  return mlp2_->Forward(code);  // Eq. 20 (normalised units)
}

nn::Tensor DeepOdModel::EncodeExternal(const traj::OdInput& od) {
  const bool use_other = config_.ablation != Ablation::kNoOther;
  if (!use_other || speed_ == nullptr) {
    return nn::Tensor::Zeros({config_.dm6});
  }
  const auto& matrices = *speed_;
  // Memo only in serving conditions: no autograd (a memoised leaf has no
  // graph to offer) and training off (a training-mode forward updates
  // BatchNorm running statistics, a side effect a memo hit would skip).
  const bool memoize =
      !nn::GradEnabled() && !training_ && ocode_memo_capacity_ > 0;
  uint64_t key = 0;
  if (memoize) {
    const auto snapshot = static_cast<int64_t>(
        matrices.SnapshotTime(od.departure_time) / matrices.snapshot_seconds());
    key = (static_cast<uint64_t>(static_cast<uint32_t>(od.weather_type)) << 32) ^
          static_cast<uint64_t>(snapshot);
    std::lock_guard<std::mutex> lock(ocode_memo_mu_);
    auto it = ocode_memo_.find(key);
    if (it != ocode_memo_.end()) {
      return nn::Tensor::FromData({config_.dm6},
                                  std::vector<double>(*it->second));
    }
  }
  const auto matrix = matrices.MatrixAt(od.departure_time);
  nn::Tensor ocode = external_encoder_->Forward(od.weather_type, matrix,
                                                matrices.rows(),
                                                matrices.cols());
  if (memoize) {
    auto entry = std::make_shared<const std::vector<double>>(ocode.data());
    std::lock_guard<std::mutex> lock(ocode_memo_mu_);
    if (ocode_memo_.size() >= ocode_memo_capacity_) ocode_memo_.clear();
    ocode_memo_.emplace(key, std::move(entry));
  }
  return ocode;
}

double DeepOdModel::Predict(const traj::OdInput& od) {
  const nn::InferenceGuard guard;
  const nn::Tensor code = EncodeOd(od);
  const nn::Tensor y = EstimateFromCode(code);
  return y.item() * time_scale_;
}

void DeepOdModel::FillOdFeatureRow(const traj::OdInput& od, double* row) {
  const bool use_sp = config_.ablation != Ablation::kNoSp;
  const bool use_tp = config_.ablation != Ablation::kNoTp;
  double* p = row;

  const auto& road_table = road_embedding_->table().data();
  if (use_sp) {
    std::copy_n(&road_table[od.origin_segment * config_.ds], config_.ds, p);
    std::copy_n(&road_table[od.dest_segment * config_.ds], config_.ds,
                p + config_.ds);
  } else {
    std::fill_n(p, 2 * config_.ds, 0.0);
  }
  p += 2 * config_.ds;

  double tr_norm = 0.0;
  if (!use_tp) {
    std::fill_n(p, config_.dt, 0.0);
  } else if (config_.time_init == TimeInit::kTimestamp) {
    std::fill_n(p, config_.dt, 0.0);
    p[0] = od.departure_time / temporal::kSecondsPerDay;
  } else {
    const int64_t slot = slotter_.Slot(od.departure_time);
    const int64_t node = config_.time_init == TimeInit::kDailyGraph
                             ? slotter_.DailyNode(slot)
                             : slotter_.WeeklyNode(slot);
    const auto& time_table = time_slot_embedding_->table().data();
    std::copy_n(&time_table[static_cast<size_t>(node) * config_.dt],
                config_.dt, p);
    tr_norm = slotter_.Remainder(od.departure_time) / slotter_.slot_seconds();
  }
  p += config_.dt;

  const nn::Tensor ocode = EncodeExternal(od);
  const auto& od_data = ocode.data();
  std::copy(od_data.begin(), od_data.end(), p);
  p += config_.dm6;

  p[0] = od.origin_ratio;
  p[1] = od.dest_ratio;
  p[2] = tr_norm;
}

std::vector<double> DeepOdModel::PredictBatch(
    std::span<const traj::OdInput> ods, util::ThreadPool* pool) {
  std::vector<double> out(ods.size());
  if (ods.empty()) return out;
  const size_t n = ods.size();
  const size_t z9 = z9_dim();
  const auto run_chunk = [&](size_t begin, size_t end) {
    const nn::InferenceGuard guard;
    const size_t m = end - begin;
    auto rows = nn::AcquireBuffer(m * z9);
    for (size_t i = begin; i < end; ++i) {
      FillOdFeatureRow(ods[i], &rows[(i - begin) * z9]);
    }
    const nn::Tensor x = nn::Tensor::FromData({m, z9}, std::move(rows));
    const nn::Tensor codes = mlp1_->ForwardBatch(x);   // Eq. 19, batched
    const nn::Tensor ys = mlp2_->ForwardBatch(codes);  // Eq. 20, batched
    const auto& yd = ys.data();
    for (size_t i = begin; i < end; ++i) {
      out[i] = yd[i - begin] * time_scale_;
    }
  };
  const size_t tasks =
      pool != nullptr ? std::min(pool->num_threads(), n) : size_t{1};
  if (tasks <= 1) {
    run_chunk(0, n);
    return out;
  }
  // Workers inherit the caller's kernel mode; rows are independent in every
  // stage, so the chunk boundaries cannot change any result.
  const nn::KernelMode mode = nn::GetKernelMode();
  pool->ParallelFor(tasks, [&](size_t w) {
    const nn::KernelModeScope mode_scope(mode);
    const auto [begin, end] = util::ThreadPool::ChunkRange(n, tasks, w);
    run_chunk(begin, end);
  });
  return out;
}

void DeepOdModel::SetOcodeMemoCapacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(ocode_memo_mu_);
  ocode_memo_capacity_ = capacity;
  ocode_memo_.clear();
}

void DeepOdModel::ClearOcodeMemo() {
  std::lock_guard<std::mutex> lock(ocode_memo_mu_);
  ocode_memo_.clear();
}

void DeepOdModel::SetSpeedProvider(const sim::SpeedProvider* speed) {
  speed_ = speed;
  ClearOcodeMemo();
}

traj::MatchedTrajectory DeepOdModel::BuildRoutePseudoTrajectory(
    const traj::OdInput& od, const std::vector<size_t>& route_segments) const {
  if (route_segments.empty()) {
    throw std::invalid_argument("PredictForRoute: empty route");
  }
  if (route_segments.front() != od.origin_segment ||
      route_segments.back() != od.dest_segment) {
    throw std::invalid_argument(
        "PredictForRoute: route must start/end at the OD's matched segments");
  }
  if (!road::IsConnectedPath(network_, route_segments)) {
    throw std::invalid_argument("PredictForRoute: route is not connected");
  }
  // Pseudo spatio-temporal path: distribute a free-flow-expected duration
  // over the route with the §2 linear interpolation.
  double expected_seconds = 0.0;
  for (size_t i = 0; i < route_segments.size(); ++i) {
    const auto& s = network_.segment(route_segments[i]);
    double fraction = 1.0;
    if (route_segments.size() == 1) {
      fraction = std::max(0.01, od.dest_ratio - od.origin_ratio);
    } else if (i == 0) {
      fraction = 1.0 - od.origin_ratio;
    } else if (i + 1 == route_segments.size()) {
      fraction = od.dest_ratio;
    }
    expected_seconds += fraction * s.length / s.free_flow_speed;
  }
  traj::MatchedTrajectory pseudo;
  pseudo.origin_ratio = od.origin_ratio;
  pseudo.dest_ratio = od.dest_ratio;
  pseudo.path = match::InterpolateIntervals(
      network_, route_segments, od.origin_ratio, od.dest_ratio,
      od.departure_time, od.departure_time + expected_seconds);
  return pseudo;
}

double DeepOdModel::PredictForRoute(const traj::OdInput& od,
                                    const std::vector<size_t>& route_segments) {
  const traj::MatchedTrajectory pseudo =
      BuildRoutePseudoTrajectory(od, route_segments);
  const nn::InferenceGuard guard;
  const nn::Tensor stcode = EncodeTrajectory(pseudo);
  return EstimateFromCode(stcode).item() * time_scale_;
}

nn::Tensor DeepOdModel::SampleLoss(const traj::TripRecord& record) {
  const nn::Tensor code = EncodeOd(record.od);
  const nn::Tensor estimate = EstimateFromCode(code);
  const nn::Tensor target =
      nn::Tensor::Scalar(record.travel_time / time_scale_);
  // mainloss is the MAE in *seconds* (Algorithm 1 line 11): the head works
  // in normalised units for conditioning, and the loss rescales back so the
  // paper's balance between mainloss (hundreds) and auxiliaryloss (O(1)
  // embedding distance) is preserved — that balance is what makes the w
  // sweep of Fig. 9 behave gently.
  const nn::Tensor main_loss =
      nn::Scale(nn::MaeLoss(estimate, target), time_scale_);
  const bool use_aux = config_.ablation != Ablation::kNoSt &&
                       !record.trajectory.empty() && config_.loss_weight_w > 0.0;
  if (!use_aux) return main_loss;
  const nn::Tensor stcode = EncodeTrajectory(record.trajectory);
  const nn::Tensor aux_loss = nn::EuclideanDistance(code, stcode);
  const double w = config_.loss_weight_w;
  nn::Tensor grounded_main = main_loss;
  if (config_.supervise_stcode) {
    // Keep stcode anchored to the label (see DeepOdConfig::supervise_stcode).
    const nn::Tensor st_estimate = EstimateFromCode(stcode);
    grounded_main = nn::Scale(
        nn::Add(main_loss, nn::MaeLoss(st_estimate, target)), 0.5);
  }
  return nn::Add(nn::Scale(aux_loss, w), nn::Scale(grounded_main, 1.0 - w));
}

void DeepOdModel::Save(const std::string& path) {
  // Tagged state dict: every parameter, every BatchNorm buffer and the time
  // scale under hierarchical names — one self-describing file captures
  // everything Predict needs.
  nn::StateDict state = State();
  nn::ThrowIfError(nn::SaveStateDict(path, state));
}

void DeepOdModel::Load(const std::string& path) {
  std::vector<uint8_t> buffer;
  nn::ThrowIfError(nn::ReadFileBytes(path, &buffer));
  if (nn::IsLegacyParameterBuffer(buffer)) {
    // Legacy positional blob: parameters + a trailing time-scale scalar.
    // BatchNorm buffers keep their current values — the old format never
    // stored them (the gap the state-dict format closes).
    auto params = Parameters();
    nn::Tensor scale = nn::Tensor::Scalar(0.0);
    params.push_back(scale);
    nn::DeserializeParameters(buffer, params);
    time_scale_ = scale.item();
  } else {
    nn::StateDict state = State();
    nn::ThrowIfError(nn::DeserializeStateDict(buffer, state));
  }
  ClearOcodeMemo();
}

std::vector<nn::Tensor> DeepOdModel::Parameters() {
  std::vector<nn::Tensor> params;
  auto append = [&params](std::vector<nn::Tensor> p) {
    params.insert(params.end(), p.begin(), p.end());
  };
  append(road_embedding_->Parameters());
  append(time_slot_embedding_->Parameters());
  append(trajectory_encoder_->Parameters());
  append(external_encoder_->Parameters());
  append(mlp1_->Parameters());
  append(mlp2_->Parameters());
  return params;
}

void DeepOdModel::AppendState(const std::string& prefix, nn::StateDict& out) {
  road_embedding_->AppendState(nn::JoinName(prefix, "road_embedding."), out);
  time_slot_embedding_->AppendState(
      nn::JoinName(prefix, "time_slot_embedding."), out);
  trajectory_encoder_->AppendState(
      nn::JoinName(prefix, "trajectory_encoder."), out);
  external_encoder_->AppendState(
      nn::JoinName(prefix, "external_encoder."), out);
  mlp1_->AppendState(nn::JoinName(prefix, "mlp1."), out);
  mlp2_->AppendState(nn::JoinName(prefix, "mlp2."), out);
  out.AddScalarBuffer(nn::JoinName(prefix, "time_scale"), &time_scale_);
}

void DeepOdModel::SetTraining(bool training) {
  Module::SetTraining(training);
  trajectory_encoder_->SetTraining(training);
  external_encoder_->SetTraining(training);
  // Mode flips bracket parameter updates (the trainer toggles around every
  // validation pass), so cached ocodes may be stale — drop them.
  std::lock_guard<std::mutex> lock(ocode_memo_mu_);
  ocode_memo_.clear();
}

}  // namespace deepod::core
