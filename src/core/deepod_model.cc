#include "core/deepod_model.h"

#include <algorithm>
#include <stdexcept>

#include "match/map_matcher.h"
#include "nn/ops.h"
#include "nn/serialize.h"
#include "road/routing.h"
#include "road/edge_graph.h"
#include "temporal/temporal_graph.h"

namespace deepod::core {
namespace {

// Initialises an embedding table from a graph embedding of `graph`, unless
// `use_random` (the one-hot-init ablations replace pre-training with the
// table's random initialisation).
void InitEmbedding(nn::Embedding& table, const util::WeightedDigraph& graph,
                   embed::EmbedMethod method, size_t dim, util::Rng& rng,
                   bool use_random) {
  if (use_random) return;  // keep the Embedding's own random init
  embed::EmbedOptions options;
  options.dim = dim;
  // A denser walk corpus than the library defaults: the pre-training cost
  // is one-off and a sharper initialisation measurably helps the small-data
  // regime the benches run in.
  options.walks_per_node = 8;
  options.walk_length = 30;
  options.window = 5;
  options.epochs = 3;
  const auto matrix = embed::EmbedGraph(graph, method, options, rng);
  table.LoadPretrained(matrix);
}

}  // namespace

DeepOdModel::DeepOdModel(const DeepOdConfig& config, const sim::Dataset& dataset)
    : config_(config),
      dataset_(dataset),
      slotter_(0.0, config.slot_seconds) {
  if (config_.dm4 != config_.dm8) {
    throw std::invalid_argument(
        "DeepOdModel: dm4 (stcode) must equal dm8 (code), §4.6");
  }
  util::Rng rng(config_.seed);

  // --- Embedding matrices (Algorithm 1 lines 1-4) --------------------------
  road_embedding_ = std::make_unique<nn::Embedding>(
      dataset.network.num_segments(), config_.ds, rng);
  const bool road_random = config_.road_init == RoadInit::kOneHot;
  if (!road_random) {
    const auto edge_graph = road::BuildEdgeGraph(
        dataset.network, dataset.TrainSegmentSequences());
    InitEmbedding(*road_embedding_, edge_graph, config_.embed_method,
                  config_.ds, rng, road_random);
  }

  const size_t num_slots =
      config_.time_init == TimeInit::kDailyGraph
          ? static_cast<size_t>(slotter_.slots_per_day())
          : static_cast<size_t>(slotter_.slots_per_week());
  time_slot_embedding_ =
      std::make_unique<nn::Embedding>(num_slots, config_.dt, rng);
  if (config_.time_init == TimeInit::kTemporalGraph) {
    InitEmbedding(*time_slot_embedding_,
                  temporal::BuildWeeklyTemporalGraph(slotter_),
                  config_.embed_method, config_.dt, rng, false);
  } else if (config_.time_init == TimeInit::kDailyGraph) {
    InitEmbedding(*time_slot_embedding_,
                  temporal::BuildDailyTemporalGraph(slotter_),
                  config_.embed_method, config_.dt, rng, false);
  }
  // TimeInit::kOneHot and kTimestamp keep / ignore the random table.

  // --- Modules --------------------------------------------------------------
  trajectory_encoder_ = std::make_unique<TrajectoryEncoder>(
      config_, slotter_, *road_embedding_, *time_slot_embedding_, rng);
  external_encoder_ = std::make_unique<ExternalFeaturesEncoder>(config_, rng);
  // Z9 = concat(Ds_1, Ds_n, Dt, ocode, r[1], r[-1], tr) — §4.6.
  const size_t z9_dim = config_.ds * 2 + config_.dt + config_.dm6 + 3;
  mlp1_ = std::make_unique<nn::Mlp2>(z9_dim, config_.dm7, config_.dm8, rng);
  mlp2_ = std::make_unique<nn::Mlp2>(config_.dm8, config_.dm9, 1, rng);

  // Default time scale: mean training travel time.
  if (!dataset.train.empty()) {
    double sum = 0.0;
    for (const auto& t : dataset.train) sum += t.travel_time;
    time_scale_ = sum / static_cast<double>(dataset.train.size());
  }
}

nn::Tensor DeepOdModel::EncodeOd(const traj::OdInput& od) {
  const bool use_sp = config_.ablation != Ablation::kNoSp;
  const bool use_tp = config_.ablation != Ablation::kNoTp;
  const bool use_other = config_.ablation != Ablation::kNoOther;

  nn::Tensor ds1 = use_sp ? road_embedding_->Forward(od.origin_segment)
                          : nn::Tensor::Zeros({config_.ds});
  nn::Tensor dsn = use_sp ? road_embedding_->Forward(od.dest_segment)
                          : nn::Tensor::Zeros({config_.ds});

  nn::Tensor dt_vec;
  double tr_norm = 0.0;
  if (!use_tp) {
    dt_vec = nn::Tensor::Zeros({config_.dt});
  } else if (config_.time_init == TimeInit::kTimestamp) {
    // T-stamp ablation: the raw departure timestamp as a scalar feature
    // (in days; §6.5 notes large raw values dominate other features, which
    // is exactly the failure mode this variant demonstrates).
    dt_vec = nn::Tensor::Zeros({config_.dt});
    dt_vec.set(0, od.departure_time / temporal::kSecondsPerDay);
    tr_norm = 0.0;
  } else {
    const int64_t slot = slotter_.Slot(od.departure_time);
    const int64_t node = config_.time_init == TimeInit::kDailyGraph
                             ? slotter_.DailyNode(slot)
                             : slotter_.WeeklyNode(slot);
    dt_vec = time_slot_embedding_->Forward(static_cast<size_t>(node));
    tr_norm = slotter_.Remainder(od.departure_time) / slotter_.slot_seconds();
  }

  nn::Tensor ocode;
  if (use_other && dataset_.speed_matrices != nullptr) {
    const auto matrix = dataset_.speed_matrices->MatrixAt(od.departure_time);
    ocode = external_encoder_->Forward(od.weather_type, matrix,
                                       dataset_.speed_matrices->rows(),
                                       dataset_.speed_matrices->cols());
  } else {
    ocode = nn::Tensor::Zeros({config_.dm6});
  }

  const nn::Tensor extras = nn::Tensor::FromData(
      {3}, {od.origin_ratio, od.dest_ratio, tr_norm});
  const nn::Tensor z9 = nn::ConcatVec({ds1, dsn, dt_vec, ocode, extras});
  return mlp1_->Forward(z9);  // Eq. 19 -> code
}

nn::Tensor DeepOdModel::EncodeTrajectory(
    const traj::MatchedTrajectory& trajectory) {
  return trajectory_encoder_->Forward(trajectory);
}

nn::Tensor DeepOdModel::EstimateFromCode(const nn::Tensor& code) {
  return mlp2_->Forward(code);  // Eq. 20 (normalised units)
}

double DeepOdModel::Predict(const traj::OdInput& od) {
  const nn::Tensor code = EncodeOd(od);
  const nn::Tensor y = EstimateFromCode(code);
  return y.item() * time_scale_;
}

double DeepOdModel::PredictForRoute(const traj::OdInput& od,
                                    const std::vector<size_t>& route_segments) {
  if (route_segments.empty()) {
    throw std::invalid_argument("PredictForRoute: empty route");
  }
  if (route_segments.front() != od.origin_segment ||
      route_segments.back() != od.dest_segment) {
    throw std::invalid_argument(
        "PredictForRoute: route must start/end at the OD's matched segments");
  }
  if (!road::IsConnectedPath(dataset_.network, route_segments)) {
    throw std::invalid_argument("PredictForRoute: route is not connected");
  }
  // Pseudo spatio-temporal path: distribute a free-flow-expected duration
  // over the route with the §2 linear interpolation.
  double expected_seconds = 0.0;
  for (size_t i = 0; i < route_segments.size(); ++i) {
    const auto& s = dataset_.network.segment(route_segments[i]);
    double fraction = 1.0;
    if (route_segments.size() == 1) {
      fraction = std::max(0.01, od.dest_ratio - od.origin_ratio);
    } else if (i == 0) {
      fraction = 1.0 - od.origin_ratio;
    } else if (i + 1 == route_segments.size()) {
      fraction = od.dest_ratio;
    }
    expected_seconds += fraction * s.length / s.free_flow_speed;
  }
  traj::MatchedTrajectory pseudo;
  pseudo.origin_ratio = od.origin_ratio;
  pseudo.dest_ratio = od.dest_ratio;
  pseudo.path = match::InterpolateIntervals(
      dataset_.network, route_segments, od.origin_ratio, od.dest_ratio,
      od.departure_time, od.departure_time + expected_seconds);
  const nn::Tensor stcode = EncodeTrajectory(pseudo);
  return EstimateFromCode(stcode).item() * time_scale_;
}

nn::Tensor DeepOdModel::SampleLoss(const traj::TripRecord& record) {
  const nn::Tensor code = EncodeOd(record.od);
  const nn::Tensor estimate = EstimateFromCode(code);
  const nn::Tensor target =
      nn::Tensor::Scalar(record.travel_time / time_scale_);
  // mainloss is the MAE in *seconds* (Algorithm 1 line 11): the head works
  // in normalised units for conditioning, and the loss rescales back so the
  // paper's balance between mainloss (hundreds) and auxiliaryloss (O(1)
  // embedding distance) is preserved — that balance is what makes the w
  // sweep of Fig. 9 behave gently.
  const nn::Tensor main_loss =
      nn::Scale(nn::MaeLoss(estimate, target), time_scale_);
  const bool use_aux = config_.ablation != Ablation::kNoSt &&
                       !record.trajectory.empty() && config_.loss_weight_w > 0.0;
  if (!use_aux) return main_loss;
  const nn::Tensor stcode = EncodeTrajectory(record.trajectory);
  const nn::Tensor aux_loss = nn::EuclideanDistance(code, stcode);
  const double w = config_.loss_weight_w;
  nn::Tensor grounded_main = main_loss;
  if (config_.supervise_stcode) {
    // Keep stcode anchored to the label (see DeepOdConfig::supervise_stcode).
    const nn::Tensor st_estimate = EstimateFromCode(stcode);
    grounded_main = nn::Scale(
        nn::Add(main_loss, nn::MaeLoss(st_estimate, target)), 0.5);
  }
  return nn::Add(nn::Scale(aux_loss, w), nn::Scale(grounded_main, 1.0 - w));
}

void DeepOdModel::Save(const std::string& path) {
  // Append the time scale as one extra parameter tensor so a single file
  // captures everything Predict needs.
  auto params = Parameters();
  params.push_back(nn::Tensor::Scalar(time_scale_));
  nn::SaveParameters(path, params);
}

void DeepOdModel::Load(const std::string& path) {
  auto params = Parameters();
  nn::Tensor scale = nn::Tensor::Scalar(0.0);
  params.push_back(scale);
  nn::LoadParameters(path, params);
  time_scale_ = scale.item();
}

std::vector<nn::Tensor> DeepOdModel::Parameters() {
  std::vector<nn::Tensor> params;
  auto append = [&params](std::vector<nn::Tensor> p) {
    params.insert(params.end(), p.begin(), p.end());
  };
  append(road_embedding_->Parameters());
  append(time_slot_embedding_->Parameters());
  append(trajectory_encoder_->Parameters());
  append(external_encoder_->Parameters());
  append(mlp1_->Parameters());
  append(mlp2_->Parameters());
  return params;
}

void DeepOdModel::SetTraining(bool training) {
  Module::SetTraining(training);
  trajectory_encoder_->SetTraining(training);
  external_encoder_->SetTraining(training);
}

}  // namespace deepod::core
