#ifndef DEEPOD_CORE_ENCODERS_H_
#define DEEPOD_CORE_ENCODERS_H_

#include <memory>
#include <vector>

#include "core/deepod_config.h"
#include "nn/conv.h"
#include "nn/lstm.h"
#include "nn/module.h"
#include "temporal/time_slot.h"
#include "traj/trajectory.h"

namespace deepod::core {

// Time Interval Encoder (§4.3, Fig. 6). Converts an interval [t[1], t[-1]]
// into tcode: the covered time slots are looked up in the shared time-slot
// embedding Wt, stacked into the Δd x d_t matrix D^t, passed through the
// CNN ResNet block (Eq. 5-8), average-pooled over slots (Eq. 10),
// concatenated with the two time remainders (normalised by Δt so they are
// O(1) features) and projected by a two-layer MLP (Eq. 11).
class TimeIntervalEncoder : public nn::Module {
 public:
  TimeIntervalEncoder(const DeepOdConfig& config,
                      const temporal::TimeSlotter& slotter,
                      nn::Embedding& time_slot_embedding, util::Rng& rng);

  nn::Tensor Forward(temporal::Timestamp t1, temporal::Timestamp t2);

  std::vector<nn::Tensor> Parameters() override;
  void AppendState(const std::string& prefix, nn::StateDict& out) override;
  void SetTraining(bool training) override;

  size_t out_dim() const;

 private:
  const temporal::TimeSlotter& slotter_;
  nn::Embedding& time_slot_embedding_;  // shared, owned by DeepOdModel
  bool daily_graph_;
  nn::ResNetTimeBlock resnet_;
  nn::Mlp2 mlp_;
};

// Trajectory Encoder (§4.4, Fig. 7; the module M_T). Each spatio-temporal
// path element contributes concat(tcode_i, D^s_i); the sequence runs
// through an LSTM (Eq. 12-16) and the final state is merged with the two
// position ratios through a two-layer MLP (Eq. 17) into stcode.
class TrajectoryEncoder : public nn::Module {
 public:
  TrajectoryEncoder(const DeepOdConfig& config,
                    const temporal::TimeSlotter& slotter,
                    nn::Embedding& road_embedding,
                    nn::Embedding& time_slot_embedding, util::Rng& rng);

  nn::Tensor Forward(const traj::MatchedTrajectory& trajectory);

  std::vector<nn::Tensor> Parameters() override;
  void AppendState(const std::string& prefix, nn::StateDict& out) override;
  void SetTraining(bool training) override;

  size_t out_dim() const;

 private:
  const DeepOdConfig config_;
  nn::Embedding& road_embedding_;
  TimeIntervalEncoder interval_encoder_;
  nn::Lstm lstm_;
  nn::Mlp2 mlp_;
};

// External Features Encoder (§4.5). One-hot weather (N_wea = 16) plus the
// CNN encoding of the current speed matrix, merged by a two-layer MLP
// (Eq. 18) into ocode. The speed matrix is average-pooled down to at most
// max_speed_matrix_dim per side before the CNN (see DeepOdConfig).
class ExternalFeaturesEncoder : public nn::Module {
 public:
  static constexpr size_t kNumWeatherTypes = 16;

  ExternalFeaturesEncoder(const DeepOdConfig& config, util::Rng& rng);

  // `speed_matrix` is row-major rows x cols in [0,1].
  nn::Tensor Forward(int weather_type, const std::vector<double>& speed_matrix,
                     size_t rows, size_t cols);

  std::vector<nn::Tensor> Parameters() override;
  void AppendState(const std::string& prefix, nn::StateDict& out) override;
  void SetTraining(bool training) override;

  size_t out_dim() const;

 private:
  size_t max_dim_;
  nn::TrafficCnn cnn_;
  nn::Mlp2 mlp_;
};

// Average-pools a rows x cols matrix down so neither side exceeds max_dim.
// Exposed for testing.
std::vector<double> PoolMatrix(const std::vector<double>& matrix, size_t rows,
                               size_t cols, size_t max_dim, size_t* out_rows,
                               size_t* out_cols);

}  // namespace deepod::core

#endif  // DEEPOD_CORE_ENCODERS_H_
