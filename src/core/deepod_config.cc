#include "core/deepod_config.h"

#include <algorithm>

namespace deepod::core {

DeepOdConfig DeepOdConfig::Scaled(size_t factor) const {
  DeepOdConfig c = *this;
  auto scale = [factor](size_t v) {
    return std::max<size_t>(4, v / std::max<size_t>(1, factor));
  };
  c.ds = scale(ds);
  c.dt = scale(dt);
  c.dm1 = scale(dm1);
  c.dm2 = scale(dm2);
  c.dm3 = scale(dm3);
  c.dm4 = scale(dm4);
  c.dm5 = scale(dm5);
  c.dm6 = scale(dm6);
  c.dm7 = scale(dm7);
  c.dm8 = scale(dm8);
  c.dm9 = scale(dm9);
  c.dh = scale(dh);
  c.dtraf = scale(dtraf);
  return c;
}

}  // namespace deepod::core
