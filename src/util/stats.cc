#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace deepod::util {

double Mean(const std::vector<double>& v) {
  if (v.empty()) throw std::invalid_argument("Mean: empty input");
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double Variance(const std::vector<double>& v) {
  const double m = Mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return s / static_cast<double>(v.size());
}

double Stddev(const std::vector<double>& v) { return std::sqrt(Variance(v)); }

double Min(const std::vector<double>& v) {
  if (v.empty()) throw std::invalid_argument("Min: empty input");
  return *std::min_element(v.begin(), v.end());
}

double Max(const std::vector<double>& v) {
  if (v.empty()) throw std::invalid_argument("Max: empty input");
  return *std::max_element(v.begin(), v.end());
}

double Quantile(std::vector<double> v, double q) {
  if (v.empty()) throw std::invalid_argument("Quantile: empty input");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("Quantile: q out of [0,1]");
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

BoxStats Box(const std::vector<double>& v) {
  BoxStats b;
  b.min = Quantile(v, 0.0);
  b.q1 = Quantile(v, 0.25);
  b.median = Quantile(v, 0.5);
  b.q3 = Quantile(v, 0.75);
  b.max = Quantile(v, 1.0);
  return b;
}

std::vector<double> HistogramDensity(const std::vector<double>& v, double lo,
                                     double hi, size_t bins) {
  if (bins == 0) throw std::invalid_argument("HistogramDensity: zero bins");
  if (hi <= lo) throw std::invalid_argument("HistogramDensity: hi <= lo");
  std::vector<double> density(bins, 0.0);
  if (v.empty()) return density;
  const double width = (hi - lo) / static_cast<double>(bins);
  for (double x : v) {
    double pos = (x - lo) / width;
    long idx = static_cast<long>(std::floor(pos));
    idx = std::clamp<long>(idx, 0, static_cast<long>(bins) - 1);
    density[static_cast<size_t>(idx)] += 1.0;
  }
  const double norm = static_cast<double>(v.size()) * width;
  for (double& d : density) d /= norm;
  return density;
}

double Pearson(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size() || a.size() < 2) return 0.0;
  const double ma = Mean(a), mb = Mean(b);
  double num = 0.0, da = 0.0, db = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    num += (a[i] - ma) * (b[i] - mb);
    da += (a[i] - ma) * (a[i] - ma);
    db += (b[i] - mb) * (b[i] - mb);
  }
  if (da <= 0.0 || db <= 0.0) return 0.0;
  return num / std::sqrt(da * db);
}

}  // namespace deepod::util
