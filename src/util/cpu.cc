#include "util/cpu.h"

#include <cstdlib>
#include <string>

namespace deepod::util {
namespace {

bool ProbeAvx2Fma() {
#if defined(__x86_64__) || defined(__i386__)
  // __builtin_cpu_supports reads cpuid once via the compiler runtime; both
  // features must be present (AVX2 without FMA exists on some VMs).
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

SimdOverride ParseOverride() {
  const char* raw = std::getenv("DEEPOD_SIMD");
  if (raw == nullptr) return SimdOverride::kAuto;
  const std::string value(raw);
  if (value == "off" || value == "0" || value == "scalar") {
    return SimdOverride::kOff;
  }
  if (value == "avx2") return SimdOverride::kAvx2;
  return SimdOverride::kAuto;
}

}  // namespace

bool CpuHasAvx2Fma() {
  static const bool supported = ProbeAvx2Fma();
  return supported;
}

SimdOverride SimdEnvOverride() {
  static const SimdOverride override_value = ParseOverride();
  return override_value;
}

}  // namespace deepod::util
