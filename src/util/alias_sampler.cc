#include "util/alias_sampler.h"

#include <stdexcept>

namespace deepod::util {

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  const size_t n = weights.size();
  if (n == 0) throw std::invalid_argument("AliasSampler: empty weights");
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("AliasSampler: negative weight");
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("AliasSampler: zero total weight");

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  std::vector<size_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    const size_t s = small.back();
    small.pop_back();
    const size_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Numerical leftovers all have probability 1.
  for (size_t i : large) prob_[i] = 1.0;
  for (size_t i : small) prob_[i] = 1.0;
}

size_t AliasSampler::Sample(Rng& rng) const {
  const size_t i = rng.UniformInt(static_cast<uint64_t>(prob_.size()));
  return rng.Uniform() < prob_[i] ? i : alias_[i];
}

}  // namespace deepod::util
