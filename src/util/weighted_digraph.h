#ifndef DEEPOD_UTIL_WEIGHTED_DIGRAPH_H_
#define DEEPOD_UTIL_WEIGHTED_DIGRAPH_H_

#include <cstddef>
#include <vector>

namespace deepod::util {

// A minimal directed graph with non-negative edge weights, used as the
// common input format for the unsupervised graph-embedding algorithms
// (§4.1 edge graph, §4.2 temporal graph).
class WeightedDigraph {
 public:
  struct Arc {
    size_t to = 0;
    double weight = 1.0;
  };

  WeightedDigraph() = default;
  explicit WeightedDigraph(size_t num_nodes) : adj_(num_nodes) {}

  size_t num_nodes() const { return adj_.size(); }

  size_t num_arcs() const {
    size_t n = 0;
    for (const auto& a : adj_) n += a.size();
    return n;
  }

  void AddNode() { adj_.emplace_back(); }

  // Adds arc from -> to. Duplicate arcs are allowed and add weight
  // independently (callers that need merged weights use AddOrAccumulate).
  void AddArc(size_t from, size_t to, double weight = 1.0) {
    adj_.at(from).push_back({to, weight});
    (void)adj_.at(to);  // bounds-check `to` as well
  }

  // Adds weight to an existing from->to arc, or creates it.
  void AddOrAccumulate(size_t from, size_t to, double weight) {
    auto& arcs = adj_.at(from);
    (void)adj_.at(to);
    for (auto& a : arcs) {
      if (a.to == to) {
        a.weight += weight;
        return;
      }
    }
    arcs.push_back({to, weight});
  }

  const std::vector<Arc>& OutArcs(size_t node) const { return adj_.at(node); }

  // Total outgoing weight of a node.
  double OutWeight(size_t node) const {
    double s = 0.0;
    for (const auto& a : adj_.at(node)) s += a.weight;
    return s;
  }

  bool HasArc(size_t from, size_t to) const {
    for (const auto& a : adj_.at(from)) {
      if (a.to == to) return true;
    }
    return false;
  }

 private:
  std::vector<std::vector<Arc>> adj_;
};

}  // namespace deepod::util

#endif  // DEEPOD_UTIL_WEIGHTED_DIGRAPH_H_
