#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <string>

namespace deepod::util {

ThreadPool::ThreadPool(size_t num_threads)
    : num_threads_(std::max<size_t>(1, num_threads)) {
  // The caller participates in ParallelFor, so n-way parallelism needs only
  // n-1 dedicated workers.
  workers_.reserve(num_threads_ - 1);
  for (size_t i = 0; i + 1 < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::DrainBatch(std::unique_lock<std::mutex>& lock) {
  while (batch_.next_task < batch_.num_tasks) {
    const size_t task = batch_.next_task++;
    lock.unlock();
    std::exception_ptr error;
    try {
      (*batch_.fn)(task);
    } catch (...) {
      error = std::current_exception();
    }
    lock.lock();
    if (error && !batch_.error) batch_.error = error;
    if (--batch_.unfinished == 0) done_cv_.notify_all();
  }
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  uint64_t seen_generation = 0;
  while (true) {
    work_cv_.wait(lock, [&] {
      return shutdown_ || generation_ != seen_generation;
    });
    if (shutdown_) return;
    seen_generation = generation_;
    DrainBatch(lock);
  }
}

void ThreadPool::ParallelFor(size_t num_tasks,
                             const std::function<void(size_t)>& fn) {
  if (num_tasks == 0) return;
  if (num_tasks == 1 || workers_.empty()) {
    for (size_t i = 0; i < num_tasks; ++i) fn(i);
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  batch_.fn = &fn;
  batch_.num_tasks = num_tasks;
  batch_.next_task = 0;
  batch_.unfinished = num_tasks;
  batch_.error = nullptr;
  ++generation_;
  work_cv_.notify_all();
  DrainBatch(lock);  // the caller works too
  done_cv_.wait(lock, [&] { return batch_.unfinished == 0; });
  batch_.fn = nullptr;
  if (batch_.error) {
    std::exception_ptr error = batch_.error;
    batch_.error = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

std::pair<size_t, size_t> ThreadPool::ChunkRange(size_t total,
                                                 size_t num_tasks,
                                                 size_t w) {
  const size_t tasks = std::max<size_t>(1, num_tasks);
  const size_t chunk = (total + tasks - 1) / tasks;
  const size_t begin = std::min(total, w * chunk);
  const size_t end = std::min(total, begin + chunk);
  return {begin, end};
}

size_t ThreadPool::ResolveThreadCount(size_t configured) {
  if (configured > 0) return configured;
  if (const char* env = std::getenv("DEEPOD_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<size_t>(hw) : 1;
}

}  // namespace deepod::util
