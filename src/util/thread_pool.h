#ifndef DEEPOD_UTIL_THREAD_POOL_H_
#define DEEPOD_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace deepod::util {

// Fixed-size pool of worker threads driving index-based parallel loops.
//
// There is deliberately no work stealing and no dynamic scheduling: callers
// split their work into a fixed number of tasks (normally one per worker)
// and ParallelFor hands task w to whichever executor claims it. All
// determinism contracts in this codebase are expressed in terms of the task
// index, never the executing thread, so the claiming order does not matter.
//
// The calling thread participates in executing tasks, so a ParallelFor
// issued from inside another pool's task cannot deadlock waiting for
// starved workers.
class ThreadPool {
 public:
  // Spawns `num_threads` workers. `num_threads == 0` is treated as 1.
  // With 1 thread no workers are spawned and ParallelFor runs inline.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return num_threads_; }

  // Runs fn(w) for every w in [0, num_tasks), distributing tasks over the
  // workers plus the calling thread, and blocks until all complete. If any
  // task throws, the first exception (in completion order) is rethrown
  // after every task has finished.
  void ParallelFor(size_t num_tasks, const std::function<void(size_t)>& fn);

  // Inclusive-exclusive [begin, end) range of items task `w` of `num_tasks`
  // should process when splitting `total` items into contiguous chunks.
  // Deterministic in (total, num_tasks, w).
  static std::pair<size_t, size_t> ChunkRange(size_t total, size_t num_tasks,
                                              size_t w);

  // Worker count resolution used across the project: `configured` wins when
  // non-zero; otherwise the DEEPOD_THREADS environment variable; otherwise
  // std::thread::hardware_concurrency(). Always at least 1.
  static size_t ResolveThreadCount(size_t configured);

 private:
  struct Batch {
    const std::function<void(size_t)>* fn = nullptr;
    size_t num_tasks = 0;
    size_t next_task = 0;   // next unclaimed task index
    size_t unfinished = 0;  // tasks not yet completed
    std::exception_ptr error;
  };

  void WorkerLoop();
  // Claims and runs tasks of the current batch until none are left.
  // Returns once every task it claimed has run. Requires `lock` held.
  void DrainBatch(std::unique_lock<std::mutex>& lock);

  size_t num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;  // signals workers: batch or shutdown
  std::condition_variable done_cv_;  // signals caller: batch complete
  Batch batch_;
  uint64_t generation_ = 0;  // bumped per ParallelFor, wakes workers
  bool shutdown_ = false;
};

}  // namespace deepod::util

#endif  // DEEPOD_UTIL_THREAD_POOL_H_
