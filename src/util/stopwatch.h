#ifndef DEEPOD_UTIL_STOPWATCH_H_
#define DEEPOD_UTIL_STOPWATCH_H_

#include <chrono>

namespace deepod::util {

// Wall-clock stopwatch used by the efficiency benches (Table 5) to report
// training and estimation time.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace deepod::util

#endif  // DEEPOD_UTIL_STOPWATCH_H_
