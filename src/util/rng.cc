#include "util/rng.h"

#include <cmath>
#include <cstring>
#include <stdexcept>

namespace deepod::util {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53-bit mantissa ensures a uniform double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  if (n == 0) throw std::invalid_argument("Rng::UniformInt: n must be > 0");
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  uint64_t r;
  do {
    r = NextU64();
  } while (r < threshold);
  return r % n;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::UniformInt: lo > hi");
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(span == 0 ? NextU64() : UniformInt(span));
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1, u2;
  do {
    u1 = Uniform();
  } while (u1 <= 0.0);
  u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::Normal(double mean, double stddev) { return mean + stddev * Normal(); }

bool Rng::Bernoulli(double p) { return Uniform() < p; }

double Rng::Exponential(double rate) {
  if (rate <= 0.0) throw std::invalid_argument("Rng::Exponential: rate must be > 0");
  double u;
  do {
    u = Uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("Rng::Categorical: negative weight");
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("Rng::Categorical: zero total weight");
  double r = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(NextU64()); }

Rng Rng::ForStream(uint64_t seed, uint64_t stream) {
  // Mix seed and stream through independent splitmix chains so that nearby
  // (seed, stream) pairs land on unrelated xoshiro states.
  uint64_t a = seed;
  uint64_t b = stream ^ 0xd1b54a32d192ed03ull;
  const uint64_t mixed = SplitMix64(a) ^ SplitMix64(b);
  return Rng(mixed);
}

std::vector<uint64_t> Rng::SaveState() const {
  uint64_t cached_bits = 0;
  static_assert(sizeof(cached_bits) == sizeof(cached_normal_));
  std::memcpy(&cached_bits, &cached_normal_, sizeof(cached_bits));
  return {s_[0], s_[1], s_[2], s_[3],
          has_cached_normal_ ? uint64_t{1} : uint64_t{0}, cached_bits};
}

void Rng::RestoreState(const std::vector<uint64_t>& state) {
  if (state.size() != 6) {
    throw std::invalid_argument("Rng::RestoreState: expected 6 state words");
  }
  for (size_t i = 0; i < 4; ++i) s_[i] = state[i];
  has_cached_normal_ = state[4] != 0;
  std::memcpy(&cached_normal_, &state[5], sizeof(cached_normal_));
}

}  // namespace deepod::util
