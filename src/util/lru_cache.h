#ifndef DEEPOD_UTIL_LRU_CACHE_H_
#define DEEPOD_UTIL_LRU_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

namespace deepod::util {

// A sharded least-recently-used cache. Keys are hashed onto one of
// `num_shards` independent shards, each with its own mutex, LRU list and
// index, so concurrent readers/writers only contend when they land on the
// same shard. Capacity is split evenly across shards (rounded up), and
// eviction is strictly LRU *within a shard* — the usual trade of sharded
// caches: global recency order is approximated, per-shard order is exact.
//
// Get/Put are linearisable per shard; hit/miss counters are atomics so a
// stats snapshot never takes a lock.
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedLruCache {
 public:
  explicit ShardedLruCache(size_t capacity, size_t num_shards = 8)
      : shards_(num_shards == 0 ? 1 : num_shards) {
    const size_t n = shards_.size();
    // Round up so total capacity is never below the request; a capacity
    // smaller than the shard count still gives every shard one slot.
    per_shard_capacity_ = capacity == 0 ? 0 : (capacity + n - 1) / n;
  }

  // Returns the cached value and promotes the entry to most-recently-used.
  std::optional<Value> Get(const Key& key) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second->second;
  }

  // Inserts or refreshes `key`, evicting the shard's least-recently-used
  // entry when the shard is full.
  void Put(const Key& key, Value value) {
    if (per_shard_capacity_ == 0) return;
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      it->second->second = std::move(value);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return;
    }
    if (shard.lru.size() >= per_shard_capacity_) {
      shard.index.erase(shard.lru.back().first);
      shard.lru.pop_back();
    }
    shard.lru.emplace_front(key, std::move(value));
    shard.index.emplace(key, shard.lru.begin());
  }

  size_t size() const {
    size_t total = 0;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      total += shard.lru.size();
    }
    return total;
  }

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

  size_t num_shards() const { return shards_.size(); }

 private:
  struct Shard {
    mutable std::mutex mu;
    // front = most recently used.
    std::list<std::pair<Key, Value>> lru;
    std::unordered_map<Key, typename std::list<std::pair<Key, Value>>::iterator,
                       Hash>
        index;
  };

  Shard& ShardFor(const Key& key) {
    // Spread the hash before reducing modulo the shard count so shard
    // selection and the shard map's bucket choice don't correlate.
    uint64_t h = static_cast<uint64_t>(Hash{}(key));
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 33;
    return shards_[h % shards_.size()];
  }

  std::vector<Shard> shards_;
  size_t per_shard_capacity_ = 0;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace deepod::util

#endif  // DEEPOD_UTIL_LRU_CACHE_H_
