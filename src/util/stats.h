#ifndef DEEPOD_UTIL_STATS_H_
#define DEEPOD_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace deepod::util {

// Lightweight descriptive statistics used by the evaluation harness
// (box plots in Fig. 9, distribution curves in Fig. 11, etc.).

double Mean(const std::vector<double>& v);
double Variance(const std::vector<double>& v);   // population variance
double Stddev(const std::vector<double>& v);
double Min(const std::vector<double>& v);
double Max(const std::vector<double>& v);

// Linear-interpolated quantile, q in [0, 1]. Copies and sorts internally.
double Quantile(std::vector<double> v, double q);

// Five-number summary used for Box plots: {min, q1, median, q3, max}.
struct BoxStats {
  double min = 0, q1 = 0, median = 0, q3 = 0, max = 0;
};
BoxStats Box(const std::vector<double>& v);

// Fixed-bin histogram over [lo, hi]; values outside are clamped into the
// first/last bin. Returns per-bin probability *density* (sums to 1 when
// multiplied by the bin width), so the output is directly comparable with
// the PDF curves the paper plots.
std::vector<double> HistogramDensity(const std::vector<double>& v, double lo,
                                     double hi, size_t bins);

// Pearson correlation coefficient; returns 0 for degenerate inputs.
double Pearson(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace deepod::util

#endif  // DEEPOD_UTIL_STATS_H_
