#ifndef DEEPOD_UTIL_CPU_H_
#define DEEPOD_UTIL_CPU_H_

namespace deepod::util {

// Runtime CPU feature probing for the SIMD kernel tier (nn KernelMode::kSimd).
// Both queries are probed exactly once per process (first call) and cached;
// they are cheap to call from hot paths afterwards.

// True when the host CPU supports AVX2 and FMA3. Always false on non-x86
// builds, where the cpuid intrinsics do not exist.
bool CpuHasAvx2Fma();

// The DEEPOD_SIMD environment override, read once at first use:
//   unset / "" / "auto"  -> kAuto  (use whatever the CPU supports)
//   "off" / "0" / "scalar" -> kOff (force the scalar fallback)
//   "avx2"               -> kAvx2 (request AVX2; still requires CPU support
//                                  and an AVX2-compiled binary — a request
//                                  can never make unsupported code run)
// Unrecognised values behave like kAuto.
enum class SimdOverride { kAuto, kOff, kAvx2 };
SimdOverride SimdEnvOverride();

}  // namespace deepod::util

#endif  // DEEPOD_UTIL_CPU_H_
