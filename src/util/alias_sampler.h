#ifndef DEEPOD_UTIL_ALIAS_SAMPLER_H_
#define DEEPOD_UTIL_ALIAS_SAMPLER_H_

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace deepod::util {

// Walker alias method: O(n) construction, O(1) sampling from a fixed
// discrete distribution. Used by the node2vec random-walk generator where
// each (prev, current) vertex pair owns a transition distribution that is
// sampled many times.
class AliasSampler {
 public:
  AliasSampler() = default;

  // Builds the table from unnormalised non-negative weights (at least one
  // must be positive).
  explicit AliasSampler(const std::vector<double>& weights);

  // Draws one index in [0, size()).
  size_t Sample(Rng& rng) const;

  size_t size() const { return prob_.size(); }
  bool empty() const { return prob_.empty(); }

 private:
  std::vector<double> prob_;
  std::vector<size_t> alias_;
};

}  // namespace deepod::util

#endif  // DEEPOD_UTIL_ALIAS_SAMPLER_H_
