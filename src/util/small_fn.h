#ifndef DEEPOD_UTIL_SMALL_FN_H_
#define DEEPOD_UTIL_SMALL_FN_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace deepod::util {

// Move-only type-erased callable with a large inline buffer.
//
// std::function's inline buffer (16 bytes in libstdc++) is too small for
// autograd backward closures, which capture a few shared_ptrs plus loop
// bounds — so every op node costs a heap allocation. SmallFn stores
// callables up to InlineBytes in place (144 covers every closure in
// src/nn) and only falls back to the heap beyond that.
template <typename Sig, size_t InlineBytes = 144>
class SmallFn;

template <typename R, typename... Args, size_t InlineBytes>
class SmallFn<R(Args...), InlineBytes> {
 public:
  SmallFn() = default;
  SmallFn(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= InlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (storage_) Fn(std::forward<F>(f));
      call_ = [](void* s, Args&&... args) -> R {
        return (*static_cast<Fn*>(s))(std::forward<Args>(args)...);
      };
      manage_ = [](Op op, void* s, void* other) {
        switch (op) {
          case Op::kDestroy:
            static_cast<Fn*>(s)->~Fn();
            break;
          case Op::kMove:
            ::new (other) Fn(std::move(*static_cast<Fn*>(s)));
            static_cast<Fn*>(s)->~Fn();
            break;
        }
      };
    } else {
      *reinterpret_cast<Fn**>(storage_) = new Fn(std::forward<F>(f));
      call_ = [](void* s, Args&&... args) -> R {
        return (**static_cast<Fn**>(s))(std::forward<Args>(args)...);
      };
      manage_ = [](Op op, void* s, void* other) {
        switch (op) {
          case Op::kDestroy:
            delete *static_cast<Fn**>(s);
            break;
          case Op::kMove:
            *reinterpret_cast<Fn**>(other) = *static_cast<Fn**>(s);
            break;
        }
      };
    }
  }

  SmallFn(SmallFn&& other) noexcept { MoveFrom(other); }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  SmallFn& operator=(std::nullptr_t) {
    Reset();
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { Reset(); }

  explicit operator bool() const { return call_ != nullptr; }

  R operator()(Args... args) const {
    return call_(const_cast<void*>(static_cast<const void*>(storage_)),
                 std::forward<Args>(args)...);
  }

 private:
  enum class Op { kDestroy, kMove };

  void Reset() {
    if (manage_ != nullptr) manage_(Op::kDestroy, storage_, nullptr);
    call_ = nullptr;
    manage_ = nullptr;
  }

  void MoveFrom(SmallFn& other) {
    if (other.manage_ != nullptr) {
      other.manage_(Op::kMove, other.storage_, storage_);
    }
    call_ = other.call_;
    manage_ = other.manage_;
    other.call_ = nullptr;
    other.manage_ = nullptr;
  }

  using CallFn = R (*)(void*, Args&&...);
  using ManageFn = void (*)(Op, void*, void*);

  alignas(std::max_align_t) unsigned char storage_[InlineBytes];
  CallFn call_ = nullptr;
  ManageFn manage_ = nullptr;
};

}  // namespace deepod::util

#endif  // DEEPOD_UTIL_SMALL_FN_H_
