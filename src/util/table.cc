#include "util/table.h"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace deepod::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table::AddRow: arity mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string Table::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " ");
      out << row[c];
      out << std::string(widths[c] - row[c].size(), ' ') << " |";
    }
    out << "\n";
  };
  emit_row(header_);
  for (size_t c = 0; c < header_.size(); ++c) {
    out << (c == 0 ? "|" : "") << std::string(widths[c] + 2, '-') << "|";
  }
  out << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void Table::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string Fmt(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string FmtBytes(size_t bytes) {
  const double b = static_cast<double>(bytes);
  char buf[64];
  if (b >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fG", b / 1e9);
  } else if (b >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM", b / 1e6);
  } else if (b >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2fK", b / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%zuB", bytes);
  }
  return buf;
}

}  // namespace deepod::util
