#ifndef DEEPOD_UTIL_TABLE_H_
#define DEEPOD_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace deepod::util {

// Plain-text table printer used by the bench harnesses to emit the same
// rows the paper's tables report. Column widths auto-size to content.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  // Appends a data row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  // Renders the table with a separator under the header.
  std::string ToString() const;

  // Convenience: renders and writes to stdout.
  void Print() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with the given number of decimals (no scientific
// notation) — the common cell format across benches.
std::string Fmt(double value, int decimals = 2);

// Formats a byte count as a human-readable string (e.g. "6.24M").
std::string FmtBytes(size_t bytes);

}  // namespace deepod::util

#endif  // DEEPOD_UTIL_TABLE_H_
