#ifndef DEEPOD_UTIL_RNG_H_
#define DEEPOD_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace deepod::util {

// Deterministic pseudo-random number generator (xoshiro256++ seeded via
// splitmix64). Every stochastic component in the library draws from an Rng
// passed in by the caller so that datasets, embeddings and training runs are
// reproducible bit-for-bit from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

  // Returns the next raw 64-bit value.
  uint64_t NextU64();

  // Uniform double in [0, 1).
  double Uniform();

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Standard normal via Box-Muller (cached second value).
  double Normal();

  // Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  // True with probability p.
  bool Bernoulli(double p);

  // Exponential with the given rate (mean 1/rate).
  double Exponential(double rate);

  // Samples an index from an (unnormalised) non-negative weight vector.
  // Linear scan; use AliasSampler for repeated sampling from fixed weights.
  size_t Categorical(const std::vector<double>& weights);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = UniformInt(static_cast<uint64_t>(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  // Forks a statistically independent child generator. Useful for giving
  // each subsystem its own stream while preserving one root seed.
  Rng Fork();

  // A statistically independent generator for stream `stream` of root
  // `seed`, computed without consuming any draws: ForStream(s, i) depends
  // only on (s, i). This is how the parallel trip generator gives every
  // trip its own stream — the generated set is identical for any thread
  // count because stream i never depends on who generated streams < i.
  static Rng ForStream(uint64_t seed, uint64_t stream);

  // Full generator state as raw words (the four xoshiro words, the
  // Box-Muller cache flag and the cached value's bit pattern). Restoring a
  // saved state resumes the stream bit-identically — resumable-training
  // checkpoints depend on this.
  std::vector<uint64_t> SaveState() const;
  // Restores a SaveState snapshot; throws std::invalid_argument on a
  // malformed word count.
  void RestoreState(const std::vector<uint64_t>& state);

 private:
  uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace deepod::util

#endif  // DEEPOD_UTIL_RNG_H_
