#include "road/road_network.h"

#include <cmath>
#include <stdexcept>

namespace deepod::road {

double Distance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

size_t RoadNetwork::AddVertex(Point pos) {
  if (finalized_) throw std::logic_error("RoadNetwork: already finalized");
  const size_t id = vertices_.size();
  vertices_.push_back({id, pos});
  return id;
}

size_t RoadNetwork::AddSegment(size_t from, size_t to, double free_flow_speed,
                               RoadClass road_class, double length) {
  if (finalized_) throw std::logic_error("RoadNetwork: already finalized");
  if (from >= vertices_.size() || to >= vertices_.size()) {
    throw std::out_of_range("RoadNetwork::AddSegment: endpoint out of range");
  }
  if (from == to) {
    throw std::invalid_argument("RoadNetwork::AddSegment: self-loop segment");
  }
  if (free_flow_speed <= 0.0) {
    throw std::invalid_argument("RoadNetwork::AddSegment: non-positive speed");
  }
  Segment s;
  s.id = segments_.size();
  s.from = from;
  s.to = to;
  s.length = length >= 0.0
                 ? length
                 : Distance(vertices_[from].pos, vertices_[to].pos);
  if (s.length <= 0.0) {
    throw std::invalid_argument("RoadNetwork::AddSegment: non-positive length");
  }
  s.free_flow_speed = free_flow_speed;
  s.road_class = road_class;
  segments_.push_back(s);
  return s.id;
}

void RoadNetwork::Finalize() {
  out_segments_.assign(vertices_.size(), {});
  in_segments_.assign(vertices_.size(), {});
  for (const auto& s : segments_) {
    out_segments_[s.from].push_back(s.id);
    in_segments_[s.to].push_back(s.id);
  }
  finalized_ = true;
}

const std::vector<size_t>& RoadNetwork::OutSegments(size_t vertex_id) const {
  if (!finalized_) throw std::logic_error("RoadNetwork: not finalized");
  return out_segments_.at(vertex_id);
}

const std::vector<size_t>& RoadNetwork::InSegments(size_t vertex_id) const {
  if (!finalized_) throw std::logic_error("RoadNetwork: not finalized");
  return in_segments_.at(vertex_id);
}

Point RoadNetwork::PointAlong(size_t segment_id, double ratio) const {
  const Segment& s = segments_.at(segment_id);
  if (ratio < 0.0 || ratio > 1.0) {
    throw std::invalid_argument("RoadNetwork::PointAlong: ratio out of [0,1]");
  }
  const Point& a = vertices_[s.from].pos;
  const Point& b = vertices_[s.to].pos;
  return {a.x + (b.x - a.x) * ratio, a.y + (b.y - a.y) * ratio};
}

void RoadNetwork::BoundingBox(Point* lo, Point* hi) const {
  if (vertices_.empty()) throw std::logic_error("RoadNetwork: empty network");
  *lo = *hi = vertices_[0].pos;
  for (const auto& v : vertices_) {
    lo->x = std::min(lo->x, v.pos.x);
    lo->y = std::min(lo->y, v.pos.y);
    hi->x = std::max(hi->x, v.pos.x);
    hi->y = std::max(hi->y, v.pos.y);
  }
}

size_t RoadNetwork::ReverseSegment(size_t segment_id) const {
  if (!finalized_) throw std::logic_error("RoadNetwork: not finalized");
  const Segment& s = segments_.at(segment_id);
  for (size_t cand : out_segments_[s.to]) {
    if (segments_[cand].to == s.from) return cand;
  }
  return kInvalidId;
}

}  // namespace deepod::road
