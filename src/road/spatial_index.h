#ifndef DEEPOD_ROAD_SPATIAL_INDEX_H_
#define DEEPOD_ROAD_SPATIAL_INDEX_H_

#include <cstddef>
#include <vector>

#include "road/road_network.h"

namespace deepod::road {

// Result of projecting a point onto a road segment.
struct Projection {
  size_t segment_id = kInvalidId;
  double distance = 0.0;  // metres from the query point to the segment
  double ratio = 0.0;     // position along the segment in [0, 1]
};

// Uniform-grid spatial index over the segments of a road network, used by
// the map matcher and the TEMP baseline to find candidate segments near a
// GPS point in O(cells scanned) instead of O(|E|).
class SpatialIndex {
 public:
  // Builds the index; `cell_size` is the grid cell edge in metres.
  SpatialIndex(const RoadNetwork& net, double cell_size = 250.0);

  // Nearest segment to the point (scans outward ring by ring). Always
  // succeeds for a non-empty network.
  Projection Nearest(const Point& p) const;

  // All segments whose distance to the point is <= radius, sorted by
  // distance ascending.
  std::vector<Projection> Within(const Point& p, double radius) const;

  // Distance from a point to a segment plus the projection ratio.
  static Projection ProjectOnto(const RoadNetwork& net, size_t segment_id,
                                const Point& p);

 private:
  size_t CellOf(double x, double y) const;
  void CellCoords(const Point& p, long* cx, long* cy) const;

  const RoadNetwork& net_;
  double cell_size_;
  Point lo_, hi_;
  size_t nx_ = 0, ny_ = 0;
  std::vector<std::vector<size_t>> cells_;  // cell -> segment ids
};

}  // namespace deepod::road

#endif  // DEEPOD_ROAD_SPATIAL_INDEX_H_
