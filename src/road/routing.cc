#include "road/routing.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>
#include <stdexcept>
#include <unordered_map>

namespace deepod::road {

double FreeFlowCost(const Segment& segment) {
  return segment.length / segment.free_flow_speed;
}

ShortestPathTree Dijkstra(const RoadNetwork& net, size_t source,
                          const SegmentCostFn& cost_fn) {
  const size_t n = net.num_vertices();
  if (source >= n) throw std::out_of_range("Dijkstra: source out of range");
  ShortestPathTree tree;
  tree.cost.assign(n, std::numeric_limits<double>::infinity());
  tree.incoming_segment.assign(n, kInvalidId);
  using Entry = std::pair<double, size_t>;  // (cost, vertex)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  tree.cost[source] = 0.0;
  heap.push({0.0, source});
  while (!heap.empty()) {
    const auto [cost, v] = heap.top();
    heap.pop();
    if (cost > tree.cost[v]) continue;  // stale entry
    for (size_t sid : net.OutSegments(v)) {
      const Segment& s = net.segment(sid);
      const double edge_cost = cost_fn(s);
      if (edge_cost < 0.0) {
        throw std::invalid_argument("Dijkstra: negative segment cost");
      }
      const double next = cost + edge_cost;
      if (next < tree.cost[s.to]) {
        tree.cost[s.to] = next;
        tree.incoming_segment[s.to] = sid;
        heap.push({next, s.to});
      }
    }
  }
  return tree;
}

Route ShortestRoute(const RoadNetwork& net, size_t source, size_t target,
                    const SegmentCostFn& cost_fn) {
  const ShortestPathTree tree = Dijkstra(net, source, cost_fn);
  Route route;
  if (target >= net.num_vertices() ||
      tree.cost[target] == std::numeric_limits<double>::infinity()) {
    return route;  // unreachable
  }
  route.cost = tree.cost[target];
  size_t v = target;
  while (v != source) {
    const size_t sid = tree.incoming_segment[v];
    route.segment_ids.push_back(sid);
    v = net.segment(sid).from;
  }
  std::reverse(route.segment_ids.begin(), route.segment_ids.end());
  return route;
}

std::vector<Route> AlternativeRoutes(const RoadNetwork& net, size_t source,
                                     size_t target,
                                     const SegmentCostFn& cost_fn, size_t k,
                                     double penalty) {
  std::vector<Route> routes;
  if (k == 0) return routes;
  std::unordered_map<size_t, double> multiplier;
  std::set<std::vector<size_t>> seen;
  for (size_t attempt = 0; attempt < 3 * k && routes.size() < k; ++attempt) {
    auto penalised = [&](const Segment& s) {
      const auto it = multiplier.find(s.id);
      const double m = it == multiplier.end() ? 1.0 : it->second;
      return cost_fn(s) * m;
    };
    Route r = ShortestRoute(net, source, target, penalised);
    if (r.segment_ids.empty()) break;
    // Restate cost under the *unpenalised* metric.
    double true_cost = 0.0;
    for (size_t sid : r.segment_ids) true_cost += cost_fn(net.segment(sid));
    r.cost = true_cost;
    if (seen.insert(r.segment_ids).second) routes.push_back(r);
    for (size_t sid : r.segment_ids) {
      auto [it, inserted] = multiplier.try_emplace(sid, 1.0);
      it->second *= penalty;
    }
  }
  std::sort(routes.begin(), routes.end(),
            [](const Route& a, const Route& b) { return a.cost < b.cost; });
  return routes;
}

bool IsConnectedPath(const RoadNetwork& net,
                     const std::vector<size_t>& segment_ids) {
  for (size_t i = 0; i + 1 < segment_ids.size(); ++i) {
    if (net.segment(segment_ids[i]).to != net.segment(segment_ids[i + 1]).from) {
      return false;
    }
  }
  return true;
}

}  // namespace deepod::road
