#ifndef DEEPOD_ROAD_EDGE_GRAPH_H_
#define DEEPOD_ROAD_EDGE_GRAPH_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "road/road_network.h"
#include "util/weighted_digraph.h"

namespace deepod::road {

// Streaming builder for the trajectory-weighted line graph: feed segment
// sequences one at a time (e.g. decoded record-by-record from a trip
// shard), then Build. Because the co-occurrence weights are exact sums of
// 1.0 and arc emission iterates the network (not the accumulation map), the
// result is bit-identical to BuildEdgeGraph over the same sequences in any
// order — pinned by datagen_test.
class EdgeGraphAccumulator {
 public:
  // Counts the consecutive segment pairs of one trajectory. Throws
  // std::out_of_range on a segment id outside `net`.
  void AddSequence(const RoadNetwork& net, std::span<const size_t> sequence);

  // Emits the line graph with the accumulated co-occurrence weights (plus
  // `base_weight` on every legal turn). The accumulator stays valid — more
  // sequences may be added and Build called again.
  util::WeightedDigraph Build(const RoadNetwork& net,
                              double base_weight = 0.05) const;

 private:
  std::unordered_map<uint64_t, double> counts_;
};

// Converts the road network into its line graph (Fig. 4): each node of the
// result is a road segment, and there is an arc e_ik -> e_kj whenever
// segment e_ik ends where e_kj begins. Arc weights count how many of the
// supplied historical segment sequences (trajectories) traverse the pair
// consecutively; `base_weight` keeps untravelled-but-legal turns reachable
// by the random-walk embedder (a zero-weight arc would never be walked).
util::WeightedDigraph BuildEdgeGraph(
    const RoadNetwork& net,
    const std::vector<std::vector<size_t>>& segment_sequences,
    double base_weight = 0.05);

// Structural line graph only (all legal turns, unit weights) — used before
// any trajectories exist.
util::WeightedDigraph BuildStructuralEdgeGraph(const RoadNetwork& net);

}  // namespace deepod::road

#endif  // DEEPOD_ROAD_EDGE_GRAPH_H_
