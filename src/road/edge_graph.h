#ifndef DEEPOD_ROAD_EDGE_GRAPH_H_
#define DEEPOD_ROAD_EDGE_GRAPH_H_

#include <vector>

#include "road/road_network.h"
#include "util/weighted_digraph.h"

namespace deepod::road {

// Converts the road network into its line graph (Fig. 4): each node of the
// result is a road segment, and there is an arc e_ik -> e_kj whenever
// segment e_ik ends where e_kj begins. Arc weights count how many of the
// supplied historical segment sequences (trajectories) traverse the pair
// consecutively; `base_weight` keeps untravelled-but-legal turns reachable
// by the random-walk embedder (a zero-weight arc would never be walked).
util::WeightedDigraph BuildEdgeGraph(
    const RoadNetwork& net,
    const std::vector<std::vector<size_t>>& segment_sequences,
    double base_weight = 0.05);

// Structural line graph only (all legal turns, unit weights) — used before
// any trajectories exist.
util::WeightedDigraph BuildStructuralEdgeGraph(const RoadNetwork& net);

}  // namespace deepod::road

#endif  // DEEPOD_ROAD_EDGE_GRAPH_H_
