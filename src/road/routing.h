#ifndef DEEPOD_ROAD_ROUTING_H_
#define DEEPOD_ROAD_ROUTING_H_

#include <functional>
#include <vector>

#include "road/road_network.h"

namespace deepod::road {

// Cost of traversing a segment (seconds). The traffic simulator supplies a
// time-dependent implementation; free-flow cost is the default.
using SegmentCostFn = std::function<double(const Segment&)>;

// Returns length / free_flow_speed.
double FreeFlowCost(const Segment& segment);

struct Route {
  std::vector<size_t> segment_ids;  // consecutive, head-to-tail
  double cost = 0.0;                // total cost under the query's cost fn
};

// Single-source Dijkstra from `source` vertex; returns per-vertex cost and
// the incoming segment on the best path (kInvalidId for unreachable /
// source).
struct ShortestPathTree {
  std::vector<double> cost;
  std::vector<size_t> incoming_segment;
};
ShortestPathTree Dijkstra(const RoadNetwork& net, size_t source,
                          const SegmentCostFn& cost_fn);

// Least-cost route between two vertices; empty route if unreachable.
Route ShortestRoute(const RoadNetwork& net, size_t source, size_t target,
                    const SegmentCostFn& cost_fn);

// Up to k reasonably distinct routes via iterative penalisation: after each
// route is found its segments' costs are multiplied by `penalty`, and
// duplicate routes are discarded. This produces the kind of route diversity
// (fast-arterial vs short-local) that makes OD travel time route-dependent.
std::vector<Route> AlternativeRoutes(const RoadNetwork& net, size_t source,
                                     size_t target,
                                     const SegmentCostFn& cost_fn, size_t k,
                                     double penalty = 1.4);

// True when the segment sequence is a connected directed path.
bool IsConnectedPath(const RoadNetwork& net,
                     const std::vector<size_t>& segment_ids);

}  // namespace deepod::road

#endif  // DEEPOD_ROAD_ROUTING_H_
