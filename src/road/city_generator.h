#ifndef DEEPOD_ROAD_CITY_GENERATOR_H_
#define DEEPOD_ROAD_CITY_GENERATOR_H_

#include <string>
#include <vector>

#include "road/road_network.h"
#include "util/rng.h"

namespace deepod::road {

// Parameters of the synthetic city generator. The generator lays out a
// jittered grid of intersections connected by two-way local streets, then
// upgrades every `arterial_period`-th row/column to a faster arterial and
// randomly removes a fraction of local streets so the graph is irregular
// (multiple distinct sensible routes between most OD pairs, as in Fig. 1
// of the paper).
struct CityConfig {
  std::string name = "city";
  size_t rows = 12;                 // intersections per column
  size_t cols = 12;                 // intersections per row
  double spacing_m = 300.0;         // nominal block edge length
  double jitter_m = 40.0;           // positional noise of intersections
  size_t arterial_period = 4;       // every k-th row/col is an arterial
  double local_speed_mps = 8.0;     // ~29 km/h free flow
  double arterial_speed_mps = 14.0; // ~50 km/h free flow
  double removal_prob = 0.08;       // fraction of local two-way links removed
  // Rivers: impassable horizontal bands crossable only at bridge columns.
  // A river after row r removes every vertical link between rows r and r+1
  // except at columns where `c % bridge_period == bridge_offset`. Rivers
  // make straight-line distance a poor proxy for network distance — the
  // property that gives road-network-aware models their edge (§1, §6.4 of
  // the paper: STNN "neglects the information of road networks").
  std::vector<size_t> river_rows;
  size_t bridge_period = 5;
  size_t bridge_offset = 2;
  uint64_t seed = 1;
};

// Builds and finalises a road network from the config. The result is
// guaranteed strongly connected (removals that would disconnect the grid
// are rejected by construction: arterial links are never removed and the
// arterial skeleton alone is connected).
RoadNetwork GenerateCity(const CityConfig& config);

// The three evaluation cities, mirroring the relative characteristics of
// Table 2 (Chengdu mid-size, Xi'an smaller, Beijing much larger).
CityConfig ChengduSimConfig();
CityConfig XianSimConfig();
CityConfig BeijingSimConfig();

}  // namespace deepod::road

#endif  // DEEPOD_ROAD_CITY_GENERATOR_H_
