#include "road/spatial_index.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace deepod::road {

SpatialIndex::SpatialIndex(const RoadNetwork& net, double cell_size)
    : net_(net), cell_size_(cell_size) {
  if (cell_size <= 0.0) {
    throw std::invalid_argument("SpatialIndex: cell_size must be positive");
  }
  net.BoundingBox(&lo_, &hi_);
  // Pad the box slightly so boundary points land inside.
  lo_.x -= 1.0;
  lo_.y -= 1.0;
  hi_.x += 1.0;
  hi_.y += 1.0;
  nx_ = static_cast<size_t>(std::ceil((hi_.x - lo_.x) / cell_size_));
  ny_ = static_cast<size_t>(std::ceil((hi_.y - lo_.y) / cell_size_));
  nx_ = std::max<size_t>(nx_, 1);
  ny_ = std::max<size_t>(ny_, 1);
  cells_.assign(nx_ * ny_, {});
  // Insert each segment into every cell its bounding box overlaps.
  for (const auto& s : net.segments()) {
    const Point& a = net.vertex(s.from).pos;
    const Point& b = net.vertex(s.to).pos;
    const double min_x = std::min(a.x, b.x), max_x = std::max(a.x, b.x);
    const double min_y = std::min(a.y, b.y), max_y = std::max(a.y, b.y);
    const long cx0 = static_cast<long>((min_x - lo_.x) / cell_size_);
    const long cx1 = static_cast<long>((max_x - lo_.x) / cell_size_);
    const long cy0 = static_cast<long>((min_y - lo_.y) / cell_size_);
    const long cy1 = static_cast<long>((max_y - lo_.y) / cell_size_);
    for (long cy = std::max(0L, cy0); cy <= std::min<long>(ny_ - 1, cy1); ++cy) {
      for (long cx = std::max(0L, cx0); cx <= std::min<long>(nx_ - 1, cx1); ++cx) {
        cells_[static_cast<size_t>(cy) * nx_ + static_cast<size_t>(cx)]
            .push_back(s.id);
      }
    }
  }
}

Projection SpatialIndex::ProjectOnto(const RoadNetwork& net, size_t segment_id,
                                     const Point& p) {
  const Segment& s = net.segment(segment_id);
  const Point& a = net.vertex(s.from).pos;
  const Point& b = net.vertex(s.to).pos;
  const double abx = b.x - a.x, aby = b.y - a.y;
  const double len_sq = abx * abx + aby * aby;
  double t = 0.0;
  if (len_sq > 0.0) {
    t = ((p.x - a.x) * abx + (p.y - a.y) * aby) / len_sq;
    t = std::clamp(t, 0.0, 1.0);
  }
  const Point proj{a.x + t * abx, a.y + t * aby};
  Projection out;
  out.segment_id = segment_id;
  out.ratio = t;
  out.distance = Distance(p, proj);
  return out;
}

void SpatialIndex::CellCoords(const Point& p, long* cx, long* cy) const {
  *cx = std::clamp(static_cast<long>((p.x - lo_.x) / cell_size_), 0L,
                   static_cast<long>(nx_) - 1);
  *cy = std::clamp(static_cast<long>((p.y - lo_.y) / cell_size_), 0L,
                   static_cast<long>(ny_) - 1);
}

Projection SpatialIndex::Nearest(const Point& p) const {
  if (net_.num_segments() == 0) {
    throw std::logic_error("SpatialIndex::Nearest: empty network");
  }
  long cx, cy;
  CellCoords(p, &cx, &cy);
  Projection best;
  best.distance = std::numeric_limits<double>::infinity();
  const long max_ring = static_cast<long>(std::max(nx_, ny_));
  for (long ring = 0; ring <= max_ring; ++ring) {
    // A point inside a ring-k cell can be as close as (k-1) * cell_size to
    // the query (the query may sit on its own cell's boundary), so it is
    // only safe to stop once the best candidate beats that bound.
    if (best.segment_id != kInvalidId && ring >= 1 &&
        best.distance < static_cast<double>(ring - 1) * cell_size_) {
      break;
    }
    for (long dy = -ring; dy <= ring; ++dy) {
      for (long dx = -ring; dx <= ring; ++dx) {
        if (std::max(std::labs(dx), std::labs(dy)) != ring) continue;
        const long gx = cx + dx, gy = cy + dy;
        if (gx < 0 || gy < 0 || gx >= static_cast<long>(nx_) ||
            gy >= static_cast<long>(ny_)) {
          continue;
        }
        const auto& bucket =
            cells_[static_cast<size_t>(gy) * nx_ + static_cast<size_t>(gx)];
        for (size_t sid : bucket) {
          const Projection cand = ProjectOnto(net_, sid, p);
          if (cand.distance < best.distance) best = cand;
        }
      }
    }
  }
  return best;
}

std::vector<Projection> SpatialIndex::Within(const Point& p,
                                             double radius) const {
  std::vector<Projection> result;
  long cx, cy;
  CellCoords(p, &cx, &cy);
  const long rings = static_cast<long>(std::ceil(radius / cell_size_)) + 1;
  std::vector<bool> seen(net_.num_segments(), false);
  for (long dy = -rings; dy <= rings; ++dy) {
    for (long dx = -rings; dx <= rings; ++dx) {
      const long gx = cx + dx, gy = cy + dy;
      if (gx < 0 || gy < 0 || gx >= static_cast<long>(nx_) ||
          gy >= static_cast<long>(ny_)) {
        continue;
      }
      const auto& bucket =
          cells_[static_cast<size_t>(gy) * nx_ + static_cast<size_t>(gx)];
      for (size_t sid : bucket) {
        if (seen[sid]) continue;
        seen[sid] = true;
        const Projection cand = ProjectOnto(net_, sid, p);
        if (cand.distance <= radius) result.push_back(cand);
      }
    }
  }
  std::sort(result.begin(), result.end(),
            [](const Projection& a, const Projection& b) {
              return a.distance < b.distance;
            });
  return result;
}

size_t SpatialIndex::CellOf(double x, double y) const {
  long cx, cy;
  CellCoords({x, y}, &cx, &cy);
  return static_cast<size_t>(cy) * nx_ + static_cast<size_t>(cx);
}

}  // namespace deepod::road
