#include "road/city_generator.h"

#include <stdexcept>
#include <vector>

namespace deepod::road {
namespace {

bool IsArterialLine(size_t index, size_t period) {
  return period > 0 && index % period == 0;
}

}  // namespace

RoadNetwork GenerateCity(const CityConfig& config) {
  if (config.rows < 2 || config.cols < 2) {
    throw std::invalid_argument("GenerateCity: grid must be at least 2x2");
  }
  util::Rng rng(config.seed);
  RoadNetwork net;

  // Jittered grid of intersections.
  std::vector<std::vector<size_t>> grid(config.rows,
                                        std::vector<size_t>(config.cols));
  for (size_t r = 0; r < config.rows; ++r) {
    for (size_t c = 0; c < config.cols; ++c) {
      const double x = static_cast<double>(c) * config.spacing_m +
                       rng.Uniform(-config.jitter_m, config.jitter_m);
      const double y = static_cast<double>(r) * config.spacing_m +
                       rng.Uniform(-config.jitter_m, config.jitter_m);
      grid[r][c] = net.AddVertex({x, y});
    }
  }

  // Two-way links. A horizontal link in row r is arterial if r is an
  // arterial line; a vertical link in column c likewise. Each link gets a
  // persistent idiosyncratic speed factor (lanes, lights, surface quality):
  // this per-segment heterogeneity is what distinguishes road-segment-level
  // models from coordinate-level ones — real travel time is attached to
  // *segments*, not to smooth functions of (x, y).
  auto add_two_way = [&](size_t a, size_t b, bool arterial) {
    const double base =
        arterial ? config.arterial_speed_mps : config.local_speed_mps;
    const RoadClass rc = arterial ? RoadClass::kArterial : RoadClass::kLocal;
    const double fwd = base * rng.Uniform(0.65, 1.45);
    const double rev = base * rng.Uniform(0.65, 1.45);
    net.AddSegment(a, b, fwd, rc);
    net.AddSegment(b, a, rev, rc);
  };

  for (size_t r = 0; r < config.rows; ++r) {
    for (size_t c = 0; c + 1 < config.cols; ++c) {
      const bool arterial = IsArterialLine(r, config.arterial_period);
      if (!arterial && rng.Bernoulli(config.removal_prob)) continue;
      add_two_way(grid[r][c], grid[r][c + 1], arterial);
    }
  }
  auto river_blocks = [&config](size_t row, size_t col) {
    for (size_t river : config.river_rows) {
      if (row != river) continue;
      const bool bridge =
          config.bridge_period > 0 &&
          col % config.bridge_period == config.bridge_offset % config.bridge_period;
      if (!bridge) return true;
    }
    return false;
  };
  for (size_t c = 0; c < config.cols; ++c) {
    for (size_t r = 0; r + 1 < config.rows; ++r) {
      if (river_blocks(r, c)) continue;  // river between rows r and r+1
      const bool arterial = IsArterialLine(c, config.arterial_period);
      if (!arterial && rng.Bernoulli(config.removal_prob)) continue;
      add_two_way(grid[r][c], grid[r + 1][c], arterial);
    }
  }

  // Guarantee connectivity: row 0 and column 0 are arterial lines (index 0
  // satisfies IsArterialLine), so every grid vertex reaches the arterial
  // skeleton through its row-0/column-0 projections only if its own row or
  // column links survived. To make the guarantee unconditional we keep the
  // full first local link of any vertex that ended up isolated.
  net.Finalize();
  // Re-check degree; rebuild with forced links for isolated vertices.
  bool needs_fix = false;
  for (size_t v = 0; v < net.num_vertices(); ++v) {
    if (net.OutSegments(v).empty() || net.InSegments(v).empty()) {
      needs_fix = true;
      break;
    }
  }
  if (needs_fix) {
    RoadNetwork fixed;
    for (size_t v = 0; v < net.num_vertices(); ++v) {
      fixed.AddVertex(net.vertex(v).pos);
    }
    for (const auto& s : net.segments()) {
      fixed.AddSegment(s.from, s.to, s.free_flow_speed, s.road_class, s.length);
    }
    for (size_t r = 0; r < config.rows; ++r) {
      for (size_t c = 0; c < config.cols; ++c) {
        const size_t v = grid[r][c];
        if (!net.OutSegments(v).empty() && !net.InSegments(v).empty()) continue;
        // Reconnect to a horizontal neighbour (guaranteed to exist).
        const size_t nb = c + 1 < config.cols ? grid[r][c + 1] : grid[r][c - 1];
        fixed.AddSegment(v, nb, config.local_speed_mps, RoadClass::kLocal);
        fixed.AddSegment(nb, v, config.local_speed_mps, RoadClass::kLocal);
      }
    }
    fixed.Finalize();
    return fixed;
  }
  return net;
}

CityConfig ChengduSimConfig() {
  CityConfig c;
  c.name = "chengdu-sim";
  c.rows = 14;
  c.cols = 14;
  c.spacing_m = 300.0;
  c.arterial_period = 4;
  c.river_rows = {6};
  c.bridge_period = 5;
  c.seed = 101;
  return c;
}

CityConfig XianSimConfig() {
  CityConfig c;
  c.name = "xian-sim";
  c.rows = 11;
  c.cols = 11;
  c.spacing_m = 340.0;
  c.arterial_period = 5;
  c.river_rows = {5};
  c.bridge_period = 5;
  c.seed = 202;
  return c;
}

CityConfig BeijingSimConfig() {
  CityConfig c;
  c.name = "beijing-sim";
  c.rows = 20;
  c.cols = 20;
  c.spacing_m = 380.0;
  c.arterial_period = 4;
  c.river_rows = {6, 13};
  c.bridge_period = 6;
  c.seed = 303;
  return c;
}

}  // namespace deepod::road
