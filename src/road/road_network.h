#ifndef DEEPOD_ROAD_ROAD_NETWORK_H_
#define DEEPOD_ROAD_ROAD_NETWORK_H_

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace deepod::road {

// 2-D point in a local metric plane (metres). The synthetic cities operate
// in planar coordinates directly, sidestepping geodesy while preserving all
// distance semantics the paper needs.
struct Point {
  double x = 0.0;
  double y = 0.0;
};

double Distance(const Point& a, const Point& b);

// Road classes used by the synthetic city generator. Arterials are faster
// and sparser; locals are slow and dense — this heterogeneity creates the
// meaningful route choice that Fig. 1 of the paper motivates.
enum class RoadClass { kLocal = 0, kArterial = 1, kHighway = 2 };

constexpr size_t kInvalidId = std::numeric_limits<size_t>::max();

struct Vertex {
  size_t id = kInvalidId;
  Point pos;
};

// A directed road segment e_k = <v_from -> v_to, w> (§2). The weight is the
// segment length; free-flow speed feeds the traffic simulator.
struct Segment {
  size_t id = kInvalidId;
  size_t from = kInvalidId;
  size_t to = kInvalidId;
  double length = 0.0;           // metres
  double free_flow_speed = 0.0;  // metres / second
  RoadClass road_class = RoadClass::kLocal;
};

// Directed weighted road-network graph G = <V, E> (§2, Problem Formulation).
// Vertices are segment endpoints; each Segment is a directed edge. Built
// incrementally then finalised into CSR adjacency for traversal.
class RoadNetwork {
 public:
  RoadNetwork() = default;

  // --- Construction --------------------------------------------------------

  size_t AddVertex(Point pos);
  // Adds a directed segment; returns its id. Length defaults to the
  // Euclidean endpoint distance when not provided.
  size_t AddSegment(size_t from, size_t to, double free_flow_speed,
                    RoadClass road_class, double length = -1.0);
  // Builds adjacency indexes; must be called before traversal queries.
  void Finalize();
  bool finalized() const { return finalized_; }

  // --- Accessors -----------------------------------------------------------

  size_t num_vertices() const { return vertices_.size(); }
  size_t num_segments() const { return segments_.size(); }
  const Vertex& vertex(size_t id) const { return vertices_.at(id); }
  const Segment& segment(size_t id) const { return segments_.at(id); }
  const std::vector<Segment>& segments() const { return segments_; }

  // Outgoing / incoming segment ids of a vertex (requires Finalize()).
  const std::vector<size_t>& OutSegments(size_t vertex_id) const;
  const std::vector<size_t>& InSegments(size_t vertex_id) const;

  // Point at fraction `ratio` in [0,1] along a segment (linear in geometry).
  Point PointAlong(size_t segment_id, double ratio) const;

  // Bounding box of all vertices.
  void BoundingBox(Point* lo, Point* hi) const;

  // Reverse segment id (to->from) if one exists, else kInvalidId.
  size_t ReverseSegment(size_t segment_id) const;

 private:
  std::vector<Vertex> vertices_;
  std::vector<Segment> segments_;
  std::vector<std::vector<size_t>> out_segments_;
  std::vector<std::vector<size_t>> in_segments_;
  bool finalized_ = false;
};

}  // namespace deepod::road

#endif  // DEEPOD_ROAD_ROAD_NETWORK_H_
