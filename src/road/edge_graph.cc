#include "road/edge_graph.h"

#include <stdexcept>
#include <unordered_map>

namespace deepod::road {

util::WeightedDigraph BuildStructuralEdgeGraph(const RoadNetwork& net) {
  if (!net.finalized()) {
    throw std::logic_error("BuildStructuralEdgeGraph: network not finalized");
  }
  util::WeightedDigraph graph(net.num_segments());
  for (const auto& s : net.segments()) {
    for (size_t next : net.OutSegments(s.to)) {
      // Skip the immediate U-turn back onto the reverse carriageway; taxis
      // essentially never do this mid-route and it pollutes the walks.
      if (net.segment(next).to == s.from) continue;
      graph.AddArc(s.id, next, 1.0);
    }
  }
  return graph;
}

util::WeightedDigraph BuildEdgeGraph(
    const RoadNetwork& net,
    const std::vector<std::vector<size_t>>& segment_sequences,
    double base_weight) {
  if (!net.finalized()) {
    throw std::logic_error("BuildEdgeGraph: network not finalized");
  }
  // Co-occurrence counts of consecutive segment pairs across trajectories.
  std::unordered_map<uint64_t, double> counts;
  auto key = [](size_t a, size_t b) {
    return (static_cast<uint64_t>(a) << 32) | static_cast<uint64_t>(b);
  };
  for (const auto& seq : segment_sequences) {
    for (size_t i = 0; i + 1 < seq.size(); ++i) {
      if (seq[i] >= net.num_segments() || seq[i + 1] >= net.num_segments()) {
        throw std::out_of_range("BuildEdgeGraph: segment id out of range");
      }
      counts[key(seq[i], seq[i + 1])] += 1.0;
    }
  }
  util::WeightedDigraph graph(net.num_segments());
  for (const auto& s : net.segments()) {
    for (size_t next : net.OutSegments(s.to)) {
      if (net.segment(next).to == s.from) continue;
      const auto it = counts.find(key(s.id, next));
      const double co = it == counts.end() ? 0.0 : it->second;
      graph.AddArc(s.id, next, co + base_weight);
    }
  }
  return graph;
}

}  // namespace deepod::road
