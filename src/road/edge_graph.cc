#include "road/edge_graph.h"

#include <stdexcept>

namespace deepod::road {
namespace {

uint64_t PairKey(size_t a, size_t b) {
  return (static_cast<uint64_t>(a) << 32) | static_cast<uint64_t>(b);
}

}  // namespace

util::WeightedDigraph BuildStructuralEdgeGraph(const RoadNetwork& net) {
  if (!net.finalized()) {
    throw std::logic_error("BuildStructuralEdgeGraph: network not finalized");
  }
  util::WeightedDigraph graph(net.num_segments());
  for (const auto& s : net.segments()) {
    for (size_t next : net.OutSegments(s.to)) {
      // Skip the immediate U-turn back onto the reverse carriageway; taxis
      // essentially never do this mid-route and it pollutes the walks.
      if (net.segment(next).to == s.from) continue;
      graph.AddArc(s.id, next, 1.0);
    }
  }
  return graph;
}

void EdgeGraphAccumulator::AddSequence(const RoadNetwork& net,
                                       std::span<const size_t> sequence) {
  for (size_t i = 0; i + 1 < sequence.size(); ++i) {
    if (sequence[i] >= net.num_segments() ||
        sequence[i + 1] >= net.num_segments()) {
      throw std::out_of_range("EdgeGraphAccumulator: segment id out of range");
    }
    counts_[PairKey(sequence[i], sequence[i + 1])] += 1.0;
  }
}

util::WeightedDigraph EdgeGraphAccumulator::Build(const RoadNetwork& net,
                                                  double base_weight) const {
  if (!net.finalized()) {
    throw std::logic_error("EdgeGraphAccumulator: network not finalized");
  }
  util::WeightedDigraph graph(net.num_segments());
  for (const auto& s : net.segments()) {
    for (size_t next : net.OutSegments(s.to)) {
      if (net.segment(next).to == s.from) continue;
      const auto it = counts_.find(PairKey(s.id, next));
      const double co = it == counts_.end() ? 0.0 : it->second;
      graph.AddArc(s.id, next, co + base_weight);
    }
  }
  return graph;
}

util::WeightedDigraph BuildEdgeGraph(
    const RoadNetwork& net,
    const std::vector<std::vector<size_t>>& segment_sequences,
    double base_weight) {
  if (!net.finalized()) {
    throw std::logic_error("BuildEdgeGraph: network not finalized");
  }
  EdgeGraphAccumulator acc;
  for (const auto& seq : segment_sequences) acc.AddSequence(net, seq);
  return acc.Build(net, base_weight);
}

}  // namespace deepod::road
