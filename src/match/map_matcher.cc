#include "match/map_matcher.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace deepod::match {
namespace {

// Length of the sub-route between two projections on a candidate route:
// used to form the transition cost.
struct Candidate {
  road::Projection proj;
  double best_cost = std::numeric_limits<double>::infinity();
  int back_pointer = -1;
  std::vector<size_t> route_from_prev;  // segments connecting prev -> this
};

}  // namespace

MapMatcher::MapMatcher(const road::RoadNetwork& net)
    : MapMatcher(net, Options{}) {}

MapMatcher::MapMatcher(const road::RoadNetwork& net, Options options)
    : net_(net), options_(options), index_(net) {}

road::Projection MapMatcher::SnapPoint(const road::Point& p) const {
  return index_.Nearest(p);
}

traj::MatchedTrajectory MapMatcher::Match(const traj::RawTrajectory& raw) const {
  traj::MatchedTrajectory result;
  if (raw.points.size() < 2) return result;

  // Candidate generation per GPS point.
  std::vector<std::vector<Candidate>> layers(raw.points.size());
  for (size_t i = 0; i < raw.points.size(); ++i) {
    auto within = index_.Within(raw.points[i].pos, options_.candidate_radius);
    if (within.empty()) within = {index_.Nearest(raw.points[i].pos)};
    if (within.size() > options_.max_candidates) {
      within.resize(options_.max_candidates);
    }
    for (const auto& proj : within) {
      layers[i].push_back(
          {proj, std::numeric_limits<double>::infinity(), -1, {}});
    }
  }

  // Viterbi over candidate layers. Emission cost: squared snap distance
  // scaled by gps_sigma. Transition cost: route detour vs straight line.
  const double sigma_sq = options_.gps_sigma * options_.gps_sigma;
  for (auto& c : layers[0]) {
    c.best_cost = c.proj.distance * c.proj.distance / sigma_sq;
  }
  for (size_t i = 1; i < layers.size(); ++i) {
    const double straight =
        road::Distance(raw.points[i - 1].pos, raw.points[i].pos);
    for (auto& cur : layers[i]) {
      const double emission =
          cur.proj.distance * cur.proj.distance / sigma_sq;
      for (size_t j = 0; j < layers[i - 1].size(); ++j) {
        const auto& prev = layers[i - 1][j];
        if (!std::isfinite(prev.best_cost)) continue;
        // Route between the two projected positions.
        std::vector<size_t> connecting;
        double route_len = 0.0;
        const auto& ps = net_.segment(prev.proj.segment_id);
        const auto& cs = net_.segment(cur.proj.segment_id);
        if (prev.proj.segment_id == cur.proj.segment_id) {
          const double delta = (cur.proj.ratio - prev.proj.ratio) * ps.length;
          if (delta < -options_.backward_slack_m) continue;  // backwards
          route_len = std::max(0.0, delta);
        } else {
          const auto route = road::ShortestRoute(
              net_, ps.to, cs.from, road::FreeFlowCost);
          if (route.segment_ids.empty() && ps.to != cs.from) continue;
          connecting = route.segment_ids;
          route_len = ps.length * (1.0 - prev.proj.ratio);
          for (size_t sid : connecting) route_len += net_.segment(sid).length;
          route_len += cs.length * cur.proj.ratio;
        }
        double transition =
            options_.transition_beta * std::fabs(route_len - straight);
        if (cur.proj.segment_id != prev.proj.segment_id &&
            cs.from == ps.to && cs.to == ps.from) {
          transition += options_.u_turn_penalty;  // reverse carriageway
        }
        const double total = prev.best_cost + emission + transition;
        if (total < cur.best_cost) {
          cur.best_cost = total;
          cur.back_pointer = static_cast<int>(j);
          cur.route_from_prev = std::move(connecting);
        }
      }
    }
  }

  // Pick the best final candidate and trace back.
  const auto& last_layer = layers.back();
  int best = -1;
  double best_cost = std::numeric_limits<double>::infinity();
  for (size_t j = 0; j < last_layer.size(); ++j) {
    if (last_layer[j].best_cost < best_cost) {
      best_cost = last_layer[j].best_cost;
      best = static_cast<int>(j);
    }
  }
  if (best < 0) return result;

  std::vector<const Candidate*> chain(layers.size());
  int idx = best;
  for (size_t i = layers.size(); i-- > 0;) {
    chain[i] = &layers[i][static_cast<size_t>(idx)];
    idx = chain[i]->back_pointer;
    if (idx < 0 && i > 0) return result;  // broken chain (shouldn't happen)
  }

  // Assemble the full segment route.
  std::vector<size_t> route;
  route.push_back(chain[0]->proj.segment_id);
  for (size_t i = 1; i < chain.size(); ++i) {
    for (size_t sid : chain[i]->route_from_prev) route.push_back(sid);
    if (chain[i]->proj.segment_id != route.back()) {
      route.push_back(chain[i]->proj.segment_id);
    }
  }
  // Collapse accidental immediate repeats.
  route.erase(std::unique(route.begin(), route.end()), route.end());
  if (!road::IsConnectedPath(net_, route)) return result;

  const double origin_ratio = chain.front()->proj.ratio;
  const double dest_ratio = chain.back()->proj.ratio;
  result.path = InterpolateIntervals(net_, route, origin_ratio, dest_ratio,
                                     raw.departure_time(), raw.arrival_time());
  result.origin_ratio = origin_ratio;
  result.dest_ratio = dest_ratio;
  return result;
}

std::vector<traj::PathElement> InterpolateIntervals(
    const road::RoadNetwork& net, const std::vector<size_t>& route,
    double origin_ratio, double dest_ratio, temporal::Timestamp depart,
    temporal::Timestamp arrive) {
  if (route.empty()) {
    throw std::invalid_argument("InterpolateIntervals: empty route");
  }
  if (arrive < depart) {
    throw std::invalid_argument("InterpolateIntervals: arrive < depart");
  }
  // Weight of each element: free-flow traversal time of the travelled
  // portion. Time is then distributed proportionally.
  std::vector<double> weights(route.size());
  for (size_t i = 0; i < route.size(); ++i) {
    const auto& s = net.segment(route[i]);
    double fraction = 1.0;
    if (route.size() == 1) {
      fraction = std::max(0.0, dest_ratio - origin_ratio);
    } else if (i == 0) {
      fraction = 1.0 - origin_ratio;
    } else if (i + 1 == route.size()) {
      fraction = dest_ratio;
    }
    weights[i] = fraction * s.length / s.free_flow_speed;
  }
  double total_weight = 0.0;
  for (double w : weights) total_weight += w;
  const double duration = arrive - depart;
  std::vector<traj::PathElement> path(route.size());
  double t = depart;
  for (size_t i = 0; i < route.size(); ++i) {
    path[i].segment_id = route[i];
    path[i].enter = t;
    const double share =
        total_weight > 0.0 ? weights[i] / total_weight
                           : 1.0 / static_cast<double>(route.size());
    t += share * duration;
    path[i].exit = t;
  }
  path.back().exit = arrive;  // absorb rounding
  return path;
}

}  // namespace deepod::match
