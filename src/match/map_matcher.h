#ifndef DEEPOD_MATCH_MAP_MATCHER_H_
#define DEEPOD_MATCH_MAP_MATCHER_H_

#include <vector>

#include "road/road_network.h"
#include "road/routing.h"
#include "road/spatial_index.h"
#include "traj/trajectory.h"

namespace deepod::match {

// Aligns raw GPS trajectories onto the road network, producing the
// spatio-temporal path + position-ratio representation of Def. 1
// (the role Valhalla plays in the paper's pipeline, §6.1).
//
// Algorithm: each GPS point is snapped to candidate segments within
// `candidate_radius`; candidates are scored by emission (distance) and
// transition (route continuity) costs and the best chain is selected by
// dynamic programming over a small candidate set — a compact
// HMM-map-matching formulation (Newson & Krumm style). Segment entry/exit
// timestamps are recovered by linear interpolation along the matched route,
// exactly as §2 prescribes.
class MapMatcher {
 public:
  struct Options {
    double candidate_radius = 60.0;   // metres around each GPS fix
    size_t max_candidates = 8;        // per GPS point (two-way
    // streets contribute both directions, so the budget must cover several
    // physical streets)
    double gps_sigma = 15.0;          // emission noise scale (metres)
    // Transition cost weight on |route length - straight-line distance|.
    double transition_beta = 1.5;
    // Stiff extra cost for transitioning onto the reverse carriageway of
    // the previous segment. The two directions of a two-way street project
    // identically, so without this the chain can flip-flop into spurious
    // U-turns that inflate the matched route.
    double u_turn_penalty = 12.0;
    // Same-segment transitions may move this many metres backwards before
    // being pruned: GPS noise on a slow/stationary vehicle jitters the
    // projection backwards, and rejecting it outright would force a
    // spurious flip onto the reverse carriageway.
    double backward_slack_m = 35.0;
  };

  explicit MapMatcher(const road::RoadNetwork& net);
  MapMatcher(const road::RoadNetwork& net, Options options);

  // Matches a raw trajectory. Returns an empty MatchedTrajectory when the
  // input has fewer than two points or no candidate chain exists.
  traj::MatchedTrajectory Match(const traj::RawTrajectory& raw) const;

  // Snaps a single point to its most plausible segment (used for OD inputs,
  // which are bare points).
  road::Projection SnapPoint(const road::Point& p) const;

 private:
  const road::RoadNetwork& net_;
  Options options_;
  road::SpatialIndex index_;
};

// Interpolates per-segment entry/exit timestamps for a known route given
// departure/arrival times: time is distributed proportionally to the
// free-flow traversal time of each (possibly partial) segment. This is the
// linear-interpolation step of §2 and is also used directly by the
// simulator, which knows its ground-truth route.
std::vector<traj::PathElement> InterpolateIntervals(
    const road::RoadNetwork& net, const std::vector<size_t>& route,
    double origin_ratio, double dest_ratio, temporal::Timestamp depart,
    temporal::Timestamp arrive);

}  // namespace deepod::match

#endif  // DEEPOD_MATCH_MAP_MATCHER_H_
