#include "nn/gradcheck.h"

#include <cmath>

namespace deepod::nn {

GradCheckResult CheckGradients(const std::function<Tensor()>& loss_fn,
                               std::vector<Tensor> params, double step,
                               double abs_tol, double rel_tol) {
  GradCheckResult result;

  // Analytic gradients from one backward pass.
  for (auto& p : params) p.ZeroGrad();
  Tensor loss = loss_fn();
  loss.Backward();
  std::vector<std::vector<double>> analytic;
  analytic.reserve(params.size());
  for (auto& p : params) analytic.push_back(p.grad());

  // Numeric gradients by central differences.
  for (size_t pi = 0; pi < params.size(); ++pi) {
    auto& data = params[pi].data();
    for (size_t ei = 0; ei < data.size(); ++ei) {
      const double saved = data[ei];
      data[ei] = saved + step;
      const double plus = loss_fn().item();
      data[ei] = saved - step;
      const double minus = loss_fn().item();
      data[ei] = saved;
      const double numeric = (plus - minus) / (2.0 * step);
      const double a = analytic[pi][ei];
      const double abs_err = std::fabs(a - numeric);
      const double denom = std::max(1.0, std::max(std::fabs(a), std::fabs(numeric)));
      const double rel_err = abs_err / denom;
      if (abs_err > result.max_abs_error) {
        result.max_abs_error = abs_err;
        result.worst_param = pi;
        result.worst_elem = ei;
      }
      result.max_rel_error = std::max(result.max_rel_error, rel_err);
      if (abs_err > abs_tol && rel_err > rel_tol) result.ok = false;
    }
  }
  return result;
}

}  // namespace deepod::nn
