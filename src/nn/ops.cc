#include "nn/ops.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nn/simd.h"
#include "obs/metrics.h"

// Per-KernelMode invocation counters for the hot kernels, compiled in only
// when the DEEPOD_OBS_KERNEL_COUNTS CMake option is ON (the default build
// carries no code for this, not even a branch).
#if defined(DEEPOD_OBS_KERNEL_COUNTS)
#define DEEPOD_COUNT_KERNEL(op)                                      \
  do {                                                               \
    static ::deepod::obs::KernelOpCounters deepod_kernel_counts(op); \
    deepod_kernel_counts.Bump(                                       \
        static_cast<size_t>(::deepod::nn::GetKernelMode()));         \
  } while (0)
#else
#define DEEPOD_COUNT_KERNEL(op) ((void)0)
#endif

namespace deepod::nn {
namespace {

using Impl = Tensor::Impl;

void CheckSameShape(const Tensor& a, const Tensor& b, const char* op) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument(std::string(op) + ": shape mismatch " +
                                a.ShapeString() + " vs " + b.ShapeString());
  }
}

// Every op takes this exit when gradients are disabled (InferenceGuard):
// the forward value is identical, but no parent list or backward closure is
// ever constructed, so the query path builds no graph to destruct.
bool Inference() { return !GradEnabled(); }

// True when the current op should run the explicit AVX2 kernels: the thread
// selected kSimd AND the runtime dispatch (compiled + cpuid + DEEPOD_SIMD)
// allows it. When this is false a kSimd thread takes the kVector code path
// of each op, which makes the fallback bit-identical to kVector by
// construction.
bool SimdActive() {
  return GetKernelMode() == KernelMode::kSimd && Avx2Active();
}

// Elementwise unary op helper: forward f(x), backward df(x, y) where y is
// the forward output value.
template <typename F, typename DF>
Tensor UnaryOp(const Tensor& a, F f, DF df) {
  const auto& x = a.data();
  auto out = AcquireBuffer(x.size());
  for (size_t i = 0; i < x.size(); ++i) out[i] = f(x[i]);
  if (Inference()) return Tensor::FromData(a.shape(), std::move(out));
  auto pa = a.impl();
  return Tensor::MakeOpResult(
      a.shape(), std::move(out), {pa}, [pa, df](Impl& self) {
        double* ga = pa->grad_sink();
        for (size_t i = 0; i < self.data.size(); ++i) {
          ga[i] += self.grad[i] * df(pa->data[i], self.data[i]);
        }
      });
}

// Reassociated dot product: four independent accumulators let the
// compiler vectorise. Only used in KernelMode::kVector (the changed
// summation order perturbs last-bit rounding).
double DotUnrolled(const double* a, const double* b, size_t n) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
  }
  double s = (s0 + s1) + (s2 + s3);
  for (; i < n; ++i) s += a[i] * b[i];
  return s;
}

// --- MatMul kernels ---------------------------------------------------------
//
// The naive and blocked kernels accumulate each output entry over k in
// ascending order, so the blocked (packed/B-transposed) kernel is
// bit-identical to the naive one; it only changes memory access patterns,
// never the floating-point summation order. The j-block size keeps a B^T
// tile plus an A row resident in L1 while streaming over rows of A. The
// vector kernel additionally reassociates the dots.
constexpr size_t kMatMulJBlock = 48;

void MatMulForwardNaive(const double* xa, const double* xb, double* out,
                        size_t n, size_t k, size_t m) {
  std::fill(out, out + n * m, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t p = 0; p < k; ++p) {
      const double av = xa[i * k + p];
      if (av == 0.0) continue;
      const double* brow = &xb[p * m];
      double* orow = &out[i * m];
      for (size_t j = 0; j < m; ++j) orow[j] += av * brow[j];
    }
  }
}

// Packs B^T (bt[j*k+p] = b[p*m+j]) into `bt`, which must hold k*m doubles.
void PackBTransposed(const double* xb, double* bt, size_t k, size_t m) {
  for (size_t p = 0; p < k; ++p) {
    const double* brow = &xb[p * m];
    for (size_t j = 0; j < m; ++j) bt[j * k + p] = brow[j];
  }
}

void MatMulForwardBlocked(const double* xa, const double* bt, double* out,
                          size_t n, size_t k, size_t m, bool reassociate) {
  for (size_t jb = 0; jb < m; jb += kMatMulJBlock) {
    const size_t je = std::min(m, jb + kMatMulJBlock);
    for (size_t i = 0; i < n; ++i) {
      const double* arow = &xa[i * k];
      double* orow = &out[i * m];
      for (size_t j = jb; j < je; ++j) {
        const double* btrow = &bt[j * k];
        if (reassociate) {
          orow[j] = DotUnrolled(arow, btrow, k);
        } else {
          double s = 0.0;
          for (size_t p = 0; p < k; ++p) s += arow[p] * btrow[p];
          orow[j] = s;
        }
      }
    }
  }
}

// --- Conv2d kernels ---------------------------------------------------------
//
// The blocked kernel hoists the zero-padding bounds out of the inner loops
// (the naive kernel re-checks them per multiply) and walks kx over
// contiguous input/kernel runs; the (ic, ky, kx) accumulation order of each
// output entry is unchanged, so results are bit-identical to the naive
// kernel.

struct ConvGeom {
  size_t cin, h, w, cout, kh, kw, oh, ow, pad_h, pad_w;
};

void ConvForwardNaive(const ConvGeom& g, const double* xin, const double* xk,
                      double* out) {
  std::fill(out, out + g.cout * g.oh * g.ow, 0.0);
  for (size_t oc = 0; oc < g.cout; ++oc) {
    for (size_t oy = 0; oy < g.oh; ++oy) {
      for (size_t ox = 0; ox < g.ow; ++ox) {
        double s = 0.0;
        for (size_t ic = 0; ic < g.cin; ++ic) {
          for (size_t ky = 0; ky < g.kh; ++ky) {
            const long iy = static_cast<long>(oy + ky) - static_cast<long>(g.pad_h);
            if (iy < 0 || iy >= static_cast<long>(g.h)) continue;
            for (size_t kx = 0; kx < g.kw; ++kx) {
              const long ix = static_cast<long>(ox + kx) - static_cast<long>(g.pad_w);
              if (ix < 0 || ix >= static_cast<long>(g.w)) continue;
              s += xin[(ic * g.h + iy) * g.w + ix] *
                   xk[((oc * g.cin + ic) * g.kh + ky) * g.kw + kx];
            }
          }
        }
        out[(oc * g.oh + oy) * g.ow + ox] = s;
      }
    }
  }
}

void ConvForwardBlocked(const ConvGeom& g, const double* xin, const double* xk,
                        double* out) {
  for (size_t oc = 0; oc < g.cout; ++oc) {
    const double* koc = xk + oc * g.cin * g.kh * g.kw;
    for (size_t oy = 0; oy < g.oh; ++oy) {
      const size_t ky_lo = g.pad_h > oy ? g.pad_h - oy : 0;
      const size_t ky_hi = std::min(g.kh, g.h + g.pad_h - oy);
      for (size_t ox = 0; ox < g.ow; ++ox) {
        const size_t kx_lo = g.pad_w > ox ? g.pad_w - ox : 0;
        const size_t kx_hi = std::min(g.kw, g.w + g.pad_w - ox);
        const long xoff = static_cast<long>(ox) - static_cast<long>(g.pad_w);
        double s = 0.0;
        for (size_t ic = 0; ic < g.cin; ++ic) {
          for (size_t ky = ky_lo; ky < ky_hi; ++ky) {
            const size_t iy = oy + ky - g.pad_h;
            const double* in_row = xin + (ic * g.h + iy) * g.w;
            const double* k_row = koc + (ic * g.kh + ky) * g.kw;
            for (size_t kx = kx_lo; kx < kx_hi; ++kx) {
              s += in_row[xoff + static_cast<long>(kx)] * k_row[kx];
            }
          }
        }
        out[(oc * g.oh + oy) * g.ow + ox] = s;
      }
    }
  }
}

// Planar kernel for KernelMode::kVector: accumulates whole shifted rows
// per (oc, ic, ky, kx) tap, which turns the innermost loop into a
// vectorisable contiguous axpy. Sums each output entry in (ic, ky, kx,
// then tap-major) order — deterministic but not bit-identical to the
// per-point kernels.
void ConvForwardVector(const ConvGeom& g, const double* xin, const double* xk,
                       double* out) {
  std::fill(out, out + g.cout * g.oh * g.ow, 0.0);
  for (size_t oc = 0; oc < g.cout; ++oc) {
    const double* koc = xk + oc * g.cin * g.kh * g.kw;
    double* out_plane = out + oc * g.oh * g.ow;
    for (size_t ic = 0; ic < g.cin; ++ic) {
      const double* in_plane = xin + ic * g.h * g.w;
      for (size_t ky = 0; ky < g.kh; ++ky) {
        const size_t oy_lo = g.pad_h > ky ? g.pad_h - ky : 0;
        const size_t oy_hi = std::min(g.oh, g.h + g.pad_h - ky);
        for (size_t kx = 0; kx < g.kw; ++kx) {
          const double kval = koc[(ic * g.kh + ky) * g.kw + kx];
          if (kval == 0.0) continue;
          const size_t ox_lo = g.pad_w > kx ? g.pad_w - kx : 0;
          const size_t ox_hi = std::min(g.ow, g.w + g.pad_w - kx);
          if (ox_hi <= ox_lo) continue;
          const size_t len = ox_hi - ox_lo;
          const size_t ix_lo = ox_lo + kx - g.pad_w;
          for (size_t oy = oy_lo; oy < oy_hi; ++oy) {
            const size_t iy = oy + ky - g.pad_h;
            const double* in_row = in_plane + iy * g.w + ix_lo;
            double* o_row = out_plane + oy * g.ow + ox_lo;
            for (size_t i = 0; i < len; ++i) o_row[i] += kval * in_row[i];
          }
        }
      }
    }
  }
}

// KernelMode::kSimd forward: ConvForwardVector with the contiguous axpy
// replaced by the AVX2 axpy. The element order is identical to the scalar
// loop — elementwise ops have no summation order to reassociate — but
// AxpyAvx2 fuses each multiply-add into one FMA (one rounding per tap where
// the scalar loop has two), so the result matches ConvForwardVector under
// the kSimd value-tolerance contract, not bit-for-bit. Only called when
// Avx2Active().
void ConvForwardSimd(const ConvGeom& g, const double* xin, const double* xk,
                     double* out) {
  std::fill(out, out + g.cout * g.oh * g.ow, 0.0);
  for (size_t oc = 0; oc < g.cout; ++oc) {
    const double* koc = xk + oc * g.cin * g.kh * g.kw;
    double* out_plane = out + oc * g.oh * g.ow;
    for (size_t ic = 0; ic < g.cin; ++ic) {
      const double* in_plane = xin + ic * g.h * g.w;
      for (size_t ky = 0; ky < g.kh; ++ky) {
        const size_t oy_lo = g.pad_h > ky ? g.pad_h - ky : 0;
        const size_t oy_hi = std::min(g.oh, g.h + g.pad_h - ky);
        for (size_t kx = 0; kx < g.kw; ++kx) {
          const double kval = koc[(ic * g.kh + ky) * g.kw + kx];
          if (kval == 0.0) continue;
          const size_t ox_lo = g.pad_w > kx ? g.pad_w - kx : 0;
          const size_t ox_hi = std::min(g.ow, g.w + g.pad_w - kx);
          if (ox_hi <= ox_lo) continue;
          const size_t len = ox_hi - ox_lo;
          const size_t ix_lo = ox_lo + kx - g.pad_w;
          for (size_t oy = oy_lo; oy < oy_hi; ++oy) {
            const size_t iy = oy + ky - g.pad_h;
            AxpyAvx2(kval, in_plane + iy * g.w + ix_lo,
                     out_plane + oy * g.ow + ox_lo, len);
          }
        }
      }
    }
  }
}

void ConvBackwardVector(const ConvGeom& g, const double* grad_out,
                        const double* xin, const double* xk, double* gin,
                        double* gk) {
  for (size_t oc = 0; oc < g.cout; ++oc) {
    const double* koc = xk + oc * g.cin * g.kh * g.kw;
    double* gkoc = gk + oc * g.cin * g.kh * g.kw;
    const double* go_plane = grad_out + oc * g.oh * g.ow;
    for (size_t ic = 0; ic < g.cin; ++ic) {
      const double* in_plane = xin + ic * g.h * g.w;
      double* gin_plane = gin + ic * g.h * g.w;
      for (size_t ky = 0; ky < g.kh; ++ky) {
        const size_t oy_lo = g.pad_h > ky ? g.pad_h - ky : 0;
        const size_t oy_hi = std::min(g.oh, g.h + g.pad_h - ky);
        for (size_t kx = 0; kx < g.kw; ++kx) {
          const size_t ox_lo = g.pad_w > kx ? g.pad_w - kx : 0;
          const size_t ox_hi = std::min(g.ow, g.w + g.pad_w - kx);
          if (ox_hi <= ox_lo) continue;
          const size_t len = ox_hi - ox_lo;
          const size_t ix_lo = ox_lo + kx - g.pad_w;
          const size_t k_idx = (ic * g.kh + ky) * g.kw + kx;
          const double kval = koc[k_idx];
          double acc = 0.0;
          for (size_t oy = oy_lo; oy < oy_hi; ++oy) {
            const size_t iy = oy + ky - g.pad_h;
            const double* go_row = go_plane + oy * g.ow + ox_lo;
            const double* in_row = in_plane + iy * g.w + ix_lo;
            double* gin_row = gin_plane + iy * g.w + ix_lo;
            for (size_t i = 0; i < len; ++i) gin_row[i] += kval * go_row[i];
            acc += DotUnrolled(go_row, in_row, len);
          }
          gkoc[k_idx] += acc;
        }
      }
    }
  }
}

void ConvBackwardNaive(const ConvGeom& g, const double* grad_out,
                       const double* xin, const double* xk, double* gin,
                       double* gk) {
  for (size_t oc = 0; oc < g.cout; ++oc) {
    for (size_t oy = 0; oy < g.oh; ++oy) {
      for (size_t ox = 0; ox < g.ow; ++ox) {
        const double go = grad_out[(oc * g.oh + oy) * g.ow + ox];
        if (go == 0.0) continue;
        for (size_t ic = 0; ic < g.cin; ++ic) {
          for (size_t ky = 0; ky < g.kh; ++ky) {
            const long iy = static_cast<long>(oy + ky) - static_cast<long>(g.pad_h);
            if (iy < 0 || iy >= static_cast<long>(g.h)) continue;
            for (size_t kx = 0; kx < g.kw; ++kx) {
              const long ix = static_cast<long>(ox + kx) - static_cast<long>(g.pad_w);
              if (ix < 0 || ix >= static_cast<long>(g.w)) continue;
              const size_t in_idx = (ic * g.h + iy) * g.w + ix;
              const size_t k_idx = ((oc * g.cin + ic) * g.kh + ky) * g.kw + kx;
              gin[in_idx] += go * xk[k_idx];
              gk[k_idx] += go * xin[in_idx];
            }
          }
        }
      }
    }
  }
}

void ConvBackwardBlocked(const ConvGeom& g, const double* grad_out,
                         const double* xin, const double* xk, double* gin,
                         double* gk) {
  for (size_t oc = 0; oc < g.cout; ++oc) {
    const double* koc = xk + oc * g.cin * g.kh * g.kw;
    double* gkoc = gk + oc * g.cin * g.kh * g.kw;
    for (size_t oy = 0; oy < g.oh; ++oy) {
      const size_t ky_lo = g.pad_h > oy ? g.pad_h - oy : 0;
      const size_t ky_hi = std::min(g.kh, g.h + g.pad_h - oy);
      for (size_t ox = 0; ox < g.ow; ++ox) {
        const double go = grad_out[(oc * g.oh + oy) * g.ow + ox];
        if (go == 0.0) continue;
        const size_t kx_lo = g.pad_w > ox ? g.pad_w - ox : 0;
        const size_t kx_hi = std::min(g.kw, g.w + g.pad_w - ox);
        const long xoff = static_cast<long>(ox) - static_cast<long>(g.pad_w);
        for (size_t ic = 0; ic < g.cin; ++ic) {
          for (size_t ky = ky_lo; ky < ky_hi; ++ky) {
            const size_t iy = oy + ky - g.pad_h;
            const size_t in_base = (ic * g.h + iy) * g.w;
            const double* in_row = xin + in_base;
            double* gin_row = gin + in_base;
            const size_t k_base = (ic * g.kh + ky) * g.kw;
            const double* k_row = koc + k_base;
            double* gk_row = gkoc + k_base;
            for (size_t kx = kx_lo; kx < kx_hi; ++kx) {
              gin_row[xoff + static_cast<long>(kx)] += go * k_row[kx];
            }
            for (size_t kx = kx_lo; kx < kx_hi; ++kx) {
              gk_row[kx] += go * in_row[xoff + static_cast<long>(kx)];
            }
          }
        }
      }
    }
  }
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Add");
  const auto& xa = a.data();
  const auto& xb = b.data();
  auto out = AcquireBuffer(xa.size());
  for (size_t i = 0; i < xa.size(); ++i) out[i] = xa[i] + xb[i];
  if (Inference()) return Tensor::FromData(a.shape(), std::move(out));
  auto pa = a.impl(), pb = b.impl();
  return Tensor::MakeOpResult(a.shape(), std::move(out), {pa, pb},
                              [pa, pb](Impl& self) {
                                double* ga = pa->grad_sink();
                                double* gb = pb->grad_sink();
                                for (size_t i = 0; i < self.grad.size(); ++i) {
                                  ga[i] += self.grad[i];
                                  gb[i] += self.grad[i];
                                }
                              });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Sub");
  const auto& xa = a.data();
  const auto& xb = b.data();
  auto out = AcquireBuffer(xa.size());
  for (size_t i = 0; i < xa.size(); ++i) out[i] = xa[i] - xb[i];
  if (Inference()) return Tensor::FromData(a.shape(), std::move(out));
  auto pa = a.impl(), pb = b.impl();
  return Tensor::MakeOpResult(a.shape(), std::move(out), {pa, pb},
                              [pa, pb](Impl& self) {
                                double* ga = pa->grad_sink();
                                double* gb = pb->grad_sink();
                                for (size_t i = 0; i < self.grad.size(); ++i) {
                                  ga[i] += self.grad[i];
                                  gb[i] -= self.grad[i];
                                }
                              });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Mul");
  const auto& xa = a.data();
  const auto& xb = b.data();
  auto out = AcquireBuffer(xa.size());
  for (size_t i = 0; i < xa.size(); ++i) out[i] = xa[i] * xb[i];
  if (Inference()) return Tensor::FromData(a.shape(), std::move(out));
  auto pa = a.impl(), pb = b.impl();
  return Tensor::MakeOpResult(a.shape(), std::move(out), {pa, pb},
                              [pa, pb](Impl& self) {
                                double* ga = pa->grad_sink();
                                double* gb = pb->grad_sink();
                                for (size_t i = 0; i < self.grad.size(); ++i) {
                                  ga[i] += self.grad[i] * pb->data[i];
                                  gb[i] += self.grad[i] * pa->data[i];
                                }
                              });
}

Tensor Scale(const Tensor& a, double c) {
  return UnaryOp(
      a, [c](double x) { return c * x; },
      [c](double, double) { return c; });
}

Tensor AddScalar(const Tensor& a, double c) {
  return UnaryOp(
      a, [c](double x) { return x + c; }, [](double, double) { return 1.0; });
}

Tensor Relu(const Tensor& a) {
  return UnaryOp(
      a, [](double x) { return x > 0.0 ? x : 0.0; },
      [](double x, double) { return x > 0.0 ? 1.0 : 0.0; });
}

Tensor Sigmoid(const Tensor& a) {
  return UnaryOp(
      a, [](double x) { return 1.0 / (1.0 + std::exp(-x)); },
      [](double, double y) { return y * (1.0 - y); });
}

Tensor Tanh(const Tensor& a) {
  return UnaryOp(
      a, [](double x) { return std::tanh(x); },
      [](double, double y) { return 1.0 - y * y; });
}

Tensor Abs(const Tensor& a) {
  return UnaryOp(
      a, [](double x) { return std::fabs(x); },
      [](double x, double) { return x > 0.0 ? 1.0 : (x < 0.0 ? -1.0 : 0.0); });
}

Tensor Square(const Tensor& a) {
  return UnaryOp(
      a, [](double x) { return x * x; },
      [](double x, double) { return 2.0 * x; });
}

Tensor Sqrt(const Tensor& a, double eps) {
  return UnaryOp(
      a, [eps](double x) { return std::sqrt(x + eps); },
      [](double, double y) { return 0.5 / y; });
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  if (a.ndim() != 2 || b.ndim() != 2 || a.dim(1) != b.dim(0)) {
    throw std::invalid_argument("MatMul: incompatible shapes " +
                                a.ShapeString() + " x " + b.ShapeString());
  }
  DEEPOD_COUNT_KERNEL("matmul");
  const size_t n = a.dim(0), k = a.dim(1), m = b.dim(1);
  const auto& xa = a.data();
  const auto& xb = b.data();
  auto out = AcquireBuffer(n * m);
  const KernelMode mode = GetKernelMode();
  if (SimdActive()) {
    // B here is typically materialised per call (Linear's 2-D path builds
    // W^T fresh), so MatMul skips the pack cache and uses the broadcast-A
    // AVX2 kernel directly over row-major B.
    MatMulAvx2(xa.data(), xb.data(), out.data(), n, k, m);
  } else if (mode != KernelMode::kLegacy) {
    auto bt = AcquireBuffer(k * m);
    PackBTransposed(xb.data(), bt.data(), k, m);
    MatMulForwardBlocked(xa.data(), bt.data(), out.data(), n, k, m,
                         mode == KernelMode::kVector ||
                             mode == KernelMode::kSimd);
  } else {
    MatMulForwardNaive(xa.data(), xb.data(), out.data(), n, k, m);
  }
  if (Inference()) return Tensor::FromData({n, m}, std::move(out));
  auto pa = a.impl(), pb = b.impl();
  return Tensor::MakeOpResult(
      {n, m}, std::move(out), {pa, pb}, [pa, pb, n, k, m](Impl& self) {
        // dA = dY * B^T ; dB = A^T * dY. Both accumulation orders match the
        // naive triple loop (j ascending for dA, i ascending for dB).
        double* ga = pa->grad_sink();
        double* gb = pb->grad_sink();
        if (GetKernelMode() == KernelMode::kLegacy) {
          for (size_t i = 0; i < n; ++i) {
            for (size_t j = 0; j < m; ++j) {
              const double g = self.grad[i * m + j];
              if (g == 0.0) continue;
              for (size_t p = 0; p < k; ++p) {
                ga[i * k + p] += g * pb->data[p * m + j];
                gb[p * m + j] += g * pa->data[i * k + p];
              }
            }
          }
          return;
        }
        auto bt = AcquireBuffer(k * m);
        PackBTransposed(pb->data.data(), bt.data(), k, m);
        for (size_t i = 0; i < n; ++i) {
          const double* grow = &self.grad[i * m];
          double* garow = ga + i * k;
          for (size_t j = 0; j < m; ++j) {
            const double g = grow[j];
            if (g == 0.0) continue;
            const double* btrow = &bt[j * k];
            for (size_t p = 0; p < k; ++p) garow[p] += g * btrow[p];
          }
        }
        for (size_t i = 0; i < n; ++i) {
          const double* arow = &pa->data[i * k];
          const double* grow = &self.grad[i * m];
          for (size_t p = 0; p < k; ++p) {
            const double av = arow[p];
            if (av == 0.0) continue;
            double* gbrow = gb + p * m;
            for (size_t j = 0; j < m; ++j) gbrow[j] += av * grow[j];
          }
        }
      });
}

Tensor AddRow(const Tensor& a, const Tensor& row) {
  if (a.ndim() == 1) return Add(a, row);
  if (a.ndim() != 2 || row.ndim() != 1 || a.dim(1) != row.dim(0)) {
    throw std::invalid_argument("AddRow: incompatible shapes " +
                                a.ShapeString() + " + " + row.ShapeString());
  }
  const size_t n = a.dim(0), d = a.dim(1);
  const auto& xa = a.data();
  const auto& xr = row.data();
  auto out = AcquireBuffer(n * d);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) out[i * d + j] = xa[i * d + j] + xr[j];
  }
  if (Inference()) return Tensor::FromData({n, d}, std::move(out));
  auto pa = a.impl(), pr = row.impl();
  return Tensor::MakeOpResult({n, d}, std::move(out), {pa, pr},
                              [pa, pr, n, d](Impl& self) {
                                double* ga = pa->grad_sink();
                                double* gr = pr->grad_sink();
                                for (size_t i = 0; i < n; ++i) {
                                  for (size_t j = 0; j < d; ++j) {
                                    const double g = self.grad[i * d + j];
                                    ga[i * d + j] += g;
                                    gr[j] += g;
                                  }
                                }
                              });
}

Tensor Affine(const Tensor& w, const Tensor& x, const Tensor& b) {
  if (w.ndim() != 2 || x.ndim() != 1 || b.ndim() != 1 || w.dim(1) != x.dim(0) ||
      w.dim(0) != b.dim(0)) {
    throw std::invalid_argument("Affine: incompatible shapes " +
                                w.ShapeString() + " * " + x.ShapeString() +
                                " + " + b.ShapeString());
  }
  DEEPOD_COUNT_KERNEL("affine");
  const size_t o = w.dim(0), in = w.dim(1);
  const auto& xw = w.data();
  const auto& xx = x.data();
  const auto& xb = b.data();
  auto out = AcquireBuffer(o);
  const KernelMode mode = GetKernelMode();
  if (SimdActive()) {
    // Same packed kernel AffineRows uses per row, so Predict stays
    // bit-identical to PredictBatch in kSimd too.
    const auto packed = PackedFor(w.impl());
    GemvBiasPacked(*packed, xx.data(), xb.data(), out.data());
  } else if (mode == KernelMode::kVector || mode == KernelMode::kSimd) {
    for (size_t i = 0; i < o; ++i) {
      out[i] = xb[i] + DotUnrolled(&xw[i * in], xx.data(), in);
    }
  } else {
    for (size_t i = 0; i < o; ++i) {
      double s = xb[i];
      const double* wrow = &xw[i * in];
      for (size_t j = 0; j < in; ++j) s += wrow[j] * xx[j];
      out[i] = s;
    }
  }
  if (Inference()) return Tensor::FromData({o}, std::move(out));
  auto pw = w.impl(), px = x.impl(), pb = b.impl();
  return Tensor::MakeOpResult(
      {o}, std::move(out), {pw, px, pb}, [pw, px, pb, o, in](Impl& self) {
        double* gw = pw->grad_sink();
        double* gx = px->grad_sink();
        double* gb = pb->grad_sink();
        const double* xd = px->data.data();
        const double* wd = pw->data.data();
        for (size_t i = 0; i < o; ++i) {
          const double g = self.grad[i];
          if (g == 0.0) continue;
          gb[i] += g;
          double* gwrow = gw + i * in;
          const double* wrow = wd + i * in;
          for (size_t j = 0; j < in; ++j) gwrow[j] += g * xd[j];
          for (size_t j = 0; j < in; ++j) gx[j] += g * wrow[j];
        }
      });
}

Tensor AffineRows(const Tensor& x, const Tensor& w, const Tensor& b) {
  if (x.ndim() != 2 || w.ndim() != 2 || b.ndim() != 1 ||
      w.dim(1) != x.dim(1) || w.dim(0) != b.dim(0)) {
    throw std::invalid_argument("AffineRows: incompatible shapes " +
                                x.ShapeString() + " x " + w.ShapeString() +
                                " + " + b.ShapeString());
  }
  DEEPOD_COUNT_KERNEL("affine_rows");
  const size_t n = x.dim(0), in = x.dim(1), o = w.dim(0);
  const auto& xx = x.data();
  const auto& xw = w.data();
  const auto& xb = b.data();
  auto out = AcquireBuffer(n * o);
  // Row r is computed exactly like Affine(w, x[r], b): bias-first, then the
  // dot product in the active kernel tier's summation order (in kSimd, the
  // identical packed GEMV kernel). That keeps PredictBatch bit-identical to
  // a per-query Predict loop in every mode.
  const KernelMode mode = GetKernelMode();
  if (SimdActive()) {
    const auto packed = PackedFor(w.impl());
    for (size_t r = 0; r < n; ++r) {
      GemvBiasPacked(*packed, &xx[r * in], xb.data(), &out[r * o]);
    }
  } else if (mode == KernelMode::kVector || mode == KernelMode::kSimd) {
    for (size_t r = 0; r < n; ++r) {
      const double* xrow = &xx[r * in];
      double* orow = &out[r * o];
      for (size_t i = 0; i < o; ++i) {
        orow[i] = xb[i] + DotUnrolled(&xw[i * in], xrow, in);
      }
    }
  } else {
    for (size_t r = 0; r < n; ++r) {
      const double* xrow = &xx[r * in];
      double* orow = &out[r * o];
      for (size_t i = 0; i < o; ++i) {
        double s = xb[i];
        const double* wrow = &xw[i * in];
        for (size_t j = 0; j < in; ++j) s += wrow[j] * xrow[j];
        orow[i] = s;
      }
    }
  }
  if (Inference()) return Tensor::FromData({n, o}, std::move(out));
  auto px = x.impl(), pw = w.impl(), pb = b.impl();
  return Tensor::MakeOpResult(
      {n, o}, std::move(out), {px, pw, pb}, [px, pw, pb, n, in, o](Impl& self) {
        double* gx = px->grad_sink();
        double* gw = pw->grad_sink();
        double* gb = pb->grad_sink();
        const double* xd = px->data.data();
        const double* wd = pw->data.data();
        for (size_t r = 0; r < n; ++r) {
          const double* grow = &self.grad[r * o];
          const double* xrow = xd + r * in;
          double* gxrow = gx + r * in;
          for (size_t i = 0; i < o; ++i) {
            const double g = grow[i];
            if (g == 0.0) continue;
            gb[i] += g;
            double* gwrow = gw + i * in;
            const double* wrow = wd + i * in;
            for (size_t j = 0; j < in; ++j) gwrow[j] += g * xrow[j];
            for (size_t j = 0; j < in; ++j) gxrow[j] += g * wrow[j];
          }
        }
      });
}

Tensor ConcatVec(const std::vector<Tensor>& parts) {
  if (parts.empty()) throw std::invalid_argument("ConcatVec: no inputs");
  size_t total = 0;
  for (const auto& p : parts) {
    if (p.ndim() != 1) {
      throw std::invalid_argument("ConcatVec: all inputs must be 1-D, got " +
                                  p.ShapeString());
    }
    total += p.dim(0);
  }
  auto out = AcquireBuffer(total);
  size_t offset = 0;
  for (const auto& p : parts) {
    const auto& d = p.data();
    std::copy(d.begin(), d.end(), out.begin() + offset);
    offset += d.size();
  }
  if (Inference()) return Tensor::FromData({total}, std::move(out));
  std::vector<std::shared_ptr<Impl>> parents;
  parents.reserve(parts.size());
  for (const auto& p : parts) parents.push_back(p.impl());
  return Tensor::MakeOpResult({total}, std::move(out), parents,
                              [parents](Impl& self) {
                                size_t off = 0;
                                for (const auto& p : parents) {
                                  double* gp = p->grad_sink();
                                  for (size_t i = 0; i < p->data.size(); ++i) {
                                    gp[i] += self.grad[off + i];
                                  }
                                  off += p->data.size();
                                }
                              });
}

Tensor StackRows(const std::vector<Tensor>& rows) {
  if (rows.empty()) throw std::invalid_argument("StackRows: no inputs");
  const size_t d = rows[0].dim(0);
  auto out = AcquireBuffer(rows.size() * d);
  size_t offset = 0;
  for (const auto& r : rows) {
    if (r.ndim() != 1 || r.dim(0) != d) {
      throw std::invalid_argument("StackRows: inconsistent row shapes");
    }
    const auto& x = r.data();
    std::copy(x.begin(), x.end(), out.begin() + offset);
    offset += d;
  }
  const size_t n = rows.size();
  if (Inference()) return Tensor::FromData({n, d}, std::move(out));
  std::vector<std::shared_ptr<Impl>> parents;
  parents.reserve(rows.size());
  for (const auto& r : rows) parents.push_back(r.impl());
  return Tensor::MakeOpResult({n, d}, std::move(out), parents,
                              [parents, d](Impl& self) {
                                for (size_t i = 0; i < parents.size(); ++i) {
                                  double* gp = parents[i]->grad_sink();
                                  for (size_t j = 0; j < d; ++j) {
                                    gp[j] += self.grad[i * d + j];
                                  }
                                }
                              });
}

Tensor Row(const Tensor& matrix, size_t i) {
  if (matrix.ndim() != 2) throw std::invalid_argument("Row: input not 2-D");
  const size_t n = matrix.dim(0), d = matrix.dim(1);
  if (i >= n) throw std::out_of_range("Row: index out of range");
  const auto& x = matrix.data();
  auto out = AcquireBuffer(d);
  std::copy(x.begin() + i * d, x.begin() + (i + 1) * d, out.begin());
  if (Inference()) return Tensor::FromData({d}, std::move(out));
  auto pm = matrix.impl();
  return Tensor::MakeOpResult({d}, std::move(out), {pm},
                              [pm, i, d](Impl& self) {
                                double* gm = pm->grad_sink();
                                for (size_t j = 0; j < d; ++j) {
                                  gm[i * d + j] += self.grad[j];
                                }
                              });
}

Tensor GatherRows(const Tensor& matrix, const std::vector<size_t>& indices) {
  if (matrix.ndim() != 2) throw std::invalid_argument("GatherRows: input not 2-D");
  const size_t n = matrix.dim(0), d = matrix.dim(1);
  auto out = AcquireBuffer(indices.size() * d);
  const auto& x = matrix.data();
  size_t offset = 0;
  for (size_t idx : indices) {
    if (idx >= n) throw std::out_of_range("GatherRows: index out of range");
    std::copy(x.begin() + idx * d, x.begin() + (idx + 1) * d,
              out.begin() + offset);
    offset += d;
  }
  if (Inference()) return Tensor::FromData({indices.size(), d}, std::move(out));
  auto pm = matrix.impl();
  auto idx_copy = indices;
  return Tensor::MakeOpResult(
      {indices.size(), d}, std::move(out), {pm},
      [pm, idx_copy, d](Impl& self) {
        double* gm = pm->grad_sink();
        for (size_t r = 0; r < idx_copy.size(); ++r) {
          for (size_t j = 0; j < d; ++j) {
            gm[idx_copy[r] * d + j] += self.grad[r * d + j];
          }
        }
      });
}

Tensor Reshape(const Tensor& a, std::vector<size_t> new_shape) {
  if (NumElements(new_shape) != a.size()) {
    throw std::invalid_argument("Reshape: element count mismatch");
  }
  if (Inference()) return Tensor::FromData(std::move(new_shape), a.data());
  auto pa = a.impl();
  return Tensor::MakeOpResult(std::move(new_shape), a.data(), {pa},
                              [pa](Impl& self) {
                                double* ga = pa->grad_sink();
                                for (size_t i = 0; i < self.grad.size(); ++i) {
                                  ga[i] += self.grad[i];
                                }
                              });
}

Tensor Sum(const Tensor& a) {
  double s = 0.0;
  for (double x : a.data()) s += x;
  if (Inference()) return Tensor::FromData({1}, {s});
  auto pa = a.impl();
  return Tensor::MakeOpResult({1}, {s}, {pa}, [pa](Impl& self) {
    const double g = self.grad[0];
    double* ga = pa->grad_sink();
    for (size_t i = 0; i < pa->data.size(); ++i) ga[i] += g;
  });
}

Tensor Mean(const Tensor& a) {
  if (a.size() == 0) throw std::invalid_argument("Mean: empty tensor");
  return Scale(Sum(a), 1.0 / static_cast<double>(a.size()));
}

Tensor MeanRows(const Tensor& a) {
  if (a.ndim() != 2) throw std::invalid_argument("MeanRows: input not 2-D");
  const size_t n = a.dim(0), d = a.dim(1);
  const auto& x = a.data();
  auto out = AcquireZeroBuffer(d);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) out[j] += x[i * d + j];
  }
  const double inv = 1.0 / static_cast<double>(n);
  for (double& v : out) v *= inv;
  if (Inference()) return Tensor::FromData({d}, std::move(out));
  auto pa = a.impl();
  return Tensor::MakeOpResult({d}, std::move(out), {pa},
                              [pa, n, d, inv](Impl& self) {
                                double* ga = pa->grad_sink();
                                for (size_t i = 0; i < n; ++i) {
                                  for (size_t j = 0; j < d; ++j) {
                                    ga[i * d + j] += self.grad[j] * inv;
                                  }
                                }
                              });
}

Tensor Conv2d(const Tensor& input, const Tensor& kernel, size_t pad_h,
              size_t pad_w) {
  if (input.ndim() != 3 || kernel.ndim() != 4 || input.dim(0) != kernel.dim(1)) {
    throw std::invalid_argument("Conv2d: incompatible shapes " +
                                input.ShapeString() + " conv " +
                                kernel.ShapeString());
  }
  const size_t cin = input.dim(0), h = input.dim(1), w = input.dim(2);
  const size_t cout = kernel.dim(0), kh = kernel.dim(2), kw = kernel.dim(3);
  if (h + 2 * pad_h < kh || w + 2 * pad_w < kw) {
    throw std::invalid_argument("Conv2d: kernel larger than padded input");
  }
  DEEPOD_COUNT_KERNEL("conv2d");
  const size_t oh = h + 2 * pad_h - kh + 1;
  const size_t ow = w + 2 * pad_w - kw + 1;
  const ConvGeom geom{cin, h, w, cout, kh, kw, oh, ow, pad_h, pad_w};
  const auto& xin = input.data();
  const auto& xk = kernel.data();
  auto out = AcquireBuffer(cout * oh * ow);
  switch (GetKernelMode()) {
    case KernelMode::kLegacy:
      ConvForwardNaive(geom, xin.data(), xk.data(), out.data());
      break;
    case KernelMode::kBlocked:
      ConvForwardBlocked(geom, xin.data(), xk.data(), out.data());
      break;
    case KernelMode::kVector:
      ConvForwardVector(geom, xin.data(), xk.data(), out.data());
      break;
    case KernelMode::kSimd:
      if (SimdActive()) {
        ConvForwardSimd(geom, xin.data(), xk.data(), out.data());
      } else {
        ConvForwardVector(geom, xin.data(), xk.data(), out.data());
      }
      break;
  }
  if (Inference()) return Tensor::FromData({cout, oh, ow}, std::move(out));
  auto pin = input.impl(), pk = kernel.impl();
  return Tensor::MakeOpResult(
      {cout, oh, ow}, std::move(out), {pin, pk}, [pin, pk, geom](Impl& self) {
        double* gin = pin->grad_sink();
        double* gk = pk->grad_sink();
        switch (GetKernelMode()) {
          case KernelMode::kLegacy:
            ConvBackwardNaive(geom, self.grad.data(), pin->data.data(),
                              pk->data.data(), gin, gk);
            break;
          case KernelMode::kBlocked:
            ConvBackwardBlocked(geom, self.grad.data(), pin->data.data(),
                                pk->data.data(), gin, gk);
            break;
          case KernelMode::kVector:
          case KernelMode::kSimd:
            // Backward is a training-only path; kSimd reuses the kVector
            // backward kernel (no AVX2 variant, bit-identical to kVector).
            ConvBackwardVector(geom, self.grad.data(), pin->data.data(),
                               pk->data.data(), gin, gk);
            break;
        }
      });
}

Tensor AddChannelBias(const Tensor& input, const Tensor& bias) {
  if (input.ndim() != 3 || bias.ndim() != 1 || input.dim(0) != bias.dim(0)) {
    throw std::invalid_argument("AddChannelBias: incompatible shapes");
  }
  const size_t c = input.dim(0), hw = input.dim(1) * input.dim(2);
  const auto& xin = input.data();
  const auto& xb = bias.data();
  auto out = AcquireBuffer(xin.size());
  for (size_t ch = 0; ch < c; ++ch) {
    for (size_t i = 0; i < hw; ++i) out[ch * hw + i] = xin[ch * hw + i] + xb[ch];
  }
  if (Inference()) return Tensor::FromData(input.shape(), std::move(out));
  auto pin = input.impl(), pb = bias.impl();
  return Tensor::MakeOpResult(input.shape(), std::move(out), {pin, pb},
                              [pin, pb, c, hw](Impl& self) {
                                double* gin = pin->grad_sink();
                                double* gb = pb->grad_sink();
                                for (size_t ch = 0; ch < c; ++ch) {
                                  for (size_t i = 0; i < hw; ++i) {
                                    const double g = self.grad[ch * hw + i];
                                    gin[ch * hw + i] += g;
                                    gb[ch] += g;
                                  }
                                }
                              });
}

Tensor GlobalAvgPool(const Tensor& input) {
  if (input.ndim() != 3) throw std::invalid_argument("GlobalAvgPool: input not 3-D");
  const size_t c = input.dim(0), hw = input.dim(1) * input.dim(2);
  const auto& xin = input.data();
  auto out = AcquireBuffer(c);
  const double inv = 1.0 / static_cast<double>(hw);
  for (size_t ch = 0; ch < c; ++ch) {
    double s = 0.0;
    for (size_t i = 0; i < hw; ++i) s += xin[ch * hw + i];
    out[ch] = s * inv;
  }
  if (Inference()) return Tensor::FromData({c}, std::move(out));
  auto pin = input.impl();
  return Tensor::MakeOpResult({c}, std::move(out), {pin},
                              [pin, c, hw, inv](Impl& self) {
                                double* gin = pin->grad_sink();
                                for (size_t ch = 0; ch < c; ++ch) {
                                  const double g = self.grad[ch] * inv;
                                  for (size_t i = 0; i < hw; ++i) {
                                    gin[ch * hw + i] += g;
                                  }
                                }
                              });
}

Tensor LstmCellFused(const Tensor& x, const Tensor& h_prev,
                     const Tensor& c_prev, const Tensor& wf, const Tensor& wi,
                     const Tensor& wo, const Tensor& wc, const Tensor& bf,
                     const Tensor& bi, const Tensor& bo, const Tensor& bc) {
  const size_t in = x.dim(0), hd = h_prev.dim(0), cd = in + hd;
  if (c_prev.dim(0) != hd || wf.ndim() != 2 || wf.dim(0) != hd ||
      wf.dim(1) != cd || wi.shape() != wf.shape() || wo.shape() != wf.shape() ||
      wc.shape() != wf.shape() || bf.dim(0) != hd || bi.dim(0) != hd ||
      bo.dim(0) != hd || bc.dim(0) != hd) {
    throw std::invalid_argument("LstmCellFused: incompatible shapes");
  }
  DEEPOD_COUNT_KERNEL("lstm_cell_fused");
  const double* xd = x.data().data();
  const double* hp = h_prev.data().data();
  const double* cp = c_prev.data().data();
  const double* wfd = wf.data().data();
  const double* wid = wi.data().data();
  const double* wod = wo.data().data();
  const double* wcd = wc.data().data();
  // Saved activations for backward: [f ; i ; o ; g], each hd long.
  std::vector<double> gates(4 * hd);
  auto out = AcquireBuffer(2 * hd);
  if (SimdActive()) {
    // Gate pre-activations via the packed GEMV over [W_x | W_h] without
    // materialising [x; h] (the two-source variant), then a scalar
    // activation loop. The gates are saved exactly as the scalar path does,
    // so a backward through this result uses the same bookkeeping.
    auto acts = AcquireBuffer(4 * hd);
    const Tensor* ws[4] = {&wf, &wi, &wo, &wc};
    const Tensor* bs[4] = {&bf, &bi, &bo, &bc};
    for (int gate = 0; gate < 4; ++gate) {
      const auto packed = PackedFor(ws[gate]->impl());
      GemvBiasPacked2(*packed, xd, in, hp, bs[gate]->data().data(),
                      acts.data() + gate * hd);
    }
    // Activations 4-wide as well: f/i/o are contiguous in acts, so one
    // sigmoid sweep covers all three, then tanh for g. The final tanh(cn)
    // reuses acts as scratch. These libm-free activations are what lifts
    // the fused cell past the GEMV-only speedup (Amdahl: ~100 scalar
    // transcendentals per cell otherwise dominate).
    SigmoidAvx2(acts.data(), gates.data(), 3 * hd);
    TanhAvx2(acts.data() + 3 * hd, gates.data() + 3 * hd, hd);
    for (size_t j = 0; j < hd; ++j) {
      out[hd + j] = gates[j] * cp[j] + gates[hd + j] * gates[3 * hd + j];
    }
    TanhAvx2(out.data() + hd, acts.data(), hd);
    for (size_t j = 0; j < hd; ++j) out[j] = gates[2 * hd + j] * acts[j];
  } else {
    for (size_t j = 0; j < hd; ++j) {
      const size_t r = j * cd;
      const double af = bf.data()[j] + DotUnrolled(wfd + r, xd, in) +
                        DotUnrolled(wfd + r + in, hp, hd);
      const double ai = bi.data()[j] + DotUnrolled(wid + r, xd, in) +
                        DotUnrolled(wid + r + in, hp, hd);
      const double ao = bo.data()[j] + DotUnrolled(wod + r, xd, in) +
                        DotUnrolled(wod + r + in, hp, hd);
      const double ac = bc.data()[j] + DotUnrolled(wcd + r, xd, in) +
                        DotUnrolled(wcd + r + in, hp, hd);
      const double f = 1.0 / (1.0 + std::exp(-af));
      const double i = 1.0 / (1.0 + std::exp(-ai));
      const double o = 1.0 / (1.0 + std::exp(-ao));
      const double g = std::tanh(ac);
      const double cn = f * cp[j] + i * g;
      gates[j] = f;
      gates[hd + j] = i;
      gates[2 * hd + j] = o;
      gates[3 * hd + j] = g;
      out[j] = o * std::tanh(cn);
      out[hd + j] = cn;
    }
  }
  if (Inference()) return Tensor::FromData({2 * hd}, std::move(out));
  // The backward reads parents through self.parents (fixed order below) so
  // the closure stays small enough for SmallFn's inline buffer.
  return Tensor::MakeOpResult(
      {2 * hd}, std::move(out),
      {x.impl(), h_prev.impl(), c_prev.impl(), wf.impl(), wi.impl(), wo.impl(),
       wc.impl(), bf.impl(), bi.impl(), bo.impl(), bc.impl()},
      [in, hd, cd, gates = std::move(gates)](Impl& self) {
        Impl* px = self.parents[0].get();
        Impl* ph = self.parents[1].get();
        Impl* pc = self.parents[2].get();
        Impl* pw[4] = {self.parents[3].get(), self.parents[4].get(),
                       self.parents[5].get(), self.parents[6].get()};
        Impl* pb[4] = {self.parents[7].get(), self.parents[8].get(),
                       self.parents[9].get(), self.parents[10].get()};
        const double* xd = px->data.data();
        const double* hp = ph->data.data();
        const double* cp = pc->data.data();
        double* gx = px->grad_sink();
        double* gh = ph->grad_sink();
        double* gc = pc->grad_sink();
        double* gw[4];
        double* gb[4];
        const double* wd[4];
        for (int k = 0; k < 4; ++k) {
          gw[k] = pw[k]->grad_sink();
          gb[k] = pb[k]->grad_sink();
          wd[k] = pw[k]->data.data();
        }
        for (size_t j = 0; j < hd; ++j) {
          const double dh = self.grad[j];
          const double dcout = self.grad[hd + j];
          if (dh == 0.0 && dcout == 0.0) continue;
          const double f = gates[j];
          const double i = gates[hd + j];
          const double o = gates[2 * hd + j];
          const double g = gates[3 * hd + j];
          const double tc = std::tanh(self.data[hd + j]);
          const double do_ = dh * tc;
          const double dc = dcout + dh * o * (1.0 - tc * tc);
          gc[j] += dc * f;
          // Pre-activation gradients in the f/i/o/c weight order.
          const double da[4] = {dc * cp[j] * f * (1.0 - f),
                                dc * g * i * (1.0 - i),
                                do_ * o * (1.0 - o),
                                dc * i * (1.0 - g * g)};
          const size_t r = j * cd;
          for (int k = 0; k < 4; ++k) {
            const double a = da[k];
            if (a == 0.0) continue;
            gb[k][j] += a;
            double* grow = gw[k] + r;
            const double* wrow = wd[k] + r;
            for (size_t t = 0; t < in; ++t) grow[t] += a * xd[t];
            for (size_t t = 0; t < hd; ++t) grow[in + t] += a * hp[t];
            for (size_t t = 0; t < in; ++t) gx[t] += a * wrow[t];
            for (size_t t = 0; t < hd; ++t) gh[t] += a * wrow[in + t];
          }
        }
      });
}

Tensor SliceVec(const Tensor& a, size_t begin, size_t end) {
  if (a.ndim() != 1 || begin > end || end > a.dim(0)) {
    throw std::invalid_argument("SliceVec: bad range for " + a.ShapeString());
  }
  const size_t n = end - begin;
  auto out = AcquireBuffer(n);
  std::copy(a.data().begin() + begin, a.data().begin() + end, out.begin());
  if (Inference()) return Tensor::FromData({n}, std::move(out));
  auto pa = a.impl();
  return Tensor::MakeOpResult({n}, std::move(out), {pa},
                              [pa, begin, n](Impl& self) {
                                double* ga = pa->grad_sink();
                                for (size_t i = 0; i < n; ++i) {
                                  ga[begin + i] += self.grad[i];
                                }
                              });
}

Tensor MaeLoss(const Tensor& pred, const Tensor& target) {
  CheckSameShape(pred, target, "MaeLoss");
  return Mean(Abs(Sub(pred, target)));
}

Tensor EuclideanDistance(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "EuclideanDistance");
  return Sqrt(Sum(Square(Sub(a, b))));
}

}  // namespace deepod::nn
