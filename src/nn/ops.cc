#include "nn/ops.h"

#include <cmath>
#include <stdexcept>

namespace deepod::nn {
namespace {

using Impl = Tensor::Impl;

void CheckSameShape(const Tensor& a, const Tensor& b, const char* op) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument(std::string(op) + ": shape mismatch " +
                                a.ShapeString() + " vs " + b.ShapeString());
  }
}

// Elementwise unary op helper: forward f(x), backward df(x, y) where y is
// the forward output value.
template <typename F, typename DF>
Tensor UnaryOp(const Tensor& a, F f, DF df) {
  const auto& x = a.data();
  std::vector<double> out(x.size());
  for (size_t i = 0; i < x.size(); ++i) out[i] = f(x[i]);
  auto pa = a.impl();
  return Tensor::MakeOpResult(
      a.shape(), std::move(out), {pa}, [pa, df](Impl& self) {
        for (size_t i = 0; i < self.data.size(); ++i) {
          pa->grad[i] += self.grad[i] * df(pa->data[i], self.data[i]);
        }
      });
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Add");
  const auto& xa = a.data();
  const auto& xb = b.data();
  std::vector<double> out(xa.size());
  for (size_t i = 0; i < xa.size(); ++i) out[i] = xa[i] + xb[i];
  auto pa = a.impl(), pb = b.impl();
  return Tensor::MakeOpResult(a.shape(), std::move(out), {pa, pb},
                              [pa, pb](Impl& self) {
                                for (size_t i = 0; i < self.grad.size(); ++i) {
                                  pa->grad[i] += self.grad[i];
                                  pb->grad[i] += self.grad[i];
                                }
                              });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Sub");
  const auto& xa = a.data();
  const auto& xb = b.data();
  std::vector<double> out(xa.size());
  for (size_t i = 0; i < xa.size(); ++i) out[i] = xa[i] - xb[i];
  auto pa = a.impl(), pb = b.impl();
  return Tensor::MakeOpResult(a.shape(), std::move(out), {pa, pb},
                              [pa, pb](Impl& self) {
                                for (size_t i = 0; i < self.grad.size(); ++i) {
                                  pa->grad[i] += self.grad[i];
                                  pb->grad[i] -= self.grad[i];
                                }
                              });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Mul");
  const auto& xa = a.data();
  const auto& xb = b.data();
  std::vector<double> out(xa.size());
  for (size_t i = 0; i < xa.size(); ++i) out[i] = xa[i] * xb[i];
  auto pa = a.impl(), pb = b.impl();
  return Tensor::MakeOpResult(a.shape(), std::move(out), {pa, pb},
                              [pa, pb](Impl& self) {
                                for (size_t i = 0; i < self.grad.size(); ++i) {
                                  pa->grad[i] += self.grad[i] * pb->data[i];
                                  pb->grad[i] += self.grad[i] * pa->data[i];
                                }
                              });
}

Tensor Scale(const Tensor& a, double c) {
  return UnaryOp(
      a, [c](double x) { return c * x; },
      [c](double, double) { return c; });
}

Tensor AddScalar(const Tensor& a, double c) {
  return UnaryOp(
      a, [c](double x) { return x + c; }, [](double, double) { return 1.0; });
}

Tensor Relu(const Tensor& a) {
  return UnaryOp(
      a, [](double x) { return x > 0.0 ? x : 0.0; },
      [](double x, double) { return x > 0.0 ? 1.0 : 0.0; });
}

Tensor Sigmoid(const Tensor& a) {
  return UnaryOp(
      a, [](double x) { return 1.0 / (1.0 + std::exp(-x)); },
      [](double, double y) { return y * (1.0 - y); });
}

Tensor Tanh(const Tensor& a) {
  return UnaryOp(
      a, [](double x) { return std::tanh(x); },
      [](double, double y) { return 1.0 - y * y; });
}

Tensor Abs(const Tensor& a) {
  return UnaryOp(
      a, [](double x) { return std::fabs(x); },
      [](double x, double) { return x > 0.0 ? 1.0 : (x < 0.0 ? -1.0 : 0.0); });
}

Tensor Square(const Tensor& a) {
  return UnaryOp(
      a, [](double x) { return x * x; },
      [](double x, double) { return 2.0 * x; });
}

Tensor Sqrt(const Tensor& a, double eps) {
  return UnaryOp(
      a, [eps](double x) { return std::sqrt(x + eps); },
      [](double, double y) { return 0.5 / y; });
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  if (a.ndim() != 2 || b.ndim() != 2 || a.dim(1) != b.dim(0)) {
    throw std::invalid_argument("MatMul: incompatible shapes " +
                                a.ShapeString() + " x " + b.ShapeString());
  }
  const size_t n = a.dim(0), k = a.dim(1), m = b.dim(1);
  const auto& xa = a.data();
  const auto& xb = b.data();
  std::vector<double> out(n * m, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t p = 0; p < k; ++p) {
      const double av = xa[i * k + p];
      if (av == 0.0) continue;
      const double* brow = &xb[p * m];
      double* orow = &out[i * m];
      for (size_t j = 0; j < m; ++j) orow[j] += av * brow[j];
    }
  }
  auto pa = a.impl(), pb = b.impl();
  return Tensor::MakeOpResult(
      {n, m}, std::move(out), {pa, pb}, [pa, pb, n, k, m](Impl& self) {
        // dA = dY * B^T ; dB = A^T * dY
        for (size_t i = 0; i < n; ++i) {
          for (size_t j = 0; j < m; ++j) {
            const double g = self.grad[i * m + j];
            if (g == 0.0) continue;
            for (size_t p = 0; p < k; ++p) {
              pa->grad[i * k + p] += g * pb->data[p * m + j];
              pb->grad[p * m + j] += g * pa->data[i * k + p];
            }
          }
        }
      });
}

Tensor AddRow(const Tensor& a, const Tensor& row) {
  if (a.ndim() == 1) return Add(a, row);
  if (a.ndim() != 2 || row.ndim() != 1 || a.dim(1) != row.dim(0)) {
    throw std::invalid_argument("AddRow: incompatible shapes " +
                                a.ShapeString() + " + " + row.ShapeString());
  }
  const size_t n = a.dim(0), d = a.dim(1);
  const auto& xa = a.data();
  const auto& xr = row.data();
  std::vector<double> out(n * d);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) out[i * d + j] = xa[i * d + j] + xr[j];
  }
  auto pa = a.impl(), pr = row.impl();
  return Tensor::MakeOpResult({n, d}, std::move(out), {pa, pr},
                              [pa, pr, n, d](Impl& self) {
                                for (size_t i = 0; i < n; ++i) {
                                  for (size_t j = 0; j < d; ++j) {
                                    const double g = self.grad[i * d + j];
                                    pa->grad[i * d + j] += g;
                                    pr->grad[j] += g;
                                  }
                                }
                              });
}

Tensor Affine(const Tensor& w, const Tensor& x, const Tensor& b) {
  if (w.ndim() != 2 || x.ndim() != 1 || b.ndim() != 1 || w.dim(1) != x.dim(0) ||
      w.dim(0) != b.dim(0)) {
    throw std::invalid_argument("Affine: incompatible shapes " +
                                w.ShapeString() + " * " + x.ShapeString() +
                                " + " + b.ShapeString());
  }
  const size_t o = w.dim(0), in = w.dim(1);
  const auto& xw = w.data();
  const auto& xx = x.data();
  const auto& xb = b.data();
  std::vector<double> out(o);
  for (size_t i = 0; i < o; ++i) {
    double s = xb[i];
    const double* wrow = &xw[i * in];
    for (size_t j = 0; j < in; ++j) s += wrow[j] * xx[j];
    out[i] = s;
  }
  auto pw = w.impl(), px = x.impl(), pb = b.impl();
  return Tensor::MakeOpResult(
      {o}, std::move(out), {pw, px, pb}, [pw, px, pb, o, in](Impl& self) {
        for (size_t i = 0; i < o; ++i) {
          const double g = self.grad[i];
          if (g == 0.0) continue;
          pb->grad[i] += g;
          for (size_t j = 0; j < in; ++j) {
            pw->grad[i * in + j] += g * px->data[j];
            px->grad[j] += g * pw->data[i * in + j];
          }
        }
      });
}

Tensor ConcatVec(const std::vector<Tensor>& parts) {
  if (parts.empty()) throw std::invalid_argument("ConcatVec: no inputs");
  size_t total = 0;
  std::vector<std::shared_ptr<Impl>> parents;
  parents.reserve(parts.size());
  for (const auto& p : parts) {
    if (p.ndim() != 1) {
      throw std::invalid_argument("ConcatVec: all inputs must be 1-D, got " +
                                  p.ShapeString());
    }
    total += p.dim(0);
    parents.push_back(p.impl());
  }
  std::vector<double> out;
  out.reserve(total);
  for (const auto& p : parts) {
    const auto& d = p.data();
    out.insert(out.end(), d.begin(), d.end());
  }
  return Tensor::MakeOpResult({total}, std::move(out), parents,
                              [parents](Impl& self) {
                                size_t off = 0;
                                for (const auto& p : parents) {
                                  for (size_t i = 0; i < p->data.size(); ++i) {
                                    p->grad[i] += self.grad[off + i];
                                  }
                                  off += p->data.size();
                                }
                              });
}

Tensor StackRows(const std::vector<Tensor>& rows) {
  if (rows.empty()) throw std::invalid_argument("StackRows: no inputs");
  const size_t d = rows[0].dim(0);
  std::vector<std::shared_ptr<Impl>> parents;
  parents.reserve(rows.size());
  std::vector<double> out;
  out.reserve(rows.size() * d);
  for (const auto& r : rows) {
    if (r.ndim() != 1 || r.dim(0) != d) {
      throw std::invalid_argument("StackRows: inconsistent row shapes");
    }
    const auto& x = r.data();
    out.insert(out.end(), x.begin(), x.end());
    parents.push_back(r.impl());
  }
  const size_t n = rows.size();
  return Tensor::MakeOpResult({n, d}, std::move(out), parents,
                              [parents, d](Impl& self) {
                                for (size_t i = 0; i < parents.size(); ++i) {
                                  for (size_t j = 0; j < d; ++j) {
                                    parents[i]->grad[j] +=
                                        self.grad[i * d + j];
                                  }
                                }
                              });
}

Tensor Row(const Tensor& matrix, size_t i) {
  if (matrix.ndim() != 2) throw std::invalid_argument("Row: input not 2-D");
  const size_t n = matrix.dim(0), d = matrix.dim(1);
  if (i >= n) throw std::out_of_range("Row: index out of range");
  const auto& x = matrix.data();
  std::vector<double> out(x.begin() + i * d, x.begin() + (i + 1) * d);
  auto pm = matrix.impl();
  return Tensor::MakeOpResult({d}, std::move(out), {pm},
                              [pm, i, d](Impl& self) {
                                for (size_t j = 0; j < d; ++j) {
                                  pm->grad[i * d + j] += self.grad[j];
                                }
                              });
}

Tensor GatherRows(const Tensor& matrix, const std::vector<size_t>& indices) {
  if (matrix.ndim() != 2) throw std::invalid_argument("GatherRows: input not 2-D");
  const size_t n = matrix.dim(0), d = matrix.dim(1);
  std::vector<double> out;
  out.reserve(indices.size() * d);
  const auto& x = matrix.data();
  for (size_t idx : indices) {
    if (idx >= n) throw std::out_of_range("GatherRows: index out of range");
    out.insert(out.end(), x.begin() + idx * d, x.begin() + (idx + 1) * d);
  }
  auto pm = matrix.impl();
  auto idx_copy = indices;
  return Tensor::MakeOpResult(
      {indices.size(), d}, std::move(out), {pm},
      [pm, idx_copy, d](Impl& self) {
        for (size_t r = 0; r < idx_copy.size(); ++r) {
          for (size_t j = 0; j < d; ++j) {
            pm->grad[idx_copy[r] * d + j] += self.grad[r * d + j];
          }
        }
      });
}

Tensor Reshape(const Tensor& a, std::vector<size_t> new_shape) {
  if (NumElements(new_shape) != a.size()) {
    throw std::invalid_argument("Reshape: element count mismatch");
  }
  auto pa = a.impl();
  return Tensor::MakeOpResult(std::move(new_shape), a.data(), {pa},
                              [pa](Impl& self) {
                                for (size_t i = 0; i < self.grad.size(); ++i) {
                                  pa->grad[i] += self.grad[i];
                                }
                              });
}

Tensor Sum(const Tensor& a) {
  double s = 0.0;
  for (double x : a.data()) s += x;
  auto pa = a.impl();
  return Tensor::MakeOpResult({1}, {s}, {pa}, [pa](Impl& self) {
    const double g = self.grad[0];
    for (double& gi : pa->grad) gi += g;
  });
}

Tensor Mean(const Tensor& a) {
  if (a.size() == 0) throw std::invalid_argument("Mean: empty tensor");
  return Scale(Sum(a), 1.0 / static_cast<double>(a.size()));
}

Tensor MeanRows(const Tensor& a) {
  if (a.ndim() != 2) throw std::invalid_argument("MeanRows: input not 2-D");
  const size_t n = a.dim(0), d = a.dim(1);
  const auto& x = a.data();
  std::vector<double> out(d, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) out[j] += x[i * d + j];
  }
  const double inv = 1.0 / static_cast<double>(n);
  for (double& v : out) v *= inv;
  auto pa = a.impl();
  return Tensor::MakeOpResult({d}, std::move(out), {pa},
                              [pa, n, d, inv](Impl& self) {
                                for (size_t i = 0; i < n; ++i) {
                                  for (size_t j = 0; j < d; ++j) {
                                    pa->grad[i * d + j] += self.grad[j] * inv;
                                  }
                                }
                              });
}

Tensor Conv2d(const Tensor& input, const Tensor& kernel, size_t pad_h,
              size_t pad_w) {
  if (input.ndim() != 3 || kernel.ndim() != 4 || input.dim(0) != kernel.dim(1)) {
    throw std::invalid_argument("Conv2d: incompatible shapes " +
                                input.ShapeString() + " conv " +
                                kernel.ShapeString());
  }
  const size_t cin = input.dim(0), h = input.dim(1), w = input.dim(2);
  const size_t cout = kernel.dim(0), kh = kernel.dim(2), kw = kernel.dim(3);
  if (h + 2 * pad_h < kh || w + 2 * pad_w < kw) {
    throw std::invalid_argument("Conv2d: kernel larger than padded input");
  }
  const size_t oh = h + 2 * pad_h - kh + 1;
  const size_t ow = w + 2 * pad_w - kw + 1;
  const auto& xin = input.data();
  const auto& xk = kernel.data();
  std::vector<double> out(cout * oh * ow, 0.0);
  for (size_t oc = 0; oc < cout; ++oc) {
    for (size_t oy = 0; oy < oh; ++oy) {
      for (size_t ox = 0; ox < ow; ++ox) {
        double s = 0.0;
        for (size_t ic = 0; ic < cin; ++ic) {
          for (size_t ky = 0; ky < kh; ++ky) {
            const long iy = static_cast<long>(oy + ky) - static_cast<long>(pad_h);
            if (iy < 0 || iy >= static_cast<long>(h)) continue;
            for (size_t kx = 0; kx < kw; ++kx) {
              const long ix = static_cast<long>(ox + kx) - static_cast<long>(pad_w);
              if (ix < 0 || ix >= static_cast<long>(w)) continue;
              s += xin[(ic * h + iy) * w + ix] *
                   xk[((oc * cin + ic) * kh + ky) * kw + kx];
            }
          }
        }
        out[(oc * oh + oy) * ow + ox] = s;
      }
    }
  }
  auto pin = input.impl(), pk = kernel.impl();
  return Tensor::MakeOpResult(
      {cout, oh, ow}, std::move(out), {pin, pk},
      [pin, pk, cin, h, w, cout, kh, kw, oh, ow, pad_h, pad_w](Impl& self) {
        for (size_t oc = 0; oc < cout; ++oc) {
          for (size_t oy = 0; oy < oh; ++oy) {
            for (size_t ox = 0; ox < ow; ++ox) {
              const double g = self.grad[(oc * oh + oy) * ow + ox];
              if (g == 0.0) continue;
              for (size_t ic = 0; ic < cin; ++ic) {
                for (size_t ky = 0; ky < kh; ++ky) {
                  const long iy =
                      static_cast<long>(oy + ky) - static_cast<long>(pad_h);
                  if (iy < 0 || iy >= static_cast<long>(h)) continue;
                  for (size_t kx = 0; kx < kw; ++kx) {
                    const long ix =
                        static_cast<long>(ox + kx) - static_cast<long>(pad_w);
                    if (ix < 0 || ix >= static_cast<long>(w)) continue;
                    const size_t in_idx = (ic * h + iy) * w + ix;
                    const size_t k_idx = ((oc * cin + ic) * kh + ky) * kw + kx;
                    pin->grad[in_idx] += g * pk->data[k_idx];
                    pk->grad[k_idx] += g * pin->data[in_idx];
                  }
                }
              }
            }
          }
        }
      });
}

Tensor AddChannelBias(const Tensor& input, const Tensor& bias) {
  if (input.ndim() != 3 || bias.ndim() != 1 || input.dim(0) != bias.dim(0)) {
    throw std::invalid_argument("AddChannelBias: incompatible shapes");
  }
  const size_t c = input.dim(0), hw = input.dim(1) * input.dim(2);
  const auto& xin = input.data();
  const auto& xb = bias.data();
  std::vector<double> out(xin.size());
  for (size_t ch = 0; ch < c; ++ch) {
    for (size_t i = 0; i < hw; ++i) out[ch * hw + i] = xin[ch * hw + i] + xb[ch];
  }
  auto pin = input.impl(), pb = bias.impl();
  return Tensor::MakeOpResult(input.shape(), std::move(out), {pin, pb},
                              [pin, pb, c, hw](Impl& self) {
                                for (size_t ch = 0; ch < c; ++ch) {
                                  for (size_t i = 0; i < hw; ++i) {
                                    const double g = self.grad[ch * hw + i];
                                    pin->grad[ch * hw + i] += g;
                                    pb->grad[ch] += g;
                                  }
                                }
                              });
}

Tensor GlobalAvgPool(const Tensor& input) {
  if (input.ndim() != 3) throw std::invalid_argument("GlobalAvgPool: input not 3-D");
  const size_t c = input.dim(0), hw = input.dim(1) * input.dim(2);
  const auto& xin = input.data();
  std::vector<double> out(c, 0.0);
  const double inv = 1.0 / static_cast<double>(hw);
  for (size_t ch = 0; ch < c; ++ch) {
    double s = 0.0;
    for (size_t i = 0; i < hw; ++i) s += xin[ch * hw + i];
    out[ch] = s * inv;
  }
  auto pin = input.impl();
  return Tensor::MakeOpResult({c}, std::move(out), {pin},
                              [pin, c, hw, inv](Impl& self) {
                                for (size_t ch = 0; ch < c; ++ch) {
                                  const double g = self.grad[ch] * inv;
                                  for (size_t i = 0; i < hw; ++i) {
                                    pin->grad[ch * hw + i] += g;
                                  }
                                }
                              });
}

Tensor MaeLoss(const Tensor& pred, const Tensor& target) {
  CheckSameShape(pred, target, "MaeLoss");
  return Mean(Abs(Sub(pred, target)));
}

Tensor EuclideanDistance(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "EuclideanDistance");
  return Sqrt(Sum(Square(Sub(a, b))));
}

}  // namespace deepod::nn
