#ifndef DEEPOD_NN_LSTM_H_
#define DEEPOD_NN_LSTM_H_

#include <vector>

#include "nn/module.h"
#include "nn/tensor.h"
#include "util/rng.h"

namespace deepod::nn {

// Long Short-Term Memory sequence encoder exactly as written in the paper's
// Eq. 12-16: gates f/i/o and cell update computed from [x_j, h_{j-1}] with
// shared weights across steps; initial states h_0 = c_0 = 0. Forward over a
// sequence returns the final hidden state h_n.
class Lstm : public Module {
 public:
  Lstm(size_t input_dim, size_t hidden_dim, util::Rng& rng);

  // Runs the recurrence over `inputs` (each a 1-D tensor of input_dim) and
  // returns h_n [hidden_dim]. Requires a non-empty sequence.
  Tensor Forward(const std::vector<Tensor>& inputs) const;

  // Runs the recurrence and returns every hidden state h_1..h_n.
  std::vector<Tensor> ForwardAll(const std::vector<Tensor>& inputs) const;

  std::vector<Tensor> Parameters() override;
  void AppendState(const std::string& prefix, StateDict& out) override;

  size_t input_dim() const { return input_dim_; }
  size_t hidden_dim() const { return hidden_dim_; }

 private:
  size_t input_dim_, hidden_dim_;
  // Each gate has weights [hidden, input+hidden] and bias [hidden].
  Tensor wf_, wi_, wo_, wc_;
  Tensor bf_, bi_, bo_, bc_;
};

}  // namespace deepod::nn

#endif  // DEEPOD_NN_LSTM_H_
