#include "nn/optimizer.h"

#include <cmath>

namespace deepod::nn {

double Optimizer::ClipGradNorm(double max_norm) {
  double sq = 0.0;
  for (auto& p : params_) {
    for (double g : p.grad()) sq += g * g;
  }
  const double norm = std::sqrt(sq);
  if (norm > max_norm && norm > 0.0) {
    const double scale = max_norm / norm;
    for (auto& p : params_) {
      for (double& g : p.mutable_grad()) g *= scale;
    }
  }
  return norm;
}

Sgd::Sgd(std::vector<Tensor> params, double lr, double momentum)
    : Optimizer(std::move(params)), momentum_(momentum) {
  lr_ = lr;
  velocity_.reserve(params_.size());
  for (auto& p : params_) velocity_.emplace_back(p.size(), 0.0);
}

namespace {

// Zero-padded parameter index ("007") so names sort in construction order.
std::string IndexName(size_t i) {
  std::string s = std::to_string(i);
  while (s.size() < 3) s.insert(s.begin(), '0');
  return s;
}

}  // namespace

void Sgd::AppendState(const std::string& prefix, StateDict& out) {
  for (size_t i = 0; i < velocity_.size(); ++i) {
    out.AddBuffer(JoinName(prefix, "velocity." + IndexName(i)),
                  {velocity_[i].size()}, velocity_[i].data());
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& data = params_[i].data();
    const auto& grad = params_[i].grad();
    auto& vel = velocity_[i];
    for (size_t j = 0; j < data.size(); ++j) {
      vel[j] = momentum_ * vel[j] + grad[j];
      data[j] -= lr_ * vel[j];
    }
  }
  BumpParamEpoch();  // invalidates the kSimd packed-weights cache
}

Adam::Adam(std::vector<Tensor> params, double lr, double beta1, double beta2,
           double eps)
    : Optimizer(std::move(params)), beta1_(beta1), beta2_(beta2), eps_(eps) {
  lr_ = lr;
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (auto& p : params_) {
    m_.emplace_back(p.size(), 0.0);
    v_.emplace_back(p.size(), 0.0);
  }
}

void Adam::AppendState(const std::string& prefix, StateDict& out) {
  out.AddScalarBuffer(JoinName(prefix, "t"), &t_);
  for (size_t i = 0; i < m_.size(); ++i) {
    out.AddBuffer(JoinName(prefix, "m." + IndexName(i)), {m_[i].size()},
                  m_[i].data());
    out.AddBuffer(JoinName(prefix, "v." + IndexName(i)), {v_[i].size()},
                  v_[i].data());
  }
}

void Adam::Step() {
  t_ += 1.0;
  const double bc1 = 1.0 - std::pow(beta1_, t_);
  const double bc2 = 1.0 - std::pow(beta2_, t_);
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& data = params_[i].data();
    const auto& grad = params_[i].grad();
    auto& m = m_[i];
    auto& v = v_[i];
    for (size_t j = 0; j < data.size(); ++j) {
      m[j] = beta1_ * m[j] + (1.0 - beta1_) * grad[j];
      v[j] = beta2_ * v[j] + (1.0 - beta2_) * grad[j] * grad[j];
      const double mhat = m[j] / bc1;
      const double vhat = v[j] / bc2;
      data[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
  BumpParamEpoch();  // invalidates the kSimd packed-weights cache
}

double StepDecaySchedule::LearningRateForEpoch(int epoch) const {
  const int steps = epoch / decay_epochs_;
  return initial_lr_ * std::pow(factor_, static_cast<double>(steps));
}

}  // namespace deepod::nn
