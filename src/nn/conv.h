#ifndef DEEPOD_NN_CONV_H_
#define DEEPOD_NN_CONV_H_

#include <vector>

#include "nn/module.h"
#include "nn/tensor.h"
#include "util/rng.h"

namespace deepod::nn {

// 2-D convolution layer over [C_in, H, W] single-instance tensors (our
// models process variable-shaped instances one at a time, so there is no
// batch axis).
class Conv2dLayer : public Module {
 public:
  Conv2dLayer(size_t in_channels, size_t out_channels, size_t kh, size_t kw,
              size_t pad_h, size_t pad_w, util::Rng& rng);

  Tensor Forward(const Tensor& input) const;

  std::vector<Tensor> Parameters() override;
  void AppendState(const std::string& prefix, StateDict& out) override;

  size_t out_channels() const { return out_channels_; }

 private:
  size_t out_channels_;
  size_t pad_h_, pad_w_;
  Tensor kernel_;  // [C_out, C_in, KH, KW]
  Tensor bias_;    // [C_out]
};

// Per-channel normalisation with learned scale/shift and running statistics.
//
// The paper uses PyTorch BatchNorm over mini-batches; our encoders process
// one variable-length instance at a time, so statistics are computed over
// the spatial extent of the instance (instance normalisation) during
// training while exponential running statistics are kept for inference.
// This preserves BatchNorm's role in the architecture (conditioning the
// conv activations) at single-instance granularity.
class BatchNorm2d : public Module {
 public:
  explicit BatchNorm2d(size_t channels, double momentum = 0.1,
                       double eps = 1e-5);

  // input: [C, H, W].
  Tensor Forward(const Tensor& input);

  std::vector<Tensor> Parameters() override;
  // Registers gamma/beta plus the running_mean/running_var buffers — the
  // running statistics are inference state and must travel with checkpoints.
  void AppendState(const std::string& prefix, StateDict& out) override;

  const std::vector<double>& running_mean() const { return running_mean_; }
  const std::vector<double>& running_var() const { return running_var_; }

  // Applies one exponential-moving-average step to the running statistics.
  // Training forwards do this inline, except while a BnCaptureScope is
  // active on the thread — then the (layer, mu, var) triple is recorded
  // instead and the trainer replays the records later in sample order, so
  // parallel training updates the EMA in exactly the serial order.
  void ApplyMomentumUpdate(const std::vector<double>& mu,
                           const std::vector<double>& var);

 private:
  size_t channels_;
  double momentum_, eps_;
  Tensor gamma_;  // [C]
  Tensor beta_;   // [C]
  std::vector<double> running_mean_;
  std::vector<double> running_var_;
};

// One deferred running-statistics update recorded during a captured
// training forward.
struct BnStatsRecord {
  BatchNorm2d* bn;
  std::vector<double> mu;
  std::vector<double> var;
};
using BnStatsLog = std::vector<BnStatsRecord>;

// RAII: while alive on a thread, BatchNorm2d training forwards append their
// running-statistics updates to `log` instead of applying them. Not
// reentrant.
class BnCaptureScope {
 public:
  explicit BnCaptureScope(BnStatsLog* log);
  ~BnCaptureScope();
  BnCaptureScope(const BnCaptureScope&) = delete;
  BnCaptureScope& operator=(const BnCaptureScope&) = delete;
};

// The ResNet block of Fig. 6 (Eq. 5-8): three convolutions over the
// Δd x d_t time-interval matrix viewed as a 1 x Δd x d_t tensor —
//   Z1 = ReLU(BN(conv3x1, 4 channels))
//   Z2 = ReLU(BN(conv3x1, 8 channels))
//   Z3 = conv1x1 back to 1 channel
//   Z4 = input ⊕ Z3 (residual)
// Kernels span 3 neighbouring time slots and 1 embedding column; "same"
// padding keeps Δd so the residual add is well-formed.
class ResNetTimeBlock : public Module {
 public:
  explicit ResNetTimeBlock(util::Rng& rng);

  // input: [Δd, d_t] matrix D^t; output: [Δd, d_t] matrix Z4.
  Tensor Forward(const Tensor& input);

  std::vector<Tensor> Parameters() override;
  void AppendState(const std::string& prefix, StateDict& out) override;
  void SetTraining(bool training) override;

 private:
  Conv2dLayer conv1_;  // 1 -> 4, 3x1
  BatchNorm2d bn1_;
  Conv2dLayer conv2_;  // 4 -> 8, 3x1
  BatchNorm2d bn2_;
  Conv2dLayer conv3_;  // 8 -> 1, 1x1
};

// The traffic-condition CNN of §4.5: three Conv→BN→ReLU blocks over the
// speed matrix followed by global average pooling and a linear projection
// to d_traf.
class TrafficCnn : public Module {
 public:
  TrafficCnn(size_t out_dim, util::Rng& rng);

  // input: [1, H, W] speed matrix; output: [out_dim].
  Tensor Forward(const Tensor& input);

  std::vector<Tensor> Parameters() override;
  void AppendState(const std::string& prefix, StateDict& out) override;
  void SetTraining(bool training) override;

  size_t out_dim() const { return proj_.out_dim(); }

 private:
  Conv2dLayer conv1_, conv2_, conv3_;
  BatchNorm2d bn1_, bn2_, bn3_;
  Linear proj_;
};

}  // namespace deepod::nn

#endif  // DEEPOD_NN_CONV_H_
