#ifndef DEEPOD_NN_OPS_H_
#define DEEPOD_NN_OPS_H_

#include <vector>

#include "nn/tensor.h"

namespace deepod::nn {

// Differentiable operations over Tensor. Every op validates shapes, computes
// the forward value eagerly and records a backward closure; gradients are
// exact (verified by the finite-difference property tests in
// tests/nn/gradcheck_test.cc).

// --- Elementwise -----------------------------------------------------------

Tensor Add(const Tensor& a, const Tensor& b);   // same shape
Tensor Sub(const Tensor& a, const Tensor& b);   // same shape
Tensor Mul(const Tensor& a, const Tensor& b);   // same shape (Hadamard)
Tensor Scale(const Tensor& a, double c);        // c * a
Tensor AddScalar(const Tensor& a, double c);    // a + c
Tensor Relu(const Tensor& a);
Tensor Sigmoid(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Abs(const Tensor& a);
Tensor Square(const Tensor& a);
// sqrt(a + eps); eps guards the derivative at 0 (used by the Euclidean
// auxiliary loss of Algorithm 1).
Tensor Sqrt(const Tensor& a, double eps = 1e-12);

// --- Linear algebra --------------------------------------------------------

// [N,K] x [K,M] -> [N,M]
Tensor MatMul(const Tensor& a, const Tensor& b);
// Matrix [N,M] + row vector [M] broadcast over rows -> [N,M]. Also accepts
// a == [M] (vector + vector degenerates to Add).
Tensor AddRow(const Tensor& a, const Tensor& row);
// W x + b for vector x: W [O,I], x [I], b [O] -> [O]. This is the exact
// form the paper's MLP equations (Eq. 11, 17-20) are written in.
Tensor Affine(const Tensor& w, const Tensor& x, const Tensor& b);
// Batched Affine over rows: X [N,I], W [O,I], b [O] -> [N,O], row i being
// W X[i] + b. Each output row is accumulated bias-first in ascending input
// index — exactly Affine's floating-point order in every kernel tier — so
// the batched serving path (DeepOdModel::PredictBatch) is bit-identical to
// a per-query Affine loop.
Tensor AffineRows(const Tensor& x, const Tensor& w, const Tensor& b);

// --- Shape ops -------------------------------------------------------------

// Concatenation of 1-D vectors into one 1-D vector.
Tensor ConcatVec(const std::vector<Tensor>& parts);
// Stack N vectors of size D into an [N,D] matrix.
Tensor StackRows(const std::vector<Tensor>& rows);
// Row `i` of a 2-D matrix as a 1-D vector (gradient scatters into that row).
Tensor Row(const Tensor& matrix, size_t i);
// Rows `indices` of a 2-D matrix as an [N,D] matrix — the embedding lookup
// (Eq. 1: one-hot times the embedding matrix selects a row).
Tensor GatherRows(const Tensor& matrix, const std::vector<size_t>& indices);
// Reshape without moving data.
Tensor Reshape(const Tensor& a, std::vector<size_t> new_shape);

// --- Reductions ------------------------------------------------------------

Tensor Sum(const Tensor& a);               // scalar
Tensor Mean(const Tensor& a);              // scalar
// Column means of an [N,D] matrix -> [D]. This is the average pooling of
// Eq. 10 (compress Z4 of size Δd x d_t into a d_t vector).
Tensor MeanRows(const Tensor& a);

// --- Convolution (Fig. 6 / §4.5) ------------------------------------------

// 2-D convolution over a [C_in, H, W] input with kernel [C_out, C_in, KH, KW]
// and zero padding (pad_h, pad_w); stride 1. Output [C_out, H', W'].
Tensor Conv2d(const Tensor& input, const Tensor& kernel, size_t pad_h,
              size_t pad_w);
// Adds a per-channel bias [C] to a [C,H,W] tensor.
Tensor AddChannelBias(const Tensor& input, const Tensor& bias);
// Mean over the spatial dims of a [C,H,W] tensor -> [C].
Tensor GlobalAvgPool(const Tensor& input);

// --- Fused recurrent cell --------------------------------------------------

// One LSTM cell step (Eq. 12-16) as a single graph node: gates f/i/o and the
// candidate are computed from x [I] and h_prev [H] with weights [H, I+H]
// (layout [W_x | W_h], identical to the composed Affine-over-concat form) and
// biases [H]. Returns a [2H] vector holding [h_new ; c_new]; slice the halves
// apart with SliceVec. Mathematically identical to the composed-op
// formulation but with a different floating-point association, so it is only
// used on the kVector fast path (Lstm::ForwardAll).
Tensor LstmCellFused(const Tensor& x, const Tensor& h_prev,
                     const Tensor& c_prev, const Tensor& wf, const Tensor& wi,
                     const Tensor& wo, const Tensor& wc, const Tensor& bf,
                     const Tensor& bi, const Tensor& bo, const Tensor& bc);

// Contiguous sub-range [begin, end) of a 1-D vector as a 1-D vector
// (gradient scatters back into the range).
Tensor SliceVec(const Tensor& a, size_t begin, size_t end);

// --- Losses ----------------------------------------------------------------

// Mean absolute error between two same-shaped tensors -> scalar.
Tensor MaeLoss(const Tensor& pred, const Tensor& target);
// Euclidean distance ||a-b||_2 -> scalar (the paper's auxiliaryloss).
Tensor EuclideanDistance(const Tensor& a, const Tensor& b);

}  // namespace deepod::nn

#endif  // DEEPOD_NN_OPS_H_
