#ifndef DEEPOD_NN_TENSOR_H_
#define DEEPOD_NN_TENSOR_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.h"

namespace deepod::nn {

// A dense, row-major, double-precision tensor participating in a dynamic
// reverse-mode autodiff graph (the style PyTorch popularised and the paper's
// reference implementation relies on).
//
// Tensor is a cheap handle (shared_ptr to storage). Ops in ops.h build the
// graph; calling Backward() on a scalar result propagates gradients into
// every reachable tensor that has requires_grad set. Gradients accumulate
// (+=) across backward calls until ZeroGrad(), which makes mini-batch
// accumulation by repeated per-sample Backward() calls correct.
class Tensor {
 public:
  // An empty (null) tensor handle.
  Tensor() = default;

  // --- Factories -----------------------------------------------------------

  static Tensor Zeros(std::vector<size_t> shape);
  static Tensor Full(std::vector<size_t> shape, double value);
  // Takes ownership of `data`; data.size() must equal the shape's element
  // count.
  static Tensor FromData(std::vector<size_t> shape, std::vector<double> data);
  static Tensor Scalar(double value);
  // I.I.D. normal entries with the given standard deviation.
  static Tensor Randn(std::vector<size_t> shape, util::Rng& rng,
                      double stddev = 1.0);
  // Uniform entries in [lo, hi).
  static Tensor RandUniform(std::vector<size_t> shape, util::Rng& rng,
                            double lo, double hi);

  // --- Shape ---------------------------------------------------------------

  bool defined() const { return impl_ != nullptr; }
  const std::vector<size_t>& shape() const;
  size_t ndim() const { return shape().size(); }
  size_t dim(size_t axis) const;
  size_t size() const;  // total element count

  // --- Data access ---------------------------------------------------------

  std::vector<double>& data();
  const std::vector<double>& data() const;
  double item() const;  // requires size() == 1

  double at(size_t i) const;                      // 1-D
  double at(size_t i, size_t j) const;            // 2-D
  double at(size_t i, size_t j, size_t k) const;  // 3-D
  void set(size_t i, double v);
  void set(size_t i, size_t j, double v);
  void set(size_t i, size_t j, size_t k, double v);

  // --- Autograd ------------------------------------------------------------

  bool requires_grad() const;
  // Marks this tensor as a leaf parameter whose gradient should be kept.
  Tensor& set_requires_grad(bool value);

  // Gradient buffer (same shape as data). Empty until first backward.
  const std::vector<double>& grad() const;
  std::vector<double>& mutable_grad();
  void ZeroGrad();

  // Reverse-mode sweep from this tensor; requires size() == 1.
  void Backward();

  // Returns a graph-detached copy sharing no autograd history (fresh leaf
  // with copied data).
  Tensor Detach() const;

  // Stable identity for graph bookkeeping / debugging.
  const void* id() const { return impl_.get(); }

  std::string ShapeString() const;

  // --- Internal (used by ops.h) --------------------------------------------

  struct Impl {
    std::vector<size_t> shape;
    std::vector<double> data;
    std::vector<double> grad;  // lazily sized
    bool requires_grad = false;
    // Parents in the autodiff DAG plus the function that routes this
    // tensor's grad into the parents' grads.
    std::vector<std::shared_ptr<Impl>> parents;
    std::function<void(Impl&)> backward_fn;

    void EnsureGrad();
  };

  explicit Tensor(std::shared_ptr<Impl> impl) : impl_(std::move(impl)) {}
  const std::shared_ptr<Impl>& impl() const { return impl_; }

  // Creates a non-leaf tensor produced by an op. `backward_fn` receives the
  // result Impl (whose .grad is populated) and must scatter into parents.
  static Tensor MakeOpResult(std::vector<size_t> shape,
                             std::vector<double> data,
                             std::vector<std::shared_ptr<Impl>> parents,
                             std::function<void(Impl&)> backward_fn);

 private:
  std::shared_ptr<Impl> impl_;
};

// Number of elements implied by a shape (product; 1 for rank-0).
size_t NumElements(const std::vector<size_t>& shape);

}  // namespace deepod::nn

#endif  // DEEPOD_NN_TENSOR_H_
