#ifndef DEEPOD_NN_TENSOR_H_
#define DEEPOD_NN_TENSOR_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/rng.h"
#include "util/small_fn.h"

namespace deepod::nn {

class GradArena;

// A dense, row-major, double-precision tensor participating in a dynamic
// reverse-mode autodiff graph (the style PyTorch popularised and the paper's
// reference implementation relies on).
//
// Tensor is a cheap handle (shared_ptr to storage). Ops in ops.h build the
// graph; calling Backward() on a scalar result propagates gradients into
// every reachable tensor that has requires_grad set. Gradients accumulate
// (+=) across backward calls until ZeroGrad(), which makes mini-batch
// accumulation by repeated per-sample Backward() calls correct.
class Tensor {
 public:
  // An empty (null) tensor handle.
  Tensor() = default;

  // --- Factories -----------------------------------------------------------

  static Tensor Zeros(std::vector<size_t> shape);
  static Tensor Full(std::vector<size_t> shape, double value);
  // Takes ownership of `data`; data.size() must equal the shape's element
  // count.
  static Tensor FromData(std::vector<size_t> shape, std::vector<double> data);
  static Tensor Scalar(double value);
  // I.I.D. normal entries with the given standard deviation.
  static Tensor Randn(std::vector<size_t> shape, util::Rng& rng,
                      double stddev = 1.0);
  // Uniform entries in [lo, hi).
  static Tensor RandUniform(std::vector<size_t> shape, util::Rng& rng,
                            double lo, double hi);

  // --- Shape ---------------------------------------------------------------

  bool defined() const { return impl_ != nullptr; }
  const std::vector<size_t>& shape() const;
  size_t ndim() const { return shape().size(); }
  size_t dim(size_t axis) const;
  size_t size() const;  // total element count

  // --- Data access ---------------------------------------------------------

  std::vector<double>& data();
  const std::vector<double>& data() const;
  double item() const;  // requires size() == 1

  double at(size_t i) const;                      // 1-D
  double at(size_t i, size_t j) const;            // 2-D
  double at(size_t i, size_t j, size_t k) const;  // 3-D
  void set(size_t i, double v);
  void set(size_t i, size_t j, double v);
  void set(size_t i, size_t j, size_t k, double v);

  // --- Autograd ------------------------------------------------------------

  bool requires_grad() const;
  // Marks this tensor as a leaf parameter whose gradient should be kept.
  Tensor& set_requires_grad(bool value);

  // Gradient buffer (same shape as data). Empty until first backward.
  const std::vector<double>& grad() const;
  std::vector<double>& mutable_grad();
  void ZeroGrad();

  // Reverse-mode sweep from this tensor; requires size() == 1.
  void Backward();

  // Returns a graph-detached copy sharing no autograd history (fresh leaf
  // with copied data).
  Tensor Detach() const;

  // Stable identity for graph bookkeeping / debugging.
  const void* id() const { return impl_.get(); }

  std::string ShapeString() const;

  // --- Internal (used by ops.h) --------------------------------------------

  struct Impl;
  // Backward closures capture a few shared_ptrs plus loop bounds; the
  // SmallFn inline buffer keeps them off the heap (tensor graphs allocate
  // hundreds of closures per training sample).
  using BackwardFn = util::SmallFn<void(Impl&)>;

  struct Impl {
    std::vector<size_t> shape;
    std::vector<double> data;
    std::vector<double> grad;  // lazily sized
    bool requires_grad = false;
    // Backward() bookkeeping: DAG nodes are marked with the id of the
    // sweep that last visited them instead of being tracked in a hash set.
    // Only non-leaf (op-result) nodes are ever stamped, and op results are
    // private to the thread that built the graph, so this is race-free
    // even with shared leaf parameters.
    uint64_t visit_stamp = 0;
    // Parents in the autodiff DAG plus the function that routes this
    // tensor's grad into the parents' grads.
    std::vector<std::shared_ptr<Impl>> parents;
    BackwardFn backward_fn;

    ~Impl();  // recycles data/grad buffers into the thread-local pool

    void EnsureGrad();

    // Gradient write target for backward functions. Normally this is the
    // tensor's own grad buffer; when a GradArena is installed on the
    // current thread and covers this Impl (i.e. it is a shared model
    // parameter), writes are redirected into the arena's detached
    // per-worker buffer so concurrent backward passes never race on the
    // shared parameter gradients. Backward closures must route every
    // gradient write through this.
    double* grad_sink();
  };

  explicit Tensor(std::shared_ptr<Impl> impl) : impl_(std::move(impl)) {}
  const std::shared_ptr<Impl>& impl() const { return impl_; }

  // Creates a non-leaf tensor produced by an op. `backward_fn` receives the
  // result Impl (whose .grad is populated) and must scatter into parents.
  static Tensor MakeOpResult(std::vector<size_t> shape,
                             std::vector<double> data,
                             std::vector<std::shared_ptr<Impl>> parents,
                             BackwardFn backward_fn);

 private:
  std::shared_ptr<Impl> impl_;
};

// Number of elements implied by a shape (product; 1 for rank-0).
size_t NumElements(const std::vector<size_t>& shape);

// --- Data-parallel gradient arenas -----------------------------------------

// A detached set of gradient buffers for a fixed parameter list. While a
// GradArenaScope is active on a thread, every backward write that targets
// one of the covered parameters lands in the arena instead of the shared
// parameter gradient, so N workers can run forward+backward concurrently
// and the trainer merges the arenas afterwards in a fixed worker order
// (keeping results deterministic for a given worker count).
class GradArena {
 public:
  explicit GradArena(const std::vector<Tensor>& params);

  // Arena buffer for the parameter Impl, or nullptr if not covered.
  double* Find(const Tensor::Impl* impl);

  size_t num_params() const { return buffers_.size(); }
  const std::vector<double>& buffer(size_t i) const { return buffers_[i]; }

  // Adds every arena buffer into the matching parameter's grad and clears
  // the arena to zero.
  void MergeIntoParamsAndReset();

 private:
  std::vector<Tensor> params_;
  std::vector<std::vector<double>> buffers_;
  std::unordered_map<const Tensor::Impl*, size_t> index_;
};

// RAII installation of a GradArena on the current thread. Not reentrant.
class GradArenaScope {
 public:
  explicit GradArenaScope(GradArena* arena);
  ~GradArenaScope();
  GradArenaScope(const GradArenaScope&) = delete;
  GradArenaScope& operator=(const GradArenaScope&) = delete;
};

// --- Inference mode ---------------------------------------------------------

// Per-thread autograd switch. While gradients are disabled the ops in ops.h
// compute forward values exactly as usual (same kernels, same floating-point
// order, so results stay bit-identical to the training-mode forward) but
// skip every piece of graph bookkeeping: no parent lists, no backward
// closures, no requires_grad propagation. Combined with the thread-local
// buffer pool this makes a forward pass allocation-light and leaves nothing
// behind to destruct as a graph chain — the serving hot path (Algorithm 1,
// Estimation) runs on this.
bool GradEnabled();

// RAII gradient-disable for the current thread (nests safely; restores the
// previous state). The query path of DeepOdModel installs this.
class InferenceGuard {
 public:
  InferenceGuard();
  ~InferenceGuard();
  InferenceGuard(const InferenceGuard&) = delete;
  InferenceGuard& operator=(const InferenceGuard&) = delete;

 private:
  bool prev_;
};

// --- Runtime kernel/allocator mode -----------------------------------------

// Per-thread selection of the compute kernels used by the hot ops
// (MatMul / Affine / Conv2d):
//  - kLegacy:  the seed implementation's naive loops and plain allocation.
//    Kept so the perf benches can measure an honest before/after in one
//    binary and tests can pin down bit-identity with the original code.
//  - kBlocked: cache-blocked, B-transposed kernels plus the thread-local
//    buffer pool. Same floating-point summation order as kLegacy, so
//    results are bit-identical — this is the default.
//  - kVector:  reassociated (multi-accumulator / planar-axpy) kernels that
//    the compiler can vectorise. Fastest scalar tier, but the changed
//    summation order perturbs last-bit rounding, so results are
//    deterministic yet not bit-identical to kLegacy. Used by the
//    data-parallel trainer (num_threads > 1) and opt-in benches.
//  - kSimd:    explicit AVX2+FMA kernels over panel-major packed weights
//    (see nn/simd.h), dispatched at runtime: when the binary carries the
//    AVX2 translation unit, the CPU supports AVX2+FMA and DEEPOD_SIMD is
//    not "off", the GEMV-shaped ops (MatMul / Affine / AffineRows / the
//    fused LSTM cell) run 4-wide FMA kernels — deterministic, but with
//    their own reassociated+fused summation order (a tolerance-tested
//    contract, not bit-identity with kVector). Conv2d's kSimd kernel keeps
//    kVector's per-element multiply-then-add order and stays bit-identical
//    to kVector. When AVX2 is unavailable every kSimd op falls back to the
//    kVector code path exactly, so kSimd is always safe to select.
enum class KernelMode { kLegacy, kBlocked, kVector, kSimd };

void SetKernelMode(KernelMode mode);
KernelMode GetKernelMode();

// RAII kernel-mode override for the current thread.
class KernelModeScope {
 public:
  explicit KernelModeScope(KernelMode mode);
  ~KernelModeScope();
  KernelModeScope(const KernelModeScope&) = delete;
  KernelModeScope& operator=(const KernelModeScope&) = delete;

 private:
  KernelMode prev_;
};

// --- Parameter epoch --------------------------------------------------------

// Process-wide generation counter over *parameter values*. Every code path
// that mutates parameter storage in place (optimizer Step, state-dict /
// legacy deserialisation, Embedding::LoadPretrained, weight quantisation)
// bumps it; derived per-parameter caches (the packed-weights cache behind
// KernelMode::kSimd, see nn/simd.h) record the epoch they were built at and
// rebuild on mismatch. Serving never steps an optimizer, so packs amortise
// across the whole serving lifetime there, while training pays one repack
// per step only if it actually runs kSimd kernels.
uint64_t ParamEpoch();
void BumpParamEpoch();

// Acquires a buffer of `size` doubles with unspecified contents, reusing
// the calling thread's recycled tensor storage (disabled in kLegacy mode
// so the legacy baseline keeps its original allocation behaviour).
// Callers must overwrite every element (or use AcquireZeroBuffer).
std::vector<double> AcquireBuffer(size_t size);
std::vector<double> AcquireZeroBuffer(size_t size);

}  // namespace deepod::nn

#endif  // DEEPOD_NN_TENSOR_H_
