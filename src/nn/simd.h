#ifndef DEEPOD_NN_SIMD_H_
#define DEEPOD_NN_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "nn/tensor.h"

// KernelMode::kSimd backend: explicit AVX2+FMA GEMV/GEMM kernels over
// panel-major packed weights, plus the runtime dispatch that decides whether
// they may run at all.
//
// Dispatch chain (each probed once per process, then cached):
//   Avx2Compiled()  — the binary carries the AVX2 translation unit
//                     (simd_avx2.cc built with -mavx2 -mfma).
//   CpuHasAvx2Fma() — cpuid says the host supports both features.
//   DEEPOD_SIMD     — user override ("off" forces the fallback).
// Avx2Active() is the conjunction; when it is false, every kSimd op takes
// the kVector code path directly, so selecting kSimd is always safe and the
// fallback is bit-identical to kVector by construction.
//
// Floating-point contract of the active AVX2 kernels: GEMV-shaped ops
// (MatMul / Affine / AffineRows / the fused LSTM cell) accumulate 4 output
// rows at a time with fused multiply-adds over the packed layout —
// deterministic, but a different summation order than kVector's DotUnrolled,
// so they carry their own tolerance-tested contract (tests/simd_quant_test).
// The fused LSTM cell additionally computes its gate activations with the
// 4-wide exp-based SigmoidAvx2/TanhAvx2 below (a few ulp from libm, same
// tolerance contract). Conv2d's kSimd kernel vectorises kVector's planar
// axpy in the same element order but fuses each multiply-add into one FMA
// (one rounding per tap where the scalar loop has two) — same tolerance
// contract, tighter error.

namespace deepod::nn {

// True when this binary was compiled with the AVX2 kernel TU enabled.
bool Avx2Compiled();

// True when the AVX2 kernels are actually used for kSimd on this process:
// compiled in, supported by the CPU, and not disabled via DEEPOD_SIMD=off.
bool Avx2Active();

// Human-readable backend tag for logs/benches: "avx2" or "scalar".
const char* SimdBackendName();

// --- Packed GEMV weights -----------------------------------------------------

// Number of output rows interleaved per panel. One AVX2 register holds 4
// doubles, so a panel lets one broadcast of x[j] feed 4 row accumulators.
inline constexpr size_t kGemvPanel = 4;

// A [rows, cols] row-major weight matrix repacked for the AVX2 GEMV:
//  - `panels` holds full_panels panels of kGemvPanel rows each, laid out
//    column-interleaved: panels[(p*cols + j)*kGemvPanel + lane] is
//    W[p*kGemvPanel + lane][j]. Each group of 4 is one aligned-size chunk
//    the kernel loads as a __m256d.
//  - `tail` holds the remaining rows % kGemvPanel rows row-major, consumed
//    by a scalar FMA loop (same fused contract, one accumulator per row).
struct PackedGemv {
  size_t rows = 0;
  size_t cols = 0;
  size_t full_panels = 0;
  std::vector<double> panels;  // full_panels * cols * kGemvPanel
  std::vector<double> tail;    // (rows % kGemvPanel) * cols
};

// Packs `rows * cols` row-major weights (w points at W[0][0]).
PackedGemv PackGemv(const double* w, size_t rows, size_t cols);

// y[r] = bias[r] + sum_j W[r][j] * x[j] for every packed row, via broadcast
// x[j] + FMA into 4-row accumulators (tail rows scalar-FMA). `bias` may be
// nullptr (treated as zeros). Requires Avx2Active().
void GemvBiasPacked(const PackedGemv& packed, const double* x,
                    const double* bias, double* y);

// Two-source variant for the fused LSTM cell: the packed matrix has
// cols == n1 + n2 and the logical input is the concatenation [x1; x2]
// without materialising it. Requires Avx2Active().
void GemvBiasPacked2(const PackedGemv& packed, const double* x1, size_t n1,
                     const double* x2, const double* bias, double* y);

// --- Packed-weights cache ----------------------------------------------------

// Returns the packed form of a 2-D parameter tensor, building and caching it
// on first use. Entries are keyed by the tensor's Impl address and validated
// against both a weak_ptr (liveness + address-reuse guard) and the global
// ParamEpoch() (any in-place parameter mutation invalidates every pack).
// Thread-safe; lookups take a shared lock.
std::shared_ptr<const PackedGemv> PackedFor(
    const std::shared_ptr<Tensor::Impl>& impl);

// Test/bench hook: number of live entries in the pack cache.
size_t PackedCacheSize();

// --- Non-packed AVX2 helpers -------------------------------------------------

// out[M,N] = A[M,K] * B[K,N], broadcast-A form with one fused accumulator
// per output column (B's row-major rows are already contiguous in the
// vectorised dimension, so no repacking is needed). Requires Avx2Active().
void MatMulAvx2(const double* a, const double* b, double* out, size_t m,
                size_t k, size_t n);

// y[i] = fma(a, x[i], y[i]), vectorised. Same element order as the scalar
// `y[i] += a * x[i]` loop kVector's Conv2d uses, but fused (one rounding
// per element), so results differ from kVector by at most one rounding per
// accumulation — the kSimd tolerance contract. Requires Avx2Active().
void AxpyAvx2(double a, const double* x, double* y, size_t n);

// Elementwise y[i] = sigmoid(x[i]) / tanh(x[i]) over a 4-wide Cephes-style
// exp kernel (the fused LSTM cell's activation stage, where scalar libm
// transcendentals would otherwise dominate the vectorised GEMVs). Accurate
// to a few ulp but NOT bit-identical to std::exp/std::tanh — part of the
// kSimd tolerance contract, never used by other kernel tiers. Lengths not
// divisible by 4 finish with scalar libm calls. Requires Avx2Active().
void SigmoidAvx2(const double* x, double* y, size_t n);
void TanhAvx2(const double* x, double* y, size_t n);

}  // namespace deepod::nn

#endif  // DEEPOD_NN_SIMD_H_
