#ifndef DEEPOD_NN_GRADCHECK_H_
#define DEEPOD_NN_GRADCHECK_H_

#include <functional>
#include <vector>

#include "nn/tensor.h"

namespace deepod::nn {

// Finite-difference gradient verification harness used by the property
// tests: for each parameter entry, compares the autograd gradient with a
// central difference of the scalar loss function.
struct GradCheckResult {
  bool ok = true;
  double max_abs_error = 0.0;
  double max_rel_error = 0.0;
  // Location of the worst entry (parameter index, flat element index).
  size_t worst_param = 0;
  size_t worst_elem = 0;
};

// `loss_fn` must rebuild the graph from scratch on each call (it is invoked
// 2 * total-parameter-count + 1 times). `params` are the leaves to check.
GradCheckResult CheckGradients(
    const std::function<Tensor()>& loss_fn, std::vector<Tensor> params,
    double step = 1e-5, double abs_tol = 1e-6, double rel_tol = 1e-4);

}  // namespace deepod::nn

#endif  // DEEPOD_NN_GRADCHECK_H_
