#include "nn/lstm.h"

#include <cmath>
#include <stdexcept>

namespace deepod::nn {

Lstm::Lstm(size_t input_dim, size_t hidden_dim, util::Rng& rng)
    : input_dim_(input_dim), hidden_dim_(hidden_dim) {
  const size_t concat_dim = input_dim + hidden_dim;
  const double bound = 1.0 / std::sqrt(static_cast<double>(concat_dim));
  auto make_w = [&] {
    Tensor t = Tensor::RandUniform({hidden_dim, concat_dim}, rng, -bound, bound);
    t.set_requires_grad(true);
    return t;
  };
  auto make_b = [&](double init) {
    Tensor t = Tensor::Full({hidden_dim}, init);
    t.set_requires_grad(true);
    return t;
  };
  wf_ = make_w();
  wi_ = make_w();
  wo_ = make_w();
  wc_ = make_w();
  // Forget-gate bias starts at 1 (standard trick for gradient flow on long
  // sequences); the paper does not specify, this matches PyTorch folklore.
  bf_ = make_b(1.0);
  bi_ = make_b(0.0);
  bo_ = make_b(0.0);
  bc_ = make_b(0.0);
}

std::vector<Tensor> Lstm::ForwardAll(const std::vector<Tensor>& inputs) const {
  if (inputs.empty()) throw std::invalid_argument("Lstm::Forward: empty sequence");
  Tensor h = Tensor::Zeros({hidden_dim_});
  Tensor c = Tensor::Zeros({hidden_dim_});
  std::vector<Tensor> hidden_states;
  hidden_states.reserve(inputs.size());
  const KernelMode mode = GetKernelMode();
  const bool fused =
      mode == KernelMode::kVector || mode == KernelMode::kSimd;
  for (const Tensor& x : inputs) {
    if (x.ndim() != 1 || x.dim(0) != input_dim_) {
      throw std::invalid_argument("Lstm::Forward: bad input shape " +
                                  x.ShapeString());
    }
    if (fused) {
      // kVector fast path: the whole cell is one graph node (the composed
      // form below builds ~14), sliced back into h and c views.
      const Tensor hc =
          LstmCellFused(x, h, c, wf_, wi_, wo_, wc_, bf_, bi_, bo_, bc_);
      h = SliceVec(hc, 0, hidden_dim_);
      c = SliceVec(hc, hidden_dim_, 2 * hidden_dim_);
      hidden_states.push_back(h);
      continue;
    }
    const Tensor xh = ConcatVec({x, h});
    const Tensor f = Sigmoid(Affine(wf_, xh, bf_));   // Eq. 12
    const Tensor i = Sigmoid(Affine(wi_, xh, bi_));   // Eq. 13
    const Tensor o = Sigmoid(Affine(wo_, xh, bo_));   // Eq. 14
    const Tensor g = Tanh(Affine(wc_, xh, bc_));
    c = Add(Mul(f, c), Mul(i, g));                    // Eq. 15
    h = Mul(o, Tanh(c));                              // Eq. 16
    hidden_states.push_back(h);
  }
  return hidden_states;
}

Tensor Lstm::Forward(const std::vector<Tensor>& inputs) const {
  return ForwardAll(inputs).back();
}

std::vector<Tensor> Lstm::Parameters() {
  return {wf_, wi_, wo_, wc_, bf_, bi_, bo_, bc_};
}

void Lstm::AppendState(const std::string& prefix, StateDict& out) {
  out.AddParameter(JoinName(prefix, "w_forget"), wf_);
  out.AddParameter(JoinName(prefix, "w_input"), wi_);
  out.AddParameter(JoinName(prefix, "w_output"), wo_);
  out.AddParameter(JoinName(prefix, "w_cell"), wc_);
  out.AddParameter(JoinName(prefix, "b_forget"), bf_);
  out.AddParameter(JoinName(prefix, "b_input"), bi_);
  out.AddParameter(JoinName(prefix, "b_output"), bo_);
  out.AddParameter(JoinName(prefix, "b_cell"), bc_);
}

}  // namespace deepod::nn
