#ifndef DEEPOD_NN_SIMD_AVX2_H_
#define DEEPOD_NN_SIMD_AVX2_H_

#include <cstddef>

#include "nn/simd.h"

// Internal interface of the AVX2 translation unit (simd_avx2.cc, the only
// file built with -mavx2 -mfma). Nothing here is part of the public API —
// callers go through nn/simd.h, which routes to these implementations only
// when Avx2Active() is true. When the toolchain cannot build AVX2 code the
// TU still links, kAvx2Compiled is false and every function is an aborting
// stub that Avx2Active() guarantees is never reached.

namespace deepod::nn::avx2 {

// Constant-initialised flag (no AVX2 instruction executes to read it).
extern const bool kAvx2Compiled;

void GemvBiasPacked(const PackedGemv& packed, const double* x,
                    const double* bias, double* y);
void GemvBiasPacked2(const PackedGemv& packed, const double* x1, size_t n1,
                     const double* x2, const double* bias, double* y);
void MatMul(const double* a, const double* b, double* out, size_t m, size_t k,
            size_t n);
void Axpy(double a, const double* x, double* y, size_t n);
void SigmoidN(const double* x, double* y, size_t n);
void TanhN(const double* x, double* y, size_t n);

}  // namespace deepod::nn::avx2

#endif  // DEEPOD_NN_SIMD_AVX2_H_
