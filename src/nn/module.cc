#include "nn/module.h"

#include <cmath>
#include <stdexcept>

namespace deepod::nn {

void StateDict::AddParameter(const std::string& name, const Tensor& parameter) {
  Entry e;
  e.name = name;
  e.shape = parameter.shape();
  // The handle keeps the shared storage alive; the raw pointer stays valid
  // because Tensor data buffers are never reallocated after construction.
  e.keepalive = parameter;
  e.data = e.keepalive.data().data();
  e.size = parameter.size();
  e.is_buffer = false;
  entries_.push_back(std::move(e));
}

void StateDict::AddBuffer(const std::string& name, std::vector<size_t> shape,
                          double* data) {
  Entry e;
  e.name = name;
  e.size = nn::NumElements(shape);
  e.shape = std::move(shape);
  e.data = data;
  e.is_buffer = true;
  entries_.push_back(std::move(e));
}

void StateDict::AddScalarBuffer(const std::string& name, double* value) {
  AddBuffer(name, {}, value);
}

const StateDict::Entry* StateDict::Find(const std::string& name) const {
  for (const auto& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

size_t StateDict::NumElements() const {
  size_t n = 0;
  for (const auto& e : entries_) n += e.size;
  return n;
}

std::string JoinName(const std::string& prefix, const std::string& name) {
  return prefix.empty() ? name : prefix + name;
}

StateDict Module::State(const std::string& prefix) {
  StateDict dict;
  AppendState(prefix, dict);
  return dict;
}

std::vector<StateDict::Entry> Module::NamedParameters() {
  const StateDict dict = State();
  std::vector<StateDict::Entry> out;
  for (const auto& e : dict.entries()) {
    if (!e.is_buffer) out.push_back(e);
  }
  return out;
}

std::vector<StateDict::Entry> Module::NamedBuffers() {
  const StateDict dict = State();
  std::vector<StateDict::Entry> out;
  for (const auto& e : dict.entries()) {
    if (e.is_buffer) out.push_back(e);
  }
  return out;
}

size_t Module::NumParameters() {
  size_t n = 0;
  for (auto& p : Parameters()) n += p.size();
  return n;
}

void Module::SetTraining(bool training) { training_ = training; }

Linear::Linear(size_t in_dim, size_t out_dim, util::Rng& rng)
    : in_dim_(in_dim), out_dim_(out_dim) {
  // Kaiming-uniform fan-in initialisation, matching PyTorch's nn.Linear.
  const double bound = 1.0 / std::sqrt(static_cast<double>(in_dim));
  w_ = Tensor::RandUniform({out_dim, in_dim}, rng, -bound, bound);
  b_ = Tensor::RandUniform({out_dim}, rng, -bound, bound);
  w_.set_requires_grad(true);
  b_.set_requires_grad(true);
}

Tensor Linear::Forward(const Tensor& x) const {
  if (x.ndim() == 1) return Affine(w_, x, b_);
  if (x.ndim() == 2) {
    // [N, in] x [in, out] + b — batched path.
    // MatMul expects [N,in] x [in,out]; transpose via explicit op-free path:
    // we materialise W^T once per call. For our scale this is fine and keeps
    // the op set small.
    auto wt_data = AcquireBuffer(in_dim_ * out_dim_);
    const auto& wd = w_.data();
    for (size_t o = 0; o < out_dim_; ++o) {
      for (size_t i = 0; i < in_dim_; ++i) {
        wt_data[i * out_dim_ + o] = wd[o * in_dim_ + i];
      }
    }
    if (!GradEnabled()) {
      Tensor wt = Tensor::FromData({in_dim_, out_dim_}, std::move(wt_data));
      return AddRow(MatMul(x, wt), b_);
    }
    // Build a view tensor that back-propagates into w_.
    auto pw = w_.impl();
    const size_t in_dim = in_dim_, out_dim = out_dim_;
    Tensor w_transposed = Tensor::MakeOpResult(
        {in_dim_, out_dim_}, std::move(wt_data), {pw},
        [pw, in_dim, out_dim](Tensor::Impl& self) {
          double* gw = pw->grad_sink();
          for (size_t i = 0; i < in_dim; ++i) {
            for (size_t o = 0; o < out_dim; ++o) {
              gw[o * in_dim + i] += self.grad[i * out_dim + o];
            }
          }
        });
    return AddRow(MatMul(x, w_transposed), b_);
  }
  throw std::invalid_argument("Linear::Forward: input must be 1-D or 2-D");
}

Tensor Linear::ForwardBatch(const Tensor& x) const {
  return AffineRows(x, w_, b_);
}

std::vector<Tensor> Linear::Parameters() { return {w_, b_}; }

void Linear::AppendState(const std::string& prefix, StateDict& out) {
  out.AddParameter(JoinName(prefix, "weight"), w_);
  out.AddParameter(JoinName(prefix, "bias"), b_);
}

Mlp2::Mlp2(size_t in_dim, size_t hidden_dim, size_t out_dim, util::Rng& rng)
    : layer1_(in_dim, hidden_dim, rng), layer2_(hidden_dim, out_dim, rng) {}

Tensor Mlp2::Forward(const Tensor& x) const {
  return layer2_.Forward(Relu(layer1_.Forward(x)));
}

Tensor Mlp2::ForwardBatch(const Tensor& x) const {
  return layer2_.ForwardBatch(Relu(layer1_.ForwardBatch(x)));
}

std::vector<Tensor> Mlp2::Parameters() {
  auto p = layer1_.Parameters();
  auto p2 = layer2_.Parameters();
  p.insert(p.end(), p2.begin(), p2.end());
  return p;
}

void Mlp2::AppendState(const std::string& prefix, StateDict& out) {
  layer1_.AppendState(JoinName(prefix, "layer1."), out);
  layer2_.AppendState(JoinName(prefix, "layer2."), out);
}

Embedding::Embedding(size_t num_entries, size_t dim, util::Rng& rng)
    : num_entries_(num_entries), dim_(dim) {
  // Small-normal init; typically overwritten by LoadPretrained.
  table_ = Tensor::Randn({num_entries, dim}, rng, 0.1);
  table_.set_requires_grad(true);
}

Tensor Embedding::Forward(size_t id) const {
  if (id >= num_entries_) throw std::out_of_range("Embedding: id out of range");
  return Row(table_, id);
}

Tensor Embedding::Forward(const std::vector<size_t>& ids) const {
  return GatherRows(table_, ids);
}

void Embedding::LoadPretrained(const std::vector<std::vector<double>>& init) {
  if (init.size() != num_entries_) {
    throw std::invalid_argument("Embedding::LoadPretrained: row count mismatch");
  }
  auto& data = table_.data();
  for (size_t i = 0; i < num_entries_; ++i) {
    if (init[i].size() != dim_) {
      throw std::invalid_argument("Embedding::LoadPretrained: dim mismatch");
    }
    for (size_t j = 0; j < dim_; ++j) data[i * dim_ + j] = init[i][j];
  }
  BumpParamEpoch();  // invalidates the kSimd packed-weights cache
}

std::vector<Tensor> Embedding::Parameters() { return {table_}; }

void Embedding::AppendState(const std::string& prefix, StateDict& out) {
  out.AddParameter(JoinName(prefix, "table"), table_);
}

}  // namespace deepod::nn
