#ifndef DEEPOD_NN_QUANT_H_
#define DEEPOD_NN_QUANT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "nn/module.h"

// Weight quantisation for the predict-only serving path.
//
// The quantised tiers are *fake-quant*: weights are rounded to the target
// dtype's representable values and immediately dequantised back into the
// regular fp64 parameter storage. Every kernel tier (kLegacy … kSimd) then
// runs unchanged on the snapped values, so quantisation composes with any
// kernel mode and needs no int8/f16 compute kernels. The accuracy contract
// is a value tolerance against the fp64 goldens (an explicit MAE budget,
// tests/simd_quant_test.cc), never bit-identity.
//
// Eligibility: only trainable tensors with ndim >= 2 are quantised —
// embedding tables, linear / LSTM / conv weights. Biases, BatchNorm
// gamma/beta, all buffers (running stats, config scalars, the speed field)
// stay fp64; they are tiny and disproportionately accuracy-critical.
//
// Training never quantises: this runs at io::LoadModelArtifact time (or via
// SaveStateDict's quantising overload) on predict-only model instances.

namespace deepod::nn {

enum class QuantMode : uint8_t {
  kNone = 0,  // fp64 weights untouched
  kFp16 = 1,  // IEEE binary16 round-trip (round-to-nearest-even)
  kInt8 = 2,  // symmetric int8, one absmax scale per leading-dim row
};

// "none" / "fp16" / "int8".
const char* QuantModeName(QuantMode mode);

// Parses the names accepted on tool command lines ("none"/"fp64" -> kNone,
// "fp16"/"f16"/"half" -> kFp16, "int8"/"i8" -> kInt8). Returns false (and
// leaves *out untouched) for anything else.
bool ParseQuantMode(const std::string& text, QuantMode* out);

// --- IEEE binary16 codec -----------------------------------------------------

// Round-to-nearest-even conversion via float; handles denormals, overflow
// to infinity, and NaN. The round trip HalfToDouble(HalfFromDouble(x)) is
// exactly the value stored in an f16 artifact record.
uint16_t HalfFromDouble(double value);
double HalfToDouble(uint16_t half);

// --- Symmetric per-row int8 --------------------------------------------------

// Quantises a [rows, cols] row-major matrix: scale[r] = absmax(row r) / 127
// (0.0 for an all-zero row, which quantises to all zeros), q = round(x /
// scale) clamped to [-127, 127]. Dequantisation is q * scale.
void QuantizeInt8(const double* data, size_t rows, size_t cols,
                  double* scales, int8_t* q);

// In-place fake quantisation of one tensor's storage (see QuantizeInt8 /
// the f16 codec). `rows` is the leading dimension for int8 scales.
void FakeQuantizeValues(double* data, size_t rows, size_t cols,
                        QuantMode mode);

// Returns true when a state-dict entry is subject to weight quantisation
// (trainable and ndim >= 2).
bool QuantEligible(const StateDict::Entry& entry);

// Fake-quantises every eligible entry of `state` in place and bumps the
// parameter epoch (the packed-weights cache must repack snapped values).
// kNone is a no-op (no epoch bump). Returns the number of entries touched.
size_t FakeQuantizeStateDict(const StateDict& state, QuantMode mode);

}  // namespace deepod::nn

#endif  // DEEPOD_NN_QUANT_H_
