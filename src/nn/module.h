#ifndef DEEPOD_NN_MODULE_H_
#define DEEPOD_NN_MODULE_H_

#include <string>
#include <vector>

#include "nn/ops.h"
#include "nn/tensor.h"
#include "util/rng.h"

namespace deepod::nn {

// An ordered, named view of a model's state: every trainable parameter plus
// every non-trainable buffer (BatchNorm running statistics, scalar extras
// like a model's time scale). Names are hierarchical dotted paths
// ("external_encoder.cnn.bn1.running_mean") assembled by the owning module
// tree, so a saved state identifies each tensor by name instead of by
// position — the contract the tagged serialisation format (serialize.h) and
// the model-artifact layer are built on.
//
// Entries borrow their storage: the dict is a view, valid only while the
// module that produced it is alive. Parameter entries additionally keep a
// Tensor handle so the shared storage cannot be recycled under the view.
class StateDict {
 public:
  struct Entry {
    std::string name;
    std::vector<size_t> shape;  // empty = scalar
    double* data = nullptr;     // borrowed, `size` elements
    size_t size = 0;
    bool is_buffer = false;  // true for non-trainable state
    Tensor keepalive;        // defined only for parameter entries
  };

  // Registers a trainable parameter (shape/storage taken from the tensor).
  void AddParameter(const std::string& name, const Tensor& parameter);
  // Registers a non-trainable buffer over caller-owned storage; `data` must
  // hold NumElements(shape) doubles and outlive the dict.
  void AddBuffer(const std::string& name, std::vector<size_t> shape,
                 double* data);
  // Scalar buffer convenience (shape {}).
  void AddScalarBuffer(const std::string& name, double* value);

  const std::vector<Entry>& entries() const { return entries_; }
  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }

  // Entry lookup by exact name; nullptr when absent.
  const Entry* Find(const std::string& name) const;

  // Total scalar element count across all entries.
  size_t NumElements() const;

 private:
  std::vector<Entry> entries_;
};

// Joins a hierarchical state prefix with a leaf or child name ("a." + "b"
// -> "a.b"). Prefixes passed to AppendState always end in '.' or are empty.
std::string JoinName(const std::string& prefix, const std::string& name);

// Base class for parameterised layers. Parameters are Tensor handles with
// requires_grad set; an optimiser updates them in place.
class Module {
 public:
  virtual ~Module() = default;

  // All trainable parameter tensors (handles share storage with the module).
  // The order is load-bearing for the optimiser and the gradient arenas;
  // AppendState must register the same tensors (plus buffers) by name.
  virtual std::vector<Tensor> Parameters() = 0;

  // Appends this module's named parameters and buffers to `out`, each name
  // prefixed with `prefix` (either empty or ending in '.'). Submodules are
  // recursed into with an extended prefix, yielding hierarchical names like
  // "mlp1.layer1.weight". Every module must register its complete state:
  // the state dict is the single source of truth for checkpointing.
  virtual void AppendState(const std::string& prefix, StateDict& out) = 0;

  // The full named state of this module tree (parameters and buffers).
  StateDict State(const std::string& prefix = "");

  // Named trainable parameters, in Parameters() order.
  std::vector<StateDict::Entry> NamedParameters();
  // Named non-trainable buffers (BatchNorm running statistics etc.).
  std::vector<StateDict::Entry> NamedBuffers();

  // Total number of scalar parameters (model-size accounting, Table 5).
  size_t NumParameters();

  // Switches between training and inference behaviour (BatchNorm running
  // statistics). Default is training mode.
  virtual void SetTraining(bool training);

  bool training() const { return training_; }

 protected:
  bool training_ = true;
};

// Fully connected layer: y = W x + b for a vector x (the form used
// throughout the paper's equations). Weights use Kaiming-uniform init.
class Linear : public Module {
 public:
  Linear(size_t in_dim, size_t out_dim, util::Rng& rng);

  Tensor Forward(const Tensor& x) const;

  // Batched form over an [N, in] matrix -> [N, out]; row i is bit-identical
  // to Forward(x[i]) in every kernel mode (AffineRows preserves Affine's
  // per-row floating-point order, unlike the MatMul+AddRow 2-D Forward).
  Tensor ForwardBatch(const Tensor& x) const;

  std::vector<Tensor> Parameters() override;
  void AppendState(const std::string& prefix, StateDict& out) override;

  size_t in_dim() const { return in_dim_; }
  size_t out_dim() const { return out_dim_; }
  const Tensor& weight() const { return w_; }
  const Tensor& bias() const { return b_; }

 private:
  size_t in_dim_, out_dim_;
  Tensor w_;  // [out, in]
  Tensor b_;  // [out]
};

// The paper's two-layer MLP (PyTorch tutorial style, §4.3):
//   y = W2 ReLU(W1 x + b1) + b2.
class Mlp2 : public Module {
 public:
  Mlp2(size_t in_dim, size_t hidden_dim, size_t out_dim, util::Rng& rng);

  Tensor Forward(const Tensor& x) const;

  // Batched form over [N, in] rows; row i is bit-identical to Forward(x[i]).
  Tensor ForwardBatch(const Tensor& x) const;

  std::vector<Tensor> Parameters() override;
  void AppendState(const std::string& prefix, StateDict& out) override;

  size_t out_dim() const { return layer2_.out_dim(); }

 private:
  Linear layer1_;
  Linear layer2_;
};

// Embedding table (Eq. 1): a |V| x d weight matrix; looking up id i is the
// one-hot(i)^T W product, i.e. row i.
class Embedding : public Module {
 public:
  Embedding(size_t num_entries, size_t dim, util::Rng& rng);

  // Single row lookup.
  Tensor Forward(size_t id) const;
  // Batched lookup -> [N, dim].
  Tensor Forward(const std::vector<size_t>& ids) const;

  // Replaces the table contents with a pre-trained matrix (graph-embedding
  // initialisation per §4.1/§4.2). `init` must be [num_entries x dim].
  void LoadPretrained(const std::vector<std::vector<double>>& init);

  std::vector<Tensor> Parameters() override;
  void AppendState(const std::string& prefix, StateDict& out) override;

  size_t num_entries() const { return num_entries_; }
  size_t dim() const { return dim_; }
  const Tensor& table() const { return table_; }

 private:
  size_t num_entries_, dim_;
  Tensor table_;  // [num_entries, dim]
};

}  // namespace deepod::nn

#endif  // DEEPOD_NN_MODULE_H_
