#ifndef DEEPOD_NN_MODULE_H_
#define DEEPOD_NN_MODULE_H_

#include <string>
#include <vector>

#include "nn/ops.h"
#include "nn/tensor.h"
#include "util/rng.h"

namespace deepod::nn {

// Base class for parameterised layers. Parameters are Tensor handles with
// requires_grad set; an optimiser updates them in place.
class Module {
 public:
  virtual ~Module() = default;

  // All trainable parameter tensors (handles share storage with the module).
  virtual std::vector<Tensor> Parameters() = 0;

  // Total number of scalar parameters (model-size accounting, Table 5).
  size_t NumParameters();

  // Switches between training and inference behaviour (BatchNorm running
  // statistics). Default is training mode.
  virtual void SetTraining(bool training);

  bool training() const { return training_; }

 protected:
  bool training_ = true;
};

// Fully connected layer: y = W x + b for a vector x (the form used
// throughout the paper's equations). Weights use Kaiming-uniform init.
class Linear : public Module {
 public:
  Linear(size_t in_dim, size_t out_dim, util::Rng& rng);

  Tensor Forward(const Tensor& x) const;

  // Batched form over an [N, in] matrix -> [N, out]; row i is bit-identical
  // to Forward(x[i]) in every kernel mode (AffineRows preserves Affine's
  // per-row floating-point order, unlike the MatMul+AddRow 2-D Forward).
  Tensor ForwardBatch(const Tensor& x) const;

  std::vector<Tensor> Parameters() override;

  size_t in_dim() const { return in_dim_; }
  size_t out_dim() const { return out_dim_; }
  const Tensor& weight() const { return w_; }
  const Tensor& bias() const { return b_; }

 private:
  size_t in_dim_, out_dim_;
  Tensor w_;  // [out, in]
  Tensor b_;  // [out]
};

// The paper's two-layer MLP (PyTorch tutorial style, §4.3):
//   y = W2 ReLU(W1 x + b1) + b2.
class Mlp2 : public Module {
 public:
  Mlp2(size_t in_dim, size_t hidden_dim, size_t out_dim, util::Rng& rng);

  Tensor Forward(const Tensor& x) const;

  // Batched form over [N, in] rows; row i is bit-identical to Forward(x[i]).
  Tensor ForwardBatch(const Tensor& x) const;

  std::vector<Tensor> Parameters() override;

  size_t out_dim() const { return layer2_.out_dim(); }

 private:
  Linear layer1_;
  Linear layer2_;
};

// Embedding table (Eq. 1): a |V| x d weight matrix; looking up id i is the
// one-hot(i)^T W product, i.e. row i.
class Embedding : public Module {
 public:
  Embedding(size_t num_entries, size_t dim, util::Rng& rng);

  // Single row lookup.
  Tensor Forward(size_t id) const;
  // Batched lookup -> [N, dim].
  Tensor Forward(const std::vector<size_t>& ids) const;

  // Replaces the table contents with a pre-trained matrix (graph-embedding
  // initialisation per §4.1/§4.2). `init` must be [num_entries x dim].
  void LoadPretrained(const std::vector<std::vector<double>>& init);

  std::vector<Tensor> Parameters() override;

  size_t num_entries() const { return num_entries_; }
  size_t dim() const { return dim_; }
  const Tensor& table() const { return table_; }

 private:
  size_t num_entries_, dim_;
  Tensor table_;  // [num_entries, dim]
};

}  // namespace deepod::nn

#endif  // DEEPOD_NN_MODULE_H_
