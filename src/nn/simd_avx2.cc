#include "nn/simd_avx2.h"

#include <cstdlib>

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>

#include <cmath>
#endif

namespace deepod::nn::avx2 {

#if defined(__AVX2__) && defined(__FMA__)

const bool kAvx2Compiled = true;

// All loads/stores are unaligned (loadu/storeu): tensor storage comes from
// std::vector<double>, which only guarantees 16-byte alignment, and the
// packed panels inherit that. Unaligned AVX2 loads cost nothing extra on
// any CPU this targets and keep UBSan quiet.

void GemvBiasPacked(const PackedGemv& packed, const double* x,
                    const double* bias, double* y) {
  const size_t cols = packed.cols;
  const double* panel = packed.panels.data();
  for (size_t p = 0; p < packed.full_panels; ++p) {
    __m256d acc = bias != nullptr
                      ? _mm256_loadu_pd(bias + p * kGemvPanel)
                      : _mm256_setzero_pd();
    for (size_t j = 0; j < cols; ++j) {
      const __m256d w = _mm256_loadu_pd(panel + j * kGemvPanel);
      acc = _mm256_fmadd_pd(w, _mm256_set1_pd(x[j]), acc);
    }
    _mm256_storeu_pd(y + p * kGemvPanel, acc);
    panel += cols * kGemvPanel;
  }
  // Tail rows: one scalar accumulator per row, fused like the vector lanes.
  const size_t tail_rows = packed.rows - packed.full_panels * kGemvPanel;
  const double* tail = packed.tail.data();
  for (size_t t = 0; t < tail_rows; ++t) {
    const size_t r = packed.full_panels * kGemvPanel + t;
    double acc = bias != nullptr ? bias[r] : 0.0;
    const double* wr = tail + t * cols;
    for (size_t j = 0; j < cols; ++j) acc = std::fma(wr[j], x[j], acc);
    y[r] = acc;
  }
}

void GemvBiasPacked2(const PackedGemv& packed, const double* x1, size_t n1,
                     const double* x2, const double* bias, double* y) {
  const size_t cols = packed.cols;
  const size_t n2 = cols - n1;
  const double* panel = packed.panels.data();
  for (size_t p = 0; p < packed.full_panels; ++p) {
    __m256d acc = bias != nullptr
                      ? _mm256_loadu_pd(bias + p * kGemvPanel)
                      : _mm256_setzero_pd();
    for (size_t j = 0; j < n1; ++j) {
      const __m256d w = _mm256_loadu_pd(panel + j * kGemvPanel);
      acc = _mm256_fmadd_pd(w, _mm256_set1_pd(x1[j]), acc);
    }
    const double* panel2 = panel + n1 * kGemvPanel;
    for (size_t j = 0; j < n2; ++j) {
      const __m256d w = _mm256_loadu_pd(panel2 + j * kGemvPanel);
      acc = _mm256_fmadd_pd(w, _mm256_set1_pd(x2[j]), acc);
    }
    _mm256_storeu_pd(y + p * kGemvPanel, acc);
    panel += cols * kGemvPanel;
  }
  const size_t tail_rows = packed.rows - packed.full_panels * kGemvPanel;
  const double* tail = packed.tail.data();
  for (size_t t = 0; t < tail_rows; ++t) {
    const size_t r = packed.full_panels * kGemvPanel + t;
    double acc = bias != nullptr ? bias[r] : 0.0;
    const double* wr = tail + t * cols;
    for (size_t j = 0; j < n1; ++j) acc = std::fma(wr[j], x1[j], acc);
    for (size_t j = 0; j < n2; ++j) acc = std::fma(wr[n1 + j], x2[j], acc);
    y[r] = acc;
  }
}

void MatMul(const double* a, const double* b, double* out, size_t m, size_t k,
            size_t n) {
  // Broadcast-A form: out[i][j] = sum_t a[i][t] * b[t][j], accumulated in
  // ascending t with one fused accumulator per output column. B's rows are
  // contiguous in j, so no repacking is needed.
  //
  // Register blocking: 2 rows x 4 column panels = 8 independent
  // accumulator chains per t step. A single accumulator per panel is
  // latency-bound on the loop-carried FMA (one FMA per ~4 cycles); eight
  // chains keep the FMA units fed. Blocking only changes which columns are
  // in flight together — each column still accumulates its own sum in
  // ascending t — so every blocking path below produces identical bits.
  const size_t full = n / kGemvPanel * kGemvPanel;
  const size_t wide = n / (4 * kGemvPanel) * (4 * kGemvPanel);
  size_t i = 0;
  for (; i + 1 < m; i += 2) {
    const double* a0 = a + i * k;
    const double* a1 = a0 + k;
    double* o0 = out + i * n;
    double* o1 = o0 + n;
    size_t j = 0;
    for (; j < wide; j += 4 * kGemvPanel) {
      __m256d c00 = _mm256_setzero_pd(), c01 = _mm256_setzero_pd();
      __m256d c02 = _mm256_setzero_pd(), c03 = _mm256_setzero_pd();
      __m256d c10 = _mm256_setzero_pd(), c11 = _mm256_setzero_pd();
      __m256d c12 = _mm256_setzero_pd(), c13 = _mm256_setzero_pd();
      for (size_t t = 0; t < k; ++t) {
        const double* bt = b + t * n + j;
        const __m256d b0 = _mm256_loadu_pd(bt);
        const __m256d b1 = _mm256_loadu_pd(bt + 4);
        const __m256d b2 = _mm256_loadu_pd(bt + 8);
        const __m256d b3 = _mm256_loadu_pd(bt + 12);
        const __m256d av0 = _mm256_set1_pd(a0[t]);
        const __m256d av1 = _mm256_set1_pd(a1[t]);
        c00 = _mm256_fmadd_pd(av0, b0, c00);
        c01 = _mm256_fmadd_pd(av0, b1, c01);
        c02 = _mm256_fmadd_pd(av0, b2, c02);
        c03 = _mm256_fmadd_pd(av0, b3, c03);
        c10 = _mm256_fmadd_pd(av1, b0, c10);
        c11 = _mm256_fmadd_pd(av1, b1, c11);
        c12 = _mm256_fmadd_pd(av1, b2, c12);
        c13 = _mm256_fmadd_pd(av1, b3, c13);
      }
      _mm256_storeu_pd(o0 + j, c00);
      _mm256_storeu_pd(o0 + j + 4, c01);
      _mm256_storeu_pd(o0 + j + 8, c02);
      _mm256_storeu_pd(o0 + j + 12, c03);
      _mm256_storeu_pd(o1 + j, c10);
      _mm256_storeu_pd(o1 + j + 4, c11);
      _mm256_storeu_pd(o1 + j + 8, c12);
      _mm256_storeu_pd(o1 + j + 12, c13);
    }
    for (; j < full; j += kGemvPanel) {
      __m256d c0 = _mm256_setzero_pd(), c1 = _mm256_setzero_pd();
      for (size_t t = 0; t < k; ++t) {
        const __m256d bv = _mm256_loadu_pd(b + t * n + j);
        c0 = _mm256_fmadd_pd(_mm256_set1_pd(a0[t]), bv, c0);
        c1 = _mm256_fmadd_pd(_mm256_set1_pd(a1[t]), bv, c1);
      }
      _mm256_storeu_pd(o0 + j, c0);
      _mm256_storeu_pd(o1 + j, c1);
    }
    for (; j < n; ++j) {
      double s0 = 0.0, s1 = 0.0;
      for (size_t t = 0; t < k; ++t) {
        const double bv = b[t * n + j];
        s0 = std::fma(a0[t], bv, s0);
        s1 = std::fma(a1[t], bv, s1);
      }
      o0[j] = s0;
      o1[j] = s1;
    }
  }
  for (; i < m; ++i) {
    const double* ai = a + i * k;
    double* oi = out + i * n;
    size_t j = 0;
    for (; j < wide; j += 4 * kGemvPanel) {
      __m256d c0 = _mm256_setzero_pd(), c1 = _mm256_setzero_pd();
      __m256d c2 = _mm256_setzero_pd(), c3 = _mm256_setzero_pd();
      for (size_t t = 0; t < k; ++t) {
        const double* bt = b + t * n + j;
        const __m256d av = _mm256_set1_pd(ai[t]);
        c0 = _mm256_fmadd_pd(av, _mm256_loadu_pd(bt), c0);
        c1 = _mm256_fmadd_pd(av, _mm256_loadu_pd(bt + 4), c1);
        c2 = _mm256_fmadd_pd(av, _mm256_loadu_pd(bt + 8), c2);
        c3 = _mm256_fmadd_pd(av, _mm256_loadu_pd(bt + 12), c3);
      }
      _mm256_storeu_pd(oi + j, c0);
      _mm256_storeu_pd(oi + j + 4, c1);
      _mm256_storeu_pd(oi + j + 8, c2);
      _mm256_storeu_pd(oi + j + 12, c3);
    }
    for (; j < full; j += kGemvPanel) {
      __m256d acc = _mm256_setzero_pd();
      for (size_t t = 0; t < k; ++t) {
        acc = _mm256_fmadd_pd(_mm256_set1_pd(ai[t]),
                              _mm256_loadu_pd(b + t * n + j), acc);
      }
      _mm256_storeu_pd(oi + j, acc);
    }
    for (; j < n; ++j) {
      double acc = 0.0;
      for (size_t t = 0; t < k; ++t) acc = std::fma(ai[t], b[t * n + j], acc);
      oi[j] = acc;
    }
  }
}

void Axpy(double a, const double* x, double* y, size_t n) {
  // Explicit fmadd, scalar fma tail: a single rounding per element. Writing
  // mul+add intrinsics would not buy bit-identity with kVector's scalar
  // loop anyway — this file is compiled with -mfma, and the compiler's
  // default fp-contract fuses the pattern back into fmadd — so the contract
  // is elementwise-FMA-vs-mul+add (one rounding of difference per tap),
  // under the kSimd value-tolerance contract like the GEMV kernels.
  const __m256d av = _mm256_set1_pd(a);
  const size_t full = n / kGemvPanel * kGemvPanel;
  for (size_t i = 0; i < full; i += kGemvPanel) {
    _mm256_storeu_pd(y + i, _mm256_fmadd_pd(av, _mm256_loadu_pd(x + i),
                                            _mm256_loadu_pd(y + i)));
  }
  for (size_t i = full; i < n; ++i) y[i] = std::fma(a, x[i], y[i]);
}

namespace {

// exp() for 4 doubles, Cephes-style: split x = n*ln2 + r with extended-
// precision ln2 (C1 + C2), evaluate exp(r) as the degree-(2,3) rational
// approximation in r^2 on [-ln2/2, ln2/2], then scale by 2^n through the
// exponent bits. Inputs are clamped to ±708 so n stays inside the normal
// exponent range (no denormal scaling to handle). Max observed error is a
// few ulp — well inside the kSimd tolerance contract; it is NOT
// bit-identical to std::exp.
__m256d Exp4(__m256d x) {
  const __m256d kMax = _mm256_set1_pd(708.0);
  const __m256d kMin = _mm256_set1_pd(-708.0);
  const __m256d kLog2e = _mm256_set1_pd(1.4426950408889634073599);
  const __m256d kC1 = _mm256_set1_pd(6.93145751953125e-1);
  const __m256d kC2 = _mm256_set1_pd(1.42860682030941723212e-6);
  x = _mm256_max_pd(_mm256_min_pd(x, kMax), kMin);
  const __m256d n = _mm256_round_pd(
      _mm256_mul_pd(x, kLog2e), _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  __m256d r = _mm256_fnmadd_pd(n, kC1, x);
  r = _mm256_fnmadd_pd(n, kC2, r);
  const __m256d r2 = _mm256_mul_pd(r, r);
  __m256d p = _mm256_set1_pd(1.26177193074810590878e-4);
  p = _mm256_fmadd_pd(p, r2, _mm256_set1_pd(3.02994407707441961300e-2));
  p = _mm256_fmadd_pd(p, r2, _mm256_set1_pd(9.99999999999999999910e-1));
  p = _mm256_mul_pd(p, r);
  __m256d q = _mm256_set1_pd(3.00198505138664455042e-6);
  q = _mm256_fmadd_pd(q, r2, _mm256_set1_pd(2.52448340349684104192e-3));
  q = _mm256_fmadd_pd(q, r2, _mm256_set1_pd(2.27265548208155028766e-1));
  q = _mm256_fmadd_pd(q, r2, _mm256_set1_pd(2.00000000000000000005e0));
  const __m256d e = _mm256_div_pd(p, _mm256_sub_pd(q, p));
  const __m256d er =
      _mm256_fmadd_pd(_mm256_set1_pd(2.0), e, _mm256_set1_pd(1.0));
  // 2^n: n is integral and within [-1022, 1022] after the clamp, so the
  // biased exponent (n + 1023) << 52 is always a valid normal double.
  const __m128i n32 = _mm256_cvtpd_epi32(n);
  const __m256i n64 = _mm256_cvtepi32_epi64(n32);
  const __m256i pow2 =
      _mm256_slli_epi64(_mm256_add_epi64(n64, _mm256_set1_epi64x(1023)), 52);
  return _mm256_mul_pd(er, _mm256_castsi256_pd(pow2));
}

}  // namespace

void SigmoidN(const double* x, double* y, size_t n) {
  const __m256d one = _mm256_set1_pd(1.0);
  const size_t full = n / kGemvPanel * kGemvPanel;
  for (size_t i = 0; i < full; i += kGemvPanel) {
    const __m256d v = _mm256_loadu_pd(x + i);
    const __m256d e = Exp4(_mm256_sub_pd(_mm256_setzero_pd(), v));
    _mm256_storeu_pd(y + i, _mm256_div_pd(one, _mm256_add_pd(one, e)));
  }
  for (size_t i = full; i < n; ++i) y[i] = 1.0 / (1.0 + std::exp(-x[i]));
}

void TanhN(const double* x, double* y, size_t n) {
  // tanh(x) = sign(x) * (1 - 2 / (exp(2|x|) + 1)). Using |x| keeps the
  // exponential >= 1 (no cancellation in the denominator); the subtraction
  // from 1 loses relative precision near 0 but stays within ~1 ulp of 1e-16
  // absolute, inside the kSimd tolerance contract.
  const __m256d sign_bit = _mm256_set1_pd(-0.0);
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d two = _mm256_set1_pd(2.0);
  const size_t full = n / kGemvPanel * kGemvPanel;
  for (size_t i = 0; i < full; i += kGemvPanel) {
    const __m256d v = _mm256_loadu_pd(x + i);
    const __m256d sign = _mm256_and_pd(v, sign_bit);
    const __m256d mag = _mm256_andnot_pd(sign_bit, v);
    const __m256d e = Exp4(_mm256_add_pd(mag, mag));
    const __m256d t =
        _mm256_sub_pd(one, _mm256_div_pd(two, _mm256_add_pd(e, one)));
    _mm256_storeu_pd(y + i, _mm256_or_pd(t, sign));
  }
  for (size_t i = full; i < n; ++i) y[i] = std::tanh(x[i]);
}

#else  // !(__AVX2__ && __FMA__)

const bool kAvx2Compiled = false;

namespace {
[[noreturn]] void Unreachable() {
  // Avx2Active() is false whenever kAvx2Compiled is false, so the dispatch
  // in simd.cc can never route here.
  std::abort();
}
}  // namespace

void GemvBiasPacked(const PackedGemv&, const double*, const double*, double*) {
  Unreachable();
}
void GemvBiasPacked2(const PackedGemv&, const double*, size_t, const double*,
                     const double*, double*) {
  Unreachable();
}
void MatMul(const double*, const double*, double*, size_t, size_t, size_t) {
  Unreachable();
}
void Axpy(double, const double*, double*, size_t) { Unreachable(); }
void SigmoidN(const double*, double*, size_t) { Unreachable(); }
void TanhN(const double*, double*, size_t) { Unreachable(); }

#endif  // __AVX2__ && __FMA__

}  // namespace deepod::nn::avx2
