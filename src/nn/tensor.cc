#include "nn/tensor.h"

#include <sstream>
#include <stdexcept>
#include <unordered_set>

namespace deepod::nn {

size_t NumElements(const std::vector<size_t>& shape) {
  size_t n = 1;
  for (size_t d : shape) n *= d;
  return n;
}

void Tensor::Impl::EnsureGrad() {
  if (grad.size() != data.size()) grad.assign(data.size(), 0.0);
}

Tensor Tensor::Zeros(std::vector<size_t> shape) {
  return Full(std::move(shape), 0.0);
}

Tensor Tensor::Full(std::vector<size_t> shape, double value) {
  auto impl = std::make_shared<Impl>();
  impl->data.assign(NumElements(shape), value);
  impl->shape = std::move(shape);
  return Tensor(std::move(impl));
}

Tensor Tensor::FromData(std::vector<size_t> shape, std::vector<double> data) {
  if (NumElements(shape) != data.size()) {
    throw std::invalid_argument("Tensor::FromData: shape/data size mismatch");
  }
  auto impl = std::make_shared<Impl>();
  impl->shape = std::move(shape);
  impl->data = std::move(data);
  return Tensor(std::move(impl));
}

Tensor Tensor::Scalar(double value) { return FromData({1}, {value}); }

Tensor Tensor::Randn(std::vector<size_t> shape, util::Rng& rng, double stddev) {
  std::vector<double> data(NumElements(shape));
  for (double& x : data) x = rng.Normal(0.0, stddev);
  return FromData(std::move(shape), std::move(data));
}

Tensor Tensor::RandUniform(std::vector<size_t> shape, util::Rng& rng, double lo,
                           double hi) {
  std::vector<double> data(NumElements(shape));
  for (double& x : data) x = rng.Uniform(lo, hi);
  return FromData(std::move(shape), std::move(data));
}

const std::vector<size_t>& Tensor::shape() const {
  if (!impl_) throw std::logic_error("Tensor: null handle");
  return impl_->shape;
}

size_t Tensor::dim(size_t axis) const {
  const auto& s = shape();
  if (axis >= s.size()) throw std::out_of_range("Tensor::dim: axis out of range");
  return s[axis];
}

size_t Tensor::size() const { return impl_ ? impl_->data.size() : 0; }

std::vector<double>& Tensor::data() {
  if (!impl_) throw std::logic_error("Tensor: null handle");
  return impl_->data;
}

const std::vector<double>& Tensor::data() const {
  if (!impl_) throw std::logic_error("Tensor: null handle");
  return impl_->data;
}

double Tensor::item() const {
  if (size() != 1) throw std::logic_error("Tensor::item: size != 1");
  return impl_->data[0];
}

double Tensor::at(size_t i) const { return data().at(i); }

double Tensor::at(size_t i, size_t j) const {
  const auto& s = shape();
  if (s.size() != 2) throw std::logic_error("Tensor::at(i,j): not 2-D");
  return impl_->data[i * s[1] + j];
}

double Tensor::at(size_t i, size_t j, size_t k) const {
  const auto& s = shape();
  if (s.size() != 3) throw std::logic_error("Tensor::at(i,j,k): not 3-D");
  return impl_->data[(i * s[1] + j) * s[2] + k];
}

void Tensor::set(size_t i, double v) { data().at(i) = v; }

void Tensor::set(size_t i, size_t j, double v) {
  const auto& s = shape();
  if (s.size() != 2) throw std::logic_error("Tensor::set(i,j): not 2-D");
  impl_->data[i * s[1] + j] = v;
}

void Tensor::set(size_t i, size_t j, size_t k, double v) {
  const auto& s = shape();
  if (s.size() != 3) throw std::logic_error("Tensor::set(i,j,k): not 3-D");
  impl_->data[(i * s[1] + j) * s[2] + k] = v;
}

bool Tensor::requires_grad() const { return impl_ && impl_->requires_grad; }

Tensor& Tensor::set_requires_grad(bool value) {
  if (!impl_) throw std::logic_error("Tensor: null handle");
  impl_->requires_grad = value;
  if (value) impl_->EnsureGrad();
  return *this;
}

const std::vector<double>& Tensor::grad() const {
  if (!impl_) throw std::logic_error("Tensor: null handle");
  impl_->EnsureGrad();
  return impl_->grad;
}

std::vector<double>& Tensor::mutable_grad() {
  if (!impl_) throw std::logic_error("Tensor: null handle");
  impl_->EnsureGrad();
  return impl_->grad;
}

void Tensor::ZeroGrad() {
  if (!impl_) return;
  impl_->grad.assign(impl_->data.size(), 0.0);
}

void Tensor::Backward() {
  if (!impl_) throw std::logic_error("Tensor::Backward: null handle");
  if (size() != 1) {
    throw std::logic_error("Tensor::Backward: only scalar roots supported");
  }
  // Iterative post-order topological sort of the reachable DAG.
  std::vector<Impl*> order;
  std::unordered_set<Impl*> visited;
  struct Frame {
    Impl* node;
    size_t next_child;
  };
  std::vector<Frame> stack;
  stack.push_back({impl_.get(), 0});
  visited.insert(impl_.get());
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_child < f.node->parents.size()) {
      Impl* child = f.node->parents[f.next_child].get();
      ++f.next_child;
      if (visited.insert(child).second) stack.push_back({child, 0});
    } else {
      order.push_back(f.node);
      stack.pop_back();
    }
  }
  // Seed and propagate in reverse topological order (root last in `order`).
  impl_->EnsureGrad();
  impl_->grad[0] += 1.0;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Impl* node = *it;
    if (node->backward_fn) {
      node->EnsureGrad();
      for (auto& p : node->parents) p->EnsureGrad();
      node->backward_fn(*node);
    }
  }
}

Tensor Tensor::Detach() const {
  if (!impl_) return Tensor();
  return FromData(impl_->shape, impl_->data);
}

std::string Tensor::ShapeString() const {
  std::ostringstream out;
  out << "[";
  const auto& s = shape();
  for (size_t i = 0; i < s.size(); ++i) out << (i ? "," : "") << s[i];
  out << "]";
  return out.str();
}

Tensor Tensor::MakeOpResult(std::vector<size_t> shape, std::vector<double> data,
                            std::vector<std::shared_ptr<Impl>> parents,
                            std::function<void(Impl&)> backward_fn) {
  if (NumElements(shape) != data.size()) {
    throw std::invalid_argument("MakeOpResult: shape/data size mismatch");
  }
  auto impl = std::make_shared<Impl>();
  impl->shape = std::move(shape);
  impl->data = std::move(data);
  // The result needs grad tracking if any parent does. Ops may still attach
  // a backward_fn unconditionally; the topological sweep is harmless for
  // grad-free subgraphs but we prune for speed.
  bool any_grad = false;
  for (const auto& p : parents) {
    if (p->requires_grad || p->backward_fn) {
      any_grad = true;
      break;
    }
  }
  if (any_grad) {
    impl->parents = std::move(parents);
    impl->backward_fn = std::move(backward_fn);
  }
  return Tensor(std::move(impl));
}

}  // namespace deepod::nn
