#include "nn/tensor.h"

#include <algorithm>
#include <atomic>
#include <sstream>
#include <stdexcept>

namespace deepod::nn {
namespace {

// --- Thread-local buffer pool ----------------------------------------------
//
// Training builds and destroys a few hundred small tensors per sample; the
// data/grad vectors are recycled here instead of round-tripping through the
// allocator. The pool is a plain thread_local pointer (trivially
// destructible) so recycling stays safe even during thread shutdown, when
// the owning object may already be gone.
struct BufferPool {
  std::vector<std::vector<double>> buffers;
};

thread_local BufferPool* tls_pool = nullptr;
thread_local bool tls_pool_dead = false;

struct BufferPoolOwner {
  BufferPool pool;
  BufferPoolOwner() { tls_pool = &pool; }
  ~BufferPoolOwner() {
    tls_pool = nullptr;
    tls_pool_dead = true;
  }
};

BufferPool* GetPool() {
  if (tls_pool == nullptr && !tls_pool_dead) {
    static thread_local BufferPoolOwner owner;
  }
  return tls_pool;
}

constexpr size_t kMaxPooledBuffers = 4096;
constexpr size_t kMaxPooledCapacity = 1u << 22;  // 32 MiB of doubles

thread_local KernelMode tls_kernel_mode = KernelMode::kBlocked;
thread_local bool tls_grad_enabled = true;

void RecycleBuffer(std::vector<double>&& v) {
  if (tls_kernel_mode == KernelMode::kLegacy || v.capacity() == 0 ||
      v.capacity() > kMaxPooledCapacity) {
    return;
  }
  BufferPool* pool = GetPool();
  if (pool == nullptr || pool->buffers.size() >= kMaxPooledBuffers) return;
  pool->buffers.push_back(std::move(v));
}

// --- Thread-local grad arena ------------------------------------------------

thread_local GradArena* tls_arena = nullptr;

// Backward sweep id; stamped into visited op nodes (see Impl::visit_stamp).
// Process-wide atomic so sweep ids stay unique even if a graph is built on
// one thread and backwarded on another.
std::atomic<uint64_t> g_backward_epoch{0};

// Parameter-value generation (see ParamEpoch in tensor.h). Starts at 1 so
// a zero-initialised cache entry can never look current.
std::atomic<uint64_t> g_param_epoch{1};

}  // namespace

uint64_t ParamEpoch() {
  return g_param_epoch.load(std::memory_order_acquire);
}

void BumpParamEpoch() {
  g_param_epoch.fetch_add(1, std::memory_order_acq_rel);
}

bool GradEnabled() { return tls_grad_enabled; }

InferenceGuard::InferenceGuard() : prev_(tls_grad_enabled) {
  tls_grad_enabled = false;
}

InferenceGuard::~InferenceGuard() { tls_grad_enabled = prev_; }

void SetKernelMode(KernelMode mode) { tls_kernel_mode = mode; }

KernelMode GetKernelMode() { return tls_kernel_mode; }

KernelModeScope::KernelModeScope(KernelMode mode) : prev_(tls_kernel_mode) {
  tls_kernel_mode = mode;
}

KernelModeScope::~KernelModeScope() { tls_kernel_mode = prev_; }

std::vector<double> AcquireBuffer(size_t size) {
  if (tls_kernel_mode != KernelMode::kLegacy) {
    if (BufferPool* pool = GetPool(); pool && !pool->buffers.empty()) {
      std::vector<double> v = std::move(pool->buffers.back());
      pool->buffers.pop_back();
      v.resize(size);
      return v;
    }
  }
  return std::vector<double>(size);
}

std::vector<double> AcquireZeroBuffer(size_t size) {
  std::vector<double> v = AcquireBuffer(size);
  std::fill(v.begin(), v.end(), 0.0);
  return v;
}

size_t NumElements(const std::vector<size_t>& shape) {
  size_t n = 1;
  for (size_t d : shape) n *= d;
  return n;
}

Tensor::Impl::~Impl() {
  RecycleBuffer(std::move(data));
  RecycleBuffer(std::move(grad));
}

void Tensor::Impl::EnsureGrad() {
  if (grad.size() != data.size()) {
    grad = AcquireBuffer(data.size());
    std::fill(grad.begin(), grad.end(), 0.0);
  }
}

double* Tensor::Impl::grad_sink() {
  if (tls_arena != nullptr) {
    if (double* redirected = tls_arena->Find(this)) return redirected;
  }
  EnsureGrad();
  return grad.data();
}

GradArena::GradArena(const std::vector<Tensor>& params) : params_(params) {
  buffers_.reserve(params_.size());
  index_.reserve(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    buffers_.emplace_back(params_[i].size(), 0.0);
    index_.emplace(params_[i].impl().get(), i);
  }
}

double* GradArena::Find(const Tensor::Impl* impl) {
  auto it = index_.find(impl);
  return it == index_.end() ? nullptr : buffers_[it->second].data();
}

void GradArena::MergeIntoParamsAndReset() {
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& grad = params_[i].mutable_grad();
    auto& buffer = buffers_[i];
    for (size_t j = 0; j < buffer.size(); ++j) {
      grad[j] += buffer[j];
      buffer[j] = 0.0;
    }
  }
}

GradArenaScope::GradArenaScope(GradArena* arena) {
  if (tls_arena != nullptr) {
    throw std::logic_error("GradArenaScope: arena already installed");
  }
  tls_arena = arena;
}

GradArenaScope::~GradArenaScope() { tls_arena = nullptr; }

Tensor Tensor::Zeros(std::vector<size_t> shape) {
  return Full(std::move(shape), 0.0);
}

Tensor Tensor::Full(std::vector<size_t> shape, double value) {
  auto impl = std::make_shared<Impl>();
  impl->data.assign(NumElements(shape), value);
  impl->shape = std::move(shape);
  return Tensor(std::move(impl));
}

Tensor Tensor::FromData(std::vector<size_t> shape, std::vector<double> data) {
  if (NumElements(shape) != data.size()) {
    throw std::invalid_argument("Tensor::FromData: shape/data size mismatch");
  }
  auto impl = std::make_shared<Impl>();
  impl->shape = std::move(shape);
  impl->data = std::move(data);
  return Tensor(std::move(impl));
}

Tensor Tensor::Scalar(double value) { return FromData({1}, {value}); }

Tensor Tensor::Randn(std::vector<size_t> shape, util::Rng& rng, double stddev) {
  std::vector<double> data(NumElements(shape));
  for (double& x : data) x = rng.Normal(0.0, stddev);
  return FromData(std::move(shape), std::move(data));
}

Tensor Tensor::RandUniform(std::vector<size_t> shape, util::Rng& rng, double lo,
                           double hi) {
  std::vector<double> data(NumElements(shape));
  for (double& x : data) x = rng.Uniform(lo, hi);
  return FromData(std::move(shape), std::move(data));
}

const std::vector<size_t>& Tensor::shape() const {
  if (!impl_) throw std::logic_error("Tensor: null handle");
  return impl_->shape;
}

size_t Tensor::dim(size_t axis) const {
  const auto& s = shape();
  if (axis >= s.size()) throw std::out_of_range("Tensor::dim: axis out of range");
  return s[axis];
}

size_t Tensor::size() const { return impl_ ? impl_->data.size() : 0; }

std::vector<double>& Tensor::data() {
  if (!impl_) throw std::logic_error("Tensor: null handle");
  return impl_->data;
}

const std::vector<double>& Tensor::data() const {
  if (!impl_) throw std::logic_error("Tensor: null handle");
  return impl_->data;
}

double Tensor::item() const {
  if (size() != 1) throw std::logic_error("Tensor::item: size != 1");
  return impl_->data[0];
}

double Tensor::at(size_t i) const { return data().at(i); }

double Tensor::at(size_t i, size_t j) const {
  const auto& s = shape();
  if (s.size() != 2) throw std::logic_error("Tensor::at(i,j): not 2-D");
  return impl_->data[i * s[1] + j];
}

double Tensor::at(size_t i, size_t j, size_t k) const {
  const auto& s = shape();
  if (s.size() != 3) throw std::logic_error("Tensor::at(i,j,k): not 3-D");
  return impl_->data[(i * s[1] + j) * s[2] + k];
}

void Tensor::set(size_t i, double v) { data().at(i) = v; }

void Tensor::set(size_t i, size_t j, double v) {
  const auto& s = shape();
  if (s.size() != 2) throw std::logic_error("Tensor::set(i,j): not 2-D");
  impl_->data[i * s[1] + j] = v;
}

void Tensor::set(size_t i, size_t j, size_t k, double v) {
  const auto& s = shape();
  if (s.size() != 3) throw std::logic_error("Tensor::set(i,j,k): not 3-D");
  impl_->data[(i * s[1] + j) * s[2] + k] = v;
}

bool Tensor::requires_grad() const { return impl_ && impl_->requires_grad; }

Tensor& Tensor::set_requires_grad(bool value) {
  if (!impl_) throw std::logic_error("Tensor: null handle");
  impl_->requires_grad = value;
  if (value) impl_->EnsureGrad();
  return *this;
}

const std::vector<double>& Tensor::grad() const {
  if (!impl_) throw std::logic_error("Tensor: null handle");
  impl_->EnsureGrad();
  return impl_->grad;
}

std::vector<double>& Tensor::mutable_grad() {
  if (!impl_) throw std::logic_error("Tensor: null handle");
  impl_->EnsureGrad();
  return impl_->grad;
}

void Tensor::ZeroGrad() {
  if (!impl_) return;
  impl_->grad.assign(impl_->data.size(), 0.0);
}

void Tensor::Backward() {
  if (!impl_) throw std::logic_error("Tensor::Backward: null handle");
  if (size() != 1) {
    throw std::logic_error("Tensor::Backward: only scalar roots supported");
  }
  // Iterative post-order topological sort of the reachable DAG. Only op
  // nodes (backward_fn set) are traversed and stamped: leaves have no
  // parents and run no closure, and skipping the stamp on them keeps the
  // sweep free of writes to shared parameter tensors. Visited bookkeeping
  // uses a per-thread sweep id instead of a hash set.
  const uint64_t sweep =
      g_backward_epoch.fetch_add(1, std::memory_order_relaxed) + 1;
  std::vector<Impl*> order;
  struct Frame {
    Impl* node;
    size_t next_child;
  };
  std::vector<Frame> stack;
  if (impl_->backward_fn) {
    impl_->visit_stamp = sweep;
    stack.push_back({impl_.get(), 0});
  }
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_child < f.node->parents.size()) {
      Impl* child = f.node->parents[f.next_child].get();
      ++f.next_child;
      if (child->backward_fn && child->visit_stamp != sweep) {
        child->visit_stamp = sweep;
        stack.push_back({child, 0});
      }
    } else {
      order.push_back(f.node);
      stack.pop_back();
    }
  }
  // Seed and propagate in reverse topological order (root last in `order`).
  impl_->EnsureGrad();
  impl_->grad[0] += 1.0;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Impl* node = *it;
    if (node->backward_fn) {
      node->EnsureGrad();
      for (auto& p : node->parents) p->EnsureGrad();
      node->backward_fn(*node);
    }
  }
}

Tensor Tensor::Detach() const {
  if (!impl_) return Tensor();
  return FromData(impl_->shape, impl_->data);
}

std::string Tensor::ShapeString() const {
  std::ostringstream out;
  out << "[";
  const auto& s = shape();
  for (size_t i = 0; i < s.size(); ++i) out << (i ? "," : "") << s[i];
  out << "]";
  return out.str();
}

Tensor Tensor::MakeOpResult(std::vector<size_t> shape, std::vector<double> data,
                            std::vector<std::shared_ptr<Impl>> parents,
                            BackwardFn backward_fn) {
  if (NumElements(shape) != data.size()) {
    throw std::invalid_argument("MakeOpResult: shape/data size mismatch");
  }
  auto impl = std::make_shared<Impl>();
  impl->shape = std::move(shape);
  impl->data = std::move(data);
  // The result needs grad tracking if any parent does. Ops may still attach
  // a backward_fn unconditionally; the topological sweep is harmless for
  // grad-free subgraphs but we prune for speed. With gradients disabled
  // (InferenceGuard) the graph is never built at all — ops that missed
  // their own early return still produce plain leaf tensors here.
  bool any_grad = false;
  if (tls_grad_enabled) {
    for (const auto& p : parents) {
      if (p->requires_grad || p->backward_fn) {
        any_grad = true;
        break;
      }
    }
  }
  if (any_grad) {
    impl->parents = std::move(parents);
    impl->backward_fn = std::move(backward_fn);
  }
  return Tensor(std::move(impl));
}

}  // namespace deepod::nn
