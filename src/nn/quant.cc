#include "nn/quant.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

namespace deepod::nn {
namespace {

float HalfToFloat(uint16_t half) {
  const uint32_t sign = static_cast<uint32_t>(half & 0x8000u) << 16;
  const uint32_t exp = (half >> 10) & 0x1fu;
  const uint32_t mant = half & 0x3ffu;
  uint32_t bits;
  if (exp == 0x1fu) {
    bits = sign | 0x7f800000u | (mant << 13);  // Inf / NaN
  } else if (exp != 0u) {
    bits = sign | ((exp + 112u) << 23) | (mant << 13);  // normal
  } else if (mant != 0u) {
    // Denormal: value = mant * 2^-24. Exact in float.
    float f = static_cast<float>(mant) * 0x1p-24f;
    std::memcpy(&bits, &f, sizeof(bits));
    bits |= sign;
  } else {
    bits = sign;  // +-0
  }
  float out;
  std::memcpy(&out, &bits, sizeof(out));
  return out;
}

}  // namespace

const char* QuantModeName(QuantMode mode) {
  switch (mode) {
    case QuantMode::kNone:
      return "none";
    case QuantMode::kFp16:
      return "fp16";
    case QuantMode::kInt8:
      return "int8";
  }
  return "none";
}

bool ParseQuantMode(const std::string& text, QuantMode* out) {
  if (text == "none" || text == "fp64") {
    *out = QuantMode::kNone;
  } else if (text == "fp16" || text == "f16" || text == "half") {
    *out = QuantMode::kFp16;
  } else if (text == "int8" || text == "i8") {
    *out = QuantMode::kInt8;
  } else {
    return false;
  }
  return true;
}

uint16_t HalfFromDouble(double value) {
  // Rounds straight from the double representation. Going through float
  // first would double-round: a double just above a half tie point (e.g.
  // 1 + 2^-11 + 2^-30) lands exactly ON the tie after the float rounding,
  // and ties-to-even then resolves it the wrong way.
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  const uint16_t sign = static_cast<uint16_t>((bits >> 48) & 0x8000u);
  bits &= 0x7fffffffffffffffull;  // drop sign
  if (bits >= 0x7ff0000000000000ull) {
    // Inf / NaN: keep a NaN payload bit so NaN stays NaN.
    const uint16_t mantissa = bits > 0x7ff0000000000000ull ? 0x0200u : 0u;
    return static_cast<uint16_t>(sign | 0x7c00u | mantissa);
  }
  if (bits >= 0x40effe0000000000ull) {
    // |x| >= 65520 rounds to >= 2^16: overflow to half infinity.
    return static_cast<uint16_t>(sign | 0x7c00u);
  }
  if (bits < 0x3f10000000000000ull) {
    // Half-denormal range (|x| < 2^-14), including zero: the half value is
    // mantissa * 2^-24, so scale by 2^24 (exact, power of two) and round
    // to integer under the current rounding mode (RNE by default).
    double f;
    std::memcpy(&f, &bits, sizeof(f));
    const uint32_t mantissa =
        static_cast<uint32_t>(std::nearbyint(f * 0x1p+24));
    // mantissa == 0x400 means the value rounded up into the smallest
    // normal — and sign | 0x400 encodes exactly that (exponent 1, mant 0).
    return static_cast<uint16_t>(sign | mantissa);
  }
  // Normal range: round the mantissa from 52 to 10 bits with RNE.
  const uint64_t mant_odd = (bits >> 42) & 1u;
  bits += 0x1ffffffffffull + mant_odd;  // RNE bias: 2^41 - 1 (+1 when odd)
  bits -= 0x3f00000000000000ull;        // rebias exponent (1023 -> 15)
  return static_cast<uint16_t>(sign | (bits >> 42));
}

double HalfToDouble(uint16_t half) {
  return static_cast<double>(HalfToFloat(half));
}

void QuantizeInt8(const double* data, size_t rows, size_t cols,
                  double* scales, int8_t* q) {
  for (size_t r = 0; r < rows; ++r) {
    const double* row = data + r * cols;
    double absmax = 0.0;
    for (size_t j = 0; j < cols; ++j) {
      absmax = std::max(absmax, std::fabs(row[j]));
    }
    const double scale = absmax > 0.0 ? absmax / 127.0 : 0.0;
    scales[r] = scale;
    int8_t* qrow = q + r * cols;
    if (scale == 0.0) {
      std::fill(qrow, qrow + cols, static_cast<int8_t>(0));
      continue;
    }
    const double inv = 1.0 / scale;
    for (size_t j = 0; j < cols; ++j) {
      const double scaled = std::nearbyint(row[j] * inv);
      qrow[j] = static_cast<int8_t>(std::clamp(scaled, -127.0, 127.0));
    }
  }
}

void FakeQuantizeValues(double* data, size_t rows, size_t cols,
                        QuantMode mode) {
  const size_t n = rows * cols;
  switch (mode) {
    case QuantMode::kNone:
      return;
    case QuantMode::kFp16:
      for (size_t i = 0; i < n; ++i) {
        data[i] = HalfToDouble(HalfFromDouble(data[i]));
      }
      return;
    case QuantMode::kInt8: {
      std::vector<double> scales(rows);
      std::vector<int8_t> q(n);
      QuantizeInt8(data, rows, cols, scales.data(), q.data());
      for (size_t r = 0; r < rows; ++r) {
        for (size_t j = 0; j < cols; ++j) {
          data[r * cols + j] = static_cast<double>(q[r * cols + j]) * scales[r];
        }
      }
      return;
    }
  }
}

bool QuantEligible(const StateDict::Entry& entry) {
  return !entry.is_buffer && entry.shape.size() >= 2;
}

size_t FakeQuantizeStateDict(const StateDict& state, QuantMode mode) {
  if (mode == QuantMode::kNone) return 0;
  size_t touched = 0;
  for (const auto& entry : state.entries()) {
    if (!QuantEligible(entry)) continue;
    const size_t rows = entry.shape[0] == 0 ? 1 : entry.shape[0];
    FakeQuantizeValues(entry.data, rows, entry.size / rows, mode);
    ++touched;
  }
  if (touched > 0) BumpParamEpoch();
  return touched;
}

}  // namespace deepod::nn
