#include "nn/serialize.h"

#include <cstring>
#include <fstream>
#include <sstream>

namespace deepod::nn {
namespace {

constexpr uint32_t kLegacyMagic = 0xd33b0d01;  // "deepod" format v1
constexpr uint32_t kMagic = 0xd33b0d02;        // "deepod" format v2+
constexpr uint32_t kVersion = 2;       // all-f64 records
constexpr uint32_t kVersionQuant = 3;  // may carry f16/int8 records

// Dtype a quantising write stores this entry as (f64 unless the quant mode
// applies and the entry is weight-quantisation eligible).
uint8_t DtypeFor(const StateDict::Entry& e, QuantMode quant) {
  if (quant == QuantMode::kNone || !QuantEligible(e)) return kDtypeF64;
  return quant == QuantMode::kFp16 ? kDtypeF16 : kDtypeI8;
}

// Leading dimension used for int8 per-row scales.
size_t RecordRows(const std::vector<size_t>& shape) {
  return shape.empty() || shape[0] == 0 ? 1 : shape[0];
}

template <typename T>
void AppendPod(std::vector<uint8_t>& buf, const T& value) {
  const auto* bytes = reinterpret_cast<const uint8_t*>(&value);
  buf.insert(buf.end(), bytes, bytes + sizeof(T));
}

// Bounds-checked POD read; returns false instead of reading past the end.
template <typename T>
bool TryReadPod(const std::vector<uint8_t>& buf, size_t& offset, T* value) {
  if (offset + sizeof(T) > buf.size()) return false;
  std::memcpy(value, buf.data() + offset, sizeof(T));
  offset += sizeof(T);
  return true;
}

// Throwing variant for the legacy decoder.
template <typename T>
T ReadPod(const std::vector<uint8_t>& buf, size_t& offset) {
  T value;
  if (!TryReadPod(buf, offset, &value)) {
    throw SerializeError(LoadStatus::Error(
        LoadErrorKind::kTruncated, "DeserializeParameters: truncated buffer"));
  }
  return value;
}

uint64_t Fnv1a64(const uint8_t* data, size_t size) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string ShapeToString(const std::vector<size_t>& shape) {
  std::ostringstream out;
  out << '[';
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) out << ", ";
    out << shape[i];
  }
  out << ']';
  return out.str();
}

LoadStatus Truncated(const std::string& where) {
  return LoadStatus::Error(LoadErrorKind::kTruncated,
                           "state dict truncated in " + where);
}

}  // namespace

LoadStatus LoadStatus::Error(LoadErrorKind kind, std::string message,
                             std::string tensor) {
  LoadStatus status;
  status.kind = kind;
  status.message = std::move(message);
  status.tensor = std::move(tensor);
  return status;
}

const char* LoadErrorKindName(LoadErrorKind kind) {
  switch (kind) {
    case LoadErrorKind::kNone: return "ok";
    case LoadErrorKind::kIoError: return "io_error";
    case LoadErrorKind::kBadMagic: return "bad_magic";
    case LoadErrorKind::kBadVersion: return "bad_version";
    case LoadErrorKind::kTruncated: return "truncated";
    case LoadErrorKind::kBadChecksum: return "bad_checksum";
    case LoadErrorKind::kBadDtype: return "bad_dtype";
    case LoadErrorKind::kMissingTensor: return "missing_tensor";
    case LoadErrorKind::kUnexpectedTensor: return "unexpected_tensor";
    case LoadErrorKind::kShapeMismatch: return "shape_mismatch";
    case LoadErrorKind::kTrailingBytes: return "trailing_bytes";
    case LoadErrorKind::kCountMismatch: return "count_mismatch";
  }
  return "unknown";
}

SerializeError::SerializeError(LoadStatus status)
    : std::runtime_error(std::string(LoadErrorKindName(status.kind)) + ": " +
                         status.message),
      status_(std::move(status)) {}

const LoadStatus& ThrowIfError(const LoadStatus& status) {
  if (!status.ok()) throw SerializeError(status);
  return status;
}

// --- Tagged state-dict format (v2) ------------------------------------------

size_t SerializedStateSize(const StateDict& state) {
  size_t bytes = sizeof(uint32_t) * 2 + sizeof(uint64_t);  // header
  for (const auto& e : state.entries()) {
    bytes += sizeof(uint32_t) + e.name.size();               // name
    bytes += sizeof(uint8_t);                                // dtype
    bytes += sizeof(uint32_t) + sizeof(uint64_t) * e.shape.size();  // dims
    bytes += sizeof(double) * e.size;                        // payload
  }
  return bytes + sizeof(uint64_t);  // checksum
}

const char* RecordDtypeName(uint8_t dtype) {
  switch (dtype) {
    case kDtypeF64:
      return "f64";
    case kDtypeF16:
      return "f16";
    case kDtypeI8:
      return "int8";
    default:
      return "unknown";
  }
}

std::vector<uint8_t> SerializeStateDict(const StateDict& state) {
  return SerializeStateDict(state, QuantMode::kNone);
}

std::vector<uint8_t> SerializeStateDict(const StateDict& state,
                                        QuantMode quant) {
  bool any_quantised = false;
  for (const auto& e : state.entries()) {
    if (DtypeFor(e, quant) != kDtypeF64) any_quantised = true;
  }
  std::vector<uint8_t> buf;
  buf.reserve(SerializedStateSize(state));  // upper bound for any dtype mix
  AppendPod(buf, kMagic);
  // All-f64 files stay version 2 so old readers keep working; the version
  // only moves when a record an old reader would misparse is present.
  AppendPod(buf, any_quantised ? kVersionQuant : kVersion);
  AppendPod(buf, static_cast<uint64_t>(state.size()));
  for (const auto& e : state.entries()) {
    AppendPod(buf, static_cast<uint32_t>(e.name.size()));
    buf.insert(buf.end(), e.name.begin(), e.name.end());
    const uint8_t dtype = DtypeFor(e, quant);
    AppendPod(buf, dtype);
    AppendPod(buf, static_cast<uint32_t>(e.shape.size()));
    for (size_t d : e.shape) AppendPod(buf, static_cast<uint64_t>(d));
    switch (dtype) {
      case kDtypeF64: {
        const auto* payload = reinterpret_cast<const uint8_t*>(e.data);
        buf.insert(buf.end(), payload, payload + sizeof(double) * e.size);
        break;
      }
      case kDtypeF16: {
        for (size_t i = 0; i < e.size; ++i) {
          AppendPod(buf, HalfFromDouble(e.data[i]));
        }
        break;
      }
      case kDtypeI8: {
        const size_t rows = RecordRows(e.shape);
        const size_t cols = e.size / rows;
        std::vector<double> scales(rows);
        std::vector<int8_t> q(e.size);
        QuantizeInt8(e.data, rows, cols, scales.data(), q.data());
        const auto* sbytes = reinterpret_cast<const uint8_t*>(scales.data());
        buf.insert(buf.end(), sbytes, sbytes + sizeof(double) * rows);
        const auto* qbytes = reinterpret_cast<const uint8_t*>(q.data());
        buf.insert(buf.end(), qbytes, qbytes + e.size);
        break;
      }
    }
  }
  AppendPod(buf, Fnv1a64(buf.data(), buf.size()));
  return buf;
}

size_t RecordPayloadBytes(const TensorRecord& record) {
  switch (record.dtype) {
    case kDtypeF16:
      return sizeof(uint16_t) * record.num_elements;
    case kDtypeI8:
      return sizeof(double) * RecordRows(record.shape) + record.num_elements;
    default:
      return sizeof(double) * record.num_elements;
  }
}

LoadStatus IndexStateDict(const std::vector<uint8_t>& buffer,
                          std::vector<TensorRecord>* out,
                          bool verify_checksum) {
  out->clear();
  size_t offset = 0;
  uint32_t magic = 0;
  if (!TryReadPod(buffer, offset, &magic)) return Truncated("header");
  if (magic != kMagic) {
    if (magic == kLegacyMagic) {
      return LoadStatus::Error(LoadErrorKind::kBadMagic,
                               "legacy positional blob, not a state dict");
    }
    return LoadStatus::Error(LoadErrorKind::kBadMagic,
                             "not a deepod state dict");
  }
  uint32_t version = 0;
  if (!TryReadPod(buffer, offset, &version)) return Truncated("header");
  if (version != kVersion && version != kVersionQuant) {
    return LoadStatus::Error(
        LoadErrorKind::kBadVersion,
        "unsupported state-dict version " + std::to_string(version) +
            " (reader supports " + std::to_string(kVersion) + " and " +
            std::to_string(kVersionQuant) + ")");
  }
  uint64_t count = 0;
  if (!TryReadPod(buffer, offset, &count)) return Truncated("header");
  if (buffer.size() < offset + sizeof(uint64_t)) return Truncated("checksum");
  const size_t checksum_offset = buffer.size() - sizeof(uint64_t);
  for (uint64_t i = 0; i < count; ++i) {
    TensorRecord rec;
    uint32_t name_len = 0;
    if (!TryReadPod(buffer, offset, &name_len)) return Truncated("record name");
    if (offset + name_len > checksum_offset) return Truncated("record name");
    rec.name.assign(reinterpret_cast<const char*>(buffer.data() + offset),
                    name_len);
    offset += name_len;
    if (!TryReadPod(buffer, offset, &rec.dtype)) {
      return Truncated("record " + rec.name);
    }
    // Quantised dtypes are only legal past the version bump that introduced
    // them — a v2 file carrying one was written by a broken producer.
    const bool dtype_ok =
        rec.dtype == kDtypeF64 ||
        (version == kVersionQuant &&
         (rec.dtype == kDtypeF16 || rec.dtype == kDtypeI8));
    if (!dtype_ok) {
      return LoadStatus::Error(
          LoadErrorKind::kBadDtype,
          "tensor '" + rec.name + "' has unknown dtype tag " +
              std::to_string(static_cast<int>(rec.dtype)) + " for version " +
              std::to_string(version),
          rec.name);
    }
    uint32_t ndim = 0;
    if (!TryReadPod(buffer, offset, &ndim)) {
      return Truncated("record " + rec.name);
    }
    rec.num_elements = 1;
    rec.shape.reserve(ndim);
    for (uint32_t d = 0; d < ndim; ++d) {
      uint64_t dim = 0;
      if (!TryReadPod(buffer, offset, &dim)) {
        return Truncated("record " + rec.name);
      }
      rec.shape.push_back(static_cast<size_t>(dim));
      rec.num_elements *= static_cast<size_t>(dim);
    }
    rec.payload_offset = offset;
    const size_t payload_bytes = RecordPayloadBytes(rec);
    if (offset + payload_bytes > checksum_offset) {
      return Truncated("payload of " + rec.name);
    }
    offset += payload_bytes;
    out->push_back(std::move(rec));
  }
  if (offset != checksum_offset) {
    return LoadStatus::Error(LoadErrorKind::kTrailingBytes,
                             "state dict holds bytes past the last record");
  }
  if (verify_checksum) {
    uint64_t stored = 0;
    size_t co = checksum_offset;
    TryReadPod(buffer, co, &stored);
    const uint64_t computed = Fnv1a64(buffer.data(), checksum_offset);
    if (stored != computed) {
      return LoadStatus::Error(LoadErrorKind::kBadChecksum,
                               "state-dict checksum mismatch");
    }
  }
  return LoadStatus::Ok();
}

namespace {

// Decodes a record's payload into `dst` (num_elements doubles),
// dequantising f16/int8 records. Dequantisation reproduces exactly the
// fake-quant values (nn/quant.h): q * scale for int8, the half round-trip
// for f16.
void DecodeRecordInto(const std::vector<uint8_t>& buffer,
                      const TensorRecord& record, double* dst) {
  const uint8_t* payload = buffer.data() + record.payload_offset;
  switch (record.dtype) {
    case kDtypeF16: {
      for (size_t i = 0; i < record.num_elements; ++i) {
        uint16_t half;
        std::memcpy(&half, payload + sizeof(uint16_t) * i, sizeof(half));
        dst[i] = HalfToDouble(half);
      }
      return;
    }
    case kDtypeI8: {
      const size_t rows = RecordRows(record.shape);
      const size_t cols = record.num_elements / rows;
      std::vector<double> scales(rows);
      std::memcpy(scales.data(), payload, sizeof(double) * rows);
      const auto* q =
          reinterpret_cast<const int8_t*>(payload + sizeof(double) * rows);
      for (size_t r = 0; r < rows; ++r) {
        for (size_t j = 0; j < cols; ++j) {
          dst[r * cols + j] =
              static_cast<double>(q[r * cols + j]) * scales[r];
        }
      }
      return;
    }
    default:
      std::memcpy(dst, payload, sizeof(double) * record.num_elements);
      return;
  }
}

}  // namespace

std::vector<double> ReadRecordPayload(const std::vector<uint8_t>& buffer,
                                      const TensorRecord& record) {
  std::vector<double> out(record.num_elements);
  DecodeRecordInto(buffer, record, out.data());
  return out;
}

std::vector<double> ReadRecordScales(const std::vector<uint8_t>& buffer,
                                     const TensorRecord& record) {
  if (record.dtype != kDtypeI8) return {};
  const size_t rows = RecordRows(record.shape);
  std::vector<double> scales(rows);
  std::memcpy(scales.data(), buffer.data() + record.payload_offset,
              sizeof(double) * rows);
  return scales;
}

LoadStatus DeserializeStateDict(const std::vector<uint8_t>& buffer,
                                StateDict& state) {
  std::vector<TensorRecord> records;
  if (LoadStatus status = IndexStateDict(buffer, &records); !status.ok()) {
    return status;
  }
  // Validate everything before writing anything: a failed load must not
  // leave the model half-restored.
  std::vector<const TensorRecord*> sources(state.size(), nullptr);
  std::vector<bool> consumed(records.size(), false);
  const auto& entries = state.entries();
  for (size_t i = 0; i < entries.size(); ++i) {
    const auto& e = entries[i];
    const TensorRecord* found = nullptr;
    for (size_t r = 0; r < records.size(); ++r) {
      if (!consumed[r] && records[r].name == e.name) {
        found = &records[r];
        consumed[r] = true;
        break;
      }
    }
    if (found == nullptr) {
      return LoadStatus::Error(
          LoadErrorKind::kMissingTensor,
          "tensor '" + e.name + "' (expected shape " + ShapeToString(e.shape) +
              ") is not in the file — config mismatch or older format",
          e.name);
    }
    if (found->shape != e.shape) {
      return LoadStatus::Error(
          LoadErrorKind::kShapeMismatch,
          "tensor '" + e.name + "': expected shape " + ShapeToString(e.shape) +
              ", file has " + ShapeToString(found->shape),
          e.name);
    }
    sources[i] = found;
  }
  for (size_t r = 0; r < records.size(); ++r) {
    if (!consumed[r]) {
      return LoadStatus::Error(
          LoadErrorKind::kUnexpectedTensor,
          "file tensor '" + records[r].name +
              "' has no destination in the model — config mismatch",
          records[r].name);
    }
  }
  for (size_t i = 0; i < entries.size(); ++i) {
    DecodeRecordInto(buffer, *sources[i], entries[i].data);
  }
  // Parameter storage changed in place: derived caches (the kSimd packed
  // weights) must rebuild.
  BumpParamEpoch();
  return LoadStatus::Ok();
}

bool IsStateDictBuffer(const std::vector<uint8_t>& buffer) {
  uint32_t magic = 0;
  size_t offset = 0;
  return TryReadPod(buffer, offset, &magic) && magic == kMagic;
}

bool IsLegacyParameterBuffer(const std::vector<uint8_t>& buffer) {
  uint32_t magic = 0;
  size_t offset = 0;
  return TryReadPod(buffer, offset, &magic) && magic == kLegacyMagic;
}

LoadStatus ReadFileBytes(const std::string& path, std::vector<uint8_t>* out) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    return LoadStatus::Error(LoadErrorKind::kIoError, "cannot open " + path);
  }
  const auto size = static_cast<size_t>(in.tellg());
  in.seekg(0);
  out->resize(size);
  in.read(reinterpret_cast<char*>(out->data()),
          static_cast<std::streamsize>(size));
  if (!in) {
    return LoadStatus::Error(LoadErrorKind::kIoError, "cannot read " + path);
  }
  return LoadStatus::Ok();
}

LoadStatus SaveStateDict(const std::string& path, const StateDict& state) {
  return SaveStateDict(path, state, QuantMode::kNone);
}

LoadStatus SaveStateDict(const std::string& path, const StateDict& state,
                         QuantMode quant) {
  const auto buf = SerializeStateDict(state, quant);
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return LoadStatus::Error(LoadErrorKind::kIoError, "cannot open " + path);
  }
  out.write(reinterpret_cast<const char*>(buf.data()),
            static_cast<std::streamsize>(buf.size()));
  if (!out) {
    return LoadStatus::Error(LoadErrorKind::kIoError, "cannot write " + path);
  }
  return LoadStatus::Ok();
}

LoadStatus LoadStateDict(const std::string& path, StateDict& state) {
  std::vector<uint8_t> buf;
  if (LoadStatus status = ReadFileBytes(path, &buf); !status.ok()) {
    return status;
  }
  return DeserializeStateDict(buf, state);
}

// --- Legacy positional blob (v1) --------------------------------------------

std::vector<uint8_t> SerializeParameters(const std::vector<Tensor>& params) {
  std::vector<uint8_t> buf;
  buf.reserve(SerializedSize(params));
  AppendPod(buf, kLegacyMagic);
  AppendPod(buf, static_cast<uint64_t>(params.size()));
  for (const auto& p : params) {
    AppendPod(buf, static_cast<uint64_t>(p.ndim()));
    for (size_t d : p.shape()) AppendPod(buf, static_cast<uint64_t>(d));
    for (double x : p.data()) AppendPod(buf, x);
  }
  return buf;
}

void DeserializeParameters(const std::vector<uint8_t>& buffer,
                           std::vector<Tensor>& params) {
  size_t offset = 0;
  if (ReadPod<uint32_t>(buffer, offset) != kLegacyMagic) {
    throw SerializeError(LoadStatus::Error(
        LoadErrorKind::kBadMagic, "DeserializeParameters: bad magic"));
  }
  const uint64_t count = ReadPod<uint64_t>(buffer, offset);
  if (count != params.size()) {
    throw SerializeError(LoadStatus::Error(
        LoadErrorKind::kCountMismatch,
        "DeserializeParameters: file has " + std::to_string(count) +
            " parameters, model expects " + std::to_string(params.size())));
  }
  for (size_t i = 0; i < params.size(); ++i) {
    auto& p = params[i];
    const std::string pos = "parameter #" + std::to_string(i);
    const uint64_t ndim = ReadPod<uint64_t>(buffer, offset);
    if (ndim != p.ndim()) {
      throw SerializeError(LoadStatus::Error(
          LoadErrorKind::kShapeMismatch,
          "DeserializeParameters: " + pos + " rank mismatch", pos));
    }
    for (size_t d = 0; d < ndim; ++d) {
      if (ReadPod<uint64_t>(buffer, offset) != p.dim(d)) {
        throw SerializeError(LoadStatus::Error(
            LoadErrorKind::kShapeMismatch,
            "DeserializeParameters: " + pos + " shape mismatch", pos));
      }
    }
    for (double& x : p.data()) x = ReadPod<double>(buffer, offset);
  }
  if (offset != buffer.size()) {
    throw SerializeError(LoadStatus::Error(
        LoadErrorKind::kTrailingBytes,
        "DeserializeParameters: trailing bytes"));
  }
  BumpParamEpoch();
}

size_t SerializedSize(const std::vector<Tensor>& params) {
  size_t bytes = sizeof(uint32_t) + sizeof(uint64_t);
  for (const auto& p : params) {
    bytes += sizeof(uint64_t) * (1 + p.ndim());
    bytes += sizeof(double) * p.size();
  }
  return bytes;
}

void SaveParameters(const std::string& path, const std::vector<Tensor>& params) {
  const auto buf = SerializeParameters(params);
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw SerializeError(LoadStatus::Error(LoadErrorKind::kIoError,
                                           "SaveParameters: cannot open " +
                                               path));
  }
  out.write(reinterpret_cast<const char*>(buf.data()),
            static_cast<std::streamsize>(buf.size()));
}

void LoadParameters(const std::string& path, std::vector<Tensor>& params) {
  std::vector<uint8_t> buf;
  ThrowIfError(ReadFileBytes(path, &buf));
  DeserializeParameters(buf, params);
}

}  // namespace deepod::nn
