#include "nn/serialize.h"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace deepod::nn {
namespace {

constexpr uint32_t kMagic = 0xd33b0d01;  // "deepod" format v1

template <typename T>
void AppendPod(std::vector<uint8_t>& buf, const T& value) {
  const auto* bytes = reinterpret_cast<const uint8_t*>(&value);
  buf.insert(buf.end(), bytes, bytes + sizeof(T));
}

template <typename T>
T ReadPod(const std::vector<uint8_t>& buf, size_t& offset) {
  if (offset + sizeof(T) > buf.size()) {
    throw std::runtime_error("DeserializeParameters: truncated buffer");
  }
  T value;
  std::memcpy(&value, buf.data() + offset, sizeof(T));
  offset += sizeof(T);
  return value;
}

}  // namespace

std::vector<uint8_t> SerializeParameters(const std::vector<Tensor>& params) {
  std::vector<uint8_t> buf;
  buf.reserve(SerializedSize(params));
  AppendPod(buf, kMagic);
  AppendPod(buf, static_cast<uint64_t>(params.size()));
  for (const auto& p : params) {
    AppendPod(buf, static_cast<uint64_t>(p.ndim()));
    for (size_t d : p.shape()) AppendPod(buf, static_cast<uint64_t>(d));
    for (double x : p.data()) AppendPod(buf, x);
  }
  return buf;
}

void DeserializeParameters(const std::vector<uint8_t>& buffer,
                           std::vector<Tensor>& params) {
  size_t offset = 0;
  if (ReadPod<uint32_t>(buffer, offset) != kMagic) {
    throw std::runtime_error("DeserializeParameters: bad magic");
  }
  const uint64_t count = ReadPod<uint64_t>(buffer, offset);
  if (count != params.size()) {
    throw std::runtime_error("DeserializeParameters: parameter count mismatch");
  }
  for (auto& p : params) {
    const uint64_t ndim = ReadPod<uint64_t>(buffer, offset);
    if (ndim != p.ndim()) {
      throw std::runtime_error("DeserializeParameters: rank mismatch");
    }
    for (size_t d = 0; d < ndim; ++d) {
      if (ReadPod<uint64_t>(buffer, offset) != p.dim(d)) {
        throw std::runtime_error("DeserializeParameters: shape mismatch");
      }
    }
    for (double& x : p.data()) x = ReadPod<double>(buffer, offset);
  }
  if (offset != buffer.size()) {
    throw std::runtime_error("DeserializeParameters: trailing bytes");
  }
}

size_t SerializedSize(const std::vector<Tensor>& params) {
  size_t bytes = sizeof(uint32_t) + sizeof(uint64_t);
  for (const auto& p : params) {
    bytes += sizeof(uint64_t) * (1 + p.ndim());
    bytes += sizeof(double) * p.size();
  }
  return bytes;
}

void SaveParameters(const std::string& path, const std::vector<Tensor>& params) {
  const auto buf = SerializeParameters(params);
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("SaveParameters: cannot open " + path);
  out.write(reinterpret_cast<const char*>(buf.data()),
            static_cast<std::streamsize>(buf.size()));
}

void LoadParameters(const std::string& path, std::vector<Tensor>& params) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("LoadParameters: cannot open " + path);
  const auto size = static_cast<size_t>(in.tellg());
  in.seekg(0);
  std::vector<uint8_t> buf(size);
  in.read(reinterpret_cast<char*>(buf.data()), static_cast<std::streamsize>(size));
  DeserializeParameters(buf, params);
}

}  // namespace deepod::nn
