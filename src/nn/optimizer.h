#ifndef DEEPOD_NN_OPTIMIZER_H_
#define DEEPOD_NN_OPTIMIZER_H_

#include <vector>

#include "nn/module.h"
#include "nn/tensor.h"

namespace deepod::nn {

// Optimiser interface over a fixed parameter list. Gradients are read from
// each parameter's grad buffer (accumulated by Backward calls) and cleared
// by ZeroGrad().
class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  virtual void Step() = 0;

  // Registers the optimiser's own state (momentum / moment buffers, step
  // counters) in a state dict under `prefix`, so a training run can be
  // checkpointed and resumed bit-identically. Buffers are named by the
  // position of their parameter in the construction list ("m.12"), which is
  // stable because Parameters() order is part of the module contract.
  virtual void AppendState(const std::string& prefix, StateDict& out) = 0;

  void ZeroGrad() {
    for (auto& p : params_) p.ZeroGrad();
  }

  void set_learning_rate(double lr) { lr_ = lr; }
  double learning_rate() const { return lr_; }

  // Clips the global gradient norm to `max_norm` (returns the pre-clip
  // norm). Guards against the occasional exploding LSTM gradient.
  double ClipGradNorm(double max_norm);

 protected:
  std::vector<Tensor> params_;
  double lr_ = 0.01;
};

// Stochastic gradient descent with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> params, double lr, double momentum = 0.0);

  void Step() override;
  void AppendState(const std::string& prefix, StateDict& out) override;

 private:
  double momentum_;
  std::vector<std::vector<double>> velocity_;
};

// Adam (Kingma & Ba 2014) — the paper's optimiser (§5, Algorithm 1 line 13).
class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> params, double lr = 0.01, double beta1 = 0.9,
       double beta2 = 0.999, double eps = 1e-8);

  void Step() override;
  void AppendState(const std::string& prefix, StateDict& out) override;

 private:
  double beta1_, beta2_, eps_;
  // Step count; held as a double (exact for any realistic count) so the
  // checkpoint state dict can reference it in place.
  double t_ = 0.0;
  std::vector<std::vector<double>> m_;
  std::vector<std::vector<double>> v_;
};

// The paper's learning-rate schedule (§6.1): initial rate 0.01, multiplied
// by 1/5 every `decay_epochs` epochs.
class StepDecaySchedule {
 public:
  StepDecaySchedule(double initial_lr = 0.01, double factor = 0.2,
                    int decay_epochs = 2)
      : initial_lr_(initial_lr), factor_(factor), decay_epochs_(decay_epochs) {}

  double LearningRateForEpoch(int epoch) const;

 private:
  double initial_lr_, factor_;
  int decay_epochs_;
};

}  // namespace deepod::nn

#endif  // DEEPOD_NN_OPTIMIZER_H_
