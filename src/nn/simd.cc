#include "nn/simd.h"

#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <utility>

#include "nn/simd_avx2.h"
#include "util/cpu.h"

namespace deepod::nn {
namespace {

bool ComputeActive() {
  if (!avx2::kAvx2Compiled) return false;
  if (!util::CpuHasAvx2Fma()) return false;
  // "avx2" merely *requests* what kAuto already grants; only kOff changes
  // the outcome. An override can never enable unsupported code.
  return util::SimdEnvOverride() != util::SimdOverride::kOff;
}

// --- Packed-weights cache ---------------------------------------------------

struct CacheEntry {
  // Liveness + address-reuse guard: a dead weak_ptr (or one resolving to a
  // different Impl after address reuse) invalidates the entry.
  std::weak_ptr<Tensor::Impl> owner;
  uint64_t epoch = 0;
  std::shared_ptr<const PackedGemv> packed;
};

struct PackCache {
  std::shared_mutex mu;
  std::unordered_map<const Tensor::Impl*, CacheEntry> entries;
};

PackCache& Cache() {
  static PackCache* cache = new PackCache();  // leaked: outlives all threads
  return *cache;
}

}  // namespace

bool Avx2Compiled() { return avx2::kAvx2Compiled; }

bool Avx2Active() {
  static const bool active = ComputeActive();
  return active;
}

const char* SimdBackendName() { return Avx2Active() ? "avx2" : "scalar"; }

PackedGemv PackGemv(const double* w, size_t rows, size_t cols) {
  PackedGemv packed;
  packed.rows = rows;
  packed.cols = cols;
  packed.full_panels = rows / kGemvPanel;
  packed.panels.resize(packed.full_panels * cols * kGemvPanel);
  for (size_t p = 0; p < packed.full_panels; ++p) {
    double* panel = packed.panels.data() + p * cols * kGemvPanel;
    for (size_t j = 0; j < cols; ++j) {
      for (size_t lane = 0; lane < kGemvPanel; ++lane) {
        panel[j * kGemvPanel + lane] = w[(p * kGemvPanel + lane) * cols + j];
      }
    }
  }
  const size_t tail_rows = rows - packed.full_panels * kGemvPanel;
  packed.tail.assign(w + packed.full_panels * kGemvPanel * cols,
                     w + packed.full_panels * kGemvPanel * cols +
                         tail_rows * cols);
  return packed;
}

void GemvBiasPacked(const PackedGemv& packed, const double* x,
                    const double* bias, double* y) {
  avx2::GemvBiasPacked(packed, x, bias, y);
}

void GemvBiasPacked2(const PackedGemv& packed, const double* x1, size_t n1,
                     const double* x2, const double* bias, double* y) {
  avx2::GemvBiasPacked2(packed, x1, n1, x2, bias, y);
}

std::shared_ptr<const PackedGemv> PackedFor(
    const std::shared_ptr<Tensor::Impl>& impl) {
  PackCache& cache = Cache();
  const Tensor::Impl* key = impl.get();
  const uint64_t epoch = ParamEpoch();
  {
    std::shared_lock<std::shared_mutex> lock(cache.mu);
    auto it = cache.entries.find(key);
    if (it != cache.entries.end() && it->second.epoch == epoch &&
        it->second.owner.lock().get() == key) {
      return it->second.packed;
    }
  }
  // Build outside the lock: packing reads only this parameter's storage,
  // which no other thread mutates while serving runs.
  const size_t rows = impl->shape.empty() ? 1 : impl->shape[0];
  const size_t cols = impl->data.size() / (rows == 0 ? 1 : rows);
  auto packed = std::make_shared<const PackedGemv>(
      PackGemv(impl->data.data(), rows, cols));
  {
    std::unique_lock<std::shared_mutex> lock(cache.mu);
    // Opportunistic sweep of dead owners; the map holds one entry per 2-D
    // parameter tensor, so this stays cheap.
    for (auto it = cache.entries.begin(); it != cache.entries.end();) {
      if (it->second.owner.expired()) {
        it = cache.entries.erase(it);
      } else {
        ++it;
      }
    }
    auto& entry = cache.entries[key];
    // Another thread may have inserted a fresh pack meanwhile; keep either
    // (both were built from identical bytes at this epoch).
    if (entry.epoch != epoch || entry.owner.lock().get() != key) {
      entry.owner = impl;
      entry.epoch = epoch;
      entry.packed = packed;
    }
    return entry.packed;
  }
}

size_t PackedCacheSize() {
  PackCache& cache = Cache();
  std::shared_lock<std::shared_mutex> lock(cache.mu);
  return cache.entries.size();
}

void MatMulAvx2(const double* a, const double* b, double* out, size_t m,
                size_t k, size_t n) {
  avx2::MatMul(a, b, out, m, k, n);
}

void AxpyAvx2(double a, const double* x, double* y, size_t n) {
  avx2::Axpy(a, x, y, n);
}

void SigmoidAvx2(const double* x, double* y, size_t n) {
  avx2::SigmoidN(x, y, n);
}

void TanhAvx2(const double* x, double* y, size_t n) {
  avx2::TanhN(x, y, n);
}

}  // namespace deepod::nn
