#include "nn/conv.h"

#include <cmath>
#include <stdexcept>

namespace deepod::nn {
namespace {

using Impl = Tensor::Impl;

// Fused per-channel normalisation with exact backward.
//   y[c,i] = gamma[c] * (x[c,i] - mu[c]) / sqrt(var[c] + eps) + beta[c]
// where mu/var are the statistics used (instance stats in training mode,
// running stats in inference mode; in inference mode the stats carry no
// gradient).
Tensor NormalizePerChannel(const Tensor& input, const Tensor& gamma,
                           const Tensor& beta, const std::vector<double>& mu,
                           const std::vector<double>& var, double eps,
                           bool stats_from_input) {
  const size_t c = input.dim(0), hw = input.dim(1) * input.dim(2);
  const auto& x = input.data();
  const auto& g = gamma.data();
  const auto& b = beta.data();
  std::vector<double> inv_std(c);
  for (size_t ch = 0; ch < c; ++ch) inv_std[ch] = 1.0 / std::sqrt(var[ch] + eps);
  if (!GradEnabled()) {
    // Graph-free: no xhat copy is kept for backward.
    auto out = AcquireBuffer(x.size());
    for (size_t ch = 0; ch < c; ++ch) {
      for (size_t i = 0; i < hw; ++i) {
        const size_t idx = ch * hw + i;
        out[idx] = g[ch] * ((x[idx] - mu[ch]) * inv_std[ch]) + b[ch];
      }
    }
    return Tensor::FromData(input.shape(), std::move(out));
  }
  std::vector<double> xhat(x.size());
  auto out = AcquireBuffer(x.size());
  for (size_t ch = 0; ch < c; ++ch) {
    for (size_t i = 0; i < hw; ++i) {
      const size_t idx = ch * hw + i;
      xhat[idx] = (x[idx] - mu[ch]) * inv_std[ch];
      out[idx] = g[ch] * xhat[idx] + b[ch];
    }
  }
  auto pin = input.impl(), pg = gamma.impl(), pb = beta.impl();
  return Tensor::MakeOpResult(
      input.shape(), std::move(out), {pin, pg, pb},
      [pin, pg, pb, xhat, inv_std, c, hw, stats_from_input](Impl& self) {
        double* gg = pg->grad_sink();
        double* gb = pb->grad_sink();
        double* gx = pin->grad_sink();
        for (size_t ch = 0; ch < c; ++ch) {
          double sum_dy = 0.0, sum_dy_xhat = 0.0;
          for (size_t i = 0; i < hw; ++i) {
            const size_t idx = ch * hw + i;
            const double dy = self.grad[idx];
            sum_dy += dy;
            sum_dy_xhat += dy * xhat[idx];
            gg[ch] += dy * xhat[idx];
            gb[ch] += dy;
          }
          const double gamma_v = pg->data[ch];
          const double n = static_cast<double>(hw);
          for (size_t i = 0; i < hw; ++i) {
            const size_t idx = ch * hw + i;
            const double dy = self.grad[idx];
            if (stats_from_input) {
              // Full batch-norm backward: statistics depend on the input.
              gx[idx] += gamma_v * inv_std[ch] *
                         (dy - sum_dy / n - xhat[idx] * sum_dy_xhat / n);
            } else {
              // Running statistics are constants.
              gx[idx] += gamma_v * inv_std[ch] * dy;
            }
          }
        }
      });
}

thread_local BnStatsLog* tls_bn_log = nullptr;

}  // namespace

BnCaptureScope::BnCaptureScope(BnStatsLog* log) {
  if (tls_bn_log != nullptr) {
    throw std::logic_error("BnCaptureScope: capture already installed");
  }
  tls_bn_log = log;
}

BnCaptureScope::~BnCaptureScope() { tls_bn_log = nullptr; }

Conv2dLayer::Conv2dLayer(size_t in_channels, size_t out_channels, size_t kh,
                         size_t kw, size_t pad_h, size_t pad_w, util::Rng& rng)
    : out_channels_(out_channels), pad_h_(pad_h), pad_w_(pad_w) {
  const double fan_in = static_cast<double>(in_channels * kh * kw);
  const double bound = 1.0 / std::sqrt(fan_in);
  kernel_ = Tensor::RandUniform({out_channels, in_channels, kh, kw}, rng,
                                -bound, bound);
  bias_ = Tensor::RandUniform({out_channels}, rng, -bound, bound);
  kernel_.set_requires_grad(true);
  bias_.set_requires_grad(true);
}

Tensor Conv2dLayer::Forward(const Tensor& input) const {
  return AddChannelBias(Conv2d(input, kernel_, pad_h_, pad_w_), bias_);
}

std::vector<Tensor> Conv2dLayer::Parameters() { return {kernel_, bias_}; }

void Conv2dLayer::AppendState(const std::string& prefix, StateDict& out) {
  out.AddParameter(JoinName(prefix, "kernel"), kernel_);
  out.AddParameter(JoinName(prefix, "bias"), bias_);
}

BatchNorm2d::BatchNorm2d(size_t channels, double momentum, double eps)
    : channels_(channels), momentum_(momentum), eps_(eps) {
  gamma_ = Tensor::Full({channels}, 1.0);
  beta_ = Tensor::Zeros({channels});
  gamma_.set_requires_grad(true);
  beta_.set_requires_grad(true);
  running_mean_.assign(channels, 0.0);
  running_var_.assign(channels, 1.0);
}

Tensor BatchNorm2d::Forward(const Tensor& input) {
  if (input.ndim() != 3 || input.dim(0) != channels_) {
    throw std::invalid_argument("BatchNorm2d: bad input shape " +
                                input.ShapeString());
  }
  const size_t hw = input.dim(1) * input.dim(2);
  if (training_) {
    const auto& x = input.data();
    std::vector<double> mu(channels_, 0.0), var(channels_, 0.0);
    for (size_t ch = 0; ch < channels_; ++ch) {
      double s = 0.0;
      for (size_t i = 0; i < hw; ++i) s += x[ch * hw + i];
      mu[ch] = s / static_cast<double>(hw);
      double v = 0.0;
      for (size_t i = 0; i < hw; ++i) {
        const double d = x[ch * hw + i] - mu[ch];
        v += d * d;
      }
      var[ch] = v / static_cast<double>(hw);
    }
    if (tls_bn_log != nullptr) {
      tls_bn_log->push_back({this, mu, var});
    } else {
      ApplyMomentumUpdate(mu, var);
    }
    return NormalizePerChannel(input, gamma_, beta_, mu, var, eps_,
                               /*stats_from_input=*/true);
  }
  return NormalizePerChannel(input, gamma_, beta_, running_mean_, running_var_,
                             eps_, /*stats_from_input=*/false);
}

void BatchNorm2d::ApplyMomentumUpdate(const std::vector<double>& mu,
                                      const std::vector<double>& var) {
  for (size_t ch = 0; ch < channels_; ++ch) {
    running_mean_[ch] =
        (1.0 - momentum_) * running_mean_[ch] + momentum_ * mu[ch];
    running_var_[ch] =
        (1.0 - momentum_) * running_var_[ch] + momentum_ * var[ch];
  }
}

std::vector<Tensor> BatchNorm2d::Parameters() { return {gamma_, beta_}; }

void BatchNorm2d::AppendState(const std::string& prefix, StateDict& out) {
  out.AddParameter(JoinName(prefix, "gamma"), gamma_);
  out.AddParameter(JoinName(prefix, "beta"), beta_);
  out.AddBuffer(JoinName(prefix, "running_mean"), {channels_},
                running_mean_.data());
  out.AddBuffer(JoinName(prefix, "running_var"), {channels_},
                running_var_.data());
}

ResNetTimeBlock::ResNetTimeBlock(util::Rng& rng)
    : conv1_(1, 4, 3, 1, 1, 0, rng),
      bn1_(4),
      conv2_(4, 8, 3, 1, 1, 0, rng),
      bn2_(8),
      conv3_(8, 1, 1, 1, 0, 0, rng) {}

Tensor ResNetTimeBlock::Forward(const Tensor& input) {
  if (input.ndim() != 2) {
    throw std::invalid_argument("ResNetTimeBlock: expected [Δd, d_t] matrix");
  }
  const size_t dd = input.dim(0), dt = input.dim(1);
  const Tensor as_tensor = Reshape(input, {1, dd, dt});
  const Tensor z1 = Relu(bn1_.Forward(conv1_.Forward(as_tensor)));  // Eq. 5
  const Tensor z2 = Relu(bn2_.Forward(conv2_.Forward(z1)));         // Eq. 6
  const Tensor z3 = conv3_.Forward(z2);                             // Eq. 7
  const Tensor z4 = Add(as_tensor, z3);                             // Eq. 8
  return Reshape(z4, {dd, dt});
}

std::vector<Tensor> ResNetTimeBlock::Parameters() {
  std::vector<Tensor> params;
  for (Module* m : std::vector<Module*>{&conv1_, &bn1_, &conv2_, &bn2_, &conv3_}) {
    auto p = m->Parameters();
    params.insert(params.end(), p.begin(), p.end());
  }
  return params;
}

void ResNetTimeBlock::AppendState(const std::string& prefix, StateDict& out) {
  conv1_.AppendState(JoinName(prefix, "conv1."), out);
  bn1_.AppendState(JoinName(prefix, "bn1."), out);
  conv2_.AppendState(JoinName(prefix, "conv2."), out);
  bn2_.AppendState(JoinName(prefix, "bn2."), out);
  conv3_.AppendState(JoinName(prefix, "conv3."), out);
}

void ResNetTimeBlock::SetTraining(bool training) {
  Module::SetTraining(training);
  bn1_.SetTraining(training);
  bn2_.SetTraining(training);
}

TrafficCnn::TrafficCnn(size_t out_dim, util::Rng& rng)
    : conv1_(1, 4, 3, 3, 1, 1, rng),
      conv2_(4, 8, 3, 3, 1, 1, rng),
      conv3_(8, 8, 3, 3, 1, 1, rng),
      bn1_(4),
      bn2_(8),
      bn3_(8),
      proj_(8, out_dim, rng) {}

Tensor TrafficCnn::Forward(const Tensor& input) {
  if (input.ndim() != 3 || input.dim(0) != 1) {
    throw std::invalid_argument("TrafficCnn: expected [1, H, W] speed matrix");
  }
  Tensor z = Relu(bn1_.Forward(conv1_.Forward(input)));
  z = Relu(bn2_.Forward(conv2_.Forward(z)));
  z = Relu(bn3_.Forward(conv3_.Forward(z)));
  return proj_.Forward(GlobalAvgPool(z));
}

std::vector<Tensor> TrafficCnn::Parameters() {
  std::vector<Tensor> params;
  for (Module* m : std::vector<Module*>{&conv1_, &conv2_, &conv3_, &bn1_, &bn2_,
                                        &bn3_, &proj_}) {
    auto p = m->Parameters();
    params.insert(params.end(), p.begin(), p.end());
  }
  return params;
}

void TrafficCnn::AppendState(const std::string& prefix, StateDict& out) {
  conv1_.AppendState(JoinName(prefix, "conv1."), out);
  conv2_.AppendState(JoinName(prefix, "conv2."), out);
  conv3_.AppendState(JoinName(prefix, "conv3."), out);
  bn1_.AppendState(JoinName(prefix, "bn1."), out);
  bn2_.AppendState(JoinName(prefix, "bn2."), out);
  bn3_.AppendState(JoinName(prefix, "bn3."), out);
  proj_.AppendState(JoinName(prefix, "proj."), out);
}

void TrafficCnn::SetTraining(bool training) {
  Module::SetTraining(training);
  bn1_.SetTraining(training);
  bn2_.SetTraining(training);
  bn3_.SetTraining(training);
}

}  // namespace deepod::nn
