#ifndef DEEPOD_NN_SERIALIZE_H_
#define DEEPOD_NN_SERIALIZE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "nn/tensor.h"

namespace deepod::nn {

// Flat binary (de)serialisation of a parameter list. Used for model
// checkpointing and for the Table 5 model-size accounting: SerializedSize
// reports exactly the bytes a saved model occupies.

// Serialises shapes + data of every parameter into a byte buffer.
std::vector<uint8_t> SerializeParameters(const std::vector<Tensor>& params);

// Restores parameter values in place; shapes must match the buffer.
void DeserializeParameters(const std::vector<uint8_t>& buffer,
                           std::vector<Tensor>& params);

// Byte size a SerializeParameters call would produce (without building it).
size_t SerializedSize(const std::vector<Tensor>& params);

// File helpers.
void SaveParameters(const std::string& path, const std::vector<Tensor>& params);
void LoadParameters(const std::string& path, std::vector<Tensor>& params);

}  // namespace deepod::nn

#endif  // DEEPOD_NN_SERIALIZE_H_
