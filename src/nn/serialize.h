#ifndef DEEPOD_NN_SERIALIZE_H_
#define DEEPOD_NN_SERIALIZE_H_

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "nn/module.h"
#include "nn/quant.h"
#include "nn/tensor.h"

namespace deepod::nn {

// (De)serialisation of model state. Two formats coexist:
//
//  * The tagged state-dict format (v2/v3) — the current on-disk contract.
//    Self-describing: a magic/version header, one record per tensor holding
//    its *name*, dtype, shape and payload, and a trailing checksum over the
//    whole stream. Tensors are matched by name on load, so file layout is
//    decoupled from module traversal order, config mismatches are detected
//    (and reported) per tensor, and corruption is caught before any value is
//    written into a model. See DESIGN.md, "Model lifecycle".
//
//  * The legacy positional blob (v1) — the original unnamed format kept for
//    reading old checkpoints. New files are never written in it.
//
// Byte layout of v2/v3 (all integers little-endian):
//   u32  magic      0xd33b0d02 ("deepod" format, generation 2)
//   u32  version    2 or 3
//   u64  entry count
//   per entry:
//     u32  name length, then that many name bytes (UTF-8, no NUL)
//     u8   dtype      1 = f64; 2 = f16; 3 = int8 (per-row scales)
//     u32  ndim, then ndim u64 dims   (ndim 0 = scalar, 1 element)
//     payload:
//       f64  — f64 data[product(dims)]
//       f16  — u16 half-float data[product(dims)]
//       int8 — f64 scales[dims[0]] then i8 quantised data[product(dims)]
//   u64  FNV-1a 64 checksum of every preceding byte
//
// Version policy (CONTRIBUTING.md: keep every reader, bump the version when
// a record can carry something an old reader would misparse): files whose
// records are all-f64 are written as version 2, byte-identical to the
// pre-quantisation writer, so every existing artifact and reader keeps
// working. The f16/int8 dtypes are only legal in version-3 files; a v2 file
// carrying them is rejected as kBadDtype, and a v3 file is rejected by old
// readers as kBadVersion rather than misread.

// --- Typed load errors -------------------------------------------------------

enum class LoadErrorKind {
  kNone = 0,
  kIoError,           // file cannot be opened / read / written
  kBadMagic,          // not a state-dict (or legacy) stream
  kBadVersion,        // recognised magic, unsupported format version
  kTruncated,         // stream ends inside a record
  kBadChecksum,       // payload bytes do not match the trailing checksum
  kBadDtype,          // unknown dtype tag in a record
  kMissingTensor,     // the model expects a tensor the file does not hold
  kUnexpectedTensor,  // the file holds a tensor the model does not expect
  kShapeMismatch,     // name matched but shapes differ (config mismatch)
  kTrailingBytes,     // well-formed records followed by garbage
  kCountMismatch,     // legacy blob: positional parameter count differs
};

// Outcome of a load/save operation. `tensor` names the first offending
// record for per-tensor failures (kMissingTensor / kUnexpectedTensor /
// kShapeMismatch); `message` is a human-readable one-liner that includes
// expected-vs-found shapes where applicable.
struct LoadStatus {
  LoadErrorKind kind = LoadErrorKind::kNone;
  std::string tensor;
  std::string message;

  bool ok() const { return kind == LoadErrorKind::kNone; }
  static LoadStatus Ok() { return {}; }
  static LoadStatus Error(LoadErrorKind kind, std::string message,
                          std::string tensor = "");
};

// Short identifier for an error kind ("bad_checksum", ...; "ok" for kNone).
const char* LoadErrorKindName(LoadErrorKind kind);

// Exception form for call sites without a status channel (model Load,
// CLIs). Carries the full typed status.
class SerializeError : public std::runtime_error {
 public:
  explicit SerializeError(LoadStatus status);
  const LoadStatus& status() const { return status_; }

 private:
  LoadStatus status_;
};

// Throws SerializeError if `status` is an error; returns it otherwise.
const LoadStatus& ThrowIfError(const LoadStatus& status);

// --- Tagged state-dict format (v2/v3) ---------------------------------------

// Record dtype tags (see the byte-layout comment above).
inline constexpr uint8_t kDtypeF64 = 1;
inline constexpr uint8_t kDtypeF16 = 2;
inline constexpr uint8_t kDtypeI8 = 3;

// "f64" / "f16" / "int8" (or "unknown").
const char* RecordDtypeName(uint8_t dtype);

// Serialises every entry of `state` (names, shapes, payloads, checksum).
// All-f64, written as version 2 (byte-identical to the pre-quantisation
// writer).
std::vector<uint8_t> SerializeStateDict(const StateDict& state);

// Quantising writer: entries eligible for weight quantisation (nn/quant.h)
// are stored as f16 or int8 records, everything else stays f64. With
// QuantMode::kNone — or when nothing is eligible — this is exactly the
// overload above. Emits version 3 iff a quantised record is present.
std::vector<uint8_t> SerializeStateDict(const StateDict& state,
                                        QuantMode quant);

// Byte size the all-f64 SerializeStateDict(state) call would produce.
size_t SerializedStateSize(const StateDict& state);

// Restores `state` in place from a v2/v3 buffer, dequantising f16/int8
// records into the fp64 entry storage. Strict by-name matching: every dict
// entry must appear in the buffer with an identical shape and every buffer
// record must be expected by the dict — the first violation is reported
// with its tensor name and both shapes. No entry is modified unless the
// whole buffer validates (checksum included), so a failed load never leaves
// a model half-written. Bumps the parameter epoch on success.
LoadStatus DeserializeStateDict(const std::vector<uint8_t>& buffer,
                                StateDict& state);

// One record of a serialised state dict, without its payload.
struct TensorRecord {
  std::string name;
  uint8_t dtype = 0;
  std::vector<size_t> shape;
  size_t num_elements = 0;
  size_t payload_offset = 0;  // byte offset of the payload in the buffer
};

// Parses the record table of a v2/v3 buffer (used by DeserializeStateDict,
// the artifact loader and the inspector CLI). Validates framing and —
// unless `verify_checksum` is false — the trailing checksum. Quantised
// dtypes are accepted only in version-3 buffers.
LoadStatus IndexStateDict(const std::vector<uint8_t>& buffer,
                          std::vector<TensorRecord>* out,
                          bool verify_checksum = true);

// On-disk payload size of a record, in bytes (dtype-dependent; the int8
// payload carries dims[0] f64 scales before the quantised bytes).
size_t RecordPayloadBytes(const TensorRecord& record);

// Decodes a record's payload out of the buffer it was indexed from into
// fp64 values (dequantising f16/int8 records).
std::vector<double> ReadRecordPayload(const std::vector<uint8_t>& buffer,
                                      const TensorRecord& record);

// The per-row scales of an int8 record (dims[0] values); empty for any
// other dtype.
std::vector<double> ReadRecordScales(const std::vector<uint8_t>& buffer,
                                     const TensorRecord& record);

// True when the buffer starts with the v2 state-dict magic.
bool IsStateDictBuffer(const std::vector<uint8_t>& buffer);
// True when the buffer starts with the legacy positional-blob magic.
bool IsLegacyParameterBuffer(const std::vector<uint8_t>& buffer);

// File helpers (v2/v3). The QuantMode overload routes through the
// quantising writer.
LoadStatus SaveStateDict(const std::string& path, const StateDict& state);
LoadStatus SaveStateDict(const std::string& path, const StateDict& state,
                         QuantMode quant);
LoadStatus LoadStateDict(const std::string& path, StateDict& state);

// Reads a whole file into bytes (shared by the state-dict and legacy
// readers; the caller sniffs the magic to pick a decoder).
LoadStatus ReadFileBytes(const std::string& path, std::vector<uint8_t>* out);

// --- Legacy positional blob (v1) --------------------------------------------

// Serialises shapes + data of every parameter, identified by position only.
// Legacy format — kept so pre-state-dict checkpoints and the property tests
// that compare raw parameter bytes keep working; new code writes state
// dicts.
std::vector<uint8_t> SerializeParameters(const std::vector<Tensor>& params);

// Restores parameter values in place; count and shapes must match the
// buffer. Throws SerializeError (with a typed status) on any mismatch.
void DeserializeParameters(const std::vector<uint8_t>& buffer,
                           std::vector<Tensor>& params);

// Byte size a SerializeParameters call would produce (without building it).
size_t SerializedSize(const std::vector<Tensor>& params);

// Legacy file helpers. LoadParameters throws SerializeError on open/decode
// failure.
void SaveParameters(const std::string& path, const std::vector<Tensor>& params);
void LoadParameters(const std::string& path, std::vector<Tensor>& params);

}  // namespace deepod::nn

#endif  // DEEPOD_NN_SERIALIZE_H_
