#ifndef DEEPOD_TRAJ_TRAJECTORY_H_
#define DEEPOD_TRAJ_TRAJECTORY_H_

#include <cstddef>
#include <vector>

#include "road/road_network.h"
#include "temporal/time_slot.h"

namespace deepod::traj {

// A single GPS fix <[x_i, y_i], t_i> of a raw trajectory (§2).
struct GpsPoint {
  road::Point pos;
  temporal::Timestamp t = 0.0;
};

// A raw (unmatched) trajectory: the GPS point sequence emitted by a probe
// vehicle. Points are ordered by timestamp.
struct RawTrajectory {
  std::vector<GpsPoint> points;

  bool empty() const { return points.empty(); }
  temporal::Timestamp departure_time() const { return points.front().t; }
  temporal::Timestamp arrival_time() const { return points.back().t; }
  double travel_time() const { return arrival_time() - departure_time(); }
};

// One element of a spatio-temporal path: a road segment together with the
// time interval [enter, exit] during which the vehicle occupied it (Def. 1).
struct PathElement {
  size_t segment_id = road::kInvalidId;
  temporal::Timestamp enter = 0.0;  // t_i[1]
  temporal::Timestamp exit = 0.0;   // t_i[-1]
};

// A map-matched trajectory <SP, PR> (Def. 1): the spatio-temporal path plus
// the two position ratios locating the true origin/destination within the
// first/last segment.
struct MatchedTrajectory {
  std::vector<PathElement> path;  // SP
  double origin_ratio = 0.0;      // r[1]  in [0,1] along path.front()
  double dest_ratio = 0.0;        // r[-1] in [0,1] along path.back()

  bool empty() const { return path.empty(); }
  size_t num_segments() const { return path.size(); }
  temporal::Timestamp departure_time() const { return path.front().enter; }
  temporal::Timestamp arrival_time() const { return path.back().exit; }
  double travel_time() const { return arrival_time() - departure_time(); }

  // The segment-id sequence (used by the edge-graph co-occurrence counter).
  std::vector<size_t> SegmentIds() const;

  // Total length travelled, accounting for the partial first/last segments.
  double TravelledLength(const road::RoadNetwork& net) const;

  // Validates monotone non-decreasing intervals and path connectivity.
  bool IsValid(const road::RoadNetwork& net) const;
};

// An OD input (Def. 2): origin point, destination point, departure time,
// plus the matched representation used by the model (segments + ratios) and
// optional external features.
struct OdInput {
  road::Point origin;
  road::Point destination;
  temporal::Timestamp departure_time = 0.0;
  // Map-matched representation.
  size_t origin_segment = road::kInvalidId;   // e_1
  size_t dest_segment = road::kInvalidId;     // e_n
  double origin_ratio = 0.0;                  // r[1]
  double dest_ratio = 0.0;                    // r[-1]
  // External features (§4.5).
  int weather_type = 0;  // one of N_wea categories
};

// A complete historical trip record: OD input + affiliated trajectory +
// ground-truth travel time. Trajectories exist only for training records;
// test records carry an empty trajectory (the paper's central constraint).
struct TripRecord {
  OdInput od;
  MatchedTrajectory trajectory;
  double travel_time = 0.0;  // seconds (label y)
};

}  // namespace deepod::traj

#endif  // DEEPOD_TRAJ_TRAJECTORY_H_
