#include "traj/trajectory.h"

namespace deepod::traj {

std::vector<size_t> MatchedTrajectory::SegmentIds() const {
  std::vector<size_t> ids;
  ids.reserve(path.size());
  for (const auto& e : path) ids.push_back(e.segment_id);
  return ids;
}

double MatchedTrajectory::TravelledLength(const road::RoadNetwork& net) const {
  if (path.empty()) return 0.0;
  if (path.size() == 1) {
    // Origin and destination on the same segment.
    const double len = net.segment(path[0].segment_id).length;
    return len * (dest_ratio - origin_ratio);
  }
  double total = 0.0;
  // Partial first segment: from origin_ratio to the end.
  total += net.segment(path.front().segment_id).length * (1.0 - origin_ratio);
  for (size_t i = 1; i + 1 < path.size(); ++i) {
    total += net.segment(path[i].segment_id).length;
  }
  // Partial last segment: from the start to dest_ratio.
  total += net.segment(path.back().segment_id).length * dest_ratio;
  return total;
}

bool MatchedTrajectory::IsValid(const road::RoadNetwork& net) const {
  if (path.empty()) return false;
  if (origin_ratio < 0.0 || origin_ratio > 1.0 || dest_ratio < 0.0 ||
      dest_ratio > 1.0) {
    return false;
  }
  for (size_t i = 0; i < path.size(); ++i) {
    if (path[i].segment_id >= net.num_segments()) return false;
    if (path[i].exit < path[i].enter) return false;
    if (i > 0) {
      if (path[i].enter < path[i - 1].exit - 1e-9) return false;
      const auto& prev = net.segment(path[i - 1].segment_id);
      const auto& cur = net.segment(path[i].segment_id);
      if (prev.to != cur.from) return false;
    }
  }
  return true;
}

}  // namespace deepod::traj
