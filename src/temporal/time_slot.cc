#include "temporal/time_slot.h"

#include <cmath>

namespace deepod::temporal {

TimeSlotter::TimeSlotter(Timestamp base, double slot_seconds)
    : base_(base), slot_seconds_(slot_seconds) {
  if (slot_seconds <= 0.0) {
    throw std::invalid_argument("TimeSlotter: slot size must be positive");
  }
  const double per_day = kSecondsPerDay / slot_seconds;
  if (std::fabs(per_day - std::round(per_day)) > 1e-9) {
    throw std::invalid_argument(
        "TimeSlotter: slot size must divide a day evenly");
  }
}

int64_t TimeSlotter::Slot(Timestamp t) const {
  if (t < base_) throw std::invalid_argument("TimeSlotter::Slot: t < base");
  return static_cast<int64_t>(std::floor((t - base_) / slot_seconds_));
}

double TimeSlotter::Remainder(Timestamp t) const {
  return t - base_ - static_cast<double>(Slot(t)) * slot_seconds_;
}

Timestamp TimeSlotter::SlotStart(int64_t slot) const {
  return base_ + static_cast<double>(slot) * slot_seconds_;
}

int64_t TimeSlotter::slots_per_day() const {
  return static_cast<int64_t>(std::llround(kSecondsPerDay / slot_seconds_));
}

int64_t TimeSlotter::slots_per_week() const { return 7 * slots_per_day(); }

int64_t TimeSlotter::WeeklyNode(int64_t slot) const {
  const int64_t n = slots_per_week();
  return ((slot % n) + n) % n;
}

int64_t TimeSlotter::DailyNode(int64_t slot) const {
  const int64_t n = slots_per_day();
  return ((slot % n) + n) % n;
}

int64_t TimeSlotter::IntervalSlotCount(Timestamp t1, Timestamp t2) const {
  if (t2 < t1) {
    throw std::invalid_argument("TimeSlotter::IntervalSlotCount: t2 < t1");
  }
  return Slot(t2) - Slot(t1) + 1;
}

}  // namespace deepod::temporal
