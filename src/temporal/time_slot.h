#ifndef DEEPOD_TEMPORAL_TIME_SLOT_H_
#define DEEPOD_TEMPORAL_TIME_SLOT_H_

#include <cstdint>
#include <stdexcept>

namespace deepod::temporal {

// Seconds since an arbitrary epoch; the simulator's clock. Monday 00:00 of
// week 0 is timestamp 0 in all synthetic datasets, which makes day-of-week
// arithmetic transparent in tests.
using Timestamp = double;

constexpr double kSecondsPerMinute = 60.0;
constexpr double kSecondsPerHour = 3600.0;
constexpr double kSecondsPerDay = 86400.0;
constexpr double kSecondsPerWeek = 7.0 * kSecondsPerDay;

// Discretisation of time into fixed-size slots (Def. 4). A timestamp t is
// represented as the pair <slot, remainder> (Eq. 2-3): slot = ⌊(t-t0)/Δt⌋,
// remainder = t - t0 - slot·Δt. Slots further project onto a weekly cycle
// of slots_per_week() nodes of the temporal graph.
class TimeSlotter {
 public:
  // `base` is t0; `slot_seconds` is Δt. t0 must not exceed any timestamp
  // handed to Slot()/Remainder().
  TimeSlotter(Timestamp base, double slot_seconds);

  // Eq. 2.
  int64_t Slot(Timestamp t) const;
  // Eq. 3 — in [0, Δt).
  double Remainder(Timestamp t) const;
  // Inverse map: start timestamp of a slot.
  Timestamp SlotStart(int64_t slot) const;

  // Number of slots in one day / week. Requires Δt to divide the day
  // evenly (the paper's choices — 1, 5, 10, 30, 60 minutes — all do).
  int64_t slots_per_day() const;
  int64_t slots_per_week() const;

  // Projection of a slot onto its weekly-cycle node id (t_p % |V'|).
  int64_t WeeklyNode(int64_t slot) const;
  // Projection onto a daily cycle (T-day ablation in Table 7).
  int64_t DailyNode(int64_t slot) const;

  // Number of slots covered by the closed interval [t1, t2] (Eq. 4:
  // Δd = t_p[-1] - t_p[1] + 1).
  int64_t IntervalSlotCount(Timestamp t1, Timestamp t2) const;

  double slot_seconds() const { return slot_seconds_; }
  Timestamp base() const { return base_; }

 private:
  Timestamp base_;
  double slot_seconds_;
};

}  // namespace deepod::temporal

#endif  // DEEPOD_TEMPORAL_TIME_SLOT_H_
