#include "temporal/temporal_graph.h"

namespace deepod::temporal {

util::WeightedDigraph BuildWeeklyTemporalGraph(const TimeSlotter& slotter) {
  const int64_t per_day = slotter.slots_per_day();
  const int64_t n = slotter.slots_per_week();
  util::WeightedDigraph graph(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    // Neighbouring-slot arc: slot i -> slot i+1 (weekly wrap-around keeps
    // the chain a cycle, matching the red edges of Fig. 5b).
    graph.AddArc(static_cast<size_t>(i), static_cast<size_t>((i + 1) % n), 1.0);
    // Neighbouring-day arc: slot i -> same slot next day (black edges).
    graph.AddArc(static_cast<size_t>(i), static_cast<size_t>((i + per_day) % n),
                 1.0);
  }
  return graph;
}

util::WeightedDigraph BuildDailyTemporalGraph(const TimeSlotter& slotter) {
  const int64_t n = slotter.slots_per_day();
  util::WeightedDigraph graph(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    graph.AddArc(static_cast<size_t>(i), static_cast<size_t>((i + 1) % n), 1.0);
  }
  return graph;
}

}  // namespace deepod::temporal
