#ifndef DEEPOD_TEMPORAL_TEMPORAL_GRAPH_H_
#define DEEPOD_TEMPORAL_TEMPORAL_GRAPH_H_

#include "temporal/time_slot.h"
#include "util/weighted_digraph.h"

namespace deepod::temporal {

// Builds the weekly temporal graph of Fig. 5(b): one node per time slot of
// a week; directed arcs between consecutive slots (neighbouring-slot edges,
// wrapping from the last slot of Sunday back to the first of Monday) and
// between the same slot of consecutive days (neighbouring-day edges,
// wrapping Sunday -> Monday). Used to initialise the time-slot embedding
// matrix Wt via graph embedding.
util::WeightedDigraph BuildWeeklyTemporalGraph(const TimeSlotter& slotter);

// T-day ablation (Table 7): one day of slots, consecutive-slot edges only
// (daily periodicity captured by the cycle; no cross-day edges exist).
util::WeightedDigraph BuildDailyTemporalGraph(const TimeSlotter& slotter);

}  // namespace deepod::temporal

#endif  // DEEPOD_TEMPORAL_TEMPORAL_GRAPH_H_
