#ifndef DEEPOD_SIM_SPEED_MATRIX_H_
#define DEEPOD_SIM_SPEED_MATRIX_H_

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "road/road_network.h"
#include "sim/traffic_model.h"
#include "sim/weather.h"
#include "temporal/time_slot.h"

namespace deepod::sim {

// Source of grid-averaged speed matrices — the "current traffic condition"
// external feature of §4.5. The model consumes this interface only, so the
// training path (SpeedMatrixBuilder, backed by the live traffic process)
// and the serving path (SnapshotSpeedField, a frozen table shipped inside a
// model artifact) are interchangeable.
class SpeedProvider {
 public:
  virtual ~SpeedProvider() = default;

  virtual size_t rows() const = 0;
  virtual size_t cols() const = 0;
  virtual double snapshot_seconds() const = 0;

  // Row-major rows() x cols() matrix of normalised average speeds at the
  // latest snapshot at or before t.
  virtual std::vector<double> MatrixAt(temporal::Timestamp t) const = 0;

  // The snapshot timestamp used for time t.
  virtual temporal::Timestamp SnapshotTime(temporal::Timestamp t) const = 0;
};

// Live speed field over the simulated traffic process. The whole area is
// split into square grids of `grid_size_m`; the matrix value of a grid is
// the average effective speed of the segments whose midpoint falls in it
// (normalised to [0,1] by the network's maximum free-flow speed so the CNN
// input is well-scaled). One matrix is produced per Δt snapshot; the model
// consumes the latest snapshot before departure (quantised, exactly like
// the paper).
class SpeedMatrixBuilder : public SpeedProvider {
 public:
  SpeedMatrixBuilder(const road::RoadNetwork& net, const TrafficModel& traffic,
                     const WeatherProcess& weather, double grid_size_m = 200.0,
                     double snapshot_seconds = 300.0);

  size_t rows() const override { return rows_; }
  size_t cols() const override { return cols_; }
  double snapshot_seconds() const override { return snapshot_seconds_; }

  // Cells with no segment get the city-wide mean so the CNN sees no
  // artificial holes.
  std::vector<double> MatrixAt(temporal::Timestamp t) const override;

  temporal::Timestamp SnapshotTime(temporal::Timestamp t) const override;

 private:
  const road::RoadNetwork& net_;
  const TrafficModel& traffic_;
  const WeatherProcess& weather_;
  double grid_size_m_, snapshot_seconds_;
  road::Point lo_;
  size_t rows_ = 0, cols_ = 0;
  double max_speed_ = 1.0;
  std::vector<std::vector<size_t>> cell_segments_;  // cell -> segment ids

  // Snapshot-time memo: MatrixAt quantises t to a snapshot before doing
  // any work, so the matrix for each snapshot is computed once and reused
  // (training touches the same handful of snapshots thousands of times).
  // Mutex-guarded because the parallel trainer queries from many threads.
  mutable std::mutex cache_mu_;
  mutable std::unordered_map<long long, std::shared_ptr<const std::vector<double>>>
      cache_;
};

}  // namespace deepod::sim

#endif  // DEEPOD_SIM_SPEED_MATRIX_H_
