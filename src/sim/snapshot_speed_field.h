#ifndef DEEPOD_SIM_SNAPSHOT_SPEED_FIELD_H_
#define DEEPOD_SIM_SNAPSHOT_SPEED_FIELD_H_

#include <cstdint>
#include <vector>

#include "sim/speed_matrix.h"
#include "temporal/time_slot.h"

namespace deepod::sim {

// A frozen speed field: a sorted table of pre-computed snapshot matrices.
// This is the serving-side SpeedProvider — a model artifact carries one so
// an EtaService can reproduce the external-feature encoding bit-for-bit
// without the traffic simulation (or, in production, without the feature
// pipeline) in memory. Queries outside the captured window clamp to the
// nearest stored snapshot, which keeps serving total (a stale matrix beats
// a crash) — capture a window covering the serving horizon to avoid it.
class SnapshotSpeedField : public SpeedProvider {
 public:
  // One stored snapshot: `index` = snapshot timestamp / snapshot_seconds.
  struct Snapshot {
    int64_t index = 0;
    std::vector<double> matrix;  // row-major rows x cols
  };

  // `snapshots` must be sorted by ascending index, hold at least one entry,
  // and every matrix must be rows*cols; throws std::invalid_argument
  // otherwise.
  SnapshotSpeedField(size_t rows, size_t cols, double snapshot_seconds,
                     std::vector<Snapshot> snapshots);

  // Captures every snapshot of `source` with a snapshot time in
  // [begin, end] (inclusive of the quantised begin; at least one snapshot).
  static SnapshotSpeedField Capture(const SpeedProvider& source,
                                    temporal::Timestamp begin,
                                    temporal::Timestamp end);

  size_t rows() const override { return rows_; }
  size_t cols() const override { return cols_; }
  double snapshot_seconds() const override { return snapshot_seconds_; }

  // The stored matrix whose snapshot index is closest at or before t;
  // clamps to the first/last stored snapshot outside the captured window.
  std::vector<double> MatrixAt(temporal::Timestamp t) const override;
  temporal::Timestamp SnapshotTime(temporal::Timestamp t) const override;

  const std::vector<Snapshot>& snapshots() const { return snapshots_; }
  // Captured window as snapshot timestamps.
  temporal::Timestamp first_snapshot_time() const;
  temporal::Timestamp last_snapshot_time() const;

 private:
  // Index of the stored snapshot serving time t (clamped binary search).
  size_t SlotFor(temporal::Timestamp t) const;

  size_t rows_, cols_;
  double snapshot_seconds_;
  std::vector<Snapshot> snapshots_;
};

}  // namespace deepod::sim

#endif  // DEEPOD_SIM_SNAPSHOT_SPEED_FIELD_H_
