#include "sim/trip_gen.h"

#include <algorithm>
#include <memory>

#include "match/map_matcher.h"
#include "util/rng.h"

namespace deepod::sim {

std::vector<traj::TripRecord> GenerateTrips(const TripSimulator& simulator,
                                            const DatasetConfig& config,
                                            const TripGenOptions& options,
                                            util::ThreadPool* pool) {
  const size_t total = config.trips_per_day * config.num_days;
  std::vector<traj::TripRecord> all(total);
  // One shared matcher: Match is const and thread-safe, and its spatial
  // index is expensive enough that per-worker copies would dominate.
  std::unique_ptr<match::MapMatcher> matcher;
  if (options.rematch_gps) {
    matcher = std::make_unique<match::MapMatcher>(simulator.network());
  }

  auto generate_range = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      util::Rng rng = util::Rng::ForStream(config.seed, i);
      const size_t day = i / config.trips_per_day;
      const temporal::Timestamp day_start =
          static_cast<double>(day) * temporal::kSecondsPerDay;
      const temporal::Timestamp depart =
          simulator.SampleDepartureTime(day_start, rng);
      all[i] = simulator.SimulateTrip(depart, rng);
      if (matcher != nullptr) {
        const traj::RawTrajectory raw = simulator.EmitGps(all[i], rng);
        traj::MatchedTrajectory matched = matcher->Match(raw);
        if (!matched.empty()) all[i].trajectory = std::move(matched);
      }
    }
  };

  std::unique_ptr<util::ThreadPool> owned_pool;
  if (pool == nullptr) {
    const size_t threads =
        util::ThreadPool::ResolveThreadCount(options.num_threads);
    if (threads > 1) {
      owned_pool = std::make_unique<util::ThreadPool>(threads);
      pool = owned_pool.get();
    }
  }
  if (pool != nullptr && pool->num_threads() > 1 && total > 1) {
    const size_t tasks = std::min(pool->num_threads(), total);
    pool->ParallelFor(tasks, [&](size_t w) {
      const auto [begin, end] = util::ThreadPool::ChunkRange(total, tasks, w);
      generate_range(begin, end);
    });
  } else {
    generate_range(0, total);
  }

  // all[i] is fixed by i alone, so the sort input — and therefore the
  // sorted output — is identical for every thread count.
  std::sort(all.begin(), all.end(),
            [](const traj::TripRecord& a, const traj::TripRecord& b) {
              return a.od.departure_time < b.od.departure_time;
            });
  return all;
}

Dataset BuildDatasetParallel(const DatasetConfig& config,
                             const TripGenOptions& options,
                             util::ThreadPool* pool) {
  if (config.num_days < 3) {
    throw std::invalid_argument("BuildDatasetParallel: need at least 3 days");
  }
  Dataset ds;
  InitDatasetEnvironment(config, &ds);
  TripSimulator::Options sim_options;
  // Beijing's sparse 1-minute GPS vs 3 s for Chengdu/Xi'an (Table 2).
  sim_options.gps_period = config.city.name == "beijing-sim" ? 60.0 : 3.0;
  TripSimulator simulator(ds.network, *ds.traffic, *ds.weather, sim_options);
  SplitTripsChronological(GenerateTrips(simulator, config, options, pool),
                          config.num_days, &ds);
  return ds;
}

}  // namespace deepod::sim
