#ifndef DEEPOD_SIM_TRAFFIC_MODEL_H_
#define DEEPOD_SIM_TRAFFIC_MODEL_H_

#include <vector>

#include "road/road_network.h"
#include "temporal/time_slot.h"

namespace deepod::sim {

// Deterministic time-varying congestion model over a road network.
//
// The effective speed of segment e at time t is
//   speed(e, t) = free_flow(e) · congestion(e, t)
// where congestion(e, t) ∈ (0, 1] dips during the morning and evening rush
// hours on weekdays (with a weaker midday dip on weekends), with
// per-segment sensitivities drawn once per network. This gives the
// synthetic cities the two properties the paper's data exhibits and its
// model exploits: smooth neighbouring-slot variation and daily/weekly
// periodicity (Fig. 5a), and route-dependent travel times (Fig. 1 — an
// arterial that is fast at 11:00 may be the slow choice at 8:00).
class TrafficModel {
 public:
  struct Options {
    double morning_peak_hour = 8.0;
    double evening_peak_hour = 18.0;
    double peak_width_hours = 1.6;
    // Maximum fractional slowdown on the most sensitive segments.
    double max_rush_slowdown = 0.55;
    // Weekend traffic: single broad midday bump with this relative size.
    double weekend_factor = 0.35;
    // Day-to-day variability: each day draws a city-wide congestion level
    // and each (segment, day) a local one (incidents, demand surges). This
    // component is *not* a function of time-of-day, so it is invisible to
    // models fed only temporal features — but it shows in the current
    // speed matrix, which is exactly the role of the paper's §4.5
    // "current traffic condition" external feature.
    double daily_sigma = 0.10;
    double segment_daily_sigma = 0.07;
    uint64_t seed = 7;
  };

  explicit TrafficModel(const road::RoadNetwork& net);
  TrafficModel(const road::RoadNetwork& net, Options options);

  // Congestion multiplier in (0, 1]; 1 = free flow.
  double CongestionAt(size_t segment_id, temporal::Timestamp t) const;

  // Effective speed (m/s) of a segment at time t, before weather/noise.
  double SpeedAt(size_t segment_id, temporal::Timestamp t) const;

  // Expected traversal seconds of the full segment at time t.
  double TraversalSeconds(size_t segment_id, temporal::Timestamp t) const;

  // Per-segment rush-hour sensitivity in [0, 1] (1 = most affected).
  double Sensitivity(size_t segment_id) const {
    return sensitivity_.at(segment_id);
  }

  const road::RoadNetwork& network() const { return net_; }

 private:
  const road::RoadNetwork& net_;
  Options options_;
  // Per-segment sensitivity to the morning / evening peaks. Arterials get
  // systematically higher sensitivity: they carry commuter flow.
  std::vector<double> sensitivity_;
  std::vector<double> morning_share_;  // how much of the dip is morning
};

}  // namespace deepod::sim

#endif  // DEEPOD_SIM_TRAFFIC_MODEL_H_
