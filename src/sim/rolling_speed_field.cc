#include "sim/rolling_speed_field.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace deepod::sim {

RollingSpeedField::RollingSpeedField(const road::RoadNetwork& net,
                                     double grid_size_m,
                                     double snapshot_seconds,
                                     const SpeedProvider* baseline,
                                     const Options& options)
    : net_(net),
      baseline_(baseline),
      options_(options),
      grid_size_m_(grid_size_m),
      snapshot_seconds_(snapshot_seconds) {
  if (grid_size_m <= 0.0 || snapshot_seconds <= 0.0) {
    throw std::invalid_argument("RollingSpeedField: non-positive sizes");
  }
  if (options_.max_pending == 0) options_.max_pending = 1;
  // Geometry identical to SpeedMatrixBuilder: same bounding box, same grid
  // arithmetic, same midpoint assignment, same normalisation base — a model
  // trained on builder matrices must read these in the same scale.
  road::Point lo, hi;
  net.BoundingBox(&lo, &hi);
  cols_ = static_cast<size_t>(std::ceil((hi.x - lo.x) / grid_size_m_)) + 1;
  rows_ = static_cast<size_t>(std::ceil((hi.y - lo.y) / grid_size_m_)) + 1;
  uint64_t max_id = 0;
  for (const auto& s : net.segments()) {
    max_id = std::max<uint64_t>(max_id, s.id);
  }
  segment_cell_.assign(static_cast<size_t>(max_id) + 1, -1);
  for (const auto& s : net.segments()) {
    max_speed_ = std::max(max_speed_, s.free_flow_speed);
    const road::Point mid = net.PointAlong(s.id, 0.5);
    const size_t cx = static_cast<size_t>(
        std::clamp((mid.x - lo.x) / grid_size_m_, 0.0,
                   static_cast<double>(cols_ - 1)));
    const size_t cy = static_cast<size_t>(
        std::clamp((mid.y - lo.y) / grid_size_m_, 0.0,
                   static_cast<double>(rows_ - 1)));
    segment_cell_[s.id] = static_cast<int64_t>(cy * cols_ + cx);
  }
  baseline_compatible_ = baseline_ != nullptr && baseline_->rows() == rows_ &&
                         baseline_->cols() == cols_ &&
                         baseline_->snapshot_seconds() == snapshot_seconds_;
}

size_t RollingSpeedField::Ingest(
    std::span<const TripObservation> observations) {
  size_t taken = 0;
  std::lock_guard<std::mutex> lock(pending_mu_);
  for (const TripObservation& obs : observations) {
    const bool known_segment =
        obs.segment_id < segment_cell_.size() &&
        segment_cell_[obs.segment_id] >= 0;
    if (!known_segment || !(obs.speed_mps > 0.0) ||
        !std::isfinite(obs.speed_mps) || !std::isfinite(obs.time)) {
      ++rejected_;
      continue;
    }
    pending_.push_back(obs);
    ++accepted_;
    ++taken;
  }
  if (pending_.size() > options_.max_pending) {
    // Bounded memory under a stalled publisher: drop the oldest pending
    // observations (they would age out of the window soonest anyway).
    pending_.erase(pending_.begin(),
                   pending_.begin() +
                       static_cast<ptrdiff_t>(pending_.size() -
                                              options_.max_pending));
  }
  return taken;
}

size_t RollingSpeedField::Publish() {
  std::vector<TripObservation> batch;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    batch.swap(pending_);
  }
  std::lock_guard<std::mutex> lock(publish_mu_);
  if (batch.empty()) return 0;

  for (const TripObservation& obs : batch) {
    const int64_t idx =
        static_cast<int64_t>(std::floor(obs.time / snapshot_seconds_));
    auto [it, inserted] = accum_.try_emplace(idx);
    if (inserted) it->second.assign(rows_ * cols_, CellAccum{});
    CellAccum& cell =
        it->second[static_cast<size_t>(segment_cell_[obs.segment_id])];
    cell.sum += obs.speed_mps / max_speed_;
    ++cell.count;
  }

  // Roll the window: drop snapshots too far behind the newest observed one.
  if (options_.window_seconds > 0.0 && !accum_.empty()) {
    const int64_t newest = accum_.rbegin()->first;
    const int64_t span = static_cast<int64_t>(
        std::ceil(options_.window_seconds / snapshot_seconds_));
    accum_.erase(accum_.begin(), accum_.lower_bound(newest - span + 1));
  }

  auto table = std::make_shared<Table>();
  table->indices.reserve(accum_.size());
  table->matrices.reserve(accum_.size());
  for (const auto& [idx, cells] : accum_) {
    std::vector<double> matrix(rows_ * cols_, 0.0);
    double total = 0.0;
    size_t observed = 0;
    for (size_t c = 0; c < cells.size(); ++c) {
      if (cells[c].count == 0) continue;
      matrix[c] = cells[c].sum / static_cast<double>(cells[c].count);
      total += matrix[c];
      ++observed;
    }
    const double fill =
        observed > 0 ? total / static_cast<double>(observed) : 0.5;
    std::vector<double> base;
    if (baseline_compatible_) {
      base = baseline_->MatrixAt(static_cast<double>(idx) *
                                 snapshot_seconds_);
    }
    for (size_t c = 0; c < cells.size(); ++c) {
      if (cells[c].count != 0) continue;
      matrix[c] = base.size() == matrix.size() ? base[c] : fill;
    }
    table->indices.push_back(idx);
    table->matrices.push_back(std::move(matrix));
  }
  published_ = std::move(table);  // the atomic flip: readers hold snapshots
  ++publishes_;
  return batch.size();
}

std::shared_ptr<const RollingSpeedField::Table> RollingSpeedField::table()
    const {
  std::lock_guard<std::mutex> lock(publish_mu_);
  return published_;
}

std::vector<double> RollingSpeedField::MatrixAt(temporal::Timestamp t) const {
  const std::shared_ptr<const Table> table = this->table();
  if (!table || table->indices.empty()) {
    if (baseline_ != nullptr) return baseline_->MatrixAt(t);
    return std::vector<double>(rows_ * cols_, 0.5);
  }
  const int64_t want =
      static_cast<int64_t>(std::floor(t / snapshot_seconds_));
  // Last published snapshot at or before `want`; clamp to the earliest.
  auto it = std::upper_bound(table->indices.begin(), table->indices.end(),
                             want);
  const size_t pos =
      it == table->indices.begin()
          ? 0
          : static_cast<size_t>(it - table->indices.begin()) - 1;
  return table->matrices[pos];
}

temporal::Timestamp RollingSpeedField::SnapshotTime(
    temporal::Timestamp t) const {
  const std::shared_ptr<const Table> table = this->table();
  if (!table || table->indices.empty()) {
    if (baseline_ != nullptr) return baseline_->SnapshotTime(t);
    return std::floor(t / snapshot_seconds_) * snapshot_seconds_;
  }
  const int64_t want =
      static_cast<int64_t>(std::floor(t / snapshot_seconds_));
  auto it = std::upper_bound(table->indices.begin(), table->indices.end(),
                             want);
  const size_t pos =
      it == table->indices.begin()
          ? 0
          : static_cast<size_t>(it - table->indices.begin()) - 1;
  return static_cast<double>(table->indices[pos]) * snapshot_seconds_;
}

size_t RollingSpeedField::pending() const {
  std::lock_guard<std::mutex> lock(pending_mu_);
  return pending_.size();
}

uint64_t RollingSpeedField::publishes() const {
  std::lock_guard<std::mutex> lock(publish_mu_);
  return publishes_;
}

size_t RollingSpeedField::published_snapshots() const {
  const std::shared_ptr<const Table> table = this->table();
  return table ? table->indices.size() : 0;
}

uint64_t RollingSpeedField::accepted() const {
  std::lock_guard<std::mutex> lock(pending_mu_);
  return accepted_;
}

uint64_t RollingSpeedField::rejected() const {
  std::lock_guard<std::mutex> lock(pending_mu_);
  return rejected_;
}

}  // namespace deepod::sim
