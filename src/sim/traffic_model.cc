#include "sim/traffic_model.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace deepod::sim {
namespace {

// Smooth bump centred at `centre` hours with the given width (Gaussian).
double Bump(double hour, double centre, double width) {
  const double d = (hour - centre) / width;
  return std::exp(-0.5 * d * d);
}

// Deterministic hash -> standard-normal-ish value (sum of uniforms), used
// for the per-day congestion draws so they need no stored state.
double HashNormal(uint64_t key) {
  double sum = 0.0;
  uint64_t x = key;
  for (int i = 0; i < 4; ++i) {
    x += 0x9e3779b97f4a7c15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    sum += static_cast<double>(z >> 11) * 0x1.0p-53;
  }
  return (sum - 2.0) * std::sqrt(3.0);  // variance of sum of 4 U(0,1) is 1/3
}

}  // namespace

TrafficModel::TrafficModel(const road::RoadNetwork& net)
    : TrafficModel(net, Options{}) {}

TrafficModel::TrafficModel(const road::RoadNetwork& net, Options options)
    : net_(net), options_(options) {
  util::Rng rng(options_.seed);
  sensitivity_.resize(net.num_segments());
  morning_share_.resize(net.num_segments());
  for (size_t i = 0; i < net.num_segments(); ++i) {
    const auto& s = net.segment(i);
    // Arterials 0.6-1.0, locals 0.1-0.7: commuter flow concentrates on the
    // fast roads, so rush hour inverts the route ranking (Fig. 1's lesson).
    if (s.road_class == road::RoadClass::kLocal) {
      sensitivity_[i] = rng.Uniform(0.1, 0.7);
    } else {
      sensitivity_[i] = rng.Uniform(0.6, 1.0);
    }
    // Directionality: some segments suffer mostly in the morning (inbound),
    // others in the evening (outbound).
    morning_share_[i] = rng.Uniform(0.25, 0.75);
  }
}

double TrafficModel::CongestionAt(size_t segment_id,
                                  temporal::Timestamp t) const {
  const double day_seconds = std::fmod(t, temporal::kSecondsPerDay);
  const double hour = day_seconds / temporal::kSecondsPerHour;
  const int day_of_week = static_cast<int>(
      std::fmod(t, temporal::kSecondsPerWeek) / temporal::kSecondsPerDay);
  const bool weekend = day_of_week >= 5;  // t=0 is Monday 00:00

  const double sens = sensitivity_.at(segment_id);
  const double ms = morning_share_.at(segment_id);
  double dip = 0.0;
  if (!weekend) {
    dip += ms * Bump(hour, options_.morning_peak_hour, options_.peak_width_hours);
    dip += (1.0 - ms) *
           Bump(hour, options_.evening_peak_hour, options_.peak_width_hours);
    dip *= 2.0;  // ms + (1-ms) halves the amplitude; restore it
  } else {
    dip += options_.weekend_factor * Bump(hour, 13.0, 3.0);
  }
  const double slowdown = options_.max_rush_slowdown * sens * std::min(dip, 1.0);

  // Day-to-day stochastic congestion (see Options::daily_sigma): one
  // city-wide draw per day plus a local (segment, day) draw, deterministic
  // in (seed, day, segment).
  const uint64_t day = static_cast<uint64_t>(t / temporal::kSecondsPerDay);
  const double city_level =
      std::exp(options_.daily_sigma * HashNormal(day * 1000003ull + options_.seed));
  const double local_level = std::exp(
      options_.segment_daily_sigma *
      HashNormal((day * 1000003ull + segment_id) * 2654435761ull + options_.seed));

  return std::clamp((1.0 - slowdown) / (city_level * local_level), 0.12, 1.0);
}

double TrafficModel::SpeedAt(size_t segment_id, temporal::Timestamp t) const {
  return net_.segment(segment_id).free_flow_speed * CongestionAt(segment_id, t);
}

double TrafficModel::TraversalSeconds(size_t segment_id,
                                      temporal::Timestamp t) const {
  return net_.segment(segment_id).length / SpeedAt(segment_id, t);
}

}  // namespace deepod::sim
