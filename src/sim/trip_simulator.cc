#include "sim/trip_simulator.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace deepod::sim {
namespace {

// Relative demand by hour of day (weekday): commuter peaks at 8 and 18.
double DemandWeight(double hour, bool weekend) {
  auto bump = [](double h, double c, double w) {
    const double d = (h - c) / w;
    return std::exp(-0.5 * d * d);
  };
  if (weekend) {
    return 0.25 + 0.8 * bump(hour, 14.0, 4.0) + 0.3 * bump(hour, 20.0, 2.0);
  }
  return 0.2 + bump(hour, 8.0, 1.5) + bump(hour, 18.0, 1.8) +
         0.45 * bump(hour, 13.0, 3.0);
}

}  // namespace

TripSimulator::TripSimulator(const road::RoadNetwork& net,
                             const TrafficModel& traffic,
                             const WeatherProcess& weather)
    : TripSimulator(net, traffic, weather, Options{}) {}

TripSimulator::TripSimulator(const road::RoadNetwork& net,
                             const TrafficModel& traffic,
                             const WeatherProcess& weather, Options options)
    : net_(net),
      traffic_(traffic),
      weather_(weather),
      options_(options),
      index_(net) {}

temporal::Timestamp TripSimulator::SampleDepartureTime(
    temporal::Timestamp day_start, util::Rng& rng) const {
  const int day_of_week = static_cast<int>(
      std::fmod(day_start, temporal::kSecondsPerWeek) /
      temporal::kSecondsPerDay);
  const bool weekend = day_of_week >= 5;
  // Rejection sampling against the hourly demand envelope.
  for (int attempt = 0; attempt < 1000; ++attempt) {
    const double hour = rng.Uniform(0.0, 24.0);
    if (rng.Uniform() * 1.45 < DemandWeight(hour, weekend)) {
      return day_start + hour * temporal::kSecondsPerHour;
    }
  }
  return day_start + 12.0 * temporal::kSecondsPerHour;  // unreachable in practice
}

double TripSimulator::ExpectedRouteSeconds(const road::Route& route,
                                           temporal::Timestamp depart) const {
  double t = 0.0;
  for (size_t sid : route.segment_ids) {
    t += traffic_.TraversalSeconds(sid, depart + t);
  }
  return t;
}

traj::TripRecord TripSimulator::SimulateTrip(temporal::Timestamp depart,
                                             util::Rng& rng) const {
  // 1. Sample OD endpoints: random segments, random position along them,
  //    rejecting pairs that are too close.
  const size_t num_segments = net_.num_segments();
  size_t origin_seg = 0, dest_seg = 0;
  double origin_ratio = 0.0, dest_ratio = 0.0;
  road::Point origin, destination;
  for (int attempt = 0;; ++attempt) {
    if (attempt > 500) {
      throw std::runtime_error("SimulateTrip: cannot sample a feasible OD pair");
    }
    origin_seg = rng.UniformInt(static_cast<uint64_t>(num_segments));
    dest_seg = rng.UniformInt(static_cast<uint64_t>(num_segments));
    if (origin_seg == dest_seg) continue;
    origin_ratio = rng.Uniform(0.05, 0.95);
    dest_ratio = rng.Uniform(0.05, 0.95);
    origin = net_.PointAlong(origin_seg, origin_ratio);
    destination = net_.PointAlong(dest_seg, dest_ratio);
    if (road::Distance(origin, destination) < options_.min_trip_distance) {
      continue;
    }
    // Route must exist from origin segment head to destination segment tail.
    const auto probe = road::ShortestRoute(
        net_, net_.segment(origin_seg).to, net_.segment(dest_seg).from,
        road::FreeFlowCost);
    if (!probe.segment_ids.empty() ||
        net_.segment(origin_seg).to == net_.segment(dest_seg).from) {
      break;
    }
  }

  // 2. Alternative routes between the segment endpoints, scored by expected
  //    time at departure; stochastic driver choice.
  auto now_cost = [&](const road::Segment& s) {
    return traffic_.TraversalSeconds(s.id, depart);
  };
  auto alts = road::AlternativeRoutes(net_, net_.segment(origin_seg).to,
                                      net_.segment(dest_seg).from, now_cost,
                                      options_.num_route_alternatives);
  road::Route chosen;
  if (alts.empty()) {
    // Degenerate adjacency: origin head == destination tail.
    chosen.segment_ids = {};
  } else {
    std::vector<double> weights(alts.size());
    std::vector<double> minutes(alts.size());
    for (size_t i = 0; i < alts.size(); ++i) {
      minutes[i] = ExpectedRouteSeconds(alts[i], depart) / 60.0;
    }
    const double best = *std::min_element(minutes.begin(), minutes.end());
    for (size_t i = 0; i < alts.size(); ++i) {
      weights[i] =
          std::exp(-(minutes[i] - best) / options_.route_choice_temperature);
    }
    chosen = alts[rng.Categorical(weights)];
  }

  // Full segment route: origin segment + connecting route + dest segment.
  std::vector<size_t> route;
  route.push_back(origin_seg);
  for (size_t sid : chosen.segment_ids) route.push_back(sid);
  route.push_back(dest_seg);
  route.erase(std::unique(route.begin(), route.end()), route.end());

  // 3. Microscopic traversal with noise.
  const double driver_mult =
      std::exp(rng.Normal(0.0, options_.driver_noise_sigma));
  const double weather_mult =
      WeatherProcess::SpeedFactor(weather_.TypeAt(depart));
  traj::TripRecord record;
  record.od.origin = origin;
  record.od.destination = destination;
  record.od.departure_time = depart;
  record.od.origin_segment = origin_seg;
  record.od.dest_segment = dest_seg;
  record.od.origin_ratio = origin_ratio;
  record.od.dest_ratio = dest_ratio;
  record.od.weather_type = weather_.TypeAt(depart);

  double t = depart;
  record.trajectory.origin_ratio = origin_ratio;
  record.trajectory.dest_ratio = dest_ratio;
  for (size_t i = 0; i < route.size(); ++i) {
    const auto& s = net_.segment(route[i]);
    double fraction = 1.0;
    if (route.size() == 1) {
      fraction = std::max(0.01, dest_ratio - origin_ratio);
    } else if (i == 0) {
      fraction = 1.0 - origin_ratio;
    } else if (i + 1 == route.size()) {
      fraction = dest_ratio;
    }
    const double seg_mult =
        std::exp(rng.Normal(0.0, options_.segment_noise_sigma));
    const double speed =
        traffic_.SpeedAt(s.id, t) * weather_mult * driver_mult * seg_mult;
    const double seconds = fraction * s.length / std::max(speed, 0.5);
    traj::PathElement elem;
    elem.segment_id = s.id;
    elem.enter = t;
    t += seconds;
    elem.exit = t;
    record.trajectory.path.push_back(elem);
  }
  record.travel_time = t - depart;
  return record;
}

traj::RawTrajectory TripSimulator::EmitGps(const traj::TripRecord& record,
                                           util::Rng& rng) const {
  traj::RawTrajectory raw;
  if (options_.gps_period <= 0.0 || record.trajectory.empty()) return raw;
  const auto& path = record.trajectory.path;
  // Position at a timestamp: linear within the active segment's travelled
  // span (accounting for partial first/last segments).
  auto position_at = [&](temporal::Timestamp t) -> road::Point {
    for (size_t i = 0; i < path.size(); ++i) {
      if (t <= path[i].exit || i + 1 == path.size()) {
        const auto& e = path[i];
        const double span = std::max(1e-9, e.exit - e.enter);
        const double progress = std::clamp((t - e.enter) / span, 0.0, 1.0);
        double r0 = 0.0, r1 = 1.0;
        if (path.size() == 1) {
          r0 = record.trajectory.origin_ratio;
          r1 = record.trajectory.dest_ratio;
        } else if (i == 0) {
          r0 = record.trajectory.origin_ratio;
        } else if (i + 1 == path.size()) {
          r1 = record.trajectory.dest_ratio;
        }
        return net_.PointAlong(e.segment_id, r0 + (r1 - r0) * progress);
      }
    }
    return net_.PointAlong(path.back().segment_id,
                           record.trajectory.dest_ratio);
  };
  const temporal::Timestamp depart = record.trajectory.departure_time();
  const temporal::Timestamp arrive = record.trajectory.arrival_time();
  for (temporal::Timestamp t = depart; t < arrive; t += options_.gps_period) {
    road::Point p = position_at(t);
    p.x += rng.Normal(0.0, options_.gps_noise_m);
    p.y += rng.Normal(0.0, options_.gps_noise_m);
    raw.points.push_back({p, t});
  }
  road::Point last = position_at(arrive);
  last.x += rng.Normal(0.0, options_.gps_noise_m);
  last.y += rng.Normal(0.0, options_.gps_noise_m);
  raw.points.push_back({last, arrive});
  return raw;
}

}  // namespace deepod::sim
