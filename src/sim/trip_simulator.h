#ifndef DEEPOD_SIM_TRIP_SIMULATOR_H_
#define DEEPOD_SIM_TRIP_SIMULATOR_H_

#include <vector>

#include "road/road_network.h"
#include "road/routing.h"
#include "road/spatial_index.h"
#include "sim/traffic_model.h"
#include "sim/weather.h"
#include "traj/trajectory.h"
#include "util/rng.h"

namespace deepod::sim {

// Microscopic taxi-trip generator. Each trip:
//  1. samples an OD pair (points offset from random segments) and a
//     departure time from a rush-hour-weighted demand profile,
//  2. computes up to k alternative routes and lets the driver pick
//     stochastically — better (faster-now) routes are more likely but not
//     certain, so the same OD pair at the same time can legitimately travel
//     different routes with different durations (the paper's Fig. 1),
//  3. traverses the chosen route through the time-varying congestion +
//     weather speed field with lognormal driver noise, recording exact
//     per-segment entry/exit times (the ground-truth spatio-temporal path),
//  4. optionally emits noisy GPS fixes at a fixed period (to exercise the
//     map matcher the way raw probe data exercises Valhalla in §6.1).
class TripSimulator {
 public:
  struct Options {
    size_t num_route_alternatives = 3;
    // Route-choice softmax temperature over expected minutes; smaller =
    // more rational drivers.
    double route_choice_temperature = 3.0;
    // Lognormal driver speed noise: sigma of log-speed multiplier.
    double driver_noise_sigma = 0.08;
    // Per-segment multiplicative speed jitter.
    double segment_noise_sigma = 0.05;
    // GPS emission period in seconds (3 s for Chengdu/Xi'an, 60 s for
    // Beijing in Table 2); <= 0 disables GPS synthesis.
    double gps_period = 3.0;
    double gps_noise_m = 8.0;
    // Minimum straight-line trip distance (metres).
    double min_trip_distance = 800.0;
  };

  TripSimulator(const road::RoadNetwork& net, const TrafficModel& traffic,
                const WeatherProcess& weather);
  TripSimulator(const road::RoadNetwork& net, const TrafficModel& traffic,
                const WeatherProcess& weather, Options options);

  // Samples a departure timestamp within [day_start, day_start + 1 day)
  // following the demand profile (rush-hour peaks on weekdays).
  temporal::Timestamp SampleDepartureTime(temporal::Timestamp day_start,
                                          util::Rng& rng) const;

  // Generates one complete trip record departing at `depart`. The record's
  // trajectory is the ground-truth matched path.
  traj::TripRecord SimulateTrip(temporal::Timestamp depart, util::Rng& rng) const;

  // Generates the raw GPS trace of a trip record (for map-matching tests).
  traj::RawTrajectory EmitGps(const traj::TripRecord& record,
                              util::Rng& rng) const;

  const road::SpatialIndex& index() const { return index_; }
  const road::RoadNetwork& network() const { return net_; }

 private:
  // Expected traversal time of a route if departing now (quasi-static).
  double ExpectedRouteSeconds(const road::Route& route,
                              temporal::Timestamp depart) const;

  const road::RoadNetwork& net_;
  const TrafficModel& traffic_;
  const WeatherProcess& weather_;
  Options options_;
  road::SpatialIndex index_;
};

}  // namespace deepod::sim

#endif  // DEEPOD_SIM_TRIP_SIMULATOR_H_
