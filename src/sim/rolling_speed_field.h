#ifndef DEEPOD_SIM_ROLLING_SPEED_FIELD_H_
#define DEEPOD_SIM_ROLLING_SPEED_FIELD_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "road/road_network.h"
#include "sim/speed_matrix.h"
#include "temporal/time_slot.h"

namespace deepod::sim {

// One streamed speed observation: a probe vehicle covered `segment_id`
// around time `time` at effective speed `speed_mps`. The server's
// ObserveTrip ingest frame decodes to a span of these.
struct TripObservation {
  uint64_t segment_id = 0;
  temporal::Timestamp time = 0.0;  // seconds, same clock as departures
  double speed_mps = 0.0;
};

// Live speed field over streamed trajectory observations — the serving-side
// answer to "historical trajectories keep arriving". Observations are
// ingested into a pending buffer (cheap, lock-append, called from server
// connection threads); Publish() folds the buffer into windowed per-cell
// accumulators and flips a freshly built snapshot table into the published
// pointer — the same double-buffer/atomic-flip idiom as the EtaService
// ServingState epoch, so readers (model forwards mid-request) always see a
// complete, immutable table and never a half-folded one.
//
// Geometry and normalisation replicate SpeedMatrixBuilder exactly: the same
// bounding box, the same `cols = ceil(extent/grid)+1` grid, the same
// midpoint cell assignment and the same free-flow-max normalisation — so a
// model trained on builder matrices reads rolling matrices in the same
// scale, and a cell's value is the mean observed speed of the observations
// that landed in it.
//
// Fallback layering, per snapshot and per cell:
//  - a cell with observations in a snapshot window serves their mean;
//  - a cell without observations serves the `baseline` provider's value for
//    that cell (the artifact's frozen SnapshotSpeedField, typically) when a
//    baseline is attached and its geometry matches, else the snapshot's
//    observed-cell mean (SpeedMatrixBuilder's empty-cell fill, 0.5 when the
//    snapshot has no observations at all);
//  - a query with no published snapshot at or before it clamps to the
//    earliest published one; with nothing published at all the whole query
//    falls through to the baseline (or a flat 0.5 matrix without one).
//
// IMPORTANT for serving integration: Publish() changes the matrices served
// for snapshot times that may already be memoised inside a model (the ocode
// memo keys on snapshot time, not matrix content) and cached in an
// EtaService. Always follow a Publish with EtaService::BumpEpoch(), which
// drops both in one step. Thread-safe throughout.
struct RollingSpeedFieldOptions {
  // Snapshots older than `window_seconds` behind the newest observed
  // snapshot are dropped at Publish — the "rolling" in the name. 0 keeps
  // everything.
  double window_seconds = 3600.0;
  // Pending-buffer cap: past it, Ingest drops the oldest pending
  // observations first (bounded memory under a publisher outage).
  size_t max_pending = 1u << 20;
};

class RollingSpeedField : public SpeedProvider {
 public:
  using Options = RollingSpeedFieldOptions;

  // Geometry from `net` (must outlive the field). `baseline` is optional
  // and must outlive the field when given.
  RollingSpeedField(const road::RoadNetwork& net, double grid_size_m,
                    double snapshot_seconds,
                    const SpeedProvider* baseline = nullptr,
                    const Options& options = Options());

  // Appends observations to the pending buffer. Observations for unknown
  // segments or non-positive speeds are dropped (counted in the return
  // value of Ingest as not-accepted). Does NOT change what MatrixAt serves
  // — only Publish does.
  size_t Ingest(std::span<const TripObservation> observations);
  void Ingest(const TripObservation& observation) {
    Ingest(std::span<const TripObservation>(&observation, 1));
  }

  // Folds every pending observation into the windowed accumulators,
  // rebuilds the snapshot table and atomically publishes it. Returns the
  // number of observations folded. Cheap when nothing is pending (no flip).
  size_t Publish();

  // SpeedProvider — served from the last published table (see fallback
  // layering above).
  size_t rows() const override { return rows_; }
  size_t cols() const override { return cols_; }
  double snapshot_seconds() const override { return snapshot_seconds_; }
  std::vector<double> MatrixAt(temporal::Timestamp t) const override;
  temporal::Timestamp SnapshotTime(temporal::Timestamp t) const override;

  // Introspection (tests, stats).
  size_t pending() const;
  uint64_t publishes() const;
  size_t published_snapshots() const;
  uint64_t accepted() const;
  uint64_t rejected() const;

 private:
  struct CellAccum {
    double sum = 0.0;  // normalised speeds
    uint64_t count = 0;
  };
  struct Table {
    // snapshot index (= snapshot time / snapshot_seconds) -> row-major
    // matrix, ascending.
    std::vector<int64_t> indices;
    std::vector<std::vector<double>> matrices;
  };

  std::shared_ptr<const Table> table() const;

  const road::RoadNetwork& net_;
  const SpeedProvider* baseline_;
  Options options_;
  double grid_size_m_, snapshot_seconds_;
  size_t rows_ = 0, cols_ = 0;
  double max_speed_ = 1.0;
  std::vector<int64_t> segment_cell_;  // segment id -> cell, -1 = unknown
  bool baseline_compatible_ = false;

  mutable std::mutex pending_mu_;
  std::vector<TripObservation> pending_;
  uint64_t accepted_ = 0;
  uint64_t rejected_ = 0;

  // Publisher state: accumulators + the published pointer. One publisher at
  // a time; readers only touch published_.
  mutable std::mutex publish_mu_;
  std::map<int64_t, std::vector<CellAccum>> accum_;  // snapshot idx -> cells
  std::shared_ptr<const Table> published_;
  uint64_t publishes_ = 0;
};

}  // namespace deepod::sim

#endif  // DEEPOD_SIM_ROLLING_SPEED_FIELD_H_
