#include "sim/speed_matrix.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace deepod::sim {

SpeedMatrixBuilder::SpeedMatrixBuilder(const road::RoadNetwork& net,
                                       const TrafficModel& traffic,
                                       const WeatherProcess& weather,
                                       double grid_size_m,
                                       double snapshot_seconds)
    : net_(net),
      traffic_(traffic),
      weather_(weather),
      grid_size_m_(grid_size_m),
      snapshot_seconds_(snapshot_seconds) {
  if (grid_size_m <= 0.0 || snapshot_seconds <= 0.0) {
    throw std::invalid_argument("SpeedMatrixBuilder: non-positive sizes");
  }
  road::Point hi;
  net.BoundingBox(&lo_, &hi);
  cols_ = static_cast<size_t>(std::ceil((hi.x - lo_.x) / grid_size_m_)) + 1;
  rows_ = static_cast<size_t>(std::ceil((hi.y - lo_.y) / grid_size_m_)) + 1;
  cell_segments_.assign(rows_ * cols_, {});
  for (const auto& s : net.segments()) {
    max_speed_ = std::max(max_speed_, s.free_flow_speed);
    const road::Point mid = net.PointAlong(s.id, 0.5);
    const size_t cx = static_cast<size_t>(
        std::clamp((mid.x - lo_.x) / grid_size_m_, 0.0,
                   static_cast<double>(cols_ - 1)));
    const size_t cy = static_cast<size_t>(
        std::clamp((mid.y - lo_.y) / grid_size_m_, 0.0,
                   static_cast<double>(rows_ - 1)));
    cell_segments_[cy * cols_ + cx].push_back(s.id);
  }
}

temporal::Timestamp SpeedMatrixBuilder::SnapshotTime(
    temporal::Timestamp t) const {
  return std::floor(t / snapshot_seconds_) * snapshot_seconds_;
}

std::vector<double> SpeedMatrixBuilder::MatrixAt(temporal::Timestamp t) const {
  const temporal::Timestamp snap = SnapshotTime(t);
  const long long key = static_cast<long long>(std::llround(snap));
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) return *it->second;
  }
  const double weather_mult =
      WeatherProcess::SpeedFactor(weather_.TypeAt(std::max(0.0, snap)));
  std::vector<double> matrix(rows_ * cols_, 0.0);
  double total = 0.0;
  size_t filled = 0;
  for (size_t c = 0; c < cell_segments_.size(); ++c) {
    const auto& segs = cell_segments_[c];
    if (segs.empty()) continue;
    double mean = 0.0;
    for (size_t sid : segs) mean += traffic_.SpeedAt(sid, snap) * weather_mult;
    mean /= static_cast<double>(segs.size());
    matrix[c] = mean / max_speed_;
    total += matrix[c];
    ++filled;
  }
  const double fill = filled > 0 ? total / static_cast<double>(filled) : 0.5;
  for (size_t c = 0; c < cell_segments_.size(); ++c) {
    if (cell_segments_[c].empty()) matrix[c] = fill;
  }
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    constexpr size_t kMaxCachedSnapshots = 32768;
    if (cache_.size() >= kMaxCachedSnapshots) cache_.clear();
    cache_.emplace(key,
                   std::make_shared<const std::vector<double>>(matrix));
  }
  return matrix;
}

}  // namespace deepod::sim
