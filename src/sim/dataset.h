#ifndef DEEPOD_SIM_DATASET_H_
#define DEEPOD_SIM_DATASET_H_

#include <memory>
#include <string>
#include <vector>

#include "road/city_generator.h"
#include "road/road_network.h"
#include "sim/speed_matrix.h"
#include "sim/traffic_model.h"
#include "sim/trip_simulator.h"
#include "sim/weather.h"
#include "temporal/time_slot.h"
#include "traj/trajectory.h"

namespace deepod::sim {

// A fully materialised evaluation dataset: the city, its traffic and
// weather processes, and chronologically split trips. Mirrors §6.1's
// protocol: the split is 42:7:12 by *time* (first 42 days train, next 7
// validate, last 12 test), and test trips carry no trajectory — only the
// OD input — which is the paper's core constraint.
struct Dataset {
  std::string name;
  road::RoadNetwork network;
  std::unique_ptr<TrafficModel> traffic;
  std::unique_ptr<WeatherProcess> weather;
  std::unique_ptr<SpeedMatrixBuilder> speed_matrices;
  temporal::TimeSlotter slotter{0.0, 300.0};

  std::vector<traj::TripRecord> train;
  std::vector<traj::TripRecord> validation;
  std::vector<traj::TripRecord> test;

  size_t TotalTrips() const {
    return train.size() + validation.size() + test.size();
  }

  // Historical segment sequences of the training trips (the corpus the
  // edge-graph co-occurrence weights are counted over, §4.1).
  std::vector<std::vector<size_t>> TrainSegmentSequences() const;
};

struct DatasetConfig {
  road::CityConfig city;
  size_t trips_per_day = 80;
  // Total horizon in days; split 42:7:12 proportionally.
  size_t num_days = 61;
  double slot_seconds = 300.0;  // Δt = 5 minutes (paper default)
  double speed_grid_m = 200.0;  // §6.1: 200 m x 200 m grids
  uint64_t seed = 42;
};

// Simulates a full dataset. Deterministic in the config.
//
// A built Dataset must stay where it was constructed: traffic, weather and
// speed_matrices hold references to the `network` member, so moving the
// Dataset afterwards (move-assignment in particular) leaves them dangling.
// Direct initialisation from the value overload is safe (guaranteed
// elision); to fill a Dataset that already exists — a member, an outer
// variable assigned in a branch — use the pointer overload, which builds
// in place.
Dataset BuildDataset(const DatasetConfig& config);
void BuildDataset(const DatasetConfig& config, Dataset* out);

// Builds the environment members of `ds` (name, network, traffic, weather,
// speed matrices, slotter) from the config — the deterministic prefix
// shared by BuildDataset and the parallel generator (trip_gen.h).
void InitDatasetEnvironment(const DatasetConfig& config, Dataset* ds);

// Chronological 42:7:12 split (scaled to num_days) of `all` — which must be
// sorted by departure time — into the train/validation/test members. Test
// trajectories are blanked (§6.1: test trips expose only the OD input).
void SplitTripsChronological(std::vector<traj::TripRecord> all,
                             size_t num_days, Dataset* ds);

// The three benchmark datasets at laptop scale (relative sizes follow
// Table 2: Chengdu > Xi'an; Beijing largest with the biggest network).
DatasetConfig ChengduDatasetConfig();
DatasetConfig XianDatasetConfig();
DatasetConfig BeijingDatasetConfig();

// Summary statistics used by the Table 2 bench.
struct DatasetStats {
  size_t num_orders = 0;
  double avg_travel_time = 0.0;
  double avg_num_segments = 0.0;
  double avg_length_m = 0.0;
};
DatasetStats ComputeStats(const Dataset& dataset);

}  // namespace deepod::sim

#endif  // DEEPOD_SIM_DATASET_H_
