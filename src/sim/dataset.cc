#include "sim/dataset.h"

#include <algorithm>
#include <stdexcept>

namespace deepod::sim {

std::vector<std::vector<size_t>> Dataset::TrainSegmentSequences() const {
  std::vector<std::vector<size_t>> sequences;
  sequences.reserve(train.size());
  for (const auto& trip : train) {
    sequences.push_back(trip.trajectory.SegmentIds());
  }
  return sequences;
}

void InitDatasetEnvironment(const DatasetConfig& config, Dataset* ds) {
  ds->name = config.city.name;
  ds->network = road::GenerateCity(config.city);
  ds->traffic = std::make_unique<TrafficModel>(
      ds->network, TrafficModel::Options{.seed = config.seed ^ 0x51u});
  const double horizon =
      static_cast<double>(config.num_days + 1) * temporal::kSecondsPerDay;
  ds->weather = std::make_unique<WeatherProcess>(horizon, config.seed ^ 0x77u);
  ds->speed_matrices = std::make_unique<SpeedMatrixBuilder>(
      ds->network, *ds->traffic, *ds->weather, config.speed_grid_m,
      config.slot_seconds);
  ds->slotter = temporal::TimeSlotter(0.0, config.slot_seconds);
}

Dataset BuildDataset(const DatasetConfig& config) {
  Dataset ds;
  BuildDataset(config, &ds);
  return ds;
}

void BuildDataset(const DatasetConfig& config, Dataset* out) {
  if (config.num_days < 3) {
    throw std::invalid_argument("BuildDataset: need at least 3 days");
  }
  Dataset& ds = *out;
  InitDatasetEnvironment(config, &ds);

  TripSimulator::Options sim_options;
  // Beijing's sparse 1-minute GPS vs 3 s for Chengdu/Xi'an (Table 2).
  sim_options.gps_period = config.city.name == "beijing-sim" ? 60.0 : 3.0;
  TripSimulator simulator(ds.network, *ds.traffic, *ds.weather, sim_options);

  util::Rng rng(config.seed);
  std::vector<traj::TripRecord> all;
  all.reserve(config.trips_per_day * config.num_days);
  for (size_t day = 0; day < config.num_days; ++day) {
    const temporal::Timestamp day_start =
        static_cast<double>(day) * temporal::kSecondsPerDay;
    for (size_t k = 0; k < config.trips_per_day; ++k) {
      const temporal::Timestamp depart =
          simulator.SampleDepartureTime(day_start, rng);
      all.push_back(simulator.SimulateTrip(depart, rng));
    }
  }
  std::sort(all.begin(), all.end(),
            [](const traj::TripRecord& a, const traj::TripRecord& b) {
              return a.od.departure_time < b.od.departure_time;
            });
  SplitTripsChronological(std::move(all), config.num_days, &ds);
}

void SplitTripsChronological(std::vector<traj::TripRecord> all,
                             size_t num_days, Dataset* ds) {
  // Chronological 42:7:12 split scaled to num_days.
  const double total_ratio = 42.0 + 7.0 + 12.0;
  const double train_days = num_days * 42.0 / total_ratio;
  const double val_days = num_days * 7.0 / total_ratio;
  const temporal::Timestamp train_end = train_days * temporal::kSecondsPerDay;
  const temporal::Timestamp val_end =
      (train_days + val_days) * temporal::kSecondsPerDay;
  for (auto& trip : all) {
    if (trip.od.departure_time < train_end) {
      ds->train.push_back(std::move(trip));
    } else if (trip.od.departure_time < val_end) {
      ds->validation.push_back(std::move(trip));
    } else {
      // Test trips expose only the OD input (§6.1: "without historical
      // trajectories"). We blank the trajectory but keep the label.
      trip.trajectory = traj::MatchedTrajectory{};
      ds->test.push_back(std::move(trip));
    }
  }
}

DatasetConfig ChengduDatasetConfig() {
  DatasetConfig c;
  c.city = road::ChengduSimConfig();
  c.trips_per_day = 90;
  c.num_days = 61;
  c.seed = 1001;
  return c;
}

DatasetConfig XianDatasetConfig() {
  DatasetConfig c;
  c.city = road::XianSimConfig();
  c.trips_per_day = 55;
  c.num_days = 61;
  c.seed = 2002;
  return c;
}

DatasetConfig BeijingDatasetConfig() {
  DatasetConfig c;
  c.city = road::BeijingSimConfig();
  c.trips_per_day = 140;
  c.num_days = 61;
  c.seed = 3003;
  return c;
}

DatasetStats ComputeStats(const Dataset& dataset) {
  DatasetStats stats;
  double time_sum = 0.0, seg_sum = 0.0, len_sum = 0.0;
  size_t with_traj = 0;
  auto accumulate = [&](const std::vector<traj::TripRecord>& trips) {
    for (const auto& t : trips) {
      stats.num_orders++;
      time_sum += t.travel_time;
      if (!t.trajectory.empty()) {
        seg_sum += static_cast<double>(t.trajectory.num_segments());
        len_sum += t.trajectory.TravelledLength(dataset.network);
        ++with_traj;
      }
    }
  };
  accumulate(dataset.train);
  accumulate(dataset.validation);
  accumulate(dataset.test);
  if (stats.num_orders > 0) {
    stats.avg_travel_time = time_sum / static_cast<double>(stats.num_orders);
  }
  if (with_traj > 0) {
    stats.avg_num_segments = seg_sum / static_cast<double>(with_traj);
    stats.avg_length_m = len_sum / static_cast<double>(with_traj);
  }
  return stats;
}

}  // namespace deepod::sim
