#ifndef DEEPOD_SIM_WEATHER_H_
#define DEEPOD_SIM_WEATHER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "temporal/time_slot.h"
#include "util/rng.h"

namespace deepod::sim {

// Synthetic weather substitute for the paper's scraped weather records
// (§6.1 uses N_wea = 16 categories). A first-order Markov chain over the
// categories advances once per hour; each category carries a speed factor
// that the trip simulator applies on top of congestion, so weather is a
// genuine (if secondary) signal for the external-features encoder.
class WeatherProcess {
 public:
  static constexpr int kNumTypes = 16;

  // Generates the hourly weather sequence covering [0, horizon] seconds.
  WeatherProcess(temporal::Timestamp horizon, uint64_t seed);

  // Category in [0, kNumTypes) active at time t.
  int TypeAt(temporal::Timestamp t) const;

  // Multiplicative speed effect of the category (<= 1; heavy rain slows).
  static double SpeedFactor(int type);

  // Human-readable label, for examples and logs.
  static std::string TypeName(int type);

  size_t num_hours() const { return sequence_.size(); }

 private:
  std::vector<int> sequence_;  // one entry per hour
};

}  // namespace deepod::sim

#endif  // DEEPOD_SIM_WEATHER_H_
