#include "sim/weather.h"

#include <array>
#include <cmath>
#include <stdexcept>

namespace deepod::sim {
namespace {

// Category order: 0..7 are benign (clear-ish), 8..12 rain of increasing
// intensity, 13..15 severe (storm, snow, fog).
constexpr std::array<double, WeatherProcess::kNumTypes> kSpeedFactors = {
    1.00, 1.00, 0.99, 0.99, 0.98, 0.98, 0.97, 0.97,
    0.94, 0.92, 0.90, 0.87, 0.85, 0.80, 0.75, 0.78};

constexpr std::array<const char*, WeatherProcess::kNumTypes> kNames = {
    "sunny",      "clear",      "mostly-clear", "partly-cloudy",
    "cloudy",     "overcast",   "hazy",         "breezy",
    "drizzle",    "light-rain", "rain",         "showers",
    "heavy-rain", "storm",      "snow",         "fog"};

}  // namespace

WeatherProcess::WeatherProcess(temporal::Timestamp horizon, uint64_t seed) {
  if (horizon <= 0.0) {
    throw std::invalid_argument("WeatherProcess: horizon must be positive");
  }
  util::Rng rng(seed);
  const size_t hours =
      static_cast<size_t>(std::ceil(horizon / temporal::kSecondsPerHour)) + 1;
  sequence_.reserve(hours);
  int state = 0;
  for (size_t h = 0; h < hours; ++h) {
    sequence_.push_back(state);
    // Sticky chain: stay with high probability, otherwise drift to a
    // neighbouring intensity; occasional jumps to severe categories.
    const double u = rng.Uniform();
    if (u < 0.80) {
      // stay
    } else if (u < 0.90) {
      state = std::min(kNumTypes - 1, state + 1);
    } else if (u < 0.985) {
      state = std::max(0, state - 1);
    } else {
      state = static_cast<int>(rng.UniformInt(uint64_t{kNumTypes}));
    }
  }
}

int WeatherProcess::TypeAt(temporal::Timestamp t) const {
  if (t < 0.0) throw std::invalid_argument("WeatherProcess::TypeAt: t < 0");
  const size_t hour = static_cast<size_t>(t / temporal::kSecondsPerHour);
  if (hour >= sequence_.size()) {
    throw std::out_of_range("WeatherProcess::TypeAt: beyond horizon");
  }
  return sequence_[hour];
}

double WeatherProcess::SpeedFactor(int type) {
  if (type < 0 || type >= kNumTypes) {
    throw std::out_of_range("WeatherProcess::SpeedFactor: bad type");
  }
  return kSpeedFactors[static_cast<size_t>(type)];
}

std::string WeatherProcess::TypeName(int type) {
  if (type < 0 || type >= kNumTypes) {
    throw std::out_of_range("WeatherProcess::TypeName: bad type");
  }
  return kNames[static_cast<size_t>(type)];
}

}  // namespace deepod::sim
