#include "sim/snapshot_speed_field.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace deepod::sim {

SnapshotSpeedField::SnapshotSpeedField(size_t rows, size_t cols,
                                       double snapshot_seconds,
                                       std::vector<Snapshot> snapshots)
    : rows_(rows),
      cols_(cols),
      snapshot_seconds_(snapshot_seconds),
      snapshots_(std::move(snapshots)) {
  if (rows_ == 0 || cols_ == 0 || snapshot_seconds_ <= 0.0) {
    throw std::invalid_argument("SnapshotSpeedField: bad dimensions");
  }
  if (snapshots_.empty()) {
    throw std::invalid_argument("SnapshotSpeedField: no snapshots");
  }
  for (size_t i = 0; i < snapshots_.size(); ++i) {
    if (snapshots_[i].matrix.size() != rows_ * cols_) {
      throw std::invalid_argument(
          "SnapshotSpeedField: snapshot matrix size mismatch");
    }
    if (i > 0 && snapshots_[i].index <= snapshots_[i - 1].index) {
      throw std::invalid_argument(
          "SnapshotSpeedField: snapshots must be strictly ascending");
    }
  }
}

SnapshotSpeedField SnapshotSpeedField::Capture(const SpeedProvider& source,
                                               temporal::Timestamp begin,
                                               temporal::Timestamp end) {
  if (end < begin) {
    throw std::invalid_argument("SnapshotSpeedField::Capture: end < begin");
  }
  const double ss = source.snapshot_seconds();
  const auto first =
      static_cast<int64_t>(std::llround(source.SnapshotTime(begin) / ss));
  const auto last =
      static_cast<int64_t>(std::llround(source.SnapshotTime(end) / ss));
  std::vector<Snapshot> snapshots;
  snapshots.reserve(static_cast<size_t>(last - first + 1));
  for (int64_t idx = first; idx <= last; ++idx) {
    Snapshot snap;
    snap.index = idx;
    snap.matrix = source.MatrixAt(static_cast<double>(idx) * ss);
    snapshots.push_back(std::move(snap));
  }
  return SnapshotSpeedField(source.rows(), source.cols(), ss,
                            std::move(snapshots));
}

size_t SnapshotSpeedField::SlotFor(temporal::Timestamp t) const {
  const auto idx =
      static_cast<int64_t>(std::floor(t / snapshot_seconds_));
  // Last stored snapshot with index <= idx (clamped to the window).
  auto it = std::upper_bound(
      snapshots_.begin(), snapshots_.end(), idx,
      [](int64_t value, const Snapshot& s) { return value < s.index; });
  if (it == snapshots_.begin()) return 0;
  return static_cast<size_t>(std::distance(snapshots_.begin(), it)) - 1;
}

std::vector<double> SnapshotSpeedField::MatrixAt(temporal::Timestamp t) const {
  return snapshots_[SlotFor(t)].matrix;
}

temporal::Timestamp SnapshotSpeedField::SnapshotTime(
    temporal::Timestamp t) const {
  return static_cast<double>(snapshots_[SlotFor(t)].index) * snapshot_seconds_;
}

temporal::Timestamp SnapshotSpeedField::first_snapshot_time() const {
  return static_cast<double>(snapshots_.front().index) * snapshot_seconds_;
}

temporal::Timestamp SnapshotSpeedField::last_snapshot_time() const {
  return static_cast<double>(snapshots_.back().index) * snapshot_seconds_;
}

}  // namespace deepod::sim
