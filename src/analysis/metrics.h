#ifndef DEEPOD_ANALYSIS_METRICS_H_
#define DEEPOD_ANALYSIS_METRICS_H_

#include <vector>

namespace deepod::analysis {

// The three evaluation metrics of §6.1:
//   MAE  = (1/N) Σ |y_i - ŷ_i|
//   MAPE = (1/N) Σ |y_i - ŷ_i| / y_i            (in %)
//   MARE = Σ |y_i - ŷ_i| / Σ |y_i|              (in %)
double Mae(const std::vector<double>& truth, const std::vector<double>& pred);
double Mape(const std::vector<double>& truth, const std::vector<double>& pred);
double Mare(const std::vector<double>& truth, const std::vector<double>& pred);

// Per-sample absolute-percentage errors (drives Fig. 11's distribution and
// Fig. 13's worst-case selection).
std::vector<double> PerTripApe(const std::vector<double>& truth,
                               const std::vector<double>& pred);

struct MetricTriple {
  double mae = 0.0;
  double mape = 0.0;  // percent
  double mare = 0.0;  // percent
};
MetricTriple AllMetrics(const std::vector<double>& truth,
                        const std::vector<double>& pred);

}  // namespace deepod::analysis

#endif  // DEEPOD_ANALYSIS_METRICS_H_
