#ifndef DEEPOD_ANALYSIS_TSNE_H_
#define DEEPOD_ANALYSIS_TSNE_H_

#include <vector>

#include "util/rng.h"

namespace deepod::analysis {

// Exact-gradient t-SNE (van der Maaten & Hinton 2008) to a 1-dimensional
// embedding — the projection Fig. 14(b) applies to the trained time-slot
// embeddings before drawing the weekly heat map. Exact pairwise gradients
// are fine at our scale (≤ a few thousand points).
struct TsneOptions {
  double perplexity = 30.0;
  int iterations = 300;
  double learning_rate = 50.0;
  double early_exaggeration = 4.0;
  int exaggeration_iters = 50;
  double momentum = 0.5;
  double final_momentum = 0.8;
  int momentum_switch_iter = 100;
  uint64_t seed = 3;
};

// `points` is row-major n x d. Returns n 1-D coordinates.
std::vector<double> Tsne1d(const std::vector<std::vector<double>>& points,
                           const TsneOptions& options = {});

// Binary-search calibration of per-point Gaussian bandwidths to match the
// target perplexity; returns the row-normalised conditional probabilities
// p_{j|i}. Exposed for testing.
std::vector<std::vector<double>> PerplexityCalibratedAffinities(
    const std::vector<std::vector<double>>& points, double perplexity);

}  // namespace deepod::analysis

#endif  // DEEPOD_ANALYSIS_TSNE_H_
