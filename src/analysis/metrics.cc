#include "analysis/metrics.h"

#include <cmath>
#include <stdexcept>

namespace deepod::analysis {
namespace {

void CheckInput(const std::vector<double>& truth,
                const std::vector<double>& pred) {
  if (truth.size() != pred.size() || truth.empty()) {
    throw std::invalid_argument("metrics: size mismatch or empty input");
  }
}

}  // namespace

double Mae(const std::vector<double>& truth, const std::vector<double>& pred) {
  CheckInput(truth, pred);
  double s = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) s += std::fabs(truth[i] - pred[i]);
  return s / static_cast<double>(truth.size());
}

double Mape(const std::vector<double>& truth, const std::vector<double>& pred) {
  CheckInput(truth, pred);
  double s = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] <= 0.0) throw std::invalid_argument("Mape: non-positive truth");
    s += std::fabs(truth[i] - pred[i]) / truth[i];
  }
  return 100.0 * s / static_cast<double>(truth.size());
}

double Mare(const std::vector<double>& truth, const std::vector<double>& pred) {
  CheckInput(truth, pred);
  double num = 0.0, den = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    num += std::fabs(truth[i] - pred[i]);
    den += std::fabs(truth[i]);
  }
  if (den <= 0.0) throw std::invalid_argument("Mare: zero truth mass");
  return 100.0 * num / den;
}

std::vector<double> PerTripApe(const std::vector<double>& truth,
                               const std::vector<double>& pred) {
  CheckInput(truth, pred);
  std::vector<double> ape(truth.size());
  for (size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] <= 0.0) throw std::invalid_argument("PerTripApe: bad truth");
    ape[i] = 100.0 * std::fabs(truth[i] - pred[i]) / truth[i];
  }
  return ape;
}

MetricTriple AllMetrics(const std::vector<double>& truth,
                        const std::vector<double>& pred) {
  return {Mae(truth, pred), Mape(truth, pred), Mare(truth, pred)};
}

}  // namespace deepod::analysis
