#include "analysis/tsne.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace deepod::analysis {
namespace {

double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

}  // namespace

std::vector<std::vector<double>> PerplexityCalibratedAffinities(
    const std::vector<std::vector<double>>& points, double perplexity) {
  const size_t n = points.size();
  if (n < 2) throw std::invalid_argument("tsne: need at least 2 points");
  const double target_entropy = std::log(perplexity);
  std::vector<std::vector<double>> p(n, std::vector<double>(n, 0.0));
  std::vector<double> dist_row(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      dist_row[j] = i == j ? 0.0 : SquaredDistance(points[i], points[j]);
    }
    // Binary search for beta = 1 / (2 sigma^2) matching the perplexity.
    double beta = 1.0, beta_lo = 0.0, beta_hi = 1e12;
    for (int iter = 0; iter < 60; ++iter) {
      double sum = 0.0, weighted = 0.0;
      for (size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        const double w = std::exp(-beta * dist_row[j]);
        p[i][j] = w;
        sum += w;
        weighted += w * dist_row[j];
      }
      if (sum <= 0.0) {
        beta_hi = beta;
        beta = (beta_lo + beta) / 2.0;
        continue;
      }
      // Shannon entropy of the conditional distribution.
      const double entropy = std::log(sum) + beta * weighted / sum;
      if (std::fabs(entropy - target_entropy) < 1e-5) break;
      if (entropy > target_entropy) {
        beta_lo = beta;
        beta = beta_hi >= 1e12 ? beta * 2.0 : (beta + beta_hi) / 2.0;
      } else {
        beta_hi = beta;
        beta = (beta_lo + beta) / 2.0;
      }
    }
    double sum = 0.0;
    for (size_t j = 0; j < n; ++j) sum += p[i][j];
    if (sum > 0.0) {
      for (size_t j = 0; j < n; ++j) p[i][j] /= sum;
    }
  }
  return p;
}

std::vector<double> Tsne1d(const std::vector<std::vector<double>>& points,
                           const TsneOptions& options) {
  const size_t n = points.size();
  auto p = PerplexityCalibratedAffinities(
      points, std::min(options.perplexity,
                       static_cast<double>(n - 1) / 3.0));
  // Symmetrise: P_ij = (p_{j|i} + p_{i|j}) / 2n, with early exaggeration.
  std::vector<std::vector<double>> pij(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      pij[i][j] = std::max(1e-12, (p[i][j] + p[j][i]) /
                                      (2.0 * static_cast<double>(n)));
    }
  }

  util::Rng rng(options.seed);
  std::vector<double> y(n), velocity(n, 0.0), grad(n);
  for (double& v : y) v = rng.Normal(0.0, 1e-2);

  std::vector<double> q_num(n * n);
  for (int iter = 0; iter < options.iterations; ++iter) {
    const double exaggeration =
        iter < options.exaggeration_iters ? options.early_exaggeration : 1.0;
    // Student-t affinities in the embedding.
    double q_sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        const double d = y[i] - y[j];
        const double w = 1.0 / (1.0 + d * d);
        q_num[i * n + j] = w;
        q_sum += 2.0 * w;
      }
    }
    std::fill(grad.begin(), grad.end(), 0.0);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        const double w = q_num[i * n + j];
        const double qij = std::max(1e-12, w / q_sum);
        const double pp = exaggeration * pij[i][j];
        const double mult = 4.0 * (pp - qij) * w;
        const double d = y[i] - y[j];
        grad[i] += mult * d;
        grad[j] -= mult * d;
      }
    }
    const double momentum = iter < options.momentum_switch_iter
                                ? options.momentum
                                : options.final_momentum;
    for (size_t i = 0; i < n; ++i) {
      velocity[i] = momentum * velocity[i] - options.learning_rate * grad[i];
      y[i] += velocity[i];
    }
    // Re-centre.
    double mean = 0.0;
    for (double v : y) mean += v;
    mean /= static_cast<double>(n);
    for (double& v : y) v -= mean;
  }
  return y;
}

}  // namespace deepod::analysis
