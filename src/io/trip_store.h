#ifndef DEEPOD_IO_TRIP_STORE_H_
#define DEEPOD_IO_TRIP_STORE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "nn/serialize.h"
#include "traj/trajectory.h"

namespace deepod::io {

// Compact columnar binary format for trip records — the on-disk shape the
// million-trip data plane trains from. Unlike the CSV interchange format
// (trip_io.h), which stores points and re-derives the matched OD
// representation on every load, the store persists the matched
// segments/ratios once at generation time and lays every field out as a
// contiguous column so a reader can mmap the file and serve zero-copy
// column scans and O(1) random record access.
//
// Byte layout (version 1, all integers little-endian, every block 8-byte
// aligned; `n` trips, `m` total route elements):
//
//   u32  magic       0xd33b7301 ("deepod trip store, generation 1")
//   u32  version     1
//   u64  n           number of trips
//   u64  m           total path elements across all trips
//   fixed-width column blocks, in this order:
//     f64  depart[n]              od.departure_time
//     f64  origin_x[n] origin_y[n] dest_x[n] dest_y[n]
//     f64  travel_time[n]
//     f64  od_origin_ratio[n] od_dest_ratio[n]
//     f64  traj_origin_ratio[n] traj_dest_ratio[n]
//     u64  route_begin[n+1]       trip i's route = arena [begin[i], begin[i+1])
//     i32  weather[n]             (padded to 8 bytes)
//     u32  origin_seg[n] dest_seg[n]   (0xFFFFFFFF = road::kInvalidId; padded)
//   route arena (struct-of-arrays):
//     u32  seg[m]                 (padded to 8 bytes)
//     f64  enter[m]
//     f64  exit[m]
//   u64  FNV-1a 64 checksum of every preceding byte
//
// The format reuses the nn/serialize typed-error vocabulary (LoadStatus /
// LoadErrorKind / SerializeError): bad magic, bad version, truncation,
// trailing bytes and checksum mismatches are reported before any record is
// handed out. Round-trips are bit-identical: every f64 lands on disk as its
// exact bit pattern, OD-only records (empty route) and kInvalidId matched
// segments are preserved.

inline constexpr uint32_t kTripStoreMagic = 0xd33b7301u;
inline constexpr uint32_t kTripStoreVersion = 1;
// u32 encoding of road::kInvalidId segment ids.
inline constexpr uint32_t kTripStoreInvalidSeg = 0xFFFFFFFFu;

// Serialises trips into one self-contained buffer (header + columns +
// arena + checksum). Throws std::invalid_argument when a segment id is
// neither road::kInvalidId nor representable in 32 bits.
std::vector<uint8_t> SerializeTripStore(std::span<const traj::TripRecord> trips);

// Byte size SerializeTripStore would produce for (num_trips, route_elems).
size_t TripStoreBytes(size_t num_trips, size_t route_elems);

// Writes SerializeTripStore(trips) to `path`. kIoError status on failure.
nn::LoadStatus WriteTripStore(const std::string& path,
                              std::span<const traj::TripRecord> trips);

// Splits `trips` into `num_shards` contiguous chunks
// (util::ThreadPool::ChunkRange split) and writes one store per chunk to
// "<dir>/<prefix>-<k>.trips". Returns the shard paths. Throws
// nn::SerializeError on the first write failure.
std::vector<std::string> WriteTripShards(const std::string& dir,
                                         const std::string& prefix,
                                         std::span<const traj::TripRecord> trips,
                                         size_t num_shards);

// Read-only view of one store file. Open maps the file read-only (mmap;
// a heap read is the fallback when mapping fails) and validates framing +
// checksum up front, so Get/column accessors never fail afterwards. All
// const accessors are safe to call concurrently.
class TripStoreReader {
 public:
  TripStoreReader() = default;
  ~TripStoreReader();
  TripStoreReader(TripStoreReader&& other) noexcept;
  TripStoreReader& operator=(TripStoreReader&& other) noexcept;
  TripStoreReader(const TripStoreReader&) = delete;
  TripStoreReader& operator=(const TripStoreReader&) = delete;

  // Validates and indexes `path`. `verify_checksum = false` skips the
  // full-file checksum pass (one sequential read of the map) for callers
  // that already trust the file. Any error leaves the reader empty.
  nn::LoadStatus Open(const std::string& path, bool verify_checksum = true);
  // Open + throw nn::SerializeError on failure.
  static TripStoreReader OpenOrThrow(const std::string& path,
                                     bool verify_checksum = true);

  bool is_open() const { return base_ != nullptr; }
  // True when the file is served by an actual memory map (vs heap fallback).
  bool mapped() const { return mapped_; }

  size_t size() const { return num_trips_; }
  size_t route_elements() const { return route_elems_; }

  // Materialises record i. Decode reuses `out`'s path capacity — the batch
  // decode path calls it in a loop without reallocating per trip.
  traj::TripRecord Get(size_t i) const;
  void Decode(size_t i, traj::TripRecord* out) const;
  std::vector<traj::TripRecord> ReadAll() const;

  // Zero-copy column views (valid while the reader is open).
  std::span<const double> departs() const { return {depart_, num_trips_}; }
  std::span<const double> travel_times() const {
    return {travel_time_, num_trips_};
  }
  std::span<const uint64_t> route_begins() const {
    return {route_begin_, num_trips_ + 1};
  }

 private:
  void Reset();
  // Binds the typed column pointers into base_; validates framing.
  nn::LoadStatus Index(const std::string& path, bool verify_checksum);

  const uint8_t* base_ = nullptr;
  size_t bytes_ = 0;
  bool mapped_ = false;
  std::vector<uint8_t> heap_;  // fallback storage when mmap fails

  size_t num_trips_ = 0;
  size_t route_elems_ = 0;
  const double* depart_ = nullptr;
  const double* origin_x_ = nullptr;
  const double* origin_y_ = nullptr;
  const double* dest_x_ = nullptr;
  const double* dest_y_ = nullptr;
  const double* travel_time_ = nullptr;
  const double* od_origin_ratio_ = nullptr;
  const double* od_dest_ratio_ = nullptr;
  const double* traj_origin_ratio_ = nullptr;
  const double* traj_dest_ratio_ = nullptr;
  const uint64_t* route_begin_ = nullptr;
  const int32_t* weather_ = nullptr;
  const uint32_t* origin_seg_ = nullptr;
  const uint32_t* dest_seg_ = nullptr;
  const uint32_t* arena_seg_ = nullptr;
  const double* arena_enter_ = nullptr;
  const double* arena_exit_ = nullptr;
};

}  // namespace deepod::io

#endif  // DEEPOD_IO_TRIP_STORE_H_
