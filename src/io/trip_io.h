#ifndef DEEPOD_IO_TRIP_IO_H_
#define DEEPOD_IO_TRIP_IO_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "road/road_network.h"
#include "traj/trajectory.h"

namespace deepod::io {

// CSV interchange for trip records and road networks, so the library can be
// driven by external data (the paper's pipeline starts from taxi-order
// files). Formats are line-oriented with a header row:
//
// Trips:    depart,origin_x,origin_y,dest_x,dest_y,weather,travel_time,
//           route  — `route` is a |-separated list of
//           segment:enter:exit triplets (empty for OD-only records).
//           The matched segments/ratios of the OD input are re-derived from
//           the points at load time via the nearest-segment projection.
// Network:  two sections — "vertices" (id,x,y) then "segments"
//           (id,from,to,length,speed,class).

// --- Road network -----------------------------------------------------------

void WriteNetworkCsv(const road::RoadNetwork& net, std::ostream& out);
void WriteNetworkCsv(const road::RoadNetwork& net, const std::string& path);

// Parses a network written by WriteNetworkCsv. Finalised before return.
road::RoadNetwork ReadNetworkCsv(std::istream& in);
road::RoadNetwork ReadNetworkCsv(const std::string& path);

// --- Trip records ------------------------------------------------------------

void WriteTripsCsv(const std::vector<traj::TripRecord>& trips,
                   std::ostream& out);
void WriteTripsCsv(const std::vector<traj::TripRecord>& trips,
                   const std::string& path);

// Parses trips written by WriteTripsCsv, re-deriving the OD inputs' matched
// segments and position ratios against `net`.
std::vector<traj::TripRecord> ReadTripsCsv(const road::RoadNetwork& net,
                                           std::istream& in);
std::vector<traj::TripRecord> ReadTripsCsv(const road::RoadNetwork& net,
                                           const std::string& path);

}  // namespace deepod::io

#endif  // DEEPOD_IO_TRIP_IO_H_
