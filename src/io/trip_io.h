#ifndef DEEPOD_IO_TRIP_IO_H_
#define DEEPOD_IO_TRIP_IO_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "road/road_network.h"
#include "road/spatial_index.h"
#include "traj/trajectory.h"

namespace deepod::io {

// CSV interchange for trip records and road networks, so the library can be
// driven by external data (the paper's pipeline starts from taxi-order
// files). Formats are line-oriented with a header row:
//
// Trips (current, 12 fields):
//           depart,origin_x,origin_y,dest_x,dest_y,weather,travel_time,
//           origin_seg,origin_ratio,dest_seg,dest_ratio,route
//           — the matched OD representation is persisted at write time
//           (origin_seg/dest_seg are segment ids, -1 for unmatched), so a
//           load performs zero nearest-segment projections. `route` is a
//           |-separated list of segment:enter:exit triplets (empty for
//           OD-only records). Doubles are written in shortest
//           round-trip form (std::to_chars), so write→read is value-exact.
// Trips (legacy, 8 fields — still read): the same without the four matched
//           columns; the matched representation is re-derived from the
//           points against the network's grid spatial index.
// Network:  two sections — "vertices" (id,x,y) then "segments"
//           (id,from,to,length,speed,class).

// --- Road network -----------------------------------------------------------

void WriteNetworkCsv(const road::RoadNetwork& net, std::ostream& out);
void WriteNetworkCsv(const road::RoadNetwork& net, const std::string& path);

// Parses a network written by WriteNetworkCsv. Finalised before return.
road::RoadNetwork ReadNetworkCsv(std::istream& in);
road::RoadNetwork ReadNetworkCsv(const std::string& path);

// --- Trip records ------------------------------------------------------------

void WriteTripsCsv(const std::vector<traj::TripRecord>& trips,
                   std::ostream& out);
void WriteTripsCsv(const std::vector<traj::TripRecord>& trips,
                   const std::string& path);

// Parses trips written by WriteTripsCsv (either header generation). For
// legacy 8-field rows the OD matched representation is re-derived against
// `index` when given, else against a grid index built lazily on the first
// row that needs one — callers ingesting many files against one network
// should pass a shared index.
std::vector<traj::TripRecord> ReadTripsCsv(
    const road::RoadNetwork& net, std::istream& in,
    const road::SpatialIndex* index = nullptr);
std::vector<traj::TripRecord> ReadTripsCsv(
    const road::RoadNetwork& net, const std::string& path,
    const road::SpatialIndex* index = nullptr);

}  // namespace deepod::io

#endif  // DEEPOD_IO_TRIP_IO_H_
