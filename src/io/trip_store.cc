#include "io/trip_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "util/thread_pool.h"

namespace deepod::io {
namespace {

using nn::LoadErrorKind;
using nn::LoadStatus;

uint64_t Fnv1a64(const uint8_t* data, size_t n) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < n; ++i) {
    hash ^= data[i];
    hash *= 0x100000001b3ull;
  }
  return hash;
}

size_t Align8(size_t offset) { return (offset + 7) & ~size_t{7}; }

// Header: magic, version, num_trips, route_elems.
constexpr size_t kHeaderBytes = 4 + 4 + 8 + 8;

// Offsets of every column block for (n trips, m route elements). Mirrored
// exactly by the writer and the reader so there is no offset table on disk.
struct Layout {
  size_t depart, origin_x, origin_y, dest_x, dest_y, travel_time;
  size_t od_origin_ratio, od_dest_ratio, traj_origin_ratio, traj_dest_ratio;
  size_t route_begin, weather, origin_seg, dest_seg;
  size_t arena_seg, arena_enter, arena_exit;
  size_t checksum;  // trailing u64
  size_t total;     // file size in bytes
};

Layout ComputeLayout(size_t n, size_t m) {
  Layout l{};
  size_t at = kHeaderBytes;
  auto block = [&](size_t elem_bytes, size_t count) {
    const size_t offset = at;
    at = Align8(at + elem_bytes * count);
    return offset;
  };
  l.depart = block(8, n);
  l.origin_x = block(8, n);
  l.origin_y = block(8, n);
  l.dest_x = block(8, n);
  l.dest_y = block(8, n);
  l.travel_time = block(8, n);
  l.od_origin_ratio = block(8, n);
  l.od_dest_ratio = block(8, n);
  l.traj_origin_ratio = block(8, n);
  l.traj_dest_ratio = block(8, n);
  l.route_begin = block(8, n + 1);
  l.weather = block(4, n);
  l.origin_seg = block(4, n);
  l.dest_seg = block(4, n);
  l.arena_seg = block(4, m);
  l.arena_enter = block(8, m);
  l.arena_exit = block(8, m);
  l.checksum = at;
  l.total = at + 8;
  return l;
}

uint32_t EncodeSeg(size_t segment_id) {
  if (segment_id == road::kInvalidId) return kTripStoreInvalidSeg;
  if (segment_id >= kTripStoreInvalidSeg) {
    throw std::invalid_argument(
        "trip_store: segment id " + std::to_string(segment_id) +
        " does not fit the 32-bit column");
  }
  return static_cast<uint32_t>(segment_id);
}

size_t DecodeSeg(uint32_t encoded) {
  return encoded == kTripStoreInvalidSeg ? road::kInvalidId
                                         : static_cast<size_t>(encoded);
}

}  // namespace

size_t TripStoreBytes(size_t num_trips, size_t route_elems) {
  return ComputeLayout(num_trips, route_elems).total;
}

std::vector<uint8_t> SerializeTripStore(
    std::span<const traj::TripRecord> trips) {
  const size_t n = trips.size();
  size_t m = 0;
  for (const auto& trip : trips) m += trip.trajectory.path.size();
  const Layout l = ComputeLayout(n, m);
  std::vector<uint8_t> buffer(l.total, 0);
  uint8_t* base = buffer.data();

  const uint32_t magic = kTripStoreMagic;
  const uint32_t version = kTripStoreVersion;
  const uint64_t n64 = n, m64 = m;
  std::memcpy(base + 0, &magic, 4);
  std::memcpy(base + 4, &version, 4);
  std::memcpy(base + 8, &n64, 8);
  std::memcpy(base + 16, &m64, 8);

  auto f64 = [&](size_t offset) { return reinterpret_cast<double*>(base + offset); };
  auto u64 = [&](size_t offset) { return reinterpret_cast<uint64_t*>(base + offset); };
  auto u32 = [&](size_t offset) { return reinterpret_cast<uint32_t*>(base + offset); };
  auto i32 = [&](size_t offset) { return reinterpret_cast<int32_t*>(base + offset); };

  size_t arena_at = 0;
  for (size_t i = 0; i < n; ++i) {
    const traj::TripRecord& t = trips[i];
    f64(l.depart)[i] = t.od.departure_time;
    f64(l.origin_x)[i] = t.od.origin.x;
    f64(l.origin_y)[i] = t.od.origin.y;
    f64(l.dest_x)[i] = t.od.destination.x;
    f64(l.dest_y)[i] = t.od.destination.y;
    f64(l.travel_time)[i] = t.travel_time;
    f64(l.od_origin_ratio)[i] = t.od.origin_ratio;
    f64(l.od_dest_ratio)[i] = t.od.dest_ratio;
    f64(l.traj_origin_ratio)[i] = t.trajectory.origin_ratio;
    f64(l.traj_dest_ratio)[i] = t.trajectory.dest_ratio;
    i32(l.weather)[i] = t.od.weather_type;
    u32(l.origin_seg)[i] = EncodeSeg(t.od.origin_segment);
    u32(l.dest_seg)[i] = EncodeSeg(t.od.dest_segment);
    u64(l.route_begin)[i] = arena_at;
    for (const traj::PathElement& e : t.trajectory.path) {
      u32(l.arena_seg)[arena_at] = EncodeSeg(e.segment_id);
      f64(l.arena_enter)[arena_at] = e.enter;
      f64(l.arena_exit)[arena_at] = e.exit;
      ++arena_at;
    }
  }
  u64(l.route_begin)[n] = arena_at;

  const uint64_t checksum = Fnv1a64(base, l.checksum);
  std::memcpy(base + l.checksum, &checksum, 8);
  return buffer;
}

nn::LoadStatus WriteTripStore(const std::string& path,
                              std::span<const traj::TripRecord> trips) {
  const std::vector<uint8_t> buffer = SerializeTripStore(trips);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return LoadStatus::Error(LoadErrorKind::kIoError,
                             "trip_store: cannot open " + path + " for write");
  }
  out.write(reinterpret_cast<const char*>(buffer.data()),
            static_cast<std::streamsize>(buffer.size()));
  if (!out) {
    return LoadStatus::Error(LoadErrorKind::kIoError,
                             "trip_store: short write to " + path);
  }
  return LoadStatus::Ok();
}

std::vector<std::string> WriteTripShards(
    const std::string& dir, const std::string& prefix,
    std::span<const traj::TripRecord> trips, size_t num_shards) {
  if (num_shards == 0) {
    throw std::invalid_argument("WriteTripShards: num_shards must be > 0");
  }
  std::filesystem::create_directories(dir);
  std::vector<std::string> paths;
  paths.reserve(num_shards);
  for (size_t k = 0; k < num_shards; ++k) {
    const auto [begin, end] =
        util::ThreadPool::ChunkRange(trips.size(), num_shards, k);
    std::string path = dir + "/" + prefix + "-" + std::to_string(k) + ".trips";
    nn::ThrowIfError(WriteTripStore(path, trips.subspan(begin, end - begin)));
    paths.push_back(std::move(path));
  }
  return paths;
}

// --- Reader ------------------------------------------------------------------

TripStoreReader::~TripStoreReader() { Reset(); }

TripStoreReader::TripStoreReader(TripStoreReader&& other) noexcept {
  *this = std::move(other);
}

TripStoreReader& TripStoreReader::operator=(TripStoreReader&& other) noexcept {
  if (this == &other) return *this;
  Reset();
  // Steal the mapping/heap then re-bind the column pointers: the heap's
  // data() survives the vector move, and the mmap base is unchanged, so a
  // straight member copy is valid either way.
  base_ = other.base_;
  bytes_ = other.bytes_;
  mapped_ = other.mapped_;
  heap_ = std::move(other.heap_);
  num_trips_ = other.num_trips_;
  route_elems_ = other.route_elems_;
  depart_ = other.depart_;
  origin_x_ = other.origin_x_;
  origin_y_ = other.origin_y_;
  dest_x_ = other.dest_x_;
  dest_y_ = other.dest_y_;
  travel_time_ = other.travel_time_;
  od_origin_ratio_ = other.od_origin_ratio_;
  od_dest_ratio_ = other.od_dest_ratio_;
  traj_origin_ratio_ = other.traj_origin_ratio_;
  traj_dest_ratio_ = other.traj_dest_ratio_;
  route_begin_ = other.route_begin_;
  weather_ = other.weather_;
  origin_seg_ = other.origin_seg_;
  dest_seg_ = other.dest_seg_;
  arena_seg_ = other.arena_seg_;
  arena_enter_ = other.arena_enter_;
  arena_exit_ = other.arena_exit_;
  other.base_ = nullptr;
  other.bytes_ = 0;
  other.mapped_ = false;
  other.num_trips_ = 0;
  other.route_elems_ = 0;
  return *this;
}

void TripStoreReader::Reset() {
  if (mapped_ && base_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(base_), bytes_);
  }
  base_ = nullptr;
  bytes_ = 0;
  mapped_ = false;
  heap_.clear();
  heap_.shrink_to_fit();
  num_trips_ = 0;
  route_elems_ = 0;
}

nn::LoadStatus TripStoreReader::Open(const std::string& path,
                                     bool verify_checksum) {
  Reset();
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return LoadStatus::Error(LoadErrorKind::kIoError,
                             "trip_store: cannot open " + path);
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return LoadStatus::Error(LoadErrorKind::kIoError,
                             "trip_store: cannot stat " + path);
  }
  bytes_ = static_cast<size_t>(st.st_size);
  void* map = bytes_ > 0
                  ? ::mmap(nullptr, bytes_, PROT_READ, MAP_PRIVATE, fd, 0)
                  : MAP_FAILED;
  if (map != MAP_FAILED) {
    base_ = static_cast<const uint8_t*>(map);
    mapped_ = true;
  } else {
    // Fallback for filesystems without mmap support: plain heap read.
    heap_.resize(bytes_);
    size_t got = 0;
    while (got < bytes_) {
      const ssize_t r = ::read(fd, heap_.data() + got, bytes_ - got);
      if (r <= 0) {
        ::close(fd);
        Reset();
        return LoadStatus::Error(LoadErrorKind::kIoError,
                                 "trip_store: short read of " + path);
      }
      got += static_cast<size_t>(r);
    }
    base_ = heap_.data();
    mapped_ = false;
  }
  ::close(fd);
  LoadStatus status = Index(path, verify_checksum);
  if (!status.ok()) Reset();
  return status;
}

nn::LoadStatus TripStoreReader::Index(const std::string& path,
                                      bool verify_checksum) {
  if (bytes_ < kHeaderBytes + 8) {
    return LoadStatus::Error(
        LoadErrorKind::kTruncated,
        "trip_store: " + path + " is shorter than the header");
  }
  uint32_t magic = 0, version = 0;
  uint64_t n = 0, m = 0;
  std::memcpy(&magic, base_ + 0, 4);
  std::memcpy(&version, base_ + 4, 4);
  std::memcpy(&n, base_ + 8, 8);
  std::memcpy(&m, base_ + 16, 8);
  if (magic != kTripStoreMagic) {
    return LoadStatus::Error(LoadErrorKind::kBadMagic,
                             "trip_store: " + path + " is not a trip store");
  }
  if (version != kTripStoreVersion) {
    return LoadStatus::Error(
        LoadErrorKind::kBadVersion,
        "trip_store: " + path + " has unsupported version " +
            std::to_string(version));
  }
  // Overflow-safe framing check before trusting the counts.
  if (n > bytes_ / 8 || m > bytes_ / 8) {
    return LoadStatus::Error(LoadErrorKind::kTruncated,
                             "trip_store: " + path +
                                 " header counts exceed the file size");
  }
  const Layout l = ComputeLayout(n, m);
  if (bytes_ < l.total) {
    return LoadStatus::Error(
        LoadErrorKind::kTruncated,
        "trip_store: " + path + " ends inside the column blocks (" +
            std::to_string(bytes_) + " of " + std::to_string(l.total) +
            " bytes)");
  }
  if (bytes_ > l.total) {
    return LoadStatus::Error(
        LoadErrorKind::kTrailingBytes,
        "trip_store: " + path + " carries " +
            std::to_string(bytes_ - l.total) + " trailing byte(s)");
  }
  if (verify_checksum) {
    uint64_t stored = 0;
    std::memcpy(&stored, base_ + l.checksum, 8);
    const uint64_t computed = Fnv1a64(base_, l.checksum);
    if (stored != computed) {
      return LoadStatus::Error(LoadErrorKind::kBadChecksum,
                               "trip_store: " + path + " checksum mismatch");
    }
  }
  num_trips_ = n;
  route_elems_ = m;
  auto f64 = [&](size_t offset) {
    return reinterpret_cast<const double*>(base_ + offset);
  };
  depart_ = f64(l.depart);
  origin_x_ = f64(l.origin_x);
  origin_y_ = f64(l.origin_y);
  dest_x_ = f64(l.dest_x);
  dest_y_ = f64(l.dest_y);
  travel_time_ = f64(l.travel_time);
  od_origin_ratio_ = f64(l.od_origin_ratio);
  od_dest_ratio_ = f64(l.od_dest_ratio);
  traj_origin_ratio_ = f64(l.traj_origin_ratio);
  traj_dest_ratio_ = f64(l.traj_dest_ratio);
  route_begin_ = reinterpret_cast<const uint64_t*>(base_ + l.route_begin);
  weather_ = reinterpret_cast<const int32_t*>(base_ + l.weather);
  origin_seg_ = reinterpret_cast<const uint32_t*>(base_ + l.origin_seg);
  dest_seg_ = reinterpret_cast<const uint32_t*>(base_ + l.dest_seg);
  arena_seg_ = reinterpret_cast<const uint32_t*>(base_ + l.arena_seg);
  arena_enter_ = f64(l.arena_enter);
  arena_exit_ = f64(l.arena_exit);
  // The route index must be monotone and end exactly at the arena size, or
  // Decode could read out of bounds.
  uint64_t prev = 0;
  for (size_t i = 0; i <= num_trips_; ++i) {
    if (route_begin_[i] < prev || route_begin_[i] > route_elems_) {
      return LoadStatus::Error(
          LoadErrorKind::kTruncated,
          "trip_store: " + path + " has a corrupt route index at trip " +
              std::to_string(i));
    }
    prev = route_begin_[i];
  }
  if (num_trips_ > 0 && route_begin_[num_trips_] != route_elems_) {
    return LoadStatus::Error(
        LoadErrorKind::kTruncated,
        "trip_store: " + path + " route index does not cover the arena");
  }
  return LoadStatus::Ok();
}

TripStoreReader TripStoreReader::OpenOrThrow(const std::string& path,
                                             bool verify_checksum) {
  TripStoreReader reader;
  nn::ThrowIfError(reader.Open(path, verify_checksum));
  return reader;
}

void TripStoreReader::Decode(size_t i, traj::TripRecord* out) const {
  if (i >= num_trips_) {
    throw std::out_of_range("TripStoreReader::Decode: index " +
                            std::to_string(i) + " >= " +
                            std::to_string(num_trips_));
  }
  out->od.departure_time = depart_[i];
  out->od.origin = {origin_x_[i], origin_y_[i]};
  out->od.destination = {dest_x_[i], dest_y_[i]};
  out->od.weather_type = weather_[i];
  out->od.origin_segment = DecodeSeg(origin_seg_[i]);
  out->od.dest_segment = DecodeSeg(dest_seg_[i]);
  out->od.origin_ratio = od_origin_ratio_[i];
  out->od.dest_ratio = od_dest_ratio_[i];
  out->travel_time = travel_time_[i];
  out->trajectory.origin_ratio = traj_origin_ratio_[i];
  out->trajectory.dest_ratio = traj_dest_ratio_[i];
  const size_t begin = route_begin_[i];
  const size_t end = route_begin_[i + 1];
  out->trajectory.path.resize(end - begin);
  for (size_t e = begin; e < end; ++e) {
    traj::PathElement& elem = out->trajectory.path[e - begin];
    elem.segment_id = DecodeSeg(arena_seg_[e]);
    elem.enter = arena_enter_[e];
    elem.exit = arena_exit_[e];
  }
}

traj::TripRecord TripStoreReader::Get(size_t i) const {
  traj::TripRecord record;
  Decode(i, &record);
  return record;
}

std::vector<traj::TripRecord> TripStoreReader::ReadAll() const {
  std::vector<traj::TripRecord> trips(num_trips_);
  for (size_t i = 0; i < num_trips_; ++i) Decode(i, &trips[i]);
  return trips;
}

}  // namespace deepod::io
