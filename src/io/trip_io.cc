#include "io/trip_io.h"

#include <charconv>
#include <fstream>
#include <memory>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string_view>

namespace deepod::io {
namespace {

std::vector<std::string> SplitCsvLine(const std::string& line, char sep = ',') {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream in(line);
  while (std::getline(in, field, sep)) fields.push_back(field);
  // A trailing separator yields an implicit final empty field.
  if (!line.empty() && line.back() == sep) fields.emplace_back();
  return fields;
}

double ParseDouble(const std::string& s, const char* what) {
  try {
    size_t pos = 0;
    const double v = std::stod(s, &pos);
    if (pos != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error(std::string("trip_io: bad number for ") + what +
                             ": '" + s + "'");
  }
}

size_t ParseIndex(const std::string& s, const char* what) {
  const double v = ParseDouble(s, what);
  if (v < 0 || v != static_cast<double>(static_cast<size_t>(v))) {
    throw std::runtime_error(std::string("trip_io: bad index for ") + what);
  }
  return static_cast<size_t>(v);
}

// --- Fast char-level trip-row parsing ---------------------------------------
// The trip reader is on the million-row ingest path, so it avoids
// istringstream/stod entirely: fields are split as string_views over the
// line buffer and numbers go through std::from_chars.

[[noreturn]] void BadField(const char* what, std::string_view s) {
  throw std::runtime_error(std::string("trip_io: bad number for ") + what +
                           ": '" + std::string(s) + "'");
}

double FastDouble(std::string_view s, const char* what) {
  double v = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) BadField(what, s);
  return v;
}

long long FastInt(std::string_view s, const char* what) {
  long long v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) BadField(what, s);
  return v;
}

// Splits `line` on `sep` into at most `max_fields` views. Returns the count.
size_t SplitView(std::string_view line, char sep, std::string_view* fields,
                 size_t max_fields) {
  size_t count = 0;
  size_t start = 0;
  while (count < max_fields) {
    const size_t pos = line.find(sep, start);
    if (pos == std::string_view::npos) {
      fields[count++] = line.substr(start);
      break;
    }
    fields[count++] = line.substr(start, pos - start);
    start = pos + 1;
  }
  return count;
}

// Shortest-round-trip double formatting (value-exact on re-read).
void AppendDouble(std::string& out, double v) {
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, static_cast<size_t>(ptr - buf));
}

void AppendInt(std::string& out, long long v) {
  char buf[24];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, static_cast<size_t>(ptr - buf));
}

long long SegToCsv(size_t segment_id) {
  return segment_id == road::kInvalidId
             ? -1
             : static_cast<long long>(segment_id);
}

size_t SegFromCsv(std::string_view s, const road::RoadNetwork& net,
                  const char* what) {
  const long long v = FastInt(s, what);
  if (v < 0) return road::kInvalidId;
  if (static_cast<size_t>(v) >= net.num_segments()) {
    throw std::runtime_error("trip_io: segment id out of range");
  }
  return static_cast<size_t>(v);
}

std::ofstream OpenOut(const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("trip_io: cannot open " + path);
  return out;
}

std::ifstream OpenIn(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("trip_io: cannot open " + path);
  return in;
}

}  // namespace

void WriteNetworkCsv(const road::RoadNetwork& net, std::ostream& out) {
  out.precision(15);
  out << "vertices\n";
  out << "id,x,y\n";
  for (size_t v = 0; v < net.num_vertices(); ++v) {
    const auto& vertex = net.vertex(v);
    out << v << "," << vertex.pos.x << "," << vertex.pos.y << "\n";
  }
  out << "segments\n";
  out << "id,from,to,length,speed,class\n";
  for (const auto& s : net.segments()) {
    out << s.id << "," << s.from << "," << s.to << "," << s.length << ","
        << s.free_flow_speed << "," << static_cast<int>(s.road_class) << "\n";
  }
}

void WriteNetworkCsv(const road::RoadNetwork& net, const std::string& path) {
  auto out = OpenOut(path);
  WriteNetworkCsv(net, out);
}

road::RoadNetwork ReadNetworkCsv(std::istream& in) {
  road::RoadNetwork net;
  std::string line;
  if (!std::getline(in, line) || line != "vertices") {
    throw std::runtime_error("trip_io: expected 'vertices' section");
  }
  std::getline(in, line);  // header
  while (std::getline(in, line) && line != "segments") {
    const auto f = SplitCsvLine(line);
    if (f.size() != 3) throw std::runtime_error("trip_io: bad vertex row");
    net.AddVertex({ParseDouble(f[1], "x"), ParseDouble(f[2], "y")});
  }
  if (line != "segments") {
    throw std::runtime_error("trip_io: expected 'segments' section");
  }
  std::getline(in, line);  // header
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto f = SplitCsvLine(line);
    if (f.size() != 6) throw std::runtime_error("trip_io: bad segment row");
    net.AddSegment(ParseIndex(f[1], "from"), ParseIndex(f[2], "to"),
                   ParseDouble(f[4], "speed"),
                   static_cast<road::RoadClass>(
                       static_cast<int>(ParseDouble(f[5], "class"))),
                   ParseDouble(f[3], "length"));
  }
  net.Finalize();
  return net;
}

road::RoadNetwork ReadNetworkCsv(const std::string& path) {
  auto in = OpenIn(path);
  return ReadNetworkCsv(in);
}

void WriteTripsCsv(const std::vector<traj::TripRecord>& trips,
                   std::ostream& out) {
  out << "depart,origin_x,origin_y,dest_x,dest_y,weather,travel_time,"
         "origin_seg,origin_ratio,dest_seg,dest_ratio,route\n";
  std::string row;
  for (const auto& trip : trips) {
    row.clear();
    AppendDouble(row, trip.od.departure_time);
    row.push_back(',');
    AppendDouble(row, trip.od.origin.x);
    row.push_back(',');
    AppendDouble(row, trip.od.origin.y);
    row.push_back(',');
    AppendDouble(row, trip.od.destination.x);
    row.push_back(',');
    AppendDouble(row, trip.od.destination.y);
    row.push_back(',');
    AppendInt(row, trip.od.weather_type);
    row.push_back(',');
    AppendDouble(row, trip.travel_time);
    row.push_back(',');
    AppendInt(row, SegToCsv(trip.od.origin_segment));
    row.push_back(',');
    AppendDouble(row, trip.od.origin_ratio);
    row.push_back(',');
    AppendInt(row, SegToCsv(trip.od.dest_segment));
    row.push_back(',');
    AppendDouble(row, trip.od.dest_ratio);
    row.push_back(',');
    for (size_t i = 0; i < trip.trajectory.path.size(); ++i) {
      const auto& e = trip.trajectory.path[i];
      if (i) row.push_back('|');
      AppendInt(row, static_cast<long long>(e.segment_id));
      row.push_back(':');
      AppendDouble(row, e.enter);
      row.push_back(':');
      AppendDouble(row, e.exit);
    }
    row.push_back('\n');
    out.write(row.data(), static_cast<std::streamsize>(row.size()));
  }
}

void WriteTripsCsv(const std::vector<traj::TripRecord>& trips,
                   const std::string& path) {
  auto out = OpenOut(path);
  WriteTripsCsv(trips, out);
}

std::vector<traj::TripRecord> ReadTripsCsv(const road::RoadNetwork& net,
                                           std::istream& in,
                                           const road::SpatialIndex* index) {
  std::vector<traj::TripRecord> trips;
  std::string line;
  std::getline(in, line);  // header
  // The header row tells the generations apart: the current format carries
  // the matched OD columns, the legacy one re-derives them per row.
  const bool has_matched = line.find("origin_seg") != std::string::npos;
  // Built on demand for legacy rows when the caller shared no index.
  std::unique_ptr<road::SpatialIndex> lazy_index;
  const size_t num_fields = has_matched ? 12 : 8;
  std::string_view fields[12];
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (SplitView(line, ',', fields, num_fields) != num_fields) {
      throw std::runtime_error("trip_io: bad trip row");
    }
    traj::TripRecord trip;
    trip.od.departure_time = FastDouble(fields[0], "depart");
    trip.od.origin = {FastDouble(fields[1], "origin_x"),
                      FastDouble(fields[2], "origin_y")};
    trip.od.destination = {FastDouble(fields[3], "dest_x"),
                           FastDouble(fields[4], "dest_y")};
    trip.od.weather_type = static_cast<int>(FastInt(fields[5], "weather"));
    trip.travel_time = FastDouble(fields[6], "travel_time");
    // Route, if present.
    const std::string_view route = fields[num_fields - 1];
    if (!route.empty()) {
      size_t start = 0;
      while (start <= route.size()) {
        const size_t bar = route.find('|', start);
        const std::string_view triplet =
            route.substr(start, bar == std::string_view::npos ? bar
                                                              : bar - start);
        std::string_view parts[3];
        if (SplitView(triplet, ':', parts, 3) != 3) {
          throw std::runtime_error("trip_io: bad route");
        }
        traj::PathElement e;
        const long long seg = FastInt(parts[0], "segment");
        if (seg < 0 || static_cast<size_t>(seg) >= net.num_segments()) {
          throw std::runtime_error("trip_io: segment id out of range");
        }
        e.segment_id = static_cast<size_t>(seg);
        e.enter = FastDouble(parts[1], "enter");
        e.exit = FastDouble(parts[2], "exit");
        trip.trajectory.path.push_back(e);
        if (bar == std::string_view::npos) break;
        start = bar + 1;
      }
    }
    if (has_matched) {
      trip.od.origin_segment = SegFromCsv(fields[7], net, "origin_seg");
      trip.od.origin_ratio = FastDouble(fields[8], "origin_ratio");
      trip.od.dest_segment = SegFromCsv(fields[9], net, "dest_seg");
      trip.od.dest_ratio = FastDouble(fields[10], "dest_ratio");
      trip.trajectory.origin_ratio = trip.od.origin_ratio;
      trip.trajectory.dest_ratio = trip.od.dest_ratio;
    } else {
      // Legacy row: re-derive the matched representation by projecting the
      // raw points onto the network's grid index.
      if (index == nullptr) {
        if (lazy_index == nullptr) {
          lazy_index = std::make_unique<road::SpatialIndex>(net);
        }
        index = lazy_index.get();
      }
      const auto origin_proj = index->Nearest(trip.od.origin);
      const auto dest_proj = index->Nearest(trip.od.destination);
      trip.od.origin_segment = origin_proj.segment_id;
      trip.od.origin_ratio = origin_proj.ratio;
      trip.od.dest_segment = dest_proj.segment_id;
      trip.od.dest_ratio = dest_proj.ratio;
      trip.trajectory.origin_ratio = origin_proj.ratio;
      trip.trajectory.dest_ratio = dest_proj.ratio;
    }
    trips.push_back(std::move(trip));
  }
  return trips;
}

std::vector<traj::TripRecord> ReadTripsCsv(const road::RoadNetwork& net,
                                           const std::string& path,
                                           const road::SpatialIndex* index) {
  auto in = OpenIn(path);
  return ReadTripsCsv(net, in, index);
}

}  // namespace deepod::io
