#include "io/trip_io.h"

#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "road/spatial_index.h"

namespace deepod::io {
namespace {

std::vector<std::string> SplitCsvLine(const std::string& line, char sep = ',') {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream in(line);
  while (std::getline(in, field, sep)) fields.push_back(field);
  // A trailing separator yields an implicit final empty field.
  if (!line.empty() && line.back() == sep) fields.emplace_back();
  return fields;
}

double ParseDouble(const std::string& s, const char* what) {
  try {
    size_t pos = 0;
    const double v = std::stod(s, &pos);
    if (pos != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error(std::string("trip_io: bad number for ") + what +
                             ": '" + s + "'");
  }
}

size_t ParseIndex(const std::string& s, const char* what) {
  const double v = ParseDouble(s, what);
  if (v < 0 || v != static_cast<double>(static_cast<size_t>(v))) {
    throw std::runtime_error(std::string("trip_io: bad index for ") + what);
  }
  return static_cast<size_t>(v);
}

std::ofstream OpenOut(const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("trip_io: cannot open " + path);
  return out;
}

std::ifstream OpenIn(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("trip_io: cannot open " + path);
  return in;
}

}  // namespace

void WriteNetworkCsv(const road::RoadNetwork& net, std::ostream& out) {
  out.precision(15);
  out << "vertices\n";
  out << "id,x,y\n";
  for (size_t v = 0; v < net.num_vertices(); ++v) {
    const auto& vertex = net.vertex(v);
    out << v << "," << vertex.pos.x << "," << vertex.pos.y << "\n";
  }
  out << "segments\n";
  out << "id,from,to,length,speed,class\n";
  for (const auto& s : net.segments()) {
    out << s.id << "," << s.from << "," << s.to << "," << s.length << ","
        << s.free_flow_speed << "," << static_cast<int>(s.road_class) << "\n";
  }
}

void WriteNetworkCsv(const road::RoadNetwork& net, const std::string& path) {
  auto out = OpenOut(path);
  WriteNetworkCsv(net, out);
}

road::RoadNetwork ReadNetworkCsv(std::istream& in) {
  road::RoadNetwork net;
  std::string line;
  if (!std::getline(in, line) || line != "vertices") {
    throw std::runtime_error("trip_io: expected 'vertices' section");
  }
  std::getline(in, line);  // header
  while (std::getline(in, line) && line != "segments") {
    const auto f = SplitCsvLine(line);
    if (f.size() != 3) throw std::runtime_error("trip_io: bad vertex row");
    net.AddVertex({ParseDouble(f[1], "x"), ParseDouble(f[2], "y")});
  }
  if (line != "segments") {
    throw std::runtime_error("trip_io: expected 'segments' section");
  }
  std::getline(in, line);  // header
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto f = SplitCsvLine(line);
    if (f.size() != 6) throw std::runtime_error("trip_io: bad segment row");
    net.AddSegment(ParseIndex(f[1], "from"), ParseIndex(f[2], "to"),
                   ParseDouble(f[4], "speed"),
                   static_cast<road::RoadClass>(
                       static_cast<int>(ParseDouble(f[5], "class"))),
                   ParseDouble(f[3], "length"));
  }
  net.Finalize();
  return net;
}

road::RoadNetwork ReadNetworkCsv(const std::string& path) {
  auto in = OpenIn(path);
  return ReadNetworkCsv(in);
}

void WriteTripsCsv(const std::vector<traj::TripRecord>& trips,
                   std::ostream& out) {
  out.precision(15);
  out << "depart,origin_x,origin_y,dest_x,dest_y,weather,travel_time,route\n";
  for (const auto& trip : trips) {
    out << trip.od.departure_time << "," << trip.od.origin.x << ","
        << trip.od.origin.y << "," << trip.od.destination.x << ","
        << trip.od.destination.y << "," << trip.od.weather_type << ","
        << trip.travel_time << ",";
    for (size_t i = 0; i < trip.trajectory.path.size(); ++i) {
      const auto& e = trip.trajectory.path[i];
      if (i) out << "|";
      out << e.segment_id << ":" << e.enter << ":" << e.exit;
    }
    out << "\n";
  }
}

void WriteTripsCsv(const std::vector<traj::TripRecord>& trips,
                   const std::string& path) {
  auto out = OpenOut(path);
  WriteTripsCsv(trips, out);
}

std::vector<traj::TripRecord> ReadTripsCsv(const road::RoadNetwork& net,
                                           std::istream& in) {
  const road::SpatialIndex index(net);
  std::vector<traj::TripRecord> trips;
  std::string line;
  std::getline(in, line);  // header
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto f = SplitCsvLine(line);
    if (f.size() != 8) throw std::runtime_error("trip_io: bad trip row");
    traj::TripRecord trip;
    trip.od.departure_time = ParseDouble(f[0], "depart");
    trip.od.origin = {ParseDouble(f[1], "origin_x"),
                      ParseDouble(f[2], "origin_y")};
    trip.od.destination = {ParseDouble(f[3], "dest_x"),
                           ParseDouble(f[4], "dest_y")};
    trip.od.weather_type = static_cast<int>(ParseDouble(f[5], "weather"));
    trip.travel_time = ParseDouble(f[6], "travel_time");
    // Route, if present.
    if (!f[7].empty()) {
      for (const auto& triplet : SplitCsvLine(f[7], '|')) {
        const auto parts = SplitCsvLine(triplet, ':');
        if (parts.size() != 3) throw std::runtime_error("trip_io: bad route");
        traj::PathElement e;
        e.segment_id = ParseIndex(parts[0], "segment");
        if (e.segment_id >= net.num_segments()) {
          throw std::runtime_error("trip_io: segment id out of range");
        }
        e.enter = ParseDouble(parts[1], "enter");
        e.exit = ParseDouble(parts[2], "exit");
        trip.trajectory.path.push_back(e);
      }
    }
    // Re-derive the OD input's matched representation (and the trajectory's
    // position ratios) by projecting the raw points.
    const auto origin_proj = index.Nearest(trip.od.origin);
    const auto dest_proj = index.Nearest(trip.od.destination);
    trip.od.origin_segment = origin_proj.segment_id;
    trip.od.origin_ratio = origin_proj.ratio;
    trip.od.dest_segment = dest_proj.segment_id;
    trip.od.dest_ratio = dest_proj.ratio;
    trip.trajectory.origin_ratio = origin_proj.ratio;
    trip.trajectory.dest_ratio = dest_proj.ratio;
    trips.push_back(std::move(trip));
  }
  return trips;
}

std::vector<traj::TripRecord> ReadTripsCsv(const road::RoadNetwork& net,
                                           const std::string& path) {
  auto in = OpenIn(path);
  return ReadTripsCsv(net, in);
}

}  // namespace deepod::io
