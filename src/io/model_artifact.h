#ifndef DEEPOD_IO_MODEL_ARTIFACT_H_
#define DEEPOD_IO_MODEL_ARTIFACT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "baselines/od_oracle.h"
#include "baselines/path_tte.h"
#include "core/deepod_model.h"
#include "nn/quant.h"
#include "road/road_network.h"
#include "sim/snapshot_speed_field.h"

namespace deepod::io {

// A model artifact is one self-describing, checksummed state-dict file (the
// nn/serialize v2 format) holding everything serving needs besides the road
// network itself:
//
//   artifact.version     format generation of the entry layout (currently 2;
//                        version-1 artifacts still load — they simply lack
//                        the entries below this line)
//   artifact.network_id  fleet routing id of the network the model was
//                        trained on (v2; absent in v1 = id 0)
//   config.*             one scalar per DeepOdConfig field
//   model.*              every parameter, BatchNorm buffer and the time scale
//   speed.*              the frozen speed field (optional: rows/cols/
//                        snapshot_seconds scalars, snapshot indices, matrices)
//   oracle.*             the OD-histogram fallback oracle (optional, v2)
//   linkmean.*           the link-mean PathTTE fallback (optional, v2)
//
// LoadModelArtifact reconstructs a predict-only DeepOdModel from the
// artifact plus a road network alone — no training dataset, traffic process
// or trajectory store in memory — and its predictions are bit-identical to
// the model that was saved. See DESIGN.md, "Model lifecycle".

// Options for the quantised predict-only path (nn/quant.h). On write,
// `quant` selects the storage dtype of the weight records (f16 or per-row
// int8; everything else stays f64 and all-f64 artifacts keep the v2 byte
// layout). On load, `quant` requests fake-quantisation of an fp64 artifact's
// weights at load time — useful for evaluating a quant tier without
// rewriting the artifact. Quantisation is serving-only: a quantised model's
// predictions match the fp64 goldens within an MAE budget, never
// bit-identically.
struct ArtifactOptions {
  nn::QuantMode quant = nn::QuantMode::kNone;
  // Fleet routing id stamped into the artifact on write (ignored on load —
  // the stored id is authoritative there).
  uint32_t network_id = 0;
  // Fallback estimators to embed on write (finalized; borrowed for the
  // duration of the call). Null skips the records, as with `speed`.
  baselines::OdOracle* oracle = nullptr;
  baselines::LinkMeanEstimator* link_mean = nullptr;
};

// The deserialised serving bundle. Move-only; `model` references `speed`
// (and the network passed to LoadModelArtifact), so keep the bundle (and
// that network) alive as long as the model is used. Members are ordered so
// the model is destroyed before the speed field it points at.
struct ServingModel {
  core::DeepOdConfig config;
  std::unique_ptr<sim::SnapshotSpeedField> speed;  // null if not captured
  std::unique_ptr<core::DeepOdModel> model;
  // Effective weight quantisation of `model`: the mode requested at load
  // time, or — when none was requested — the mode the artifact's records
  // were stored in (kNone for a plain fp64 artifact).
  nn::QuantMode quant = nn::QuantMode::kNone;
  // Fleet routing id the artifact was written for (0 for v1 artifacts).
  uint32_t network_id = 0;
  // Fallback estimators, when the artifact carries them (v2; null
  // otherwise). Independent of `model` — safe to move out.
  std::unique_ptr<baselines::OdOracle> oracle;
  std::unique_ptr<baselines::LinkMeanEstimator> link_mean;
};

// A model-less fallback bundle: the oracle tier alone, loadable before any
// trained model exists for the city (serve::FleetRouter's cold-shard path).
struct OracleBundle {
  uint32_t network_id = 0;
  std::unique_ptr<baselines::OdOracle> oracle;
  std::unique_ptr<baselines::LinkMeanEstimator> link_mean;
};

// Writes the artifact for `model`, embedding `speed` when non-null (pass
// the frozen field covering the serving horizon; null is valid for models
// trained without external features). Throws nn::SerializeError on I/O
// failure.
void WriteModelArtifact(const std::string& path, core::DeepOdModel& model,
                        const sim::SnapshotSpeedField* speed);
void WriteModelArtifact(const std::string& path, core::DeepOdModel& model,
                        const sim::SnapshotSpeedField* speed,
                        const ArtifactOptions& options);

// Reads an artifact and stands up a predict-only model against `network`
// (which must be the network the model was trained on — the embedding table
// size is validated against it). Throws nn::SerializeError with a typed
// status on a truncated/corrupt file, an unsupported artifact version or a
// config/shape mismatch; a failed load never returns a half-written model.
// Quantised (v3) artifacts dequantise into fp64 storage on load, so every
// kernel tier serves them unchanged; options.quant additionally
// fake-quantises fp64 weights at load time.
ServingModel LoadModelArtifact(const std::string& path,
                               const road::RoadNetwork& network);
ServingModel LoadModelArtifact(const std::string& path,
                               const road::RoadNetwork& network,
                               const ArtifactOptions& options);

// Writes / reads a standalone oracle artifact (version + network_id +
// oracle.* + linkmean.* records, no model). Either estimator may be null on
// write; absent records load as null. Throws nn::SerializeError like the
// model-artifact functions.
void WriteOracleArtifact(const std::string& path, uint32_t network_id,
                         baselines::OdOracle* oracle,
                         baselines::LinkMeanEstimator* link_mean);
OracleBundle LoadOracleArtifact(const std::string& path);

}  // namespace deepod::io

#endif  // DEEPOD_IO_MODEL_ARTIFACT_H_
