#ifndef DEEPOD_IO_MODEL_ARTIFACT_H_
#define DEEPOD_IO_MODEL_ARTIFACT_H_

#include <memory>
#include <string>

#include "core/deepod_model.h"
#include "nn/quant.h"
#include "road/road_network.h"
#include "sim/snapshot_speed_field.h"

namespace deepod::io {

// A model artifact is one self-describing, checksummed state-dict file (the
// nn/serialize v2 format) holding everything serving needs besides the road
// network itself:
//
//   artifact.version   format generation of the entry layout (currently 1)
//   config.*           one scalar per DeepOdConfig field
//   model.*            every parameter, BatchNorm buffer and the time scale
//   speed.*            the frozen speed field (optional: rows/cols/
//                      snapshot_seconds scalars, snapshot indices, matrices)
//
// LoadModelArtifact reconstructs a predict-only DeepOdModel from the
// artifact plus a road network alone — no training dataset, traffic process
// or trajectory store in memory — and its predictions are bit-identical to
// the model that was saved. See DESIGN.md, "Model lifecycle".

// Options for the quantised predict-only path (nn/quant.h). On write,
// `quant` selects the storage dtype of the weight records (f16 or per-row
// int8; everything else stays f64 and all-f64 artifacts keep the v2 byte
// layout). On load, `quant` requests fake-quantisation of an fp64 artifact's
// weights at load time — useful for evaluating a quant tier without
// rewriting the artifact. Quantisation is serving-only: a quantised model's
// predictions match the fp64 goldens within an MAE budget, never
// bit-identically.
struct ArtifactOptions {
  nn::QuantMode quant = nn::QuantMode::kNone;
};

// The deserialised serving bundle. Move-only; `model` references `speed`
// (and the network passed to LoadModelArtifact), so keep the bundle (and
// that network) alive as long as the model is used. Members are ordered so
// the model is destroyed before the speed field it points at.
struct ServingModel {
  core::DeepOdConfig config;
  std::unique_ptr<sim::SnapshotSpeedField> speed;  // null if not captured
  std::unique_ptr<core::DeepOdModel> model;
  // Effective weight quantisation of `model`: the mode requested at load
  // time, or — when none was requested — the mode the artifact's records
  // were stored in (kNone for a plain fp64 artifact).
  nn::QuantMode quant = nn::QuantMode::kNone;
};

// Writes the artifact for `model`, embedding `speed` when non-null (pass
// the frozen field covering the serving horizon; null is valid for models
// trained without external features). Throws nn::SerializeError on I/O
// failure.
void WriteModelArtifact(const std::string& path, core::DeepOdModel& model,
                        const sim::SnapshotSpeedField* speed);
void WriteModelArtifact(const std::string& path, core::DeepOdModel& model,
                        const sim::SnapshotSpeedField* speed,
                        const ArtifactOptions& options);

// Reads an artifact and stands up a predict-only model against `network`
// (which must be the network the model was trained on — the embedding table
// size is validated against it). Throws nn::SerializeError with a typed
// status on a truncated/corrupt file, an unsupported artifact version or a
// config/shape mismatch; a failed load never returns a half-written model.
// Quantised (v3) artifacts dequantise into fp64 storage on load, so every
// kernel tier serves them unchanged; options.quant additionally
// fake-quantises fp64 weights at load time.
ServingModel LoadModelArtifact(const std::string& path,
                               const road::RoadNetwork& network);
ServingModel LoadModelArtifact(const std::string& path,
                               const road::RoadNetwork& network,
                               const ArtifactOptions& options);

}  // namespace deepod::io

#endif  // DEEPOD_IO_MODEL_ARTIFACT_H_
