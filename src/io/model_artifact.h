#ifndef DEEPOD_IO_MODEL_ARTIFACT_H_
#define DEEPOD_IO_MODEL_ARTIFACT_H_

#include <memory>
#include <string>

#include "core/deepod_model.h"
#include "road/road_network.h"
#include "sim/snapshot_speed_field.h"

namespace deepod::io {

// A model artifact is one self-describing, checksummed state-dict file (the
// nn/serialize v2 format) holding everything serving needs besides the road
// network itself:
//
//   artifact.version   format generation of the entry layout (currently 1)
//   config.*           one scalar per DeepOdConfig field
//   model.*            every parameter, BatchNorm buffer and the time scale
//   speed.*            the frozen speed field (optional: rows/cols/
//                      snapshot_seconds scalars, snapshot indices, matrices)
//
// LoadModelArtifact reconstructs a predict-only DeepOdModel from the
// artifact plus a road network alone — no training dataset, traffic process
// or trajectory store in memory — and its predictions are bit-identical to
// the model that was saved. See DESIGN.md, "Model lifecycle".

// The deserialised serving bundle. Move-only; `model` references `speed`
// (and the network passed to LoadModelArtifact), so keep the bundle (and
// that network) alive as long as the model is used. Members are ordered so
// the model is destroyed before the speed field it points at.
struct ServingModel {
  core::DeepOdConfig config;
  std::unique_ptr<sim::SnapshotSpeedField> speed;  // null if not captured
  std::unique_ptr<core::DeepOdModel> model;
};

// Writes the artifact for `model`, embedding `speed` when non-null (pass
// the frozen field covering the serving horizon; null is valid for models
// trained without external features). Throws nn::SerializeError on I/O
// failure.
void WriteModelArtifact(const std::string& path, core::DeepOdModel& model,
                        const sim::SnapshotSpeedField* speed);

// Reads an artifact and stands up a predict-only model against `network`
// (which must be the network the model was trained on — the embedding table
// size is validated against it). Throws nn::SerializeError with a typed
// status on a truncated/corrupt file, an unsupported artifact version or a
// config/shape mismatch; a failed load never returns a half-written model.
ServingModel LoadModelArtifact(const std::string& path,
                               const road::RoadNetwork& network);

}  // namespace deepod::io

#endif  // DEEPOD_IO_MODEL_ARTIFACT_H_
