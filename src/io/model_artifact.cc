#include "io/model_artifact.h"

#include <cmath>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "nn/serialize.h"

namespace deepod::io {
namespace {

// v1: version + config.* + model.* + optional speed.*.
// v2: adds artifact.network_id and the optional oracle.* / linkmean.*
// fallback-estimator blocks. v1 artifacts still load (network_id 0, no
// fallback estimators); new artifacts are always written as v2.
constexpr double kArtifactVersion = 2.0;
constexpr double kMinArtifactVersion = 1.0;

// The config snapshot as (field name, value) pairs. Enum fields are stored
// as their integer values; the seed is stored as a double (exact below
// 2^53, and only reproduction metadata — predictions never read it).
std::vector<std::pair<const char*, double>> ConfigFields(
    const core::DeepOdConfig& c) {
  return {
      {"ds", static_cast<double>(c.ds)},
      {"dt", static_cast<double>(c.dt)},
      {"dm1", static_cast<double>(c.dm1)},
      {"dm2", static_cast<double>(c.dm2)},
      {"dm3", static_cast<double>(c.dm3)},
      {"dm4", static_cast<double>(c.dm4)},
      {"dm5", static_cast<double>(c.dm5)},
      {"dm6", static_cast<double>(c.dm6)},
      {"dm7", static_cast<double>(c.dm7)},
      {"dm8", static_cast<double>(c.dm8)},
      {"dm9", static_cast<double>(c.dm9)},
      {"dh", static_cast<double>(c.dh)},
      {"dtraf", static_cast<double>(c.dtraf)},
      {"slot_seconds", c.slot_seconds},
      {"loss_weight_w", c.loss_weight_w},
      {"supervise_stcode", c.supervise_stcode ? 1.0 : 0.0},
      {"learning_rate", c.learning_rate},
      {"lr_decay_epochs", static_cast<double>(c.lr_decay_epochs)},
      {"lr_decay_factor", c.lr_decay_factor},
      {"batch_size", static_cast<double>(c.batch_size)},
      {"epochs", static_cast<double>(c.epochs)},
      {"grad_clip", c.grad_clip},
      {"max_speed_matrix_dim", static_cast<double>(c.max_speed_matrix_dim)},
      {"ablation", static_cast<double>(static_cast<int>(c.ablation))},
      {"time_init", static_cast<double>(static_cast<int>(c.time_init))},
      {"road_init", static_cast<double>(static_cast<int>(c.road_init))},
      {"embed_method", static_cast<double>(static_cast<int>(c.embed_method))},
      {"seed", static_cast<double>(c.seed)},
      {"num_threads", static_cast<double>(c.num_threads)},
  };
}

core::DeepOdConfig ConfigFromScalars(
    const std::function<double(const char*)>& get) {
  const auto sz = [&get](const char* name) {
    return static_cast<size_t>(std::llround(get(name)));
  };
  core::DeepOdConfig c;
  c.ds = sz("ds");
  c.dt = sz("dt");
  c.dm1 = sz("dm1");
  c.dm2 = sz("dm2");
  c.dm3 = sz("dm3");
  c.dm4 = sz("dm4");
  c.dm5 = sz("dm5");
  c.dm6 = sz("dm6");
  c.dm7 = sz("dm7");
  c.dm8 = sz("dm8");
  c.dm9 = sz("dm9");
  c.dh = sz("dh");
  c.dtraf = sz("dtraf");
  c.slot_seconds = get("slot_seconds");
  c.loss_weight_w = get("loss_weight_w");
  c.supervise_stcode = get("supervise_stcode") != 0.0;
  c.learning_rate = get("learning_rate");
  c.lr_decay_epochs = static_cast<int>(std::llround(get("lr_decay_epochs")));
  c.lr_decay_factor = get("lr_decay_factor");
  c.batch_size = sz("batch_size");
  c.epochs = static_cast<int>(std::llround(get("epochs")));
  c.grad_clip = get("grad_clip");
  c.max_speed_matrix_dim = sz("max_speed_matrix_dim");
  c.ablation =
      static_cast<core::Ablation>(std::llround(get("ablation")));
  c.time_init =
      static_cast<core::TimeInit>(std::llround(get("time_init")));
  c.road_init =
      static_cast<core::RoadInit>(std::llround(get("road_init")));
  c.embed_method =
      static_cast<embed::EmbedMethod>(std::llround(get("embed_method")));
  c.seed = static_cast<uint64_t>(std::llround(get("seed")));
  c.num_threads = sz("num_threads");
  return c;
}

// Flat staging buffers for the speed.* entries of one artifact dict. The
// dict borrows this storage, so it must outlive the (de)serialisation call.
struct SpeedStaging {
  double rows = 0.0, cols = 0.0, snapshot_seconds = 0.0;
  std::vector<double> indices;
  std::vector<double> matrices;  // [n, rows*cols]
};

void AppendSpeedEntries(SpeedStaging& staging, nn::StateDict& dict) {
  dict.AddScalarBuffer("speed.rows", &staging.rows);
  dict.AddScalarBuffer("speed.cols", &staging.cols);
  dict.AddScalarBuffer("speed.snapshot_seconds", &staging.snapshot_seconds);
  dict.AddBuffer("speed.indices", {staging.indices.size()},
                 staging.indices.data());
  const size_t n = staging.indices.size();
  dict.AddBuffer("speed.matrices", {n, n > 0 ? staging.matrices.size() / n : 0},
                 staging.matrices.data());
}

[[noreturn]] void ThrowMissing(const char* name) {
  throw nn::SerializeError(nn::LoadStatus::Error(
      nn::LoadErrorKind::kMissingTensor,
      std::string("artifact is missing required entry '") + name + "'", name));
}

}  // namespace

void WriteModelArtifact(const std::string& path, core::DeepOdModel& model,
                        const sim::SnapshotSpeedField* speed) {
  WriteModelArtifact(path, model, speed, ArtifactOptions{});
}

void WriteModelArtifact(const std::string& path, core::DeepOdModel& model,
                        const sim::SnapshotSpeedField* speed,
                        const ArtifactOptions& options) {
  nn::StateDict dict;
  double version = kArtifactVersion;
  dict.AddScalarBuffer("artifact.version", &version);
  double network_id = static_cast<double>(options.network_id);
  dict.AddScalarBuffer("artifact.network_id", &network_id);

  auto config_fields = ConfigFields(model.config());
  for (auto& [name, value] : config_fields) {
    dict.AddScalarBuffer(std::string("config.") + name, &value);
  }

  model.AppendState("model.", dict);

  if (options.oracle != nullptr) options.oracle->AppendState("oracle.", dict);
  if (options.link_mean != nullptr) {
    options.link_mean->AppendState("linkmean.", dict);
  }

  SpeedStaging staging;
  if (speed != nullptr) {
    staging.rows = static_cast<double>(speed->rows());
    staging.cols = static_cast<double>(speed->cols());
    staging.snapshot_seconds = speed->snapshot_seconds();
    const auto& snapshots = speed->snapshots();
    const size_t cell_count = speed->rows() * speed->cols();
    staging.indices.reserve(snapshots.size());
    staging.matrices.reserve(snapshots.size() * cell_count);
    for (const auto& snap : snapshots) {
      staging.indices.push_back(static_cast<double>(snap.index));
      staging.matrices.insert(staging.matrices.end(), snap.matrix.begin(),
                              snap.matrix.end());
    }
    AppendSpeedEntries(staging, dict);
  }

  // Only model.* weight entries are quantisation-eligible (trainable,
  // ndim >= 2); the config/speed buffers always stay f64.
  nn::ThrowIfError(nn::SaveStateDict(path, dict, options.quant));
}

ServingModel LoadModelArtifact(const std::string& path,
                               const road::RoadNetwork& network) {
  return LoadModelArtifact(path, network, ArtifactOptions{});
}

ServingModel LoadModelArtifact(const std::string& path,
                               const road::RoadNetwork& network,
                               const ArtifactOptions& options) {
  std::vector<uint8_t> buffer;
  nn::ThrowIfError(nn::ReadFileBytes(path, &buffer));
  std::vector<nn::TensorRecord> records;
  nn::ThrowIfError(nn::IndexStateDict(buffer, &records));

  const auto find = [&records](const char* name) -> const nn::TensorRecord* {
    for (const auto& r : records) {
      if (r.name == name) return &r;
    }
    return nullptr;
  };
  const auto scalar = [&](const char* name) {
    const nn::TensorRecord* r = find(name);
    if (r == nullptr || r->num_elements != 1) ThrowMissing(name);
    return nn::ReadRecordPayload(buffer, *r)[0];
  };

  const double version = scalar("artifact.version");
  if (version < kMinArtifactVersion || version > kArtifactVersion) {
    throw nn::SerializeError(nn::LoadStatus::Error(
        nn::LoadErrorKind::kBadVersion,
        "unsupported artifact version " + std::to_string(version),
        "artifact.version"));
  }

  ServingModel out;
  if (find("artifact.network_id") != nullptr) {
    out.network_id =
        static_cast<uint32_t>(std::llround(scalar("artifact.network_id")));
  }
  out.config = ConfigFromScalars([&](const char* name) {
    return scalar((std::string("config.") + name).c_str());
  });

  // The frozen speed field, when the artifact carries one. Built up front
  // from the indexed records so the predict-only model can be constructed
  // pointing at it; the strict full-dict pass below still re-validates the
  // same bytes by name and shape.
  if (find("speed.rows") != nullptr) {
    const auto rows = static_cast<size_t>(std::llround(scalar("speed.rows")));
    const auto cols = static_cast<size_t>(std::llround(scalar("speed.cols")));
    const double snapshot_seconds = scalar("speed.snapshot_seconds");
    const nn::TensorRecord* indices = find("speed.indices");
    const nn::TensorRecord* matrices = find("speed.matrices");
    if (indices == nullptr) ThrowMissing("speed.indices");
    if (matrices == nullptr) ThrowMissing("speed.matrices");
    const std::vector<double> index_values =
        nn::ReadRecordPayload(buffer, *indices);
    const std::vector<double> matrix_values =
        nn::ReadRecordPayload(buffer, *matrices);
    if (matrix_values.size() != index_values.size() * rows * cols) {
      throw nn::SerializeError(nn::LoadStatus::Error(
          nn::LoadErrorKind::kShapeMismatch,
          "speed.matrices size does not match speed.indices x rows x cols",
          "speed.matrices"));
    }
    std::vector<sim::SnapshotSpeedField::Snapshot> snapshots(
        index_values.size());
    const size_t cell_count = rows * cols;
    for (size_t i = 0; i < snapshots.size(); ++i) {
      snapshots[i].index = static_cast<int64_t>(std::llround(index_values[i]));
      snapshots[i].matrix.assign(
          matrix_values.begin() + static_cast<ptrdiff_t>(i * cell_count),
          matrix_values.begin() + static_cast<ptrdiff_t>((i + 1) * cell_count));
    }
    out.speed = std::make_unique<sim::SnapshotSpeedField>(
        rows, cols, snapshot_seconds, std::move(snapshots));
  }

  out.model = std::make_unique<core::DeepOdModel>(out.config, network,
                                                  out.speed.get());

  // Strict validated pass over the whole file: every artifact entry must
  // match an expected entry by name and shape (checksum already verified by
  // the index). This is what actually writes the model parameters — and
  // catches truncated tables, unexpected tensors and table-size mismatches
  // (e.g. an artifact from a different road network) with a typed error
  // before any value lands in the model.
  // The optional fallback-estimator blocks, sized from the indexed record
  // shapes so the strict pass below can deserialise straight into them.
  if (find("oracle.keys") != nullptr) {
    const nn::TensorRecord* pair_keys = find("oracle.pair_keys");
    if (pair_keys == nullptr) ThrowMissing("oracle.pair_keys");
    out.oracle = std::make_unique<baselines::OdOracle>();
    out.oracle->PrepareLoad(find("oracle.keys")->num_elements,
                            pair_keys->num_elements);
  }
  if (find("linkmean.means") != nullptr) {
    out.link_mean = std::make_unique<baselines::LinkMeanEstimator>();
    out.link_mean->PrepareLoad(find("linkmean.means")->num_elements);
  }

  nn::StateDict dict;
  double version_staging = 0.0;
  dict.AddScalarBuffer("artifact.version", &version_staging);
  double network_id_staging = 0.0;
  if (find("artifact.network_id") != nullptr) {
    dict.AddScalarBuffer("artifact.network_id", &network_id_staging);
  }
  auto config_fields = ConfigFields(out.config);
  for (auto& [name, value] : config_fields) {
    dict.AddScalarBuffer(std::string("config.") + name, &value);
  }
  out.model->AppendState("model.", dict);
  SpeedStaging staging;
  if (out.speed != nullptr) {
    staging.indices.resize(out.speed->snapshots().size());
    staging.matrices.resize(staging.indices.size() * out.speed->rows() *
                            out.speed->cols());
    AppendSpeedEntries(staging, dict);
  }
  if (out.oracle != nullptr) out.oracle->AppendState("oracle.", dict);
  if (out.link_mean != nullptr) out.link_mean->AppendState("linkmean.", dict);
  nn::ThrowIfError(nn::DeserializeStateDict(buffer, dict));

  // Effective quantisation: a load-time request wins; otherwise whatever
  // the records were stored as (the deserialise above already produced the
  // dequantised — i.e. snapped — fp64 values for a quantised artifact, so
  // no further pass is needed in that case).
  nn::QuantMode stored = nn::QuantMode::kNone;
  for (const auto& r : records) {
    if (r.dtype == nn::kDtypeF16) stored = nn::QuantMode::kFp16;
    if (r.dtype == nn::kDtypeI8) stored = nn::QuantMode::kInt8;
  }
  out.quant = options.quant != nn::QuantMode::kNone ? options.quant : stored;
  if (options.quant != nn::QuantMode::kNone) {
    nn::FakeQuantizeStateDict(dict, options.quant);
  }

  out.model->ClearOcodeMemo();
  out.model->SetTraining(false);
  return out;
}

void WriteOracleArtifact(const std::string& path, uint32_t network_id,
                         baselines::OdOracle* oracle,
                         baselines::LinkMeanEstimator* link_mean) {
  nn::StateDict dict;
  double version = kArtifactVersion;
  dict.AddScalarBuffer("artifact.version", &version);
  double network_id_staging = static_cast<double>(network_id);
  dict.AddScalarBuffer("artifact.network_id", &network_id_staging);
  if (oracle != nullptr) oracle->AppendState("oracle.", dict);
  if (link_mean != nullptr) link_mean->AppendState("linkmean.", dict);
  nn::ThrowIfError(nn::SaveStateDict(path, dict, nn::QuantMode::kNone));
}

OracleBundle LoadOracleArtifact(const std::string& path) {
  std::vector<uint8_t> buffer;
  nn::ThrowIfError(nn::ReadFileBytes(path, &buffer));
  std::vector<nn::TensorRecord> records;
  nn::ThrowIfError(nn::IndexStateDict(buffer, &records));

  const auto find = [&records](const char* name) -> const nn::TensorRecord* {
    for (const auto& r : records) {
      if (r.name == name) return &r;
    }
    return nullptr;
  };
  const auto scalar = [&](const char* name) {
    const nn::TensorRecord* r = find(name);
    if (r == nullptr || r->num_elements != 1) ThrowMissing(name);
    return nn::ReadRecordPayload(buffer, *r)[0];
  };

  const double version = scalar("artifact.version");
  if (version < 2.0 || version > kArtifactVersion) {
    throw nn::SerializeError(nn::LoadStatus::Error(
        nn::LoadErrorKind::kBadVersion,
        "unsupported oracle artifact version " + std::to_string(version),
        "artifact.version"));
  }

  OracleBundle out;
  out.network_id =
      static_cast<uint32_t>(std::llround(scalar("artifact.network_id")));
  if (find("oracle.keys") != nullptr) {
    const nn::TensorRecord* pair_keys = find("oracle.pair_keys");
    if (pair_keys == nullptr) ThrowMissing("oracle.pair_keys");
    out.oracle = std::make_unique<baselines::OdOracle>();
    out.oracle->PrepareLoad(find("oracle.keys")->num_elements,
                            pair_keys->num_elements);
  }
  if (find("linkmean.means") != nullptr) {
    out.link_mean = std::make_unique<baselines::LinkMeanEstimator>();
    out.link_mean->PrepareLoad(find("linkmean.means")->num_elements);
  }

  nn::StateDict dict;
  double version_staging = 0.0;
  dict.AddScalarBuffer("artifact.version", &version_staging);
  double network_id_staging = 0.0;
  dict.AddScalarBuffer("artifact.network_id", &network_id_staging);
  if (out.oracle != nullptr) out.oracle->AppendState("oracle.", dict);
  if (out.link_mean != nullptr) out.link_mean->AppendState("linkmean.", dict);
  nn::ThrowIfError(nn::DeserializeStateDict(buffer, dict));
  return out;
}

}  // namespace deepod::io
