#ifndef DEEPOD_IO_SHARDED_TRIP_SOURCE_H_
#define DEEPOD_IO_SHARDED_TRIP_SOURCE_H_

#include <future>
#include <string>
#include <vector>

#include "core/trip_feed.h"
#include "io/trip_store.h"
#include "util/thread_pool.h"

namespace deepod::io {

// Out-of-core TripFeed over K on-disk trip-store shards. The shards stay
// mmap'd for the lifetime of the source; only a bounded window of decoded
// TripRecords is materialised on the heap at any time, so training memory
// no longer scales with the corpus.
//
// Epoch order: BeginEpoch rebuilds the visit order through
// core::BuildShardEpochOrder — shuffle the shard visit order, then an
// independent intra-shard permutation. A core::InMemoryTripFeed constructed
// with the same shard sizes consumes the identical RNG draws and produces
// the identical order, which is the parity contract the datagen smoke test
// asserts.
//
// Prefetch: PrefetchWindow(pos, n) guarantees positions [pos, pos+n) are
// decoded. It serves them from the current window when possible, adopts the
// asynchronously prefetched next window when it lines up, or decodes
// synchronously (fanning out over `pool` when one was given). After every
// call it kicks off a background decode of the *following* window, so shard
// decode overlaps with the trainer's compute on the current batch. At(pos)
// is a const read of the resident window and is safe from concurrent pool
// workers; calling it outside the prefetched range throws.
class ShardedTripSource : public core::TripFeed {
 public:
  struct Options {
    // Decoded records kept resident (clamped up to the largest PrefetchWindow
    // request). ~1k trips of a few dozen route elements ≈ a few MB.
    size_t window_size = 1024;
    // Skip per-shard checksum verification at open (benchmarks on trusted
    // freshly written files).
    bool verify_checksums = true;
    // Optional pool for parallel synchronous window fills. Not owned; the
    // background lookahead never touches it.
    util::ThreadPool* pool = nullptr;
  };

  // Opens every shard up front. Throws nn::SerializeError on any open
  // failure (bad magic/checksum/truncation included).
  explicit ShardedTripSource(const std::vector<std::string>& shard_paths);
  ShardedTripSource(const std::vector<std::string>& shard_paths,
                    Options options);
  ~ShardedTripSource() override;

  ShardedTripSource(const ShardedTripSource&) = delete;
  ShardedTripSource& operator=(const ShardedTripSource&) = delete;

  size_t size() const override { return total_; }
  void BeginEpoch(util::Rng& rng) override;
  const traj::TripRecord& At(size_t pos) override;
  void PrefetchWindow(size_t pos, size_t n) override;
  std::vector<size_t>& order() override { return order_; }
  void NotifyOrderChanged() override;

  size_t num_shards() const { return readers_.size(); }
  const std::vector<size_t>& shard_sizes() const { return shard_sizes_; }
  // Decoded-window fills that were served by the async lookahead.
  size_t prefetch_hits() const { return prefetch_hits_; }

 private:
  struct Window {
    size_t begin = 0;
    std::vector<traj::TripRecord> records;
  };

  // Decodes epoch positions [begin, begin+count) into `out` (serially).
  void DecodeRange(size_t begin, size_t count, Window* out) const;
  // Decodes one global sample index.
  void DecodeGlobal(size_t global_index, traj::TripRecord* out) const;
  // Starts the async decode of the window following the resident one.
  void LaunchLookahead();
  // Joins and discards any pending lookahead.
  void CancelLookahead();

  std::vector<TripStoreReader> readers_;
  std::vector<size_t> shard_sizes_;
  std::vector<size_t> shard_offsets_;  // prefix sums; offsets_[k] = start of k
  size_t total_ = 0;
  size_t window_size_;
  util::ThreadPool* pool_;

  std::vector<size_t> order_;
  Window window_;
  bool window_valid_ = false;
  std::future<Window> lookahead_;
  size_t prefetch_hits_ = 0;
};

}  // namespace deepod::io

#endif  // DEEPOD_IO_SHARDED_TRIP_SOURCE_H_
