#include "io/sharded_trip_source.h"

#include <algorithm>
#include <stdexcept>

namespace deepod::io {

ShardedTripSource::ShardedTripSource(const std::vector<std::string>& shard_paths)
    : ShardedTripSource(shard_paths, Options{}) {}

ShardedTripSource::ShardedTripSource(
    const std::vector<std::string>& shard_paths, Options options)
    : window_size_(std::max<size_t>(1, options.window_size)),
      pool_(options.pool) {
  if (shard_paths.empty()) {
    throw std::invalid_argument("ShardedTripSource: no shard paths");
  }
  readers_.reserve(shard_paths.size());
  shard_sizes_.reserve(shard_paths.size());
  shard_offsets_.reserve(shard_paths.size());
  for (const std::string& path : shard_paths) {
    readers_.push_back(
        TripStoreReader::OpenOrThrow(path, options.verify_checksums));
    shard_offsets_.push_back(total_);
    shard_sizes_.push_back(readers_.back().size());
    total_ += readers_.back().size();
  }
  // Identity order until the first BeginEpoch, matching InMemoryTripFeed.
  order_.resize(total_);
  for (size_t i = 0; i < total_; ++i) order_[i] = i;
}

ShardedTripSource::~ShardedTripSource() { CancelLookahead(); }

void ShardedTripSource::BeginEpoch(util::Rng& rng) {
  CancelLookahead();
  window_valid_ = false;
  order_ = core::BuildShardEpochOrder(rng, shard_sizes_);
}

void ShardedTripSource::NotifyOrderChanged() {
  CancelLookahead();
  window_valid_ = false;
}

void ShardedTripSource::DecodeGlobal(size_t global_index,
                                     traj::TripRecord* out) const {
  // Shards are few (K is small); a linear upper-bound scan over the prefix
  // sums is cheaper than it looks.
  const auto it = std::upper_bound(shard_offsets_.begin(),
                                   shard_offsets_.end(), global_index);
  const size_t shard = static_cast<size_t>(it - shard_offsets_.begin()) - 1;
  readers_[shard].Decode(global_index - shard_offsets_[shard], out);
}

void ShardedTripSource::DecodeRange(size_t begin, size_t count,
                                    Window* out) const {
  out->begin = begin;
  out->records.resize(count);
  for (size_t i = 0; i < count; ++i) {
    DecodeGlobal(order_[begin + i], &out->records[i]);
  }
}

void ShardedTripSource::LaunchLookahead() {
  if (lookahead_.valid() || !window_valid_) return;
  const size_t next_begin = window_.begin + window_.records.size();
  if (next_begin >= total_) return;
  const size_t count = std::min(window_size_, total_ - next_begin);
  // The lookahead thread only touches const state (readers_, order_) and
  // its own Window; order_ is never mutated while a lookahead is pending
  // (BeginEpoch/NotifyOrderChanged cancel it first).
  lookahead_ = std::async(std::launch::async, [this, next_begin, count] {
    Window w;
    DecodeRange(next_begin, count, &w);
    return w;
  });
}

void ShardedTripSource::CancelLookahead() {
  if (lookahead_.valid()) lookahead_.get();
}

void ShardedTripSource::PrefetchWindow(size_t pos, size_t n) {
  if (pos + n > total_) {
    throw std::out_of_range("ShardedTripSource::PrefetchWindow past the end");
  }
  const bool covered = window_valid_ && pos >= window_.begin &&
                       pos + n <= window_.begin + window_.records.size();
  if (!covered) {
    // Adopt the async lookahead when it is exactly the window we need —
    // the common steady-state case of sequential batch consumption.
    bool adopted = false;
    if (lookahead_.valid()) {
      Window next = lookahead_.get();
      if (pos >= next.begin &&
          pos + n <= next.begin + next.records.size()) {
        window_ = std::move(next);
        window_valid_ = true;
        adopted = true;
        ++prefetch_hits_;
      }
    }
    if (!adopted) {
      const size_t count = std::min(std::max(window_size_, n), total_ - pos);
      if (pool_ != nullptr && count > 1) {
        const size_t tasks = std::min(pool_->num_threads(), count);
        window_.begin = pos;
        window_.records.resize(count);
        pool_->ParallelFor(tasks, [&](size_t w) {
          const auto [begin, end] =
              util::ThreadPool::ChunkRange(count, tasks, w);
          for (size_t i = begin; i < end; ++i) {
            DecodeGlobal(order_[pos + i], &window_.records[i]);
          }
        });
      } else {
        DecodeRange(pos, count, &window_);
      }
      window_valid_ = true;
    }
  }
  LaunchLookahead();
}

const traj::TripRecord& ShardedTripSource::At(size_t pos) {
  if (!window_valid_ || pos < window_.begin ||
      pos >= window_.begin + window_.records.size()) {
    throw std::logic_error(
        "ShardedTripSource::At(" + std::to_string(pos) +
        ") outside the prefetched window — call PrefetchWindow first");
  }
  return window_.records[pos - window_.begin];
}

}  // namespace deepod::io
