#ifndef DEEPOD_OBS_TRACE_H_
#define DEEPOD_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace deepod::obs {

// Scoped wall-time span. On destruction (when mode() != kOff) the elapsed
// time is recorded into `registry->histogram(name)` in seconds, and in
// trace mode a Chrome trace_event "complete" (ph:"X") record is appended to
// the process trace buffer. With observability off the constructor is a
// single relaxed load and branch — no clock reads.
//
// `name` must outlive the scope (string literals in practice).
class SpanScope {
 public:
  explicit SpanScope(const char* name, Registry* registry = nullptr);
  ~SpanScope();
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  const char* name_;
  Registry* registry_;
  std::chrono::steady_clock::time_point start_;
  bool active_;
};

#define DEEPOD_OBS_CONCAT2(a, b) a##b
#define DEEPOD_OBS_CONCAT(a, b) DEEPOD_OBS_CONCAT2(a, b)
// Times the enclosing scope into the global registry histogram `name`
// (e.g. OBS_SPAN("trainer/epoch")).
#define OBS_SPAN(name) \
  ::deepod::obs::SpanScope DEEPOD_OBS_CONCAT(obs_span_, __LINE__)(name)

// --- Trace buffer ------------------------------------------------------------

// Completed spans recorded while mode() == kTrace, in Chrome trace_event
// format (chrome://tracing, Perfetto). Timestamps are microseconds relative
// to the first event after the last ClearTrace(). The buffer is global,
// mutex-guarded (trace mode is an offline-inspection tool, not the
// zero-overhead path) and capped — events past the cap are dropped and
// counted.
void ClearTrace();
size_t TraceEventCount();
uint64_t TraceDroppedCount();
// {"displayTimeUnit": "ms", "traceEvents": [...]}
std::string TraceJson();
// Writes TraceJson() to `path`; returns false if the file could not be
// opened.
bool WriteTraceJson(const std::string& path);

// Appends one complete ("ph":"X") event. Called by ~SpanScope in trace
// mode; also callable directly when a span's endpoints are explicit time
// points (always-on instruments that time with their own clock reads).
void AppendTraceEvent(const char* name,
                      std::chrono::steady_clock::time_point start,
                      std::chrono::steady_clock::time_point end);

}  // namespace deepod::obs

#endif  // DEEPOD_OBS_TRACE_H_
