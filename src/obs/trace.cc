#include "obs/trace.h"

#include <fstream>
#include <mutex>
#include <sstream>
#include <vector>

namespace deepod::obs {
namespace {

// Cap keeps a runaway trace (e.g. a span inside a per-sample loop over a
// long training run) from growing without bound: ~100 bytes/event puts the
// ceiling around 50 MB of JSON.
constexpr size_t kMaxTraceEvents = 1 << 19;

struct TraceEvent {
  const char* name;
  double ts_us;
  double dur_us;
  uint32_t tid;
};

struct TraceBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;
  uint64_t dropped = 0;
  bool have_epoch = false;
  std::chrono::steady_clock::time_point epoch;
};

TraceBuffer& Buffer() {
  static TraceBuffer* buffer = new TraceBuffer();
  return *buffer;
}

uint32_t ThisThreadTraceId() {
  static std::atomic<uint32_t> next{1};
  thread_local const uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace

SpanScope::SpanScope(const char* name, Registry* registry)
    : name_(name), registry_(registry), active_(MetricsEnabled()) {
  if (active_) start_ = std::chrono::steady_clock::now();
}

SpanScope::~SpanScope() {
  if (!active_) return;
  const auto end = std::chrono::steady_clock::now();
  const double seconds =
      std::chrono::duration<double>(end - start_).count();
  Registry& registry = registry_ != nullptr ? *registry_ : Registry::Global();
  registry.histogram(name_).Observe(seconds);
  if (TraceEnabled()) AppendTraceEvent(name_, start_, end);
}

void AppendTraceEvent(const char* name,
                      std::chrono::steady_clock::time_point start,
                      std::chrono::steady_clock::time_point end) {
  TraceBuffer& buffer = Buffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  if (!buffer.have_epoch) {
    buffer.have_epoch = true;
    buffer.epoch = start;
  }
  if (buffer.events.size() >= kMaxTraceEvents) {
    ++buffer.dropped;
    return;
  }
  buffer.events.push_back(
      {name,
       std::chrono::duration<double, std::micro>(start - buffer.epoch).count(),
       std::chrono::duration<double, std::micro>(end - start).count(),
       ThisThreadTraceId()});
}

void ClearTrace() {
  TraceBuffer& buffer = Buffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.events.clear();
  buffer.dropped = 0;
  buffer.have_epoch = false;
}

size_t TraceEventCount() {
  TraceBuffer& buffer = Buffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  return buffer.events.size();
}

uint64_t TraceDroppedCount() {
  TraceBuffer& buffer = Buffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  return buffer.dropped;
}

std::string TraceJson() {
  TraceBuffer& buffer = Buffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  std::ostringstream out;
  out.precision(3);
  out << std::fixed;
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  for (size_t i = 0; i < buffer.events.size(); ++i) {
    const TraceEvent& e = buffer.events[i];
    out << "  {\"name\": \"" << e.name << "\", \"cat\": \"deepod\", "
        << "\"ph\": \"X\", \"ts\": " << e.ts_us << ", \"dur\": " << e.dur_us
        << ", \"pid\": 1, \"tid\": " << e.tid << "}"
        << (i + 1 < buffer.events.size() ? "," : "") << "\n";
  }
  out << "]}\n";
  return out.str();
}

bool WriteTraceJson(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << TraceJson();
  return static_cast<bool>(out);
}

}  // namespace deepod::obs
