#ifndef DEEPOD_OBS_METRICS_H_
#define DEEPOD_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace deepod::obs {

// --- Mode switch -------------------------------------------------------------

// The process-wide observability level, resolved once from the DEEPOD_OBS
// environment variable (off | metrics | trace; default off) and overridable
// at runtime (tests, embedding applications).
//  - kOff:     every OBS_SPAN and ambient instrument is a no-op branch;
//    the hot paths carry no clocks, no atomics, no allocations.
//  - kMetrics: spans record wall time into registry histograms and the
//    wired-in gauges/counters update.
//  - kTrace:   kMetrics plus every span appends a Chrome trace_event record
//    (see trace.h) for offline flamegraph inspection.
// None of the levels touch any numeric kernel, so model outputs are
// bit-identical across all three.
enum class Mode { kOff, kMetrics, kTrace };

Mode mode();
void SetMode(Mode m);

inline bool MetricsEnabled() { return mode() != Mode::kOff; }
inline bool TraceEnabled() { return mode() == Mode::kTrace; }

// --- Lock-free instruments ---------------------------------------------------

// Writers land on a per-thread shard (assigned round-robin at first use,
// cached in a thread_local) and bump it with a relaxed atomic, so the fast
// path is a single uncontended fetch_add with no locks; readers aggregate
// the shards on snapshot. Counts are monotone; Value() taken concurrently
// with writers is a consistent lower bound.
inline constexpr size_t kShards = 16;
size_t ThisThreadShard();

class Counter {
 public:
  void Add(uint64_t n = 1) {
    shards_[ThisThreadShard()].v.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const;
  void Reset();

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  std::array<Shard, kShards> shards_;
};

// Last-writer-wins instantaneous value (queue depths, occupancy).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double d);
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Windowed running mean over the last `window` observations (ring buffer
// under a short mutex — this is a low-rate instrument: drift errors, not
// per-request latencies). Value() is the mean of the window's contents, so
// it tracks the *current* regime and forgets old observations — the
// behaviour a drift detector needs, where a lifetime mean would dilute a
// recent shock into invisibility.
class RollingMean {
 public:
  explicit RollingMean(size_t window = 256);

  void Observe(double v);
  // Mean of the last min(Count(), window) observations; 0 when empty.
  double Value() const;
  // Total observations ever (not clamped to the window).
  uint64_t Count() const;
  size_t window() const { return ring_.size(); }
  void Reset();

 private:
  mutable std::mutex mu_;
  std::vector<double> ring_;
  size_t next_ = 0;      // ring slot the next observation overwrites
  size_t filled_ = 0;    // live slots (saturates at ring_.size())
  uint64_t count_ = 0;   // lifetime observations
  double sum_ = 0.0;     // sum of the live slots
};

// Fixed-bucket log-linear histogram (DDSketch-style): values are bucketed
// by power-of-two octave with kSubBuckets linear sub-buckets per octave, so
// Observe() is a frexp plus two relaxed atomic adds — no locks, no dynamic
// allocation — and percentile estimates carry a bounded relative error of
// at most 1/kSubBuckets (12.5%). The bucket range covers [2^kMinExp,
// 2^(kMinExp+kOctaves)) ≈ [1 µs, 256 s] when observing seconds; values
// outside clamp into the end buckets. Duration histograms observe SECONDS
// by convention (exports convert percentiles to milliseconds).
class Histogram {
 public:
  static constexpr int kMinExp = -20;    // 2^-20 s ≈ 0.95 µs
  static constexpr int kOctaves = 28;    // up to 2^8 = 256 s
  static constexpr int kSubBuckets = 8;  // ≤12.5% relative bucket width
  static constexpr size_t kNumBuckets =
      static_cast<size_t>(kOctaves * kSubBuckets);

  void Observe(double v);
  uint64_t Count() const;
  double Sum() const;
  // Bucket-interpolated quantile in the observed unit; q in [0, 1].
  double Percentile(double q) const;
  void Reset();

  // Aggregated bucket counts (tests / exporters).
  std::array<uint64_t, kNumBuckets> BucketCounts() const;
  static double BucketLowerBound(size_t index);
  static size_t BucketIndex(double v);

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<uint64_t>, kNumBuckets> buckets{};
    std::atomic<double> sum{0.0};
  };
  std::array<Shard, kShards> shards_;
};

// --- Shared record schema ----------------------------------------------------

// One record of the machine-readable JSON shared by every BENCH_*.json
// emitter and by Registry::ExportJson, so one validator / comparison tool
// (tools/validate_bench_json.py, tools/bench_compare.py) covers bench
// output and exported serving stats alike. Optional fields are omitted
// from the JSON when unset.
struct Record {
  std::string name;
  double wall_seconds = 0.0;
  size_t threads = 1;
  std::optional<double> samples_per_sec;  // throughput (must be > 0)
  std::optional<double> count;            // counter value / histogram count
  std::optional<double> value;            // gauge value
  std::optional<double> p50_ms;           // histogram percentiles (ms)
  std::optional<double> p95_ms;
  std::optional<double> p99_ms;
};

// Renders {"hardware_concurrency": N, "records": [...]}.
std::string RenderRecordsJson(const std::vector<Record>& records);
void WriteRecordsJson(const std::string& path,
                      const std::vector<Record>& records);

// --- Registry ----------------------------------------------------------------

// Named instruments, created on first use and owned by the registry
// (returned references stay valid for the registry's lifetime). Lookup
// takes a short mutex; hot paths should cache the returned reference.
// Global() backs the ambient wiring (OBS_SPAN, trainer, nn kernels);
// components whose stats must not bleed across instances (EtaService) own
// a private Registry.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  static Registry& Global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  // Snapshot of every instrument whose name starts with `prefix` (empty =
  // all), name-sorted: counters as count, gauges as value, histograms as
  // wall_seconds = sum, count and p50/p95/p99 in ms.
  std::vector<Record> Export(const std::string& prefix = "") const;
  // Export() rendered through the shared BENCH-json schema.
  std::string ExportJson(const std::string& prefix = "") const;
  // Prometheus text exposition (counters, gauges, and summaries with
  // quantile lines). Metric names are sanitised to [a-zA-Z0-9_].
  std::string ExportPrometheus(const std::string& prefix = "") const;

  // Drops every instrument (invalidates outstanding references; tests only).
  void ResetForTest();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// --- Kernel op counters ------------------------------------------------------

// Per-KernelMode invocation counters for one nn op, resolved once per call
// site ("nn/<op>/{legacy,blocked,vector,simd}" in the global registry).
// Only compiled into the kernels when the DEEPOD_OBS_KERNEL_COUNTS CMake
// option is ON — the default build carries zero cost, not even a branch.
class KernelOpCounters {
 public:
  static constexpr size_t kNumModes = 4;

  explicit KernelOpCounters(const char* op);
  void Bump(size_t mode_index) {
    by_mode_[mode_index < kNumModes ? mode_index : 0]->Add();
  }

 private:
  Counter* by_mode_[kNumModes];
};

}  // namespace deepod::obs

#endif  // DEEPOD_OBS_METRICS_H_
