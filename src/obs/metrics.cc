#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

namespace deepod::obs {
namespace {

Mode ResolveModeFromEnv() {
  const char* env = std::getenv("DEEPOD_OBS");
  if (env == nullptr) return Mode::kOff;
  if (std::strcmp(env, "metrics") == 0) return Mode::kMetrics;
  if (std::strcmp(env, "trace") == 0) return Mode::kTrace;
  return Mode::kOff;
}

std::atomic<Mode>& ModeRef() {
  static std::atomic<Mode> mode{ResolveModeFromEnv()};
  return mode;
}

void AtomicAddDouble(std::atomic<double>& target, double d) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + d,
                                       std::memory_order_relaxed)) {
  }
}

// Number formatting for the JSON exports: enough digits to round-trip the
// micro-benchmark wall times, without forcing fixed-point padding.
std::string FormatNumber(double v) {
  std::ostringstream out;
  out.precision(12);
  out << v;
  return out.str();
}

std::string SanitizePrometheusName(const std::string& name) {
  std::string out = "deepod_";
  for (char c : name) {
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
  }
  return out;
}

}  // namespace

Mode mode() { return ModeRef().load(std::memory_order_relaxed); }

void SetMode(Mode m) { ModeRef().store(m, std::memory_order_relaxed); }

size_t ThisThreadShard() {
  static std::atomic<size_t> next{0};
  thread_local const size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

// --- Counter -----------------------------------------------------------------

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Shard& s : shards_) {
    total += s.v.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
}

// --- Gauge -------------------------------------------------------------------

void Gauge::Add(double d) { AtomicAddDouble(value_, d); }

// --- RollingMean -------------------------------------------------------------

RollingMean::RollingMean(size_t window) : ring_(window == 0 ? 1 : window) {}

void RollingMean::Observe(double v) {
  std::lock_guard<std::mutex> lock(mu_);
  if (filled_ == ring_.size()) {
    sum_ -= ring_[next_];
  } else {
    ++filled_;
  }
  ring_[next_] = v;
  sum_ += v;
  next_ = (next_ + 1) % ring_.size();
  ++count_;
}

double RollingMean::Value() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (filled_ == 0) return 0.0;
  return sum_ / static_cast<double>(filled_);
}

uint64_t RollingMean::Count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

void RollingMean::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  std::fill(ring_.begin(), ring_.end(), 0.0);
  next_ = 0;
  filled_ = 0;
  count_ = 0;
  sum_ = 0.0;
}

// --- Histogram ---------------------------------------------------------------

size_t Histogram::BucketIndex(double v) {
  if (!(v > 0.0)) return 0;  // non-positive and NaN clamp low
  int exp = 0;
  const double mantissa = std::frexp(v, &exp);  // v = mantissa * 2^exp, m in [0.5, 1)
  const int octave = exp - 1 - kMinExp;  // octave 0 spans [2^kMinExp, 2^(kMinExp+1))
  if (octave < 0) return 0;
  if (octave >= kOctaves) return kNumBuckets - 1;
  // mantissa in [0.5, 1) -> kSubBuckets linear sub-buckets.
  int sub = static_cast<int>((mantissa - 0.5) * 2.0 * kSubBuckets);
  sub = std::clamp(sub, 0, kSubBuckets - 1);
  return static_cast<size_t>(octave * kSubBuckets + sub);
}

double Histogram::BucketLowerBound(size_t index) {
  const size_t octave = index / kSubBuckets;
  const size_t sub = index % kSubBuckets;
  return std::ldexp(1.0 + static_cast<double>(sub) / kSubBuckets,
                    kMinExp + static_cast<int>(octave));
}

void Histogram::Observe(double v) {
  Shard& shard = shards_[ThisThreadShard()];
  shard.buckets[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(shard.sum, v);
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const Shard& s : shards_) {
    for (const auto& b : s.buckets) {
      total += b.load(std::memory_order_relaxed);
    }
  }
  return total;
}

double Histogram::Sum() const {
  double total = 0.0;
  for (const Shard& s : shards_) {
    total += s.sum.load(std::memory_order_relaxed);
  }
  return total;
}

std::array<uint64_t, Histogram::kNumBuckets> Histogram::BucketCounts() const {
  std::array<uint64_t, kNumBuckets> counts{};
  for (const Shard& s : shards_) {
    for (size_t i = 0; i < kNumBuckets; ++i) {
      counts[i] += s.buckets[i].load(std::memory_order_relaxed);
    }
  }
  return counts;
}

double Histogram::Percentile(double q) const {
  const auto counts = BucketCounts();
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation (1-based), then linear interpolation
  // inside the bucket that holds it.
  const double rank = q * static_cast<double>(total - 1) + 1.0;
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (counts[i] == 0) continue;
    if (static_cast<double>(seen + counts[i]) >= rank) {
      const double within =
          (rank - static_cast<double>(seen)) / static_cast<double>(counts[i]);
      const double lo = BucketLowerBound(i);
      const double hi = i + 1 < kNumBuckets ? BucketLowerBound(i + 1)
                                            : lo * (1.0 + 1.0 / kSubBuckets);
      return lo + within * (hi - lo);
    }
    seen += counts[i];
  }
  return BucketLowerBound(kNumBuckets - 1);
}

void Histogram::Reset() {
  for (Shard& s : shards_) {
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    s.sum.store(0.0, std::memory_order_relaxed);
  }
}

// --- Shared record schema ----------------------------------------------------

std::string RenderRecordsJson(const std::vector<Record>& records) {
  std::ostringstream out;
  out << "{\n  \"hardware_concurrency\": "
      << std::thread::hardware_concurrency() << ",\n  \"records\": [\n";
  for (size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    out << "    {\"name\": \"" << r.name
        << "\", \"wall_seconds\": " << FormatNumber(r.wall_seconds)
        << ", \"threads\": " << r.threads;
    const auto field = [&out](const char* key,
                              const std::optional<double>& v) {
      if (v.has_value()) out << ", \"" << key << "\": " << FormatNumber(*v);
    };
    field("samples_per_sec", r.samples_per_sec);
    field("count", r.count);
    field("value", r.value);
    field("p50_ms", r.p50_ms);
    field("p95_ms", r.p95_ms);
    field("p99_ms", r.p99_ms);
    out << "}" << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

void WriteRecordsJson(const std::string& path,
                      const std::vector<Record>& records) {
  std::ofstream out(path);
  out << RenderRecordsJson(records);
}

// --- Registry ----------------------------------------------------------------

Registry& Registry::Global() {
  static Registry* global = new Registry();  // leaked: outlives all users
  return *global;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

std::vector<Record> Registry::Export(const std::string& prefix) const {
  const auto matches = [&prefix](const std::string& name) {
    return prefix.empty() || name.rfind(prefix, 0) == 0;
  };
  std::vector<Record> records;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) {
    if (!matches(name)) continue;
    Record r;
    r.name = name;
    r.count = static_cast<double>(c->Value());
    records.push_back(std::move(r));
  }
  for (const auto& [name, g] : gauges_) {
    if (!matches(name)) continue;
    Record r;
    r.name = name;
    r.value = g->Value();
    records.push_back(std::move(r));
  }
  for (const auto& [name, h] : histograms_) {
    if (!matches(name)) continue;
    Record r;
    r.name = name;
    r.wall_seconds = h->Sum();
    r.count = static_cast<double>(h->Count());
    r.p50_ms = h->Percentile(0.50) * 1e3;
    r.p95_ms = h->Percentile(0.95) * 1e3;
    r.p99_ms = h->Percentile(0.99) * 1e3;
    records.push_back(std::move(r));
  }
  std::sort(records.begin(), records.end(),
            [](const Record& a, const Record& b) { return a.name < b.name; });
  return records;
}

std::string Registry::ExportJson(const std::string& prefix) const {
  return RenderRecordsJson(Export(prefix));
}

std::string Registry::ExportPrometheus(const std::string& prefix) const {
  const auto matches = [&prefix](const std::string& name) {
    return prefix.empty() || name.rfind(prefix, 0) == 0;
  };
  std::ostringstream out;
  out.precision(12);
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) {
    if (!matches(name)) continue;
    const std::string id = SanitizePrometheusName(name);
    out << "# TYPE " << id << " counter\n" << id << " " << c->Value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    if (!matches(name)) continue;
    const std::string id = SanitizePrometheusName(name);
    out << "# TYPE " << id << " gauge\n" << id << " " << g->Value() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    if (!matches(name)) continue;
    const std::string id = SanitizePrometheusName(name);
    out << "# TYPE " << id << " summary\n";
    for (const double q : {0.5, 0.95, 0.99}) {
      out << id << "{quantile=\"" << q << "\"} " << h->Percentile(q) << "\n";
    }
    out << id << "_sum " << h->Sum() << "\n";
    out << id << "_count " << h->Count() << "\n";
  }
  return out.str();
}

void Registry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

// --- KernelOpCounters --------------------------------------------------------

KernelOpCounters::KernelOpCounters(const char* op) {
  static const char* kModeNames[kNumModes] = {"legacy", "blocked", "vector",
                                              "simd"};
  for (size_t m = 0; m < kNumModes; ++m) {
    by_mode_[m] = &Registry::Global().counter(std::string("nn/") + op + "/" +
                                              kModeNames[m]);
  }
}

}  // namespace deepod::obs
