#ifndef DEEPOD_EMBED_RANDOM_WALK_H_
#define DEEPOD_EMBED_RANDOM_WALK_H_

#include <unordered_map>
#include <vector>

#include "util/alias_sampler.h"
#include "util/rng.h"
#include "util/weighted_digraph.h"

namespace deepod::embed {

// Random-walk corpus generation over a weighted digraph, supporting both
// DeepWalk (uniform-by-weight first-order walks) and node2vec (second-order
// walks biased by the return parameter p and in-out parameter q, sampled in
// O(1) via per-(prev,cur) alias tables built lazily).
class RandomWalker {
 public:
  struct Options {
    size_t walk_length = 20;
    size_t walks_per_node = 4;
    // node2vec bias parameters; p = q = 1 reduces to DeepWalk.
    double p = 1.0;
    double q = 1.0;
  };

  RandomWalker(const util::WeightedDigraph& graph, Options options);

  // One walk starting at `start`; may terminate early at a sink node.
  std::vector<size_t> Walk(size_t start, util::Rng& rng);

  // walks_per_node walks from every node, in shuffled node order.
  std::vector<std::vector<size_t>> Corpus(util::Rng& rng);

 private:
  size_t NextFirstOrder(size_t cur, util::Rng& rng);
  size_t NextSecondOrder(size_t prev, size_t cur, util::Rng& rng);

  const util::WeightedDigraph& graph_;
  Options options_;
  // First-order alias table per node.
  std::vector<util::AliasSampler> node_alias_;
  // Second-order alias tables keyed by (prev << 32 | cur), built lazily.
  std::unordered_map<uint64_t, util::AliasSampler> edge_alias_;
  bool second_order_ = false;
};

}  // namespace deepod::embed

#endif  // DEEPOD_EMBED_RANDOM_WALK_H_
