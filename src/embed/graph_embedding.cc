#include "embed/graph_embedding.h"

#include <cmath>
#include <stdexcept>

#include "embed/random_walk.h"
#include "util/alias_sampler.h"

namespace deepod::embed {
namespace {

// One half of LINE: optimises either first-order proximity (node-node
// symmetric) or second-order proximity (node-context) by sampling arcs
// proportional to weight with negative sampling.
EmbeddingMatrix LineHalf(const util::WeightedDigraph& graph, size_t dim,
                         bool second_order, size_t samples_per_arc,
                         util::Rng& rng) {
  const size_t n = graph.num_nodes();
  EmbeddingMatrix vertex(n, std::vector<double>(dim));
  EmbeddingMatrix context(n, std::vector<double>(dim, 0.0));
  const double init_scale = 0.5 / static_cast<double>(dim);
  for (auto& row : vertex) {
    for (double& x : row) x = rng.Uniform(-init_scale, init_scale);
  }
  // Flatten arcs with weights for alias sampling.
  std::vector<std::pair<size_t, size_t>> arcs;
  std::vector<double> weights;
  std::vector<double> degree(n, 0.0);
  for (size_t v = 0; v < n; ++v) {
    for (const auto& a : graph.OutArcs(v)) {
      arcs.emplace_back(v, a.to);
      weights.push_back(a.weight);
      degree[a.to] += a.weight;
    }
  }
  if (arcs.empty()) return vertex;
  const util::AliasSampler arc_sampler(weights);
  for (double& d : degree) d = std::pow(d + 1e-3, 0.75);
  const util::AliasSampler negative_sampler(degree);

  const size_t total = arcs.size() * samples_per_arc;
  auto sigmoid = [](double x) { return 1.0 / (1.0 + std::exp(-x)); };
  std::vector<double> grad(dim);
  constexpr size_t kNegatives = 4;
  for (size_t step = 0; step < total; ++step) {
    const double lr =
        std::max(1e-4, 0.025 * (1.0 - static_cast<double>(step) /
                                          static_cast<double>(total)));
    const auto [src, dst] = arcs[arc_sampler.Sample(rng)];
    auto& v = vertex[src];
    std::fill(grad.begin(), grad.end(), 0.0);
    for (size_t k = 0; k <= kNegatives; ++k) {
      size_t target = k == 0 ? dst : negative_sampler.Sample(rng);
      if (k > 0 && target == dst) continue;
      const double label = k == 0 ? 1.0 : 0.0;
      auto& u = second_order ? context[target] : vertex[target];
      double dot = 0.0;
      for (size_t j = 0; j < dim; ++j) dot += v[j] * u[j];
      const double g = (sigmoid(dot) - label) * lr;
      for (size_t j = 0; j < dim; ++j) {
        grad[j] += g * u[j];
        u[j] -= g * v[j];
      }
    }
    for (size_t j = 0; j < dim; ++j) v[j] -= grad[j];
  }
  return vertex;
}

}  // namespace

std::string EmbedMethodName(EmbedMethod method) {
  switch (method) {
    case EmbedMethod::kDeepWalk:
      return "DeepWalk";
    case EmbedMethod::kNode2Vec:
      return "node2vec";
    case EmbedMethod::kLine:
      return "LINE";
    case EmbedMethod::kRandom:
      return "random";
  }
  return "unknown";
}

EmbeddingMatrix EmbedLine(const util::WeightedDigraph& graph,
                          const EmbedOptions& options, util::Rng& rng) {
  const size_t half = std::max<size_t>(1, options.dim / 2);
  const size_t rest = options.dim - half;
  EmbeddingMatrix first =
      LineHalf(graph, half, false, options.line_samples_per_arc, rng);
  EmbeddingMatrix second =
      rest > 0 ? LineHalf(graph, rest, true, options.line_samples_per_arc, rng)
               : EmbeddingMatrix(graph.num_nodes());
  EmbeddingMatrix out(graph.num_nodes());
  for (size_t v = 0; v < graph.num_nodes(); ++v) {
    out[v] = first[v];
    out[v].insert(out[v].end(), second[v].begin(), second[v].end());
  }
  return out;
}

EmbeddingMatrix EmbedGraph(const util::WeightedDigraph& graph,
                           EmbedMethod method, const EmbedOptions& options,
                           util::Rng& rng) {
  if (graph.num_nodes() == 0) {
    throw std::invalid_argument("EmbedGraph: empty graph");
  }
  switch (method) {
    case EmbedMethod::kRandom: {
      EmbeddingMatrix out(graph.num_nodes(), std::vector<double>(options.dim));
      const double s = 0.5 / static_cast<double>(options.dim);
      for (auto& row : out) {
        for (double& x : row) x = rng.Uniform(-s, s);
      }
      return out;
    }
    case EmbedMethod::kLine:
      return EmbedLine(graph, options, rng);
    case EmbedMethod::kDeepWalk:
    case EmbedMethod::kNode2Vec: {
      RandomWalker::Options walk_options;
      walk_options.walk_length = options.walk_length;
      walk_options.walks_per_node = options.walks_per_node;
      if (method == EmbedMethod::kNode2Vec) {
        walk_options.p = options.p;
        walk_options.q = options.q;
      }
      RandomWalker walker(graph, walk_options);
      const auto corpus = walker.Corpus(rng);
      SkipGramTrainer::Options sg_options;
      sg_options.dim = options.dim;
      sg_options.window = options.window;
      sg_options.negatives = options.negatives;
      sg_options.epochs = options.epochs;
      SkipGramTrainer trainer(graph.num_nodes(), sg_options);
      return trainer.Train(corpus, rng);
    }
  }
  throw std::invalid_argument("EmbedGraph: unknown method");
}

double CosineSimilarity(const std::vector<double>& a,
                        const std::vector<double>& b) {
  if (a.size() != b.size() || a.empty()) {
    throw std::invalid_argument("CosineSimilarity: size mismatch");
  }
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return dot / std::sqrt(na * nb);
}

}  // namespace deepod::embed
