#ifndef DEEPOD_EMBED_GRAPH_EMBEDDING_H_
#define DEEPOD_EMBED_GRAPH_EMBEDDING_H_

#include <string>

#include "embed/skipgram.h"
#include "util/rng.h"
#include "util/weighted_digraph.h"

namespace deepod::embed {

// The three unsupervised graph-embedding methods the paper compares for
// initialising Ws and Wt (§5: "we tried three graph embedding methods
// (DeepWalk, LINE, node2vec), and node2vec achieves the best result").
enum class EmbedMethod { kDeepWalk, kNode2Vec, kLine, kRandom };

std::string EmbedMethodName(EmbedMethod method);

struct EmbedOptions {
  size_t dim = 64;
  // Walk/corpus parameters (DeepWalk & node2vec).
  size_t walk_length = 20;
  size_t walks_per_node = 4;
  size_t window = 4;
  size_t negatives = 4;
  size_t epochs = 2;
  // node2vec bias.
  double p = 1.0;
  double q = 0.5;
  // LINE: number of edge-sampling updates per arc.
  size_t line_samples_per_arc = 200;
};

// Embeds every node of the graph with the chosen method. kRandom returns
// small uniform vectors (the one-hot-init ablations T-one / R-one of
// Table 7 start from this).
EmbeddingMatrix EmbedGraph(const util::WeightedDigraph& graph,
                           EmbedMethod method, const EmbedOptions& options,
                           util::Rng& rng);

// LINE (Tang et al. 2015) with first+second order proximity halves
// concatenated (dim/2 each). Exposed for direct testing.
EmbeddingMatrix EmbedLine(const util::WeightedDigraph& graph,
                          const EmbedOptions& options, util::Rng& rng);

// Cosine similarity between two embedding rows (test/analysis helper).
double CosineSimilarity(const std::vector<double>& a,
                        const std::vector<double>& b);

}  // namespace deepod::embed

#endif  // DEEPOD_EMBED_GRAPH_EMBEDDING_H_
