#include "embed/skipgram.h"

#include <cmath>
#include <stdexcept>

#include "util/alias_sampler.h"

namespace deepod::embed {

SkipGramTrainer::SkipGramTrainer(size_t num_nodes, Options options)
    : num_nodes_(num_nodes), options_(options) {
  if (num_nodes == 0) throw std::invalid_argument("SkipGramTrainer: no nodes");
  if (options_.dim == 0) throw std::invalid_argument("SkipGramTrainer: dim 0");
}

EmbeddingMatrix SkipGramTrainer::Train(
    const std::vector<std::vector<size_t>>& corpus, util::Rng& rng) {
  const size_t d = options_.dim;
  // Input (center) and output (context) embeddings.
  EmbeddingMatrix in(num_nodes_, std::vector<double>(d));
  EmbeddingMatrix out(num_nodes_, std::vector<double>(d, 0.0));
  const double init_scale = 0.5 / static_cast<double>(d);
  for (auto& row : in) {
    for (double& x : row) x = rng.Uniform(-init_scale, init_scale);
  }

  // Negative-sampling distribution: frequency^0.75 over corpus occurrences.
  std::vector<double> freq(num_nodes_, 0.0);
  size_t total_tokens = 0;
  for (const auto& walk : corpus) {
    for (size_t node : walk) {
      if (node >= num_nodes_) {
        throw std::out_of_range("SkipGramTrainer: node id out of range");
      }
      freq[node] += 1.0;
      ++total_tokens;
    }
  }
  if (total_tokens == 0) throw std::invalid_argument("SkipGramTrainer: empty corpus");
  for (double& f : freq) f = std::pow(f + 1e-3, options_.negative_power);
  const util::AliasSampler negative_sampler(freq);

  const size_t total_steps = options_.epochs * total_tokens;
  size_t step = 0;
  std::vector<double> grad_center(d);
  auto sigmoid = [](double x) { return 1.0 / (1.0 + std::exp(-x)); };

  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    for (const auto& walk : corpus) {
      for (size_t pos = 0; pos < walk.size(); ++pos) {
        const double progress =
            static_cast<double>(step) / static_cast<double>(total_steps);
        const double lr = std::max(
            options_.min_lr, options_.initial_lr * (1.0 - progress));
        ++step;
        const size_t center = walk[pos];
        auto& v = in[center];
        const size_t lo = pos >= options_.window ? pos - options_.window : 0;
        const size_t hi = std::min(walk.size() - 1, pos + options_.window);
        for (size_t cpos = lo; cpos <= hi; ++cpos) {
          if (cpos == pos) continue;
          std::fill(grad_center.begin(), grad_center.end(), 0.0);
          // One positive plus `negatives` negative updates.
          for (size_t k = 0; k <= options_.negatives; ++k) {
            size_t target;
            double label;
            if (k == 0) {
              target = walk[cpos];
              label = 1.0;
            } else {
              target = negative_sampler.Sample(rng);
              if (target == walk[cpos]) continue;
              label = 0.0;
            }
            auto& u = out[target];
            double dot = 0.0;
            for (size_t j = 0; j < d; ++j) dot += v[j] * u[j];
            const double g = (sigmoid(dot) - label) * lr;
            for (size_t j = 0; j < d; ++j) {
              grad_center[j] += g * u[j];
              u[j] -= g * v[j];
            }
          }
          for (size_t j = 0; j < d; ++j) v[j] -= grad_center[j];
        }
      }
    }
  }
  return in;
}

}  // namespace deepod::embed
