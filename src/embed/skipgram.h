#ifndef DEEPOD_EMBED_SKIPGRAM_H_
#define DEEPOD_EMBED_SKIPGRAM_H_

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace deepod::embed {

// A trained node-embedding table: row i is the vector of node i.
using EmbeddingMatrix = std::vector<std::vector<double>>;

// Skip-gram with negative sampling (SGNS) over random-walk corpora — the
// learning core shared by DeepWalk and node2vec (the paper initialises both
// Ws and Wt this way, Algorithm 1 lines 1-4). For each (center, context)
// pair within the window, maximises log σ(u·v) plus `negatives` sampled
// log σ(-u·v_neg) terms; trained by SGD with linear learning-rate decay.
class SkipGramTrainer {
 public:
  struct Options {
    size_t dim = 64;
    size_t window = 4;
    size_t negatives = 4;
    size_t epochs = 2;
    double initial_lr = 0.025;
    double min_lr = 1e-4;
    // Unigram^0.75 negative-sampling distribution, as in word2vec.
    double negative_power = 0.75;
  };

  SkipGramTrainer(size_t num_nodes, Options options);

  // Trains on the walk corpus; returns the input-side embeddings.
  EmbeddingMatrix Train(const std::vector<std::vector<size_t>>& corpus,
                        util::Rng& rng);

 private:
  size_t num_nodes_;
  Options options_;
};

}  // namespace deepod::embed

#endif  // DEEPOD_EMBED_SKIPGRAM_H_
