#include "embed/random_walk.h"

#include <algorithm>
#include <stdexcept>

namespace deepod::embed {

RandomWalker::RandomWalker(const util::WeightedDigraph& graph, Options options)
    : graph_(graph), options_(options) {
  if (options_.walk_length == 0) {
    throw std::invalid_argument("RandomWalker: zero walk length");
  }
  second_order_ = options_.p != 1.0 || options_.q != 1.0;
  node_alias_.reserve(graph.num_nodes());
  for (size_t v = 0; v < graph.num_nodes(); ++v) {
    const auto& arcs = graph.OutArcs(v);
    if (arcs.empty()) {
      node_alias_.emplace_back();
      continue;
    }
    std::vector<double> weights;
    weights.reserve(arcs.size());
    for (const auto& a : arcs) weights.push_back(a.weight);
    node_alias_.emplace_back(weights);
  }
}

size_t RandomWalker::NextFirstOrder(size_t cur, util::Rng& rng) {
  const auto& sampler = node_alias_[cur];
  if (sampler.empty()) return static_cast<size_t>(-1);
  return graph_.OutArcs(cur)[sampler.Sample(rng)].to;
}

size_t RandomWalker::NextSecondOrder(size_t prev, size_t cur, util::Rng& rng) {
  const auto& arcs = graph_.OutArcs(cur);
  if (arcs.empty()) return static_cast<size_t>(-1);
  const uint64_t key = (static_cast<uint64_t>(prev) << 32) | cur;
  if (const auto it = edge_alias_.find(key); it != edge_alias_.end()) {
    return arcs[it->second.Sample(rng)].to;
  }
  // Build the biased distribution: weight / p when returning to prev,
  // weight when the target is a neighbour of prev (distance 1), weight / q
  // otherwise (distance 2) — the node2vec search bias.
  std::vector<double> weights;
  weights.reserve(arcs.size());
  for (const auto& a : arcs) {
    double w = a.weight;
    if (a.to == prev) {
      w /= options_.p;
    } else if (!graph_.HasArc(prev, a.to)) {
      w /= options_.q;
    }
    weights.push_back(w);
  }
  auto [it, inserted] = edge_alias_.emplace(key, util::AliasSampler(weights));
  return arcs[it->second.Sample(rng)].to;
}

std::vector<size_t> RandomWalker::Walk(size_t start, util::Rng& rng) {
  if (start >= graph_.num_nodes()) {
    throw std::out_of_range("RandomWalker::Walk: start node out of range");
  }
  std::vector<size_t> walk;
  walk.reserve(options_.walk_length);
  walk.push_back(start);
  while (walk.size() < options_.walk_length) {
    size_t next;
    if (walk.size() == 1 || !second_order_) {
      next = NextFirstOrder(walk.back(), rng);
    } else {
      next = NextSecondOrder(walk[walk.size() - 2], walk.back(), rng);
    }
    if (next == static_cast<size_t>(-1)) break;  // sink
    walk.push_back(next);
  }
  return walk;
}

std::vector<std::vector<size_t>> RandomWalker::Corpus(util::Rng& rng) {
  std::vector<size_t> order(graph_.num_nodes());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::vector<std::vector<size_t>> corpus;
  corpus.reserve(order.size() * options_.walks_per_node);
  for (size_t round = 0; round < options_.walks_per_node; ++round) {
    rng.Shuffle(order);
    for (size_t start : order) corpus.push_back(Walk(start, rng));
  }
  return corpus;
}

}  // namespace deepod::embed
