#ifndef DEEPOD_SERVE_SERVING_STATE_H_
#define DEEPOD_SERVE_SERVING_STATE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "core/deepod_model.h"
#include "io/model_artifact.h"
#include "nn/quant.h"
#include "temporal/time_slot.h"

namespace deepod::serve {

// One immutable serving epoch: everything a request needs to be answered
// consistently — the model, the speed provider it points at (owned through
// the artifact bundle), the cache-key slotter and the cache generation.
//
// EtaService publishes the current epoch as a shared_ptr<const ServingState>
// and every request path (Estimate, EstimateBatch, the dispatcher) acquires
// one snapshot for its whole unit of work, RCU-style: a model swap flips
// the pointer atomically, in-flight requests finish against the epoch they
// started on, and the old state is destroyed when its last in-flight
// reference drops. Nothing is ever answered from a half-swapped state.
//
// `epoch` doubles as the cache generation: it is packed into every
// OdCacheKey, so the answers an old model wrote into the LRU cache are
// unreachable the moment a new epoch is current — swap, cache invalidation
// and stats attribution are the same mechanism. Epoch numbers are assigned
// by the service (monotone, starting at 0 for the construction state);
// states built by LoadServingState carry epoch 0 until adopted.
struct ServingState {
  // Cache generation / swap counter. Assigned by EtaService on adopt.
  uint64_t epoch = 0;

  // Provenance for stats and logs: the artifact path this state was loaded
  // from, or "<caller-model>" for a service wrapped around a borrowed model.
  std::string source = "<caller-model>";

  // The owning bundle (model + frozen speed field + config) when the state
  // was loaded from an artifact; null when the model is borrowed.
  std::shared_ptr<io::ServingModel> bundle;

  // The serving model: bundle->model.get() or the borrowed one. Never null
  // in an adopted state. The pointee is logically const for serving (only
  // thread-safe inference entry points are used) but the type stays
  // non-const because Predict touches internal memos.
  core::DeepOdModel* model = nullptr;

  // Cache-key time slotter, built from the state's own config so two
  // artifacts with different slot_seconds never alias cache keys.
  temporal::TimeSlotter slotter{0.0, 300.0};

  // Effective weight quantisation of `model` (stats/provenance only).
  nn::QuantMode quant = nn::QuantMode::kNone;
};

// Loads `artifact_path` against `network` and wraps the bundle into an
// un-adopted ServingState (epoch 0). Throws nn::SerializeError on a
// corrupt, truncated or mismatched artifact — the typed error the reloader
// turns into a rollback. `options.quant` requests load-time quantisation.
std::shared_ptr<ServingState> LoadServingState(
    const std::string& artifact_path, const road::RoadNetwork& network,
    const io::ArtifactOptions& options);

// Wraps a caller-owned model (no bundle) into an un-adopted state.
std::shared_ptr<ServingState> BorrowServingState(core::DeepOdModel& model);

}  // namespace deepod::serve

#endif  // DEEPOD_SERVE_SERVING_STATE_H_
