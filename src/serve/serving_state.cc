#include "serve/serving_state.h"

namespace deepod::serve {

std::shared_ptr<ServingState> LoadServingState(
    const std::string& artifact_path, const road::RoadNetwork& network,
    const io::ArtifactOptions& options) {
  auto bundle = std::make_shared<io::ServingModel>(
      io::LoadModelArtifact(artifact_path, network, options));
  auto state = std::make_shared<ServingState>();
  state->source = artifact_path;
  state->model = bundle->model.get();
  state->slotter =
      temporal::TimeSlotter(0.0, bundle->config.slot_seconds);
  state->quant = bundle->quant;
  state->bundle = std::move(bundle);
  return state;
}

std::shared_ptr<ServingState> BorrowServingState(core::DeepOdModel& model) {
  auto state = std::make_shared<ServingState>();
  state->model = &model;
  state->slotter = temporal::TimeSlotter(0.0, model.config().slot_seconds);
  return state;
}

}  // namespace deepod::serve
