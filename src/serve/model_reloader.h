#ifndef DEEPOD_SERVE_MODEL_RELOADER_H_
#define DEEPOD_SERVE_MODEL_RELOADER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "io/model_artifact.h"
#include "obs/metrics.h"
#include "road/road_network.h"
#include "serve/eta_service.h"
#include "serve/serving_state.h"

namespace deepod::serve {

struct ModelReloaderOptions {
  // Artifact-path poll cadence. Polling (stat mtime/size/inode) rather than
  // inotify keeps the watcher portable and dependency-free; at serving poll
  // rates the stat cost is unmeasurable.
  std::chrono::milliseconds poll_interval{200};

  // A changed stat signature must hold steady for this many consecutive
  // polls before the load is attempted — a guard against catching a writer
  // mid-copy. Publishers should still prefer an atomic rename(2) into
  // place, which this guard then never delays past one extra poll.
  int stability_polls = 2;

  // Load options (weight quantisation) applied to every reload.
  io::ArtifactOptions artifact;
};

// The ArtifactWatcher half of zero-downtime serving: polls an artifact path
// and, when the file changes, loads + validates the new artifact on the
// watcher thread (never a request thread), then atomically flips it into
// the running EtaService via SwapState — the RCU epoch publish. In-flight
// requests finish on the epoch they started on; the old bundle is freed
// when its last reference drops; the epoch-keyed cache makes stale answers
// unreachable. No request is ever dropped or answered from a half-loaded
// model.
//
// Rollback: a failed load (nn::SerializeError — truncated file, magic or
// checksum mismatch, wrong network) leaves the service untouched on its
// current state. The failing signature is remembered so a corrupt artifact
// is not re-tried every poll; the next *different* file content gets a
// fresh attempt. Failures are counted ("reload/failures"), the last error
// string is kept for Status, and the "reload/healthy" gauge drops to 0
// until a subsequent load succeeds.
//
// `prepare` (optional) runs on the watcher thread against the freshly
// loaded, not-yet-published state — the hook a live deployment uses to
// point the new model at a shared RollingSpeedField before the flip
// (state.model->SetSpeedProvider(...)), so the swapped-in model serves live
// speeds from its first request.
//
// Construction does not trigger a load when the service is already serving
// this exact path (EtaService::FromArtifact + same file): the current file
// is adopted as the baseline. Any other starting condition treats the first
// stable signature as new.
//
// Instruments live in a private registry under "reload/": polls, reloads,
// failures counters, healthy gauge, load_seconds histogram — exported
// through serve::ExportStats alongside the service's own.
class ModelReloader {
 public:
  using PrepareFn = std::function<void(ServingState&)>;

  // `service`, `network` and (if given) everything `prepare` touches must
  // outlive the reloader. The watcher thread starts immediately.
  ModelReloader(EtaService& service, std::string artifact_path,
                const road::RoadNetwork& network,
                const ModelReloaderOptions& options,
                PrepareFn prepare = nullptr);
  ~ModelReloader();

  ModelReloader(const ModelReloader&) = delete;
  ModelReloader& operator=(const ModelReloader&) = delete;

  // Stops the watcher thread (idempotent; the destructor calls it).
  void Stop();

  // Synchronous reload attempt, bypassing the poll cadence and stability
  // guard (tests, SIGHUP-style force-reload). Returns true when a new epoch
  // was adopted; false when the file is unchanged since the last attempt or
  // the load failed (see StatusSnapshot().last_error).
  bool ReloadNow();

  struct Status {
    uint64_t polls = 0;
    uint64_t reloads = 0;   // successful swaps through this reloader
    uint64_t failures = 0;  // failed load attempts (service kept old state)
    bool healthy = true;    // last attempt succeeded (or none attempted)
    std::string last_error;
    uint64_t epoch = 0;     // service epoch after the last successful swap
  };
  Status StatusSnapshot() const;

  const obs::Registry& registry() const { return registry_; }

 private:
  // Identity of the file contents as far as stat can see: a change in any
  // field marks a new candidate. `exists` folds ENOENT in as "no file".
  struct FileSig {
    bool exists = false;
    uint64_t size = 0;
    uint64_t inode = 0;
    int64_t mtime_ns = 0;

    bool operator==(const FileSig&) const = default;
  };

  FileSig StatArtifact() const;
  void WatchLoop();
  // Loads + validates + swaps. `sig` is the signature the attempt is for;
  // it is remembered as attempted (success or failure) so the same bytes
  // are not re-tried. Returns true on an adopted swap.
  bool TryReload(const FileSig& sig);

  EtaService& service_;
  const std::string artifact_path_;
  const road::RoadNetwork& network_;
  ModelReloaderOptions options_;
  PrepareFn prepare_;

  // Serialises TryReload between the watcher thread and ReloadNow callers.
  std::mutex reload_mu_;
  std::optional<FileSig> attempted_sig_;  // last signature we tried to load

  mutable std::mutex status_mu_;
  std::string last_error_;

  obs::Registry registry_;
  obs::Counter& polls_;
  obs::Counter& reloads_;
  obs::Counter& failures_;
  obs::Gauge& healthy_;
  obs::Histogram& load_seconds_;

  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;
  std::thread watcher_;
};

}  // namespace deepod::serve

#endif  // DEEPOD_SERVE_MODEL_RELOADER_H_
