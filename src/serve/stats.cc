#include "serve/stats.h"

#include <algorithm>

#include "serve/drift_monitor.h"
#include "serve/eta_service.h"
#include "serve/model_reloader.h"

namespace deepod::serve {
namespace {

void AppendRegistry(const obs::Registry* registry,
                    std::vector<obs::Record>& out) {
  if (registry == nullptr) return;
  std::vector<obs::Record> records = registry->Export("");
  out.insert(out.end(), std::make_move_iterator(records.begin()),
             std::make_move_iterator(records.end()));
}

}  // namespace

std::vector<obs::Record> CollectStats(const StatsSources& sources) {
  std::vector<obs::Record> out;
  AppendRegistry(sources.server, out);
  AppendRegistry(sources.service ? &sources.service->registry() : nullptr,
                 out);
  AppendRegistry(sources.reloader ? &sources.reloader->registry() : nullptr,
                 out);
  AppendRegistry(sources.drift ? &sources.drift->registry() : nullptr, out);
  for (const obs::Registry* registry : sources.extra) {
    AppendRegistry(registry, out);
  }
  // Each registry exports name-sorted; the merged view must be too, so the
  // stats frame and --stats-json stay byte-comparable however many sources
  // a deployment wires in.
  std::sort(out.begin(), out.end(),
            [](const obs::Record& a, const obs::Record& b) {
              return a.name < b.name;
            });
  return out;
}

std::string ExportStatsJson(const StatsSources& sources) {
  return obs::RenderRecordsJson(CollectStats(sources));
}

std::string ExportStatsPrometheus(const StatsSources& sources) {
  std::string out;
  if (sources.server) out += sources.server->ExportPrometheus("");
  if (sources.service) out += sources.service->registry().ExportPrometheus("");
  if (sources.reloader) {
    out += sources.reloader->registry().ExportPrometheus("");
  }
  if (sources.drift) out += sources.drift->registry().ExportPrometheus("");
  for (const obs::Registry* registry : sources.extra) {
    if (registry != nullptr) out += registry->ExportPrometheus("");
  }
  return out;
}

}  // namespace deepod::serve
