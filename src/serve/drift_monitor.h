#ifndef DEEPOD_SERVE_DRIFT_MONITOR_H_
#define DEEPOD_SERVE_DRIFT_MONITOR_H_

#include <atomic>
#include <cstdint>
#include <functional>

#include "obs/metrics.h"

namespace deepod::serve {

struct DriftMonitorOptions {
  // Rolling-MAE window, in observations. Windowed (not lifetime) on
  // purpose: drift is a statement about the CURRENT regime, and a lifetime
  // mean dilutes a fresh weather shock into invisibility.
  size_t window = 256;

  // Retrain-trigger threshold on the rolling MAE, in seconds. 0 disables
  // the trigger (the gauge still updates).
  double trigger_mae = 0.0;

  // Observations required before the trigger may fire — a half-warm window
  // of three unlucky trips is noise, not drift.
  size_t min_observations = 32;
};

// Drift detection for the serving stack: rolling MAE of served predictions
// against later-observed actual travel times. The server's ObserveTrip
// ingest path feeds it — each observed trip carries the actual duration,
// the monitor re-scores it against what the service currently predicts —
// and the rolling MAE is exported as the "drift/rolling_mae" gauge through
// the unified stats surface (serve::ExportStats), so a weather shock shows
// up as a rising gauge on the same stats frame operators already scrape.
//
// Retrain hook: when the rolling MAE crosses `trigger_mae` from below
// (edge-triggered; re-arms when it falls back under), the trigger callback
// fires once with the offending MAE — the seam a deployment wires to its
// retrain pipeline. The callback runs on the observing thread and must not
// block.
//
// Thread-safe; instruments live in a private registry under "drift/".
class DriftMonitor {
 public:
  using RetrainTrigger = std::function<void(double rolling_mae)>;

  explicit DriftMonitor(const DriftMonitorOptions& options,
                        RetrainTrigger trigger = nullptr);

  DriftMonitor(const DriftMonitor&) = delete;
  DriftMonitor& operator=(const DriftMonitor&) = delete;

  // Records one prediction/actual pair (seconds). Updates the rolling MAE
  // and the gauge, and fires the retrain trigger on an upward threshold
  // crossing.
  void Observe(double predicted_seconds, double actual_seconds);

  // Current windowed MAE in seconds (0 before the first observation).
  double RollingMae() const { return rolling_.Value(); }
  uint64_t Observations() const { return rolling_.Count(); }
  uint64_t Triggers() const { return triggers_.Value(); }

  const obs::Registry& registry() const { return registry_; }

 private:
  DriftMonitorOptions options_;
  RetrainTrigger trigger_;
  obs::RollingMean rolling_;

  obs::Registry registry_;
  obs::Counter& observations_;
  obs::Counter& triggers_;
  obs::Gauge& mae_gauge_;
  obs::Histogram& abs_error_;

  // Edge-trigger arming: true while the MAE is below the threshold, so the
  // trigger fires once per excursion instead of once per observation.
  std::atomic<bool> armed_{true};
};

}  // namespace deepod::serve

#endif  // DEEPOD_SERVE_DRIFT_MONITOR_H_
