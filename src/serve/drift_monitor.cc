#include "serve/drift_monitor.h"

#include <cmath>

namespace deepod::serve {

DriftMonitor::DriftMonitor(const DriftMonitorOptions& options,
                           RetrainTrigger trigger)
    : options_(options),
      trigger_(std::move(trigger)),
      rolling_(options.window),
      observations_(registry_.counter("drift/observations")),
      triggers_(registry_.counter("drift/retrain_triggers")),
      mae_gauge_(registry_.gauge("drift/rolling_mae")),
      abs_error_(registry_.histogram("drift/abs_error")) {}

void DriftMonitor::Observe(double predicted_seconds, double actual_seconds) {
  const double abs_error = std::fabs(predicted_seconds - actual_seconds);
  rolling_.Observe(abs_error);
  observations_.Add();
  abs_error_.Observe(abs_error);
  const double mae = rolling_.Value();
  mae_gauge_.Set(mae);

  if (options_.trigger_mae <= 0.0) return;
  if (rolling_.Count() < options_.min_observations) return;
  if (mae > options_.trigger_mae) {
    bool was_armed = true;
    if (armed_.compare_exchange_strong(was_armed, false)) {
      triggers_.Add();
      if (trigger_) trigger_(mae);
    }
  } else {
    armed_.store(true);
  }
}

}  // namespace deepod::serve
