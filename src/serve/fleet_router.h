#ifndef DEEPOD_SERVE_FLEET_ROUTER_H_
#define DEEPOD_SERVE_FLEET_ROUTER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "baselines/od_oracle.h"
#include "baselines/path_tte.h"
#include "obs/metrics.h"
#include "road/road_network.h"
#include "serve/eta_service.h"
#include "serve/model_reloader.h"
#include "serve/server/frame.h"
#include "serve/stats.h"
#include "traj/trajectory.h"

namespace deepod::serve {

// What a fleet shard does when its learned model cannot (or should not)
// answer a request — the shard is cold (no artifact loaded yet), the
// admission queue sheds, or the OD pair is out-of-distribution for the
// city's training data.
enum class FallbackPolicy : uint8_t {
  // No fallback tier: cold requests get a typed kShardCold rejection, shed
  // requests their shed status, OOD requests the model's extrapolation —
  // the historical single-city behaviour.
  kModel = 0,
  // The oracle tier (OD histogram, else link-mean) answers on all three
  // triggers, tagged with the estimator that produced the ETA. Default.
  kOracle = 1,
  // Strictest: like kModel, and OOD requests are additionally rejected
  // with kInvalidRequest instead of extrapolated.
  kReject = 2,
};

const char* FallbackPolicyName(FallbackPolicy p);
// Parses "model" / "oracle" / "reject"; throws std::invalid_argument.
FallbackPolicy ParseFallbackPolicy(const std::string& name);

// One row of the fleet manifest (fleet.csv):
//
//   network_id,name,network,artifact,oracle,policy
//   1,xian,xian/network.csv,xian/model.artifact,xian/oracle.artifact,oracle
//
// `oracle` (a standalone oracle artifact, io::WriteOracleArtifact) and
// `policy` may be empty (no pre-model fallback / policy oracle). Relative
// paths resolve against the manifest's own directory.
struct FleetEntry {
  uint32_t network_id = 0;
  std::string name;
  std::string network_path;
  std::string artifact_path;
  std::string oracle_path;  // may be empty
  FallbackPolicy policy = FallbackPolicy::kOracle;
};

// Parses a fleet manifest. Throws std::runtime_error on a malformed file,
// a duplicate network_id or a duplicate name.
std::vector<FleetEntry> ReadFleetManifest(const std::string& path);

class FleetShard;

struct FleetRouterOptions {
  // Per-shard EtaService options. registry_prefix is overridden per city
  // ("serve/<name>/") so the merged stats export stays collision-free.
  EtaServiceOptions service;
  // Watch each warm shard's artifact path and hot swap on change
  // (per-city ModelReloader — swaps stay independent across cities).
  bool watch = false;
  ModelReloaderOptions reloader;
  // Cold-shard activation poll cadence (artifact appearing after startup).
  std::chrono::milliseconds activation_poll{200};
  // Invoked on the activating thread each time a cold shard goes warm
  // (deepod_server prints its operator-visible activation line here).
  std::function<void(const FleetShard&)> on_activate;
};

// One city of the fleet: its road network, its fallback estimators and —
// once an artifact loads — its EtaService shard (own ServingState, cache
// epoch, obs registry and, in watch mode, ModelReloader). Created cold when
// the artifact is missing or unreadable at startup; the router's activation
// watcher brings it warm the moment a loadable artifact appears. A shard
// never goes warm → cold: activation is one-way, and later artifact changes
// are the per-shard reloader's job.
class FleetShard {
 public:
  FleetShard(FleetEntry entry, obs::Registry& fleet_registry);

  // Identity of an artifact file as far as stat can see (activation
  // watcher; mirrors the ModelReloader's signature).
  struct FileSig {
    bool exists = false;
    uint64_t size = 0;
    int64_t mtime_ns = 0;
    bool operator==(const FileSig&) const = default;
  };

  uint32_t network_id() const { return entry_.network_id; }
  const std::string& name() const { return entry_.name; }
  const std::string& artifact_path() const { return entry_.artifact_path; }
  FallbackPolicy policy() const { return entry_.policy; }
  const road::RoadNetwork& network() const { return network_; }
  size_t num_segments() const { return network_.num_segments(); }

  // The live service, or null while cold. The pointee stays valid for the
  // life of the router once published.
  std::shared_ptr<EtaService> service() const;
  bool warm() const { return service() != nullptr; }

  // Answer from the fallback tier: the OD-histogram oracle when present,
  // else the link-mean estimator; nullopt when the shard has neither (the
  // caller rejects). Cheap enough for a connection thread.
  struct Fallback {
    double eta = 0.0;
    net::Estimator estimator = net::Estimator::kOracle;
  };
  std::optional<Fallback> FallbackEstimate(const traj::OdInput& od) const;

  // False only when an oracle exists and has never seen the OD's cell pair.
  bool InDistribution(const traj::OdInput& od) const;

  // Per-city response accounting (names "fleet/<name>/...").
  void CountModelAnswer() { model_answers_.Add(); }
  void CountFallbackAnswer() { oracle_answers_.Add(); }
  void CountShedToOracle() { shed_to_oracle_.Add(); }
  void CountOodToOracle() { ood_to_oracle_.Add(); }
  void CountRejected() { rejected_.Add(); }

  const ModelReloader* reloader() const { return reloader_.get(); }

 private:
  friend class FleetRouter;

  // Installs the fallback estimators (idempotent: first non-null wins —
  // oracle tables are static per city).
  void AdoptEstimators(std::unique_ptr<baselines::OdOracle> oracle,
                       std::unique_ptr<baselines::LinkMeanEstimator> links);
  // Publishes the service built from a freshly loaded state (cold → warm).
  void Publish(std::shared_ptr<EtaService> service,
               std::unique_ptr<ModelReloader> reloader);

  FleetEntry entry_;
  road::RoadNetwork network_;

  mutable std::mutex mu_;
  std::shared_ptr<EtaService> service_;        // null while cold
  std::unique_ptr<ModelReloader> reloader_;    // watch mode, after warm
  std::shared_ptr<const baselines::OdOracle> oracle_;
  std::shared_ptr<const baselines::LinkMeanEstimator> link_mean_;

  obs::Counter& model_answers_;
  obs::Counter& oracle_answers_;
  obs::Counter& shed_to_oracle_;
  obs::Counter& ood_to_oracle_;
  obs::Counter& rejected_;
  obs::Counter& activation_failures_;
  obs::Gauge& cold_;

  // Activation bookkeeping (router's watcher thread only).
  std::optional<FileSig> pending_sig_;
  std::optional<FileSig> attempted_sig_;
};

// The multi-city front of the serving stack: owns one FleetShard per
// manifest row, resolves requests by wire network_id, and runs the
// cold-shard activation watcher. The network server (serve/server) holds a
// FleetRouter instead of a single EtaService in fleet mode; the admission
// queue stays shared across cities (one PopBatch scheduler, per-tenant
// quotas unchanged) and the executor groups each drained batch by shard.
//
// Loading at construction: every network.csv is read eagerly (a missing
// network is a hard error — routing is impossible without it); every
// oracle artifact given in the manifest is loaded eagerly; every model
// artifact is *attempted* — a missing or corrupt artifact leaves that
// shard cold (counted in "fleet/<name>/activation_failures", gauge
// "fleet/<name>/cold" = 1) and the rest of the fleet serving, which is the
// partial-failure behaviour the oracle tier exists for.
class FleetRouter {
 public:
  FleetRouter(std::vector<FleetEntry> entries,
              const FleetRouterOptions& options);
  ~FleetRouter();

  FleetRouter(const FleetRouter&) = delete;
  FleetRouter& operator=(const FleetRouter&) = delete;

  // Shard for a wire network_id; null = unknown id (typed rejection).
  FleetShard* Resolve(uint32_t network_id);

  const std::vector<std::unique_ptr<FleetShard>>& shards() const {
    return shards_;
  }
  size_t WarmCount() const;

  // One synchronous activation sweep over the cold shards, bypassing the
  // poll cadence and stability guard (tests, CI). Returns the number of
  // shards that went warm.
  size_t ActivateNow();

  // Stops the activation watcher and every shard reloader (idempotent).
  void Stop();

  // Adds the router's registry and every warm shard's service/reloader
  // registries to `sources->extra` for the merged stats export.
  void AppendStatsSources(StatsSources* sources) const;

  const obs::Registry& registry() const { return registry_; }

 private:
  void ActivationLoop();
  // Attempts to load `shard`'s artifact and publish its service. `sig` is
  // remembered as attempted so a corrupt file is not re-tried every poll.
  bool TryActivate(FleetShard& shard, const FleetShard::FileSig& sig);

  FleetRouterOptions options_;
  std::vector<std::unique_ptr<FleetShard>> shards_;

  obs::Registry registry_;

  std::mutex activation_mu_;  // serialises TryActivate sweeps

  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;
  std::thread watcher_;
};

}  // namespace deepod::serve

#endif  // DEEPOD_SERVE_FLEET_ROUTER_H_
