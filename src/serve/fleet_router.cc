#include "serve/fleet_router.h"

#include <sys/stat.h>

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "io/trip_io.h"
#include "nn/serialize.h"
#include "serve/serving_state.h"

namespace deepod::serve {
namespace {

// Stat signature of an artifact path (mirrors the ModelReloader's watcher:
// any field change marks a new candidate, ENOENT folds into exists=false).
FleetShard::FileSig StatPath(const std::string& path) {
  FleetShard::FileSig sig;
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) return sig;
  sig.exists = true;
  sig.size = static_cast<uint64_t>(st.st_size);
  sig.mtime_ns =
      static_cast<int64_t>(st.st_mtim.tv_sec) * 1'000'000'000 +
      static_cast<int64_t>(st.st_mtim.tv_nsec);
  return sig;
}

std::string DirName(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash + 1);
}

// Manifest paths resolve against the manifest's own directory, so a fleet
// tree stays relocatable (CI builds it under a temp dir).
std::string ResolvePath(const std::string& base_dir, const std::string& path) {
  if (path.empty() || path.front() == '/' || base_dir.empty()) return path;
  return base_dir + path;
}

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream in(line);
  while (std::getline(in, field, ',')) fields.push_back(field);
  // A trailing comma means a final empty field.
  if (!line.empty() && line.back() == ',') fields.emplace_back();
  return fields;
}

}  // namespace

const char* FallbackPolicyName(FallbackPolicy p) {
  switch (p) {
    case FallbackPolicy::kModel: return "model";
    case FallbackPolicy::kOracle: return "oracle";
    case FallbackPolicy::kReject: return "reject";
  }
  return "unknown";
}

FallbackPolicy ParseFallbackPolicy(const std::string& name) {
  if (name == "model") return FallbackPolicy::kModel;
  if (name == "oracle" || name.empty()) return FallbackPolicy::kOracle;
  if (name == "reject") return FallbackPolicy::kReject;
  throw std::invalid_argument("unknown fallback policy '" + name +
                              "' (want model | oracle | reject)");
}

std::vector<FleetEntry> ReadFleetManifest(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("fleet manifest: cannot open " + path);
  const std::string base_dir = DirName(path);
  std::string line;
  if (!std::getline(in, line) ||
      line != "network_id,name,network,artifact,oracle,policy") {
    throw std::runtime_error(
        "fleet manifest: expected header "
        "'network_id,name,network,artifact,oracle,policy' in " +
        path);
  }
  std::vector<FleetEntry> entries;
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const std::vector<std::string> f = SplitCsvLine(line);
    if (f.size() < 4 || f.size() > 6) {
      throw std::runtime_error("fleet manifest: line " +
                               std::to_string(line_no) + " has " +
                               std::to_string(f.size()) +
                               " fields (want 4-6)");
    }
    FleetEntry entry;
    try {
      entry.network_id = static_cast<uint32_t>(std::stoul(f[0]));
    } catch (const std::exception&) {
      throw std::runtime_error("fleet manifest: line " +
                               std::to_string(line_no) +
                               ": bad network_id '" + f[0] + "'");
    }
    entry.name = f[1];
    if (entry.name.empty()) {
      throw std::runtime_error("fleet manifest: line " +
                               std::to_string(line_no) + ": empty name");
    }
    entry.network_path = ResolvePath(base_dir, f[2]);
    entry.artifact_path = ResolvePath(base_dir, f[3]);
    if (f.size() >= 5) entry.oracle_path = ResolvePath(base_dir, f[4]);
    entry.policy = ParseFallbackPolicy(f.size() >= 6 ? f[5] : std::string());
    for (const FleetEntry& seen : entries) {
      if (seen.network_id == entry.network_id) {
        throw std::runtime_error("fleet manifest: duplicate network_id " +
                                 std::to_string(entry.network_id));
      }
      if (seen.name == entry.name) {
        throw std::runtime_error("fleet manifest: duplicate name '" +
                                 entry.name + "'");
      }
    }
    entries.push_back(std::move(entry));
  }
  if (entries.empty()) {
    throw std::runtime_error("fleet manifest: no entries in " + path);
  }
  return entries;
}

// --- FleetShard -------------------------------------------------------------

FleetShard::FleetShard(FleetEntry entry, obs::Registry& fleet_registry)
    : entry_(std::move(entry)),
      network_(io::ReadNetworkCsv(entry_.network_path)),
      model_answers_(
          fleet_registry.counter("fleet/" + entry_.name + "/model_answers")),
      oracle_answers_(
          fleet_registry.counter("fleet/" + entry_.name + "/oracle_answers")),
      shed_to_oracle_(
          fleet_registry.counter("fleet/" + entry_.name + "/shed_to_oracle")),
      ood_to_oracle_(
          fleet_registry.counter("fleet/" + entry_.name + "/ood_to_oracle")),
      rejected_(fleet_registry.counter("fleet/" + entry_.name + "/rejected")),
      activation_failures_(fleet_registry.counter(
          "fleet/" + entry_.name + "/activation_failures")),
      cold_(fleet_registry.gauge("fleet/" + entry_.name + "/cold")) {
  cold_.Set(1.0);
}

std::shared_ptr<EtaService> FleetShard::service() const {
  std::lock_guard<std::mutex> lock(mu_);
  return service_;
}

std::optional<FleetShard::Fallback> FleetShard::FallbackEstimate(
    const traj::OdInput& od) const {
  std::shared_ptr<const baselines::OdOracle> oracle;
  std::shared_ptr<const baselines::LinkMeanEstimator> links;
  {
    std::lock_guard<std::mutex> lock(mu_);
    oracle = oracle_;
    links = link_mean_;
  }
  if (oracle != nullptr) {
    return Fallback{oracle->Predict(network_, od), net::Estimator::kOracle};
  }
  if (links != nullptr) {
    return Fallback{links->Predict(network_, od), net::Estimator::kLinkMean};
  }
  return std::nullopt;
}

bool FleetShard::InDistribution(const traj::OdInput& od) const {
  std::shared_ptr<const baselines::OdOracle> oracle;
  {
    std::lock_guard<std::mutex> lock(mu_);
    oracle = oracle_;
  }
  // Without an oracle there is nothing to judge against: in-distribution.
  return oracle == nullptr || oracle->InDistribution(network_, od);
}

void FleetShard::AdoptEstimators(
    std::unique_ptr<baselines::OdOracle> oracle,
    std::unique_ptr<baselines::LinkMeanEstimator> links) {
  std::lock_guard<std::mutex> lock(mu_);
  if (oracle_ == nullptr && oracle != nullptr) oracle_ = std::move(oracle);
  if (link_mean_ == nullptr && links != nullptr) {
    link_mean_ = std::move(links);
  }
}

void FleetShard::Publish(std::shared_ptr<EtaService> service,
                         std::unique_ptr<ModelReloader> reloader) {
  std::lock_guard<std::mutex> lock(mu_);
  service_ = std::move(service);
  reloader_ = std::move(reloader);
  cold_.Set(0.0);
}

// --- FleetRouter ------------------------------------------------------------

FleetRouter::FleetRouter(std::vector<FleetEntry> entries,
                         const FleetRouterOptions& options)
    : options_(options) {
  if (entries.empty()) {
    throw std::invalid_argument("FleetRouter: empty fleet");
  }
  shards_.reserve(entries.size());
  for (FleetEntry& entry : entries) {
    shards_.push_back(
        std::make_unique<FleetShard>(std::move(entry), registry_));
  }

  for (auto& shard : shards_) {
    // The standalone oracle artifact, when the manifest names one: this is
    // what lets a cold shard answer before any model was ever trained.
    if (!shard->entry_.oracle_path.empty()) {
      try {
        io::OracleBundle bundle =
            io::LoadOracleArtifact(shard->entry_.oracle_path);
        if (bundle.network_id != 0 &&
            bundle.network_id != shard->network_id()) {
          throw std::runtime_error(
              "oracle artifact network_id " +
              std::to_string(bundle.network_id) + " != shard " +
              std::to_string(shard->network_id()));
        }
        shard->AdoptEstimators(std::move(bundle.oracle),
                               std::move(bundle.link_mean));
      } catch (const std::exception&) {
        shard->activation_failures_.Add();
      }
    }
    // Eager model load; failure (missing file, corrupt artifact) leaves
    // the shard cold and the fleet serving.
    const FleetShard::FileSig sig = StatPath(shard->entry_.artifact_path);
    if (sig.exists) TryActivate(*shard, sig);
  }

  watcher_ = std::thread([this] { ActivationLoop(); });
}

FleetRouter::~FleetRouter() { Stop(); }

void FleetRouter::Stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  stop_cv_.notify_all();
  if (watcher_.joinable()) watcher_.join();
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu_);
    if (shard->reloader_ != nullptr) shard->reloader_->Stop();
  }
}

FleetShard* FleetRouter::Resolve(uint32_t network_id) {
  for (auto& shard : shards_) {
    if (shard->network_id() == network_id) return shard.get();
  }
  return nullptr;
}

size_t FleetRouter::WarmCount() const {
  size_t warm = 0;
  for (const auto& shard : shards_) warm += shard->warm() ? 1 : 0;
  return warm;
}

size_t FleetRouter::ActivateNow() {
  size_t activated = 0;
  for (auto& shard : shards_) {
    if (shard->warm()) continue;
    const FleetShard::FileSig sig = StatPath(shard->entry_.artifact_path);
    if (!sig.exists) continue;
    shard->attempted_sig_.reset();  // bypass the corrupt-file memory
    if (TryActivate(*shard, sig)) ++activated;
  }
  return activated;
}

bool FleetRouter::TryActivate(FleetShard& shard,
                              const FleetShard::FileSig& sig) {
  std::lock_guard<std::mutex> activation_lock(activation_mu_);
  if (shard.warm()) return false;
  shard.attempted_sig_ = sig;
  std::shared_ptr<ServingState> state;
  try {
    io::ArtifactOptions artifact_options;
    artifact_options.quant = options_.service.quant;
    state = LoadServingState(shard.entry_.artifact_path, shard.network_,
                             artifact_options);
    // A manifest/artifact mismatch (artifact trained for another city) is a
    // load failure, not a serving state: the oracle keeps answering.
    const uint32_t artifact_id =
        state->bundle != nullptr ? state->bundle->network_id : 0;
    if (artifact_id != 0 && artifact_id != shard.network_id()) {
      throw std::runtime_error("artifact network_id " +
                               std::to_string(artifact_id) + " != shard " +
                               std::to_string(shard.network_id()));
    }
  } catch (const std::exception&) {
    shard.activation_failures_.Add();
    return false;
  }

  // The artifact's embedded fallback estimators back-fill a shard that had
  // no standalone oracle artifact.
  if (state->bundle != nullptr) {
    shard.AdoptEstimators(std::move(state->bundle->oracle),
                          std::move(state->bundle->link_mean));
  }

  EtaServiceOptions service_options = options_.service;
  service_options.registry_prefix = "serve/" + shard.name() + "/";
  auto service =
      std::make_shared<EtaService>(std::move(state), service_options);

  std::unique_ptr<ModelReloader> reloader;
  if (options_.watch) {
    ModelReloaderOptions reloader_options = options_.reloader;
    reloader_options.artifact.quant = options_.service.quant;
    reloader = std::make_unique<ModelReloader>(
        *service, shard.entry_.artifact_path, shard.network_,
        reloader_options);
  }
  shard.Publish(std::move(service), std::move(reloader));
  if (options_.on_activate) options_.on_activate(shard);
  return true;
}

void FleetRouter::ActivationLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(stop_mu_);
      if (stop_cv_.wait_for(lock, options_.activation_poll,
                            [this] { return stopping_; })) {
        return;
      }
    }
    for (auto& shard : shards_) {
      if (shard->warm()) continue;
      const FleetShard::FileSig sig = StatPath(shard->entry_.artifact_path);
      if (!sig.exists) {
        shard->pending_sig_.reset();
        continue;
      }
      if (shard->attempted_sig_ == sig) continue;  // corrupt-file memory
      // One stability poll (two equal consecutive stats) guards against
      // loading a file mid-copy; rename(2) publishes never wait extra.
      if (shard->pending_sig_ == sig) {
        TryActivate(*shard, sig);
      } else {
        shard->pending_sig_ = sig;
      }
    }
  }
}

void FleetRouter::AppendStatsSources(StatsSources* sources) const {
  sources->extra.push_back(&registry_);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu_);
    if (shard->service_ != nullptr) {
      sources->extra.push_back(&shard->service_->registry());
    }
    // Shard reloader registries are deliberately skipped: their "reload/*"
    // names are not per-city and would collide across shards in the merged
    // name-sorted export. Per-city reload health shows up as epoch bumps in
    // "serve/<city>/swaps".
  }
}

}  // namespace deepod::serve
