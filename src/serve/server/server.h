#ifndef DEEPOD_SERVE_SERVER_SERVER_H_
#define DEEPOD_SERVE_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "serve/eta_service.h"
#include "serve/server/admission.h"
#include "serve/server/frame.h"
#include "util/thread_pool.h"

namespace deepod::serve {
class DriftMonitor;
class FleetRouter;
class FleetShard;
class ModelReloader;
}  // namespace deepod::serve

namespace deepod::serve::net {

// Live-serving hooks, all optional and borrowed (must outlive the server):
// the sinks the ObserveTrip ingest endpoint feeds and the extra stat
// sources the unified stats surface reports. A server without hooks still
// accepts observe frames (they are acknowledged and dropped) so clients
// need not know the deployment shape.
struct LiveServingHooks {
  // Streamed per-segment speed observations land here. NOTE: ingest only —
  // somebody must call Publish() + EtaService::BumpEpoch() to make them
  // servable (deepod_server's publish ticker, or a test directly).
  sim::RollingSpeedField* rolling_field = nullptr;
  // Each observed trip is re-scored against the current model and the
  // prediction/actual pair recorded here (the drift gauge).
  DriftMonitor* drift = nullptr;
  // Stats-only: folded into the stats frame / --stats-json document.
  const ModelReloader* reloader = nullptr;
};

struct ServerOptions {
  std::string host = "127.0.0.1";
  // 0 binds an ephemeral port; port() reports the bound one after Start().
  uint16_t port = 0;
  int accept_backlog = 64;
  // Accepted-connection cap: beyond it new connections are closed on
  // accept (the client sees EOF) instead of spawning unbounded readers.
  size_t max_connections = 256;

  // Continuous-batching executor: `executors` slots each drain up to
  // `max_batch` admitted requests per dispatch — whatever is queued right
  // now, never waiting for a batch to fill — and push them through
  // EtaService::EstimateBatch. `batch_threads` > 1 gives every slot its
  // own ThreadPool for the PredictBatch fan-out (pools are per-slot
  // because util::ThreadPool does not support concurrent ParallelFor).
  size_t max_batch = 32;
  size_t executors = 1;
  size_t batch_threads = 1;

  // Segment-id bound for request validation (kInvalidRequest). 0 skips
  // segment validation — only safe when every client is trusted. Ignored
  // in fleet mode, where each shard validates against its own network.
  size_t num_segments = 0;

  AdmissionOptions admission;

  LiveServingHooks live;
};

// The network front end: a length-prefixed-TCP server around EtaService,
// structured as three layers (DESIGN.md "Network serving"):
//   acceptor/connections -> admission/scheduler -> batching executor.
// Connection threads decode and validate frames and offer them to the
// AdmissionQueue (never blocking on a full queue — requests are admitted
// or shed with a typed status + retry-after). Executor slots drain the
// admitted backlog into EstimateBatch as they free up, re-checking
// deadlines at dequeue so a request that expired while queued costs a
// response frame, not a model forward.
//
// Observability: a private obs::Registry under "server/" — accepted /
// admitted / completed / per-reason shed / deadline-missed / observe
// counters, a queue-depth gauge, a batch-fill histogram (requests per
// executor dispatch) and an arrival→response latency histogram.
// ExportStatsJson() delegates to serve::ExportStatsJson over every stat
// source the deployment has (this registry, the service's "serve/", the
// reloader's "reload/", the drift monitor's "drift/"), so the wire stats
// frame and `--stats-json` render the identical document.
//
// Shutdown() is graceful: stop accepting, shed new offers with
// kShuttingDown, drain and answer every admitted request, then close
// connections. The destructor calls it.
//
// Fleet mode: constructed over a FleetRouter instead of a single
// EtaService, the server routes each request by its wire network_id
// (unknown id -> typed kUnknownNetwork rejection) and validates segments
// against that city's network. Requests a shard's model cannot answer —
// the shard is cold, the admission queue sheds, or the OD pair is
// out-of-distribution — are answered inline on the connection thread from
// the shard's fallback tier (OD-histogram oracle, else link means) when
// its policy allows, tagged with the estimator that produced the ETA.
// One AdmissionQueue is shared across cities (a single PopBatch scheduler,
// per-tenant quotas spanning the fleet); the executor groups each drained
// batch by network_id and pushes each group through its own shard's
// EstimateBatch. Live-serving hooks are single-city plumbing and are not
// consulted in fleet mode (observe frames are validated per shard and
// acknowledged).
class DeepOdServer {
 public:
  DeepOdServer(EtaService& service, const ServerOptions& options);
  // Fleet mode: route by network_id across the router's shards. The
  // router is borrowed and must outlive the server.
  DeepOdServer(FleetRouter& fleet, const ServerOptions& options);
  ~DeepOdServer();

  DeepOdServer(const DeepOdServer&) = delete;
  DeepOdServer& operator=(const DeepOdServer&) = delete;

  // Binds, listens and starts the acceptor + executor threads. Throws
  // std::runtime_error when the socket cannot be bound.
  void Start();

  // The bound port (valid after Start(); resolves option port 0).
  uint16_t port() const { return port_; }

  void Shutdown();

  const obs::Registry& registry() const { return registry_; }
  std::string ExportStatsJson() const;

 private:
  struct Connection {
    int fd = -1;
    std::mutex write_mu;
    std::atomic<bool> open{true};
  };

  // Exactly one of `service` / `fleet` is non-null.
  DeepOdServer(EtaService* service, FleetRouter* fleet,
               const ServerOptions& options);

  void AcceptLoop();
  void ConnectionLoop(std::shared_ptr<Connection> conn);
  // ObserveTrip ingest: validates, feeds the live hooks, answers with the
  // prediction used for drift scoring.
  void HandleObserve(const std::shared_ptr<Connection>& conn,
                     const ObserveFrame& frame);
  void ExecutorLoop(size_t slot);
  void WriteResponse(const std::shared_ptr<Connection>& conn,
                     const ResponseFrame& response);
  // Counts the shed/error and answers it on `conn`.
  void RespondError(const std::shared_ptr<Connection>& conn,
                    uint64_t request_id, Status status,
                    uint32_t retry_after_ms);
  // Answers a request from a shard's fallback tier (kOk, estimator-tagged)
  // on the connection thread, observing latency and the completed counter.
  void RespondFallback(const std::shared_ptr<Connection>& conn,
                       uint64_t request_id, double eta, Estimator estimator,
                       std::chrono::steady_clock::time_point arrival);

  EtaService* service_ = nullptr;  // single mode
  FleetRouter* fleet_ = nullptr;   // fleet mode
  ServerOptions options_;
  AdmissionQueue admission_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;
  std::vector<std::thread> executor_threads_;
  std::vector<std::unique_ptr<util::ThreadPool>> executor_pools_;

  std::mutex conns_mu_;
  std::condition_variable conns_done_;
  std::map<uint64_t, std::shared_ptr<Connection>> connections_;
  uint64_t next_conn_id_ = 0;
  size_t live_connections_ = 0;  // includes readers past their map erase

  // Metrics (registry_ precedes the instrument references).
  obs::Registry registry_;
  obs::Counter& accepted_;
  obs::Counter& rejected_conns_;
  obs::Counter& requests_;
  obs::Counter& bad_frames_;
  obs::Counter& invalid_requests_;
  obs::Counter& unknown_tenants_;
  obs::Counter& unknown_networks_;  // fleet: unresolvable network_id
  obs::Counter& shard_cold_;        // fleet: cold shard, no fallback tier
  obs::Counter& admitted_;
  obs::Counter& shed_;
  obs::Counter& shed_queue_full_;
  obs::Counter& shed_quota_;
  obs::Counter& shed_deadline_;
  obs::Counter& deadline_missed_;
  obs::Counter& completed_;
  obs::Counter& observes_;       // observe frames accepted
  obs::Counter& observations_;   // per-segment observations ingested
  obs::Gauge& connections_gauge_;
  obs::Gauge& queue_depth_;
  obs::Histogram& batch_fill_;  // requests per executor dispatch
  obs::Histogram& latency_;     // arrival -> response (seconds), Ok only
};

}  // namespace deepod::serve::net

#endif  // DEEPOD_SERVE_SERVER_SERVER_H_
