#include "serve/server/loadgen.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <memory>
#include <mutex>
#include <random>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <vector>

namespace deepod::serve::net {
namespace {

using Clock = std::chrono::steady_clock;

double PercentileOfSorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

Client::~Client() { Close(); }

bool Client::Connect(const std::string& host, uint16_t port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Close();
    return false;
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return true;
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Client::CloseSend() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void Client::Abort() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

bool Client::Send(const RequestFrame& frame) {
  if (fd_ < 0) return false;
  const std::vector<uint8_t> wire = EncodeRequestFrame(frame);
  return WriteAll(fd_, wire.data(), wire.size());
}

bool Client::ReadResponse(ResponseFrame* out) {
  std::vector<uint8_t> payload;
  for (;;) {
    if (ReadFrame(fd_, &payload, 1u << 22) != ReadFrameResult::kOk) {
      return false;
    }
    if (PeekMagic(payload.data(), payload.size()) == kStatsResponseMagic) {
      continue;  // not ours to consume here
    }
    return DecodeResponsePayload(payload.data(), payload.size(), out);
  }
}

std::string Client::FetchStatsJson() {
  if (fd_ < 0) return "";
  const std::vector<uint8_t> wire = EncodeStatsRequestFrame();
  if (!WriteAll(fd_, wire.data(), wire.size())) return "";
  std::vector<uint8_t> payload;
  for (;;) {
    if (ReadFrame(fd_, &payload, 1u << 22) != ReadFrameResult::kOk) return "";
    if (PeekMagic(payload.data(), payload.size()) == kStatsResponseMagic) {
      return std::string(payload.begin() + 4, payload.end());
    }
    // Skip late data responses still in flight on this connection.
  }
}

namespace {

// Mutable state shared between one connection's sender and reader.
struct ConnState {
  Client client;
  std::mutex mu;
  struct Sent {
    Clock::time_point at;
    uint8_t priority;
  };
  std::unordered_map<uint64_t, Sent> pending;

  // Reader-side tallies (reader thread only, read after join).
  uint64_t ok = 0, shed = 0, deadline_expired = 0, errors = 0;
  uint64_t ok_within_slo = 0;
  uint64_t estimator_ok[3] = {0, 0, 0};  // kModel / kOracle / kLinkMean
  std::vector<double> latencies_ms;  // Ok responses
  uint64_t prio_sent[kNumPriorities] = {0, 0, 0};
  uint64_t prio_ok[kNumPriorities] = {0, 0, 0};
  uint64_t prio_shed[kNumPriorities] = {0, 0, 0};
  std::vector<double> prio_latencies_ms[kNumPriorities];

  // Sender-side tallies.
  uint64_t sent = 0;
  uint64_t send_failures = 0;
};

}  // namespace

LoadgenReport RunLoadgen(const LoadgenOptions& options) {
  if (options.num_segments == 0) {
    throw std::runtime_error("loadgen: num_segments must be set");
  }
  const size_t num_conns = std::max<size_t>(1, options.connections);

  // One shared hot set so the skew concentrates on the same keys across
  // connections (that is what exercises the server-side cache).
  std::mt19937_64 hot_rng(options.seed * 0x9e3779b97f4a7c15ull + 1);
  std::vector<traj::OdInput> hot_set(std::max<size_t>(1, options.hot_set_size));
  const auto random_od = [&options](std::mt19937_64& rng) {
    traj::OdInput od;
    std::uniform_int_distribution<size_t> seg(0, options.num_segments - 1);
    std::uniform_real_distribution<double> ratio(0.0, 1.0);
    od.origin_segment = seg(rng);
    od.dest_segment = seg(rng);
    od.origin_ratio = ratio(rng);
    od.dest_ratio = ratio(rng);
    od.weather_type = options.num_weather > 1
                          ? static_cast<int>(rng() % uint64_t(options.num_weather))
                          : 0;
    return od;
  };
  for (auto& od : hot_set) od = random_od(hot_rng);

  std::vector<std::unique_ptr<ConnState>> conns;
  for (size_t c = 0; c < num_conns; ++c) {
    auto state = std::make_unique<ConnState>();
    if (!state->client.Connect(options.host, options.port)) {
      throw std::runtime_error("loadgen: cannot connect to " + options.host +
                               ":" + std::to_string(options.port));
    }
    conns.push_back(std::move(state));
  }

  const double slo_ms = options.slo_ms;
  const auto start = Clock::now();
  const auto send_deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(options.duration_seconds));

  std::vector<std::thread> readers;
  std::vector<std::thread> senders;
  for (size_t c = 0; c < num_conns; ++c) {
    ConnState* state = conns[c].get();

    readers.emplace_back([state, slo_ms] {
      ResponseFrame response;
      while (state->client.ReadResponse(&response)) {
        const auto now = Clock::now();
        ConnState::Sent sent_info;
        {
          std::lock_guard<std::mutex> lock(state->mu);
          const auto it = state->pending.find(response.request_id);
          if (it == state->pending.end()) continue;  // stats or duplicate
          sent_info = it->second;
          state->pending.erase(it);
        }
        const double ms =
            std::chrono::duration<double, std::milli>(now - sent_info.at)
                .count();
        const uint8_t priority =
            std::min<uint8_t>(sent_info.priority, kNumPriorities - 1);
        if (response.status == Status::kOk) {
          ++state->ok;
          ++state->estimator_ok[std::min<uint8_t>(
              static_cast<uint8_t>(response.estimator), 2)];
          ++state->prio_ok[priority];
          state->latencies_ms.push_back(ms);
          state->prio_latencies_ms[priority].push_back(ms);
          if (slo_ms <= 0.0 || ms <= slo_ms) ++state->ok_within_slo;
        } else if (IsShed(response.status)) {
          ++state->shed;
          ++state->prio_shed[priority];
        } else if (response.status == Status::kDeadlineExpired) {
          ++state->deadline_expired;
        } else {
          ++state->errors;
        }
      }
    });

    senders.emplace_back([state, c, &options, &hot_set, num_conns,
                          send_deadline] {
      std::mt19937_64 rng(options.seed * 0x9e3779b97f4a7c15ull + 17 * (c + 2));
      std::exponential_distribution<double> interarrival(
          std::max(1e-6, options.qps / static_cast<double>(num_conns)));
      std::uniform_real_distribution<double> unit(0.0, 1.0);
      std::uniform_real_distribution<double> depart(
          0.0, std::max(1e-9, options.departure_window_seconds));
      uint64_t next_id = (uint64_t(c) << 48) + 1;
      auto next_send = Clock::now();
      for (;;) {
        next_send += std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(interarrival(rng)));
        if (next_send >= send_deadline) return;
        std::this_thread::sleep_until(next_send);
        RequestFrame request;
        request.request_id = next_id++;
        request.network_id =
            options.network_ids.empty()
                ? 0
                : options.network_ids[state->sent % options.network_ids.size()];
        request.tenant_id = static_cast<uint32_t>(
            options.num_tenants > 0 ? state->sent % options.num_tenants : 0);
        const double pick = unit(rng);
        request.priority = pick < options.high_fraction ? 0
                           : pick < options.high_fraction + options.low_fraction
                               ? 2
                               : 1;
        request.deadline_ms = options.deadline_ms;
        request.od = unit(rng) < options.hot_fraction
                         ? hot_set[rng() % hot_set.size()]
                         : traj::OdInput{};
        if (request.od.origin_segment == road::kInvalidId) {
          std::mt19937_64 od_rng(rng());
          std::uniform_int_distribution<size_t> seg(0,
                                                    options.num_segments - 1);
          std::uniform_real_distribution<double> ratio(0.0, 1.0);
          request.od.origin_segment = seg(od_rng);
          request.od.dest_segment = seg(od_rng);
          request.od.origin_ratio = ratio(od_rng);
          request.od.dest_ratio = ratio(od_rng);
          request.od.weather_type =
              options.num_weather > 1
                  ? static_cast<int>(od_rng() % uint64_t(options.num_weather))
                  : 0;
        }
        request.od.departure_time = options.base_departure_time + depart(rng);
        // Register before sending so the reader can never race the map.
        {
          std::lock_guard<std::mutex> lock(state->mu);
          state->pending[request.request_id] = {Clock::now(),
                                                request.priority};
        }
        ++state->prio_sent[request.priority];
        if (!state->client.Send(request)) {
          std::lock_guard<std::mutex> lock(state->mu);
          state->pending.erase(request.request_id);
          ++state->send_failures;
          return;
        }
        ++state->sent;
      }
    });
  }

  for (auto& t : senders) t.join();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();

  // Drain: wait for outstanding responses, then unblock the readers with a
  // local shutdown (never close an fd a reader is still blocked on).
  const auto grace_deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             std::max(0.0, options.drain_grace_seconds)));
  uint64_t lost = 0;
  for (auto& conn : conns) {
    for (;;) {
      size_t outstanding;
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        outstanding = conn->pending.size();
      }
      if (outstanding == 0 || Clock::now() >= grace_deadline) {
        lost += outstanding;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  for (auto& conn : conns) conn->client.Abort();
  for (auto& t : readers) t.join();
  for (auto& conn : conns) conn->client.Close();

  LoadgenReport report;
  report.elapsed_seconds = elapsed;
  report.lost = lost;
  std::vector<double> all_latencies;
  uint64_t ok_within_slo = 0;
  for (const auto& conn : conns) {
    report.sent += conn->sent;
    report.ok += conn->ok;
    report.model_ok += conn->estimator_ok[0];
    report.oracle_ok += conn->estimator_ok[1];
    report.linkmean_ok += conn->estimator_ok[2];
    report.shed += conn->shed;
    report.deadline_expired += conn->deadline_expired;
    report.errors += conn->errors + conn->send_failures;
    ok_within_slo += conn->ok_within_slo;
    all_latencies.insert(all_latencies.end(), conn->latencies_ms.begin(),
                         conn->latencies_ms.end());
    for (size_t p = 0; p < kNumPriorities; ++p) {
      report.by_priority[p].sent += conn->prio_sent[p];
      report.by_priority[p].ok += conn->prio_ok[p];
      report.by_priority[p].shed += conn->prio_shed[p];
    }
  }
  std::sort(all_latencies.begin(), all_latencies.end());
  report.p50_ms = PercentileOfSorted(all_latencies, 0.50);
  report.p95_ms = PercentileOfSorted(all_latencies, 0.95);
  report.p99_ms = PercentileOfSorted(all_latencies, 0.99);
  report.max_ms = all_latencies.empty() ? 0.0 : all_latencies.back();
  for (size_t p = 0; p < kNumPriorities; ++p) {
    std::vector<double> merged;
    for (const auto& conn : conns) {
      merged.insert(merged.end(), conn->prio_latencies_ms[p].begin(),
                    conn->prio_latencies_ms[p].end());
    }
    std::sort(merged.begin(), merged.end());
    report.by_priority[p].p50_ms = PercentileOfSorted(merged, 0.50);
    report.by_priority[p].p99_ms = PercentileOfSorted(merged, 0.99);
  }
  if (elapsed > 0.0) {
    report.offered_qps = static_cast<double>(report.sent) / elapsed;
    report.achieved_qps = static_cast<double>(report.ok) / elapsed;
    report.goodput_qps = static_cast<double>(ok_within_slo) / elapsed;
  }
  report.shed_rate =
      report.sent == 0
          ? 0.0
          : static_cast<double>(report.shed) / static_cast<double>(report.sent);

  if (options.fetch_server_stats) {
    // A fresh connection, after the measurement window, so the stats frame
    // never interleaves with data responses.
    Client stats_client;
    if (stats_client.Connect(options.host, options.port)) {
      report.server_stats_json = stats_client.FetchStatsJson();
    }
  }
  return report;
}

}  // namespace deepod::serve::net
