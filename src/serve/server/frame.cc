#include "serve/server/frame.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace deepod::serve::net {
namespace {

void AppendU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(uint8_t(v >> (8 * i)));
}

void AppendU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(uint8_t(v >> (8 * i)));
}

void AppendF64(std::vector<uint8_t>* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU64(out, bits);
}

uint32_t ReadU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= uint32_t(p[i]) << (8 * i);
  return v;
}

uint64_t ReadU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= uint64_t(p[i]) << (8 * i);
  return v;
}

double ReadF64(const uint8_t* p) {
  const uint64_t bits = ReadU64(p);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

// Prepends the 4-byte length prefix to a finished payload.
std::vector<uint8_t> WithLengthPrefix(std::vector<uint8_t> payload) {
  std::vector<uint8_t> frame;
  frame.reserve(4 + payload.size());
  AppendU32(&frame, static_cast<uint32_t>(payload.size()));
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

}  // namespace

const char* StatusName(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kBadFrame: return "bad_frame";
    case Status::kBadMagic: return "bad_magic";
    case Status::kFrameTooLarge: return "frame_too_large";
    case Status::kInvalidRequest: return "invalid_request";
    case Status::kUnknownTenant: return "unknown_tenant";
    case Status::kDeadlineExpired: return "deadline_expired";
    case Status::kShedQueueFull: return "shed_queue_full";
    case Status::kShedQuota: return "shed_quota";
    case Status::kShedDeadline: return "shed_deadline";
    case Status::kShuttingDown: return "shutting_down";
    case Status::kUnknownNetwork: return "unknown_network";
    case Status::kShardCold: return "shard_cold";
  }
  return "unknown";
}

const char* EstimatorName(Estimator e) {
  switch (e) {
    case Estimator::kModel: return "model";
    case Estimator::kOracle: return "oracle";
    case Estimator::kLinkMean: return "linkmean";
  }
  return "unknown";
}

std::vector<uint8_t> EncodeRequestFrame(const RequestFrame& frame) {
  std::vector<uint8_t> payload;
  payload.reserve(kRequestPayloadBytes);
  AppendU32(&payload, kRequestMagic);
  AppendU64(&payload, frame.request_id);
  AppendU32(&payload, frame.network_id);
  AppendU32(&payload, frame.tenant_id);
  payload.push_back(frame.priority);
  AppendU32(&payload, static_cast<uint32_t>(frame.deadline_ms));
  AppendU64(&payload, static_cast<uint64_t>(frame.od.origin_segment));
  AppendU64(&payload, static_cast<uint64_t>(frame.od.dest_segment));
  AppendF64(&payload, frame.od.origin_ratio);
  AppendF64(&payload, frame.od.dest_ratio);
  AppendF64(&payload, frame.od.departure_time);
  AppendU32(&payload, static_cast<uint32_t>(frame.od.weather_type));
  return WithLengthPrefix(std::move(payload));
}

std::vector<uint8_t> EncodeResponseFrame(const ResponseFrame& frame) {
  std::vector<uint8_t> payload;
  payload.reserve(kResponsePayloadBytes);
  AppendU32(&payload, kResponseMagic);
  AppendU64(&payload, frame.request_id);
  payload.push_back(static_cast<uint8_t>(frame.status));
  payload.push_back(static_cast<uint8_t>(frame.estimator));
  AppendU32(&payload, frame.retry_after_ms);
  AppendF64(&payload, frame.eta_seconds);
  return WithLengthPrefix(std::move(payload));
}

std::vector<uint8_t> EncodeStatsRequestFrame() {
  std::vector<uint8_t> payload;
  AppendU32(&payload, kStatsRequestMagic);
  return WithLengthPrefix(std::move(payload));
}

std::vector<uint8_t> EncodeStatsResponseFrame(std::string_view json) {
  std::vector<uint8_t> payload;
  payload.reserve(4 + json.size());
  AppendU32(&payload, kStatsResponseMagic);
  payload.insert(payload.end(), json.begin(), json.end());
  return WithLengthPrefix(std::move(payload));
}

std::vector<uint8_t> EncodeObserveFrame(const ObserveFrame& frame) {
  if (frame.observations.size() > kMaxObservationsPerFrame) {
    throw std::invalid_argument(
        "EncodeObserveFrame: too many observations for one frame");
  }
  std::vector<uint8_t> payload;
  payload.reserve(kObservePayloadHeaderBytes +
                  frame.observations.size() * kObservationBytes);
  AppendU32(&payload, kObserveMagic);
  AppendU64(&payload, frame.request_id);
  AppendU32(&payload, frame.network_id);
  AppendU64(&payload, static_cast<uint64_t>(frame.od.origin_segment));
  AppendU64(&payload, static_cast<uint64_t>(frame.od.dest_segment));
  AppendF64(&payload, frame.od.origin_ratio);
  AppendF64(&payload, frame.od.dest_ratio);
  AppendF64(&payload, frame.od.departure_time);
  AppendU32(&payload, static_cast<uint32_t>(frame.od.weather_type));
  AppendF64(&payload, frame.actual_seconds);
  AppendU32(&payload, static_cast<uint32_t>(frame.observations.size()));
  for (const sim::TripObservation& obs : frame.observations) {
    AppendU64(&payload, obs.segment_id);
    AppendF64(&payload, obs.time);
    AppendF64(&payload, obs.speed_mps);
  }
  return WithLengthPrefix(std::move(payload));
}

uint32_t PeekMagic(const uint8_t* data, size_t size) {
  return size < 4 ? 0 : ReadU32(data);
}

Status DecodeRequestPayload(const uint8_t* data, size_t size,
                            RequestFrame* out) {
  *out = RequestFrame{};
  if (size < 4) return Status::kBadFrame;
  if (ReadU32(data) != kRequestMagic) return Status::kBadMagic;
  if (size != kRequestPayloadBytes) {
    // Truncated (or padded) request: recover the id when its bytes are
    // present so the error response names the right request.
    if (size >= 12) out->request_id = ReadU64(data + 4);
    return Status::kBadFrame;
  }
  const uint8_t* p = data + 4;
  out->request_id = ReadU64(p);
  p += 8;
  out->network_id = ReadU32(p);
  p += 4;
  out->tenant_id = ReadU32(p);
  p += 4;
  out->priority = *p;
  p += 1;
  out->deadline_ms = static_cast<int32_t>(ReadU32(p));
  p += 4;
  out->od.origin_segment = static_cast<size_t>(ReadU64(p));
  p += 8;
  out->od.dest_segment = static_cast<size_t>(ReadU64(p));
  p += 8;
  out->od.origin_ratio = ReadF64(p);
  p += 8;
  out->od.dest_ratio = ReadF64(p);
  p += 8;
  out->od.departure_time = ReadF64(p);
  p += 8;
  out->od.weather_type = static_cast<int>(ReadU32(p));
  if (out->priority >= kNumPriorities) out->priority = kNumPriorities - 1;
  return Status::kOk;
}

Status DecodeObservePayload(const uint8_t* data, size_t size,
                            ObserveFrame* out) {
  *out = ObserveFrame{};
  if (size < 4) return Status::kBadFrame;
  if (ReadU32(data) != kObserveMagic) return Status::kBadMagic;
  if (size < kObservePayloadHeaderBytes) {
    if (size >= 12) out->request_id = ReadU64(data + 4);
    return Status::kBadFrame;
  }
  const uint8_t* p = data + 4;
  out->request_id = ReadU64(p);
  p += 8;
  out->network_id = ReadU32(p);
  p += 4;
  out->od.origin_segment = static_cast<size_t>(ReadU64(p));
  p += 8;
  out->od.dest_segment = static_cast<size_t>(ReadU64(p));
  p += 8;
  out->od.origin_ratio = ReadF64(p);
  p += 8;
  out->od.dest_ratio = ReadF64(p);
  p += 8;
  out->od.departure_time = ReadF64(p);
  p += 8;
  out->od.weather_type = static_cast<int>(ReadU32(p));
  p += 4;
  out->actual_seconds = ReadF64(p);
  p += 8;
  const uint32_t n = ReadU32(p);
  p += 4;
  if (n > kMaxObservationsPerFrame ||
      size != kObservePayloadHeaderBytes + size_t(n) * kObservationBytes) {
    return Status::kBadFrame;
  }
  out->observations.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    out->observations[i].segment_id = ReadU64(p);
    p += 8;
    out->observations[i].time = ReadF64(p);
    p += 8;
    out->observations[i].speed_mps = ReadF64(p);
    p += 8;
  }
  return Status::kOk;
}

bool DecodeResponsePayload(const uint8_t* data, size_t size,
                           ResponseFrame* out) {
  if (size != kResponsePayloadBytes) return false;
  if (ReadU32(data) != kResponseMagic) return false;
  const uint8_t* p = data + 4;
  out->request_id = ReadU64(p);
  p += 8;
  out->status = static_cast<Status>(*p);
  p += 1;
  out->estimator = static_cast<Estimator>(*p);
  p += 1;
  out->retry_after_ms = ReadU32(p);
  p += 4;
  out->eta_seconds = ReadF64(p);
  return true;
}

bool ReadExact(int fd, void* buf, size_t n) {
  uint8_t* p = static_cast<uint8_t*>(buf);
  while (n > 0) {
    const ssize_t got = ::recv(fd, p, n, 0);
    if (got == 0) return false;  // EOF
    if (got < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += got;
    n -= static_cast<size_t>(got);
  }
  return true;
}

bool WriteAll(int fd, const void* buf, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(buf);
  while (n > 0) {
    const ssize_t sent = ::send(fd, p, n, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += sent;
    n -= static_cast<size_t>(sent);
  }
  return true;
}

ReadFrameResult ReadFrame(int fd, std::vector<uint8_t>* payload,
                          uint32_t max_bytes) {
  uint8_t prefix[4];
  // Distinguish a clean EOF (no prefix byte at all) from a mid-frame one.
  {
    ssize_t got;
    do {
      got = ::recv(fd, prefix, sizeof(prefix), MSG_WAITALL);
    } while (got < 0 && errno == EINTR);
    if (got == 0) return ReadFrameResult::kEof;
    if (got < 0) return ReadFrameResult::kError;
    if (got < 4 && !ReadExact(fd, prefix + got, 4 - static_cast<size_t>(got))) {
      return ReadFrameResult::kError;
    }
  }
  const uint32_t length = ReadU32(prefix);
  if (length > max_bytes) {
    // Drain the declared bytes in bounded chunks so the next frame starts
    // at a clean boundary, then report the oversize to the caller.
    uint8_t sink[4096];
    uint32_t remaining = length;
    while (remaining > 0) {
      const size_t chunk = std::min<size_t>(remaining, sizeof(sink));
      if (!ReadExact(fd, sink, chunk)) return ReadFrameResult::kError;
      remaining -= static_cast<uint32_t>(chunk);
    }
    payload->clear();
    return ReadFrameResult::kOversize;
  }
  payload->resize(length);
  if (length > 0 && !ReadExact(fd, payload->data(), length)) {
    return ReadFrameResult::kError;
  }
  return ReadFrameResult::kOk;
}

}  // namespace deepod::serve::net
