#ifndef DEEPOD_SERVE_SERVER_LOADGEN_H_
#define DEEPOD_SERVE_SERVER_LOADGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "serve/server/frame.h"

namespace deepod::serve::net {

// Blocking deepod_server client: one TCP connection speaking the frame
// protocol. Send/ReadResponse may be driven from two different threads
// (one writer, one reader) — that is the pipelined shape the load
// generator uses — but neither side is multi-thread safe on its own.
class Client {
 public:
  Client() = default;
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool Connect(const std::string& host, uint16_t port);
  void Close();     // full close
  void CloseSend(); // half-close: no more requests; responses still readable
  void Abort();     // shutdown both directions; unblocks a blocked reader
  bool connected() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  bool Send(const RequestFrame& frame);
  // Blocks for the next response frame; false on EOF or a malformed frame.
  bool ReadResponse(ResponseFrame* out);
  // Round-trips a stats frame; empty string on failure. Must not race an
  // in-flight ReadResponse on the same connection.
  std::string FetchStatsJson();

 private:
  int fd_ = -1;
};

// --- Open-loop load generator ----------------------------------------------

struct LoadgenOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  // Open-loop Poisson arrivals: each of `connections` pipelined TCP
  // connections runs an independent Poisson process of rate qps /
  // connections. Senders never wait for responses, so offered load does
  // not degrade when the server slows down — overload stays overload.
  double qps = 200.0;
  double duration_seconds = 5.0;
  size_t connections = 4;
  uint64_t seed = 1;

  // Fleet routing: each request's wire network_id round-robins over this
  // list. Empty sends network_id 0 (single-city servers ignore it). For a
  // mixed-city run against a fleet, num_segments should be the smallest
  // city's segment count so every OD pair is valid on every shard.
  std::vector<uint32_t> network_ids;

  // Workload shape: uniform OD pairs over [0, num_segments) with
  // `hot_fraction` of queries drawn from a shared `hot_set_size`-entry hot
  // set (cache-friendly skew, mirroring bench_serving's stream).
  size_t num_segments = 0;  // required
  double hot_fraction = 0.8;
  size_t hot_set_size = 64;
  double base_departure_time = 10.0 * 86400.0 + 8.0 * 3600.0;
  double departure_window_seconds = 1800.0;
  int num_weather = 1;  // weather ids in [0, num_weather)

  // Traffic mix. deadline_ms rides on every request (0 = none);
  // high/low fractions pick priority 0 / 2, the rest priority 1; tenant
  // ids round-robin over [0, num_tenants).
  int32_t deadline_ms = 0;
  double high_fraction = 0.1;
  double low_fraction = 0.1;
  size_t num_tenants = 1;

  // Goodput SLO over client-observed latency of Ok responses.
  double slo_ms = 100.0;

  // After the send window closes, wait up to this long for outstanding
  // responses before counting them as lost.
  double drain_grace_seconds = 5.0;
  // Fetch the server's obs registry over the wire (stats frame) at the end.
  bool fetch_server_stats = true;
};

struct PriorityLoadStats {
  uint64_t sent = 0;
  uint64_t ok = 0;
  uint64_t shed = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

struct LoadgenReport {
  uint64_t sent = 0;
  uint64_t ok = 0;
  // Ok responses split by the estimator tag the server answered with:
  // model forward, OD-histogram oracle, or link-mean fallback.
  uint64_t model_ok = 0;
  uint64_t oracle_ok = 0;
  uint64_t linkmean_ok = 0;
  uint64_t shed = 0;              // IsShed statuses
  uint64_t deadline_expired = 0;  // kDeadlineExpired responses
  uint64_t errors = 0;            // other non-Ok statuses + send failures
  uint64_t lost = 0;              // no response within the drain grace
  double elapsed_seconds = 0.0;   // send-window wall time
  double offered_qps = 0.0;       // sent / elapsed
  double achieved_qps = 0.0;      // ok / elapsed
  double goodput_qps = 0.0;       // ok within slo_ms / elapsed
  double shed_rate = 0.0;         // shed / sent
  // Client-observed latency of Ok responses.
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  PriorityLoadStats by_priority[kNumPriorities];
  std::string server_stats_json;  // empty when not fetched
};

// Drives a live deepod_server. Throws std::runtime_error when no
// connection can be established.
LoadgenReport RunLoadgen(const LoadgenOptions& options);

}  // namespace deepod::serve::net

#endif  // DEEPOD_SERVE_SERVER_LOADGEN_H_
